file(REMOVE_RECURSE
  "CMakeFiles/bench_gc_overhead.dir/bench_gc_overhead.cpp.o"
  "CMakeFiles/bench_gc_overhead.dir/bench_gc_overhead.cpp.o.d"
  "bench_gc_overhead"
  "bench_gc_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
