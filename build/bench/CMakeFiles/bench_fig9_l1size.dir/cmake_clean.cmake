file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_l1size.dir/bench_fig9_l1size.cpp.o"
  "CMakeFiles/bench_fig9_l1size.dir/bench_fig9_l1size.cpp.o.d"
  "bench_fig9_l1size"
  "bench_fig9_l1size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_l1size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
