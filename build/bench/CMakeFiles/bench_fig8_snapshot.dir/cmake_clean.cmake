file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_snapshot.dir/bench_fig8_snapshot.cpp.o"
  "CMakeFiles/bench_fig8_snapshot.dir/bench_fig8_snapshot.cpp.o.d"
  "bench_fig8_snapshot"
  "bench_fig8_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
