# Empty dependencies file for bench_fig8_snapshot.
# This may be replaced when dependencies are built.
