# Empty dependencies file for bench_table2_platform.
# This may be replaced when dependencies are built.
