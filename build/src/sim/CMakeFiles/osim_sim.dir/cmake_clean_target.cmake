file(REMOVE_RECURSE
  "libosim_sim.a"
)
