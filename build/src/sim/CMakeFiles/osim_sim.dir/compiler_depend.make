# Empty compiler generated dependencies file for osim_sim.
# This may be replaced when dependencies are built.
