file(REMOVE_RECURSE
  "CMakeFiles/osim_sim.dir/cache.cpp.o"
  "CMakeFiles/osim_sim.dir/cache.cpp.o.d"
  "CMakeFiles/osim_sim.dir/fiber.cpp.o"
  "CMakeFiles/osim_sim.dir/fiber.cpp.o.d"
  "CMakeFiles/osim_sim.dir/fiber_switch.S.o"
  "CMakeFiles/osim_sim.dir/machine.cpp.o"
  "CMakeFiles/osim_sim.dir/machine.cpp.o.d"
  "CMakeFiles/osim_sim.dir/memory_system.cpp.o"
  "CMakeFiles/osim_sim.dir/memory_system.cpp.o.d"
  "CMakeFiles/osim_sim.dir/stats.cpp.o"
  "CMakeFiles/osim_sim.dir/stats.cpp.o.d"
  "libosim_sim.a"
  "libosim_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang ASM CXX)
  include(CMakeFiles/osim_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
