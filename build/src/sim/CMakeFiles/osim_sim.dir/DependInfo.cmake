
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  "ASM"
  )
# The set of files for implicit dependencies of each language:
set(CMAKE_DEPENDS_CHECK_ASM
  "/root/repo/src/sim/fiber_switch.S" "/root/repo/build/src/sim/CMakeFiles/osim_sim.dir/fiber_switch.S.o"
  )
set(CMAKE_ASM_COMPILER_ID "GNU")

# The include file search paths:
set(CMAKE_ASM_TARGET_INCLUDE_PATH
  "/root/repo/src"
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/osim_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/osim_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/fiber.cpp" "src/sim/CMakeFiles/osim_sim.dir/fiber.cpp.o" "gcc" "src/sim/CMakeFiles/osim_sim.dir/fiber.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/sim/CMakeFiles/osim_sim.dir/machine.cpp.o" "gcc" "src/sim/CMakeFiles/osim_sim.dir/machine.cpp.o.d"
  "/root/repo/src/sim/memory_system.cpp" "src/sim/CMakeFiles/osim_sim.dir/memory_system.cpp.o" "gcc" "src/sim/CMakeFiles/osim_sim.dir/memory_system.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/sim/CMakeFiles/osim_sim.dir/stats.cpp.o" "gcc" "src/sim/CMakeFiles/osim_sim.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
