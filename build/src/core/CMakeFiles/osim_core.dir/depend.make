# Empty dependencies file for osim_core.
# This may be replaced when dependencies are built.
