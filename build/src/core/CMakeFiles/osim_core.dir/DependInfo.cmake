
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compressed_line.cpp" "src/core/CMakeFiles/osim_core.dir/compressed_line.cpp.o" "gcc" "src/core/CMakeFiles/osim_core.dir/compressed_line.cpp.o.d"
  "/root/repo/src/core/gc.cpp" "src/core/CMakeFiles/osim_core.dir/gc.cpp.o" "gcc" "src/core/CMakeFiles/osim_core.dir/gc.cpp.o.d"
  "/root/repo/src/core/ostructure_manager.cpp" "src/core/CMakeFiles/osim_core.dir/ostructure_manager.cpp.o" "gcc" "src/core/CMakeFiles/osim_core.dir/ostructure_manager.cpp.o.d"
  "/root/repo/src/core/version_list.cpp" "src/core/CMakeFiles/osim_core.dir/version_list.cpp.o" "gcc" "src/core/CMakeFiles/osim_core.dir/version_list.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/osim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
