file(REMOVE_RECURSE
  "CMakeFiles/osim_core.dir/compressed_line.cpp.o"
  "CMakeFiles/osim_core.dir/compressed_line.cpp.o.d"
  "CMakeFiles/osim_core.dir/gc.cpp.o"
  "CMakeFiles/osim_core.dir/gc.cpp.o.d"
  "CMakeFiles/osim_core.dir/ostructure_manager.cpp.o"
  "CMakeFiles/osim_core.dir/ostructure_manager.cpp.o.d"
  "CMakeFiles/osim_core.dir/version_list.cpp.o"
  "CMakeFiles/osim_core.dir/version_list.cpp.o.d"
  "libosim_core.a"
  "libosim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
