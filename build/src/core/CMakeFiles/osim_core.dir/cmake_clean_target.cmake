file(REMOVE_RECURSE
  "libosim_core.a"
)
