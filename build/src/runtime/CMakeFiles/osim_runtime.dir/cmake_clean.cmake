file(REMOVE_RECURSE
  "CMakeFiles/osim_runtime.dir/rwlock.cpp.o"
  "CMakeFiles/osim_runtime.dir/rwlock.cpp.o.d"
  "CMakeFiles/osim_runtime.dir/sw_ostructures.cpp.o"
  "CMakeFiles/osim_runtime.dir/sw_ostructures.cpp.o.d"
  "libosim_runtime.a"
  "libosim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
