# Empty compiler generated dependencies file for osim_runtime.
# This may be replaced when dependencies are built.
