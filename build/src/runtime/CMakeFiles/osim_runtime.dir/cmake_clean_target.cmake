file(REMOVE_RECURSE
  "libosim_runtime.a"
)
