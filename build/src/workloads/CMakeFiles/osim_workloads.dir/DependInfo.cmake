
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/binary_tree.cpp" "src/workloads/CMakeFiles/osim_workloads.dir/binary_tree.cpp.o" "gcc" "src/workloads/CMakeFiles/osim_workloads.dir/binary_tree.cpp.o.d"
  "/root/repo/src/workloads/hash_table.cpp" "src/workloads/CMakeFiles/osim_workloads.dir/hash_table.cpp.o" "gcc" "src/workloads/CMakeFiles/osim_workloads.dir/hash_table.cpp.o.d"
  "/root/repo/src/workloads/levenshtein.cpp" "src/workloads/CMakeFiles/osim_workloads.dir/levenshtein.cpp.o" "gcc" "src/workloads/CMakeFiles/osim_workloads.dir/levenshtein.cpp.o.d"
  "/root/repo/src/workloads/linked_list.cpp" "src/workloads/CMakeFiles/osim_workloads.dir/linked_list.cpp.o" "gcc" "src/workloads/CMakeFiles/osim_workloads.dir/linked_list.cpp.o.d"
  "/root/repo/src/workloads/matmul.cpp" "src/workloads/CMakeFiles/osim_workloads.dir/matmul.cpp.o" "gcc" "src/workloads/CMakeFiles/osim_workloads.dir/matmul.cpp.o.d"
  "/root/repo/src/workloads/opgen.cpp" "src/workloads/CMakeFiles/osim_workloads.dir/opgen.cpp.o" "gcc" "src/workloads/CMakeFiles/osim_workloads.dir/opgen.cpp.o.d"
  "/root/repo/src/workloads/rb_tree.cpp" "src/workloads/CMakeFiles/osim_workloads.dir/rb_tree.cpp.o" "gcc" "src/workloads/CMakeFiles/osim_workloads.dir/rb_tree.cpp.o.d"
  "/root/repo/src/workloads/runner.cpp" "src/workloads/CMakeFiles/osim_workloads.dir/runner.cpp.o" "gcc" "src/workloads/CMakeFiles/osim_workloads.dir/runner.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/osim_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/osim_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/osim_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
