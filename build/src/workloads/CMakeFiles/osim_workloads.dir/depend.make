# Empty dependencies file for osim_workloads.
# This may be replaced when dependencies are built.
