file(REMOVE_RECURSE
  "CMakeFiles/osim_workloads.dir/binary_tree.cpp.o"
  "CMakeFiles/osim_workloads.dir/binary_tree.cpp.o.d"
  "CMakeFiles/osim_workloads.dir/hash_table.cpp.o"
  "CMakeFiles/osim_workloads.dir/hash_table.cpp.o.d"
  "CMakeFiles/osim_workloads.dir/levenshtein.cpp.o"
  "CMakeFiles/osim_workloads.dir/levenshtein.cpp.o.d"
  "CMakeFiles/osim_workloads.dir/linked_list.cpp.o"
  "CMakeFiles/osim_workloads.dir/linked_list.cpp.o.d"
  "CMakeFiles/osim_workloads.dir/matmul.cpp.o"
  "CMakeFiles/osim_workloads.dir/matmul.cpp.o.d"
  "CMakeFiles/osim_workloads.dir/opgen.cpp.o"
  "CMakeFiles/osim_workloads.dir/opgen.cpp.o.d"
  "CMakeFiles/osim_workloads.dir/rb_tree.cpp.o"
  "CMakeFiles/osim_workloads.dir/rb_tree.cpp.o.d"
  "CMakeFiles/osim_workloads.dir/runner.cpp.o"
  "CMakeFiles/osim_workloads.dir/runner.cpp.o.d"
  "libosim_workloads.a"
  "libosim_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/osim_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
