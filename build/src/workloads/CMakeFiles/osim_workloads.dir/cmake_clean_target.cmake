file(REMOVE_RECURSE
  "libosim_workloads.a"
)
