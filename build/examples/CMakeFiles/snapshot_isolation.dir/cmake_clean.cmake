file(REMOVE_RECURSE
  "CMakeFiles/snapshot_isolation.dir/snapshot_isolation.cpp.o"
  "CMakeFiles/snapshot_isolation.dir/snapshot_isolation.cpp.o.d"
  "snapshot_isolation"
  "snapshot_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snapshot_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
