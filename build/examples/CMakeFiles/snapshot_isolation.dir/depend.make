# Empty dependencies file for snapshot_isolation.
# This may be replaced when dependencies are built.
