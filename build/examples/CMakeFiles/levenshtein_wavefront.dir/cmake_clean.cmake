file(REMOVE_RECURSE
  "CMakeFiles/levenshtein_wavefront.dir/levenshtein_wavefront.cpp.o"
  "CMakeFiles/levenshtein_wavefront.dir/levenshtein_wavefront.cpp.o.d"
  "levenshtein_wavefront"
  "levenshtein_wavefront.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/levenshtein_wavefront.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
