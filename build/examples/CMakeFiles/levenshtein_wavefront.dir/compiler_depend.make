# Empty compiler generated dependencies file for levenshtein_wavefront.
# This may be replaced when dependencies are built.
