file(REMOVE_RECURSE
  "CMakeFiles/matmul_dataflow.dir/matmul_dataflow.cpp.o"
  "CMakeFiles/matmul_dataflow.dir/matmul_dataflow.cpp.o.d"
  "matmul_dataflow"
  "matmul_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
