# Empty compiler generated dependencies file for matmul_dataflow.
# This may be replaced when dependencies are built.
