# Empty dependencies file for linked_list_pipeline.
# This may be replaced when dependencies are built.
