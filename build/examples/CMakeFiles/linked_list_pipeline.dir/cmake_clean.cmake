file(REMOVE_RECURSE
  "CMakeFiles/linked_list_pipeline.dir/linked_list_pipeline.cpp.o"
  "CMakeFiles/linked_list_pipeline.dir/linked_list_pipeline.cpp.o.d"
  "linked_list_pipeline"
  "linked_list_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linked_list_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
