# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_fiber[1]_include.cmake")
include("/root/repo/build/tests/test_version_list[1]_include.cmake")
include("/root/repo/build/tests/test_compressed_line[1]_include.cmake")
include("/root/repo/build/tests/test_gc[1]_include.cmake")
include("/root/repo/build/tests/test_ostructure[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_memory_system[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_structures[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_config_variants[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_faults[1]_include.cmake")
