# Empty dependencies file for test_config_variants.
# This may be replaced when dependencies are built.
