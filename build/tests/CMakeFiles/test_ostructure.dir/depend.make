# Empty dependencies file for test_ostructure.
# This may be replaced when dependencies are built.
