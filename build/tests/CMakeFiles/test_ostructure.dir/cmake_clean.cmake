file(REMOVE_RECURSE
  "CMakeFiles/test_ostructure.dir/test_ostructure.cpp.o"
  "CMakeFiles/test_ostructure.dir/test_ostructure.cpp.o.d"
  "test_ostructure"
  "test_ostructure.pdb"
  "test_ostructure[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ostructure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
