file(REMOVE_RECURSE
  "CMakeFiles/test_version_list.dir/test_version_list.cpp.o"
  "CMakeFiles/test_version_list.dir/test_version_list.cpp.o.d"
  "test_version_list"
  "test_version_list.pdb"
  "test_version_list[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_version_list.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
