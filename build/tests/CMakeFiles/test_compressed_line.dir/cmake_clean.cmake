file(REMOVE_RECURSE
  "CMakeFiles/test_compressed_line.dir/test_compressed_line.cpp.o"
  "CMakeFiles/test_compressed_line.dir/test_compressed_line.cpp.o.d"
  "test_compressed_line"
  "test_compressed_line.pdb"
  "test_compressed_line[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compressed_line.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
