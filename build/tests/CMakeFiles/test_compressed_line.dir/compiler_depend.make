# Empty compiler generated dependencies file for test_compressed_line.
# This may be replaced when dependencies are built.
