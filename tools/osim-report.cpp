// osim-report: offline analysis of bench results and event traces.
//
// Reads the schema-2 JSON files written by `bench_* --json PATH` and prints
// the per-figure tables of EXPERIMENTS.md from the recorded cells alone —
// no re-simulation. With `--trace PATH` it additionally reads the binary
// event trace(s) written by `--trace` (telemetry::FileSink format) and
// reports version-lifetime, reclamation-lag, and lock-hold distributions.
//
// `--validate` turns the run into a machine-checkable smoke test: every
// input must be a well-formed schema-2 result file (with all self-checks
// passed) and every trace must parse; exit status reports the verdict.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/isa.hpp"
#include "json.hpp"
#include "telemetry/trace.hpp"

namespace {

using osim::bench::Json;
using osim::bench::kJsonSchemaVersion;
using osim::telemetry::EventType;
using osim::telemetry::TraceEvent;

// ---------------------------------------------------------------------------
// Result-file model
// ---------------------------------------------------------------------------

struct Cell {
  std::string name;
  /// Backend that produced the cell. Older result files predate the field;
  /// they could only have come from the cycle-accurate backend.
  std::string backend = "timed";
  /// GC policy behind the cell. Older result files predate the field; they
  /// could only have run the paper's collector.
  std::string gc = "paper";
  std::uint64_t cycles = 0;
  std::uint64_t checksum = 0;
  /// Concurrent-execution cells (--exec=concurrent) additionally record
  /// real-time throughput: host threads, ops executed, and measured wall
  /// seconds of the parallel section.
  std::string exec;
  std::uint64_t ops = 0;
  double work_seconds = 0.0;
  std::uint64_t conc_threads = 0;
  const Json* metrics = nullptr;  ///< owned by the file's Json root
  const Json* check = nullptr;    ///< osim-check verdict (--check runs only)
};

struct BenchRecord {
  double scale = 1.0;
  std::uint64_t threads = 0;
  double wall_seconds = 0.0;
  bool checks_passed = false;
  std::vector<Cell> cells;

  const Cell* find(const std::string& name) const {
    for (const Cell& c : cells) {
      if (c.name == name) return &c;
    }
    return nullptr;
  }
};

/// One loaded --json file. Bench order is file order; the Json root owns
/// every string the cells point into.
struct ResultFile {
  std::string path;
  Json root;
  std::vector<std::pair<std::string, BenchRecord>> benches;
};

int g_errors = 0;

void fail(const std::string& what) {
  std::fprintf(stderr, "osim-report: %s\n", what.c_str());
  ++g_errors;
}

bool load_results(const std::string& path, ResultFile& out) {
  std::ifstream in(path);
  if (!in) {
    fail("cannot open " + path);
    return false;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  try {
    out.root = Json::parse(buf.str());
  } catch (const std::exception& e) {
    fail(path + ": " + e.what());
    return false;
  }
  out.path = path;
  const Json* schema = out.root.find("schema");
  if (schema == nullptr || !schema->is_number() ||
      schema->as_u64() != kJsonSchemaVersion) {
    fail(path + ": not a schema-" + std::to_string(kJsonSchemaVersion) +
         " result file (regenerate with a current bench build)");
    return false;
  }
  const Json* benches = out.root.find("benches");
  if (benches == nullptr || !benches->is_object()) {
    fail(path + ": missing \"benches\" object");
    return false;
  }
  for (const auto& [name, rec] : benches->items()) {
    BenchRecord b;
    if (const Json* v = rec.find("scale")) b.scale = v->as_double();
    if (const Json* v = rec.find("threads")) b.threads = v->as_u64();
    if (const Json* v = rec.find("wall_seconds")) {
      b.wall_seconds = v->as_double();
    }
    if (const Json* v = rec.find("checks_passed")) {
      b.checks_passed = v->as_bool();
    }
    const Json* cells = rec.find("cells");
    if (cells == nullptr || !cells->is_array()) {
      fail(path + ": bench '" + name + "' has no cell array");
      continue;
    }
    for (const auto& [unused, jc] : cells->items()) {
      (void)unused;
      const Json* cn = jc.find("name");
      const Json* cy = jc.find("cycles");
      const Json* ck = jc.find("checksum");
      if (cn == nullptr || cy == nullptr || ck == nullptr) {
        fail(path + ": bench '" + name + "' has a malformed cell");
        continue;
      }
      Cell c;
      c.name = cn->as_string();
      if (const Json* cb = jc.find("backend")) c.backend = cb->as_string();
      if (const Json* cg = jc.find("gc")) c.gc = cg->as_string();
      c.cycles = cy->as_u64();
      c.checksum = ck->as_u64();
      if (const Json* v = jc.find("exec")) c.exec = v->as_string();
      if (const Json* v = jc.find("ops")) c.ops = v->as_u64();
      if (const Json* v = jc.find("work_seconds")) {
        c.work_seconds = v->as_double();
      }
      if (const Json* v = jc.find("conc_threads")) {
        c.conc_threads = v->as_u64();
      }
      c.metrics = jc.find("metrics");
      c.check = jc.find("check");
      b.cells.push_back(std::move(c));
    }
    // A figure table mixes cycle counts from different backends only by
    // mistake (a functional rerun merged over a timed one, or vice versa) —
    // refuse it. backend_throughput is the one bench whose whole point is
    // the side-by-side comparison.
    if (name.find("backend_throughput") == std::string::npos) {
      for (const Cell& c : b.cells) {
        if (c.backend != b.cells.front().backend) {
          fail(path + ": bench '" + name + "' mixes backends ('" +
               b.cells.front().backend + "' and '" + c.backend +
               "'); rerun the bench with one --backend");
          break;
        }
      }
    }
    // The same rule for GC policies: a figure table only compares cycles
    // produced under one reclamation scheme. gc_overhead is the one bench
    // whose point is the paper-vs-bounded comparison.
    if (name.find("gc_overhead") == std::string::npos) {
      for (const Cell& c : b.cells) {
        if (c.gc != b.cells.front().gc) {
          fail(path + ": bench '" + name + "' mixes GC policies ('" +
               b.cells.front().gc + "' and '" + c.gc +
               "'); rerun the bench with one --gc");
          break;
        }
      }
    }
    out.benches.emplace_back(name, std::move(b));
  }
  return true;
}

// ---------------------------------------------------------------------------
// Table helpers (markdown, the EXPERIMENTS.md format)
// ---------------------------------------------------------------------------

void md_row(const std::vector<std::string>& cells) {
  std::printf("|");
  for (const auto& c : cells) std::printf(" %s |", c.c_str());
  std::printf("\n");
}

void md_header(const std::vector<std::string>& cells) {
  md_row(cells);
  std::printf("|");
  for (std::size_t i = 0; i < cells.size(); ++i) std::printf("---|");
  std::printf("\n");
}

std::string fmt(double v, int prec = 2) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", prec, v);
  return buf;
}

double ratio(std::uint64_t num, std::uint64_t den) {
  return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

/// "a/b/c" -> {"a","b","c"}.
std::vector<std::string> split(const std::string& s, char sep = '/') {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      parts.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::uint64_t check_u64(const Json* check, const char* key) {
  if (check == nullptr) return 0;
  const Json* v = check->find(key);
  return v == nullptr ? 0 : v->as_u64();
}

/// Summarize the osim-check verdicts recorded by `--check` runs. Cells with
/// errors fail validation and have their findings printed.
void report_checks(const std::string& path, const std::string& bench,
                   const BenchRecord& b) {
  std::size_t checked = 0;
  std::uint64_t errors = 0, warnings = 0;
  for (const Cell& c : b.cells) {
    if (c.check == nullptr) continue;
    ++checked;
    errors += check_u64(c.check, "errors");
    warnings += check_u64(c.check, "warnings");
  }
  if (checked == 0) return;
  std::printf("osim-check: %zu cell(s) checked, %llu error(s), "
              "%llu warning(s)\n",
              checked, static_cast<unsigned long long>(errors),
              static_cast<unsigned long long>(warnings));
  if (errors == 0) return;
  fail(path + ": bench '" + bench + "' recorded osim-check violations");
  for (const Cell& c : b.cells) {
    if (check_u64(c.check, "errors") == 0) continue;
    const Json* findings = c.check->find("findings");
    if (findings == nullptr) continue;
    for (const auto& [unused, f] : findings->items()) {
      (void)unused;
      const Json* sev = f.find("severity");
      const Json* inv = f.find("invariant");
      const Json* detail = f.find("detail");
      std::printf("  [%s] %s %s: %s\n", c.name.c_str(),
                  sev == nullptr ? "?" : sev->as_string().c_str(),
                  inv == nullptr ? "?" : inv->as_string().c_str(),
                  detail == nullptr ? "" : detail->as_string().c_str());
    }
  }
}

std::uint64_t metric_u64(const Cell& c, const std::string& key) {
  if (c.metrics == nullptr) return 0;
  const Json* m = c.metrics->find(key);
  if (m == nullptr) return 0;
  if (m->is_number()) return m->as_u64();
  const Json* total = m->find("total");  // per-core counter vector
  return total == nullptr ? 0 : total->as_u64();
}

// ---------------------------------------------------------------------------
// Per-figure formatters. Each mirrors the ratio logic of its bench's own
// print code, reconstructed from cell names.
// ---------------------------------------------------------------------------

/// Rows keyed by the name prefix before "/<axis>=..."; columns in first-seen
/// order of the axis value. Returns {row order, row -> axis -> cell}.
struct Grid {
  std::vector<std::string> rows;
  std::vector<std::string> cols;
  std::map<std::string, std::map<std::string, const Cell*>> at;

  void add(const std::string& r, const std::string& c, const Cell* cell) {
    if (at.find(r) == at.end()) rows.push_back(r);
    if (std::find(cols.begin(), cols.end(), c) == cols.end()) {
      cols.push_back(c);
    }
    at[r][c] = cell;
  }
  const Cell* cell(const std::string& r, const std::string& c) const {
    auto it = at.find(r);
    if (it == at.end()) return nullptr;
    auto jt = it->second.find(c);
    return jt == it->second.end() ? nullptr : jt->second;
  }
};

/// Cells named "row/axis" -> grid (axis = last path segment).
Grid grid_by_last(const BenchRecord& b) {
  Grid g;
  for (const Cell& c : b.cells) {
    const std::size_t cut = c.name.rfind('/');
    if (cut == std::string::npos) continue;
    g.add(c.name.substr(0, cut), c.name.substr(cut + 1), &c);
  }
  return g;
}

void report_table2(const BenchRecord& b) {
  md_header({"probe", "measured cycles"});
  for (const Cell& c : b.cells) md_row({c.name, std::to_string(c.cycles)});
}

void report_fig6(const BenchRecord& b) {
  // Cells: "name/size/mix/{seq,par}" (or "name/{seq,par}" for the regular
  // codes). Ratio = seq / par, pivoted to the EXPERIMENTS.md columns.
  Grid g = grid_by_last(b);  // row = name[/size/mix], col = seq|par
  const std::vector<std::string> cols = {"small 4R-1W", "small 1R-1W",
                                         "large 4R-1W", "large 1R-1W"};
  std::vector<std::string> order;
  std::map<std::string, std::map<std::string, std::string>> table;
  for (const std::string& key : g.rows) {
    const Cell* seq = g.cell(key, "seq");
    const Cell* par = g.cell(key, "par");
    if (seq == nullptr || par == nullptr) continue;
    const std::vector<std::string> parts = split(key);
    const std::string bench = parts[0];
    const std::string col =
        parts.size() >= 3 ? parts[1] + " " + parts[2] : cols[0];
    if (table.find(bench) == table.end()) order.push_back(bench);
    table[bench][col] = fmt(ratio(seq->cycles, par->cycles));
  }
  md_header({"benchmark", cols[0], cols[1], cols[2], cols[3]});
  for (const std::string& bench : order) {
    std::vector<std::string> row{bench};
    for (const std::string& col : cols) {
      auto it = table[bench].find(col);
      row.push_back(it == table[bench].end() ? "" : it->second);
    }
    md_row(row);
  }
}

void report_fig7(const BenchRecord& b) {
  // Cells: "name/cores=N"; speedup over the same workload's cores=1 cell.
  Grid g = grid_by_last(b);
  std::vector<std::string> header{"benchmark"};
  for (const std::string& c : g.cols) {
    if (c != "cores=1") header.push_back(c.substr(std::strlen("cores=")));
  }
  md_header(header);
  for (const std::string& r : g.rows) {
    const Cell* base = g.cell(r, "cores=1");
    if (base == nullptr) continue;
    std::vector<std::string> row{r};
    for (const std::string& c : g.cols) {
      if (c == "cores=1") continue;
      const Cell* cell = g.cell(r, c);
      row.push_back(cell == nullptr ? ""
                                    : fmt(ratio(base->cycles, cell->cycles)));
    }
    md_row(row);
  }
}

void report_fig8(const BenchRecord& b) {
  // Cells: "range=R/cores=N/{versioned,rwlock}"; ratio = rwlock/versioned.
  Grid g = grid_by_last(b);  // row = range=R/cores=N
  std::vector<std::string> ranges, cores;
  for (const std::string& r : g.rows) {
    const std::vector<std::string> parts = split(r);
    if (parts.size() != 2) continue;
    if (std::find(ranges.begin(), ranges.end(), parts[0]) == ranges.end()) {
      ranges.push_back(parts[0]);
    }
    if (std::find(cores.begin(), cores.end(), parts[1]) == cores.end()) {
      cores.push_back(parts[1]);
    }
  }
  std::vector<std::string> header{"scan range"};
  for (const std::string& c : cores) {
    header.push_back(c.substr(std::strlen("cores=")) +
                     (c == cores.front() ? " core" : ""));
  }
  md_header(header);
  double ver_self = 0.0, rw_self = 0.0;
  int self_count = 0;
  for (const std::string& rg : ranges) {
    std::vector<std::string> row{rg.substr(std::strlen("range="))};
    for (const std::string& c : cores) {
      const Cell* ver = g.cell(rg + "/" + c, "versioned");
      const Cell* rw = g.cell(rg + "/" + c, "rwlock");
      row.push_back(ver == nullptr || rw == nullptr
                        ? ""
                        : fmt(ratio(rw->cycles, ver->cycles)));
    }
    md_row(row);
    const Cell* v1 = g.cell(rg + "/" + cores.front(), "versioned");
    const Cell* vN = g.cell(rg + "/" + cores.back(), "versioned");
    const Cell* r1 = g.cell(rg + "/" + cores.front(), "rwlock");
    const Cell* rN = g.cell(rg + "/" + cores.back(), "rwlock");
    if (v1 && vN && r1 && rN) {
      ver_self += ratio(v1->cycles, vN->cycles);
      rw_self += ratio(r1->cycles, rN->cycles);
      ++self_count;
    }
  }
  if (self_count > 0) {
    std::printf(
        "\nSelf-speedups %s -> %s: versioned %.1f, rwlock %.1f\n",
        cores.front().c_str(), cores.back().c_str(), ver_self / self_count,
        rw_self / self_count);
  }
}

void report_fig9(const BenchRecord& b) {
  // Cells: "label/l1=KKB"; ratio = cycles(32KB) / cycles(K).
  Grid g = grid_by_last(b);
  std::vector<std::string> header{"run"};
  for (const std::string& c : g.cols) {
    header.push_back(c.substr(std::strlen("l1=")));
  }
  md_header(header);
  for (const std::string& r : g.rows) {
    const Cell* base = g.cell(r, "l1=32KB");
    if (base == nullptr) continue;
    std::vector<std::string> row{r};
    for (const std::string& c : g.cols) {
      const Cell* cell = g.cell(r, c);
      row.push_back(cell == nullptr ? ""
                                    : fmt(ratio(base->cycles, cell->cycles)));
    }
    md_row(row);
  }
}

void report_fig10(const BenchRecord& b) {
  // Cells: "label/+Ncyc"; slowdown = cycles(+0)/cycles(+N) - 1.
  Grid g = grid_by_last(b);
  std::vector<std::string> header{"run"};
  for (const std::string& c : g.cols) {
    if (c != "+0cyc") header.push_back(c);
  }
  md_header(header);
  for (const std::string& r : g.rows) {
    const Cell* base = g.cell(r, "+0cyc");
    if (base == nullptr) continue;
    std::vector<std::string> row{r};
    for (const std::string& c : g.cols) {
      if (c == "+0cyc") continue;
      const Cell* cell = g.cell(r, c);
      row.push_back(
          cell == nullptr
              ? ""
              : fmt(ratio(base->cycles, cell->cycles) - 1.0, 3));
    }
    md_row(row);
  }
}

/// Compact rendering of a gc/* batch histogram out of a cell's metric
/// snapshot: "n=N mean=M; <=b0:c0 <=b1:c1 ... >bk:ck".
std::string hist_text(const Cell& c, const std::string& key) {
  if (c.metrics == nullptr) return "";
  const Json* h = c.metrics->find(key);
  if (h == nullptr) return "";
  const Json* count = h->find("count");
  const Json* sum = h->find("sum");
  const Json* bounds = h->find("bounds");
  const Json* buckets = h->find("buckets");
  if (count == nullptr || sum == nullptr || bounds == nullptr ||
      buckets == nullptr || count->as_u64() == 0) {
    return "(no samples)";
  }
  std::string out = "n=" + std::to_string(count->as_u64()) +
                    " mean=" + fmt(ratio(sum->as_u64(), count->as_u64()), 1);
  std::size_t i = 0;
  for (const auto& [unused, n] : buckets->items()) {
    (void)unused;
    if (n.as_u64() != 0) {
      const Json* bound = i < bounds->items().size()
                              ? &bounds->items()[i].second
                              : nullptr;
      out += bound != nullptr
                 ? " <=" + std::to_string(bound->as_u64()) + ":" +
                       std::to_string(n.as_u64())
                 : " overflow:" + std::to_string(n.as_u64());
    }
    ++i;
  }
  return out;
}

void report_gc(const BenchRecord& b) {
  const Cell* ample = b.find("ample");
  md_header(
      {"config", "cycles", "GC phases", "OS traps", "blocks freed",
       "vs ample"});
  for (const Cell& c : b.cells) {
    if (c.name.find("/gc=") != std::string::npos) continue;
    md_row({c.name, std::to_string(c.cycles),
            std::to_string(metric_u64(c, "gc/phases")),
            std::to_string(metric_u64(c, "osm/os_traps")),
            std::to_string(metric_u64(c, "osm/blocks_freed")),
            ample == nullptr || &c == ample
                ? "0.000%"
                : fmt(100.0 * (ratio(c.cycles, ample->cycles) - 1.0), 3) +
                      "%"});
  }
  // GC policy comparison: the bench's pinned tight/gc=... cell pair, same
  // workload under each reclamation policy. "GC runs" is phases (paper) or
  // sweeps (bounded); the batch distribution is each policy's own
  // histogram (blocks parked per phase / reclaimed per sweep). The
  // reclaim-lag and version-lifetime *cycle* distributions per policy come
  // from the per-cell traces — run the bench with --trace and pass it
  // here; the trace sections below are labeled with each cell's policy.
  const Cell* paper = b.find("tight/gc=paper");
  const Cell* bounded = b.find("tight/gc=bounded");
  if (paper == nullptr || bounded == nullptr) return;
  std::printf("\nGC policy comparison (tight configuration):\n\n");
  md_header({"policy", "cycles", "GC runs", "blocks freed", "vs paper",
             "batch distribution"});
  for (const Cell* c : {paper, bounded}) {
    md_row({c->gc, std::to_string(c->cycles),
            std::to_string(metric_u64(*c, "gc/phases") +
                           metric_u64(*c, "gc/sweeps")),
            std::to_string(metric_u64(*c, "osm/blocks_freed")),
            c == paper ? "0.000%"
                       : fmt(100.0 * (ratio(c->cycles, paper->cycles) - 1.0),
                             3) + "%",
            hist_text(*c, c->gc == "bounded" ? "gc/reclaim_batch_blocks"
                                             : "gc/pending_batch_blocks")});
  }
}

void report_ablation(const BenchRecord& b) {
  // Cells: "label/variant"; ratio = cycles(baseline) / cycles(variant).
  Grid g = grid_by_last(b);
  std::vector<std::string> header{"run"};
  header.insert(header.end(), g.cols.begin(), g.cols.end());
  md_header(header);
  for (const std::string& r : g.rows) {
    const Cell* base = g.cell(r, "baseline");
    if (base == nullptr) continue;
    std::vector<std::string> row{r};
    for (const std::string& c : g.cols) {
      const Cell* cell = g.cell(r, c);
      row.push_back(cell == nullptr
                        ? ""
                        : fmt(ratio(base->cycles, cell->cycles), 3));
    }
    md_row(row);
  }
}

void report_concurrent(const BenchRecord& b) {
  // Cells: "mix/tN" from --exec=concurrent, each recording real host-thread
  // throughput (ops / work_seconds). Table shows Mops/s per thread count
  // and scaling relative to the mix's t1 cell — wall-clock numbers, not
  // simulated cycles.
  Grid g = grid_by_last(b);
  std::vector<std::string> header{"mix"};
  for (const std::string& c : g.cols) header.push_back(c);
  md_header(header);
  for (const std::string& r : g.rows) {
    const Cell* base = g.cell(r, "t1");
    const double base_tput =
        base != nullptr && base->work_seconds > 0.0
            ? static_cast<double>(base->ops) / base->work_seconds
            : 0.0;
    std::vector<std::string> row{r};
    for (const std::string& c : g.cols) {
      const Cell* cell = g.cell(r, c);
      if (cell == nullptr || cell->work_seconds <= 0.0) {
        row.push_back("");
        continue;
      }
      const double tput =
          static_cast<double>(cell->ops) / cell->work_seconds;
      std::string s = fmt(tput / 1e6) + " Mops/s";
      if (base_tput > 0.0) s += " (" + fmt(tput / base_tput) + "x)";
      row.push_back(std::move(s));
    }
    md_row(row);
  }
}

void report_chaos(const BenchRecord& b) {
  // Cells: "r<round>/{serial,conc}" from osim-chaos, each recording the
  // fault-injection degradation counters — rollbacks performed, what the
  // rollbacks undid (blocks unlinked, locks released), task re-runs, tasks
  // past the retry cap — and the checker verdict over the whole (aborts
  // included) event stream. Both engines report through the facade's
  // EngineStats, so every column reads the same keys for either row.
  md_header({"round/engine", "ops", "aborts", "undone blocks",
             "undone locks", "retries", "giveups", "backoff us", "checker"});
  for (const Cell& c : b.cells) {
    std::string verdict = "(unchecked)";
    if (c.check != nullptr) {
      const Json* errors = c.check->find("errors");
      const std::uint64_t n = errors == nullptr ? 0 : errors->as_u64();
      verdict = n == 0 ? "clean" : std::to_string(n) + " error(s)";
    }
    md_row({c.name, std::to_string(c.ops),
            std::to_string(metric_u64(c, "chaos/aborts")),
            std::to_string(metric_u64(c, "chaos/aborted_blocks")),
            std::to_string(metric_u64(c, "chaos/aborted_locks")),
            std::to_string(metric_u64(c, "chaos/retries")),
            std::to_string(metric_u64(c, "chaos/giveups")),
            std::to_string(metric_u64(c, "chaos/backoff_us")), verdict});
  }
}

void report_sw_vs_hw(const BenchRecord& b) {
  // Cells: "{hw,sw}/cores=N"; ratio = sw / hw.
  md_header({"cores", "hardware cycles", "software cycles", "sw/hw"});
  for (const Cell& c : b.cells) {
    const std::vector<std::string> parts = split(c.name);
    if (parts.size() != 2 || parts[0] != "hw") continue;
    const Cell* sw = b.find("sw/" + parts[1]);
    if (sw == nullptr) continue;
    md_row({parts[1].substr(std::strlen("cores=")), std::to_string(c.cycles),
            std::to_string(sw->cycles), fmt(ratio(sw->cycles, c.cycles))});
  }
}

struct Formatter {
  const char* bench;
  const char* title;
  void (*print)(const BenchRecord&);
};

const Formatter kFormatters[] = {
    {"table2_platform", "Table II — delivered latencies", report_table2},
    {"fig6_speedup",
     "Figure 6 — speedup of 32-core versioned over sequential unversioned",
     report_fig6},
    {"fig7_scalability",
     "Figure 7 — scalability over sequential versioned", report_fig7},
    {"fig8_snapshot", "Figure 8 — versioned tree / rwlock tree",
     report_fig8},
    {"fig9_l1size", "Figure 9 — L1 size sensitivity (vs 32 KB)",
     report_fig9},
    {"fig10_latency",
     "Figure 10 — slowdown under injected versioned-op latency",
     report_fig10},
    {"gc_overhead", "Sec. IV-F — GC overhead", report_gc},
    {"ablation", "Ablation — performance relative to baseline",
     report_ablation},
    {"sw_vs_hw", "Hardware vs software O-structures", report_sw_vs_hw},
    {"backend_throughput_concurrent",
     "Concurrent engine — real host-thread scaling (wall clock)",
     report_concurrent},
    {"chaos_soak",
     "Chaos soak — graceful degradation under injected faults",
     report_chaos},
};

// ---------------------------------------------------------------------------
// Trace analysis
// ---------------------------------------------------------------------------

/// Distribution sketch over cycle samples: count/mean/max + power-of-two
/// buckets (the offline mirror of telemetry::Histogram).
struct Dist {
  std::vector<std::uint64_t> samples;

  void add(std::uint64_t v) { samples.push_back(v); }

  void print(const char* what) {
    if (samples.empty()) {
      std::printf("  %-22s (no samples)\n", what);
      return;
    }
    std::sort(samples.begin(), samples.end());
    std::uint64_t sum = 0;
    for (std::uint64_t s : samples) sum += s;
    std::printf("  %-22s n=%zu mean=%llu p50=%llu p90=%llu max=%llu\n", what,
                samples.size(),
                static_cast<unsigned long long>(sum / samples.size()),
                static_cast<unsigned long long>(samples[samples.size() / 2]),
                static_cast<unsigned long long>(
                    samples[samples.size() * 9 / 10]),
                static_cast<unsigned long long>(samples.back()));
    // Power-of-two bucket table.
    std::uint64_t bound = 64;
    std::size_t i = 0;
    std::printf("  %-22s", "");
    while (i < samples.size()) {
      std::size_t n = 0;
      while (i < samples.size() && samples[i] <= bound) {
        ++n;
        ++i;
      }
      if (n > 0) {
        std::printf(" <=%llu:%zu", static_cast<unsigned long long>(bound), n);
      }
      if (bound > samples.back()) break;
      bound *= 4;
    }
    std::printf("\n");
  }
};

bool report_trace(const std::string& path, const std::string& label) {
  std::vector<TraceEvent> events;
  try {
    events = osim::telemetry::read_trace_file(path);
  } catch (const std::exception& e) {
    fail(e.what());
    return false;
  }
  std::printf("\n## Trace %s%s — %zu events\n\n", path.c_str(),
              label.empty() ? "" : (" (" + label + ")").c_str(),
              events.size());

  std::uint64_t by_type[osim::telemetry::kNumEventTypes] = {};
  std::uint64_t by_op[osim::kNumOpCodes] = {};
  std::map<std::uint64_t, std::uint64_t> born;      // block -> alloc time
  std::map<std::uint64_t, std::uint64_t> shadowed;  // block -> shadow time
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t>
      locked;  // (addr, version) -> acquire time
  Dist lifetime, lag, hold;
  for (const TraceEvent& e : events) {
    by_type[static_cast<int>(e.type)]++;
    switch (e.type) {
      case EventType::kIsaOp:
        by_op[static_cast<int>(e.op)]++;
        break;
      case EventType::kBlockAlloc:
        born[e.arg] = e.time;
        break;
      case EventType::kBlockShadowed:
        shadowed[e.arg] = e.time;
        break;
      case EventType::kBlockFreed: {
        auto b = born.find(e.arg);
        if (b != born.end()) {
          lifetime.add(e.time - b->second);
          born.erase(b);
        }
        auto s = shadowed.find(e.arg);
        if (s != shadowed.end()) {
          lag.add(e.time - s->second);
          shadowed.erase(s);
        }
        break;
      }
      case EventType::kLockAcquire:
        locked[{e.addr, e.version}] = e.time;
        break;
      case EventType::kLockRelease: {
        auto it = locked.find({e.addr, e.version});
        if (it != locked.end()) {
          hold.add(e.time - it->second);
          locked.erase(it);
        }
        break;
      }
      default:
        break;
    }
  }

  std::printf("Event counts:\n");
  for (int t = 0; t < osim::telemetry::kNumEventTypes; ++t) {
    if (by_type[t] == 0) continue;
    std::printf("  %-16s %llu\n",
                osim::telemetry::to_string(static_cast<EventType>(t)),
                static_cast<unsigned long long>(by_type[t]));
  }
  for (int op = 0; op < osim::kNumOpCodes; ++op) {
    if (by_op[op] == 0) continue;
    std::printf("    %-18s %llu\n",
                osim::to_string(static_cast<osim::OpCode>(op)),
                static_cast<unsigned long long>(by_op[op]));
  }
  std::printf("\nCycle distributions:\n");
  lifetime.print("version lifetime");
  lag.print("reclamation lag");
  hold.print("lock hold");
  if (!born.empty()) {
    std::printf("  %zu block(s) still live at end of trace\n", born.size());
  }
  return true;
}

/// Expand `p` to {p} if it exists, else {p.0, p.1, ...} (the per-cell
/// suffixes the bench driver writes).
std::vector<std::string> expand_trace_arg(const std::string& p) {
  std::vector<std::string> out;
  if (std::ifstream(p).good()) {
    out.push_back(p);
    return out;
  }
  for (int i = 0;; ++i) {
    const std::string candidate = p + "." + std::to_string(i);
    if (!std::ifstream(candidate).good()) break;
    out.push_back(candidate);
  }
  return out;
}

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: osim-report [--validate] [--trace PATH]... RESULTS.json...\n"
      "  Prints the per-figure tables from bench --json files, plus\n"
      "  lifetime/lock statistics from binary event traces.\n"
      "  --trace PATH   read PATH, or PATH.0, PATH.1, ... (per-cell files)\n"
      "  --validate     exit non-zero unless every input is well-formed\n"
      "                 and every recorded self-check passed\n");
  std::exit(code);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> json_paths;
  std::vector<std::string> trace_args;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(a, "--trace") == 0) {
      if (++i >= argc) usage(2);
      trace_args.push_back(argv[i]);
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(0);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "osim-report: unknown flag '%s'\n", a);
      usage(2);
    } else {
      json_paths.push_back(a);
    }
  }
  if (json_paths.empty() && trace_args.empty()) usage(2);

  std::vector<ResultFile> files;
  files.reserve(json_paths.size());
  for (const std::string& path : json_paths) {
    ResultFile file;
    if (!load_results(path, file)) continue;
    files.push_back(std::move(file));
  }
  // Trace-suffix index -> cell, usable when the loaded results hold exactly
  // one bench (a --trace run traces one bench's cells, in registration
  // order). Inner Json nodes are heap-stable, so the pointers survive the
  // vector moves above.
  std::vector<const Cell*> cell_by_index;
  {
    const BenchRecord* only = nullptr;
    std::size_t nbenches = 0;
    for (const ResultFile& file : files) {
      for (const auto& [unused, rec] : file.benches) {
        (void)unused;
        only = &rec;
        ++nbenches;
      }
    }
    if (nbenches == 1) {
      for (const Cell& c : only->cells) cell_by_index.push_back(&c);
    }
  }

  for (const ResultFile& file : files) {
    const std::string& path = file.path;
    std::printf("# %s\n", path.c_str());
    for (const auto& [name, rec] : file.benches) {
      std::printf("\n## %s — scale %.2f, %llu thread(s), %.2fs wall",
                  name.c_str(), rec.scale,
                  static_cast<unsigned long long>(rec.threads),
                  rec.wall_seconds);
      std::printf(rec.checks_passed ? "\n" : " — SELF-CHECKS FAILED\n");
      if (!rec.checks_passed) {
        fail(path + ": bench '" + name + "' recorded failed self-checks");
      }
      report_checks(path, name, rec);
      const Formatter* f = nullptr;
      for (const Formatter& cand : kFormatters) {
        if (name == cand.bench) f = &cand;
      }
      if (f == nullptr) {
        std::printf("(no table formatter for this bench; %zu cells)\n",
                    rec.cells.size());
        continue;
      }
      std::printf("%s\n\n", f->title);
      f->print(rec);
    }
  }

  std::size_t traces_read = 0;
  for (const std::string& arg : trace_args) {
    const std::vector<std::string> files = expand_trace_arg(arg);
    if (files.empty()) {
      fail("no trace file at " + arg + " (or " + arg + ".0)");
      continue;
    }
    for (const std::string& f : files) {
      // Per-cell trace files carry the registering cell's index as their
      // suffix; label each section with that cell's name and GC policy so
      // the lifetime/lag distributions read per policy.
      std::string label;
      const std::size_t dot = f.rfind('.');
      if (dot != std::string::npos && dot + 1 < f.size()) {
        char* end = nullptr;
        const unsigned long idx = std::strtoul(f.c_str() + dot + 1, &end, 10);
        if (end != nullptr && *end == '\0') {
          if (const Cell* c = cell_by_index.size() > idx
                                  ? cell_by_index[idx]
                                  : nullptr) {
            label = "cell " + c->name + ", gc=" + c->gc;
          }
        }
      }
      traces_read += report_trace(f, label) ? 1 : 0;
    }
  }

  if (validate) {
    std::printf("\nvalidate: %zu result file(s), %zu trace(s), %d error(s)\n",
                json_paths.size(), traces_read, g_errors);
  }
  return validate && g_errors > 0 ? 1 : 0;
}
