#!/usr/bin/env bash
# clang-tidy over the simulator sources using the repo's .clang-tidy
# profile and the compile database from the default build directory.
#
# Degrades gracefully: toolchains without clang-tidy (the perf container
# ships GCC only) skip with a notice and exit 0, so CI lanes can call this
# unconditionally and only clang-equipped lanes enforce it.
#
# Usage: tools/run-lint.sh [BUILD_DIR] [JOBS]
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${1:-build}"
jobs="${2:-$(nproc)}"

# Layering lint (toolchain-free, always enforced): the backend-agnostic
# engine layer must stay consumable by everything above it, so src/core
# may depend only on core/, sim/, and telemetry/ headers — never on
# runtime/, bench/, or analysis/. A violation here is how facade
# abstractions rot: the shared layer quietly reaches back up the stack.
layering_bad=$(grep -rn '#include "\(runtime\|bench\|analysis\)/' src/core || true)
if [ -n "$layering_bad" ]; then
  echo "run-lint: LAYERING VIOLATION — src/core includes an upper layer:"
  echo "$layering_bad"
  exit 1
fi
echo "run-lint: layering OK (src/core depends only on core/, sim/, telemetry/)"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "run-lint: clang-tidy not installed; skipping (install LLVM to lint)"
  exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run-lint: generating compile database in $build_dir"
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# Lint the first-party translation units; generated/third-party code and
# the assembly shim are out of scope.
mapfile -t sources < <(git ls-files 'src/**/*.cpp' 'bench/*.cpp' \
                                    'tools/*.cpp')
echo "run-lint: ${#sources[@]} files, -j$jobs"

if command -v run-clang-tidy > /dev/null 2>&1; then
  run-clang-tidy -p "$build_dir" -j "$jobs" -quiet "${sources[@]}"
else
  status=0
  for f in "${sources[@]}"; do
    clang-tidy -p "$build_dir" --quiet "$f" || status=1
  done
  exit "$status"
fi
