// osim-check: offline protocol validation of binary event traces.
//
// Reads the trace files written by `bench_* --trace PATH` (or any
// telemetry::FileSink stream) and replays them through the same invariant
// engine the `--check` bench flag runs online (analysis::Checker): the
// determinacy-race detector, the version-lifecycle state machine, lock
// discipline, and GC reclamation safety. Findings print one per line;
// the exit status is non-zero iff any error-severity finding fired
// (`--strict` promotes warnings to errors).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "analysis/checker.hpp"
#include "telemetry/trace.hpp"

namespace {

/// Expand `p` to {p} if it exists, else {p.0, p.1, ...} (the per-cell
/// suffixes the bench driver writes).
std::vector<std::string> expand_trace_arg(const std::string& p) {
  std::vector<std::string> out;
  if (std::ifstream(p).good()) {
    out.push_back(p);
    return out;
  }
  for (int i = 0;; ++i) {
    const std::string candidate = p + "." + std::to_string(i);
    if (!std::ifstream(candidate).good()) break;
    out.push_back(candidate);
  }
  return out;
}

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: osim-check [--strict] [--window N] [--max-findings N] "
      "TRACE...\n"
      "  Replays binary event traces (bench --trace output) through the\n"
      "  O-structure protocol checker. Each TRACE expands to TRACE.0,\n"
      "  TRACE.1, ... when the bare path does not exist.\n"
      "  --strict          advisory findings also fail the run\n"
      "  --window N        LOAD-LATEST race window depth (default 64)\n"
      "  --max-findings N  stop recording after N findings (default 256)\n");
  std::exit(code);
}

long parse_count(const char* argv0, const char* flag, const char* val) {
  char* end = nullptr;
  const long n = std::strtol(val, &end, 10);
  if (end == val || *end != '\0' || n <= 0) {
    std::fprintf(stderr, "%s: bad %s value '%s'\n", argv0, flag, val);
    usage(2);
  }
  return n;
}

}  // namespace

int main(int argc, char** argv) {
  osim::analysis::CheckerOptions opt;
  std::vector<std::string> trace_args;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--strict") == 0) {
      opt.strict = true;
    } else if (std::strcmp(a, "--window") == 0) {
      if (++i >= argc) usage(2);
      opt.read_window =
          static_cast<std::size_t>(parse_count(argv[0], a, argv[i]));
    } else if (std::strcmp(a, "--max-findings") == 0) {
      if (++i >= argc) usage(2);
      opt.max_findings =
          static_cast<std::size_t>(parse_count(argv[0], a, argv[i]));
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(0);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "osim-check: unknown flag '%s'\n", a);
      usage(2);
    } else {
      trace_args.push_back(a);
    }
  }
  if (trace_args.empty()) usage(2);

  std::size_t traces = 0, total_errors = 0, total_warnings = 0;
  bool io_error = false;
  for (const std::string& arg : trace_args) {
    const std::vector<std::string> files = expand_trace_arg(arg);
    if (files.empty()) {
      std::fprintf(stderr, "osim-check: no trace file at %s (or %s.0)\n",
                   arg.c_str(), arg.c_str());
      io_error = true;
      continue;
    }
    for (const std::string& path : files) {
      std::vector<osim::telemetry::TraceEvent> events;
      try {
        events = osim::telemetry::read_trace_file(path);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "osim-check: %s\n", e.what());
        io_error = true;
        continue;
      }
      // One checker per trace: each cell is its own simulation, so state
      // (clocks, lock tables, block lifecycles) must not leak across files.
      // Core count isn't recorded in the stream; size the vector clocks to
      // the highest core that appears.
      int cores = 1;
      for (const osim::telemetry::TraceEvent& e : events) {
        if (static_cast<int>(e.core) + 1 > cores) {
          cores = static_cast<int>(e.core) + 1;
        }
      }
      // Replay through the same sink front end the engines' tracers drive
      // online: offline replay and --check runs share one ingestion path.
      osim::analysis::CheckerSink sink(cores, opt);
      for (const osim::telemetry::TraceEvent& e : events) {
        sink.on_event(e);
      }
      osim::analysis::Checker& checker = sink.checker();
      checker.finish();
      ++traces;
      total_errors += static_cast<std::size_t>(checker.error_count());
      total_warnings += static_cast<std::size_t>(checker.warning_count());
      std::printf("%s: %zu events, %llu error(s), %llu warning(s)%s\n",
                  path.c_str(), events.size(),
                  static_cast<unsigned long long>(checker.error_count()),
                  static_cast<unsigned long long>(checker.warning_count()),
                  checker.total_findings() > checker.findings().size()
                      ? " (findings capped)"
                      : "");
      for (const osim::analysis::Finding& f : checker.findings()) {
        std::printf("  %s\n", osim::analysis::to_string(f).c_str());
      }
    }
  }
  std::printf("osim-check: %zu trace(s), %zu error(s), %zu warning(s)\n",
              traces, total_errors, total_warnings);
  return (total_errors > 0 || io_error) ? 1 : 0;
}
