#!/usr/bin/env bash
# Sanitizer CI gate: build and run the unit suite under ASan+UBSan, then
# the host-threading tests under TSan. Any sanitizer report fails the
# script (halt_on_error aborts the offending test, which fails ctest).
#
# The simulated cores are cooperative fibers on hand-rolled stack switches
# (src/sim/fiber_switch.S); ASan and UBSan handle that fine, but TSan's
# shadow state does not follow custom context switches, so the TSan legs
# run only fiber-free code: the host-side thread-pool tests and the
# functional backend (which executes tasks inline, no fibers).
#
# Usage: tools/run-sanitizers.sh [JOBS]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs="${1:-$(nproc)}"

# Sanitizer runtime knobs: abort on the first report rather than printing
# and carrying on, so CI can't go green past a finding.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1:abort_on_error=0"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
export TSAN_OPTIONS="halt_on_error=1"

echo "== ASan+UBSan: full unit suite =="
cmake --preset asan-ubsan
cmake --build --preset asan-ubsan -j "$jobs"
# Unit tests only: the bench_smoke label re-runs whole benches, which is
# redundant coverage at sanitizer speed.
ctest --test-dir build-asan-ubsan --output-on-failure -j "$jobs" \
  -LE bench_smoke

echo
echo "== ASan+UBSan: functional backend, bench path =="
# The unit suite above already runs the backend differential tests; this
# adds the driver->Env->FunctionalBackend bench path under strict checking.
cmake --build --preset asan-ubsan -j "$jobs" --target bench_gc_overhead
./build-asan-ubsan/bench/bench_gc_overhead --quick --threads 2 \
  --check=strict --backend=functional
# Same path with the bounded-space collector steering the paper-table
# cells (the pinned comparison pair runs both policies either way).
./build-asan-ubsan/bench/bench_gc_overhead --quick --threads 2 \
  --check=strict --backend=functional --gc=bounded

echo
echo "== ASan+UBSan: osim-mc exhaustive exploration =="
# The model checker exercises the concurrent engine's rarest paths by
# construction (every interleaving of each litmus), so an instrumented
# sweep is disproportionately valuable: any schedule-dependent heap
# misuse or UB in the store shows up here first. Replay of the committed
# fixture also pins the scheduler's own bookkeeping under ASan.
cmake --build --preset asan-ubsan -j "$jobs" --target osim-mc
for prog in mp2 lock_handoff wide3 gc_fence ctx_bound deadlock_pair; do
  ./build-asan-ubsan/tools/osim-mc --program "$prog" --mode naive
done
./build-asan-ubsan/tools/osim-mc --replay tools/testdata/mc_mp2.sched

echo
echo "== ASan+UBSan: chaos soak (fault injection + abort/retry) =="
# The degradation paths — injected kResourceExhausted, abort_task rollback,
# backoff-and-retry, giveup post-mortem cleanup — run code (journal replay,
# shadow restore, park/wake under stop) that a clean run never touches.
# The chaos harness drives both engines through them deterministically.
cmake --build --preset asan-ubsan -j "$jobs" --target osim-chaos
./build-asan-ubsan/tools/osim-chaos --backend both --rounds 2 --tasks 16 \
  --ops 200 --workers 4 --retries 50 --seed 11
# Aggressive leg: retries exhausted, every giveup must still unwind to a
# checker-clean state (exercises the abort-on-giveup path end to end).
./build-asan-ubsan/tools/osim-chaos --backend serial --rounds 1 --tasks 16 \
  --ops 200 --retries 2 --inject "pool:0.02,deadlock:0.01,seed=99"

echo
echo "== TSan: host thread pool =="
cmake --preset tsan
cmake --build --preset tsan -j "$jobs" --target test_host_pool
# Run the binary directly: only this target is built, so ctest's
# discovered test lists for the rest of the tree don't exist here.
./build-tsan/tests/test_host_pool

echo
echo "== TSan: functional engine under the driver's thread pool =="
# The functional backend has no fibers — tasks run inline on the calling
# host thread — so unlike the cycle-accurate machine it CAN run under
# TSan. The experiment driver fans cells out across real host threads, so
# this leg checks the functional engine for host-level races end to end.
cmake --build --preset tsan -j "$jobs" --target bench_gc_overhead
./build-tsan/bench/bench_gc_overhead --quick --threads 2 \
  --check=strict --backend=functional
./build-tsan/bench/bench_gc_overhead --quick --threads 2 \
  --check=strict --backend=functional --gc=bounded

echo
echo "== TSan: concurrent engine (seqlock + epoch reclamation) =="
# The whole point of ConcurrentVersionStore is to be data-race-free at the
# C++ memory-model level, not merely "works on x86": every field shared
# with lock-free readers is std::atomic and the seqlock fences pair
# acquire/release. The stress test hammers optimistic readers against
# writers, lock hand-offs, and block reclamation on real host threads,
# which is exactly the code TSan can follow (no fibers anywhere).
cmake --build --preset tsan -j "$jobs" --target test_concurrent_store
./build-tsan/tests/test_concurrent_store
# The GcPolicy differential: the bounded range rule deciding reclaims
# under the shard lock while writer/reader threads race (plus the serial
# functional-backend stress, which is fiber-free and TSan-safe too).
cmake --build --preset tsan -j "$jobs" --target test_gc_policy
./build-tsan/tests/test_gc_policy

echo
echo "== TSan: VersionEngine facade conformance (concurrent cells) =="
# Batched execute() on real host threads: the conformance suite's
# Concurrent* tests drive ConcurrentVersionStore purely through the
# facade — the matrix cells single-driver, the threaded test as per-task
# batches under the work pool — so a race in the dispatch loop or in
# Results accumulation surfaces here. (The serial cells need the fiber
# machine, which TSan cannot follow; the filter keeps them out.)
cmake --build --preset tsan -j "$jobs" --target test_version_engine
./build-tsan/tests/test_version_engine --gtest_filter='*Concurrent*'

echo
echo "== TSan: concurrent bench path (--exec=concurrent) =="
# End to end: script generation, the work-stealing pool, the strict
# checker riding the store's tracer, and the scaling cells.
cmake --build --preset tsan -j "$jobs" --target bench_backend_throughput
./build-tsan/bench/bench_backend_throughput --quick --check=strict \
  --backend=functional --exec=concurrent

echo
echo "== TSan: concurrent chaos soak (abort/retry on real threads) =="
# Workers aborting and retrying tasks while neighbours run is the most
# race-prone path in the concurrent engine: journal replay under the shard
# locks, shadow restores racing optimistic readers, wake-ups of parked ops
# whose version just vanished. TSan follows all of it (no fibers).
cmake --build --preset tsan -j "$jobs" --target osim-chaos
./build-tsan/tools/osim-chaos --backend concurrent --rounds 2 --tasks 16 \
  --ops 150 --workers 4 --retries 50 --seed 7

echo
echo "sanitizer gate: PASS"
