// osim-chaos: fault-injection soak of both engines' abort/retry recovery.
//
// Runs the same deterministic task mix on the serial VersionStore (inline,
// functional timing) and on ConcurrentVersionStore under the retrying task
// pool, with a per-round deterministic fault plan (core/fault_injection.hpp)
// firing at the engines' injection sites: block-pool and slot-table
// exhaustion, deadlock timeouts, GC delays. Every injected fault is
// survived by rolling the victim task back (abort_task) and re-running it
// with bounded backoff; a task past its retry cap gives up, but gives up
// *clean* — its stores unlinked and its locks released.
//
// After each round the harness asserts convergence, not absence of faults:
//
//   * the protocol checker (analysis/checker.hpp) saw no errors across the
//     whole event stream, injected aborts included,
//   * every store of a task that committed reads back with the right data,
//   * every version created only by a task that gave up is absent,
//   * the concurrent store's structural integrity check passes.
//
// When a round finishes with zero giveups on both engines, the surviving
// (slot, version, data) set must be *identical* across them — the committed
// effects of a fully recovered run are injection- and schedule-independent.
//
// Results land in the shared bench JSON (schema 2) under "chaos_soak";
// osim-report prints the degradation table from it.
#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "analysis/checker.hpp"
#include "bench_util.hpp"
#include "core/concurrent_store.hpp"
#include "core/fault.hpp"
#include "core/fault_injection.hpp"
#include "core/version_engine.hpp"
#include "core/version_store.hpp"
#include "driver.hpp"
#include "runtime/concurrent.hpp"
#include "runtime/functional.hpp"
#include "telemetry/metrics.hpp"

namespace osim {
namespace {

using bench::CellResult;
using bench::Driver;

struct ChaosOptions {
  int rounds = 3;
  int tasks = 24;
  int ops = 300;        ///< ops per task body
  int workers = 8;      ///< concurrent pool width
  int retries = 8;      ///< per-task retry cap
  std::uint64_t seed = 1;
  std::string inject;   ///< fixed plan; "" = derived per round
  bool serial = true;
  bool concurrent = true;
  bench::Options bench;  ///< json path / check mode for the driver
};

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: osim-chaos [options]\n"
      "  --backend serial|concurrent|both  engines to soak (default both)\n"
      "  --rounds N       soak rounds per engine (default 3)\n"
      "  --tasks N        tasks per round (default 24)\n"
      "  --ops N          versioned ops per task (default 300)\n"
      "  --workers N      concurrent pool threads (default 8)\n"
      "  --retries N      per-task retry cap (default 8)\n"
      "  --seed N         master seed; round r derives seed+r (default 1)\n"
      "  --inject SPEC    fixed fault plan for every round (default: a\n"
      "                   derived rate plan over pool/slots/deadlock)\n"
      "  --json PATH      merge results into the bench JSON (chaos_soak)\n");
  std::exit(code);
}

std::uint64_t splitmix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

constexpr std::size_t kSlots = 64;

/// Version namespace of task `t`: disjoint per task, so a version absent
/// after a giveup can only have been created by that task.
Ver ver_base(TaskId t) { return static_cast<Ver>(t) * 100000 + 2; }

std::uint64_t task_seed(std::uint64_t round_seed, TaskId t) {
  std::uint64_t s = round_seed ^ (static_cast<std::uint64_t>(t) *
                                  0xD1B54A32D192ED03ull);
  return splitmix64(s);
}

std::uint64_t chaos_data(std::uint64_t slot, Ver v) {
  return (v * 0x9E3779B97F4A7C15ull) ^ (slot * 0xBF58476D1CE4E5B9ull) ^
         0x5A5A5A5A5A5A5A5Aull;
}

struct Store3 {
  std::uint64_t slot;
  Ver v;
  std::uint64_t data;
};

/// The slot of task `t`'s first op — always a store of ver_base(t), so a
/// later task can name it for a cross-task (potentially blocking) read.
std::uint64_t first_store_slot(std::uint64_t round_seed, TaskId t) {
  std::uint64_t s = task_seed(round_seed, t);
  return (splitmix64(s) >> 8) % kSlots;
}

/// One task body, identical for both engines and deterministic per
/// (round, task): a mix of stores, validated reads of its own versions and
/// the setup version, lock/unlock round-trips, renames, and an occasional
/// read of the *previous* task's first store (the one op that can block in
/// the concurrent engine). `mine` is rebuilt from scratch on every attempt
/// — a retry replays the exact same effects the abort undid. Takes the
/// facade, not a template: per-op calls (rather than one execute() batch)
/// are deliberate — a fault must unwind to the retry machinery mid-body.
void run_body(VersionEngine& st, OAddr base, TaskId t,
              std::uint64_t round_seed, int ops, std::vector<Store3>& mine) {
  mine.clear();
  std::uint64_t s = task_seed(round_seed, t);
  Ver vnext = ver_base(t);
  auto check_read = [](std::uint64_t got, std::uint64_t want,
                       std::uint64_t slot, Ver v) {
    if (got != want) {
      throw std::runtime_error("chaos: torn read: slot " +
                               std::to_string(slot) + " version " +
                               std::to_string(v) + " returned " +
                               std::to_string(got));
    }
  };
  for (int j = 0; j < ops; ++j) {
    const std::uint64_t r = splitmix64(s);
    const std::uint64_t slot = (r >> 8) % kSlots;
    const OAddr a = base + 8 * slot;
    const unsigned k = static_cast<unsigned>(r % 100);
    if (k < 40 || mine.empty()) {
      const Ver v = vnext++;
      st.store_version(a, v, chaos_data(slot, v));
      mine.push_back({slot, v, chaos_data(slot, v)});
    } else if (k < 65) {
      const Store3& m = mine[(r >> 16) % mine.size()];
      check_read(st.load_version(base + 8 * m.slot, m.v), m.data, m.slot,
                 m.v);
    } else if (k < 75) {
      check_read(st.load_version(a, 1), chaos_data(slot, 1), slot, 1);
    } else if (k < 80 && t > 1) {
      const std::uint64_t ps = first_store_slot(round_seed, t - 1);
      const Ver pv = ver_base(t - 1);
      check_read(st.load_version(base + 8 * ps, pv), chaos_data(ps, pv), ps,
                 pv);
    } else if (k < 90) {
      const Store3& m = mine.back();
      check_read(st.lock_load_version(base + 8 * m.slot, m.v, t), m.data,
                 m.slot, m.v);
      st.unlock_version(base + 8 * m.slot, m.v, t);
    } else {
      // Lock an own version and release it renaming: the renamed version
      // carries the same value and joins the rollback journal.
      const Store3& m = mine[(r >> 16) % mine.size()];
      const Ver nv = vnext++;
      check_read(st.lock_load_version(base + 8 * m.slot, m.v, t), m.data,
                 m.slot, m.v);
      st.unlock_version(base + 8 * m.slot, m.v, t, nv);
      mine.push_back({m.slot, nv, m.data});
    }
  }
}

bool recoverable(const OFault& f) {
  return f.kind() == FaultKind::kWouldBlock ||
         f.kind() == FaultKind::kResourceExhausted;
}

/// FNV over the committed (slot, version, data) triples in task order —
/// comparable across engines when both converged without giveups.
std::uint64_t committed_checksum(const std::vector<std::vector<Store3>>& per,
                                 const std::vector<bool>& committed) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t t = 0; t < per.size(); ++t) {
    if (!committed[t]) continue;
    for (const Store3& m : per[t]) {
      h = (h ^ m.slot) * 0x100000001b3ull;
      h = (h ^ m.v) * 0x100000001b3ull;
      h = (h ^ m.data) * 0x100000001b3ull;
    }
  }
  return h;
}

struct RoundResult {
  CellResult cell;
  std::uint64_t giveups = 0;
  bool clean = true;          ///< checker + state verification passed
  std::string first_problem;  ///< empty when clean
};

void note(RoundResult& rr, const std::string& what) {
  rr.clean = false;
  if (rr.first_problem.empty()) rr.first_problem = what;
}

/// Verify surviving state against the commit record through `peek`:
/// committed stores present with the right data, giveup-only versions gone.
template <typename Peek>
void verify_state(RoundResult& rr, const std::vector<std::vector<Store3>>& per,
                  const std::vector<bool>& committed, Peek&& peek) {
  for (std::size_t t = 0; t < per.size(); ++t) {
    for (const Store3& m : per[t]) {
      const std::optional<std::uint64_t> got = peek(m.slot, m.v);
      if (committed[t]) {
        if (!got || *got != m.data) {
          note(rr, "committed version " + std::to_string(m.v) + " of slot " +
                       std::to_string(m.slot) +
                       (got ? " has wrong data" : " is missing"));
        }
      } else if (got) {
        note(rr, "aborted version " + std::to_string(m.v) + " of slot " +
                     std::to_string(m.slot) + " survived its rollback");
      }
    }
  }
}

RoundResult run_serial_round(const ChaosOptions& opt, std::uint64_t round_seed,
                             const std::string& spec) {
  RoundResult rr;
  telemetry::MetricRegistry reg(1);
  FunctionalTiming timing;
  OStructConfig ocfg;
  ocfg.initial_pool_blocks = std::size_t{1} << 12;
  ocfg.gc_watermark = 0;  // never auto-collect: every version stays probeable
  ocfg.track_aborts = true;
  VersionStore vs(ocfg, 1, reg, timing);
  // Armed after setup (below): a fault during the setup stores has no
  // task to absorb it by aborting.
  FaultInjector inj(FaultPlan::parse(spec));

  analysis::CheckerSink* checker = analysis::attach_checker(vs, 1);

  timing.set_core(0);
  const OAddr base = vs.alloc(kSlots);
  for (std::uint64_t s = 0; s < kSlots; ++s) {
    vs.store_version(base + 8 * s, 1, chaos_data(s, 1));
  }
  vs.attach_fault_injector(&inj);

  const std::size_t nt = static_cast<std::size_t>(opt.tasks);
  std::vector<std::vector<Store3>> per(nt + 1);
  std::vector<bool> committed(nt + 1, false);
  std::uint64_t retries = 0, giveups = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (TaskId t = 1; t <= static_cast<TaskId>(opt.tasks); ++t) {
    vs.task_created(t);
    for (int attempt = 0;; ++attempt) {
      vs.task_begin(t);
      try {
        run_body(vs, base, t, round_seed, opt.ops, per[t]);
        vs.task_end(t);
        committed[t] = true;
        break;
      } catch (const OFault& f) {
        if (!recoverable(f)) throw;
        vs.abort_task(t);
        if (attempt >= opt.retries) {
          // Give up clean: the rollback above already undid the attempt;
          // retiring the task keeps the checker's task pairing balanced.
          vs.task_end(t);
          ++giveups;
          break;
        }
        ++retries;
      }
    }
  }
  const double work =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  verify_state(rr, per, committed, [&](std::uint64_t slot, Ver v) {
    return vs.peek_version(base + 8 * slot, v);
  });
  bench::fill_check(checker->checker(), rr.cell);
  if (rr.cell.check_errors != 0) note(rr, "protocol checker found errors");

  rr.giveups = giveups;
  rr.cell.backend = "functional";
  rr.cell.exec = "inline";
  rr.cell.ops = static_cast<std::uint64_t>(opt.tasks) *
                static_cast<std::uint64_t>(opt.ops);
  rr.cell.work_seconds = work;
  rr.cell.checksum = giveups == 0 ? committed_checksum(per, committed) : 0;
  // Facade-level accounting: the same keys, from the same EngineStats
  // fields, as the concurrent round below — osim-report's degradation
  // table reads one schema for both engines.
  const EngineStats es = vs.engine_stats();
  rr.cell.metrics = bench::Json::object();
  rr.cell.metrics["chaos/aborts"] = bench::Json::number(es.tasks_aborted);
  rr.cell.metrics["chaos/aborted_blocks"] =
      bench::Json::number(es.aborted_blocks);
  rr.cell.metrics["chaos/aborted_locks"] =
      bench::Json::number(es.aborted_locks);
  rr.cell.metrics["chaos/retries"] = bench::Json::number(retries);
  rr.cell.metrics["chaos/giveups"] = bench::Json::number(giveups);
  rr.cell.metrics["chaos/backoff_us"] = bench::Json::number(std::uint64_t{0});
  rr.cell.metrics["chaos/inject"] = bench::Json::string(spec);
  return rr;
}

RoundResult run_concurrent_round(const ChaosOptions& opt,
                                 std::uint64_t round_seed,
                                 const std::string& spec) {
  RoundResult rr;
  ConcurrencyConfig cfg;
  cfg.track_aborts = true;
  // Short timeout: an injected-deadlock victim's waiters must fail over to
  // their own abort/retry quickly for the soak to converge.
  cfg.deadlock_timeout_ms = 500;
  cfg.max_threads = opt.workers + 2;
  ConcurrentVersionStore store(cfg);
  FaultInjector inj(FaultPlan::parse(spec));  // armed after setup

  // engine.tracer() switches the concurrent store into linearized-trace
  // mode; attach before any ISA op so setup stores are checked too.
  analysis::CheckerSink* checker =
      analysis::attach_checker(store, opt.workers + 1);

  const OAddr base = store.alloc(kSlots);
  for (std::uint64_t s = 0; s < kSlots; ++s) {
    store.store_version(base + 8 * s, 1, chaos_data(s, 1));
  }
  store.attach_fault_injector(&inj);

  const std::size_t nt = static_cast<std::size_t>(opt.tasks);
  std::vector<std::vector<Store3>> per(nt + 1);
  std::vector<bool> committed(nt + 1, false);

  ConcurrentTaskPool pool(store, opt.workers);
  ConcurrentTaskPool::RetryPolicy retry;
  retry.max_retries = opt.retries;
  retry.backoff_base_us = 50;
  retry.backoff_cap_us = 2000;
  pool.set_retry_policy(retry);
  for (TaskId t = 1; t <= static_cast<TaskId>(opt.tasks); ++t) {
    pool.create_task(t, [&, t](TaskId) {
      run_body(store, base, t, round_seed, opt.ops, per[t]);
      committed[t] = true;
    });
  }
  double work = 0.0;
  bool run_failed = false;
  std::string run_error;
  try {
    work = pool.run();
  } catch (const std::exception& e) {
    // A task past its retry cap unwinds the run — degraded, not corrupted:
    // every incomplete task was rolled back on its way out, which is
    // exactly what the state verification below asserts.
    run_failed = true;
    run_error = e.what();
  }

  const ConcurrentVersionStore::IntegrityReport ir = store.check_integrity();
  if (!ir.ok) note(rr, "integrity: " + ir.detail);
  verify_state(rr, per, committed, [&](std::uint64_t slot, Ver v) {
    return store.peek_version(base + 8 * slot, v);
  });
  bench::fill_check(checker->checker(), rr.cell);
  if (rr.cell.check_errors != 0) note(rr, "protocol checker found errors");

  const EngineStats es = store.engine_stats();
  const ConcurrentTaskPool::RecoveryStats rs = pool.recovery_stats();
  rr.giveups = rs.giveups;
  rr.cell.backend = "functional";
  rr.cell.exec = "concurrent";
  rr.cell.conc_threads = opt.workers;
  rr.cell.ops = static_cast<std::uint64_t>(opt.tasks) *
                static_cast<std::uint64_t>(opt.ops);
  rr.cell.work_seconds = work;
  rr.cell.checksum =
      rs.giveups == 0 && !run_failed ? committed_checksum(per, committed) : 0;
  rr.cell.metrics = bench::Json::object();
  rr.cell.metrics["chaos/aborts"] = bench::Json::number(es.tasks_aborted);
  rr.cell.metrics["chaos/aborted_blocks"] =
      bench::Json::number(es.aborted_blocks);
  rr.cell.metrics["chaos/aborted_locks"] =
      bench::Json::number(es.aborted_locks);
  rr.cell.metrics["chaos/retries"] = bench::Json::number(rs.retries);
  rr.cell.metrics["chaos/giveups"] = bench::Json::number(rs.giveups);
  rr.cell.metrics["chaos/backoff_us"] = bench::Json::number(rs.backoff_us);
  rr.cell.metrics["chaos/run_failed"] =
      bench::Json::number(std::uint64_t{run_failed ? 1u : 0u});
  rr.cell.metrics["chaos/inject"] = bench::Json::string(spec);
  if (run_failed) {
    rr.cell.metrics["chaos/run_error"] = bench::Json::string(run_error);
  }
  return rr;
}

int run(const ChaosOptions& opt) {
  Driver driver("chaos_soak", opt.bench);
  std::printf("chaos soak: %d round(s), %d tasks x %d ops, retry cap %d\n\n",
              opt.rounds, opt.tasks, opt.ops, opt.retries);
  for (int r = 0; r < opt.rounds; ++r) {
    const std::uint64_t round_seed = opt.seed + static_cast<std::uint64_t>(r);
    const std::string spec =
        !opt.inject.empty()
            ? opt.inject
            : "pool:0.002,slots:0.0005,deadlock:0.001,gc-delay:0.005,seed=" +
                  std::to_string(round_seed);
    // Each round runs here, once; the driver cell just records the result
    // (the RoundResult verdict fields don't fit through CellFn).
    RoundResult serial, conc;
    if (opt.serial) {
      serial = run_serial_round(opt, round_seed, spec);
      const CellResult cell = serial.cell;
      driver.add("r" + std::to_string(r) + "/serial",
                 [cell] { return cell; });
      driver.run_all();
    }
    if (opt.concurrent) {
      conc = run_concurrent_round(opt, round_seed, spec);
      const CellResult cell = conc.cell;
      driver.add("r" + std::to_string(r) + "/conc", [cell] { return cell; });
      driver.run_all();
    }
    std::printf("round %d  inject %s\n", r, spec.c_str());
    auto metric = [](const CellResult& c, const char* key) {
      const bench::Json* v = c.metrics.find(key);
      return v != nullptr ? v->as_u64() : 0;
    };
    if (opt.serial) {
      std::printf("  serial      aborts=%llu retries=%llu giveups=%llu  %s\n",
                  static_cast<unsigned long long>(
                      metric(serial.cell, "chaos/aborts")),
                  static_cast<unsigned long long>(
                      metric(serial.cell, "chaos/retries")),
                  static_cast<unsigned long long>(serial.giveups),
                  serial.clean ? "clean" : serial.first_problem.c_str());
      driver.check("r" + std::to_string(r) + " serial converged clean",
                   serial.clean);
    }
    if (opt.concurrent) {
      std::printf("  concurrent  aborts=%llu retries=%llu giveups=%llu  %s\n",
                  static_cast<unsigned long long>(
                      metric(conc.cell, "chaos/aborts")),
                  static_cast<unsigned long long>(
                      metric(conc.cell, "chaos/retries")),
                  static_cast<unsigned long long>(conc.giveups),
                  conc.clean ? "clean" : conc.first_problem.c_str());
      driver.check("r" + std::to_string(r) + " concurrent converged clean",
                   conc.clean);
    }
    if (opt.serial && opt.concurrent && serial.giveups == 0 &&
        conc.giveups == 0) {
      driver.check(
          "r" + std::to_string(r) +
              " committed state identical across engines",
          serial.cell.checksum == conc.cell.checksum);
    }
  }
  return driver.finish();
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  ChaosOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (++i >= argc) {
        std::fprintf(stderr, "osim-chaos: %s needs a value\n", flag);
        usage(2);
      }
      return argv[i];
    };
    auto count = [&](const char* flag) {
      const char* v = value(flag);
      char* end = nullptr;
      const long long n = std::strtoll(v, &end, 10);
      if (end == v || *end != '\0' || n <= 0) {
        std::fprintf(stderr, "osim-chaos: bad %s value '%s'\n", flag, v);
        usage(2);
      }
      return n;
    };
    if (std::strcmp(a, "--backend") == 0) {
      const std::string b = value(a);
      opt.serial = b == "serial" || b == "both";
      opt.concurrent = b == "concurrent" || b == "both";
      if (!opt.serial && !opt.concurrent) {
        std::fprintf(stderr, "osim-chaos: bad --backend '%s'\n", b.c_str());
        usage(2);
      }
    } else if (std::strcmp(a, "--rounds") == 0) {
      opt.rounds = static_cast<int>(count(a));
    } else if (std::strcmp(a, "--tasks") == 0) {
      opt.tasks = static_cast<int>(count(a));
    } else if (std::strcmp(a, "--ops") == 0) {
      opt.ops = static_cast<int>(count(a));
    } else if (std::strcmp(a, "--workers") == 0) {
      opt.workers = static_cast<int>(count(a));
    } else if (std::strcmp(a, "--retries") == 0) {
      opt.retries = static_cast<int>(count(a));
    } else if (std::strcmp(a, "--seed") == 0) {
      opt.seed = static_cast<std::uint64_t>(count(a));
    } else if (std::strcmp(a, "--inject") == 0) {
      opt.inject = value(a);
      try {
        (void)FaultPlan::parse(opt.inject);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "osim-chaos: %s\n", e.what());
        usage(2);
      }
    } else if (std::strcmp(a, "--json") == 0) {
      opt.bench.json_path = value(a);
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(0);
    } else {
      std::fprintf(stderr, "osim-chaos: unknown argument '%s'\n", a);
      usage(2);
    }
  }
  opt.bench.threads = 1;  // soak rounds must not share the host
  return run(opt);
}
