// osim-mc: systematic interleaving exploration of the concurrent engine.
//
// Runs a litmus program (workloads/opstream.hpp) through
// ConcurrentVersionStore under the cooperative scheduler and enumerates
// its interleavings (analysis/explore.hpp): exhaustive DFS, sleep-set
// partial-order reduction by default, optional preemption bound. Every
// schedule is checked for chain integrity, protocol violations, and
// equivalence with the serial VersionStore oracle. A violating schedule
// (or, with --record, the first schedule) serializes to a text replay
// file that `osim-mc --replay FILE` re-executes deterministically.
//
// Exit status: 0 = explored clean / replay reproduced byte-identically,
// 1 = a violating schedule was found, 2 = usage, parse, or replay
// divergence errors.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/explore.hpp"
#include "core/fault_injection.hpp"
#include "workloads/opstream.hpp"

namespace {

using osim::analysis::ExploreResult;
using osim::analysis::McOptions;
using osim::analysis::McProgram;

[[noreturn]] void usage(int code) {
  std::fprintf(
      stderr,
      "usage: osim-mc --list\n"
      "       osim-mc --program NAME [options]\n"
      "       osim-mc --replay FILE [--record FILE]\n"
      "  --list             print the litmus programs and exit\n"
      "  --program NAME     explore NAME's interleavings exhaustively\n"
      "  --mode por|naive   sleep-set reduction (default) or plain DFS\n"
      "  --preemptions N    CHESS-style bound on preemptive switches\n"
      "  --max-schedules N  exploration cap (default 1048576)\n"
      "  --checked          attach the online protocol checker (reads\n"
      "                     serialize, so the schedule space differs)\n"
      "  --inject SPEC      explore under a deterministic fault plan\n"
      "                     (core/fault_injection.hpp grammar, e.g.\n"
      "                     pool@2,deadlock:0.01,seed=7); recorded in the\n"
      "                     replay file and re-applied on --replay\n"
      "  --keep-going       keep exploring past the first violation\n"
      "  --record FILE      write a replay file: the violating schedule\n"
      "                     if one was found, else the first schedule\n"
      "  --compare-reduction  explore por and naive, report the ratio\n"
      "  --replay FILE      re-execute a recorded schedule; exits 0 only\n"
      "                     on byte-identical reproduction\n");
  std::exit(code);
}

std::uint64_t parse_count(const char* flag, const char* val) {
  char* end = nullptr;
  const unsigned long long n = std::strtoull(val, &end, 10);
  if (end == val || *end != '\0') {
    std::fprintf(stderr, "osim-mc: bad %s value '%s'\n", flag, val);
    usage(2);
  }
  return n;
}

/// The OSIM_MC_SEEDED_BUG value this binary's engine was compiled with.
/// The production tool always links the clean engine; the seeded test
/// binaries drive explore() directly rather than through this CLI.
constexpr int kEngineSeed =
#if defined(OSIM_MC_SEEDED_BUG)
    OSIM_MC_SEEDED_BUG;
#else
    0;
#endif

int list_programs() {
  for (const McProgram& p : osim::mc_litmus_programs()) {
    std::size_t ops = p.setup.size();
    for (const auto& t : p.threads) ops += t.size();
    std::printf("%-14s %zu threads, %zu ops  %s\n", p.name.c_str(),
                p.threads.size(), ops, p.summary.c_str());
  }
  return 0;
}

void report(const char* mode, const ExploreResult& res) {
  std::printf("%-6s %llu schedules, %llu decisions, max depth %llu%s\n",
              mode, static_cast<unsigned long long>(res.schedules),
              static_cast<unsigned long long>(res.steps_total),
              static_cast<unsigned long long>(res.max_depth),
              res.complete ? "" : " (capped)");
}

int explore_one(const McProgram& prog, const McOptions& opt,
                const std::string& record_path, bool compare_reduction) {
  ExploreResult res = osim::analysis::explore(prog, opt);
  report(opt.por ? "por" : "naive", res);
  if (res.violation_found) {
    std::printf("VIOLATION (%s): %s\n", res.example.violation_kind.c_str(),
                res.example.violation_detail.c_str());
    std::printf("  schedule: %s\n",
                osim::analysis::summarize_outcome(res.example).c_str());
  } else {
    std::printf("clean: %s\n",
                osim::analysis::summarize_outcome(res.example).c_str());
  }
  if (compare_reduction) {
    McOptions other = opt;
    other.por = !opt.por;
    ExploreResult alt = osim::analysis::explore(prog, other);
    report(other.por ? "por" : "naive", alt);
    const ExploreResult& naive = opt.por ? alt : res;
    const ExploreResult& por = opt.por ? res : alt;
    if (por.schedules > 0) {
      std::printf("reduction: %.2fx (%llu -> %llu)\n",
                  static_cast<double>(naive.schedules) /
                      static_cast<double>(por.schedules),
                  static_cast<unsigned long long>(naive.schedules),
                  static_cast<unsigned long long>(por.schedules));
    }
  }
  if (!record_path.empty()) {
    const auto& out = res.violation_found ? res.example : res.first;
    std::ofstream f(record_path, std::ios::binary);
    f << osim::analysis::serialize_schedule(prog, opt, out);
    if (!f.good()) {
      std::fprintf(stderr, "osim-mc: cannot write %s\n",
                   record_path.c_str());
      return 2;
    }
    std::printf("recorded %zu-step schedule to %s\n", out.steps.size(),
                record_path.c_str());
  }
  return res.violation_found ? 1 : 0;
}

int replay_file(const std::string& path, const std::string& record_path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) {
    std::fprintf(stderr, "osim-mc: cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << f.rdbuf();
  const std::string text = buf.str();

  osim::analysis::ReplayFile file = osim::analysis::parse_schedule(text);
  const McProgram* prog = osim::find_mc_litmus(file.program);
  if (prog == nullptr) {
    std::fprintf(stderr, "osim-mc: replay names unknown program '%s'\n",
                 file.program.c_str());
    return 2;
  }
  McOptions opt;
  opt.checked = file.checked;
  opt.seeded = kEngineSeed;
  // Replay under the recorded fault plan; the copy also makes the
  // round-trip serialization below re-emit the file's inject line.
  McProgram rprog = *prog;
  if (!file.inject.empty()) {
    rprog.cfg.inject_spec = file.inject;
    rprog.use_oracle = false;
    rprog.compare_final_state = false;
    rprog.expect_engine_errors = true;
  }
  osim::analysis::ScheduleOutcome out =
      osim::analysis::replay_schedule(rprog, opt, file);
  const std::string round_trip =
      osim::analysis::serialize_schedule(rprog, opt, out);
  if (round_trip != text) {
    std::fprintf(stderr,
                 "osim-mc: replay of %s did not reproduce byte-identically\n",
                 path.c_str());
    return 2;
  }
  std::printf("replayed %s: %s\n", file.program.c_str(),
              osim::analysis::summarize_outcome(out).c_str());
  if (!record_path.empty()) {
    std::ofstream rf(record_path, std::ios::binary);
    rf << round_trip;
  }
  return out.violation ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string program, replay_path, record_path, inject_spec;
  McOptions opt;
  opt.seeded = kEngineSeed;
  bool list = false;
  bool compare_reduction = false;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    auto value = [&](const char* flag) -> const char* {
      if (++i >= argc) {
        std::fprintf(stderr, "osim-mc: %s needs a value\n", flag);
        usage(2);
      }
      return argv[i];
    };
    if (std::strcmp(a, "--list") == 0) {
      list = true;
    } else if (std::strcmp(a, "--program") == 0) {
      program = value(a);
    } else if (std::strcmp(a, "--replay") == 0) {
      replay_path = value(a);
    } else if (std::strcmp(a, "--record") == 0) {
      record_path = value(a);
    } else if (std::strcmp(a, "--mode") == 0) {
      const std::string mode = value(a);
      if (mode == "por") {
        opt.por = true;
      } else if (mode == "naive") {
        opt.por = false;
      } else {
        std::fprintf(stderr, "osim-mc: bad --mode '%s'\n", mode.c_str());
        usage(2);
      }
    } else if (std::strcmp(a, "--preemptions") == 0) {
      opt.preemption_bound = static_cast<int>(parse_count(a, value(a)));
    } else if (std::strcmp(a, "--max-schedules") == 0) {
      opt.max_schedules = parse_count(a, value(a));
    } else if (std::strcmp(a, "--checked") == 0) {
      opt.checked = true;
    } else if (std::strcmp(a, "--inject") == 0) {
      inject_spec = value(a);
      try {
        (void)osim::FaultPlan::parse(inject_spec);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "osim-mc: %s\n", e.what());
        usage(2);
      }
    } else if (std::strcmp(a, "--keep-going") == 0) {
      opt.stop_on_violation = false;
    } else if (std::strcmp(a, "--compare-reduction") == 0) {
      compare_reduction = true;
    } else if (std::strcmp(a, "--help") == 0 || std::strcmp(a, "-h") == 0) {
      usage(0);
    } else {
      std::fprintf(stderr, "osim-mc: unknown argument '%s'\n", a);
      usage(2);
    }
  }

  try {
    if (list) return list_programs();
    if (!replay_path.empty()) return replay_file(replay_path, record_path);
    if (program.empty()) usage(2);
    const McProgram* prog = osim::find_mc_litmus(program);
    if (prog == nullptr) {
      std::fprintf(stderr,
                   "osim-mc: unknown program '%s' (--list to enumerate)\n",
                   program.c_str());
      return 2;
    }
    McProgram p = *prog;
    if (!inject_spec.empty()) {
      // Which op hits the nth consultation of a site depends on the
      // schedule, so per-op results legitimately vary across schedules:
      // skip outcome comparison (oracle and self-reference) and validate
      // what must still hold everywhere — chain integrity and, with
      // --checked, the protocol invariants.
      p.cfg.inject_spec = inject_spec;
      p.use_oracle = false;
      p.compare_final_state = false;
      p.expect_engine_errors = true;
    }
    return explore_one(p, opt, record_path, compare_reduction);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "osim-mc: %s\n", e.what());
    return 2;
  }
}
