#include "core/gc_policy.hpp"

#include <algorithm>
#include <cassert>
#include <string>

#include "core/fault.hpp"

namespace osim {

// ---------------------------------------------------------------------------
// Policy-independent task lifecycle (GC rules #1-#3)

void GcPolicy::task_created(TaskId t) {
  if (!tasks_.empty() && t < tasks_.oldest()) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "task " + std::to_string(t) +
                     " is older than the oldest unfinished task " +
                     std::to_string(tasks_.oldest()));
  }
  if (t <= floor_) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "task " + std::to_string(t) +
                     " is not above the GC floor " + std::to_string(floor_));
  }
  tasks_.add(t);
}

void GcPolicy::task_begin(TaskId t) {
  if (!tasks_.contains(t)) task_created(t);
}

void GcPolicy::task_end(TaskId t) {
  if (!tasks_.remove(t)) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "TASK-END for task " + std::to_string(t) +
                     " which is not running");
  }
  on_task_retired();
}

// ---------------------------------------------------------------------------
// PaperWatermarkPolicy

PaperWatermarkPolicy::PaperWatermarkPolicy(BlockPool& pool,
                                           telemetry::MetricRegistry& reg,
                                           GcOwner& owner)
    : GcPolicy(pool, owner),
      shadowed_blocks_(
          reg.counter(telemetry::Component::kGc, "shadowed_blocks")),
      phases_(reg.counter(telemetry::Component::kGc, "phases")),
      pending_blocks_(reg.gauge(telemetry::Component::kGc, "pending_blocks")),
      pending_batch_(reg.histogram(telemetry::Component::kGc,
                                   "pending_batch_blocks",
                                   {1, 4, 16, 64, 256, 1024, 4096, 16384})) {}

void PaperWatermarkPolicy::on_shadowed(BlockIndex b, Ver shadower) {
  VersionBlock& vb = pool_[b];
  assert(vb.state == BlockState::kLive);
  vb.state = BlockState::kShadowed;
  shadowed_.push_back({b, vb.generation, shadower});
  shadowed_blocks_.inc();
}

bool PaperWatermarkPolicy::maybe_collect() {
  if (phase_active_ || shadowed_.empty()) return false;
  pending_.swap(shadowed_);
  fence_ = 0;
  for (auto& s : pending_) {
    VersionBlock& vb = pool_[s.block];
    if (vb.generation == s.generation && vb.state == BlockState::kShadowed) {
      vb.state = BlockState::kPending;
      owner_.gc_event(telemetry::EventType::kBlockPending, vb.slot,
                      vb.version, s.block);
    }
    fence_ = std::max(fence_, s.shadower);
  }
  phase_active_ = true;
  phases_.inc();
  pending_batch_.observe(pending_.size());
  pending_blocks_.set(pending_.size());
  owner_.gc_event(telemetry::EventType::kGcPhaseBegin, 0, 0, fence_);
  try_finalize();
  return true;
}

void PaperWatermarkPolicy::forget(BlockIndex b) {
  const std::uint32_t gen = pool_[b].generation;
  auto match = [&](const Shadowed& s) {
    return s.block == b && s.generation == gen;
  };
  shadowed_.erase(std::remove_if(shadowed_.begin(), shadowed_.end(), match),
                  shadowed_.end());
  pending_.erase(std::remove_if(pending_.begin(), pending_.end(), match),
                 pending_.end());
  pending_blocks_.set(pending_.size());
}

void PaperWatermarkPolicy::try_finalize() {
  if (!phase_active_) return;
  // Every pending block's possible readers are tasks older than the fence;
  // finalize once no unfinished task is that old.
  if (!tasks_.empty() && tasks_.oldest() < fence_) return;
  finalize();
}

void PaperWatermarkPolicy::finalize() {
  std::uint64_t reclaimed = 0;
  for (auto& s : pending_) {
    VersionBlock& vb = pool_[s.block];
    if (vb.generation != s.generation || vb.state != BlockState::kPending) {
      continue;  // the O-structure was released wholesale in the meantime
    }
    assert(vb.locked_by == kNoTask &&
           "GC rules guarantee reclaimed versions are unlocked");
    owner_.gc_reclaim(s.block);
    ++reclaimed;
  }
  pending_.clear();
  pending_blocks_.set(0);
  owner_.gc_event(telemetry::EventType::kGcPhaseEnd, 0, 0, reclaimed);
  // Future tasks must be too young to read anything reclaimed under this
  // fence. (Readers of a version shadowed by `fence_` have ids < fence_, so
  // the floor is fence_ - 1; keep it simple and monotone.)
  if (fence_ > 0) floor_ = std::max(floor_, fence_ - 1);
  phase_active_ = false;
}

// ---------------------------------------------------------------------------
// BoundedSpacePolicy

BoundedSpacePolicy::BoundedSpacePolicy(std::size_t min_batch, BlockPool& pool,
                                       telemetry::MetricRegistry& reg,
                                       GcOwner& owner)
    : GcPolicy(pool, owner),
      shadowed_blocks_(
          reg.counter(telemetry::Component::kGc, "shadowed_blocks")),
      sweeps_(reg.counter(telemetry::Component::kGc, "sweeps")),
      pending_blocks_(reg.gauge(telemetry::Component::kGc, "pending_blocks")),
      reclaim_batch_(reg.histogram(telemetry::Component::kGc,
                                   "reclaim_batch_blocks",
                                   {1, 4, 16, 64, 256, 1024, 4096, 16384})),
      min_batch_(min_batch == 0 ? 1 : min_batch) {}

void BoundedSpacePolicy::on_shadowed(BlockIndex b, Ver shadower) {
  VersionBlock& vb = pool_[b];
  assert(vb.state == BlockState::kLive);
  vb.state = BlockState::kShadowed;
  tracked_.push_back({b, vb.generation, vb.version, shadower});
  shadowed_blocks_.inc();
  pending_blocks_.set(tracked_.size());
}

void BoundedSpacePolicy::on_store_complete() {
  // Amortized space bound: every sweep is paid for by `min_batch_` new
  // registrations, and between sweeps the tracked set can exceed the
  // reclaimable-free survivor set by at most that batch. Runs here rather
  // than from on_shadowed so reclamation never interleaves with a store
  // whose timing-layer install is still in flight.
  if (tracked_.size() >= survivors_ + min_batch_) sweep();
}

bool BoundedSpacePolicy::maybe_collect() {
  if (tracked_.empty()) return false;
  return sweep() != 0;
}

void BoundedSpacePolicy::forget(BlockIndex b) {
  const std::uint32_t gen = pool_[b].generation;
  tracked_.erase(std::remove_if(tracked_.begin(), tracked_.end(),
                                [&](const Tracked& e) {
                                  return e.block == b && e.generation == gen;
                                }),
                 tracked_.end());
  if (survivors_ > tracked_.size()) survivors_ = tracked_.size();
  pending_blocks_.set(tracked_.size());
}

std::uint64_t BoundedSpacePolicy::sweep() {
  ++nsweeps_;
  sweeps_.inc();
  std::uint64_t reclaimed = 0;
  Ver max_shadower = 0;
  keep_.clear();
  for (const Tracked& e : tracked_) {
    VersionBlock& vb = pool_[e.block];
    if (vb.generation != e.generation || vb.state != BlockState::kShadowed) {
      continue;  // the O-structure was released wholesale in the meantime
    }
    // Only a task id in [version, shadower) can still name this block
    // (ids double as read caps, and any younger task's LOAD-LATEST resolves
    // at or above the shadower — see the safety argument in DESIGN.md).
    // Locked blocks wait: the ISA frees them through UNLOCK, never the GC.
    if (vb.locked_by != kNoTask || tasks_.any_in(e.version, e.shadower)) {
      keep_.push_back(e);
      continue;
    }
    // Mirror the paper policy's observable lifecycle per block — pending,
    // then freed — so the protocol checker's GC invariants apply unchanged.
    vb.state = BlockState::kPending;
    owner_.gc_event(telemetry::EventType::kBlockPending, vb.slot, vb.version,
                    e.block);
    owner_.gc_reclaim(e.block);
    max_shadower = std::max(max_shadower, e.shadower);
    ++reclaimed;
  }
  tracked_.swap(keep_);
  survivors_ = tracked_.size();
  pending_blocks_.set(tracked_.size());
  if (reclaimed != 0) {
    reclaim_batch_.observe(reclaimed);
    // Same monotone floor rule as the paper policy's finalize: every
    // reclaimed range [v, s) has s <= max_shadower, so no task created
    // above max_shadower - 1 can land inside any of them.
    if (max_shadower > 0) floor_ = std::max(floor_, max_shadower - 1);
  }
  return reclaimed;
}

// ---------------------------------------------------------------------------
// Factory

std::unique_ptr<GcPolicy> make_gc_policy(const OStructConfig& cfg,
                                         BlockPool& pool,
                                         telemetry::MetricRegistry& reg,
                                         GcOwner& owner) {
  if (cfg.gc_policy == GcPolicyKind::kBounded) {
    return std::make_unique<BoundedSpacePolicy>(cfg.gc_bounded_batch, pool,
                                                reg, owner);
  }
  return std::make_unique<PaperWatermarkPolicy>(pool, reg, owner);
}

}  // namespace osim
