// Open-addressed hash map for unsigned-integer keys.
//
// The simulator's hottest host-side lookups — the coherence directory, the
// per-core compressed-line side tables, and Env's host-line translation —
// are keyed by dense-ish 64-bit values and live on the critical path of
// every simulated memory access. std::unordered_map pays a heap node, a
// pointer chase and a modulo per probe; this map keeps control bytes and
// slots in two flat arrays, probes linearly from a multiplicative hash, and
// resolves the common hit in one or two cache lines.
//
// Deletion uses tombstones, so references to mapped values stay valid across
// erase() (the memory system relies on this while tearing down directory
// entries mid-operation). References are invalidated by rehash, i.e. by any
// insert that grows the table — same contract callers already honoured for
// std::unordered_map.
//
// Not iterable by design: simulation results must not depend on hash-table
// iteration order, so the map simply does not offer it.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>
#include <vector>

namespace osim {

template <typename K, typename V>
class FlatMap {
  static_assert(std::is_unsigned_v<K>, "FlatMap keys are unsigned integers");

 public:
  FlatMap() = default;

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Pointer to the mapped value, or nullptr.
  V* find(K key) {
    if (cap_ == 0) return nullptr;
    for (std::size_t i = index_of(key);; i = next(i)) {
      const std::uint8_t c = ctrl_[i];
      if (c == kEmpty) return nullptr;
      if (c == kFull && slots_[i].first == key) return &slots_[i].second;
    }
  }
  const V* find(K key) const { return const_cast<FlatMap*>(this)->find(key); }

  bool contains(K key) const { return find(key) != nullptr; }

  /// Value for `key`, default-constructing it on first use.
  V& operator[](K key) { return try_emplace(key).first; }

  /// Returns (value, inserted). Finding an existing key never rehashes, so
  /// only an actual insertion can invalidate outstanding references.
  std::pair<V&, bool> try_emplace(K key) {
    if (cap_ == 0) grow();
    for (;;) {
      std::size_t insert_at = kNpos;
      for (std::size_t i = index_of(key);; i = next(i)) {
        const std::uint8_t c = ctrl_[i];
        if (c == kFull) {
          if (slots_[i].first == key) return {slots_[i].second, false};
          continue;
        }
        if (c == kTombstone) {
          if (insert_at == kNpos) insert_at = i;
          continue;
        }
        // Empty: the key is absent. Reuse the first tombstone seen, else
        // claim this slot — growing (and re-probing) if that would push
        // occupancy past the load limit.
        const bool fresh = insert_at == kNpos;
        if (fresh) {
          if ((used_ + 1) * 8 > cap_ * 7) break;  // grow, then re-probe
          insert_at = i;
          ++used_;
        }
        ctrl_[insert_at] = kFull;
        slots_[insert_at].first = key;
        slots_[insert_at].second = V{};
        ++size_;
        return {slots_[insert_at].second, true};
      }
      grow();
    }
  }

  /// Returns the number of elements removed (0 or 1). Never moves other
  /// elements, so outstanding value references stay valid.
  std::size_t erase(K key) {
    if (cap_ == 0) return 0;
    for (std::size_t i = index_of(key);; i = next(i)) {
      const std::uint8_t c = ctrl_[i];
      if (c == kEmpty) return 0;
      if (c == kFull && slots_[i].first == key) {
        ctrl_[i] = kTombstone;
        slots_[i].second = V{};
        --size_;
        return 1;
      }
    }
  }

  void clear() {
    ctrl_.assign(ctrl_.size(), kEmpty);
    size_ = 0;
    used_ = 0;
    // Slot payloads are left to be overwritten on reuse.
  }

 private:
  static constexpr std::uint8_t kEmpty = 0;
  static constexpr std::uint8_t kFull = 1;
  static constexpr std::uint8_t kTombstone = 2;
  static constexpr std::size_t kNpos = ~std::size_t{0};

  std::size_t index_of(K key) const {
    // Fibonacci hashing spreads sequential keys (line addresses, slot ids)
    // across the table; the table size is a power of two so the top bits
    // select the bucket.
    const std::uint64_t h =
        static_cast<std::uint64_t>(key) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h >> shift_);
  }
  std::size_t next(std::size_t i) const { return (i + 1) & (cap_ - 1); }

  // Grows at 7/8 occupancy counting tombstones, so probe chains stay short
  // and an empty slot always exists to terminate probes.
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 16 : cap_ * 2;
    std::vector<std::uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<std::pair<K, V>> old_slots = std::move(slots_);
    ctrl_.assign(new_cap, kEmpty);
    slots_.resize(new_cap);
    cap_ = new_cap;
    int bits = 0;
    while ((std::size_t{1} << bits) < new_cap) ++bits;
    shift_ = 64 - bits;
    used_ = size_;
    for (std::size_t i = 0; i < old_ctrl.size(); ++i) {
      if (old_ctrl[i] != kFull) continue;
      std::size_t j = index_of(old_slots[i].first);
      while (ctrl_[j] == kFull) j = next(j);
      ctrl_[j] = kFull;
      slots_[j] = std::move(old_slots[i]);
    }
  }

  std::vector<std::uint8_t> ctrl_;
  std::vector<std::pair<K, V>> slots_;
  std::size_t cap_ = 0;
  std::size_t size_ = 0;  // live elements
  std::size_t used_ = 0;  // live + tombstones
  int shift_ = 64;
};

}  // namespace osim
