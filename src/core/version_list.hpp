// Version block list operations (paper Sec. III, Fig. 3).
//
// One O-structure slot owns one singly-linked list of version blocks,
// referenced from a root pointer. The architected configuration keeps the
// list sorted newest-first (version vg closer to the head than vl iff
// vg > vl), which enables early termination of lookups and the shadowing-
// based GC; an unsorted mode (insert-at-head regardless of order) exists for
// the Sec. IV-F ablation.
//
// These are pure data-structure operations on the pool: no timing, no
// caching. Every function reports how many blocks it touched so the manager
// can charge the walk through the memory hierarchy.
#pragma once

#include <cstdint>

#include "core/version_block.hpp"

namespace osim {

struct FindResult {
  BlockIndex block = kNullBlock;  ///< the matching block, or kNullBlock
  int blocks_walked = 0;          ///< blocks touched, including the match
  bool is_head = false;           ///< the match is the list head
  bool has_newer = false;         ///< `newer` is valid
  Ver newer = 0;  ///< version of the immediately-newer neighbour (sorted
                  ///< lists only; feeds compressed-line adjacency)
  bool found() const { return block != kNullBlock; }
};

struct InsertResult {
  BlockIndex block = kNullBlock;     ///< the newly inserted block
  BlockIndex pred = kNullBlock;      ///< block now pointing at it (or null)
  BlockIndex shadowed = kNullBlock;  ///< block that became shadowed, if any
  int blocks_walked = 0;
  bool at_head = false;  ///< the insert replaced the list head
  /// Unsorted mode only: the list is still de-facto descending after this
  /// insert (versions were created in order, the common case the paper's
  /// Sec. IV-F ablation measures). Lookups may then still early-terminate.
  bool order_kept = true;
};

namespace detail {
/// Out-of-line throw of OFault(kNotListHead) — keeps the (cold) string
/// construction away from the inlined walks below.
[[noreturn]] void fault_not_list_head();

/// The paper's protection rule: a lookup may only enter a list at a block
/// whose head bit is set.
inline void check_head_bit(const BlockPool& pool, BlockIndex head) {
  if (head != kNullBlock && !pool[head].head) fault_not_list_head();
}
}  // namespace detail

// The two lookup walks run once per versioned load — every pointer chased
// by every workload goes through one of them — so they are defined inline.

/// Find the block holding exactly version `v`. Checks the head bit of the
/// first block (the paper's protection rule) and throws OFault(kNotListHead)
/// on violation. Early-terminates on sorted lists.
inline FindResult find_exact(const BlockPool& pool, BlockIndex head, Ver v,
                             bool sorted) {
  detail::check_head_bit(pool, head);
  FindResult r;
  BlockIndex prev = kNullBlock;
  for (BlockIndex b = head; b != kNullBlock; prev = b, b = pool[b].next) {
    ++r.blocks_walked;
    const VersionBlock& vb = pool[b];
    if (vb.version == v) {
      r.block = b;
      if (sorted) {
        r.is_head = (prev == kNullBlock);
        if (prev != kNullBlock) {
          r.has_newer = true;
          r.newer = pool[prev].version;
        }
      }
      return r;
    }
    // Sorted newest-first: once we pass below v, it cannot exist.
    if (sorted && vb.version < v) return r;
  }
  return r;
}

/// Find the block holding the highest version <= `cap` (LOAD-LATEST). On a
/// sorted list this is the first block with version <= cap; unsorted lists
/// require a full scan.
inline FindResult find_latest(const BlockPool& pool, BlockIndex head,
                              Ver cap, bool sorted) {
  detail::check_head_bit(pool, head);
  FindResult r;
  BlockIndex best = kNullBlock;
  BlockIndex prev = kNullBlock;
  for (BlockIndex b = head; b != kNullBlock; prev = b, b = pool[b].next) {
    ++r.blocks_walked;
    const VersionBlock& vb = pool[b];
    if (vb.version <= cap) {
      if (sorted) {
        // First block at or below the cap is the highest such version.
        r.block = b;
        r.is_head = (prev == kNullBlock);
        if (prev != kNullBlock) {
          r.has_newer = true;
          r.newer = pool[prev].version;
        }
        return r;
      }
      if (best == kNullBlock || vb.version > pool[best].version) best = b;
    }
  }
  r.block = best;  // unsorted: adjacency unknown, leave is_head/has_newer off
  return r;
}

/// Number of blocks in the list (test/GC helper).
int list_length(const BlockPool& pool, BlockIndex head);

/// Insert a fresh block (already alloc()ed, with version/data set by the
/// caller) into the list rooted at `*root`. Maintains sort order and the
/// head bit when `sorted`; otherwise pushes at the head. Throws
/// OFault(kVersionAlreadyExists) on duplicates.
///
/// `result.shadowed` reports the block that this insertion shadows (paper
/// Sec. III-B): inserting a new newest version shadows the previous head;
/// inserting mid-list means the new block itself is born shadowed.
InsertResult list_insert(BlockPool& pool, BlockIndex* root, BlockIndex fresh,
                         bool sorted);

/// Unlink `b` from the list rooted at `*root` (GC reclamation). The caller
/// guarantees `b` belongs to this list. Returns the number of blocks walked
/// to find the predecessor.
int list_unlink(BlockPool& pool, BlockIndex* root, BlockIndex b);

}  // namespace osim
