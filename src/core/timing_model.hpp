// The seam between O-structure *semantics* and *timing*.
//
// core/version_store.hpp decides every operation's semantic effect (which
// version is read, which block is locked, where an insert lands) against the
// authoritative version lists, then reports what it did through this
// interface. An implementation charges whatever those effects cost on its
// machine model:
//
//   * the cycle-accurate backend (MachineTimingModel in
//     core/ostructure_manager.hpp) walks the version-block addresses through
//     the simulated cache hierarchy, maintains per-core compressed lines,
//     parks fibers on wait lists, and stamps block lifetimes;
//   * the functional backend (runtime/functional.hpp) advances a logical
//     op counter and treats a would-block condition as a fault, executing
//     the same ISA at host speed.
//
// Hook placement is part of the architectural contract: the engine calls a
// hook exactly where the old interleaved implementation charged the
// corresponding cost, and a timing implementation may *yield to other cores*
// inside any charged hook. The engine therefore never holds references to
// its own slot/pool state across a hook call.
#pragma once

#include <cstdint>
#include <optional>

#include "core/compressed_line.hpp"
#include "core/isa.hpp"
#include "core/types.hpp"
#include "core/version_block.hpp"
#include "core/version_list.hpp"

namespace osim {

/// Everything a blocked operation knows about itself, handed to
/// wait_on_slot() so backends that cannot (or will not) block can say
/// *which* operation of *which* task deadlocked, not just which slot.
struct WaitContext {
  std::uint64_t slot = 0;
  OpCode op = OpCode::kLoadVersion;
  Addr addr = 0;          ///< the O-structure address the op named
  Ver version = 0;        ///< version / cap argument of the op
  TaskId task = kNoTask;  ///< running task (kNoTask outside any task)
};

/// Hot-path state of a timing model whose cost hooks are all no-ops. A
/// model that exposes one (fast_path() below) promises that every charged
/// hook does nothing, now()/core() read exactly these fields, and
/// op_serialize() is exactly `++clock` — so the engine may bypass virtual
/// dispatch for the entire per-operation framing. wait_on_slot() is still
/// dispatched virtually (the functional model faults there).
struct TimingFastPath {
  Cycles clock = 0;
  CoreId core = 0;
};

class TimingModel {
 public:
  virtual ~TimingModel() = default;

  /// Non-null iff this model is a pure no-cost model as described on
  /// TimingFastPath. The cycle-accurate backend returns nullptr.
  virtual TimingFastPath* fast_path() { return nullptr; }

  // ---- Clock and execution context ----

  /// True while the caller runs in a context whose clock is valid (a core
  /// fiber on the timed backend; always on the functional backend). Events
  /// emitted outside carry time 0 / core 0.
  virtual bool in_op_context() const = 0;
  /// Current time for event stamping; only called while in_op_context().
  virtual Cycles now() const = 0;
  /// Executing core id; only called while in_op_context().
  virtual CoreId core() const = 0;

  // ---- Per-operation framing ----

  /// Serialize this operation into the global memory-event order (the timed
  /// backend yields until its core is the earliest runnable one).
  virtual void op_serialize() = 0;
  /// Charge OStructConfig::injected_latency (called only when nonzero).
  virtual void op_overhead() = 0;
  /// Charge the TASK-BEGIN / TASK-END instruction itself.
  virtual void task_instr() = 0;

  // ---- Blocking semantics ----

  /// Park the caller until `w.slot` changes (a store or unlock wakes it).
  /// The functional backend cannot block: it faults instead, which is
  /// exactly the deadlock the timed backend would report for an in-order
  /// schedule; the context makes that report name the task and op.
  virtual void wait_on_slot(const WaitContext& w) = 0;
  /// Wake everything parked on `slot`. Safe to call with no waiters, and
  /// from host context (where it is a no-op on the timed backend).
  virtual void wake_slot(std::uint64_t slot) = 0;

  // ---- Charged semantic effects ----
  // `fr`/`ir` are the authoritative list-operation results; implementations
  // may re-walk the (possibly already mutated) current list for addresses
  // but must bound themselves by the reported walk lengths.

  /// A satisfied lookup: LOAD/LOCK-LOAD resolved `key` on `slot` at block
  /// fr.block. `exclusive` marks lock variants (read-for-ownership);
  /// `probe_locked_by` is the lock state a compressed probe should expect
  /// (lock ops apply their semantic effect first and pass the pre-lock
  /// state).
  virtual void lookup_done(std::uint64_t slot, const FindResult& fr,
                           bool exact, Ver key, bool exclusive,
                           std::optional<TaskId> probe_locked_by) = 0;
  /// A lock was taken on version `v` of `slot` (after lookup_done).
  virtual void lock_applied(std::uint64_t slot, Ver v, TaskId locker) = 0;
  /// Version `v` (block `b`) of `slot` was unlocked.
  virtual void unlock_applied(std::uint64_t slot, BlockIndex b, Ver v) = 0;

  /// One pop from the executing core's bank of the hardware free list.
  virtual void free_list_access() = 0;
  /// This operation's allocation started a GC phase.
  virtual void gc_triggered() = 0;
  /// Free-list exhaustion: the OS trap grew the pool.
  virtual void os_trapped() = 0;
  /// Block `b` left the free list for an insert.
  virtual void block_allocated(BlockIndex b) = 0;

  /// STORE-VERSION committed: walk to the insertion point and the insertion
  /// protocol's two exclusive line acquisitions (new block `nb` plus
  /// predecessor or root). May yield; the engine's new block is already
  /// linked and authoritative.
  virtual void store_charged(std::uint64_t slot, const InsertResult& ir,
                             BlockIndex nb) = 0;
  /// Block `b` became shadowed (stamp for the reclaim-lag distribution).
  virtual void block_shadowed(BlockIndex b) = 0;
  /// Store bookkeeping after the charges: `snap` is the committed entry
  /// (compressed-line install + remote discard/patch on the timed backend).
  virtual void store_installed(std::uint64_t slot,
                               const CompressedLine::Entry& snap) = 0;

  /// GC reclaimed version `v` (block `b`) of `slot`: scrub any cached
  /// per-core state and record lifetime/lag distributions.
  virtual void block_reclaimed(BlockIndex b, std::uint64_t slot, Ver v) = 0;
  /// The slot was released back to conventional memory.
  virtual void slot_released(std::uint64_t slot) = 0;
};

}  // namespace osim
