// Version blocks and the hardware-managed free list (paper Sec. III).
//
// A version block is the 16-byte unit of O-structure storage:
//   version id (32b) | next pointer (30b) | locked-by (32b) | head bit | data
// Blocks live in a pool of simulated physical memory; "physical pointers"
// are pool indices (bounded to 30 bits like the paper's next field). The
// host-side struct carries extra bookkeeping (owning slot, GC state,
// generation) that a hardware implementation derives structurally; none of
// it counts toward the modelled 16-byte footprint.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "core/types.hpp"

namespace osim {

using BlockIndex = std::uint32_t;

/// Null "physical pointer". The paper's next field is 30 bits; we reserve
/// the all-ones 30-bit pattern.
inline constexpr BlockIndex kNullBlock = (1u << 30) - 1;

/// locked_by value of an unlocked version. Task IDs start at 1.
inline constexpr TaskId kNoTask = 0;

/// GC lifecycle of a block (paper Sec. III-B): free -> live -> shadowed ->
/// pending -> free.
enum class BlockState : std::uint8_t { kFree, kLive, kShadowed, kPending };

struct VersionBlock {
  // ---- Modelled fields (the 16-byte structure) ----
  Ver version = 0;
  BlockIndex next = kNullBlock;
  TaskId locked_by = kNoTask;
  bool head = false;
  std::uint64_t data = 0;

  // ---- Host bookkeeping (not modelled storage) ----
  std::uint64_t slot = 0;  ///< owning O-structure slot, for GC unlink
  BlockState state = BlockState::kFree;
  std::uint32_t generation = 0;  ///< bumped on free; guards stale GC refs
};

/// Pool of version blocks with an intrusive free list threaded through the
/// `next` fields, as in the paper ("version blocks are just ordinary memory
/// structures"). Growth happens through an explicit OS-trap entry point so
/// the manager can charge trap latency and count traps.
class BlockPool {
 public:
  explicit BlockPool(std::size_t initial_blocks) { grow(initial_blocks); }

  /// Pop a block from the free list; returns kNullBlock when exhausted (the
  /// caller must then raise the OS trap and grow()).
  BlockIndex alloc() {
    if (free_head_ == kNullBlock) return kNullBlock;
    const BlockIndex b = free_head_;
    VersionBlock& vb = blocks_[b];
    free_head_ = vb.next;
    --free_count_;
    vb.next = kNullBlock;
    vb.head = false;
    vb.locked_by = kNoTask;
    vb.state = BlockState::kLive;
    return b;
  }

  /// Return a block to the free list and bump its generation.
  void free(BlockIndex b) {
    VersionBlock& vb = blocks_[b];
    vb.state = BlockState::kFree;
    vb.generation++;
    vb.next = free_head_;
    free_head_ = b;
    ++free_count_;
  }

  /// Carve `n` more blocks (the runtime's trap handler). Pool size is capped
  /// by the 30-bit physical pointer width.
  void grow(std::size_t n) {
    const std::size_t old = blocks_.size();
    if (old + n >= kNullBlock) {
      throw std::length_error("version block pool exceeds 30-bit pointers");
    }
    blocks_.resize(old + n);
    for (std::size_t i = old; i < old + n; ++i) {
      blocks_[i].next = free_head_;
      free_head_ = static_cast<BlockIndex>(i);
    }
    free_count_ += n;
  }

  VersionBlock& operator[](BlockIndex b) { return blocks_[b]; }
  const VersionBlock& operator[](BlockIndex b) const { return blocks_[b]; }

  std::size_t free_count() const { return free_count_; }
  std::size_t size() const { return blocks_.size(); }

 private:
  std::vector<VersionBlock> blocks_;
  BlockIndex free_head_ = kNullBlock;
  std::size_t free_count_ = 0;
};

}  // namespace osim
