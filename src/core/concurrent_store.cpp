#include "core/concurrent_store.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <stdexcept>
#include <string>
#include <thread>

#include "core/fault.hpp"
#include "core/gc_policy.hpp"

namespace osim {

namespace {

/// Thread-local registration: one ctx id per (thread, store) pair. Stores
/// are distinguished by a process-unique serial, never by address (a new
/// store may reuse a destroyed one's address).
struct TlsBinding {
  std::uint64_t serial;
  int id;
};
thread_local std::vector<TlsBinding> t_bindings;
std::atomic<std::uint64_t> g_store_serial{1};

}  // namespace

ConcurrentVersionStore::ConcurrentVersionStore(const ConcurrencyConfig& cfg)
    : cfg_(cfg), serial_(g_store_serial.fetch_add(1)) {
  int n = 1;
  while (n < cfg_.shards) n <<= 1;
  nshards_ = n;
  shard_mask_ = static_cast<std::uint64_t>(n - 1);
  shards_ = std::make_unique<Shard[]>(static_cast<std::size_t>(n));
  if (cfg_.max_threads < 1) cfg_.max_threads = 1;
  ctxs_ = std::make_unique<ThreadCtx[]>(
      static_cast<std::size_t>(cfg_.max_threads));
  inj_.build_from_spec(cfg_.inject_spec);
}

ConcurrentVersionStore::~ConcurrentVersionStore() {
  for (int i = 0; i < nshards_; ++i) {
    Shard& sh = shards_[i];
    const std::uint32_t nc = sh.nchunks.load(std::memory_order_relaxed);
    for (std::uint32_t c = 0; c < nc; ++c) {
      delete[] sh.chunk[c].load(std::memory_order_relaxed);
    }
  }
  const std::uint64_t slots = slot_count_.load(std::memory_order_relaxed);
  const std::uint64_t nchunks =
      (slots + kSlotChunkSize - 1) >> kSlotChunkBits;
  for (std::uint64_t c = 0; c < nchunks; ++c) {
    delete[] slot_chunk_[c].load(std::memory_order_relaxed);
  }
}

// ---------------------------------------------------------------------------
// Thread registration and epochs

int ConcurrentVersionStore::ctx_id() {
  for (const TlsBinding& b : t_bindings) {
    if (b.serial == serial_) return b.id;
  }
#if defined(OSIM_MC_SEEDED_BUG) && OSIM_MC_SEEDED_BUG == 2
  // Seeded PR-6 review bug (model-checking regression fixture, see
  // tests/test_explore_seeded.cpp): the original registration checked the
  // bound only after fetch_add, so a rejected thread still left nctx_
  // above max_threads and min_active_epoch()/stats() iterated past the
  // end of ctxs_. osim-mc flags it as a registered_threads() bound
  // violation on every schedule of the ctx_bound litmus.
  const int id = nctx_.fetch_add(1, std::memory_order_acq_rel);
  if (id >= cfg_.max_threads) {
    throw std::runtime_error(
        "ConcurrentVersionStore: thread registrations exceed "
        "ConcurrencyConfig::max_threads (" +
        std::to_string(cfg_.max_threads) + ")");
  }
#else
  // Bounded CAS: nctx_ must never exceed max_threads even transiently —
  // min_active_epoch() and stats() iterate ctxs_[0..nctx_), so an
  // over-incremented count would send them past the end of the array.
  int id = nctx_.load(std::memory_order_relaxed);
  for (;;) {
    if (id >= cfg_.max_threads) {
      throw std::runtime_error(
          "ConcurrentVersionStore: thread registrations exceed "
          "ConcurrencyConfig::max_threads (" +
          std::to_string(cfg_.max_threads) + ")");
    }
    if (nctx_.compare_exchange_weak(id, id + 1, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      break;
    }
  }
#endif
  t_bindings.push_back({serial_, id});
  return id;
}

// ---------------------------------------------------------------------------
// Schedule-hook plumbing

ConcurrentVersionStore::ShardLock::ShardLock(ConcurrentVersionStore& s,
                                             Shard& sh)
    : s_(s), sh_(sh) {
  // Modeled acquisition first: the hook returns only once this thread has
  // been granted the (modeled) mutex, so the real lock below never
  // contends under a hook. Hookless: one null-check.
  if (s.hook_ != nullptr) {
    s.hook_->mutex_acquire({SchedKind::kShardAcquire, s.shard_index(sh)});
  }
  sh.writer_mu.lock();
}

ConcurrentVersionStore::ShardLock::~ShardLock() {
  sh_.writer_mu.unlock();
  if (s_.hook_ != nullptr) {
    s_.hook_->mutex_release({SchedKind::kShardRelease, s_.shard_index(sh_)});
  }
}

ConcurrentVersionStore::ThreadCtx& ConcurrentVersionStore::ctx() {
  return ctxs_[static_cast<std::size_t>(ctx_id())];
}

/// RAII epoch pin for an optimistic walk. The store-then-confirm loop makes
/// the pin "sticky": once the loop exits, any reclaimer that later advances
/// the global epoch is guaranteed to observe this pin (both sides use
/// seq_cst, so pin-store and epoch-read cannot pass each other) and will
/// not recycle a block retired at an epoch <= the pinned one. Parked
/// waiters drop their pin first — a blocked reader must not block
/// reclamation.
struct ConcurrentVersionStore::EpochPin {
  ThreadCtx& c;
  EpochPin(const ConcurrentVersionStore& s, ThreadCtx& tc) : c(tc) {
    std::uint64_t e;
    do {
      e = s.global_epoch_.load(std::memory_order_seq_cst);
      c.epoch.store(e, std::memory_order_seq_cst);
    } while (s.global_epoch_.load(std::memory_order_seq_cst) != e);
  }
  ~EpochPin() { c.epoch.store(kIdleEpoch, std::memory_order_release); }
};

std::uint64_t ConcurrentVersionStore::min_active_epoch() const {
  std::uint64_t m = kIdleEpoch;
  const int n = nctx_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    m = std::min(m, ctxs_[i].epoch.load(std::memory_order_seq_cst));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Slot table

ConcurrentVersionStore::CSlot* ConcurrentVersionStore::slot_ptr(
    std::uint64_t slot) const {
  if (slot >= slot_count_.load(std::memory_order_acquire)) return nullptr;
  CSlot* chunk =
      slot_chunk_[slot >> kSlotChunkBits].load(std::memory_order_acquire);
  if (chunk == nullptr) return nullptr;
  return &chunk[slot & (kSlotChunkSize - 1)];
}

std::uint64_t ConcurrentVersionStore::slot_of(OAddr a) const {
  if (a < kOStructBase || (a - kOStructBase) % 8 != 0) fault_unversioned(a);
  const std::uint64_t slot = (a - kOStructBase) / 8;
  const CSlot* sp = slot_ptr(slot);
  if (sp == nullptr || sp->allocated.load(std::memory_order_acquire) == 0) {
    fault_unversioned(a);
  }
  return slot;
}

void ConcurrentVersionStore::fault_unversioned(OAddr a) const {
  if (a < kOStructBase || (a - kOStructBase) % 8 != 0) {
    throw OFault(FaultKind::kVersionedAccessToUnversionedPage,
                 "address " + std::to_string(a) +
                     " is outside the versioned region");
  }
  throw OFault(FaultKind::kVersionedAccessToUnversionedPage,
               "slot " + std::to_string((a - kOStructBase) / 8) +
                   " is not allocated");
}

bool ConcurrentVersionStore::is_versioned_addr(Addr a) const {
  if (a < kOStructBase || (a - kOStructBase) % 8 != 0) return false;
  const CSlot* sp = slot_ptr((a - kOStructBase) / 8);
  return sp != nullptr && sp->allocated.load(std::memory_order_acquire) != 0;
}

void ConcurrentVersionStore::check_conventional(Addr a) const {
  if (is_versioned_addr(a)) {
    throw OFault(FaultKind::kConventionalAccessToVersionedPage,
                 "slot " + std::to_string((a - kOStructBase) / 8));
  }
}

OAddr ConcurrentVersionStore::alloc(std::size_t slots) {
  if (slots == 0) throw OFault(FaultKind::kInvalidAddress, "zero-slot alloc");
  if (inj_.fire(FaultSite::kSlotTable)) {
    throw OFault(FaultKind::kResourceExhausted,
                 "slot-table allocation of " + std::to_string(slots) +
                     " slots refused (injected)");
  }
  std::lock_guard<std::mutex> g(alloc_mu_);
  auto& freed = slot_free_[static_cast<std::uint64_t>(slots)];
  std::uint64_t base;
  if (!freed.empty()) {
    base = freed.back();
    freed.pop_back();
  } else {
    base = slot_count_.load(std::memory_order_relaxed);
  }
  const std::uint64_t end = base + slots;
  if (end > kMaxSlotChunks * kSlotChunkSize) {
    throw OFault(FaultKind::kResourceExhausted,
                 "slot table exhausted: alloc of " + std::to_string(slots) +
                     " slots at base slot " + std::to_string(base) +
                     " would exceed the " +
                     std::to_string(kMaxSlotChunks * kSlotChunkSize) +
                     "-slot capacity");
  }
  for (std::uint64_t c = base >> kSlotChunkBits; c <= (end - 1) >> kSlotChunkBits;
       ++c) {
    if (slot_chunk_[c].load(std::memory_order_relaxed) == nullptr) {
      slot_chunk_[c].store(new CSlot[kSlotChunkSize],
                           std::memory_order_release);
    }
  }
  for (std::uint64_t s = base; s < end; ++s) {
    CSlot& sl = slot_chunk_[s >> kSlotChunkBits].load(
        std::memory_order_relaxed)[s & (kSlotChunkSize - 1)];
    assert(sl.head.load(std::memory_order_relaxed) == kNil);
    sl.allocated.store(1, std::memory_order_release);
  }
  if (end > slot_count_.load(std::memory_order_relaxed)) {
    slot_count_.store(end, std::memory_order_release);
  }
  return ostruct_addr(base);
}

void ConcurrentVersionStore::release(OAddr base, std::size_t slots) {
  const std::uint64_t first = slot_of(base);
  for (std::uint64_t s = first; s < first + slots; ++s) {
    CSlot* sp = slot_ptr(s);
    if (sp == nullptr) fault_unversioned(ostruct_addr(s));
    CSlot& sl = *sp;
    Shard& sh = shard_of(s);
    {
      ShardLock g(*this, sh);
      const std::uint64_t epoch = global_epoch_.load(std::memory_order_relaxed);
      // Seqlock write: empty the chain and clear the versioned bit in one
      // atomic-looking step (readers racing with release retry, then fault
      // on the cleared bit).
      const std::uint32_t sq = sl.seq.load(std::memory_order_relaxed);
      sl.seq.store(sq + 1, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_release);
      std::uint32_t b = sl.head.load(std::memory_order_relaxed);
      sl.head.store(kNil, std::memory_order_relaxed);
      sl.nversions.store(0, std::memory_order_relaxed);
      sl.allocated.store(0, std::memory_order_relaxed);
      sl.seq.store(sq + 2, std::memory_order_release);
      while (b != kNil) {
        CBlock& cb = block(sh, b);
        if (tracing()) {
          emit(telemetry::EventType::kBlockFreed, OpCode{}, ostruct_addr(s),
               cb.version.load(std::memory_order_relaxed), trace_id(sh, b));
        }
        const std::uint32_t nx = cb.next.load(std::memory_order_relaxed);
        sh.limbo.push_back({b, epoch});
        b = nx;
      }
      // Shadow-registry entries for this slot point into the chain just
      // retired; drop them so a later reclaim pass does not retire twice.
      sh.shadowed.erase(
          std::remove_if(sh.shadowed.begin(), sh.shadowed.end(),
                         [s](const Shadowed& x) { return x.slot == s; }),
          sh.shadowed.end());
    }
    global_epoch_.fetch_add(1, std::memory_order_seq_cst);
    sched_point(SchedKind::kEpochAdvance, 0);
    // Parked waiters re-check and fault on the cleared versioned bit.
    wake(sh);
  }
  std::lock_guard<std::mutex> g(alloc_mu_);
  slot_free_[static_cast<std::uint64_t>(slots)].push_back(first);
}

// ---------------------------------------------------------------------------
// Block pool and reclamation

std::uint32_t ConcurrentVersionStore::trace_id(Shard& sh, std::uint32_t b) {
  if (sh.trace_ids.size() <= b) sh.trace_ids.resize(b + 1, kNil);
  if (sh.trace_ids[b] == kNil) {
    sh.trace_ids[b] = next_trace_block_.fetch_add(1, std::memory_order_relaxed);
  }
  return sh.trace_ids[b];
}

std::uint32_t ConcurrentVersionStore::alloc_block(Shard& sh) {
  if (inj_.fire(FaultSite::kBlockPool)) {
    throw OFault(FaultKind::kResourceExhausted,
                 "shard " + std::to_string(shard_index(sh)) +
                     " block pool exhausted (injected) during store by task " +
                     std::to_string(ctx().cur_task));
  }
  if (sh.shadowed.size() >= cfg_.reclaim_threshold) maybe_reclaim(sh);
  if (sh.free_list.empty() && !sh.limbo.empty()) {
    // Harvest limbo blocks whose grace period has passed: no active reader
    // pinned an epoch at or before the retirement epoch, so no optimistic
    // walk can still reach them.
    const std::uint64_t min_epoch = min_active_epoch();
    auto safe = [min_epoch](const Retired& r) { return r.epoch < min_epoch; };
    for (const Retired& r : sh.limbo) {
      if (safe(r)) sh.free_list.push_back(r.block);
    }
    sh.limbo.erase(std::remove_if(sh.limbo.begin(), sh.limbo.end(), safe),
                   sh.limbo.end());
  }
  if (!sh.free_list.empty()) {
    const std::uint32_t b = sh.free_list.back();
    sh.free_list.pop_back();
    ++sh.allocated;
    return b;
  }
  const std::uint32_t nc = sh.nchunks.load(std::memory_order_relaxed);
  if (sh.next_fresh == nc * kBlockChunkSize) {
    if (nc == kMaxBlockChunks) {
      throw OFault(FaultKind::kResourceExhausted,
                   "shard " + std::to_string(shard_index(sh)) +
                       " block pool exhausted: " +
                       std::to_string(kMaxBlockChunks * kBlockChunkSize) +
                       " blocks live, none reclaimable (task " +
                       std::to_string(ctx().cur_task) + ")");
    }
    sh.chunk[nc].store(new CBlock[kBlockChunkSize],
                       std::memory_order_release);
    sh.nchunks.store(nc + 1, std::memory_order_release);
  }
  ++sh.allocated;
  return sh.next_fresh++;
}

// Thread-safety analysis is off for this body only because of the
// *conditional* task_mu_ acquisition below (std::unique_lock over an
// option), which the analysis cannot track; the writer_mu requirement is
// still enforced at every call site via the declaration.
void ConcurrentVersionStore::maybe_reclaim(Shard& sh)
    OSIM_NO_THREAD_SAFETY_ANALYSIS {
  // Injected GC delay: skip this pass entirely. Callers treat a delayed
  // sweep exactly like an empty one, so pressure just builds until a later
  // consultation lets a pass through.
  if (inj_.fire(FaultSite::kGcDelay)) return;
  // Reclamation eligibility goes through the GcPolicy seam's predicates
  // (core/gc_policy.hpp), inlined here under the shard writer lock:
  //
  //  * kPaper — the paper's fence rule: a shadowed block can only be named
  //    by tasks older than its shadower, so once every task below the floor
  //    has finished (floor = oldest unfinished task id), blocks whose
  //    shadower is <= floor are unreachable *semantically*.
  //  * kBounded — the per-block range rule: a block holding version v and
  //    shadowed by s is unreachable once no unfinished task id lies in
  //    [v, s) (task ids double as read caps), no matter how old the oldest
  //    unfinished task is.
  //
  // Either way the eligible blocks are unlinked here (inside a seqlock
  // write window) and then parked in limbo until the epoch grace period
  // also rules out in-flight optimistic readers.
  const bool bounded = cfg_.gc_policy == GcPolicyKind::kBounded;
  const TaskId floor = task_floor_.load(std::memory_order_acquire);
  const std::uint64_t epoch = global_epoch_.load(std::memory_order_relaxed);
  // Bounded mode holds the task tracker's mutex for the whole pass: the
  // range query needs a stable unfinished set, and the serialization makes
  // the floor raise at the bottom atomic with the reclaim decision — a task
  // created after this pass observes the raised gc_floor_ and faults out of
  // every reclaimed range, while one created before it appears in `live`
  // and pins its range. (Lock order writer_mu -> task_mu_ -> trace_mu_ is
  // acyclic: no path acquires task_mu_ before a shard lock, and the task
  // lifecycle emits trace events outside task_mu_.)
  std::unique_lock<Mutex> task_lk;
  std::vector<TaskId> live;
  if (bounded) {
    task_lk = std::unique_lock<Mutex>(task_mu_);
    live.reserve(unfinished_.size());
    for (const auto& [t, n] : unfinished_) live.push_back(t);  // ascending
  }
  std::vector<Shadowed> keep;
  keep.reserve(sh.shadowed.size());
  // A block can carry more than one shadow entry: a mid-list insert
  // registers it at birth, and if reclamation later promotes it to the
  // chain head, a head insert shadows it a second time. Retiring it via
  // one entry must purge the others — a stale entry left pending could
  // outlive the block's trip through limbo and the free list and then
  // retire a *live* reallocated incarnation of the same block index.
  std::vector<std::uint32_t> gone;
  std::size_t retired = 0;
  Ver max_shadower = 0;
  for (const Shadowed& sd : sh.shadowed) {
    if (std::find(gone.begin(), gone.end(), sd.block) != gone.end()) {
      continue;  // duplicate entry; the block was retired earlier this pass
    }
    CBlock& cb = block(sh, sd.block);
    const bool pinned =
        bounded ? gc_range_has_live_task(live, sd.version, sd.shadower)
                : sd.shadower > floor;
    if (pinned || cb.locked_by.load(std::memory_order_relaxed) != kNoTask) {
      keep.push_back(sd);
      continue;
    }
    CSlot* sp = slot_ptr(sd.slot);
    if (sp == nullptr) {
      continue;  // slot released; release() already retired the chain
    }
    CSlot& sl = *sp;
    // Unlink under a seqlock write window.
    std::uint32_t pred = kNil;
    std::uint32_t cur = sl.head.load(std::memory_order_relaxed);
    while (cur != kNil && cur != sd.block) {
      pred = cur;
      cur = block(sh, cur).next.load(std::memory_order_relaxed);
    }
    if (cur == kNil) {
      // Unreachable: a block leaves its chain only through release()
      // (which erases every entry for the slot) or a retire here (which
      // purges every entry for the block). Keep the entry rather than
      // drop it — dropping would leak the block index, and pushing it to
      // limbo without having unlinked it could double-free.
      assert(false && "shadowed block missing from its slot chain");
      keep.push_back(sd);
      continue;
    }
    const std::uint32_t sq = sl.seq.load(std::memory_order_relaxed);
    sl.seq.store(sq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    const std::uint32_t nx = cb.next.load(std::memory_order_relaxed);
    if (pred == kNil) {
      sl.head.store(nx, std::memory_order_relaxed);
    } else {
      block(sh, pred).next.store(nx, std::memory_order_relaxed);
    }
    sl.nversions.fetch_sub(1, std::memory_order_relaxed);
    sl.seq.store(sq + 2, std::memory_order_release);
    if (tracing()) {
      emit(telemetry::EventType::kBlockFreed, OpCode{}, ostruct_addr(sd.slot),
           cb.version.load(std::memory_order_relaxed),
           trace_id(sh, sd.block));
    }
    sh.limbo.push_back({sd.block, epoch});
    gone.push_back(sd.block);
    max_shadower = std::max(max_shadower, sd.shadower);
    ++retired;
  }
  if (!gone.empty()) {
    // Purge duplicates that were kept before their block's retiring entry
    // was reached (the `gone` check above only catches later ones).
    keep.erase(std::remove_if(keep.begin(), keep.end(),
                              [&gone](const Shadowed& x) {
                                return std::find(gone.begin(), gone.end(),
                                                 x.block) != gone.end();
                              }),
               keep.end());
  }
  sh.shadowed.swap(keep);
  sh.reclaimed.fetch_add(retired, std::memory_order_relaxed);
  if (retired != 0) {
    // Serial GC floor rule (core/gc.cpp finalize): readers of a version
    // shadowed by f have ids < f, so after reclaiming under fence f no
    // task with id <= f-1 may ever be created.
    const TaskId want = max_shadower == 0 ? 0 : max_shadower - 1;
    TaskId cur = gc_floor_.load(std::memory_order_relaxed);
    while (cur < want && !gc_floor_.compare_exchange_weak(
                             cur, want, std::memory_order_acq_rel)) {
    }
    sched_point(SchedKind::kGcFloorRaise, 0);
    // Advance the epoch so the retired batch's grace period can end once
    // every reader active right now has unpinned.
    global_epoch_.fetch_add(1, std::memory_order_seq_cst);
    sched_point(SchedKind::kEpochAdvance, 0);
  }
}

// ---------------------------------------------------------------------------
// Blocking

void ConcurrentVersionStore::wait_change(Shard& sh, CSlot& sl,
                                         std::uint32_t seq_seen, OpCode op,
                                         OAddr a, Ver v) {
  ThreadCtx& c = ctx();
  // Injected deadlock: fault as if the timeout below had already expired.
  // Same FaultKind and diagnostic shape, so the runtime's abort-and-retry
  // path is exercised without waiting out a real timeout.
  if (inj_.fire(FaultSite::kDeadlock)) {
    throw OFault(FaultKind::kWouldBlock,
                 "injected deadlock timeout: " + std::string(to_string(op)) +
                     " of version " + std::to_string(v) + " at address " +
                     std::to_string(a) + " by task " +
                     std::to_string(c.cur_task));
  }
  if (hook_ != nullptr) {
    // Model-checked blocking: no spinning, no timed park, no wall clock.
    // The hook suspends this thread until a wake() on the shard (true
    // return; re-examine the slot) or until the scheduler proves no
    // runnable thread can ever signal it (false return) — the
    // deterministic analogue of the deadlock timeout below.
    const std::uint64_t shard = shard_index(sh);
    while (sl.seq.load(std::memory_order_acquire) == seq_seen) {
      if (stop_.load(std::memory_order_acquire)) {
        throw OFault(FaultKind::kWouldBlock,
                     "run aborted while " + std::string(to_string(op)) +
                         " of version " + std::to_string(v) + " by task " +
                         std::to_string(c.cur_task) + " was parked");
      }
      ++c.local.parks;
      if (!hook_->block({SchedKind::kBlocked, shard})) {
        throw OFault(FaultKind::kWouldBlock,
                     "deadlock: " + std::string(to_string(op)) +
                         " of version " + std::to_string(v) + " at address " +
                         std::to_string(a) + " by task " +
                         std::to_string(c.cur_task) +
                         " cannot be satisfied in this schedule");
      }
    }
    ++c.local.spin_waits;
    return;
  }
  for (int i = 0; i < cfg_.spin_iters; ++i) {
    if (sl.seq.load(std::memory_order_acquire) != seq_seen) {
      ++c.local.spin_waits;
      return;
    }
    // On an oversubscribed host a blocked op's best move is handing the
    // core to whoever will publish the version it needs.
    std::this_thread::yield();
  }
  ++c.local.parks;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(cfg_.deadlock_timeout_ms);
  bool timed_out = false;
  bool stopped = false;
  sh.nwaiters.fetch_add(1, std::memory_order_seq_cst);
  {
    std::unique_lock<std::mutex> lk(sh.park_mu);
    for (;;) {
      if (sl.seq.load(std::memory_order_acquire) != seq_seen) break;
      if (stop_.load(std::memory_order_acquire)) {
        stopped = true;
        break;
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        timed_out = true;
        break;
      }
      // Timed slices bound the cost of wake()'s relaxed waiter-count fast
      // path: a theoretically missed notify only delays us one slice.
      sh.park_cv.wait_for(lk, std::chrono::microseconds(cfg_.park_slice_us));
    }
  }
  sh.nwaiters.fetch_sub(1, std::memory_order_seq_cst);
  if (stopped) {
    throw OFault(FaultKind::kWouldBlock,
                 "run aborted while " + std::string(to_string(op)) +
                     " of version " + std::to_string(v) + " by task " +
                     std::to_string(c.cur_task) + " was parked");
  }
  if (timed_out) {
    throw OFault(FaultKind::kWouldBlock,
                 "deadlock: " + std::string(to_string(op)) + " of version " +
                     std::to_string(v) + " at address " + std::to_string(a) +
                     " by task " + std::to_string(c.cur_task) +
                     " still blocked after " +
                     std::to_string(cfg_.deadlock_timeout_ms) + "ms");
  }
}

void ConcurrentVersionStore::wake(Shard& sh) {
  // The hook's modeled waiters never register in nwaiters, so the
  // announcement must come BEFORE the production fast path below would
  // elide the notify.
  if (hook_ != nullptr) hook_->wake({SchedKind::kWake, shard_index(sh)});
  // Relaxed fast path: a waiter that registers just after this load also
  // re-checks the slot sequence *after* registering, and its wait is
  // timed — worst case it oversleeps one park slice, it cannot hang.
  if (sh.nwaiters.load(std::memory_order_relaxed) == 0) return;
  { std::lock_guard<std::mutex> g(sh.park_mu); }
  sh.park_cv.notify_all();
}

void ConcurrentVersionStore::request_stop() {
  stop_.store(true, std::memory_order_release);
  for (int i = 0; i < nshards_; ++i) {
    Shard& sh = shards_[i];
    { std::lock_guard<std::mutex> g(sh.park_mu); }
    sh.park_cv.notify_all();
  }
}

void ConcurrentVersionStore::reset_stop() {
  stop_.store(false, std::memory_order_release);
}

void ConcurrentVersionStore::attach_tracer(telemetry::Tracer* tracer) {
  tracer_ = tracer;
}

void ConcurrentVersionStore::emit(telemetry::EventType type, OpCode op,
                                  OAddr addr, Ver version,
                                  std::uint64_t arg) {
  std::lock_guard<std::mutex> g(trace_mu_);
  // Linearization stamp: a mutex-serialized counter as the time and the
  // registered thread id as the core (core/engine_trace.hpp).
  tracer_->emit(make_trace_event(++trace_clock_,
                                 static_cast<CoreId>(ctx_id()), type, op,
                                 addr, version, arg));
}

// ---------------------------------------------------------------------------
// Reads

ConcurrentVersionStore::ReadOutcome ConcurrentVersionStore::try_read(
    Shard& sh, CSlot& sl, bool exact, Ver key) {
  ThreadCtx& c = ctx();
  // Decision point: under a hook, where this optimistic read falls in the
  // interleaving is chosen here, before the epoch pin (a descheduled
  // thread must not hold a pin — it would block reclamation in every
  // branch of the exploration).
  sched_point(SchedKind::kSeqReadBegin, shard_index(sh));
  EpochPin pin(*this, c);
  for (;;) {
    // Seqlock read side (snippet 1's mem_read): take the sequence, walk,
    // fence, re-check. An odd sequence means a writer is mid-flight.
    const std::uint32_t s1 = sl.seq.load(std::memory_order_acquire);
    if ((s1 & 1u) != 0) {
      ++c.local.seq_retries;
      std::this_thread::yield();
      continue;
    }
    bool found = false;
    bool locked = false;
    bool overflow = false;
    Ver got = 0;
    std::uint64_t data = 0;
    std::size_t walked = 0;
    for (std::uint32_t b = sl.head.load(std::memory_order_acquire);
         b != kNil;) {
      if (++walked > cfg_.walk_limit) {
        overflow = true;  // transiently inconsistent chain; retry
        break;
      }
      CBlock& cb = block(sh, b);
      const Ver v = cb.version.load(std::memory_order_acquire);
      if (exact) {
        if (v == key) {
          found = true;
        } else if (v < key) {
          break;  // sorted newest-first: key is absent
        }
      } else if (v <= key) {
        found = true;  // newest version <= cap
      }
      if (found) {
        got = v;
        data = cb.data.load(std::memory_order_relaxed);
        locked = cb.locked_by.load(std::memory_order_relaxed) != kNoTask;
        break;
      }
      b = cb.next.load(std::memory_order_acquire);
    }
    // Read-side validation: the acquire fence orders every load above
    // before the sequence re-check, pairing with the writer's release
    // fence (see store_locked). If the sequence moved, some write window
    // overlapped the walk and any combination of values we saw may be
    // torn — retry.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (overflow && hook_ != nullptr) {
      // Under a hook no writer can be mid-walk (every mutation runs to
      // its next schedule point), so an overflowing walk is not transient
      // inconsistency — it is a corrupted chain (e.g. the seeded
      // alloc-after-walk self-loop) and retrying would hang the whole
      // exploration. Surface it as an engine error instead.
      throw std::runtime_error(
          "ConcurrentVersionStore: version-chain walk exceeded walk_limit "
          "under a schedule hook (corrupted chain)");
    }
    if (!overflow && sl.seq.load(std::memory_order_relaxed) == s1) {
      ReadOutcome out;
      out.seq = s1;
      if (found && !locked) {
        out.ok = true;
        out.got = got;
        out.data = data;
      }
      return out;
    }
    ++c.local.seq_retries;
    sched_point(SchedKind::kSeqReadRetry, shard_index(sh));
  }
}

ConcurrentVersionStore::ReadOutcome ConcurrentVersionStore::read_serialized(
    Shard& sh, CSlot& sl, bool exact, Ver key, OpCode op, OAddr a) {
  ShardLock g(*this, sh);
  ReadOutcome out;
  out.seq = sl.seq.load(std::memory_order_relaxed);
  for (std::uint32_t b = sl.head.load(std::memory_order_relaxed);
       b != kNil;) {
    CBlock& cb = block(sh, b);
    const Ver v = cb.version.load(std::memory_order_relaxed);
    const bool match = exact ? v == key : v <= key;
    if (match) {
      if (cb.locked_by.load(std::memory_order_relaxed) == kNoTask) {
        out.ok = true;
        out.got = v;
        out.data = cb.data.load(std::memory_order_relaxed);
        // Semantic point of the read, still inside the writer lock: the
        // event stream interleaves store < read for any version this read
        // observed, which is what the checker's dataflow joins need.
        emit(telemetry::EventType::kVersionRead, op, a, v, key);
      }
      return out;
    }
    if (exact && v < key) return out;
    b = cb.next.load(std::memory_order_relaxed);
  }
  return out;
}

std::uint64_t ConcurrentVersionStore::load_common(OAddr a, bool exact,
                                                  Ver key, Ver* found,
                                                  OpCode op) {
  ThreadCtx& c = ctx();
  ++c.local.ops;
  ++c.local.loads;
  std::uint64_t slot = slot_of(a);
  CSlot& sl = *slot_ptr(slot);
  Shard& sh = shard_of(slot);
  if (tracing()) emit(telemetry::EventType::kIsaOp, op, a, key, 0);
  for (;;) {
    ReadOutcome r = tracing() ? read_serialized(sh, sl, exact, key, op, a)
                              : try_read(sh, sl, exact, key);
    if (r.ok) {
      if (found != nullptr) *found = r.got;
      return r.data;
    }
    wait_change(sh, sl, r.seq, op, a, key);
    // The wait may have been a release(): re-validate the versioned bit so
    // a parked op faults instead of spinning on a dead slot.
    slot = slot_of(a);
  }
}

std::uint64_t ConcurrentVersionStore::load_version(OAddr a, Ver v) {
  return load_common(a, /*exact=*/true, v, nullptr, OpCode::kLoadVersion);
}

std::uint64_t ConcurrentVersionStore::load_latest(OAddr a, Ver cap,
                                                  Ver* found) {
  return load_common(a, /*exact=*/false, cap, found, OpCode::kLoadLatest);
}

// ---------------------------------------------------------------------------
// Writes

void ConcurrentVersionStore::store_locked(Shard& sh, CSlot& sl,
                                          std::uint64_t slot, Ver v,
                                          std::uint64_t data) {
#if defined(OSIM_MC_SEEDED_BUG) && OSIM_MC_SEEDED_BUG == 1
  // Seeded PR-6 review bug (model-checking regression fixture, see
  // tests/test_explore_seeded.cpp): walk to the insertion point FIRST,
  // then allocate. alloc_block's reclaim pass can unlink the walked pred
  // or cur from this very chain — and its limbo harvest can hand the
  // just-retired cur back as the new block — so the insert below corrupts
  // the chain (lost store, or a self-loop when nb == cur). osim-mc finds
  // the interleaving via the gc_fence litmus and check_integrity().
  std::uint32_t pred = kNil;
  std::uint32_t cur = sl.head.load(std::memory_order_relaxed);
  while (cur != kNil) {
    CBlock& cb = block(sh, cur);
    const Ver cv = cb.version.load(std::memory_order_relaxed);
    if (cv == v) {
      throw OFault(FaultKind::kVersionAlreadyExists,
                   "version " + std::to_string(v) + " already exists");
    }
    if (cv < v) break;
    pred = cur;
    cur = cb.next.load(std::memory_order_relaxed);
  }
  const std::uint32_t nb = alloc_block(sh);
#else
  // Allocate before walking, like the serial store_impl: alloc_block may
  // run a reclaim pass that unlinks shadowed blocks from this very chain
  // (possibly the walk's pred or cur), and its limbo harvest could even
  // hand a just-unlinked block back as nb. The fresh block itself is not
  // reachable from any chain, so the walk below sees a stable
  // post-reclaim list.
  const std::uint32_t nb = alloc_block(sh);

  // Walk to the insertion point. We hold the shard writer lock, so plain
  // relaxed loads are exact; lists are kept sorted newest-first.
  std::uint32_t pred = kNil;
  std::uint32_t cur = sl.head.load(std::memory_order_relaxed);
  while (cur != kNil) {
    CBlock& cb = block(sh, cur);
    const Ver cv = cb.version.load(std::memory_order_relaxed);
    if (cv == v) {
      // Duplicate version: hand the never-linked block straight back to
      // the free list before faulting (serial store_impl's recycle). No
      // trace event — kBlockAlloc is only emitted once the block is
      // linked, so the checker never saw this one.
      sh.free_list.push_back(nb);
      --sh.allocated;
      throw OFault(FaultKind::kVersionAlreadyExists,
                   "version " + std::to_string(v) + " already exists");
    }
    if (cv < v) break;
    pred = cur;
    cur = cb.next.load(std::memory_order_relaxed);
  }
#endif
  CBlock& b = block(sh, nb);
  b.version.store(v, std::memory_order_relaxed);
  b.data.store(data, std::memory_order_relaxed);
  b.locked_by.store(kNoTask, std::memory_order_relaxed);
  b.next.store(cur, std::memory_order_relaxed);

  // Seqlock write side, following snippet 1's discipline. The snippet's
  // point about barrier placement: the release fence must sit *between*
  // the odd sequence store and the data writes ("the barrier should be
  // added right after the actual write"), so that any reader that
  // observes a data write also observes the odd sequence when it
  // re-checks — without the fence the link-in below could become visible
  // before the odd sequence and a reader would validate a torn walk. The
  // closing store is itself a release so the whole window is ordered
  // before any subsequent even sequence a reader can see.
  const std::uint32_t sq = sl.seq.load(std::memory_order_relaxed);
  sl.seq.store(sq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  if (pred == kNil) {
    sl.head.store(nb, std::memory_order_relaxed);
  } else {
    block(sh, pred).next.store(nb, std::memory_order_relaxed);
  }
  sl.nversions.fetch_add(1, std::memory_order_relaxed);
  sl.seq.store(sq + 2, std::memory_order_release);

  ++ctx().local.blocks_allocated;

  // Shadow registration (paper Sec. III-B): a head insert shadows the old
  // head with the new version; a mid-list insert is itself born shadowed
  // by its immediately-newer neighbour.
  std::uint32_t shadowed = kNil;
  Ver shadower = 0;
  if (pred == kNil) {
    if (cur != kNil) {
      shadowed = cur;
      shadower = v;
    }
  } else {
    shadowed = nb;
    shadower = block(sh, pred).version.load(std::memory_order_relaxed);
  }
  if (shadowed != kNil) {
    sh.shadowed.push_back(
        {shadowed, block(sh, shadowed).version.load(std::memory_order_relaxed),
         shadower, slot});
  }

  journal(UndoEntry::Kind::kStore, slot, v);

  if (tracing()) {
    const OAddr a = ostruct_addr(slot);
    emit(telemetry::EventType::kBlockAlloc, OpCode{}, 0, 0, trace_id(sh, nb));
    emit(telemetry::EventType::kVersionStore, OpCode{}, a, v,
         trace_id(sh, nb));
    if (shadowed != kNil) {
      emit(telemetry::EventType::kBlockShadowed, OpCode{}, a, shadower,
           trace_id(sh, shadowed));
    }
  }
}

void ConcurrentVersionStore::store_version(OAddr a, Ver v,
                                           std::uint64_t data) {
  ThreadCtx& c = ctx();
  ++c.local.ops;
  ++c.local.stores;
  const std::uint64_t slot = slot_of(a);
  CSlot& sl = *slot_ptr(slot);
  Shard& sh = shard_of(slot);
  if (tracing()) emit(telemetry::EventType::kIsaOp, OpCode::kStoreVersion, a, v, 0);
  {
    ShardLock g(*this, sh);
    store_locked(sh, sl, slot, v, data);
  }
  wake(sh);
}

std::uint64_t ConcurrentVersionStore::lock_load_common(OAddr a, bool exact,
                                                       Ver key, TaskId locker,
                                                       Ver* found, OpCode op) {
  ThreadCtx& c = ctx();
  ++c.local.ops;
  ++c.local.lock_ops;
  std::uint64_t slot = slot_of(a);
  CSlot& sl = *slot_ptr(slot);
  Shard& sh = shard_of(slot);
  if (tracing()) emit(telemetry::EventType::kIsaOp, op, a, key, 0);
  for (;;) {
    std::uint32_t seq_seen;
    {
      ShardLock g(*this, sh);
      std::uint32_t cand = kNil;
      for (std::uint32_t b = sl.head.load(std::memory_order_relaxed);
           b != kNil;) {
        CBlock& cb = block(sh, b);
        const Ver v = cb.version.load(std::memory_order_relaxed);
        if (exact ? v == key : v <= key) {
          cand = b;
          break;
        }
        if (exact && v < key) break;
        b = cb.next.load(std::memory_order_relaxed);
      }
      if (cand != kNil) {
        CBlock& cb = block(sh, cand);
        if (cb.locked_by.load(std::memory_order_relaxed) == kNoTask) {
          // Taking the lock needs no seqlock window: optimistic readers
          // that read the pre-lock state linearize before the acquisition
          // (versions are immutable, so the value they return is the value
          // under the lock too).
          cb.locked_by.store(locker, std::memory_order_relaxed);
          const Ver got = cb.version.load(std::memory_order_relaxed);
          const std::uint64_t data = cb.data.load(std::memory_order_relaxed);
          journal(UndoEntry::Kind::kLock, slot, got);
          if (tracing()) {
            emit(telemetry::EventType::kVersionRead, op, a, got, key);
            emit(telemetry::EventType::kLockAcquire, OpCode{}, a, got,
                 locker);
          }
          if (found != nullptr) *found = got;
          return data;
        }
      }
      seq_seen = sl.seq.load(std::memory_order_relaxed);
    }
    wait_change(sh, sl, seq_seen, op, a, key);
    slot = slot_of(a);  // re-validate after a potential release()
  }
}

std::uint64_t ConcurrentVersionStore::lock_load_version(OAddr a, Ver v,
                                                        TaskId locker) {
  return lock_load_common(a, /*exact=*/true, v, locker, nullptr,
                          OpCode::kLockLoadVersion);
}

std::uint64_t ConcurrentVersionStore::lock_load_latest(OAddr a, Ver cap,
                                                       TaskId locker,
                                                       Ver* found) {
  return lock_load_common(a, /*exact=*/false, cap, locker, found,
                          OpCode::kLockLoadLatest);
}

void ConcurrentVersionStore::unlock_version(OAddr a, Ver locked_v,
                                            TaskId owner,
                                            std::optional<Ver> rename_to) {
  ThreadCtx& c = ctx();
  ++c.local.ops;
  ++c.local.lock_ops;
  const std::uint64_t slot = slot_of(a);
  CSlot& sl = *slot_ptr(slot);
  Shard& sh = shard_of(slot);
  if (tracing()) {
    emit(telemetry::EventType::kIsaOp, OpCode::kUnlockVersion, a, locked_v, 0);
  }
  {
    ShardLock g(*this, sh);
    std::uint32_t target = kNil;
    bool rename_exists = false;
    for (std::uint32_t b = sl.head.load(std::memory_order_relaxed);
         b != kNil;) {
      CBlock& cb = block(sh, b);
      const Ver v = cb.version.load(std::memory_order_relaxed);
      if (v == locked_v) target = b;
      if (rename_to.has_value() && v == *rename_to) rename_exists = true;
      b = cb.next.load(std::memory_order_relaxed);
    }
    if (target == kNil) {
      throw OFault(FaultKind::kNotLockOwner,
                   "unlock of nonexistent version " +
                       std::to_string(locked_v));
    }
    CBlock& cb = block(sh, target);
    const TaskId holder = cb.locked_by.load(std::memory_order_relaxed);
    if (holder != owner) {
      throw OFault(FaultKind::kNotLockOwner,
                   "version " + std::to_string(locked_v) + " locked by " +
                       std::to_string(holder) + ", unlock by " +
                       std::to_string(owner));
    }
    if (rename_exists) {
      throw OFault(FaultKind::kRenameTargetExists,
                   std::to_string(*rename_to));
    }
    const std::uint64_t data = cb.data.load(std::memory_order_relaxed);
    // The unlock is a slot mutation parked readers wait for, so it runs
    // inside a seqlock window (the sequence change is their wake signal;
    // the fence discipline matches store_locked).
    const std::uint32_t sq = sl.seq.load(std::memory_order_relaxed);
    sl.seq.store(sq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    cb.locked_by.store(kNoTask, std::memory_order_relaxed);
    sl.seq.store(sq + 2, std::memory_order_release);
    if (tracing()) {
      emit(telemetry::EventType::kLockRelease, OpCode{}, a, locked_v, owner);
    }
    if (rename_to.has_value()) {
      // Renaming: materialize the same value as a new, unlocked version.
      store_locked(sh, sl, slot, *rename_to, data);
    }
  }
  wake(sh);
}

// ---------------------------------------------------------------------------
// Task lifecycle (GC rules #1-#3)

void ConcurrentVersionStore::task_created(TaskId t) {
  sched_point(SchedKind::kTaskOp, 0);
  {
    MutexLock g(task_mu_);
    create_task_locked(t);
  }
  if (tracing()) {
    emit(telemetry::EventType::kTaskCreated, OpCode{}, 0, t, 0);
  }
}

void ConcurrentVersionStore::create_task_locked(TaskId t) {
  // Rules #1 and #3, with the serial engine's exact diagnostics
  // (core/gc.cpp): creation order must respect age, and a task below the
  // floor could name an already-reclaimed version.
  if (!unfinished_.empty() && t < unfinished_.begin()->first) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "task " + std::to_string(t) +
                     " is older than the oldest unfinished task " +
                     std::to_string(unfinished_.begin()->first));
  }
  const TaskId floor = gc_floor_.load(std::memory_order_acquire);
  if (t <= floor) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "task " + std::to_string(t) +
                     " is not above the GC floor " + std::to_string(floor));
  }
  unfinished_[t]++;
  max_task_ = std::max(max_task_, t);
}

void ConcurrentVersionStore::task_begin(TaskId t) {
  sched_point(SchedKind::kTaskOp, 0);
  if (tracing()) {
    emit(telemetry::EventType::kIsaOp, OpCode::kTaskBegin, 0, t, 0);
  }
  {
    MutexLock g(task_mu_);
    if (unfinished_.find(t) == unfinished_.end()) create_task_locked(t);
  }
  ThreadCtx& c = ctx();
  c.cur_task = t;
  c.undo.clear();  // a retry must not re-undo the aborted attempt's journal
}

void ConcurrentVersionStore::task_end(TaskId t) {
  sched_point(SchedKind::kTaskOp, 0);
  if (tracing()) {
    emit(telemetry::EventType::kIsaOp, OpCode::kTaskEnd, 0, t, 0);
  }
  ThreadCtx& endc = ctx();
  endc.cur_task = kNoTask;
  endc.undo.clear();
  MutexLock g(task_mu_);
  auto it = unfinished_.find(t);
  if (it == unfinished_.end()) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "TASK-END for task " + std::to_string(t) +
                     " which is not running");
  }
  if (--it->second == 0) unfinished_.erase(it);
  // Floor: every task strictly below it has finished. With tasks still
  // unfinished that is the smallest of them; otherwise everything created
  // so far is done.
  const TaskId floor =
      unfinished_.empty() ? max_task_ + 1 : unfinished_.begin()->first;
  task_floor_.store(floor, std::memory_order_release);
}

void ConcurrentVersionStore::abort_task(TaskId t) {
  if (!cfg_.track_aborts) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "abort_task(" + std::to_string(t) +
                     ") requires ConcurrencyConfig::track_aborts");
  }
  sched_point(SchedKind::kTaskOp, 0);
  ThreadCtx& c = ctx();
  bool freed_any = false;
  // Per-entry undo action for the shared newest-first driver (see
  // core/undo_journal.hpp for why reverse order is load-bearing). This
  // engine's revalidation is the chain walk under the shard lock: entries
  // are keyed (slot, version), and a version no longer on the chain was
  // reclaimed or released before the abort. One body serves both entry
  // kinds so the seqlock-windowed surgery stays in a single locked scope.
  auto undo_one = [&](const UndoEntry& e) -> bool {
    CSlot* sp = slot_ptr(e.slot);
    if (sp == nullptr || sp->allocated.load(std::memory_order_acquire) == 0) {
      return false;  // the whole O-structure was released in the meantime
    }
    CSlot& sl = *sp;
    Shard& sh = shard_of(e.slot);
    bool changed = false;
    {
      ShardLock g(*this, sh);
      std::uint32_t pred = kNil;
      std::uint32_t cur = sl.head.load(std::memory_order_relaxed);
      while (cur != kNil) {
        const Ver v = block(sh, cur).version.load(std::memory_order_relaxed);
        if (v == e.version) break;
        if (v < e.version) {
          cur = kNil;  // sorted newest-first: the version is gone
          break;
        }
        pred = cur;
        cur = block(sh, cur).next.load(std::memory_order_relaxed);
      }
      if (cur == kNil) {
        return false;  // reclaimed (or released) before the abort
      }
      CBlock& cb = block(sh, cur);
      if (e.kind == UndoEntry::Kind::kLock) {
        if (cb.locked_by.load(std::memory_order_relaxed) != t) {
          return false;  // already unlocked (or re-locked by another task)
        }
        const std::uint32_t sq = sl.seq.load(std::memory_order_relaxed);
        sl.seq.store(sq + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        cb.locked_by.store(kNoTask, std::memory_order_relaxed);
        sl.seq.store(sq + 2, std::memory_order_release);
        if (tracing()) {
          emit(telemetry::EventType::kLockRelease, OpCode{},
               ostruct_addr(e.slot), e.version, t);
        }
        changed = true;
      } else {
        // Unlink the created version. A lock another task took on it dies
        // with the block — their unlock will fault kNotLockOwner, the
        // deterministic "you read an aborted version" signal.
        const std::uint64_t epoch =
            global_epoch_.load(std::memory_order_relaxed);
        const std::uint32_t sq = sl.seq.load(std::memory_order_relaxed);
        sl.seq.store(sq + 1, std::memory_order_relaxed);
        std::atomic_thread_fence(std::memory_order_release);
        const std::uint32_t nx = cb.next.load(std::memory_order_relaxed);
        if (pred == kNil) {
          sl.head.store(nx, std::memory_order_relaxed);
        } else {
          block(sh, pred).next.store(nx, std::memory_order_relaxed);
        }
        cb.locked_by.store(kNoTask, std::memory_order_relaxed);
        sl.nversions.fetch_sub(1, std::memory_order_relaxed);
        sl.seq.store(sq + 2, std::memory_order_release);
        // Purge shadow-registry entries naming the dead block, plus the
        // entry this store created for its shadowed neighbour — with v
        // gone the neighbour is the live head (or mid-list) again and must
        // not be retired under v's fence.
        const std::uint64_t slot = e.slot;
        const Ver v = e.version;
        sh.shadowed.erase(
            std::remove_if(sh.shadowed.begin(), sh.shadowed.end(),
                           [&](const Shadowed& x) {
                             if (x.block == cur) return true;
                             if (x.slot != slot || x.shadower != v) {
                               return false;
                             }
                             // The neighbour v shadowed is live again;
                             // tell the checker before v's free event.
                             if (tracing()) {
                               emit(telemetry::EventType::kBlockRestored,
                                    OpCode{}, ostruct_addr(slot), x.version,
                                    trace_id(sh, x.block));
                             }
                             return true;
                           }),
            sh.shadowed.end());
        if (tracing()) {
          emit(telemetry::EventType::kBlockFreed, OpCode{},
               ostruct_addr(e.slot), e.version, trace_id(sh, cur));
        }
        sh.limbo.push_back({cur, epoch});
        freed_any = true;
        changed = true;
      }
    }
    if (changed) wake(sh);
    return changed;
  };
  const UndoReplayCounts undone =
      replay_undo_newest_first(c.undo, undo_one, undo_one);
  c.local.aborted_blocks += undone.blocks;
  c.local.aborted_locks += undone.locks;
  c.undo.clear();
  if (c.cur_task == t) c.cur_task = kNoTask;
  if (freed_any) {
    // Open the unlinked blocks' grace period; they become harvestable once
    // every reader active right now has unpinned.
    global_epoch_.fetch_add(1, std::memory_order_seq_cst);
    sched_point(SchedKind::kEpochAdvance, 0);
  }
  ++c.local.aborts;
  if (tracing()) {
    emit(telemetry::EventType::kTaskAborted, OpCode{}, 0, t, undone.blocks);
  }
}

// ---------------------------------------------------------------------------
// Host-side inspection

std::optional<std::uint64_t> ConcurrentVersionStore::peek_version(OAddr a,
                                                                  Ver v) {
  const std::uint64_t slot = slot_of(a);
  Shard& sh = shard_of(slot);
  CSlot& sl = *slot_ptr(slot);
  ShardLock g(*this, sh);
  for (std::uint32_t b = sl.head.load(std::memory_order_relaxed);
       b != kNil;) {
    CBlock& cb = block(sh, b);
    const Ver cv = cb.version.load(std::memory_order_relaxed);
    if (cv == v) return cb.data.load(std::memory_order_relaxed);
    if (cv < v) return std::nullopt;
    b = cb.next.load(std::memory_order_relaxed);
  }
  return std::nullopt;
}

std::optional<Ver> ConcurrentVersionStore::newest_version(OAddr a) {
  const std::uint64_t slot = slot_of(a);
  Shard& sh = shard_of(slot);
  CSlot& sl = *slot_ptr(slot);
  ShardLock g(*this, sh);
  const std::uint32_t b = sl.head.load(std::memory_order_relaxed);
  if (b == kNil) return std::nullopt;
  return block(sh, b).version.load(std::memory_order_relaxed);
}

std::optional<TaskId> ConcurrentVersionStore::lock_holder(OAddr a, Ver v) {
  const std::uint64_t slot = slot_of(a);
  Shard& sh = shard_of(slot);
  CSlot& sl = *slot_ptr(slot);
  ShardLock g(*this, sh);
  for (std::uint32_t b = sl.head.load(std::memory_order_relaxed);
       b != kNil;) {
    CBlock& cb = block(sh, b);
    const Ver cv = cb.version.load(std::memory_order_relaxed);
    if (cv == v) {
      const TaskId l = cb.locked_by.load(std::memory_order_relaxed);
      return l == kNoTask ? std::nullopt : std::optional<TaskId>(l);
    }
    if (cv < v) break;
    b = cb.next.load(std::memory_order_relaxed);
  }
  return std::nullopt;
}

int ConcurrentVersionStore::version_count(OAddr a) {
  const std::uint64_t slot = slot_of(a);
  Shard& sh = shard_of(slot);
  CSlot& sl = *slot_ptr(slot);
  ShardLock g(*this, sh);
  return static_cast<int>(sl.nversions.load(std::memory_order_relaxed));
}

std::vector<std::pair<Ver, std::uint64_t>>
ConcurrentVersionStore::slot_versions(OAddr a) {
  const std::uint64_t slot = slot_of(a);
  Shard& sh = shard_of(slot);
  CSlot& sl = *slot_ptr(slot);
  ShardLock g(*this, sh);
  std::vector<std::pair<Ver, std::uint64_t>> out;
  for (std::uint32_t b = sl.head.load(std::memory_order_relaxed);
       b != kNil;) {
    CBlock& cb = block(sh, b);
    out.emplace_back(cb.version.load(std::memory_order_relaxed),
                     cb.data.load(std::memory_order_relaxed));
    b = cb.next.load(std::memory_order_relaxed);
  }
  return out;
}

ConcurrentVersionStore::Stats ConcurrentVersionStore::stats() const {
  // Quiescent-only: per-thread counters are owner-written plain fields;
  // call after a run has joined (the pool's join provides the
  // happens-before edge).
  Stats s;
  const int n = nctx_.load(std::memory_order_acquire);
  for (int i = 0; i < n; ++i) {
    const Stats& l = ctxs_[i].local;
    s.ops += l.ops;
    s.loads += l.loads;
    s.stores += l.stores;
    s.lock_ops += l.lock_ops;
    s.seq_retries += l.seq_retries;
    s.spin_waits += l.spin_waits;
    s.parks += l.parks;
    s.blocks_allocated += l.blocks_allocated;
    s.aborts += l.aborts;
    s.aborted_blocks += l.aborted_blocks;
    s.aborted_locks += l.aborted_locks;
  }
  for (int i = 0; i < nshards_; ++i) {
    s.blocks_reclaimed +=
        shards_[i].reclaimed.load(std::memory_order_relaxed);
  }
  return s;
}

ConcurrentVersionStore::IntegrityReport
ConcurrentVersionStore::check_integrity() {
  IntegrityReport rep;
  const std::uint64_t nslots = slot_count_.load(std::memory_order_acquire);
  for (std::uint64_t s = 0; s < nslots && rep.ok; ++s) {
    CSlot* sp = slot_ptr(s);
    if (sp == nullptr || sp->allocated.load(std::memory_order_acquire) == 0) {
      continue;
    }
    Shard& sh = shard_of(s);
    ShardLock g(*this, sh);
    // Bounded walk with explicit visited tracking: a corrupted chain may
    // be cyclic, so the walk must terminate on the first revisit rather
    // than trusting the list structure it is auditing.
    std::vector<std::uint32_t> seen;
    bool first = true;
    Ver prev = 0;
    for (std::uint32_t b = sp->head.load(std::memory_order_relaxed);
         b != kNil; ) {
      if (std::find(seen.begin(), seen.end(), b) != seen.end()) {
        rep.ok = false;
        rep.detail = "slot " + std::to_string(s) +
                     ": cycle in version chain at block " + std::to_string(b);
        break;
      }
      seen.push_back(b);
      CBlock& cb = block(sh, b);
      const Ver v = cb.version.load(std::memory_order_relaxed);
      if (!first && v >= prev) {
        rep.ok = false;
        rep.detail = "slot " + std::to_string(s) +
                     ": versions not strictly descending (" +
                     std::to_string(prev) + " then " + std::to_string(v) +
                     ")";
        break;
      }
      first = false;
      prev = v;
      b = cb.next.load(std::memory_order_relaxed);
    }
    if (rep.ok &&
        seen.size() != sp->nversions.load(std::memory_order_relaxed)) {
      rep.ok = false;
      rep.detail =
          "slot " + std::to_string(s) + ": nversions " +
          std::to_string(sp->nversions.load(std::memory_order_relaxed)) +
          " != chain length " + std::to_string(seen.size());
    }
  }
  return rep;
}

}  // namespace osim
