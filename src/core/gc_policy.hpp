// GcPolicy: the reclamation seam of the semantic engine.
//
// The paper's hardware collector (Sec. III-B) is one *policy* for deciding
// when a shadowed version block becomes unreachable; the engine mechanics —
// unlinking a block from its version list, scrubbing compressed lines,
// returning it to the free list, emitting lifecycle trace events — are the
// same for every policy. This header cuts the decision out of the engine
// the same way core/timing_model.hpp cut out the cost model:
//
//   VersionStore  --(GcOwner: reclaim/emit callbacks)-->  GcPolicy
//       |                                                   |
//       |  on_shadowed / maybe_collect / task lifecycle     |
//       +---------------------------------------------------+
//
// Two policies ship behind the seam:
//
//   * PaperWatermarkPolicy — the paper's scheme, verbatim: shadowed blocks
//     batch into a phase when the free list drops below the watermark, the
//     phase records a fence (the youngest shadower in the batch), and the
//     whole batch frees once the oldest unfinished task passes the fence.
//     Simple hardware, but one long-lived old task pins *every* pending
//     block behind the fence indefinitely.
//   * BoundedSpacePolicy — range-tracking reclamation in the style of
//     Ben-David et al., "Space and Time Bounded Multiversion Garbage
//     Collection", and Wei & Fatourou (see PAPERS.md): a block holding
//     version v and shadowed by version s is reclaimable as soon as no
//     unfinished task id lies in [v, s) — task ids double as read caps
//     (GC rule #1), so only tasks in that half-open range can still read
//     v. Sweeps amortize against registrations, holding the unreclaimed
//     set at (reachable versions + batch) even under a reader that never
//     finishes.
//
// Policies charge no simulated cycles themselves (the collector runs in
// background hardware); the manager charges the trigger latency when
// maybe_collect() reports that collection work ran. The paper policy is
// bit-identical to the historical GarbageCollector on the timed backend:
// same metrics in the same registration order, same trace events at the
// same points, same fault diagnostics.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/flat_map.hpp"
#include "core/ostruct_config.hpp"
#include "core/types.hpp"
#include "core/version_block.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace osim {

/// The engine-side half of the seam, bound statically at construction (the
/// policy outlives no engine). `gc_reclaim` unlinks the block from its
/// version list, reports to the timing layer, and frees it; `gc_event`
/// timestamps and forwards lifecycle events to the owner's trace sinks
/// (kBlockPending per block with its owning slot, kGcPhaseBegin with the
/// fence in `arg`, kGcPhaseEnd with the reclaimed count in `arg`).
class GcOwner {
 public:
  virtual void gc_reclaim(BlockIndex b) = 0;
  virtual void gc_event(telemetry::EventType type, std::uint64_t slot, Ver v,
                        std::uint64_t arg) = 0;

 protected:
  ~GcOwner() = default;
};

/// Unfinished-task bookkeeping shared by the policies: create counts in a
/// FlatMap (O(1) on the per-task hot path) plus a sorted vector of distinct
/// live ids for the ordered queries (oldest unfinished, any-in-range). The
/// vector stays small — it holds *unfinished* tasks, not all tasks — and
/// ids arrive mostly in ascending order, so the sorted insert is usually an
/// append.
class GcTaskTracker {
 public:
  bool empty() const { return ids_.empty(); }
  std::size_t live() const { return ids_.size(); }
  TaskId oldest() const { return ids_.front(); }
  bool contains(TaskId t) const { return counts_.contains(t); }

  void add(TaskId t) {
    if (++counts_[t] == 1) {
      if (ids_.empty() || ids_.back() < t) {
        ids_.push_back(t);
      } else {
        ids_.insert(std::lower_bound(ids_.begin(), ids_.end(), t), t);
      }
    }
  }

  /// Returns false when `t` is not a live task.
  bool remove(TaskId t) {
    int* c = counts_.find(t);
    if (c == nullptr) return false;
    if (--*c == 0) {
      counts_.erase(t);
      ids_.erase(std::lower_bound(ids_.begin(), ids_.end(), t));
    }
    return true;
  }

  /// True when some unfinished task id lies in the half-open range
  /// [lo, hi) — i.e. when a task that can still read a version `lo`
  /// shadowed by `hi` is unfinished.
  bool any_in(Ver lo, Ver hi) const {
    auto it = std::lower_bound(ids_.begin(), ids_.end(), lo);
    return it != ids_.end() && *it < hi;
  }

 private:
  FlatMap<TaskId, int> counts_;  ///< unfinished tasks: id -> create count
  std::vector<TaskId> ids_;      ///< distinct live ids, sorted ascending
};

/// Shared reclamation-eligibility predicate, usable outside the serial
/// policy objects (the concurrent engine inlines the same decision under
/// its shard locks against a snapshot of the unfinished-task set).
/// `sorted_live` must be ascending. A block holding version `v`, shadowed
/// by `s`, is reclaimable iff this returns false (and it is unlocked).
inline bool gc_range_has_live_task(const std::vector<TaskId>& sorted_live,
                                   Ver v, Ver s) {
  auto it = std::lower_bound(sorted_live.begin(), sorted_live.end(), v);
  return it != sorted_live.end() && *it < s;
}

/// The policy seam. Task-lifecycle rules (#1-#3) are policy-independent
/// and live here; what varies is when a registered shadowed block is
/// declared unreachable and handed back through the owner.
class GcPolicy {
 public:
  GcPolicy(BlockPool& pool, GcOwner& owner) : pool_(pool), owner_(owner) {}
  virtual ~GcPolicy() = default;

  GcPolicy(const GcPolicy&) = delete;
  GcPolicy& operator=(const GcPolicy&) = delete;

  virtual GcPolicyKind kind() const = 0;

  /// Task creation (rule #3 check point): the new task must be no older
  /// than the oldest unfinished task and above the floor left by finished
  /// collections. Throws OFault(kTaskOrderViolation) otherwise.
  void task_created(TaskId t);
  /// TASK-BEGIN. Implicitly creates the task if the runtime did not
  /// announce it (single-level runtimes call begin directly).
  void task_begin(TaskId t);
  /// TASK-END. May reclaim (policy-dependent). Throws on unknown task.
  void task_end(TaskId t);

  /// Register a block that became shadowed by version `shadower`. Called
  /// mid-store (the insertion's timing snapshot is still in flight), so
  /// policies must only *record* here — reclamation belongs in
  /// on_store_complete / maybe_collect / task_end.
  virtual void on_shadowed(BlockIndex b, Ver shadower) = 0;

  /// Called by the owner at the end of every completed STORE-VERSION, once
  /// the stored version is fully installed in the timing layer. The bounded
  /// policy runs its amortized registration-triggered sweep here; the paper
  /// policy only collects on the manager's watermark trigger.
  virtual void on_store_complete() {}

  /// Manager-driven collection trigger (free-list watermark, exhaustion).
  /// Returns true when collection work actually ran — the manager charges
  /// the trigger latency for that case.
  virtual bool maybe_collect() = 0;

  /// Drop every registration of block `b` whose generation still matches
  /// the pool. abort_task uses this when rolling a store back: the block
  /// that the aborted version shadowed becomes the live head again, so a
  /// surviving registration would let a later sweep reclaim live data.
  /// Forgetting is always safe — at worst a genuinely shadowed block is
  /// re-registered never and leaks until its O-structure is released.
  virtual void forget(BlockIndex b) = 0;

  // ---- Queries ----
  /// Paper policy: a phase is in flight. Bounded policy: never (sweeps are
  /// incremental, not phased).
  virtual bool phase_active() const = 0;
  /// Registered shadowed blocks not yet in a phase (paper) / not yet
  /// reclaimed (bounded).
  virtual std::size_t shadowed_size() const = 0;
  /// Blocks parked in the in-flight phase (paper; 0 for bounded).
  virtual std::size_t pending_size() const = 0;
  /// Fence of the in-flight phase (paper; 0 when idle). The bounded policy
  /// has no global fence — eligibility is per-block — and returns 0.
  virtual Ver fence() const = 0;

  std::size_t unfinished_tasks() const { return tasks_.live(); }
  TaskId floor() const { return floor_; }
  /// Smallest version id an unfinished task may still read: the oldest
  /// unfinished task's id (task ids double as read caps), or one above the
  /// floor when everything has finished.
  Ver min_reachable() const {
    return tasks_.empty() ? floor_ + 1 : tasks_.oldest();
  }

 protected:
  /// Hook for task_end: the paper policy re-checks its fence, the bounded
  /// policy sweeps newly unpinned ranges.
  virtual void on_task_retired() = 0;

  BlockPool& pool_;
  GcOwner& owner_;
  GcTaskTracker tasks_;
  TaskId floor_ = 0;  ///< max fence/shadower of any finished collection - 1
};

/// The paper's watermark-driven phase collector (Sec. III-B), bit-identical
/// to the historical GarbageCollector on the timed backend.
class PaperWatermarkPolicy final : public GcPolicy {
 public:
  /// Registers the gc/* metrics in `reg` (which must outlive this object).
  PaperWatermarkPolicy(BlockPool& pool, telemetry::MetricRegistry& reg,
                       GcOwner& owner);

  GcPolicyKind kind() const override { return GcPolicyKind::kPaper; }
  void on_shadowed(BlockIndex b, Ver shadower) override;
  bool maybe_collect() override;
  void forget(BlockIndex b) override;

  bool phase_active() const override { return phase_active_; }
  std::size_t shadowed_size() const override { return shadowed_.size(); }
  std::size_t pending_size() const override { return pending_.size(); }
  Ver fence() const override { return phase_active_ ? fence_ : 0; }

 private:
  struct Shadowed {
    BlockIndex block;
    std::uint32_t generation;
    Ver shadower;
  };

  void on_task_retired() override { try_finalize(); }
  void try_finalize();
  void finalize();

  telemetry::Counter shadowed_blocks_;
  telemetry::Counter phases_;
  telemetry::Gauge pending_blocks_;
  telemetry::Histogram pending_batch_;

  std::vector<Shadowed> shadowed_;
  std::vector<Shadowed> pending_;
  bool phase_active_ = false;
  Ver fence_ = 0;
};

/// Range-tracking bounded-space reclamation (Ben-David et al. / Wei &
/// Fatourou, PAPERS.md). Each registered block carries its own version and
/// shadower; a sweep frees every unlocked block whose [version, shadower)
/// range holds no unfinished task. Sweeps run from task_end (ranges just
/// became unpinned), from the manager's trigger, and — amortized — from
/// registration itself once the tracked set outgrows the last sweep's
/// survivors by the configured batch, which bounds the unreclaimed set at
/// (reachable versions + locked blocks + batch) regardless of how long the
/// oldest task lives.
class BoundedSpacePolicy final : public GcPolicy {
 public:
  BoundedSpacePolicy(std::size_t min_batch, BlockPool& pool,
                     telemetry::MetricRegistry& reg, GcOwner& owner);

  GcPolicyKind kind() const override { return GcPolicyKind::kBounded; }
  void on_shadowed(BlockIndex b, Ver shadower) override;
  void on_store_complete() override;
  bool maybe_collect() override;
  void forget(BlockIndex b) override;

  bool phase_active() const override { return false; }
  std::size_t shadowed_size() const override { return tracked_.size(); }
  std::size_t pending_size() const override { return 0; }
  Ver fence() const override { return 0; }

  /// Sweeps run since construction (test/telemetry visibility).
  std::uint64_t sweeps() const { return nsweeps_; }

 private:
  struct Tracked {
    BlockIndex block;
    std::uint32_t generation;
    Ver version;   ///< the shadowed version the block holds
    Ver shadower;  ///< version that shadowed it; readers lie in [version, ..)
  };

  void on_task_retired() override {
    if (!tracked_.empty()) sweep();
  }
  /// Returns the number of blocks reclaimed.
  std::uint64_t sweep();

  telemetry::Counter shadowed_blocks_;
  telemetry::Counter sweeps_;
  telemetry::Gauge pending_blocks_;
  telemetry::Histogram reclaim_batch_;

  std::vector<Tracked> tracked_;
  std::vector<Tracked> keep_;  ///< sweep scratch, reused across sweeps
  std::size_t min_batch_;
  std::size_t survivors_ = 0;  ///< tracked size after the last sweep
  std::uint64_t nsweeps_ = 0;
};

/// Policy factory: reads cfg.gc_policy (and the bounded policy's batch
/// knob) and registers the chosen policy's metrics in `reg`.
std::unique_ptr<GcPolicy> make_gc_policy(const OStructConfig& cfg,
                                         BlockPool& pool,
                                         telemetry::MetricRegistry& reg,
                                         GcOwner& owner);

}  // namespace osim
