#include "core/gc.hpp"

#include <algorithm>
#include <cassert>

#include "core/fault.hpp"

namespace osim {

void GarbageCollector::task_created(TaskId t) {
  if (!known_.empty() && t < known_.begin()->first) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "task " + std::to_string(t) +
                     " is older than the oldest unfinished task " +
                     std::to_string(known_.begin()->first));
  }
  if (t <= floor_) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "task " + std::to_string(t) +
                     " is not above the GC floor " + std::to_string(floor_));
  }
  known_[t]++;
}

void GarbageCollector::task_begin(TaskId t) {
  if (known_.find(t) == known_.end()) task_created(t);
  begun_[t] = true;
}

void GarbageCollector::task_end(TaskId t) {
  auto it = known_.find(t);
  if (it == known_.end()) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "TASK-END for task " + std::to_string(t) +
                     " which is not running");
  }
  if (--it->second == 0) {
    known_.erase(it);
    begun_.erase(t);
  }
  try_finalize();
}

void GarbageCollector::on_shadowed(BlockIndex b, Ver shadower) {
  VersionBlock& vb = pool_[b];
  assert(vb.state == BlockState::kLive);
  vb.state = BlockState::kShadowed;
  shadowed_.push_back({b, vb.generation, shadower});
  shadowed_blocks_.inc();
}

bool GarbageCollector::start_phase() {
  if (phase_active_ || shadowed_.empty()) return false;
  pending_.swap(shadowed_);
  fence_ = 0;
  for (auto& s : pending_) {
    VersionBlock& vb = pool_[s.block];
    if (vb.generation == s.generation && vb.state == BlockState::kShadowed) {
      vb.state = BlockState::kPending;
      if (on_phase_) {
        on_phase_(telemetry::EventType::kBlockPending, vb.slot, vb.version,
                  s.block);
      }
    }
    fence_ = std::max(fence_, s.shadower);
  }
  phase_active_ = true;
  phases_.inc();
  pending_batch_.observe(pending_.size());
  pending_blocks_.set(pending_.size());
  if (on_phase_) {
    on_phase_(telemetry::EventType::kGcPhaseBegin, 0, 0, fence_);
  }
  try_finalize();
  return true;
}

void GarbageCollector::try_finalize() {
  if (!phase_active_) return;
  // Every pending block's possible readers are tasks older than the fence;
  // finalize once no unfinished task is that old.
  if (!known_.empty() && known_.begin()->first < fence_) return;
  finalize();
}

void GarbageCollector::finalize() {
  std::uint64_t reclaimed = 0;
  for (auto& s : pending_) {
    VersionBlock& vb = pool_[s.block];
    if (vb.generation != s.generation || vb.state != BlockState::kPending) {
      continue;  // the O-structure was released wholesale in the meantime
    }
    assert(vb.locked_by == kNoTask &&
           "GC rules guarantee reclaimed versions are unlocked");
    reclaim_(s.block);
    ++reclaimed;
  }
  pending_.clear();
  pending_blocks_.set(0);
  if (on_phase_) {
    on_phase_(telemetry::EventType::kGcPhaseEnd, 0, 0, reclaimed);
  }
  // Future tasks must be too young to read anything reclaimed under this
  // fence. (Readers of a version shadowed by `fence_` have ids < fence_, so
  // the floor is fence_ - 1; keep it simple and monotone.)
  if (fence_ > 0) floor_ = std::max(floor_, fence_ - 1);
  phase_active_ = false;
}

}  // namespace osim
