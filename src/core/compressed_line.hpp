// Compressed version blocks (paper Sec. III-A, "Data compression").
//
// Eight version blocks compress into one 64-byte L1 line:
//   - an 18-bit version base (upper 18 bits of the lowest version in line),
//   - a 4-bit cache-line offset locating the list head (if cached),
//   - 8 entries of { data (32b), version offset (14b), lock offset (14b) }.
// Versions and lockers must fall within [base<<14, (base<<14) + 2^14); out-
// of-range values are uncompressible and simply stay out of the line ("the
// only restriction imposed by the compression").
//
// The line is a *timing* structure: direct-access hits are classified from
// it, but semantic answers always come from the authoritative version list.
// To make LOAD-LATEST direct hits sound from a partial cache, each entry
// remembers the version of its immediately-newer list neighbour at fill
// time ("adjacency"): entry e answers LOAD-LATEST(cap) iff
// e.version <= cap and (e is the list head or cap < e.newer_version).
// Hardware obtains the same knowledge for free: a full lookup that selects
// a block has just walked past its newer neighbour.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "core/types.hpp"

namespace osim {

class CompressedLine {
 public:
  static constexpr int kEntries = 8;
  static constexpr int kOffsetBits = 14;
  static constexpr int kBaseBits = 18;
  static constexpr Ver kOffsetRange = Ver{1} << kOffsetBits;
  /// Largest version representable at all: 18-bit base + 14-bit offset.
  static constexpr Ver kMaxVersion = (Ver{1} << (kBaseBits + kOffsetBits)) - 1;

  struct Entry {
    Ver version = 0;
    TaskId locked_by = 0;      // kNoTask when unlocked
    std::uint64_t data = 0;
    bool is_head = false;      // this entry is the newest version of the slot
    bool has_newer = false;    // adjacency known
    Ver newer_version = 0;     // version of the immediately-newer neighbour
  };

  CompressedLine() { clear(); }

  /// Try to add (or refresh) an entry. Fails — returning false — when the
  /// version or a nonzero locked_by cannot be expressed relative to the
  /// line's base. On a full line the LRU entry is replaced (the paper lets
  /// caches use "any appropriate (e.g. LRU) policy" within a line).
  bool install(const Entry& e);

  /// Entry holding exactly version v, if cached.
  std::optional<Entry> find_exact(Ver v) const;

  /// Entry that soundly answers LOAD-LATEST(cap), if any (see adjacency
  /// rule above).
  std::optional<Entry> find_latest(Ver cap) const;

  /// Update the lock field of a cached version in place. Fails (false) if
  /// the new locker does not fit the 14-bit offset, in which case the
  /// caller must evict the entry.
  bool set_lock(Ver v, TaskId locker);

  /// Patch adjacency after an insert: any entry whose recorded newer
  /// neighbour spanned across `inserted` must now point at it, and the old
  /// head loses head status if the insert made a new head.
  void on_insert(Ver inserted, bool at_head);

  /// Drop the entry for version v (e.g. the block was reclaimed).
  void erase(Ver v);

  void clear();
  int occupancy() const;
  bool empty() const { return occupancy() == 0; }

  /// Number of install attempts rejected for range reasons (stats hook).
  std::uint64_t range_rejections() const { return range_rejections_; }

 private:
  struct Slot {
    bool valid = false;
    Entry e;
    std::uint64_t lru = 0;
  };

  bool fits(Ver v) const {
    return v >= base_version_ && v < base_version_ + kOffsetRange;
  }

  std::array<Slot, kEntries> slots_;
  Ver base_version_ = 0;  // lowest representable version ((base << 14))
  bool has_base_ = false;
  std::uint64_t tick_ = 0;
  std::uint64_t range_rejections_ = 0;
};

}  // namespace osim
