#include "core/ostructure_manager.hpp"

#include <algorithm>

namespace osim {

MachineTimingModel::MachineTimingModel(Machine& m)
    : m_(m),
      cfg_(m.config().ostruct),
      comp_(static_cast<std::size_t>(m.config().num_cores)) {}

void MachineTimingModel::bind(VersionStore* store) {
  store_ = store;
  m_.memsys().set_line_drop_observer([this](CoreId core, Addr line) {
    if (is_compressed_addr(line)) {
      auto& map = comp_[static_cast<std::size_t>(core)];
      if (map.erase(slot_of_compressed(line)) > 0) {
        store_->compressed_discards_counter().inc();
      }
    }
  });
}

void MachineTimingModel::wake_slot(std::uint64_t slot) {
  // Host-context callers (release() from teardown code) have no fiber to
  // account the wakeup against; with no simulated core running there is no
  // one to wake either.
  if (Fiber::current() == nullptr) return;
  m_.wake_all(wl(slot), cfg_.wake_latency);
}

CompressedLine* MachineTimingModel::comp_line(CoreId core,
                                              std::uint64_t slot) {
  if (!m_.memsys().line_in_l1(core, compressed_addr(slot))) return nullptr;
  return comp_[static_cast<std::size_t>(core)].find(slot);
}

void MachineTimingModel::comp_install(std::uint64_t slot,
                                      const CompressedLine::Entry& e) {
  if (!cfg_.enable_compression) return;
  const CoreId core = m_.current_core();
  CompressedLine& cl = comp_[static_cast<std::size_t>(core)][slot];
  const std::uint64_t rejected_before = cl.range_rejections();
  if (cl.install(e)) {
    store_->compressed_installs_counter().inc();
  } else {
    store_->compress_overflows_counter().inc(cl.range_rejections() -
                                             rejected_before);
  }
  // Materialize the line in the L1 tag array (hardware builds it locally).
  m_.memsys().install_line(core, compressed_addr(slot), /*dirty=*/true);
}

void MachineTimingModel::comp_remote_insert(std::uint64_t slot, Ver v,
                                            bool at_head) {
  // Remote caches either discard their compressed line for this O-structure
  // when they observe the coherence message (paper: "the simplest course of
  // action is to discard the compressed version block") or — the paper's
  // future-work variant — patch it in situ. Either way the information
  // piggybacks on the version-block line's own coherence message (which the
  // paper extends to carry the list-head address), so no extra latency is
  // charged.
  const CoreId me = m_.current_core();
  if (!cfg_.inplace_comp_update) {
    m_.memsys().invalidate_others(me, compressed_addr(slot));
    return;
  }
  for (CoreId c = 0; c < m_.num_cores(); ++c) {
    if (c == me) continue;
    if (CompressedLine* cl = comp_line(c, slot)) cl->on_insert(v, at_head);
  }
}

void MachineTimingModel::comp_remote_lock(std::uint64_t slot, Ver v,
                                          TaskId locker) {
  const CoreId me = m_.current_core();
  if (!cfg_.inplace_comp_update) {
    m_.memsys().invalidate_others(me, compressed_addr(slot));
    return;
  }
  for (CoreId c = 0; c < m_.num_cores(); ++c) {
    if (c == me) continue;
    if (CompressedLine* cl = comp_line(c, slot)) cl->set_lock(v, locker);
  }
}

void MachineTimingModel::lookup_done(std::uint64_t slot, const FindResult& fr,
                                     bool exact, Ver key, bool exclusive,
                                     std::optional<TaskId> probe_locked_by) {
  const CoreId core = m_.current_core();
  const AccessType final_access =
      exclusive ? AccessType::kWrite : AccessType::kRead;

  // Snapshot the block's fields now: the charged walk below yields, and the
  // block could be reclaimed or mutated before the walk completes. Lock
  // operations apply their semantic effect before charging, so the snapshot
  // already carries the new lock while `probe_locked_by` holds the pre-lock
  // state a resident compressed entry would still show.
  CompressedLine::Entry snap;
  {
    const VersionBlock& vb = store_->pool()[fr.block];
    snap.version = vb.version;
    snap.locked_by = vb.locked_by;
    snap.data = vb.data;
    snap.is_head = fr.is_head;
    snap.has_newer = fr.has_newer;
    snap.newer_version = fr.newer;
  }

  if (cfg_.enable_compression) {
    if (CompressedLine* cl = comp_line(core, slot)) {
      const auto e = exact ? cl->find_exact(key) : cl->find_latest(key);
      const TaskId want = probe_locked_by.value_or(snap.locked_by);
      if (e && e->version == snap.version && e->locked_by == want) {
        // Direct access: a single L1 probe of the compressed line.
        store_->counters(core).direct_hits++;
        m_.mem_access(compressed_addr(slot), final_access);
        return;
      }
    }
  }

  // Full lookup: the physical address of the list head comes from the page
  // table through the TLB (paper Fig. 4) — cached translation, no memory
  // access — then the version block list is walked. Blocks passed over are
  // read without polluting the L1; the requested block is installed
  // normally and its compressed entry is (re)built.
  VersionStore::PerCoreCounters& pc = store_->counters(core);
  pc.full_lookups++;
  pc.walk_blocks += static_cast<std::uint64_t>(fr.blocks_walked);
  store_->walk_length_hist().observe(
      static_cast<std::uint64_t>(fr.blocks_walked));
  AccessOptions nofill;
  nofill.fill_l1 = !cfg_.pollution_avoidance;
  // Re-walk the current list for addresses; the list may have changed since
  // the semantic decision, so bound the walk by both count and list end.
  int remaining = fr.blocks_walked - 1;
  for (BlockIndex b = store_->root_of(slot); b != kNullBlock && remaining > 0;
       b = store_->pool()[b].next, --remaining) {
    m_.mem_access(version_block_addr(b), AccessType::kRead, nofill);
  }
  // Compressed/uncompressed choice (paper Sec. III-A): packing into a
  // compressed line only pays when the slot holds multiple versions (one
  // 64-byte line carries 8 of them); a single-version slot is denser as a
  // plain block line (4 blocks per line). The L1 keeps exactly one resident
  // form per lookup: the compressed line, or the uncompressed block line.
  const bool compress = cfg_.enable_compression && store_->nversions(slot) > 1;
  AccessOptions final_opts;
  final_opts.fill_l1 = !compress;
  m_.mem_access(version_block_addr(fr.block), final_access, final_opts);
  if (compress) comp_install(slot, snap);
}

void MachineTimingModel::lock_applied(std::uint64_t slot, Ver v,
                                      TaskId locker) {
  if (CompressedLine* cl = comp_line(m_.current_core(), slot)) {
    cl->set_lock(v, locker);
  }
  comp_remote_lock(slot, v, locker);
}

void MachineTimingModel::unlock_applied(std::uint64_t slot, BlockIndex b,
                                        Ver v) {
  m_.mem_access(version_block_addr(b), AccessType::kWrite);
  if (CompressedLine* cl = comp_line(m_.current_core(), slot)) {
    cl->set_lock(v, kNoTask);
  }
  comp_remote_lock(slot, v, kNoTask);
}

void MachineTimingModel::store_charged(std::uint64_t slot,
                                       const InsertResult& ir,
                                       BlockIndex nb) {
  // Walk to the insertion point (the list head address itself is a
  // TLB-cached page-table translation) and the two exclusive line
  // acquisitions of the insertion protocol (new block + predecessor,
  // lowest-address first per the paper's deadlock-avoidance order). The new
  // block is already linked, so the walk skips it.
  AccessOptions nofill;
  nofill.fill_l1 = false;
  int remaining = ir.blocks_walked;
  for (BlockIndex b = store_->root_of(slot); b != kNullBlock && remaining > 0;
       b = store_->pool()[b].next, --remaining) {
    if (b != nb) {
      m_.mem_access(version_block_addr(b), AccessType::kRead, nofill);
    }
  }
  const Addr na = version_block_addr(nb);
  const Addr pa =
      ir.pred != kNullBlock ? version_block_addr(ir.pred) : root_addr(slot);
  m_.mem_access(std::min(na, pa), AccessType::kWrite);
  m_.mem_access(std::max(na, pa), AccessType::kWrite);
  if (ir.at_head) m_.mem_access(root_addr(slot), AccessType::kWrite);
}

void MachineTimingModel::store_installed(std::uint64_t slot,
                                         const CompressedLine::Entry& snap) {
  // Compressed-line maintenance: patch the local line's adjacency, install
  // the new version, and make remote caches discard their copies.
  const CoreId core = m_.current_core();
  if (CompressedLine* cl = comp_line(core, slot)) {
    cl->on_insert(snap.version, snap.is_head);
  }
  if (store_->nversions(slot) > 1) comp_install(slot, snap);
  comp_remote_insert(slot, snap.version, snap.is_head);
}

void MachineTimingModel::block_reclaimed(BlockIndex b, std::uint64_t slot,
                                         Ver v) {
  for (auto& per_core : comp_) {
    if (CompressedLine* cl = per_core.find(slot)) cl->erase(v);
  }
  // Reclamation always happens inside a fiber (GC phases are driven by
  // versioned ops and TASK-END), so the clock is valid for the lifetime
  // and lag distributions.
  const Cycles now = m_.now();
  store_->version_lifetime_hist().observe(now - stamp_of(block_born_, b));
  store_->reclaim_lag_hist().observe(now - stamp_of(block_shadowed_at_, b));
}

void MachineTimingModel::slot_released(std::uint64_t slot) {
  for (auto& per_core : comp_) per_core.erase(slot);
}

}  // namespace osim
