#include "core/ostructure_manager.hpp"

#include <cassert>
#include <memory>
#include <string>

#include "core/fault.hpp"

namespace osim {

OStructureManager::OStructureManager(Machine& m)
    : m_(m),
      cfg_(m.config().ostruct),
      pool_(cfg_.initial_pool_blocks),
      gc_(pool_, m.metrics(), [this](BlockIndex b) { reclaim(b); },
          [this](telemetry::EventType t, std::uint64_t slot, Ver v,
                 std::uint64_t arg) {
            const OAddr a =
                t == telemetry::EventType::kBlockPending ? ostruct_addr(slot)
                                                         : 0;
            emit_event(t, a, v, arg);
          }),
      comp_(static_cast<std::size_t>(m.config().num_cores)),
      core_counters_(static_cast<std::size_t>(m.config().num_cores)),
      blocks_allocated_(
          m.metrics().counter(telemetry::Component::kOsm,
                              "blocks_allocated")),
      blocks_freed_(
          m.metrics().counter(telemetry::Component::kOsm, "blocks_freed")),
      os_traps_(m.metrics().counter(telemetry::Component::kOsm, "os_traps")),
      compressed_installs_(
          m.metrics().counter(telemetry::Component::kOsm,
                              "compressed_installs")),
      compressed_discards_(
          m.metrics().counter(telemetry::Component::kOsm,
                              "compressed_discards")),
      compress_overflows_(
          m.metrics().counter(telemetry::Component::kOsm,
                              "compress_overflows")),
      walk_length_(m.metrics().histogram(telemetry::Component::kOsm,
                                         "walk_length",
                                         {1, 2, 4, 8, 16, 32, 64})),
      version_lifetime_(m.metrics().histogram(
          telemetry::Component::kOsm, "version_lifetime_cycles",
          {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576})),
      reclaim_lag_(m.metrics().histogram(
          telemetry::Component::kGc, "reclaim_lag_cycles",
          {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576})),
      ring_(cfg_.trace_capacity,
            telemetry::event_bit(telemetry::EventType::kIsaOp)) {
  static_assert(sizeof(PerCoreCounters) == 8 * sizeof(std::uint64_t),
                "stride below assumes a dense all-uint64 struct");
  constexpr std::size_t kStride =
      sizeof(PerCoreCounters) / sizeof(std::uint64_t);
  auto& reg = m.metrics();
  const PerCoreCounters* base = core_counters_.data();
  reg.counter_vec_external(telemetry::Component::kOsm, "versioned_ops",
                           &base->versioned_ops, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "root_loads",
                           &base->root_loads, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "root_stalls",
                           &base->root_stalls, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "direct_hits",
                           &base->direct_hits, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "full_lookups",
                           &base->full_lookups, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "walk_blocks",
                           &base->walk_blocks, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "stalls",
                           &base->stalls, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "tasks_executed",
                           &base->tasks_executed, kStride);
  if (ring_.enabled()) tracer_.attach(&ring_);
  if (!cfg_.trace_path.empty()) {
    tracer_.add_sink(std::make_unique<telemetry::FileSink>(cfg_.trace_path));
  }
  m_.memsys().set_line_drop_observer([this](CoreId core, Addr line) {
    if (is_compressed_addr(line)) {
      auto& map = comp_[static_cast<std::size_t>(core)];
      if (map.erase(slot_of_compressed(line)) > 0) {
        compressed_discards_.inc();
      }
    }
  });
}

// ---------------------------------------------------------------------------
// Allocation

OAddr OStructureManager::alloc(std::size_t slots) {
  if (slots == 0) throw OFault(FaultKind::kInvalidAddress, "zero-slot alloc");
  auto& freed = slot_free_[static_cast<std::uint64_t>(slots)];
  std::uint64_t base;
  if (!freed.empty()) {
    base = freed.back();
    freed.pop_back();
  } else {
    base = slots_.size();
    slots_.resize(slots_.size() + slots);
  }
  for (std::uint64_t s = base; s < base + slots; ++s) {
    SlotMeta& sm = slots_[s];
    assert(!sm.allocated && sm.root == kNullBlock);
    sm.allocated = true;
  }
  return ostruct_addr(base);
}

void OStructureManager::release(OAddr base, std::size_t slots) {
  const std::uint64_t first = slot_of(base);
  for (std::uint64_t s = first; s < first + slots; ++s) {
    SlotMeta& sm = slots_[s];
    // Discard every version of the slot.
    BlockIndex b = sm.root;
    while (b != kNullBlock) {
      const BlockIndex next = pool_[b].next;
      emit_event(telemetry::EventType::kBlockFreed, ostruct_addr(s),
                 pool_[b].version, b);
      pool_.free(b);
      blocks_freed_.inc();
      b = next;
    }
    sm.root = kNullBlock;
    sm.allocated = false;
    sm.order_broken = false;
    sm.nversions = 0;
    for (auto& per_core : comp_) per_core.erase(s);
    // Anyone still parked here violated the release precondition; wake them
    // so they fault with a clear diagnostic instead of deadlocking.
    if (!sm.waiters.empty() && Fiber::current() != nullptr) {
      m_.wake_all(sm.waiters, cfg_.wake_latency);
    }
  }
  slot_free_[static_cast<std::uint64_t>(slots)].push_back(first);
}

std::uint64_t OStructureManager::slot_of(OAddr a) const {
  if (a < kOStructBase || (a - kOStructBase) % 8 != 0) {
    throw OFault(FaultKind::kVersionedAccessToUnversionedPage,
                 "address " + std::to_string(a) +
                     " is outside the versioned region");
  }
  const std::uint64_t slot = (a - kOStructBase) / 8;
  if (slot >= slots_.size() || !slots_[slot].allocated) {
    throw OFault(FaultKind::kVersionedAccessToUnversionedPage,
                 "slot " + std::to_string(slot) + " is not allocated");
  }
  return slot;
}

bool OStructureManager::is_versioned_addr(Addr a) const {
  if (a < kOStructBase || (a - kOStructBase) % 8 != 0) return false;
  const std::uint64_t slot = (a - kOStructBase) / 8;
  return slot < slots_.size() && slots_[slot].allocated;
}

void OStructureManager::check_conventional(Addr a) const {
  if (is_versioned_addr(a)) {
    throw OFault(FaultKind::kConventionalAccessToVersionedPage,
                 "slot " + std::to_string((a - kOStructBase) / 8));
  }
}

// ---------------------------------------------------------------------------
// Timing helpers

void OStructureManager::emit_event_slow(telemetry::EventType type, OAddr addr,
                                        Ver version, std::uint64_t arg) {
  telemetry::TraceEvent e;
  // Host-context emissions (release() from teardown code) carry time 0.
  if (Fiber::current() != nullptr) {
    e.time = m_.now();
    e.core = m_.current_core();
  }
  e.type = type;
  e.addr = addr;
  e.version = version;
  e.arg = arg;
  tracer_.emit(e);
}

void OStructureManager::begin_attempt(const OpFlags& f, int attempt,
                                       OpCode op, OAddr a, Ver v) {
  m_.sync_to_global_order();
  if (attempt == 0) {
    const CoreId core = m_.current_core();
    PerCoreCounters& pc = core_counters_[static_cast<std::size_t>(core)];
    pc.versioned_ops++;
    if (f.root) pc.root_loads++;
    if (tracer_.enabled()) {
      tracer_.emit({m_.now(), core, telemetry::EventType::kIsaOp, op, a, v,
                    0});
    }
  }
  if (cfg_.injected_latency != 0) m_.advance(cfg_.injected_latency);
}

void OStructureManager::stall(const OpFlags& f, std::uint64_t slot,
                              int attempt) {
  if (attempt == 0) {
    const CoreId core = m_.current_core();
    PerCoreCounters& pc = core_counters_[static_cast<std::size_t>(core)];
    pc.stalls++;
    if (f.root) pc.root_stalls++;
  }
  m_.block_on(slots_[slot].waiters);
}

CompressedLine* OStructureManager::comp_line(CoreId core, std::uint64_t slot) {
  if (!m_.memsys().line_in_l1(core, compressed_addr(slot))) return nullptr;
  return comp_[static_cast<std::size_t>(core)].find(slot);
}

void OStructureManager::comp_install(std::uint64_t slot,
                                     const CompressedLine::Entry& e) {
  if (!cfg_.enable_compression) return;
  const CoreId core = m_.current_core();
  CompressedLine& cl = comp_[static_cast<std::size_t>(core)][slot];
  const std::uint64_t rejected_before = cl.range_rejections();
  if (cl.install(e)) {
    compressed_installs_.inc();
  } else {
    compress_overflows_.inc(cl.range_rejections() - rejected_before);
  }
  // Materialize the line in the L1 tag array (hardware builds it locally).
  m_.memsys().install_line(core, compressed_addr(slot), /*dirty=*/true);
}

void OStructureManager::comp_remote_insert(std::uint64_t slot, Ver v,
                                           bool at_head) {
  // Remote caches either discard their compressed line for this O-structure
  // when they observe the coherence message (paper: "the simplest course of
  // action is to discard the compressed version block") or — the paper's
  // future-work variant — patch it in situ. Either way the information
  // piggybacks on the version-block line's own coherence message (which the
  // paper extends to carry the list-head address), so no extra latency is
  // charged.
  const CoreId me = m_.current_core();
  if (!cfg_.inplace_comp_update) {
    m_.memsys().invalidate_others(me, compressed_addr(slot));
    return;
  }
  for (CoreId c = 0; c < m_.num_cores(); ++c) {
    if (c == me) continue;
    if (CompressedLine* cl = comp_line(c, slot)) cl->on_insert(v, at_head);
  }
}

void OStructureManager::comp_remote_lock(std::uint64_t slot, Ver v,
                                         TaskId locker) {
  const CoreId me = m_.current_core();
  if (!cfg_.inplace_comp_update) {
    m_.memsys().invalidate_others(me, compressed_addr(slot));
    return;
  }
  for (CoreId c = 0; c < m_.num_cores(); ++c) {
    if (c == me) continue;
    if (CompressedLine* cl = comp_line(c, slot)) cl->set_lock(v, locker);
  }
}

void OStructureManager::charge_lookup(std::uint64_t slot, const FindResult& fr,
                                      LookupKind kind, Ver key,
                                      AccessType final_access,
                                      std::optional<TaskId> probe_locked_by) {
  const CoreId core = m_.current_core();

  // Snapshot the block's fields now: the charged walk below yields, and the
  // block could be reclaimed or mutated before the walk completes.
  CompressedLine::Entry snap;
  {
    const VersionBlock& vb = pool_[fr.block];
    snap.version = vb.version;
    snap.locked_by = vb.locked_by;
    snap.data = vb.data;
    snap.is_head = fr.is_head;
    snap.has_newer = fr.has_newer;
    snap.newer_version = fr.newer;
  }

  if (cfg_.enable_compression) {
    if (CompressedLine* cl = comp_line(core, slot)) {
      const auto e = kind == LookupKind::kExact ? cl->find_exact(key)
                                                : cl->find_latest(key);
      const TaskId want = probe_locked_by.value_or(snap.locked_by);
      if (e && e->version == snap.version && e->locked_by == want) {
        // Direct access: a single L1 probe of the compressed line.
        core_counters_[static_cast<std::size_t>(core)].direct_hits++;
        m_.mem_access(compressed_addr(slot), final_access);
        return;
      }
    }
  }

  // Full lookup: the physical address of the list head comes from the page
  // table through the TLB (paper Fig. 4) — cached translation, no memory
  // access — then the version block list is walked. Blocks passed over are
  // read without polluting the L1; the requested block is installed
  // normally and its compressed entry is (re)built.
  PerCoreCounters& pc = core_counters_[static_cast<std::size_t>(core)];
  pc.full_lookups++;
  pc.walk_blocks += static_cast<std::uint64_t>(fr.blocks_walked);
  walk_length_.observe(static_cast<std::uint64_t>(fr.blocks_walked));
  AccessOptions nofill;
  nofill.fill_l1 = !cfg_.pollution_avoidance;
  // Re-walk the current list for addresses; the list may have changed since
  // the semantic decision, so bound the walk by both count and list end.
  int remaining = fr.blocks_walked - 1;
  for (BlockIndex b = slots_[slot].root; b != kNullBlock && remaining > 0;
       b = pool_[b].next, --remaining) {
    m_.mem_access(version_block_addr(b), AccessType::kRead, nofill);
  }
  // Compressed/uncompressed choice (paper Sec. III-A): packing into a
  // compressed line only pays when the slot holds multiple versions (one
  // 64-byte line carries 8 of them); a single-version slot is denser as a
  // plain block line (4 blocks per line). The L1 keeps exactly one resident
  // form per lookup: the compressed line, or the uncompressed block line.
  const bool compress =
      cfg_.enable_compression && slots_[slot].nversions > 1;
  AccessOptions final_opts;
  final_opts.fill_l1 = !compress;
  m_.mem_access(version_block_addr(fr.block), final_access, final_opts);
  if (compress) comp_install(slot, snap);
}

// ---------------------------------------------------------------------------
// Block allocation and GC plumbing

BlockIndex OStructureManager::alloc_block() {
  // Pop from this core's bank of the hardware free list (one exclusive
  // access to the bank head; banks are per-core, paper Fig. 2).
  m_.mem_access(free_list_addr(m_.current_core()), AccessType::kWrite);
  BlockIndex b = pool_.alloc();
  if (b == kNullBlock) {
    // Free list exhausted: give the GC a chance, then trap to the OS.
    if (gc_.start_phase()) m_.advance(cfg_.gc_trigger_latency);
    b = pool_.alloc();
    if (b == kNullBlock) {
      pool_.grow(cfg_.trap_grow_blocks);
      os_traps_.inc();
      emit_event(telemetry::EventType::kOsTrap, 0, 0, cfg_.trap_grow_blocks);
      m_.advance(cfg_.os_trap_latency);
      b = pool_.alloc();
      assert(b != kNullBlock);
    }
  }
  blocks_allocated_.inc();
  stamp(block_born_, b, m_.now());
  emit_event(telemetry::EventType::kBlockAlloc, 0, 0, b);
  if (pool_.free_count() < cfg_.gc_watermark && gc_.start_phase()) {
    m_.advance(cfg_.gc_trigger_latency);
  }
  return b;
}

void OStructureManager::reclaim(BlockIndex b) {
  VersionBlock& vb = pool_[b];
  SlotMeta& sm = slots_[vb.slot];
  sm.nversions--;
  list_unlink(pool_, &sm.root, b);
  for (auto& per_core : comp_) {
    if (CompressedLine* cl = per_core.find(vb.slot)) cl->erase(vb.version);
  }
  // Reclamation always happens inside a fiber (GC phases are driven by
  // versioned ops and TASK-END), so the clock is valid for the lifetime
  // and lag distributions.
  const Cycles now = m_.now();
  version_lifetime_.observe(now - stamp_of(block_born_, b));
  reclaim_lag_.observe(now - stamp_of(block_shadowed_at_, b));
  emit_event(telemetry::EventType::kBlockFreed, ostruct_addr(vb.slot),
             vb.version, b);
  pool_.free(b);
  blocks_freed_.inc();
}

// ---------------------------------------------------------------------------
// The versioned ISA

std::uint64_t OStructureManager::load_version(OAddr a, Ver v, OpFlags f) {
  for (int attempt = 0;; ++attempt) {
    begin_attempt(f, attempt, OpCode::kLoadVersion, a, v);
    const std::uint64_t slot = slot_of(a);
    SlotMeta& sm = slots_[slot];
    const FindResult fr =
        find_exact(pool_, sm.root, v, effective_sorted(sm));
    if (fr.found() && pool_[fr.block].locked_by == kNoTask) {
      const std::uint64_t data = pool_[fr.block].data;
      // Semantic point: the version is resolved here, before the charged
      // lookup can yield to other cores, so cross-core event order matches
      // the authoritative serialization.
      if (tracer_.enabled()) {
        tracer_.emit({m_.now(), m_.current_core(),
                      telemetry::EventType::kVersionRead, OpCode::kLoadVersion,
                      a, v, v});
      }
      charge_lookup(slot, fr, LookupKind::kExact, v);
      return data;
    }
    stall(f, slot, attempt);
  }
}

std::uint64_t OStructureManager::load_latest(OAddr a, Ver cap, Ver* found,
                                             OpFlags f) {
  for (int attempt = 0;; ++attempt) {
    begin_attempt(f, attempt, OpCode::kLoadLatest, a, cap);
    const std::uint64_t slot = slot_of(a);
    SlotMeta& sm = slots_[slot];
    const FindResult fr =
        find_latest(pool_, sm.root, cap, effective_sorted(sm));
    if (fr.found() && pool_[fr.block].locked_by == kNoTask) {
      const std::uint64_t data = pool_[fr.block].data;
      const Ver got = pool_[fr.block].version;
      if (tracer_.enabled()) {
        tracer_.emit({m_.now(), m_.current_core(),
                      telemetry::EventType::kVersionRead, OpCode::kLoadLatest,
                      a, got, cap});
      }
      charge_lookup(slot, fr, LookupKind::kLatest, cap);
      if (found != nullptr) *found = got;
      return data;
    }
    stall(f, slot, attempt);
  }
}

std::uint64_t OStructureManager::lock_load_version(OAddr a, Ver v,
                                                   TaskId locker, OpFlags f) {
  for (int attempt = 0;; ++attempt) {
    begin_attempt(f, attempt, OpCode::kLockLoadVersion, a, v);
    const std::uint64_t slot = slot_of(a);
    SlotMeta& sm = slots_[slot];
    const FindResult fr =
        find_exact(pool_, sm.root, v, effective_sorted(sm));
    if (fr.found() && pool_[fr.block].locked_by == kNoTask) {
      VersionBlock& vb = pool_[fr.block];
      vb.locked_by = locker;  // semantic effect, atomic at this timestamp
      const std::uint64_t data = vb.data;
      // Emit at the semantic point: the charged lookup below yields, and a
      // competing core's release/acquire must not appear out of order in
      // the event stream.
      if (tracer_.enabled()) {
        tracer_.emit({m_.now(), m_.current_core(),
                      telemetry::EventType::kVersionRead,
                      OpCode::kLockLoadVersion, a, v, v});
      }
      emit_event(telemetry::EventType::kLockAcquire, a, v, locker);
      // Locking needs exclusive access to the block's line (paper Sec.
      // III-A "Locking a version"): the lookup's final transaction is a
      // read-for-ownership, and compressed copies elsewhere are discarded.
      charge_lookup(slot, fr, LookupKind::kExact, v, AccessType::kWrite,
                    kNoTask);
      if (CompressedLine* cl = comp_line(m_.current_core(), slot)) {
        cl->set_lock(v, locker);
      }
      comp_remote_lock(slot, v, locker);
      return data;
    }
    stall(f, slot, attempt);
  }
}

std::uint64_t OStructureManager::lock_load_latest(OAddr a, Ver cap,
                                                  TaskId locker, Ver* found,
                                                  OpFlags f) {
  for (int attempt = 0;; ++attempt) {
    begin_attempt(f, attempt, OpCode::kLockLoadLatest, a, cap);
    const std::uint64_t slot = slot_of(a);
    SlotMeta& sm = slots_[slot];
    const FindResult fr =
        find_latest(pool_, sm.root, cap, effective_sorted(sm));
    if (fr.found() && pool_[fr.block].locked_by == kNoTask) {
      VersionBlock& vb = pool_[fr.block];
      vb.locked_by = locker;
      const std::uint64_t data = vb.data;
      const Ver got = vb.version;
      if (tracer_.enabled()) {
        tracer_.emit({m_.now(), m_.current_core(),
                      telemetry::EventType::kVersionRead,
                      OpCode::kLockLoadLatest, a, got, cap});
      }
      emit_event(telemetry::EventType::kLockAcquire, a, got, locker);
      charge_lookup(slot, fr, LookupKind::kLatest, cap, AccessType::kWrite,
                    kNoTask);
      if (CompressedLine* cl = comp_line(m_.current_core(), slot)) {
        cl->set_lock(got, locker);
      }
      comp_remote_lock(slot, got, locker);
      if (found != nullptr) *found = got;
      return data;
    }
    stall(f, slot, attempt);
  }
}

void OStructureManager::store_impl(std::uint64_t slot, Ver v,
                                   std::uint64_t data) {
  // alloc_block() charges memory accesses and may yield to other cores,
  // which can allocate slots and reallocate slots_: SlotMeta references
  // must only be taken afterwards.
  const BlockIndex nb = alloc_block();
  VersionBlock& vb = pool_[nb];
  vb.version = v;
  vb.data = data;
  vb.slot = slot;

  SlotMeta& sm = slots_[slot];
  InsertResult ir;
  try {
    ir = list_insert(pool_, &sm.root, nb, cfg_.sorted_lists);
    if (!ir.order_kept) sm.order_broken = true;
  } catch (const OFault&) {
    // Duplicate version: return the block before faulting. addr 0 marks a
    // bare recycle — no version was ever installed on it.
    emit_event(telemetry::EventType::kBlockFreed, 0, 0, nb);
    pool_.free(nb);
    blocks_allocated_.dec();
    throw;
  }
  // Snapshot everything the compressed-line update needs before any charged
  // access can yield to other cores.
  CompressedLine::Entry snap;
  snap.version = v;
  snap.data = data;
  snap.is_head = ir.at_head;
  if (cfg_.sorted_lists && ir.pred != kNullBlock) {
    snap.has_newer = true;
    snap.newer_version = pool_[ir.pred].version;
  }

  // Emit at the semantic point — the insert is authoritative here, before
  // the charged walk below can yield to other cores and interleave their
  // events ahead of this store in the stream. The GC shadow *registration*
  // stays at its original place after the charges (moving it would change
  // which phase picks the block up, i.e. simulated timing).
  emit_event(telemetry::EventType::kVersionStore, ostruct_addr(slot), v, nb);
  if (ir.shadowed != kNullBlock) {
    emit_event(telemetry::EventType::kBlockShadowed, ostruct_addr(slot),
               ir.at_head ? v : snap.newer_version, ir.shadowed);
  }

  // Timing: walk to the insertion point (the list head address itself is a
  // TLB-cached page-table translation) and the two exclusive line
  // acquisitions of the insertion protocol (new block + predecessor,
  // lowest-address first per the paper's deadlock-avoidance order).
  AccessOptions nofill;
  nofill.fill_l1 = false;
  // Note: `sm` must not be used past this point — slots_ may reallocate
  // while charged accesses yield to other cores; re-fetch via slots_[slot].
  int remaining = ir.blocks_walked;
  for (BlockIndex b = slots_[slot].root; b != kNullBlock && remaining > 0;
       b = pool_[b].next, --remaining) {
    if (b != nb) m_.mem_access(version_block_addr(b), AccessType::kRead,
                               nofill);
  }
  const Addr na = version_block_addr(nb);
  const Addr pa =
      ir.pred != kNullBlock ? version_block_addr(ir.pred) : root_addr(slot);
  m_.mem_access(std::min(na, pa), AccessType::kWrite);
  m_.mem_access(std::max(na, pa), AccessType::kWrite);
  if (ir.at_head) m_.mem_access(root_addr(slot), AccessType::kWrite);

  // GC shadow registration. An insert at the head shadows the old head with
  // the new version; a mid-list insert is itself born shadowed by its
  // immediately-newer neighbour.
  if (ir.shadowed != kNullBlock) {
    const Ver shadower = ir.at_head ? v : snap.newer_version;
    stamp(block_shadowed_at_, ir.shadowed, m_.now());
    gc_.on_shadowed(ir.shadowed, shadower);
  }

  // Compressed-line maintenance: patch the local line's adjacency, install
  // the new version, and make remote caches discard their copies.
  slots_[slot].nversions++;
  const CoreId core = m_.current_core();
  if (CompressedLine* cl = comp_line(core, slot)) {
    cl->on_insert(v, ir.at_head);
  }
  if (slots_[slot].nversions > 1) comp_install(slot, snap);
  comp_remote_insert(slot, v, ir.at_head);

  // A new version may satisfy parked LOAD/LOCK attempts.
  m_.wake_all(slots_[slot].waiters, cfg_.wake_latency);
}

void OStructureManager::store_version(OAddr a, Ver v, std::uint64_t data,
                                      OpFlags f) {
  begin_attempt(f, 0, OpCode::kStoreVersion, a, v);
  store_impl(slot_of(a), v, data);
}

void OStructureManager::unlock_version(OAddr a, Ver locked_v, TaskId owner,
                                       std::optional<Ver> rename_to,
                                       OpFlags f) {
  begin_attempt(f, 0, OpCode::kUnlockVersion, a, locked_v);
  const std::uint64_t slot = slot_of(a);
  SlotMeta& sm = slots_[slot];
  const FindResult fr =
      find_exact(pool_, sm.root, locked_v, effective_sorted(sm));
  if (!fr.found()) {
    throw OFault(FaultKind::kNotLockOwner,
                 "unlock of nonexistent version " + std::to_string(locked_v));
  }
  VersionBlock& vb = pool_[fr.block];
  if (vb.locked_by != owner) {
    throw OFault(FaultKind::kNotLockOwner,
                 "version " + std::to_string(locked_v) + " locked by " +
                     std::to_string(vb.locked_by) + ", unlock by " +
                     std::to_string(owner));
  }
  if (rename_to.has_value() &&
      find_exact(pool_, sm.root, *rename_to, effective_sorted(sm)).found()) {
    throw OFault(FaultKind::kRenameTargetExists, std::to_string(*rename_to));
  }

  vb.locked_by = kNoTask;
  const std::uint64_t data = vb.data;
  // Semantic point: the lock is released here; emit before the charged
  // write below yields, or a competing core's re-acquire would appear
  // before this release in the event stream.
  emit_event(telemetry::EventType::kLockRelease, a, locked_v, owner);
  m_.mem_access(version_block_addr(fr.block), AccessType::kWrite);
  if (CompressedLine* cl = comp_line(m_.current_core(), slot)) {
    cl->set_lock(locked_v, kNoTask);
  }
  comp_remote_lock(slot, locked_v, kNoTask);

  if (rename_to.has_value()) {
    // Renaming: materialize the same value as a new, unlocked version.
    store_impl(slot, *rename_to, data);
  } else {
    m_.wake_all(slots_[slot].waiters, cfg_.wake_latency);
  }
}

void OStructureManager::task_created(TaskId t) {
  gc_.task_created(t);
  emit_event(telemetry::EventType::kTaskCreated, 0, t, 0);
}

void OStructureManager::task_begin(TaskId t) {
  m_.sync_to_global_order();
  m_.exec(1);  // the TASK-BEGIN instruction itself
  if (tracer_.enabled()) {
    tracer_.emit({m_.now(), m_.current_core(), telemetry::EventType::kIsaOp,
                  OpCode::kTaskBegin, 0, t, 0});
  }
  gc_.task_begin(t);
}

void OStructureManager::task_end(TaskId t) {
  m_.sync_to_global_order();
  m_.exec(1);
  if (tracer_.enabled()) {
    tracer_.emit({m_.now(), m_.current_core(), telemetry::EventType::kIsaOp,
                  OpCode::kTaskEnd, 0, t, 0});
  }
  gc_.task_end(t);
  core_counters_[static_cast<std::size_t>(m_.current_core())]
      .tasks_executed++;
}

// ---------------------------------------------------------------------------
// Host-side inspection

std::optional<std::uint64_t> OStructureManager::peek_version(OAddr a,
                                                             Ver v) const {
  const std::uint64_t slot = slot_of(a);
  const FindResult fr =
      find_exact(pool_, slots_[slot].root, v, effective_sorted(slots_[slot]));
  if (!fr.found()) return std::nullopt;
  return pool_[fr.block].data;
}

std::optional<Ver> OStructureManager::newest_version(OAddr a) const {
  const std::uint64_t slot = slot_of(a);
  BlockIndex b = slots_[slot].root;
  if (b == kNullBlock) return std::nullopt;
  if (effective_sorted(slots_[slot])) return pool_[b].version;
  Ver best = pool_[b].version;
  for (; b != kNullBlock; b = pool_[b].next) {
    best = std::max(best, pool_[b].version);
  }
  return best;
}

std::optional<TaskId> OStructureManager::lock_holder(OAddr a, Ver v) const {
  const std::uint64_t slot = slot_of(a);
  const FindResult fr =
      find_exact(pool_, slots_[slot].root, v, effective_sorted(slots_[slot]));
  if (!fr.found()) return std::nullopt;
  const TaskId l = pool_[fr.block].locked_by;
  return l == kNoTask ? std::nullopt : std::optional<TaskId>(l);
}

int OStructureManager::version_count(OAddr a) const {
  const std::uint64_t slot = slot_of(a);
  return list_length(pool_, slots_[slot].root);
}

}  // namespace osim
