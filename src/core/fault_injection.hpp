// Deterministic fault injection: the failure-testing seam of the engine.
//
// Mirrors the SchedulePoint pattern (core/schedule_point.hpp): engines
// hold a raw FaultInjector pointer that is null in production, so every
// injection site costs one branch when detached and nothing is ever
// injected unless a plan is attached. Attached, the injector answers one
// question — "does site S fail on its Nth consultation?" — from nothing
// but the plan (seed, per-site rates, exact firing lists) and a per-site
// consultation counter. The decision sequence for a site is therefore
// independent of thread scheduling: run the same plan twice and the Nth
// block-pool allocation fails both times, which is what makes injected
// runs replayable byte-for-byte (osim-mc records the spec in its
// schedule files; the driver's --inject=<spec> reuses the same grammar).
//
// Spec grammar (comma-separated, order-insensitive):
//   <site>:<rate>   fail this fraction of consultations (0 < rate <= 1,
//                   at most 6 fractional digits)
//   <site>@<n>      fail exactly on the Nth consultation (1-based;
//                   repeatable: pool@3@7)
//   seed=<n>        seed for the rate-driven decisions (default 1)
//   none            attach with no failing sites (the zero-effect guard)
// Sites: pool, slots, trace-short, trace-enospc, deadlock, gc-delay.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/trace.hpp"

namespace osim {

/// Where a failure can be injected. Values index the plan/counter arrays.
enum class FaultSite : std::uint8_t {
  kBlockPool = 0,    ///< version-block pool grow refused (OS trap fails)
  kSlotTable = 1,    ///< slot-table allocation refused
  kTraceShortWrite = 2,  ///< trace sink persists a partial record
  kTraceEnospc = 3,      ///< trace sink write fails with ENOSPC
  kDeadlock = 4,     ///< a blocking versioned op times out immediately
  kGcDelay = 5,      ///< a collection trigger is suppressed (sweep delayed)
};
inline constexpr int kNumFaultSites = 6;

/// Stable spec-grammar name of a site ("pool", "slots", ...).
const char* to_string(FaultSite s);

/// A parsed --inject specification. Value type: copy freely into configs.
struct FaultPlan {
  struct SiteSpec {
    /// Failure probability per consultation, in parts per million (the
    /// decision hash is integral so rates replay exactly).
    std::uint32_t rate_ppm = 0;
    /// Exact 1-based consultation indices that fail, sorted ascending.
    std::vector<std::uint64_t> at;

    bool active() const { return rate_ppm != 0 || !at.empty(); }
  };

  /// False for the empty spec: no injector is constructed at all. "none"
  /// parses attached-but-inert, so the zero-effect guard exercises every
  /// detached-check branch with a live injector behind it.
  bool attached = false;
  std::uint64_t seed = 1;
  std::array<SiteSpec, kNumFaultSites> sites;

  /// Parse the spec grammar above; throws std::runtime_error with the
  /// offending token on any malformation. parse("") is detached.
  static FaultPlan parse(const std::string& spec);
  /// Canonical spec string: parse(to_spec()) reproduces the plan exactly.
  /// Detached plans serialize to "".
  std::string to_spec() const;
};

/// The injector proper. Thread-safe: consultation counters are atomic and
/// the plan is immutable after construction, so concurrent engines consult
/// it from worker threads without locks.
class FaultInjector final : public telemetry::IoFaultHook {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
    for (auto& c : consulted_) c.store(0, std::memory_order_relaxed);
    for (auto& f : fired_) f.store(0, std::memory_order_relaxed);
  }

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Consult site `s`: advances its counter and returns true when this
  /// consultation fails per the plan. Each call is one decision; callers
  /// consult exactly once per fallible operation.
  bool should_fire(FaultSite s);

  /// telemetry::IoFaultHook: consulted by FileSink per record write.
  /// Short-write takes precedence over ENOSPC when both fire.
  telemetry::IoFault next_io_fault() override {
    if (should_fire(FaultSite::kTraceShortWrite)) {
      return telemetry::IoFault::kShortWrite;
    }
    if (should_fire(FaultSite::kTraceEnospc)) {
      return telemetry::IoFault::kEnospc;
    }
    return telemetry::IoFault::kNone;
  }

  const FaultPlan& plan() const { return plan_; }
  std::uint64_t consulted(FaultSite s) const {
    return consulted_[static_cast<std::size_t>(s)].load(
        std::memory_order_relaxed);
  }
  std::uint64_t fired(FaultSite s) const {
    return fired_[static_cast<std::size_t>(s)].load(std::memory_order_relaxed);
  }

 private:
  FaultPlan plan_;
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> consulted_;
  std::array<std::atomic<std::uint64_t>, kNumFaultSites> fired_;
};

/// The engine-side consultation shim, shared by both semantic engines (the
/// ownership-and-null-check pattern used to be duplicated in each): owns
/// the injector built from a config spec, lets tests re-point the seam at
/// an external injector, and answers the one question every injection site
/// asks. Detached (the common case) every consultation is one null-check —
/// the SchedulePoint discipline.
class FaultShim {
 public:
  /// Build and attach the config-owned injector from an --inject spec.
  /// Empty spec = stay detached; "none" = attached but inert (the
  /// zero-effect guard). Throws std::runtime_error on a malformed spec.
  void build_from_spec(const std::string& spec) {
    FaultPlan plan = FaultPlan::parse(spec);
    if (!plan.attached) return;
    owned_ = std::make_unique<FaultInjector>(std::move(plan));
    inj_ = owned_.get();
  }

  /// Re-point at an externally owned injector (tests/tools); replaces any
  /// config-built one at every consultation site.
  void attach(FaultInjector* inj) { inj_ = inj; }

  /// The attached injector, or null when detached.
  FaultInjector* get() const { return inj_; }

  /// One consultation of site `s`; false without advancing any counter
  /// when detached.
  bool fire(FaultSite s) const {
    return inj_ != nullptr && inj_->should_fire(s);
  }

 private:
  std::unique_ptr<FaultInjector> owned_;
  FaultInjector* inj_ = nullptr;
};

}  // namespace osim
