// ConcurrentVersionStore: the thread-safe sibling of the semantic engine.
//
// The serial VersionStore (core/version_store.hpp) is single-threaded by
// contract — both the cycle-accurate machine (cooperative fibers) and the
// functional backend (inline spawn-order execution) drive it from one host
// thread, which is what keeps the timed backend bit-identical. This engine
// implements the *same versioned ISA semantics* for genuinely concurrent
// callers on real host threads:
//
//   * the slot table is lock-striped into N power-of-two shards; every
//     mutation (STORE-VERSION, LOCK-LOAD, UNLOCK) runs under its shard's
//     writer mutex,
//   * every slot carries a seqlock so LOAD-VERSION / LOAD-LATEST are
//     optimistic lock-free walks that retry on an odd or changed sequence
//     (memory-order discipline per SNIPPETS.md snippet 1,
//     cyfdecyf/mem-order/mem-record-seqlock.c — see the write-side comment
//     in concurrent_store.cpp),
//   * a blocked operation (version not yet stored, candidate locked) does a
//     bounded spin then parks on the shard's condition variable instead of
//     faulting; a store/unlock on the shard wakes it. A park that outlives
//     the deadlock timeout faults kWouldBlock with the task id and op —
//     the concurrent analogue of the functional backend's instant fault,
//   * shadowed blocks are reclaimed under the configured GcPolicy rule
//     (core/gc_policy.hpp) — the paper's fence rule (a shadowed block is
//     unreachable once every task older than its shadower has finished) or
//     the bounded-space range rule (unreachable once no unfinished task id
//     lies in [version, shadower)) — *and* an epoch-based grace period so a
//     block is never recycled while an optimistic reader may still walk
//     through it.
//
// Everything is TSan-followable: all fields shared with lock-free readers
// are std::atomic, and the seqlock's fences pair acquire/release exactly as
// snippet 1 prescribes. tools/run-sanitizers.sh runs the stress test under
// TSan.
//
// Like the serial engine this header has no "sim/..." dependencies; it
// builds on core/ and telemetry/ only. It does not implement TimingModel —
// concurrency *is* its timing model; there are no cycles to charge.
#pragma once

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/address_map.hpp"
#include "core/engine_trace.hpp"
#include "core/fault_injection.hpp"
#include "core/isa.hpp"
#include "core/ostruct_config.hpp"
#include "core/schedule_point.hpp"
#include "core/thread_annotations.hpp"
#include "core/types.hpp"
#include "core/undo_journal.hpp"
#include "core/version_block.hpp"
#include "core/version_engine.hpp"
#include "telemetry/trace.hpp"

namespace osim {

/// Host-side tuning of the concurrent engine. Defaults favour throughput;
/// tests shrink the timeout (deadlock reports) and the reclaim threshold
/// (GC coverage).
struct ConcurrencyConfig {
  /// Lock stripes; rounded up to a power of two.
  int shards = 64;
  /// Registration slots for host threads (workers + the owning thread).
  int max_threads = 64;
  /// Optimistic spins on a blocked op before parking on the shard CV.
  int spin_iters = 128;
  /// One timed park slice; bounds the staleness of a missed wakeup (the
  /// wake fast path reads the waiter count relaxed, see wake()).
  std::uint64_t park_slice_us = 200;
  /// Total blocked time after which a parked op faults kWouldBlock — the
  /// concurrent engine's deadlock report.
  std::uint64_t deadlock_timeout_ms = 2000;
  /// Shadowed blocks per shard that trigger a reclaim pass. The default is
  /// effectively "never", matching the serial engine at test scale where
  /// checked runs must see identical event vocabularies.
  std::size_t reclaim_threshold = std::size_t{1} << 62;
  /// Optimistic walk bound; exceeding it forces a seqlock retry (belt and
  /// braces against a transiently inconsistent chain).
  std::size_t walk_limit = std::size_t{1} << 20;
  /// Reclamation policy (the GcPolicy seam, core/gc_policy.hpp). kPaper
  /// applies the fence rule (shadower <= oldest unfinished task); kBounded
  /// applies the per-block range rule (no unfinished task in
  /// [version, shadower)), which keeps the shadow registry bounded even
  /// under a reader that never finishes.
  GcPolicyKind gc_policy = GcPolicyKind::kPaper;
  /// Fault-injection spec (core/fault_injection.hpp grammar), e.g.
  /// "pool:0.01,deadlock@3,seed=7". Empty = no injector attached and every
  /// injection site is a single null-check.
  std::string inject_spec;
  /// Record a per-task undo journal so abort_task() can roll back a task's
  /// stores and locks. Costs a few words per store/lock op; only retrying
  /// runtimes want it.
  bool track_aborts = false;
};

/// The concurrent semantic engine. Implements the VersionEngine facade
/// (same ISA surface as VersionStore); threads self-register on first use
/// (bounded by max_threads).
class ConcurrentVersionStore : public VersionEngine {
 public:
  struct Stats {
    std::uint64_t ops = 0;           ///< versioned ISA ops executed
    std::uint64_t loads = 0;         ///< LOAD-VERSION / LOAD-LATEST
    std::uint64_t stores = 0;        ///< STORE-VERSION (incl. renames)
    std::uint64_t lock_ops = 0;      ///< LOCK-LOAD / UNLOCK
    std::uint64_t seq_retries = 0;   ///< optimistic reads that re-ran
    std::uint64_t spin_waits = 0;    ///< blocked ops resolved while spinning
    std::uint64_t parks = 0;         ///< blocked ops that slept on the CV
    std::uint64_t blocks_allocated = 0;
    std::uint64_t blocks_reclaimed = 0;  ///< shadowed blocks recycled
    std::uint64_t aborts = 0;            ///< abort_task() calls
    std::uint64_t aborted_blocks = 0;    ///< versions rolled back by aborts
    std::uint64_t aborted_locks = 0;     ///< locks released by aborts
  };

  explicit ConcurrentVersionStore(const ConcurrencyConfig& cfg = {});
  ~ConcurrentVersionStore() override;

  ConcurrentVersionStore(const ConcurrentVersionStore&) = delete;
  ConcurrentVersionStore& operator=(const ConcurrentVersionStore&) = delete;

  // ---- O-structure allocation (host interface; not thread-safe against
  // concurrent ISA ops on the same slots, like the serial engine) ----
  OAddr alloc(std::size_t slots = 1) override;
  void release(OAddr base, std::size_t slots = 1) override;

  // ---- The versioned ISA (thread-safe) ----
  std::uint64_t load_version(OAddr a, Ver v) override;
  std::uint64_t load_latest(OAddr a, Ver cap, Ver* found = nullptr) override;
  void store_version(OAddr a, Ver v, std::uint64_t data) override;
  std::uint64_t lock_load_version(OAddr a, Ver v, TaskId locker) override;
  std::uint64_t lock_load_latest(OAddr a, Ver cap, TaskId locker,
                                 Ver* found = nullptr) override;
  void unlock_version(OAddr a, Ver locked_v, TaskId owner,
                      std::optional<Ver> rename_to = std::nullopt) override;

  // ---- Task lifecycle (GC rules #1-#3; thread-safe) ----
  void task_created(TaskId t) override;
  void task_begin(TaskId t) override;
  void task_end(TaskId t) override;

  /// Roll back task `t`'s effects: its created versions are unlinked and
  /// retired (a rename run backwards) and its held locks released, each
  /// undone newest-first. Must run on the host thread that executed the
  /// task's ops (the journal is thread-local); requires
  /// ConcurrencyConfig::track_aborts. The task stays registered in the
  /// unfinished set so the runtime can retry it with a plain task_begin,
  /// or retire it with task_end. Emits kLockRelease / kBlockFreed per
  /// undone entry, then one kTaskAborted event.
  void abort_task(TaskId t) override;

 private:
  /// Checked registration shared by task_created and an implicitly-creating
  /// task_begin (task_mu_ held). Mirrors core/gc.cpp's diagnostics.
  void create_task_locked(TaskId t) OSIM_REQUIRES(task_mu_);

 public:

  // ---- Protection ----
  bool is_versioned_addr(Addr a) const override;
  void check_conventional(Addr a) const override;

  /// Abort every parked waiter (they fault kWouldBlock). Used by the task
  /// pool to unwind a run after a worker error.
  void request_stop();
  /// Re-arm after request_stop() so the store can run another batch.
  void reset_stop();
  /// True once request_stop() fired (retry loops check this before
  /// re-running an aborted task).
  bool stopped() const { return stop_.load(std::memory_order_acquire); }

  /// The injector built from ConcurrencyConfig::inject_spec, or nullptr
  /// when the spec was empty (tests inspect consulted/fired counters).
  FaultInjector* fault_injector() override { return inj_.get(); }
  /// Attach an externally owned injector (tests/tools); replaces any
  /// config-built one at every engine site. Not thread-safe: call before
  /// the worker threads start, e.g. after the host-side setup stores —
  /// which also keeps injection away from setup, where no task exists to
  /// absorb a fault by aborting.
  void attach_fault_injector(FaultInjector* inj) override { inj_.attach(inj); }

  /// Attach a tracer for lifecycle events (protocol checking). Emission is
  /// serialized on an internal mutex and reads additionally take the shard
  /// writer lock, so attached runs are slower but produce a linearized
  /// event stream the osim-check invariants understand. Call before any
  /// ISA op; `num cores` reported to the checker should be max_threads.
  void attach_tracer(telemetry::Tracer* tracer);

  /// Facade spelling of the same seam: the first call attaches (and
  /// returns) an engine-owned tracer, switching the store into
  /// linearized-trace mode — reads serialized under the shard locks — so
  /// call it only when events are wanted, before any ISA op runs.
  telemetry::Tracer& tracer() override {
    if (tracer_ == nullptr) attach_tracer(&owned_tracer_);
    return *tracer_;
  }

  /// Attach (or detach with nullptr) a schedule hook — the model-checking
  /// seam (core/schedule_point.hpp). Call before any ISA op and only while
  /// no program thread is inside the store. With no hook attached every
  /// announcement site is a single null-check (the TimingFastPath trick).
  void attach_schedule_hook(ScheduleHook* hook) { hook_ = hook; }

  /// Threads registered so far. Invariant: never exceeds
  /// ConcurrencyConfig::max_threads (osim-mc checks this after every
  /// explored schedule; the seeded ctx_id overshoot bug violates it).
  int registered_threads() const {
    return nctx_.load(std::memory_order_acquire);
  }

  /// Structural audit of every allocated slot's version chain, under the
  /// shard locks: no cycles, versions strictly descending (newest first),
  /// nversions consistent with the walked length. Quiescent or
  /// hook-scheduled callers only. osim-mc runs this after every explored
  /// schedule — the seeded alloc-after-walk bug shows up here as a chain
  /// self-loop or a lost version.
  struct IntegrityReport {
    bool ok = true;
    std::string detail;  ///< first violation, empty when ok
  };
  IntegrityReport check_integrity();

  // ---- Host-side inspection (takes shard locks; any thread) ----
  std::optional<std::uint64_t> peek_version(OAddr a, Ver v) override;
  std::optional<Ver> newest_version(OAddr a) override;
  std::optional<TaskId> lock_holder(OAddr a, Ver v) override;
  int version_count(OAddr a) override;
  /// All live versions of a slot, newest first (stress-test comparisons).
  std::vector<std::pair<Ver, std::uint64_t>> slot_versions(OAddr a);

  Stats stats() const;
  /// Facade-level abort accounting (same fields as the serial engine).
  EngineStats engine_stats() const override {
    const Stats s = stats();
    EngineStats es;
    es.tasks_aborted = s.aborts;
    es.aborted_blocks = s.aborted_blocks;
    es.aborted_locks = s.aborted_locks;
    return es;
  }
  const ConcurrencyConfig& config() const { return cfg_; }

 private:
  // ---- Geometry ----
  // Blocks and slots live in chunked tables whose chunk pointers are
  // atomic: growth appends chunks and publishes the pointer, so readers
  // never observe a reallocation (unlike std::vector growth).
  static constexpr std::uint32_t kBlockChunkBits = 10;  // 1024 blocks/chunk
  static constexpr std::uint32_t kBlockChunkSize = 1u << kBlockChunkBits;
  static constexpr std::uint32_t kMaxBlockChunks = 4096;  // 4M blocks/shard
  static constexpr std::uint64_t kSlotChunkBits = 12;  // 4096 slots/chunk
  static constexpr std::uint64_t kSlotChunkSize = 1ull << kSlotChunkBits;
  static constexpr std::uint64_t kMaxSlotChunks = 4096;  // 16M slots
  static constexpr std::uint32_t kNil = 0xffffffffu;
  static constexpr std::uint64_t kIdleEpoch = ~std::uint64_t{0};

  /// One version block. Every field is atomic because lock-free readers
  /// walk the chain while a (serialized) writer mutates it; the seqlock
  /// validation makes torn *combinations* impossible, atomics make each
  /// individual access data-race-free (what TSan checks).
  struct CBlock {
    std::atomic<std::uint32_t> next{kNil};
    std::atomic<Ver> version{0};
    std::atomic<std::uint64_t> data{0};
    std::atomic<TaskId> locked_by{kNoTask};
  };

  /// One O-structure slot, padded to a cache line so Zipfian-hot neighbours
  /// don't false-share their seqlock sequence words.
  struct alignas(64) CSlot {
    std::atomic<std::uint32_t> seq{0};   ///< seqlock: odd = write in flight
    std::atomic<std::uint32_t> head{kNil};
    std::atomic<std::uint32_t> nversions{0};
    std::atomic<std::uint8_t> allocated{0};
  };

  struct Retired {
    std::uint32_t block;
    std::uint64_t epoch;  ///< global epoch when the block was unlinked
  };
  struct Shadowed {
    std::uint32_t block;
    Ver version;   ///< the shadowed version the block holds (bounded policy)
    Ver shadower;
    std::uint64_t slot;  ///< owning slot, for the unlink at reclaim time
  };

  struct alignas(64) Shard {
    Mutex writer_mu;
    // Block pool (chunks appended under writer_mu; pointers atomic for the
    // readers that chase `next` through them).
    std::array<std::atomic<CBlock*>, kMaxBlockChunks> chunk{};
    std::atomic<std::uint32_t> nchunks{0};
    std::uint32_t next_fresh OSIM_GUARDED_BY(writer_mu) = 0;  // bump cursor
    std::vector<std::uint32_t> free_list OSIM_GUARDED_BY(writer_mu);
    std::vector<Shadowed> shadowed OSIM_GUARDED_BY(writer_mu);
    std::vector<Retired> limbo OSIM_GUARDED_BY(writer_mu);
    // Incremented under writer_mu; atomic so stats() may read it without
    // the lock.
    std::atomic<std::uint64_t> reclaimed{0};
    std::uint64_t allocated OSIM_GUARDED_BY(writer_mu) = 0;
    // Dense trace-wide block ids for checker runs (local ids repeat across
    // shards; the lifecycle checker needs one id space). Lazy, writer_mu.
    std::vector<std::uint32_t> trace_ids OSIM_GUARDED_BY(writer_mu);
    // Park/wake for blocked ops (plain std::mutex: condition_variable
    // needs one, and no guarded state lives under it).
    std::mutex park_mu;
    std::condition_variable park_cv;
    std::atomic<std::uint32_t> nwaiters{0};
  };

  // The rollback-journal record and replay discipline are shared with the
  // serial engine (core/undo_journal.hpp). This engine names the undone
  // object by (slot, version), not block index: block indices recycle
  // through limbo, but a version value is unique within its slot for the
  // block's whole linked lifetime — so the generation fields stay
  // defaulted and revalidation is the chain walk under the shard lock.

  /// Per-registered-thread state, cache-line padded: the epoch pin is read
  /// by reclaimers, the counters, task id and journal are owner-only.
  struct alignas(64) ThreadCtx {
    std::atomic<std::uint64_t> epoch{kIdleEpoch};  ///< kIdleEpoch = not reading
    TaskId cur_task = kNoTask;
    Stats local;
    std::vector<UndoEntry> undo;  ///< rollback journal (track_aborts)
  };

  // ---- Thread registration ----
  ThreadCtx& ctx();
  int ctx_id();

  /// Append to the current task's rollback journal; no-op unless
  /// track_aborts is set and a task is bound to this thread.
  void journal(UndoEntry::Kind kind, std::uint64_t slot, Ver v) {
    ThreadCtx& c = ctx();
    if (!undo_active(cfg_.track_aborts, c.cur_task)) return;
    c.undo.push_back({kind, slot, v});
  }

  // ---- Layout helpers ----
  Shard& shard_of(std::uint64_t slot) { return shards_[slot & shard_mask_]; }
  std::uint64_t shard_index(const Shard& sh) const {
    return static_cast<std::uint64_t>(&sh - shards_.get());
  }
  CBlock& block(Shard& sh, std::uint32_t idx) {
    return sh.chunk[idx >> kBlockChunkBits].load(std::memory_order_acquire)
        [idx & (kBlockChunkSize - 1)];
  }
  CSlot* slot_ptr(std::uint64_t slot) const;
  std::uint64_t slot_of(OAddr a) const;  // faults on unversioned addresses
  [[noreturn]] void fault_unversioned(OAddr a) const;

  // ---- Epoch-based reclamation ----
  struct EpochPin;  // RAII pin defined in the .cpp
  std::uint64_t min_active_epoch() const;

  // ---- Block pool (writer_mu held) ----
  std::uint32_t alloc_block(Shard& sh) OSIM_REQUIRES(sh.writer_mu);
  void maybe_reclaim(Shard& sh) OSIM_REQUIRES(sh.writer_mu);

  // ---- Reads ----
  struct ReadOutcome {
    bool ok = false;        ///< unlocked candidate found
    std::uint32_t seq = 0;  ///< slot sequence observed when !ok
    Ver got = 0;
    std::uint64_t data = 0;
  };
  /// One consistent optimistic walk (seqlock read + epoch pin).
  ReadOutcome try_read(Shard& sh, CSlot& sl, bool exact, Ver key);
  /// Pessimistic walk under the shard writer lock; used when a tracer is
  /// attached so read events interleave linearizably with store events.
  ReadOutcome read_serialized(Shard& sh, CSlot& sl, bool exact, Ver key,
                              OpCode op, OAddr a);
  /// Shared LOAD-VERSION / LOAD-LATEST driver.
  std::uint64_t load_common(OAddr a, bool exact, Ver key, Ver* found,
                            OpCode op);
  /// Shared LOCK-LOAD driver (lock taken under the shard writer lock).
  std::uint64_t lock_load_common(OAddr a, bool exact, Ver key, TaskId locker,
                                 Ver* found, OpCode op);

  // ---- Blocking ----
  /// Wait until `sl`'s sequence moves past `seq_seen`; spin first, then
  /// park. Throws OFault(kWouldBlock) after the deadlock timeout or when
  /// request_stop() fires.
  void wait_change(Shard& sh, CSlot& sl, std::uint32_t seq_seen, OpCode op,
                   OAddr a, Ver v);
  void wake(Shard& sh);

  // ---- Serialized store/unlock internals (writer_mu held) ----
  void store_locked(Shard& sh, CSlot& sl, std::uint64_t slot, Ver v,
                    std::uint64_t data) OSIM_REQUIRES(sh.writer_mu);
  std::uint32_t trace_id(Shard& sh, std::uint32_t b)
      OSIM_REQUIRES(sh.writer_mu);

  // ---- Schedule-hook plumbing (model checking) ----
  /// Shard writer lock that routes through the schedule hook: modeled
  /// acquisition first (the hook grants the mutex), then the real —
  /// guaranteed uncontended — lock. Hookless builds reduce to a null check
  /// around std::mutex::lock.
  class OSIM_SCOPED_CAPABILITY ShardLock {
   public:
    ShardLock(ConcurrentVersionStore& s, Shard& sh) OSIM_ACQUIRE(sh.writer_mu);
    ~ShardLock() OSIM_RELEASE();

    ShardLock(const ShardLock&) = delete;
    ShardLock& operator=(const ShardLock&) = delete;

   private:
    ConcurrentVersionStore& s_;
    Shard& sh_;
  };
  friend class ShardLock;

  /// Bookkeeping/decision announcement; single branch with no hook.
  void sched_point(SchedKind k, std::uint64_t obj) {
    if (hook_ != nullptr) hook_->point({k, obj});
  }

  // ---- Tracing (trace_mu_ held inside) ----
  bool tracing() const { return tracer_ != nullptr; }
  void emit(telemetry::EventType type, OpCode op, OAddr addr, Ver version,
            std::uint64_t arg);

  ConcurrencyConfig cfg_;
  std::uint64_t shard_mask_ = 0;
  std::unique_ptr<Shard[]> shards_;
  int nshards_ = 0;

  // Slot table.
  std::array<std::atomic<CSlot*>, kMaxSlotChunks> slot_chunk_{};
  std::atomic<std::uint64_t> slot_count_{0};
  std::mutex alloc_mu_;
  std::map<std::uint64_t, std::vector<std::uint64_t>> slot_free_;

  // Thread registry.
  std::unique_ptr<ThreadCtx[]> ctxs_;
  std::atomic<int> nctx_{0};
  const std::uint64_t serial_;  ///< distinguishes stores in thread-local maps

  // Reclamation epoch.
  std::atomic<std::uint64_t> global_epoch_{1};

  // Task tracker (GC fence). task_begin/end are rare next to ISA ops, so a
  // small mutex-protected map with a lock-free mirror of the floor is fine.
  Mutex task_mu_;
  /// created/begun, not yet ended
  std::map<TaskId, int> unfinished_ OSIM_GUARDED_BY(task_mu_);
  TaskId max_task_ OSIM_GUARDED_BY(task_mu_) = kNoTask;
  std::atomic<TaskId> task_floor_{0};  ///< all tasks < floor have finished
  /// Mirror of the serial GC floor: once blocks shadowed by version f are
  /// reclaimed, creating a task with id <= f-1 faults (it could legally
  /// name a reclaimed version).
  std::atomic<TaskId> gc_floor_{0};

  std::atomic<bool> stop_{false};

  telemetry::Tracer* tracer_ = nullptr;
  /// Backing storage for the facade's tracer() accessor; unused (and
  /// cost-free) until that accessor attaches it.
  telemetry::Tracer owned_tracer_;
  std::mutex trace_mu_;
  std::uint64_t trace_clock_ = 0;  // trace_mu_
  std::atomic<std::uint32_t> next_trace_block_{0};

  /// Model-checking seam; null in production (see attach_schedule_hook).
  ScheduleHook* hook_ = nullptr;

  /// Fault-injection seam (core/fault_injection.hpp), built from
  /// cfg_.inject_spec in the constructor; detached (the common case) makes
  /// every site one null-check.
  FaultShim inj_;
};

}  // namespace osim
