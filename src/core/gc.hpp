// Hardware garbage collector for version blocks (paper Sec. III-B).
//
// Protocol:
//   * When a store shadows a version, the shadowed block is registered on
//     the *shadowed* list together with the id of the version that shadows
//     it (its "shadower").
//   * A collection phase moves the shadowed list to the *pending* list and
//     records a fence: the youngest shadower in the batch. (The paper words
//     this as "the youngest active task is recorded" — the two coincide
//     when stores come from active tasks, but fencing on the shadowers
//     stays sound even when tasks are created long before they begin, as
//     with a static task scheduler.)
//   * A pending block can only be read by tasks older than its shadower, so
//     once the oldest *unfinished* task (created or begun, GC rules 1-3) is
//     younger than the fence, every pending block is unreachable and moves
//     to the free list.
// Phases are started by the manager when the free list drops below the
// watermark; the collector itself runs in background hardware, so no cycles
// are charged here (the manager charges a small trigger latency).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "core/version_block.hpp"
#include "core/types.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace osim {

class GarbageCollector {
 public:
  /// `reclaim` unlinks the block from its version list, scrubs compressed-
  /// line entries, and returns it to the pool's free list.
  using ReclaimFn = std::function<void(BlockIndex)>;
  /// Phase/lifecycle notification (the collector has no machine reference;
  /// the owner timestamps, maps slots to addresses, and forwards to its
  /// trace sinks). Receives kGcPhaseBegin with the fence version in `arg`,
  /// kGcPhaseEnd with the number of blocks reclaimed in `arg`, and one
  /// kBlockPending per block entering a phase with the block's owning slot,
  /// its version, and the block index.
  using PhaseEventFn = std::function<void(
      telemetry::EventType, std::uint64_t /*slot*/, Ver, std::uint64_t /*arg*/)>;

  /// Registers the gc/* metrics in `reg` (which must outlive this object).
  GarbageCollector(BlockPool& pool, telemetry::MetricRegistry& reg,
                   ReclaimFn reclaim, PhaseEventFn on_phase = {})
      : pool_(pool),
        shadowed_blocks_(
            reg.counter(telemetry::Component::kGc, "shadowed_blocks")),
        phases_(reg.counter(telemetry::Component::kGc, "phases")),
        pending_blocks_(
            reg.gauge(telemetry::Component::kGc, "pending_blocks")),
        pending_batch_(reg.histogram(telemetry::Component::kGc,
                                     "pending_batch_blocks",
                                     {1, 4, 16, 64, 256, 1024, 4096, 16384})),
        reclaim_(std::move(reclaim)),
        on_phase_(std::move(on_phase)) {}

  /// Task creation (rule #3 check point): the new task must be no older
  /// than the oldest unfinished task and above the floor left by finalized
  /// phases. Throws OFault(kTaskOrderViolation) otherwise.
  void task_created(TaskId t);
  /// TASK-BEGIN. Implicitly creates the task if the runtime did not
  /// announce it (single-level runtimes call begin directly).
  void task_begin(TaskId t);
  /// TASK-END. May finalize the active phase. Throws on unknown task.
  void task_end(TaskId t);

  /// Register a block that became shadowed by version `shadower`.
  void on_shadowed(BlockIndex b, Ver shadower);

  /// Start a collection phase if none is active and shadowed work exists.
  /// Returns true if a phase actually started (the manager charges trigger
  /// latency for that case).
  bool start_phase();

  bool phase_active() const { return phase_active_; }
  std::size_t shadowed_size() const { return shadowed_.size(); }
  std::size_t pending_size() const { return pending_.size(); }
  std::size_t unfinished_tasks() const { return known_.size(); }
  TaskId floor() const { return floor_; }

 private:
  struct Shadowed {
    BlockIndex block;
    std::uint32_t generation;
    Ver shadower;
  };

  void try_finalize();
  void finalize();

  BlockPool& pool_;
  telemetry::Counter shadowed_blocks_;
  telemetry::Counter phases_;
  telemetry::Gauge pending_blocks_;
  telemetry::Histogram pending_batch_;
  ReclaimFn reclaim_;
  PhaseEventFn on_phase_;

  std::map<TaskId, int> known_;  // unfinished tasks: id -> create count
  std::map<TaskId, bool> begun_;  // subset of known_ that has begun
  std::vector<Shadowed> shadowed_;
  std::vector<Shadowed> pending_;
  bool phase_active_ = false;
  Ver fence_ = 0;
  TaskId floor_ = 0;  // max fence of any finalized phase
};

}  // namespace osim
