// O-structure subsystem parameters (paper Sec. III). Lives in core/ so the
// semantic engine (core/version_store.hpp) can be configured without pulling
// in the simulator; sim/config.hpp embeds it into MachineConfig.
#pragma once

#include <cstddef>
#include <string>

#include "core/types.hpp"

namespace osim {

/// Which reclamation policy drives the shadowed -> free block lifecycle
/// (core/gc_policy.hpp). `kPaper` is the paper's watermark-driven phase
/// collector (Sec. III-B); `kBounded` is the range-tracking policy that
/// keeps the count of unreclaimed shadowed blocks bounded by the number of
/// versions an unfinished task can still reach plus a constant batch.
enum class GcPolicyKind : std::uint8_t { kPaper, kBounded };

inline const char* to_string(GcPolicyKind k) {
  return k == GcPolicyKind::kBounded ? "bounded" : "paper";
}

struct OStructConfig {
  /// Initial number of version blocks carved into the free list.
  std::size_t initial_pool_blocks = 1 << 20;
  /// Blocks added per OS trap when the free list is exhausted (paper: the
  /// runtime "simply allocates more memory, carves it up into version
  /// blocks, and adds them to the free-list").
  std::size_t trap_grow_blocks = 1 << 16;
  /// GC phase auto-trigger: start a collection when free blocks drop below
  /// this watermark (paper Sec. III-B "Operation").
  std::size_t gc_watermark = 1 << 12;
  /// Reclamation policy (see GcPolicyKind). The paper scheme is the
  /// architected default; every timed figure pins it.
  GcPolicyKind gc_policy = GcPolicyKind::kPaper;
  /// BoundedSpacePolicy amortization: a sweep runs once the tracked set
  /// outgrows the previous sweep's survivors by this many blocks, so the
  /// policy holds at most (survivors + batch) unreclaimed shadowed blocks
  /// while keeping the per-shadow bookkeeping O(1) amortized.
  std::size_t gc_bounded_batch = 64;
  /// Fixed latency injected into every versioned operation, on top of the
  /// modelled cache latencies. 0 in the baseline; swept 2..10 for Fig. 10.
  Cycles injected_latency = 0;
  /// Cost charged to the core whose allocation triggers a GC phase
  /// transition (the collector itself runs in background hardware).
  Cycles gc_trigger_latency = 10;
  /// Cycles to deliver a wakeup to a core stalled on a versioned access.
  Cycles wake_latency = 8;
  /// Cost of the OS trap taken when the free list is exhausted (the runtime
  /// allocates memory, carves version blocks, fixes the page table).
  Cycles os_trap_latency = 2000;
  /// Whether the version block list is kept sorted (paper Sec. IV-F compares
  /// against a no-sorting configuration; sorted is the architected default).
  bool sorted_lists = true;

  // ---- Ablation / future-work switches -------------------------------

  /// Compressed version blocks in L1 (paper Sec. III-A). Disabling forces
  /// every versioned access down the full-lookup path.
  bool enable_compression = true;
  /// Cache-pollution avoidance: blocks passed over during a version-list
  /// walk are not installed in L1 (paper Sec. III-A). Disabling installs
  /// every walked block.
  bool pollution_avoidance = true;
  /// Future work evaluated (paper Sec. III-A: "sophisticated approaches
  /// that modify compressed version blocks in situ"): instead of discarding
  /// remote compressed lines on a mutation, patch them in place through the
  /// extended coherence message.
  bool inplace_comp_update = false;

  /// Keep the last N versioned operations in an architectural trace ring
  /// (telemetry::RingSink, masked to ISA-op events). 0 disables the ring.
  std::size_t trace_capacity = 0;
  /// Stream the full version-lifecycle event trace to this binary file
  /// (telemetry::FileSink; read back with tools/osim-report or
  /// telemetry::read_trace_file). Empty disables the file sink.
  std::string trace_path;
  /// Online protocol checking (src/analysis): 0 = off, 1 = on, 2 = strict
  /// (advisory findings become errors). When on, the runtime Env attaches
  /// an analysis::CheckerSink to the manager's tracer; checking charges no
  /// simulated cycles, so results stay bit-identical.
  int check_mode = 0;

  /// Deterministic fault injection (core/fault_injection.hpp): the
  /// --inject spec string, e.g. "pool:0.02,deadlock@5,seed=7". Empty
  /// leaves the engine's injector detached (zero cost, zero effect).
  std::string inject_spec;
  /// Keep the per-task undo journal that abort_task(tid) replays. Off by
  /// default: the journal costs a few words per store/lock on the hot
  /// path, and only runtimes that can retry tasks want rollback.
  bool track_aborts = false;
};

}  // namespace osim
