// VersionEngine: the backend-agnostic facade over the two semantic engines.
//
// The versioned-ISA semantics of the paper live in two implementations with
// deliberately different synchronization cores: the serial VersionStore
// (core/version_store.hpp — single-threaded by contract, drives both the
// cycle-accurate machine and the functional backend through a pluggable
// TimingModel) and the ConcurrentVersionStore (core/concurrent_store.hpp —
// lock-striped shards, per-slot seqlocks, epoch reclamation, for real host
// threads). Everything *around* that core — the ISA surface, task
// lifecycle, abort accounting, fault injection, trace emission, protocol
// checking — is shared semantics, and this interface is where consumers
// (bench driver, chaos harness, differential tests, the future KV front
// end) bind to it without knowing which engine they drive.
//
// Two call styles:
//   * per-op virtuals — the classic ISA surface, one virtual call per op;
//   * execute(batch) — a batched driver over the same virtuals taking the
//     opstream record the workload generators already emit (analysis::VOp
//     is an alias of VersionEngine::Op). Faults are captured per op into
//     Results and execution continues, which is exactly what the
//     differential tests and retrying drivers want; the KV front end's
//     get/put/snapshot-read/CAS map 1:1 onto these batches.
//
// Layering (enforced by tools/run-lint.sh): core/ depends on telemetry/
// and itself only — never on runtime/, sim/, bench/, or analysis/. The
// facade therefore defines the op record; the analysis layer aliases it.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/fault.hpp"
#include "core/isa.hpp"
#include "core/types.hpp"
#include "telemetry/trace.hpp"

namespace osim {

class FaultInjector;

/// User-visible address of an O-structure slot (8-byte granularity inside
/// the versioned region). Defined here, at the facade, so both engines and
/// every consumer share one alias.
using OAddr = Addr;

/// Facade-level abort accounting, identical fields for both engines (the
/// serial/concurrent drift in what each one counted is fixed here): bench
/// JSON and osim-report read these regardless of backend. Kept as plain
/// fields — not MetricRegistry counters — so attaching them costs nothing
/// and the timed backend's metric dump stays bit-identical.
struct EngineStats {
  std::uint64_t tasks_aborted = 0;   ///< abort_task() rollbacks performed
  std::uint64_t aborted_blocks = 0;  ///< created versions undone by rollbacks
  std::uint64_t aborted_locks = 0;   ///< held locks released by rollbacks
};

/// Degradation telemetry of a retrying runtime (the concurrent task pool,
/// the serial chaos round driver): one vocabulary, one JSON spelling, for
/// every engine. Aggregated outside the engine because retries/backoff are
/// runtime policy, not ISA semantics; tasks_aborted above is the engine's
/// own ground truth the runtime's `aborts` must agree with.
struct RecoveryStats {
  std::uint64_t aborts = 0;      ///< abort_task() rollbacks performed
  std::uint64_t retries = 0;     ///< task re-runs after an abort
  std::uint64_t giveups = 0;     ///< recoverable faults past the retry cap
  std::uint64_t backoff_us = 0;  ///< total backoff sleep, microseconds
};

class VersionEngine {
 public:
  /// One abstract versioned op — the batched-execution record and the
  /// opstream record the workload generators emit (analysis::VOp aliases
  /// this type). `version` is the exact version stored, loaded, or locked
  /// (the task id for TASK-BEGIN/END); `cap` is the bound of the *-LATEST
  /// forms; `rename_to` is UNLOCK-VERSION's optional new version; `data`
  /// is STORE-VERSION's payload (ignored by the static checker).
  struct Op {
    OpCode op{};
    Addr addr = 0;
    Ver version = 0;
    Ver cap = 0;
    TaskId task = 0;
    std::optional<Ver> rename_to;
    std::uint64_t data = 0;
  };

  /// Observable outcome of an executed batch. Two batches are equivalent
  /// iff their Results compare equal field-for-field (messages excepted:
  /// the engines word their would-block reports differently, so equality
  /// compares fault positions and kinds only).
  struct Results {
    struct Fault {
      std::size_t index = 0;  ///< batch index of the faulted op
      FaultKind kind{};
      std::string message;  ///< engine wording; excluded from operator==

      friend bool operator==(const Fault& a, const Fault& b) {
        return a.index == b.index && a.kind == b.kind;
      }
    };

    std::vector<std::uint64_t> reads;  ///< one value per completed load
    std::vector<Ver> found;            ///< version observed per *-LATEST
    std::vector<Fault> faults;         ///< per-op faults, batch order
    std::uint64_t executed = 0;        ///< ops completed without fault

    void clear() {
      reads.clear();
      found.clear();
      faults.clear();
      executed = 0;
    }

    /// Order-sensitive fold of every observable (for cross-engine and
    /// per-op-vs-batched checksum comparisons).
    std::uint64_t checksum() const;

    friend bool operator==(const Results& a, const Results& b) {
      return a.reads == b.reads && a.found == b.found &&
             a.faults == b.faults && a.executed == b.executed;
    }
  };

  virtual ~VersionEngine() = default;

  // ---- O-structure allocation (the OS/runtime interface) ----
  virtual OAddr alloc(std::size_t slots) = 0;
  virtual void release(OAddr base, std::size_t slots) = 0;

  // ---- The versioned ISA ----
  // (Default arguments repeat on the engines' overrides — same values, so
  // the statically bound defaults agree no matter the static type.)
  virtual std::uint64_t load_version(OAddr a, Ver v) = 0;
  virtual std::uint64_t load_latest(OAddr a, Ver cap, Ver* found = nullptr) = 0;
  virtual void store_version(OAddr a, Ver v, std::uint64_t data) = 0;
  virtual std::uint64_t lock_load_version(OAddr a, Ver v, TaskId locker) = 0;
  virtual std::uint64_t lock_load_latest(OAddr a, Ver cap, TaskId locker,
                                         Ver* found = nullptr) = 0;
  virtual void unlock_version(OAddr a, Ver locked_v, TaskId owner,
                              std::optional<Ver> rename_to = {}) = 0;

  // ---- Task lifecycle (GC rules #1-#3) ----
  virtual void task_created(TaskId t) = 0;
  virtual void task_begin(TaskId t) = 0;
  virtual void task_end(TaskId t) = 0;
  /// Roll back task `t`'s stores and locks, newest first (see
  /// core/undo_journal.hpp for the shared invariant). Requires the
  /// engine's track_aborts config.
  virtual void abort_task(TaskId t) = 0;

  // ---- Protection ----
  virtual bool is_versioned_addr(Addr a) const = 0;
  virtual void check_conventional(Addr a) const = 0;

  // ---- Host-side inspection (no timing; tests and tools) ----
  virtual std::optional<std::uint64_t> peek_version(OAddr a, Ver v) = 0;
  virtual std::optional<Ver> newest_version(OAddr a) = 0;
  virtual std::optional<TaskId> lock_holder(OAddr a, Ver v) = 0;
  virtual int version_count(OAddr a) = 0;

  // ---- Shared seams ----
  /// Abort accounting, same fields either engine (see EngineStats).
  virtual EngineStats engine_stats() const = 0;
  /// The engine's event-trace dispatcher. Attaching a sink is how the
  /// protocol checker rides any engine (analysis::attach_checker); on the
  /// concurrent engine the first call switches it into linearized-trace
  /// mode (reads serialized), so call it only when events are wanted, and
  /// before any ISA op runs.
  virtual telemetry::Tracer& tracer() = 0;
  /// Fault-injection seam: the attached injector, or null when detached.
  virtual FaultInjector* fault_injector() = 0;
  /// Attach an externally owned injector (tests/tools); replaces any
  /// config-built one at every engine site. Call before ISA ops run.
  virtual void attach_fault_injector(FaultInjector* inj) = 0;

  // ---- Batched op execution ----
  /// Execute `batch` in order through the per-op surface. An OFault fails
  /// only the op that raised it — it is recorded in `out.faults` and
  /// execution continues with the next op, matching the per-op call sites
  /// that catch-and-continue today. Results are appended (call
  /// out.clear() for a fresh batch). Non-virtual: the loop *is* the
  /// facade contract, identical over every engine.
  void execute(std::span<const Op> batch, Results& out);
};

}  // namespace osim
