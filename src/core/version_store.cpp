#include "core/version_store.hpp"

#include <cassert>
#include <memory>
#include <string>

#include "core/fault.hpp"

namespace osim {

VersionStore::VersionStore(const OStructConfig& cfg, int num_cores,
                           telemetry::MetricRegistry& reg,
                           TimingModel& timing)
    : cfg_(cfg),
      t_(timing),
      fp_(timing.fast_path()),
      pool_(cfg_.initial_pool_blocks),
      // Constructed at this position so the policy's gc/* metrics land at
      // the same registry index as the historical collector's (dump order
      // is part of the bit-identical contract). Only the GcOwner reference
      // escapes here; no virtual call runs during construction.
      gc_(make_gc_policy(cfg_, pool_, reg, *this)),
      cur_task_(static_cast<std::size_t>(num_cores), kNoTask),
      core_counters_(static_cast<std::size_t>(num_cores)),
      blocks_allocated_(
          reg.counter(telemetry::Component::kOsm, "blocks_allocated")),
      blocks_freed_(reg.counter(telemetry::Component::kOsm, "blocks_freed")),
      os_traps_(reg.counter(telemetry::Component::kOsm, "os_traps")),
      compressed_installs_(
          reg.counter(telemetry::Component::kOsm, "compressed_installs")),
      compressed_discards_(
          reg.counter(telemetry::Component::kOsm, "compressed_discards")),
      compress_overflows_(
          reg.counter(telemetry::Component::kOsm, "compress_overflows")),
      walk_length_(reg.histogram(telemetry::Component::kOsm, "walk_length",
                                 {1, 2, 4, 8, 16, 32, 64})),
      version_lifetime_(reg.histogram(
          telemetry::Component::kOsm, "version_lifetime_cycles",
          {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576})),
      reclaim_lag_(reg.histogram(
          telemetry::Component::kGc, "reclaim_lag_cycles",
          {64, 256, 1024, 4096, 16384, 65536, 262144, 1048576})),
      ring_(cfg_.trace_capacity,
            telemetry::event_bit(telemetry::EventType::kIsaOp)) {
  static_assert(sizeof(PerCoreCounters) == 8 * sizeof(std::uint64_t),
                "stride below assumes a dense all-uint64 struct");
  constexpr std::size_t kStride =
      sizeof(PerCoreCounters) / sizeof(std::uint64_t);
  const PerCoreCounters* base = core_counters_.data();
  reg.counter_vec_external(telemetry::Component::kOsm, "versioned_ops",
                           &base->versioned_ops, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "root_loads",
                           &base->root_loads, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "root_stalls",
                           &base->root_stalls, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "direct_hits",
                           &base->direct_hits, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "full_lookups",
                           &base->full_lookups, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "walk_blocks",
                           &base->walk_blocks, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "stalls",
                           &base->stalls, kStride);
  reg.counter_vec_external(telemetry::Component::kOsm, "tasks_executed",
                           &base->tasks_executed, kStride);
  if (ring_.enabled()) tracer_.attach(&ring_);
  inj_.build_from_spec(cfg_.inject_spec);
  if (!cfg_.trace_path.empty()) {
    auto sink = std::make_unique<telemetry::FileSink>(cfg_.trace_path);
    file_sink_ = sink.get();
    file_sink_->set_fault_hook(inj_.get());
    tracer_.add_sink(std::move(sink));
  }
}

// ---------------------------------------------------------------------------
// Allocation

OAddr VersionStore::alloc(std::size_t slots) {
  if (slots == 0) throw OFault(FaultKind::kInvalidAddress, "zero-slot alloc");
  if (inj_.fire(FaultSite::kSlotTable)) {
    throw OFault(FaultKind::kResourceExhausted,
                 "slot-table allocation of " + std::to_string(slots) +
                     " slots refused (injected)");
  }
  auto& freed = slot_free_[static_cast<std::uint64_t>(slots)];
  std::uint64_t base;
  if (!freed.empty()) {
    base = freed.back();
    freed.pop_back();
  } else {
    base = slots_.size();
    slots_.resize(slots_.size() + slots);
  }
  for (std::uint64_t s = base; s < base + slots; ++s) {
    SlotMeta& sm = slots_[s];
    assert(!sm.allocated && sm.root == kNullBlock);
    sm.allocated = true;
  }
  return ostruct_addr(base);
}

void VersionStore::release(OAddr base, std::size_t slots) {
  const std::uint64_t first = slot_of(base);
  for (std::uint64_t s = first; s < first + slots; ++s) {
    SlotMeta& sm = slots_[s];
    // Discard every version of the slot.
    BlockIndex b = sm.root;
    while (b != kNullBlock) {
      const BlockIndex next = pool_[b].next;
      emit_event(telemetry::EventType::kBlockFreed, ostruct_addr(s),
                 pool_[b].version, b);
      pool_.free(b);
      blocks_freed_.inc();
      b = next;
    }
    sm.root = kNullBlock;
    sm.allocated = false;
    sm.order_broken = false;
    sm.nversions = 0;
    if (charges()) {
      t_.slot_released(s);
      // Anyone still parked here violated the release precondition; wake
      // them so they fault with a clear diagnostic instead of deadlocking.
      t_.wake_slot(s);
    }
  }
  slot_free_[static_cast<std::uint64_t>(slots)].push_back(first);
}

void VersionStore::fault_unversioned(OAddr a) const {
  if (a < kOStructBase || (a - kOStructBase) % 8 != 0) {
    throw OFault(FaultKind::kVersionedAccessToUnversionedPage,
                 "address " + std::to_string(a) +
                     " is outside the versioned region");
  }
  throw OFault(FaultKind::kVersionedAccessToUnversionedPage,
               "slot " + std::to_string((a - kOStructBase) / 8) +
                   " is not allocated");
}

void VersionStore::fault_conventional(Addr a) const {
  throw OFault(FaultKind::kConventionalAccessToVersionedPage,
               "slot " + std::to_string((a - kOStructBase) / 8));
}

// ---------------------------------------------------------------------------
// Operation framing

void VersionStore::emit_event_slow(telemetry::EventType type, OAddr addr,
                                   Ver version, std::uint64_t arg) {
  // Host-context emissions (release() from teardown code) carry time 0.
  const bool in_op = t_.in_op_context();
  tracer_.emit(make_trace_event(in_op ? t_.now() : 0, in_op ? t_.core() : 0,
                                type, OpCode{}, addr, version, arg));
}

void VersionStore::stall(const OpFlags& f, std::uint64_t slot, int attempt,
                         OpCode op, OAddr a, Ver v) {
  if (attempt == 0) {
    PerCoreCounters& pc =
        core_counters_[static_cast<std::size_t>(cur_core())];
    pc.stalls++;
    if (f.root) pc.root_stalls++;
  }
  WaitContext w;
  w.slot = slot;
  w.op = op;
  w.addr = a;
  w.version = v;
  w.task = cur_task_[static_cast<std::size_t>(cur_core())];
  // Injection: the park times out immediately, as if the deadlock monitor
  // fired. Faults the requesting op with full context, never the run.
  if (inj_.fire(FaultSite::kDeadlock)) {
    throw OFault(FaultKind::kWouldBlock,
                 std::string("injected deadlock timeout: ") + to_string(op) +
                     " of version " + std::to_string(v) + " at address " +
                     std::to_string(a) + " by task " + std::to_string(w.task));
  }
  t_.wait_on_slot(w);
}

// ---------------------------------------------------------------------------
// Block allocation and GC plumbing

BlockIndex VersionStore::alloc_block() {
  // Injection: the pool behaves as capped and the OS refuses to grow it.
  // The op simply never happened — no state moved yet — so the engine
  // stays consistent and the runtime can back off and retry.
  if (inj_.fire(FaultSite::kBlockPool)) {
    throw OFault(FaultKind::kResourceExhausted,
                 "version-block pool exhausted and OS grow refused "
                 "(injected), free " +
                     std::to_string(pool_.free_count()));
  }
  // Pop from this core's bank of the hardware free list (one exclusive
  // access to the bank head; banks are per-core, paper Fig. 2).
  if (charges()) t_.free_list_access();
  BlockIndex b = pool_.alloc();
  if (b == kNullBlock) {
    // Free list exhausted: give the GC a chance, then trap to the OS. An
    // injected gc-delay suppresses the sweep (it runs at a later trigger).
    const bool delayed =
        inj_.fire(FaultSite::kGcDelay);
    if (!delayed && gc_->maybe_collect() && charges()) t_.gc_triggered();
    b = pool_.alloc();
    if (b == kNullBlock) {
      pool_.grow(cfg_.trap_grow_blocks);
      os_traps_.inc();
      emit_event(telemetry::EventType::kOsTrap, 0, 0, cfg_.trap_grow_blocks);
      if (charges()) t_.os_trapped();
      b = pool_.alloc();
      assert(b != kNullBlock);
    }
  }
  blocks_allocated_.inc();
  if (charges()) t_.block_allocated(b);
  emit_event(telemetry::EventType::kBlockAlloc, 0, 0, b);
  if (pool_.free_count() < cfg_.gc_watermark) {
    const bool delayed =
        inj_.fire(FaultSite::kGcDelay);
    if (!delayed && gc_->maybe_collect() && charges()) t_.gc_triggered();
  }
  return b;
}

void VersionStore::reclaim(BlockIndex b) {
  const std::uint64_t slot = pool_[b].slot;
  const Ver version = pool_[b].version;
  SlotMeta& sm = slots_[slot];
  sm.nversions--;
  list_unlink(pool_, &sm.root, b);
  if (charges()) t_.block_reclaimed(b, slot, version);
  emit_event(telemetry::EventType::kBlockFreed, ostruct_addr(slot), version,
             b);
  pool_.free(b);
  blocks_freed_.inc();
}

// ---------------------------------------------------------------------------
// The versioned ISA

std::uint64_t VersionStore::load_version(OAddr a, Ver v, OpFlags f) {
  for (int attempt = 0;; ++attempt) {
    begin_attempt(f, attempt, OpCode::kLoadVersion, a, v);
    const std::uint64_t slot = slot_of(a);
    SlotMeta& sm = slots_[slot];
    const FindResult fr =
        find_exact(pool_, sm.root, v, effective_sorted(sm));
    if (fr.found() && pool_[fr.block].locked_by == kNoTask) {
      const std::uint64_t data = pool_[fr.block].data;
      // Semantic point: the version is resolved here, before the charged
      // lookup can yield to other cores, so cross-core event order matches
      // the authoritative serialization.
      if (tracer_.enabled()) {
        tracer_.emit(make_trace_event(t_.now(), t_.core(),
                                      telemetry::EventType::kVersionRead,
                                      OpCode::kLoadVersion, a, v, v));
      }
      if (charges()) {
        t_.lookup_done(slot, fr, /*exact=*/true, v, /*exclusive=*/false,
                       std::nullopt);
      }
      return data;
    }
    stall(f, slot, attempt, OpCode::kLoadVersion, a, v);
  }
}

std::uint64_t VersionStore::load_latest(OAddr a, Ver cap, Ver* found,
                                        OpFlags f) {
  for (int attempt = 0;; ++attempt) {
    begin_attempt(f, attempt, OpCode::kLoadLatest, a, cap);
    const std::uint64_t slot = slot_of(a);
    SlotMeta& sm = slots_[slot];
    const FindResult fr =
        find_latest(pool_, sm.root, cap, effective_sorted(sm));
    if (fr.found() && pool_[fr.block].locked_by == kNoTask) {
      const std::uint64_t data = pool_[fr.block].data;
      const Ver got = pool_[fr.block].version;
      if (tracer_.enabled()) {
        tracer_.emit(make_trace_event(t_.now(), t_.core(),
                                      telemetry::EventType::kVersionRead,
                                      OpCode::kLoadLatest, a, got, cap));
      }
      if (charges()) {
        t_.lookup_done(slot, fr, /*exact=*/false, cap, /*exclusive=*/false,
                       std::nullopt);
      }
      if (found != nullptr) *found = got;
      return data;
    }
    stall(f, slot, attempt, OpCode::kLoadLatest, a, cap);
  }
}

std::uint64_t VersionStore::lock_load_version(OAddr a, Ver v, TaskId locker,
                                              OpFlags f) {
  for (int attempt = 0;; ++attempt) {
    begin_attempt(f, attempt, OpCode::kLockLoadVersion, a, v);
    const std::uint64_t slot = slot_of(a);
    SlotMeta& sm = slots_[slot];
    const FindResult fr =
        find_exact(pool_, sm.root, v, effective_sorted(sm));
    if (fr.found() && pool_[fr.block].locked_by == kNoTask) {
      VersionBlock& vb = pool_[fr.block];
      vb.locked_by = locker;  // semantic effect, atomic at this timestamp
      journal({UndoEntry::Kind::kLock, slot, v});
      const std::uint64_t data = vb.data;
      // Emit at the semantic point: the charged lookup below yields, and a
      // competing core's release/acquire must not appear out of order in
      // the event stream.
      if (tracer_.enabled()) {
        tracer_.emit(make_trace_event(t_.now(), t_.core(),
                                      telemetry::EventType::kVersionRead,
                                      OpCode::kLockLoadVersion, a, v, v));
      }
      emit_event(telemetry::EventType::kLockAcquire, a, v, locker);
      // Locking needs exclusive access to the block's line (paper Sec.
      // III-A "Locking a version"): the lookup's final transaction is a
      // read-for-ownership, and compressed copies elsewhere are discarded.
      if (charges()) {
        t_.lookup_done(slot, fr, /*exact=*/true, v, /*exclusive=*/true,
                       kNoTask);
        t_.lock_applied(slot, v, locker);
      }
      return data;
    }
    stall(f, slot, attempt, OpCode::kLockLoadVersion, a, v);
  }
}

std::uint64_t VersionStore::lock_load_latest(OAddr a, Ver cap, TaskId locker,
                                             Ver* found, OpFlags f) {
  for (int attempt = 0;; ++attempt) {
    begin_attempt(f, attempt, OpCode::kLockLoadLatest, a, cap);
    const std::uint64_t slot = slot_of(a);
    SlotMeta& sm = slots_[slot];
    const FindResult fr =
        find_latest(pool_, sm.root, cap, effective_sorted(sm));
    if (fr.found() && pool_[fr.block].locked_by == kNoTask) {
      VersionBlock& vb = pool_[fr.block];
      vb.locked_by = locker;
      const std::uint64_t data = vb.data;
      const Ver got = vb.version;
      journal({UndoEntry::Kind::kLock, slot, got});
      if (tracer_.enabled()) {
        tracer_.emit(make_trace_event(t_.now(), t_.core(),
                                      telemetry::EventType::kVersionRead,
                                      OpCode::kLockLoadLatest, a, got, cap));
      }
      emit_event(telemetry::EventType::kLockAcquire, a, got, locker);
      if (charges()) {
        t_.lookup_done(slot, fr, /*exact=*/false, cap, /*exclusive=*/true,
                       kNoTask);
        t_.lock_applied(slot, got, locker);
      }
      if (found != nullptr) *found = got;
      return data;
    }
    stall(f, slot, attempt, OpCode::kLockLoadLatest, a, cap);
  }
}

void VersionStore::store_impl(std::uint64_t slot, Ver v, std::uint64_t data) {
  // alloc_block() charges memory accesses and may yield to other cores,
  // which can allocate slots and reallocate slots_: SlotMeta references
  // must only be taken afterwards.
  const BlockIndex nb = alloc_block();
  VersionBlock& vb = pool_[nb];
  vb.version = v;
  vb.data = data;
  vb.slot = slot;

  SlotMeta& sm = slots_[slot];
  InsertResult ir;
  try {
    ir = list_insert(pool_, &sm.root, nb, cfg_.sorted_lists);
    if (!ir.order_kept) sm.order_broken = true;
  } catch (const OFault&) {
    // Duplicate version: return the block before faulting. addr 0 marks a
    // bare recycle — no version was ever installed on it.
    emit_event(telemetry::EventType::kBlockFreed, 0, 0, nb);
    pool_.free(nb);
    blocks_allocated_.dec();
    throw;
  }
  journal({UndoEntry::Kind::kStore, slot, v, nb, pool_[nb].generation,
           ir.shadowed,
           ir.shadowed != kNullBlock ? pool_[ir.shadowed].generation : 0});

  // Snapshot everything the compressed-line update needs before any charged
  // access can yield to other cores.
  CompressedLine::Entry snap;
  snap.version = v;
  snap.data = data;
  snap.is_head = ir.at_head;
  if (cfg_.sorted_lists && ir.pred != kNullBlock) {
    snap.has_newer = true;
    snap.newer_version = pool_[ir.pred].version;
  }

  // Emit at the semantic point — the insert is authoritative here, before
  // the charged walk below can yield to other cores and interleave their
  // events ahead of this store in the stream. The GC shadow *registration*
  // stays at its original place after the charges (moving it would change
  // which phase picks the block up, i.e. simulated timing).
  emit_event(telemetry::EventType::kVersionStore, ostruct_addr(slot), v, nb);
  if (ir.shadowed != kNullBlock) {
    emit_event(telemetry::EventType::kBlockShadowed, ostruct_addr(slot),
               ir.at_head ? v : snap.newer_version, ir.shadowed);
  }

  // Note: `sm` must not be used past this point — slots_ may reallocate
  // while charged accesses yield to other cores; re-fetch via slots_[slot].
  if (charges()) t_.store_charged(slot, ir, nb);

  // GC shadow registration. An insert at the head shadows the old head with
  // the new version; a mid-list insert is itself born shadowed by its
  // immediately-newer neighbour.
  if (ir.shadowed != kNullBlock) {
    const Ver shadower = ir.at_head ? v : snap.newer_version;
    if (charges()) t_.block_shadowed(ir.shadowed);
    gc_->on_shadowed(ir.shadowed, shadower);
  }

  slots_[slot].nversions++;
  if (charges()) {
    t_.store_installed(slot, snap);
    // A new version may satisfy parked LOAD/LOCK attempts.
    t_.wake_slot(slot);
  }
  // The store is fully installed; a bounded-policy amortized sweep may run
  // now (no-op for the paper policy).
  gc_->on_store_complete();
}

void VersionStore::store_version(OAddr a, Ver v, std::uint64_t data,
                                 OpFlags f) {
  begin_attempt(f, 0, OpCode::kStoreVersion, a, v);
  store_impl(slot_of(a), v, data);
}

void VersionStore::unlock_version(OAddr a, Ver locked_v, TaskId owner,
                                  std::optional<Ver> rename_to, OpFlags f) {
  begin_attempt(f, 0, OpCode::kUnlockVersion, a, locked_v);
  const std::uint64_t slot = slot_of(a);
  SlotMeta& sm = slots_[slot];
  const FindResult fr =
      find_exact(pool_, sm.root, locked_v, effective_sorted(sm));
  if (!fr.found()) {
    throw OFault(FaultKind::kNotLockOwner,
                 "unlock of nonexistent version " + std::to_string(locked_v));
  }
  VersionBlock& vb = pool_[fr.block];
  if (vb.locked_by != owner) {
    throw OFault(FaultKind::kNotLockOwner,
                 "version " + std::to_string(locked_v) + " locked by " +
                     std::to_string(vb.locked_by) + ", unlock by " +
                     std::to_string(owner));
  }
  if (rename_to.has_value() &&
      find_exact(pool_, sm.root, *rename_to, effective_sorted(sm)).found()) {
    throw OFault(FaultKind::kRenameTargetExists, std::to_string(*rename_to));
  }

  vb.locked_by = kNoTask;
  const std::uint64_t data = vb.data;
  // Semantic point: the lock is released here; emit before the charged
  // write below yields, or a competing core's re-acquire would appear
  // before this release in the event stream.
  emit_event(telemetry::EventType::kLockRelease, a, locked_v, owner);
  if (charges()) t_.unlock_applied(slot, fr.block, locked_v);

  if (rename_to.has_value()) {
    // Renaming: materialize the same value as a new, unlocked version.
    store_impl(slot, *rename_to, data);
  } else if (charges()) {
    t_.wake_slot(slot);
  }
}

void VersionStore::task_created(TaskId t) {
  gc_->task_created(t);
  emit_event(telemetry::EventType::kTaskCreated, 0, t, 0);
}

void VersionStore::task_begin(TaskId t) {
  tick();
  if (charges()) t_.task_instr();  // the TASK-BEGIN instruction itself
  if (tracer_.enabled()) {
    tracer_.emit(make_trace_event(t_.now(), t_.core(),
                                  telemetry::EventType::kIsaOp,
                                  OpCode::kTaskBegin, 0, t, 0));
  }
  gc_->task_begin(t);
  cur_task_[static_cast<std::size_t>(cur_core())] = t;
}

void VersionStore::task_end(TaskId t) {
  tick();
  if (charges()) t_.task_instr();
  if (tracer_.enabled()) {
    tracer_.emit(make_trace_event(t_.now(), t_.core(),
                                  telemetry::EventType::kIsaOp,
                                  OpCode::kTaskEnd, 0, t, 0));
  }
  gc_->task_end(t);
  if (cfg_.track_aborts) undo_.erase(t);  // committed: nothing to roll back
  cur_task_[static_cast<std::size_t>(cur_core())] = kNoTask;
  core_counters_[static_cast<std::size_t>(cur_core())].tasks_executed++;
}

void VersionStore::abort_task(TaskId t) {
  if (!cfg_.track_aborts) {
    throw OFault(FaultKind::kTaskOrderViolation,
                 "abort_task(" + std::to_string(t) +
                     ") requires OStructConfig::track_aborts");
  }
  std::vector<UndoEntry>* j = undo_.find(t);
  UndoReplayCounts undone;
  if (j != nullptr) {
    // Newest effect first with per-entry revalidation — the shared replay
    // discipline of core/undo_journal.hpp. Nested same-slot stores restore
    // cleanly because the later version is removed before the earlier one
    // becomes head again.
    undone = replay_undo_newest_first(
        *j,
        [&](const UndoEntry& e) {
          if (!slots_[e.slot].allocated) return false;  // released wholesale
          // Remove the created version, if it still is the one we created
          // (the generation moves when a block is freed and reissued).
          VersionBlock& vb = pool_[e.block];
          if (vb.generation != e.generation || vb.slot != e.slot ||
              vb.version != e.version) {
            return false;
          }
          SlotMeta& sm = slots_[e.slot];
          // Whoever locked the aborted version loses it: their later unlock
          // faults kNotLockOwner deterministically (the version is gone).
          vb.locked_by = kNoTask;
          // Purge any shadow registration of the block itself (a mid-list
          // insert is born shadowed) before the free bumps its generation.
          gc_->forget(e.block);
          sm.nversions--;
          list_unlink(pool_, &sm.root, e.block);
          if (charges()) t_.block_reclaimed(e.block, e.slot, e.version);
          emit_event(telemetry::EventType::kBlockFreed, ostruct_addr(e.slot),
                     e.version, e.block);
          pool_.free(e.block);
          blocks_freed_.inc();
          // The block this insert shadowed is live again: drop its GC
          // registration or a later sweep would reclaim the restored head.
          if (e.shadowed != kNullBlock) {
            VersionBlock& sb = pool_[e.shadowed];
            if (sb.generation == e.shadowed_gen &&
                (sb.state == BlockState::kShadowed ||
                 sb.state == BlockState::kPending)) {
              gc_->forget(e.shadowed);
              sb.state = BlockState::kLive;
              emit_event(telemetry::EventType::kBlockRestored,
                         ostruct_addr(e.slot), sb.version, e.shadowed);
            }
          }
          if (charges()) t_.wake_slot(e.slot);
          return true;
        },
        [&](const UndoEntry& e) {
          if (!slots_[e.slot].allocated) return false;  // released wholesale
          SlotMeta& sm = slots_[e.slot];
          const FindResult fr =
              find_exact(pool_, sm.root, e.version, effective_sorted(sm));
          // Skip locks already released (voluntarily, or with the aborted
          // version that carried them) and versions re-locked since.
          if (!fr.found() || pool_[fr.block].locked_by != t) return false;
          pool_[fr.block].locked_by = kNoTask;
          emit_event(telemetry::EventType::kLockRelease, ostruct_addr(e.slot),
                     e.version, t);
          if (charges()) t_.wake_slot(e.slot);
          return true;
        });
    undo_.erase(t);
  }
  for (TaskId& ct : cur_task_) {
    if (ct == t) ct = kNoTask;
  }
  emit_event(telemetry::EventType::kTaskAborted, 0, t, undone.blocks);
  abort_stats_.tasks_aborted++;
  abort_stats_.aborted_blocks += undone.blocks;
  abort_stats_.aborted_locks += undone.locks;
}

// ---------------------------------------------------------------------------
// Host-side inspection

std::optional<std::uint64_t> VersionStore::peek_version(OAddr a,
                                                        Ver v) const {
  const std::uint64_t slot = slot_of(a);
  const FindResult fr =
      find_exact(pool_, slots_[slot].root, v, effective_sorted(slots_[slot]));
  if (!fr.found()) return std::nullopt;
  return pool_[fr.block].data;
}

std::optional<Ver> VersionStore::newest_version(OAddr a) const {
  const std::uint64_t slot = slot_of(a);
  BlockIndex b = slots_[slot].root;
  if (b == kNullBlock) return std::nullopt;
  if (effective_sorted(slots_[slot])) return pool_[b].version;
  Ver best = pool_[b].version;
  for (; b != kNullBlock; b = pool_[b].next) {
    best = std::max(best, pool_[b].version);
  }
  return best;
}

std::optional<TaskId> VersionStore::lock_holder(OAddr a, Ver v) const {
  const std::uint64_t slot = slot_of(a);
  const FindResult fr =
      find_exact(pool_, slots_[slot].root, v, effective_sorted(slots_[slot]));
  if (!fr.found()) return std::nullopt;
  const TaskId l = pool_[fr.block].locked_by;
  return l == kNoTask ? std::nullopt : std::optional<TaskId>(l);
}

int VersionStore::version_count(OAddr a) const {
  const std::uint64_t slot = slot_of(a);
  return list_length(pool_, slots_[slot].root);
}

}  // namespace osim
