// The versioned instruction set surface (paper Sec. II-A) and the optional
// architectural trace.
//
// Tracing: when OStructConfig::trace_capacity > 0, the manager records the
// last N versioned operations (ring buffer) with their timestamps — the
// first tool one reaches for when a pipelined workload deadlocks or
// misorders. Zero-cost when disabled.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace osim {

/// The eight instructions the architecture adds.
enum class OpCode : std::uint8_t {
  kLoadVersion,
  kLoadLatest,
  kStoreVersion,
  kLockLoadVersion,
  kLockLoadLatest,
  kUnlockVersion,
  kTaskBegin,
  kTaskEnd,
};

inline const char* to_string(OpCode op) {
  switch (op) {
    case OpCode::kLoadVersion:
      return "LOAD-VERSION";
    case OpCode::kLoadLatest:
      return "LOAD-LATEST";
    case OpCode::kStoreVersion:
      return "STORE-VERSION";
    case OpCode::kLockLoadVersion:
      return "LOCK-LOAD-VERSION";
    case OpCode::kLockLoadLatest:
      return "LOCK-LOAD-LATEST";
    case OpCode::kUnlockVersion:
      return "UNLOCK-VERSION";
    case OpCode::kTaskBegin:
      return "TASK-BEGIN";
    case OpCode::kTaskEnd:
      return "TASK-END";
  }
  return "?";
}

/// One traced operation (recorded at issue, before any stall).
struct TraceRecord {
  Cycles time = 0;
  CoreId core = 0;
  OpCode op = OpCode::kLoadVersion;
  Addr addr = 0;    ///< O-structure address (0 for TASK-BEGIN/END)
  Ver version = 0;  ///< version / cap / task id argument
};

/// Fixed-capacity ring of TraceRecords.
class OpTrace {
 public:
  explicit OpTrace(std::size_t capacity) : capacity_(capacity) {
    ring_.reserve(capacity);
  }

  bool enabled() const { return capacity_ > 0; }

  void record(const TraceRecord& r) {
    if (capacity_ == 0) return;
    if (ring_.size() < capacity_) {
      ring_.push_back(r);
    } else {
      ring_[next_] = r;
    }
    next_ = (next_ + 1) % capacity_;
    ++total_;
  }

  /// Records in issue order, oldest first.
  std::vector<TraceRecord> snapshot() const {
    std::vector<TraceRecord> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_ || capacity_ == 0) {
      out = ring_;
    } else {
      out.insert(out.end(), ring_.begin() + static_cast<long>(next_),
                 ring_.end());
      out.insert(out.end(), ring_.begin(),
                 ring_.begin() + static_cast<long>(next_));
    }
    return out;
  }

  std::uint64_t total_recorded() const { return total_; }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::vector<TraceRecord> ring_;
};

}  // namespace osim
