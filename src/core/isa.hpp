// The versioned instruction set surface (paper Sec. II-A).
//
// Tracing moved to src/telemetry/trace.hpp: the O-structure manager owns a
// telemetry::Tracer and emits typed events (ISA ops plus the version
// lifecycle) to pluggable sinks. When OStructConfig::trace_capacity > 0 the
// manager keeps the classic ring of the last N versioned operations — the
// first tool one reaches for when a pipelined workload deadlocks or
// misorders. Zero-cost when disabled.
#pragma once

#include <cassert>
#include <cstdint>

#include "telemetry/trace.hpp"

namespace osim {

/// The eight instructions the architecture adds.
enum class OpCode : std::uint8_t {
  kLoadVersion,
  kLoadLatest,
  kStoreVersion,
  kLockLoadVersion,
  kLockLoadLatest,
  kUnlockVersion,
  kTaskBegin,
  kTaskEnd,
};

inline constexpr int kNumOpCodes = 8;

inline const char* to_string(OpCode op) {
  switch (op) {
    case OpCode::kLoadVersion:
      return "LOAD-VERSION";
    case OpCode::kLoadLatest:
      return "LOAD-LATEST";
    case OpCode::kStoreVersion:
      return "STORE-VERSION";
    case OpCode::kLockLoadVersion:
      return "LOCK-LOAD-VERSION";
    case OpCode::kLockLoadLatest:
      return "LOCK-LOAD-LATEST";
    case OpCode::kUnlockVersion:
      return "UNLOCK-VERSION";
    case OpCode::kTaskBegin:
      return "TASK-BEGIN";
    case OpCode::kTaskEnd:
      return "TASK-END";
  }
  assert(!"to_string: unknown OpCode");
  return "?";
}

/// Compatibility aliases for the pre-telemetry trace API. TraceEvent
/// carries the old fields under the same names (time, core, op, addr,
/// version) plus the event type and a lifecycle argument; RingSink is the
/// old ring with an added event-type mask.
using TraceRecord [[deprecated("use telemetry::TraceEvent")]] =
    telemetry::TraceEvent;
using OpTrace [[deprecated("use telemetry::RingSink")]] = telemetry::RingSink;

}  // namespace osim
