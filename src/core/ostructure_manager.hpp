// The O-structure Memory Version Manager (paper Sec. III, Fig. 2).
//
// This is the architectural contribution: it implements the versioned
// instruction set (LOAD-VERSION, LOAD-LATEST, STORE-VERSION,
// LOCK-LOAD-VERSION, LOCK-LOAD-LATEST, UNLOCK-VERSION, TASK-BEGIN,
// TASK-END) on top of the simulated cache hierarchy.
//
// Semantics vs. timing. Every operation's *semantic* effect (which version
// is read, which block is locked, where an insert lands) is decided and
// applied atomically at the operation's start timestamp, against the
// authoritative version lists in the block pool. *Timing* is then charged
// through the memory hierarchy: a direct access costs one L1 probe of the
// slot's compressed line; a full lookup costs the root-pointer access plus
// one access per version block walked, with only the final block installed
// in L1 (the paper's pollution avoidance). Because operations serialize at
// timestamps, the paper's two-cache-line exclusive-acquisition/retry
// protocol for inserts can never actually race here; its cost (two
// exclusive line acquisitions) is still charged.
//
// Blocking semantics (a load of an uncreated version, a load/lock of a
// locked version) park the core on the slot's wait list; every store or
// unlock to the slot wakes the waiters, which re-evaluate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/compressed_line.hpp"
#include "core/isa.hpp"
#include "core/gc.hpp"
#include "core/version_block.hpp"
#include "core/version_list.hpp"
#include "sim/address_map.hpp"
#include "sim/flat_map.hpp"
#include "sim/machine.hpp"

namespace osim {

/// User-visible address of an O-structure slot (8-byte granularity inside
/// the versioned region).
using OAddr = Addr;

struct OpFlags {
  /// Workload-level "root of the data structure" access; feeds the
  /// root-stall statistics of Sec. IV-D.
  bool root = false;
};

class OStructureManager {
 public:
  /// The manager registers itself as the machine's L1 drop observer (for
  /// compressed-line coherence); create at most one per machine.
  explicit OStructureManager(Machine& m);

  // ---- O-structure allocation (the OS/runtime interface) ----

  /// Allocate `slots` contiguous O-structure slots; their pages get the
  /// versioned bit. Returns the address of the first slot.
  OAddr alloc(std::size_t slots = 1);

  /// Convert the slots back to conventional memory. All their versions are
  /// discarded. The caller must guarantee no unfinished task touches them
  /// (paper Sec. III-C); parked waiters are woken and will fault.
  void release(OAddr base, std::size_t slots = 1);

  // ---- The versioned ISA (call only from a core fiber) ----

  /// LOAD-VERSION: value of exactly version `v`; blocks until it exists and
  /// is unlocked (locks on *other* versions are ignored).
  std::uint64_t load_version(OAddr a, Ver v, OpFlags f = {});

  /// LOAD-LATEST: value of the highest version <= `cap`; blocks while no
  /// such version exists or the candidate is locked. The version actually
  /// read is reported through `found` if non-null.
  std::uint64_t load_latest(OAddr a, Ver cap, Ver* found = nullptr,
                            OpFlags f = {});

  /// STORE-VERSION: create version `v` holding `data`. Faults if `v`
  /// already exists (versions are immutable once created).
  void store_version(OAddr a, Ver v, std::uint64_t data, OpFlags f = {});

  /// LOCK-LOAD-VERSION: LOAD-VERSION + lock; blocks while locked by others.
  std::uint64_t lock_load_version(OAddr a, Ver v, TaskId locker,
                                  OpFlags f = {});

  /// LOCK-LOAD-LATEST: LOAD-LATEST + lock of the version that was read.
  std::uint64_t lock_load_latest(OAddr a, Ver cap, TaskId locker,
                                 Ver* found = nullptr, OpFlags f = {});

  /// UNLOCK-VERSION: release `locked_v` (held by `owner`), optionally
  /// renaming: creating unlocked version `rename_to` with the same value.
  void unlock_version(OAddr a, Ver locked_v, TaskId owner,
                      std::optional<Ver> rename_to = std::nullopt,
                      OpFlags f = {});

  /// Task creation announcement (GC rule #3 check point). Host-context
  /// safe; charges nothing — creation belongs to the spawning program.
  void task_created(TaskId t);
  /// TASK-BEGIN / TASK-END: GC progress reports (rules #2-#3).
  void task_begin(TaskId t);
  void task_end(TaskId t);

  // ---- Protection ----

  /// True if `a` falls on an allocated O-structure slot.
  bool is_versioned_addr(Addr a) const;
  /// Fault check for conventional loads/stores (versioned-bit protection).
  void check_conventional(Addr a) const;

  // ---- Host-side inspection (no timing; tests and tools) ----
  std::optional<std::uint64_t> peek_version(OAddr a, Ver v) const;
  std::optional<Ver> newest_version(OAddr a) const;
  std::optional<TaskId> lock_holder(OAddr a, Ver v) const;
  int version_count(OAddr a) const;
  std::size_t free_blocks() const { return pool_.free_count(); }

  GarbageCollector& gc() { return gc_; }
  BlockPool& pool() { return pool_; }
  const OStructConfig& config() const { return cfg_; }
  /// Architectural ring trace of the last N versioned operations (enabled
  /// via OStructConfig::trace_capacity; ISA-op events only).
  const telemetry::RingSink& trace() const { return ring_; }
  /// Event-trace dispatcher: attach extra sinks (lifecycle analysis, tests)
  /// before running; all version-lifecycle events flow through it.
  telemetry::Tracer& tracer() { return tracer_; }

 private:
  struct SlotMeta {
    BlockIndex root = kNullBlock;
    bool allocated = false;
    /// Live version count; steers the compressed/uncompressed choice (the
    /// paper's caches "can store both compressed and uncompressed versions
    /// of an O-structure at the same time" — packing into a compressed
    /// line only pays once a slot holds more than one version).
    int nversions = 0;
    /// Unsorted mode: set once an out-of-order insert breaks the de-facto
    /// descending order; until then lookups may still early-terminate.
    bool order_broken = false;
    WaitList waiters;
  };

  /// Whether lookups on this slot may use sorted-order early termination.
  bool effective_sorted(const SlotMeta& sm) const {
    return cfg_.sorted_lists || !sm.order_broken;
  }

  enum class LookupKind { kExact, kLatest };

  std::uint64_t slot_of(OAddr a) const;
  SlotMeta& meta(std::uint64_t slot) { return slots_[slot]; }

  /// Per-attempt preamble: global ordering, injected latency, stats, and
  /// the architectural trace (recorded at first issue only).
  void begin_attempt(const OpFlags& f, int attempt, OpCode op, OAddr a,
                     Ver v);
  /// First-stall accounting, then park on the slot's wait list.
  void stall(const OpFlags& f, std::uint64_t slot, int attempt);

  /// Charge the cost of a satisfied lookup (direct or full) and maintain
  /// the compressed line. `fr` is the authoritative find result. Lock
  /// operations pass `final_access = kWrite`: the hardware fetches the
  /// target block with a single read-for-ownership transaction instead of
  /// a read followed by an upgrade.
  /// `probe_locked_by`: the lock state the compressed entry is expected to
  /// show for a direct hit. Lock operations apply their semantic effect
  /// before charging, so they pass the pre-lock state (kNoTask) here while
  /// the freshly-installed entry carries the new lock.
  void charge_lookup(std::uint64_t slot, const FindResult& fr,
                     LookupKind kind, Ver key,
                     AccessType final_access = AccessType::kRead,
                     std::optional<TaskId> probe_locked_by = std::nullopt);

  /// The core's compressed line for `slot`, valid only while the line is
  /// resident in its L1; nullptr otherwise.
  CompressedLine* comp_line(CoreId core, std::uint64_t slot);
  /// Install/refresh a compressed entry after a lookup or store. Takes a
  /// snapshot of the block's fields (the block itself may be reclaimed
  /// during the charged walk's yields).
  void comp_install(std::uint64_t slot, const CompressedLine::Entry& e);
  /// Propagate an insert on `slot` to remote compressed lines: discard
  /// them (the paper's simple policy) or, under inplace_comp_update, patch
  /// their head/adjacency metadata through the extended coherence message.
  void comp_remote_insert(std::uint64_t slot, Ver v, bool at_head);
  /// Propagate a lock-field change likewise.
  void comp_remote_lock(std::uint64_t slot, Ver v, TaskId locker);

  /// Allocate a version block, growing the pool via the OS trap if needed
  /// and kicking the GC at the watermark. Charges free-list access.
  BlockIndex alloc_block();
  /// GC reclaim callback: unlink, scrub compressed entries, free.
  void reclaim(BlockIndex b);

  /// Emit a lifecycle event stamped with the running core's time (host
  /// context emits time 0 / core 0). One inlined branch when tracing is
  /// off; the build/dispatch cost lives out of line.
  void emit_event(telemetry::EventType type, OAddr addr, Ver version,
                  std::uint64_t arg) {
    if (tracer_.enabled()) emit_event_slow(type, addr, version, arg);
  }
  void emit_event_slow(telemetry::EventType type, OAddr addr, Ver version,
                       std::uint64_t arg);

  /// Shared implementation of STORE-VERSION and the renaming half of
  /// UNLOCK-VERSION (assumes begin_attempt already ran).
  void store_impl(std::uint64_t slot, Ver v, std::uint64_t data);

  /// Record a cycle stamp for block `b`, growing the side array on first
  /// touch (see block_born_ below).
  static void stamp(std::vector<Cycles>& stamps, BlockIndex b, Cycles t) {
    const auto i = static_cast<std::size_t>(b);
    if (stamps.size() <= i) stamps.resize(i + 1);
    stamps[i] = t;
  }
  static Cycles stamp_of(const std::vector<Cycles>& stamps, BlockIndex b) {
    const auto i = static_cast<std::size_t>(b);
    return i < stamps.size() ? stamps[i] : 0;
  }

  Machine& m_;
  OStructConfig cfg_;
  BlockPool pool_;
  GarbageCollector gc_;
  std::vector<SlotMeta> slots_;
  /// Per-core side storage for compressed lines (timing metadata; presence
  /// in L1 is tracked by the real tag array via compressed_addr()). Probed
  /// on every versioned lookup and on every L1 line drop, so it uses the
  /// flat open-addressed map rather than std::unordered_map.
  std::vector<FlatMap<std::uint64_t, CompressedLine>> comp_;
  /// Released slot runs, keyed by run length, for reuse by alloc().
  FlatMap<std::uint64_t, std::vector<std::uint64_t>> slot_free_;

  // ---- Telemetry ----
  // Per-core counters, packed so one versioned op touches a single cache
  // line of counter state (an op bumps 2-4 of these). Registered with the
  // machine's registry as external-storage counter vectors.
  struct PerCoreCounters {
    std::uint64_t versioned_ops = 0, root_loads = 0, root_stalls = 0;
    std::uint64_t direct_hits = 0, full_lookups = 0, walk_blocks = 0;
    std::uint64_t stalls = 0, tasks_executed = 0;
  };
  std::vector<PerCoreCounters> core_counters_;  ///< fixed; registry reads it
  // Machine-wide counters.
  telemetry::Counter blocks_allocated_, blocks_freed_, os_traps_;
  telemetry::Counter compressed_installs_, compressed_discards_;
  telemetry::Counter compress_overflows_;
  // Distributions (observed off the hot path: walks, reclaims).
  telemetry::Histogram walk_length_;       ///< blocks touched per full lookup
  telemetry::Histogram version_lifetime_;  ///< alloc -> reclaim, cycles
  telemetry::Histogram reclaim_lag_;       ///< shadowed -> reclaim, cycles
  // Per-block alloc/shadow cycle stamps feeding the two histograms above.
  // Side arrays grown lazily to the highest block index actually used: the
  // pool holds ~1M mostly-untouched blocks, so stamping inside VersionBlock
  // would add pool_size * 16 bytes of cold zeroed memory to every machine
  // construction (a hardware implementation would not store these at all).
  std::vector<Cycles> block_born_;
  std::vector<Cycles> block_shadowed_at_;
  /// Event fan-out; the config-driven ring and file sinks attach here.
  telemetry::Tracer tracer_;
  telemetry::RingSink ring_;  ///< ISA-op ring (OStructConfig::trace_capacity)
};

}  // namespace osim
