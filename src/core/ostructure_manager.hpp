// The cycle-accurate (timed) backend of the O-structure Memory Version
// Manager (paper Sec. III, Fig. 2).
//
// The *semantics* of the versioned instruction set live in
// core/version_store.hpp; this header supplies the machine model they run
// against:
//
//   * MachineTimingModel — the TimingModel that turns each reported semantic
//     effect into simulated cache-hierarchy traffic, fiber scheduling and
//     wait lists, per-core compressed version lines, and block lifetime
//     stamps. A direct access costs one L1 probe of the slot's compressed
//     line; a full lookup costs the root-pointer access plus one access per
//     version block walked, with only the final block installed in L1 (the
//     paper's pollution avoidance). Because operations serialize at
//     timestamps, the paper's two-cache-line exclusive-acquisition/retry
//     protocol for inserts can never actually race here; its cost (two
//     exclusive line acquisitions) is still charged.
//
//   * OStructureManager — the backend itself: a VersionStore wired to a
//     MachineTimingModel, presenting the historical single-object API.
//
// Blocking semantics (a load of an uncreated version, a load/lock of a
// locked version) park the core's fiber on the slot's wait list; every store
// or unlock to the slot wakes the waiters, which re-evaluate.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/compressed_line.hpp"
#include "core/timing_model.hpp"
#include "core/version_store.hpp"
#include "sim/machine.hpp"

namespace osim {

/// Charges VersionStore's semantic effects against a simulated Machine.
/// Owns the purely-timing state the engine deliberately does not know about:
/// per-core compressed lines, per-slot wait lists, block lifetime stamps.
class MachineTimingModel final : public TimingModel {
 public:
  explicit MachineTimingModel(Machine& m);

  /// Attach the engine this model charges for. Registers the model as the
  /// machine's L1 drop observer (compressed-line coherence); call exactly
  /// once, before any operation runs.
  void bind(VersionStore* store);

  // ---- TimingModel ----
  bool in_op_context() const override { return Fiber::current() != nullptr; }
  Cycles now() const override { return m_.now(); }
  CoreId core() const override { return m_.current_core(); }

  void op_serialize() override { m_.sync_to_global_order(); }
  void op_overhead() override { m_.advance(cfg_.injected_latency); }
  void task_instr() override { m_.exec(1); }

  void wait_on_slot(const WaitContext& w) override { m_.block_on(wl(w.slot)); }
  void wake_slot(std::uint64_t slot) override;

  void lookup_done(std::uint64_t slot, const FindResult& fr, bool exact,
                   Ver key, bool exclusive,
                   std::optional<TaskId> probe_locked_by) override;
  void lock_applied(std::uint64_t slot, Ver v, TaskId locker) override;
  void unlock_applied(std::uint64_t slot, BlockIndex b, Ver v) override;

  void free_list_access() override {
    m_.mem_access(free_list_addr(m_.current_core()), AccessType::kWrite);
  }
  void gc_triggered() override { m_.advance(cfg_.gc_trigger_latency); }
  void os_trapped() override { m_.advance(cfg_.os_trap_latency); }
  void block_allocated(BlockIndex b) override {
    stamp(block_born_, b, m_.now());
  }

  void store_charged(std::uint64_t slot, const InsertResult& ir,
                     BlockIndex nb) override;
  void block_shadowed(BlockIndex b) override {
    stamp(block_shadowed_at_, b, m_.now());
  }
  void store_installed(std::uint64_t slot,
                       const CompressedLine::Entry& snap) override;

  void block_reclaimed(BlockIndex b, std::uint64_t slot, Ver v) override;
  void slot_released(std::uint64_t slot) override;

 private:
  /// The core's compressed line for `slot`, valid only while the line is
  /// resident in its L1; nullptr otherwise.
  CompressedLine* comp_line(CoreId core, std::uint64_t slot);
  /// Install/refresh a compressed entry after a lookup or store. Takes a
  /// snapshot of the block's fields (the block itself may be reclaimed
  /// during the charged walk's yields).
  void comp_install(std::uint64_t slot, const CompressedLine::Entry& e);
  /// Propagate an insert on `slot` to remote compressed lines: discard
  /// them (the paper's simple policy) or, under inplace_comp_update, patch
  /// their head/adjacency metadata through the extended coherence message.
  void comp_remote_insert(std::uint64_t slot, Ver v, bool at_head);
  /// Propagate a lock-field change likewise.
  void comp_remote_lock(std::uint64_t slot, Ver v, TaskId locker);

  /// Wait list of `slot`, grown on first use (slots are engine state; only
  /// their parked fibers live here).
  WaitList& wl(std::uint64_t slot) {
    if (waiters_.size() <= slot) waiters_.resize(slot + 1);
    return waiters_[slot];
  }

  /// Record a cycle stamp for block `b`, growing the side array on first
  /// touch (see block_born_ below).
  static void stamp(std::vector<Cycles>& stamps, BlockIndex b, Cycles t) {
    const auto i = static_cast<std::size_t>(b);
    if (stamps.size() <= i) stamps.resize(i + 1);
    stamps[i] = t;
  }
  static Cycles stamp_of(const std::vector<Cycles>& stamps, BlockIndex b) {
    const auto i = static_cast<std::size_t>(b);
    return i < stamps.size() ? stamps[i] : 0;
  }

  Machine& m_;
  OStructConfig cfg_;
  VersionStore* store_ = nullptr;
  /// Per-core side storage for compressed lines (timing metadata; presence
  /// in L1 is tracked by the real tag array via compressed_addr()). Probed
  /// on every versioned lookup and on every L1 line drop, so it uses the
  /// flat open-addressed map rather than std::unordered_map.
  std::vector<FlatMap<std::uint64_t, CompressedLine>> comp_;
  /// Per-slot wait lists, indexed by slot, grown lazily.
  std::vector<WaitList> waiters_;
  // Per-block alloc/shadow cycle stamps feeding the lifetime histograms.
  // Side arrays grown lazily to the highest block index actually used: the
  // pool holds ~1M mostly-untouched blocks, so stamping inside VersionBlock
  // would add pool_size * 16 bytes of cold zeroed memory to every machine
  // construction (a hardware implementation would not store these at all).
  std::vector<Cycles> block_born_;
  std::vector<Cycles> block_shadowed_at_;
};

/// The timed backend: the semantic engine bound to a MachineTimingModel,
/// under the historical single-object API (tests and the runtime construct
/// one per machine and call the ISA on it directly).
class OStructureManager {
 public:
  /// The manager registers itself as the machine's L1 drop observer (for
  /// compressed-line coherence); create at most one per machine.
  explicit OStructureManager(Machine& m)
      : timing_(m),
        store_(m.config().ostruct, m.num_cores(), m.metrics(), timing_) {
    timing_.bind(&store_);
  }

  /// The backend-independent semantic engine (checker attachment, tools).
  VersionStore& store() { return store_; }
  const VersionStore& store() const { return store_; }

  // ---- O-structure allocation (the OS/runtime interface) ----
  OAddr alloc(std::size_t slots = 1) { return store_.alloc(slots); }
  void release(OAddr base, std::size_t slots = 1) {
    store_.release(base, slots);
  }

  // ---- The versioned ISA (call only from a core fiber) ----
  std::uint64_t load_version(OAddr a, Ver v, OpFlags f = {}) {
    return store_.load_version(a, v, f);
  }
  std::uint64_t load_latest(OAddr a, Ver cap, Ver* found = nullptr,
                            OpFlags f = {}) {
    return store_.load_latest(a, cap, found, f);
  }
  void store_version(OAddr a, Ver v, std::uint64_t data, OpFlags f = {}) {
    store_.store_version(a, v, data, f);
  }
  std::uint64_t lock_load_version(OAddr a, Ver v, TaskId locker,
                                  OpFlags f = {}) {
    return store_.lock_load_version(a, v, locker, f);
  }
  std::uint64_t lock_load_latest(OAddr a, Ver cap, TaskId locker,
                                 Ver* found = nullptr, OpFlags f = {}) {
    return store_.lock_load_latest(a, cap, locker, found, f);
  }
  void unlock_version(OAddr a, Ver locked_v, TaskId owner,
                      std::optional<Ver> rename_to = std::nullopt,
                      OpFlags f = {}) {
    store_.unlock_version(a, locked_v, owner, rename_to, f);
  }

  void task_created(TaskId t) { store_.task_created(t); }
  void task_begin(TaskId t) { store_.task_begin(t); }
  void task_end(TaskId t) { store_.task_end(t); }

  // ---- Protection ----
  bool is_versioned_addr(Addr a) const { return store_.is_versioned_addr(a); }
  void check_conventional(Addr a) const { store_.check_conventional(a); }

  // ---- Host-side inspection (no timing; tests and tools) ----
  std::optional<std::uint64_t> peek_version(OAddr a, Ver v) const {
    return store_.peek_version(a, v);
  }
  std::optional<Ver> newest_version(OAddr a) const {
    return store_.newest_version(a);
  }
  std::optional<TaskId> lock_holder(OAddr a, Ver v) const {
    return store_.lock_holder(a, v);
  }
  int version_count(OAddr a) const { return store_.version_count(a); }
  std::size_t free_blocks() const { return store_.free_blocks(); }

  GcPolicy& gc() { return store_.gc(); }
  BlockPool& pool() { return store_.pool(); }
  const OStructConfig& config() const { return store_.config(); }
  const telemetry::RingSink& trace() const { return store_.trace(); }
  telemetry::Tracer& tracer() { return store_.tracer(); }

 private:
  /// Declared before store_: the engine's constructor takes the model by
  /// reference and keeps it for life.
  MachineTimingModel timing_;
  VersionStore store_;
};

}  // namespace osim
