// Shared trace-event construction for the semantic engines.
//
// Both engines emit the same event vocabulary (telemetry/trace.hpp) with
// the same field meanings; only the *stamp* differs — the serial engine
// stamps simulated cycles and the running core, the concurrent engine a
// linearization counter and the registered thread id. Building the record
// lives here so the field mapping (which argument lands in addr / version
// / arg for each EventType) is defined exactly once; the engines keep only
// their divergent clock/core sources.
#pragma once

#include "core/isa.hpp"
#include "core/types.hpp"
#include "telemetry/trace.hpp"

namespace osim {

/// Assemble one trace record. `op` is meaningful for kIsaOp events only;
/// lifecycle events leave it defaulted. Host-context emissions (teardown
/// code with no running op) pass time 0 / core 0.
inline telemetry::TraceEvent make_trace_event(Cycles time, CoreId core,
                                              telemetry::EventType type,
                                              OpCode op, Addr addr,
                                              Ver version, std::uint64_t arg) {
  telemetry::TraceEvent e;
  e.time = time;
  e.core = core;
  e.type = type;
  e.op = op;
  e.addr = addr;
  e.version = version;
  e.arg = arg;
  return e;
}

}  // namespace osim
