// SchedulePoint: the concurrent engine's scheduling seam.
//
// ConcurrentVersionStore announces every scheduling-relevant transition —
// shard-mutex acquire/release, optimistic seqlock read begin/retry,
// park/unpark of a blocked op, reclamation epoch advances, GC floor raises
// — through this interface, exactly the way VersionStore announces timing
// effects through TimingModel and reclamation decisions through GcPolicy.
// A model checker (analysis/explore.hpp) installs a hook that turns those
// announcements into a *controlled cooperative schedule*: only one program
// thread runs at a time, every interleaving decision is explicit, recorded,
// and replayable.
//
// Production cost is the TimingFastPath trick in its simplest form: the
// engine keeps a raw `ScheduleHook*` that is null outside model checking,
// and every announcement site is `if (hook_ != nullptr) hook_->...`. With
// no hook attached the seam is one never-taken branch on an
// already-loaded field — no virtual dispatch, no std::function, nothing
// for the optimizer to keep alive.
//
// Contract for hook implementations:
//   * Calls arrive from the store's registered program threads *and* from
//     host-side driver threads (alloc/release/inspection). A hook must
//     pass through calls from threads it does not manage.
//   * mutex_acquire() is called INSTEAD of contending on the real shard
//     mutex: the hook returns only when the modeled mutex is free and the
//     calling thread has been granted it; the engine then takes the real
//     (now uncontended) mutex. mutex_release() is called after the real
//     unlock. The shard writer mutex is the only modeled mutex — it is
//     the only one whose critical sections contain schedule points.
//   * block() replaces the engine's spin-then-park wait entirely. A true
//     return means "rescheduled after a wake; re-examine the slot". A
//     false return means the scheduler proved no other thread can make
//     progress — the engine converts it into its deterministic deadlock
//     fault (kWouldBlock).
//   * wake() is called where the engine would notify the shard's parked
//     waiters, *before* the production fast-path that elides the notify
//     when no waiter is registered (modeled waiters never register).
#pragma once

#include <cstdint>

namespace osim {

enum class SchedKind : std::uint8_t {
  kThreadStart,   ///< a managed thread's first scheduling (obj = thread id)
  kShardAcquire,  ///< about to take a shard writer mutex (obj = shard index)
  kShardRelease,  ///< shard writer mutex released (obj = shard index)
  kSeqReadBegin,  ///< optimistic seqlock read starting (obj = shard index)
  kSeqReadRetry,  ///< optimistic read re-ran (obj = shard index)
  kBlocked,       ///< op cannot progress until the shard changes (obj = shard)
  kWake,          ///< store/unlock/release signalled the shard (obj = shard)
  kEpochAdvance,  ///< reclamation grace epoch advanced (obj = 0)
  kGcFloorRaise,  ///< reclaim raised the GC floor (obj = 0)
  kTaskOp,        ///< task_created / task_begin / task_end (obj = 0)
};

inline const char* to_string(SchedKind k) {
  switch (k) {
    case SchedKind::kThreadStart: return "thread-start";
    case SchedKind::kShardAcquire: return "shard-acquire";
    case SchedKind::kShardRelease: return "shard-release";
    case SchedKind::kSeqReadBegin: return "seq-read-begin";
    case SchedKind::kSeqReadRetry: return "seq-read-retry";
    case SchedKind::kBlocked: return "blocked";
    case SchedKind::kWake: return "wake";
    case SchedKind::kEpochAdvance: return "epoch-advance";
    case SchedKind::kGcFloorRaise: return "gc-floor-raise";
    case SchedKind::kTaskOp: return "task-op";
  }
  return "?";
}

/// One announced transition: what kind, on which object (shard index for
/// shard-scoped kinds, 0 for global ones).
struct SchedPoint {
  SchedKind kind;
  std::uint64_t obj;
};

class ScheduleHook {
 public:
  virtual ~ScheduleHook() = default;

  /// Announcement that may suspend the calling thread and run others
  /// before returning (the hook decides which kinds are decision points
  /// and which are bookkeeping).
  virtual void point(SchedPoint p) = 0;

  /// Modeled-mutex acquisition; returns with the modeled mutex granted.
  virtual void mutex_acquire(SchedPoint p) = 0;
  /// Modeled-mutex release (called after the real unlock).
  virtual void mutex_release(SchedPoint p) = 0;

  /// The calling thread cannot progress until p.obj is signalled. Returns
  /// true when rescheduled after a wake(), false when the scheduler
  /// declared this thread a deadlock victim (caller faults kWouldBlock).
  virtual bool block(SchedPoint p) = 0;
  /// Make every thread blocked on p.obj schedulable again.
  virtual void wake(SchedPoint p) = 0;
};

}  // namespace osim
