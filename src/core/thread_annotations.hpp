// Clang thread-safety annotations (-Wthread-safety) for the concurrent
// engine's lock discipline, plus the annotated mutex wrapper the analysis
// needs to see acquisitions at all.
//
// Clang's thread-safety analysis only tracks capabilities through functions
// that carry the attributes; libstdc++'s std::mutex is unannotated, so a
// bare std::mutex member silences the whole analysis. Mutex below is a
// zero-overhead std::mutex wrapper whose lock/unlock are annotated, and
// MutexLock is the matching scoped guard. Under GCC (or any non-Clang
// compiler) every macro expands to nothing and Mutex is exactly std::mutex
// with three forwarding calls.
//
// The top-level CMakeLists enables -Wthread-safety (as an error) whenever
// the compiler is Clang, so lock-discipline violations in
// ConcurrentVersionStore fail the build rather than waiting for TSan to
// catch a schedule that exhibits them.
#pragma once

#include <mutex>

#if defined(__clang__)
#define OSIM_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OSIM_THREAD_ANNOTATION(x)  // no-op outside Clang
#endif

#define OSIM_CAPABILITY(x) OSIM_THREAD_ANNOTATION(capability(x))
#define OSIM_SCOPED_CAPABILITY OSIM_THREAD_ANNOTATION(scoped_lockable)
#define OSIM_GUARDED_BY(x) OSIM_THREAD_ANNOTATION(guarded_by(x))
#define OSIM_PT_GUARDED_BY(x) OSIM_THREAD_ANNOTATION(pt_guarded_by(x))
#define OSIM_REQUIRES(...) \
  OSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define OSIM_ACQUIRE(...) \
  OSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define OSIM_RELEASE(...) \
  OSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define OSIM_TRY_ACQUIRE(...) \
  OSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define OSIM_EXCLUDES(...) OSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define OSIM_RETURN_CAPABILITY(x) OSIM_THREAD_ANNOTATION(lock_returned(x))
#define OSIM_NO_THREAD_SAFETY_ANALYSIS \
  OSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace osim {

/// std::mutex with thread-safety-analysis attributes. Satisfies
/// BasicLockable/Lockable, so std::unique_lock<Mutex> works where a
/// conditional or movable guard is needed (such bodies opt out of the
/// analysis explicitly).
class OSIM_CAPABILITY("mutex") Mutex {
 public:
  void lock() OSIM_ACQUIRE() { mu_.lock(); }
  void unlock() OSIM_RELEASE() { mu_.unlock(); }
  bool try_lock() OSIM_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped guard for Mutex (std::lock_guard is unannotated).
class OSIM_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) OSIM_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() OSIM_RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace osim
