// VersionStore: the semantic engine of the O-structure architecture
// (paper Sec. III), independent of any machine model.
//
// The engine owns everything that defines what the versioned ISA *does*:
// the version lists and their block pool, the hardware free list, lock
// bits, waiter semantics, protection faults, and the 3-list GC lifecycle
// (live -> shadowed -> pending -> free). Every operation's semantic effect
// (which version is read, which block is locked, where an insert lands) is
// decided and applied atomically at the operation's start, against the
// authoritative version lists.
//
// What the engine does *not* know is what any of it costs. Each semantic
// step is reported through a TimingModel (core/timing_model.hpp) at exactly
// the point where the cost is incurred; the cycle-accurate backend
// (core/ostructure_manager.hpp) turns those reports into cache-hierarchy
// traffic and fiber scheduling, while the functional backend
// (runtime/functional.hpp) executes them at host speed. A timing hook may
// yield to other operations, so the engine re-fetches its own state after
// every charged call — the discipline that makes the timed backend
// bit-identical to the historical interleaved implementation.
//
// This header has no "sim/..." dependencies, transitively: it builds on
// core/ and telemetry/ only.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "core/address_map.hpp"
#include "core/compressed_line.hpp"
#include "core/engine_trace.hpp"
#include "core/fault_injection.hpp"
#include "core/flat_map.hpp"
#include "core/gc_policy.hpp"
#include "core/isa.hpp"
#include "core/ostruct_config.hpp"
#include "core/timing_model.hpp"
#include "core/types.hpp"
#include "core/undo_journal.hpp"
#include "core/version_block.hpp"
#include "core/version_engine.hpp"
#include "core/version_list.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace osim {

struct OpFlags {
  /// Workload-level "root of the data structure" access; feeds the
  /// root-stall statistics of Sec. IV-D.
  bool root = false;
};

/// The serial semantic engine. Implements the VersionEngine facade; the
/// flagged ISA overloads below additionally thread the workload-level
/// OpFlags through to the root-stall statistics (the facade's flagless
/// surface forwards default flags).
class VersionStore : public VersionEngine, private GcOwner {
 public:
  /// Per-core operation counters, packed so one versioned op touches a
  /// single cache line of counter state (an op bumps 2-4 of these), and
  /// aligned to a cache line so adjacent cores' counters never share one —
  /// the single-threaded backends mask false sharing, but the concurrent
  /// engine (core/concurrent_store.hpp) and any host-parallel driver bump
  /// these from real threads. Registered with the registry as
  /// external-storage counter vectors; timing models bump the lookup-path
  /// fields through counters().
  struct alignas(64) PerCoreCounters {
    std::uint64_t versioned_ops = 0, root_loads = 0, root_stalls = 0;
    std::uint64_t direct_hits = 0, full_lookups = 0, walk_blocks = 0;
    std::uint64_t stalls = 0, tasks_executed = 0;
  };
  static_assert(sizeof(PerCoreCounters) == 64,
                "one cache line exactly: 8 dense uint64 counters, no pad");
  static_assert(alignof(PerCoreCounters) == 64,
                "cache-line aligned so per-core lines never false-share");

  /// Registers the engine's metrics in `reg` (which must outlive it) and
  /// reports all charged effects through `timing` (likewise).
  VersionStore(const OStructConfig& cfg, int num_cores,
               telemetry::MetricRegistry& reg, TimingModel& timing);

  VersionStore(const VersionStore&) = delete;
  VersionStore& operator=(const VersionStore&) = delete;

  // ---- O-structure allocation (the OS/runtime interface) ----

  /// Allocate `slots` contiguous O-structure slots; their pages get the
  /// versioned bit. Returns the address of the first slot.
  OAddr alloc(std::size_t slots = 1) override;

  /// Convert the slots back to conventional memory. All their versions are
  /// discarded. The caller must guarantee no unfinished task touches them
  /// (paper Sec. III-C); parked waiters are woken and will fault.
  void release(OAddr base, std::size_t slots = 1) override;

  // ---- The versioned ISA ----
  // Each op has a flagged overload (all arguments explicit — no defaults,
  // so the facade's flagless signature resolves unambiguously) and the
  // VersionEngine override that forwards default flags.

  /// LOAD-VERSION: value of exactly version `v`; blocks until it exists and
  /// is unlocked (locks on *other* versions are ignored).
  std::uint64_t load_version(OAddr a, Ver v, OpFlags f);
  std::uint64_t load_version(OAddr a, Ver v) override {
    return load_version(a, v, OpFlags{});
  }

  /// LOAD-LATEST: value of the highest version <= `cap`; blocks while no
  /// such version exists or the candidate is locked. The version actually
  /// read is reported through `found` if non-null.
  std::uint64_t load_latest(OAddr a, Ver cap, Ver* found, OpFlags f);
  std::uint64_t load_latest(OAddr a, Ver cap, Ver* found = nullptr) override {
    return load_latest(a, cap, found, OpFlags{});
  }

  /// STORE-VERSION: create version `v` holding `data`. Faults if `v`
  /// already exists (versions are immutable once created).
  void store_version(OAddr a, Ver v, std::uint64_t data, OpFlags f);
  void store_version(OAddr a, Ver v, std::uint64_t data) override {
    store_version(a, v, data, OpFlags{});
  }

  /// LOCK-LOAD-VERSION: LOAD-VERSION + lock; blocks while locked by others.
  std::uint64_t lock_load_version(OAddr a, Ver v, TaskId locker, OpFlags f);
  std::uint64_t lock_load_version(OAddr a, Ver v, TaskId locker) override {
    return lock_load_version(a, v, locker, OpFlags{});
  }

  /// LOCK-LOAD-LATEST: LOAD-LATEST + lock of the version that was read.
  std::uint64_t lock_load_latest(OAddr a, Ver cap, TaskId locker, Ver* found,
                                 OpFlags f);
  std::uint64_t lock_load_latest(OAddr a, Ver cap, TaskId locker,
                                 Ver* found = nullptr) override {
    return lock_load_latest(a, cap, locker, found, OpFlags{});
  }

  /// UNLOCK-VERSION: release `locked_v` (held by `owner`), optionally
  /// renaming: creating unlocked version `rename_to` with the same value.
  void unlock_version(OAddr a, Ver locked_v, TaskId owner,
                      std::optional<Ver> rename_to, OpFlags f);
  void unlock_version(OAddr a, Ver locked_v, TaskId owner,
                      std::optional<Ver> rename_to = std::nullopt) override {
    unlock_version(a, locked_v, owner, rename_to, OpFlags{});
  }

  /// Task creation announcement (GC rule #3 check point). Host-context
  /// safe; charges nothing — creation belongs to the spawning program.
  void task_created(TaskId t) override;
  /// TASK-BEGIN / TASK-END: GC progress reports (rules #2-#3).
  void task_begin(TaskId t) override;
  void task_end(TaskId t) override;

  /// Roll back everything task `t` did since it began: its created
  /// versions are unlinked and freed (the renaming machinery run
  /// backwards, newest first) and its held locks released, with the GC
  /// policy told to forget any shadow registration the rollback restores.
  /// The task stays unfinished — the caller either retries it
  /// (task_begin) or retires it (task_end). Requires
  /// OStructConfig::track_aborts; host-context safe, charges no cycles.
  /// Emits kTaskAborted after the per-block/lock events.
  void abort_task(TaskId t) override;

  // ---- Protection ----
  // Inline: the conventional check runs on every ld()/st() a workload
  // issues, which is most of what the functional backend executes.

  /// True if `a` falls on an allocated O-structure slot.
  bool is_versioned_addr(Addr a) const override {
    if (a < kOStructBase || (a - kOStructBase) % 8 != 0) return false;
    const std::uint64_t slot = (a - kOStructBase) / 8;
    return slot < slots_.size() && slots_[slot].allocated;
  }
  /// Fault check for conventional loads/stores (versioned-bit protection).
  void check_conventional(Addr a) const override {
    if (is_versioned_addr(a)) fault_conventional(a);
  }

  // ---- Host-side inspection (no timing; tests and tools) ----
  std::optional<std::uint64_t> peek_version(OAddr a, Ver v) const;
  std::optional<Ver> newest_version(OAddr a) const;
  std::optional<TaskId> lock_holder(OAddr a, Ver v) const;
  int version_count(OAddr a) const;
  // Facade spellings (non-const: the concurrent sibling takes shard locks).
  std::optional<std::uint64_t> peek_version(OAddr a, Ver v) override {
    return std::as_const(*this).peek_version(a, v);
  }
  std::optional<Ver> newest_version(OAddr a) override {
    return std::as_const(*this).newest_version(a);
  }
  std::optional<TaskId> lock_holder(OAddr a, Ver v) override {
    return std::as_const(*this).lock_holder(a, v);
  }
  int version_count(OAddr a) override {
    return std::as_const(*this).version_count(a);
  }
  std::size_t free_blocks() const { return pool_.free_count(); }

  /// The reclamation policy behind the GcPolicy seam (selected by
  /// OStructConfig::gc_policy; core/gc_policy.hpp).
  GcPolicy& gc() { return *gc_; }
  BlockPool& pool() { return pool_; }
  const BlockPool& pool() const { return pool_; }
  const OStructConfig& config() const { return cfg_; }
  /// Architectural ring trace of the last N versioned operations (enabled
  /// via OStructConfig::trace_capacity; ISA-op events only).
  const telemetry::RingSink& trace() const { return ring_; }
  /// Event-trace dispatcher: attach extra sinks (lifecycle analysis, tests)
  /// before running; all version-lifecycle events flow through it.
  telemetry::Tracer& tracer() override { return tracer_; }

  /// The fault injector driving this engine's injection sites, or null
  /// when detached (OStructConfig::inject_spec empty). Null costs one
  /// branch per site — the SchedulePoint discipline.
  FaultInjector* fault_injector() override { return inj_.get(); }
  /// Attach an externally owned injector (tests); replaces any
  /// config-built one at the engine sites and the trace file sink.
  void attach_fault_injector(FaultInjector* inj) override {
    inj_.attach(inj);
    if (file_sink_ != nullptr) file_sink_->set_fault_hook(inj);
  }
  /// Tasks rolled back by abort_task since construction.
  std::uint64_t aborts() const { return abort_stats_.tasks_aborted; }
  /// Facade-level abort accounting (same fields as the concurrent engine).
  EngineStats engine_stats() const override { return abort_stats_; }

  // ---- State the timing layer reads while charging ----
  // A charged hook may run while the semantic state has already moved on
  // (that is the point: semantics commit first); these accessors expose the
  // *current* authoritative state for bounded re-walks and cache updates.

  /// Head of `slot`'s version list right now (kNullBlock when empty).
  BlockIndex root_of(std::uint64_t slot) const { return slots_[slot].root; }
  /// Live version count of `slot` right now.
  int nversions(std::uint64_t slot) const { return slots_[slot].nversions; }
  /// This core's packed counter line (timing models bump the lookup stats).
  PerCoreCounters& counters(CoreId core) {
    return core_counters_[static_cast<std::size_t>(core)];
  }
  /// Distribution handles the timing layer observes into (registered here
  /// so the registry's dump order is independent of the backend).
  telemetry::Histogram& walk_length_hist() { return walk_length_; }
  telemetry::Histogram& version_lifetime_hist() { return version_lifetime_; }
  telemetry::Histogram& reclaim_lag_hist() { return reclaim_lag_; }
  telemetry::Counter& compressed_installs_counter() {
    return compressed_installs_;
  }
  telemetry::Counter& compressed_discards_counter() {
    return compressed_discards_;
  }
  telemetry::Counter& compress_overflows_counter() {
    return compress_overflows_;
  }

 private:
  struct SlotMeta {
    BlockIndex root = kNullBlock;
    bool allocated = false;
    /// Live version count; steers the compressed/uncompressed choice (the
    /// paper's caches "can store both compressed and uncompressed versions
    /// of an O-structure at the same time" — packing into a compressed
    /// line only pays once a slot holds more than one version).
    int nversions = 0;
    /// Unsorted mode: set once an out-of-order insert breaks the de-facto
    /// descending order; until then lookups may still early-terminate.
    bool order_broken = false;
  };

  /// Whether lookups on this slot may use sorted-order early termination.
  bool effective_sorted(const SlotMeta& sm) const {
    return cfg_.sorted_lists || !sm.order_broken;
  }

  /// Resolve an O-structure address to its allocated slot; faults on
  /// anything outside the versioned region. Inline: one call per ISA op.
  std::uint64_t slot_of(OAddr a) const {
    if (a < kOStructBase || (a - kOStructBase) % 8 != 0) fault_unversioned(a);
    const std::uint64_t slot = (a - kOStructBase) / 8;
    if (slot >= slots_.size() || !slots_[slot].allocated) {
      fault_unversioned(a);
    }
    return slot;
  }
  [[noreturn]] void fault_unversioned(OAddr a) const;

  /// True when cost hooks must be dispatched (no TimingFastPath). The
  /// functional backend's hooks are all no-ops; skipping their virtual
  /// calls is what keeps that backend at host speed.
  bool charges() const { return fp_ == nullptr; }
  /// Devirtualized op_serialize() / core() for fast-path models.
  void tick() {
    if (fp_ != nullptr) {
      ++fp_->clock;
    } else {
      t_.op_serialize();
    }
  }
  CoreId cur_core() const { return fp_ != nullptr ? fp_->core : t_.core(); }

  [[noreturn]] void fault_conventional(Addr a) const;

  /// Per-attempt preamble: global ordering, injected latency, stats, and
  /// the architectural trace (recorded at first issue only). Inline: runs
  /// once per versioned op on both backends.
  void begin_attempt(const OpFlags& f, int attempt, OpCode op, OAddr a,
                     Ver v) {
    tick();
    if (attempt == 0) {
      const CoreId core = cur_core();
      PerCoreCounters& pc = core_counters_[static_cast<std::size_t>(core)];
      pc.versioned_ops++;
      if (f.root) pc.root_loads++;
      if (tracer_.enabled()) {
        tracer_.emit(make_trace_event(t_.now(), core,
                                      telemetry::EventType::kIsaOp, op, a, v,
                                      0));
      }
    }
    if (cfg_.injected_latency != 0) t_.op_overhead();
  }
  /// First-stall accounting, then park on the slot's wait list. `op`, `a`
  /// and `v` describe the blocked operation for the backend's would-block
  /// report (the functional backend faults with them).
  void stall(const OpFlags& f, std::uint64_t slot, int attempt, OpCode op,
             OAddr a, Ver v);

  /// Allocate a version block, growing the pool via the OS trap if needed
  /// and kicking the GC at the watermark. Charges free-list access.
  BlockIndex alloc_block();
  /// GC reclaim callback: unlink, report to the timing layer, free.
  void reclaim(BlockIndex b);

  // ---- GcOwner (the engine-side half of the GcPolicy seam) ----
  void gc_reclaim(BlockIndex b) override { reclaim(b); }
  void gc_event(telemetry::EventType type, std::uint64_t slot, Ver v,
                std::uint64_t arg) override {
    // kBlockPending names the block's owning slot; phase boundaries carry
    // no address.
    const OAddr a =
        type == telemetry::EventType::kBlockPending ? ostruct_addr(slot) : 0;
    emit_event(type, a, v, arg);
  }

  /// Emit a lifecycle event stamped with the running core's time (host
  /// context emits time 0 / core 0). One inlined branch when tracing is
  /// off; the build/dispatch cost lives out of line.
  void emit_event(telemetry::EventType type, OAddr addr, Ver version,
                  std::uint64_t arg) {
    if (tracer_.enabled()) emit_event_slow(type, addr, version, arg);
  }
  void emit_event_slow(telemetry::EventType type, OAddr addr, Ver version,
                       std::uint64_t arg);

  /// Shared implementation of STORE-VERSION and the renaming half of
  /// UNLOCK-VERSION (assumes begin_attempt already ran).
  void store_impl(std::uint64_t slot, Ver v, std::uint64_t data);

  /// Journal a store/lock for the task running on the current core, when
  /// track_aborts is on and a task is running. Inline cheap-exit. The
  /// record type and replay discipline are shared with the concurrent
  /// engine (core/undo_journal.hpp); this engine fills the block-identity
  /// fields because its pool recycles indices.
  void journal(UndoEntry e) {
    if (!cfg_.track_aborts) return;
    const TaskId t = cur_task_[static_cast<std::size_t>(cur_core())];
    if (!undo_active(cfg_.track_aborts, t)) return;
    undo_[t].push_back(e);
  }

  OStructConfig cfg_;
  TimingModel& t_;
  TimingFastPath* fp_;  ///< non-null iff t_ is a pure no-cost model
  BlockPool pool_;
  std::unique_ptr<GcPolicy> gc_;
  std::vector<SlotMeta> slots_;
  /// Released slot runs, keyed by run length, for reuse by alloc().
  FlatMap<std::uint64_t, std::vector<std::uint64_t>> slot_free_;
  /// Task currently running on each core (TASK-BEGIN..TASK-END), for the
  /// WaitContext of a blocked op; kNoTask outside any task.
  std::vector<TaskId> cur_task_;
  /// Rollback journals, per unfinished task (track_aborts only).
  FlatMap<TaskId, std::vector<UndoEntry>> undo_;
  /// Fault-injection seam (core/fault_injection.hpp): owns the
  /// config-built injector, detached = one null-check per site.
  FaultShim inj_;
  telemetry::FileSink* file_sink_ = nullptr;  ///< borrowed from tracer_
  /// Abort accounting behind engine_stats(); plain fields, never registry
  /// counters, so the timed backend's metric dump stays bit-identical.
  EngineStats abort_stats_;

  // ---- Telemetry ----
  std::vector<PerCoreCounters> core_counters_;  ///< fixed; registry reads it
  // Machine-wide counters.
  telemetry::Counter blocks_allocated_, blocks_freed_, os_traps_;
  telemetry::Counter compressed_installs_, compressed_discards_;
  telemetry::Counter compress_overflows_;
  // Distributions (observed off the hot path: walks, reclaims).
  telemetry::Histogram walk_length_;       ///< blocks touched per full lookup
  telemetry::Histogram version_lifetime_;  ///< alloc -> reclaim, cycles
  telemetry::Histogram reclaim_lag_;       ///< shadowed -> reclaim, cycles
  /// Event fan-out; the config-driven ring and file sinks attach here.
  telemetry::Tracer tracer_;
  telemetry::RingSink ring_;  ///< ISA-op ring (OStructConfig::trace_capacity)
};

}  // namespace osim
