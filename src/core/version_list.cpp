#include "core/version_list.hpp"

#include <cassert>

#include "core/fault.hpp"

namespace osim {

namespace detail {

void fault_not_list_head() {
  throw OFault(FaultKind::kNotListHead,
               "version block list entered past its head");
}

}  // namespace detail

int list_length(const BlockPool& pool, BlockIndex head) {
  int n = 0;
  for (BlockIndex b = head; b != kNullBlock; b = pool[b].next) ++n;
  return n;
}

InsertResult list_insert(BlockPool& pool, BlockIndex* root, BlockIndex fresh,
                         bool sorted) {
  detail::check_head_bit(pool, *root);
  InsertResult r;
  r.block = fresh;
  VersionBlock& nb = pool[fresh];
  assert(nb.state == BlockState::kLive);

  if (!sorted) {
    // Ablation mode: always push at head. Shadowing is tracked for the
    // in-order-creation case (the paper notes in-order is the common case).
    const BlockIndex old_head = *root;
    nb.next = old_head;
    nb.head = true;
    if (old_head != kNullBlock) {
      pool[old_head].head = false;
      if (pool[old_head].version < nb.version) {
        r.shadowed = old_head;
      } else {
        r.shadowed = fresh;  // born shadowed by the (newer) old head
        r.order_kept = false;
      }
    }
    *root = fresh;
    r.at_head = true;
    return r;
  }

  // Sorted insert, newest (largest version) first.
  BlockIndex prev = kNullBlock;
  BlockIndex cur = *root;
  while (cur != kNullBlock && pool[cur].version > nb.version) {
    ++r.blocks_walked;
    prev = cur;
    cur = pool[cur].next;
  }
  if (cur != kNullBlock && pool[cur].version == nb.version) {
    throw OFault(FaultKind::kVersionAlreadyExists,
                 "version " + std::to_string(nb.version));
  }
  nb.next = cur;
  if (prev == kNullBlock) {
    // New head: it shadows the previous newest version (if any).
    nb.head = true;
    if (*root != kNullBlock) {
      pool[*root].head = false;
      r.shadowed = *root;
    }
    *root = fresh;
    r.at_head = true;
  } else {
    // Mid-list insert: a newer version already exists, so the new block is
    // born shadowed (only tasks in [v, next-newer) can ever read it).
    pool[prev].next = fresh;
    r.pred = prev;
    r.shadowed = fresh;
  }
  return r;
}

int list_unlink(BlockPool& pool, BlockIndex* root, BlockIndex b) {
  assert(*root != kNullBlock);
  if (*root == b) {
    VersionBlock& vb = pool[b];
    *root = vb.next;
    vb.head = false;
    if (*root != kNullBlock) pool[*root].head = true;
    return 1;
  }
  int walked = 1;
  BlockIndex prev = *root;
  while (pool[prev].next != b) {
    prev = pool[prev].next;
    assert(prev != kNullBlock && "block not found in its list");
    ++walked;
  }
  pool[prev].next = pool[b].next;
  pool[b].next = kNullBlock;
  return walked + 1;
}

}  // namespace osim
