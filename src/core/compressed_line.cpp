#include "core/compressed_line.hpp"

namespace osim {

void CompressedLine::clear() {
  for (auto& s : slots_) s = Slot{};
  has_base_ = false;
  base_version_ = 0;
  tick_ = 0;
}

int CompressedLine::occupancy() const {
  int n = 0;
  for (const auto& s : slots_) n += s.valid ? 1 : 0;
  return n;
}

bool CompressedLine::install(const Entry& e) {
  if (e.version > kMaxVersion) {
    ++range_rejections_;
    return false;
  }
  if (!has_base_ || empty()) {
    // (Re)base on the incoming version: upper 18 bits of the lowest version
    // stored in the line.
    base_version_ = (e.version >> kOffsetBits) << kOffsetBits;
    has_base_ = true;
  }
  if (!fits(e.version) || (e.locked_by != 0 && !fits(e.locked_by))) {
    ++range_rejections_;
    return false;
  }
  // Refresh in place if the version is already cached.
  for (auto& s : slots_) {
    if (s.valid && s.e.version == e.version) {
      s.e = e;
      s.lru = ++tick_;
      return true;
    }
  }
  Slot* victim = &slots_[0];
  for (auto& s : slots_) {
    if (!s.valid) {
      victim = &s;
      break;
    }
    if (s.lru < victim->lru) victim = &s;
  }
  victim->valid = true;
  victim->e = e;
  victim->lru = ++tick_;
  return true;
}

std::optional<CompressedLine::Entry> CompressedLine::find_exact(Ver v) const {
  for (const auto& s : slots_) {
    if (s.valid && s.e.version == v) return s.e;
  }
  return std::nullopt;
}

std::optional<CompressedLine::Entry> CompressedLine::find_latest(
    Ver cap) const {
  for (const auto& s : slots_) {
    if (!s.valid || s.e.version > cap) continue;
    // Sound iff nothing can exist between this entry and the cap: either the
    // entry is the list head, or its known newer neighbour lies beyond cap.
    if (s.e.is_head || (s.e.has_newer && s.e.newer_version > cap)) return s.e;
  }
  return std::nullopt;
}

bool CompressedLine::set_lock(Ver v, TaskId locker) {
  for (auto& s : slots_) {
    if (s.valid && s.e.version == v) {
      if (locker != 0 && !fits(locker)) {
        ++range_rejections_;
        s.valid = false;  // uncompressible: evict the entry
        return false;
      }
      s.e.locked_by = locker;
      return true;
    }
  }
  return true;  // not cached: nothing to update
}

void CompressedLine::on_insert(Ver inserted, bool at_head) {
  for (auto& s : slots_) {
    if (!s.valid) continue;
    if (at_head && s.e.is_head) {
      s.e.is_head = false;
      s.e.has_newer = true;
      s.e.newer_version = inserted;
    } else if (s.e.has_newer && s.e.version < inserted &&
               inserted < s.e.newer_version) {
      // The insert landed between this entry and its recorded neighbour.
      s.e.newer_version = inserted;
    }
  }
}

void CompressedLine::erase(Ver v) {
  for (auto& s : slots_) {
    if (s.valid && s.e.version == v) s.valid = false;
  }
}

}  // namespace osim
