// Simulated protection and usage faults of the O-structure architecture
// (paper Sec. III, "Addressing and protection").
#pragma once

#include <stdexcept>
#include <string>

namespace osim {

enum class FaultKind {
  /// A conventional LOAD/STORE touched a page whose versioned bit is set.
  kConventionalAccessToVersionedPage,
  /// A versioned instruction referenced a page whose versioned bit is clear.
  kVersionedAccessToUnversionedPage,
  /// An access reached a version block whose head bit is not set (user code
  /// attempting to enter a version block list other than through its head).
  kNotListHead,
  /// STORE-VERSION to a version that already exists ("once created, a
  /// version can be locked but not modified").
  kVersionAlreadyExists,
  /// UNLOCK-VERSION by a task that does not hold the lock, or of an
  /// unlocked version.
  kNotLockOwner,
  /// UNLOCK-VERSION asked to rename onto a version that already exists.
  kRenameTargetExists,
  /// Address is not an O-structure slot this manager ever allocated.
  kInvalidAddress,
  /// Task runtime violated GC rule #3 (spawned a task older than the oldest
  /// active task) or ended a task that never began.
  kTaskOrderViolation,
  /// A versioned op would block, on a backend that cannot block (the
  /// functional backend executes in creation order, where a blocking op
  /// means the schedule itself can never make progress).
  kWouldBlock,
  /// The engine ran out of a bounded resource (version-block pool, slot
  /// table) or the OS refused to grow it. Structured so runtimes can
  /// back off and retry instead of dying: the store is left consistent,
  /// the requesting op simply did not happen.
  kResourceExhausted,
};

/// String name of a fault kind (stable; used in fault messages and tests).
const char* to_string(FaultKind k);

/// Thrown by the O-structure manager; the machine converts it into a
/// SimError that aborts the run (a real system would deliver a signal).
class OFault : public std::runtime_error {
 public:
  OFault(FaultKind kind, const std::string& detail)
      : std::runtime_error(std::string("O-structure fault: ") +
                           to_string(kind) + (detail.empty() ? "" : ": ") +
                           detail),
        kind_(kind) {}

  FaultKind kind() const { return kind_; }

 private:
  FaultKind kind_;
};

inline const char* to_string(FaultKind k) {
  switch (k) {
    case FaultKind::kConventionalAccessToVersionedPage:
      return "conventional access to versioned page";
    case FaultKind::kVersionedAccessToUnversionedPage:
      return "versioned access to unversioned page";
    case FaultKind::kNotListHead:
      return "access to non-head version block";
    case FaultKind::kVersionAlreadyExists:
      return "version already exists";
    case FaultKind::kNotLockOwner:
      return "unlock by non-owner";
    case FaultKind::kRenameTargetExists:
      return "rename target version already exists";
    case FaultKind::kInvalidAddress:
      return "invalid O-structure address";
    case FaultKind::kTaskOrderViolation:
      return "task ordering rule violation";
    case FaultKind::kWouldBlock:
      return "versioned op would block in-order execution";
    case FaultKind::kResourceExhausted:
      return "resource exhausted";
  }
  return "unknown fault";
}

}  // namespace osim
