#include "core/version_engine.hpp"

namespace osim {

namespace {

/// splitmix64: cheap, well-mixed fold for observable checksums.
std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h += 0x9e3779b97f4a7c15ull + v;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

std::uint64_t VersionEngine::Results::checksum() const {
  std::uint64_t h = 0;
  for (std::uint64_t r : reads) h = mix(h, r);
  for (Ver v : found) h = mix(h, v);
  for (const Fault& f : faults) {
    h = mix(h, f.index);
    h = mix(h, static_cast<std::uint64_t>(f.kind));
  }
  return mix(h, executed);
}

void VersionEngine::execute(std::span<const Op> batch, Results& out) {
  // One up-front reservation instead of growth doublings mid-batch: the
  // reads vector is the hot observable (every load appends), and a realloc
  // inside the loop is pure batching overhead the per-op style never pays.
  std::size_t nreads = 0, nfound = 0;
  for (const Op& o : batch) {
    switch (o.op) {
      case OpCode::kLoadVersion:
      case OpCode::kLockLoadVersion:
        ++nreads;
        break;
      case OpCode::kLoadLatest:
      case OpCode::kLockLoadLatest:
        ++nreads;
        ++nfound;
        break;
      default:
        break;
    }
  }
  out.reads.reserve(out.reads.size() + nreads);
  out.found.reserve(out.found.size() + nfound);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Op& o = batch[i];
    try {
      switch (o.op) {
        case OpCode::kLoadVersion:
          out.reads.push_back(load_version(o.addr, o.version));
          break;
        case OpCode::kLoadLatest: {
          Ver got = 0;
          out.reads.push_back(load_latest(o.addr, o.cap, &got));
          out.found.push_back(got);
          break;
        }
        case OpCode::kStoreVersion:
          store_version(o.addr, o.version, o.data);
          break;
        case OpCode::kLockLoadVersion:
          out.reads.push_back(lock_load_version(o.addr, o.version, o.task));
          break;
        case OpCode::kLockLoadLatest: {
          Ver got = 0;
          out.reads.push_back(lock_load_latest(o.addr, o.cap, o.task, &got));
          out.found.push_back(got);
          break;
        }
        case OpCode::kUnlockVersion:
          unlock_version(o.addr, o.version, o.task, o.rename_to);
          break;
        case OpCode::kTaskBegin:
          task_begin(o.task);
          break;
        case OpCode::kTaskEnd:
          task_end(o.task);
          break;
      }
      ++out.executed;
    } catch (const OFault& f) {
      out.faults.push_back({i, f.kind(), f.what()});
    }
  }
}

}  // namespace osim
