// Synthetic address regions for simulated structures.
//
// Workload data is execution-driven: host pointers double as simulated
// addresses. Structures that the paper places in *simulated physical memory*
// (version blocks, O-structure root pointers, free-list head) get synthetic
// addresses in a reserved high region so the cache models see realistic
// spatial locality (e.g. four 16-byte version blocks share a 64-byte line).
//
// Host allocations on Linux x86-64 never reach these addresses (user space
// tops out at 2^47), so the regions cannot collide with workload data.
#pragma once

#include "core/types.hpp"

namespace osim {

/// Base of the version-block pool region. Block i models a 16-byte structure
/// at kVersionBlockBase + 16*i (paper Sec. III: 16-byte version blocks).
inline constexpr Addr kVersionBlockBase = Addr{1} << 56;

/// Modelled size of one version block (paper: 16 bytes; 12 bytes metadata +
/// 4 bytes data in the 32-bit design).
inline constexpr Addr kVersionBlockBytes = 16;

/// Base of the O-structure root-pointer table. O-structure slot s has its
/// root pointer (physical address of the head of the version block list) at
/// kRootTableBase + 8*s.
inline constexpr Addr kRootTableBase = Addr{1} << 57;

/// Modelled size of a root-pointer entry.
inline constexpr Addr kRootEntryBytes = 8;

/// Address of the hardware free-list head register's memory image. The
/// free list is banked per core (each CPU carries its own O-Structure
/// Manager, paper Fig. 2), so allocations do not ping-pong one line.
inline constexpr Addr kFreeListHeadAddr = Addr{1} << 58;

constexpr Addr free_list_addr(int core) {
  return kFreeListHeadAddr + static_cast<Addr>(core) * kLineBytes;
}

/// Base of the O-structure user-visible region: slot s is the 8-byte word at
/// kOStructBase + 8*s. All pages in this region have the page-table
/// versioned bit set once allocated; conventional accesses fault.
inline constexpr Addr kOStructBase = Addr{1} << 59;

/// Base of the deterministic image of conventional (host-backed) workload
/// data. Env translates each host cache line to a synthetic line in this
/// region in first-touch order, so timing does not depend on the host
/// allocator's layout and every run is bit-reproducible.
inline constexpr Addr kConventionalBase = Addr{1} << 61;

/// Base of the compressed version-block lines: one 64-byte L1 line per
/// O-structure slot. (The paper keys compressed lines by the physical
/// address of the list head; a stable per-slot line is timing-equivalent
/// and avoids re-keying on every head change.)
inline constexpr Addr kCompressedBase = Addr{1} << 60;

/// Synthetic address of version block `index`.
constexpr Addr version_block_addr(std::uint32_t index) {
  return kVersionBlockBase + kVersionBlockBytes * static_cast<Addr>(index);
}

/// Synthetic address of the root pointer of O-structure slot `slot`.
constexpr Addr root_addr(std::uint64_t slot) {
  return kRootTableBase + kRootEntryBytes * slot;
}

/// User-visible address of O-structure slot `slot`.
constexpr Addr ostruct_addr(std::uint64_t slot) {
  return kOStructBase + 8 * slot;
}

/// Synthetic L1 line address of slot `slot`'s compressed version blocks.
constexpr Addr compressed_addr(std::uint64_t slot) {
  return kCompressedBase + static_cast<Addr>(kLineBytes) * slot;
}

/// Inverse of compressed_addr (valid only for addresses in the region).
constexpr std::uint64_t slot_of_compressed(Addr a) {
  return (a - kCompressedBase) / kLineBytes;
}

/// True if `a` lies in the compressed-line region.
constexpr bool is_compressed_addr(Addr a) {
  return a >= kCompressedBase && a < kCompressedBase + (Addr{1} << 59);
}

}  // namespace osim
