#include "core/fault_injection.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace osim {

namespace {

constexpr std::uint32_t kPpm = 1000000;

// splitmix64: the per-consultation decision hash. Statistically solid for
// rate sampling and trivially portable, so plans replay across builds.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

[[noreturn]] void bad_spec(const std::string& token, const std::string& why) {
  throw std::runtime_error("bad --inject token '" + token + "': " + why);
}

bool parse_site(const std::string& name, FaultSite* out) {
  for (int i = 0; i < kNumFaultSites; ++i) {
    const auto s = static_cast<FaultSite>(i);
    if (name == to_string(s)) {
      *out = s;
      return true;
    }
  }
  return false;
}

/// Parse "<int>[.<frac>]" with at most 6 fractional digits into ppm.
std::uint32_t parse_rate_ppm(const std::string& token,
                             const std::string& text) {
  if (text.empty()) bad_spec(token, "empty rate");
  std::size_t dot = text.find('.');
  const std::string whole = text.substr(0, dot);
  std::string frac = dot == std::string::npos ? "" : text.substr(dot + 1);
  if (whole.empty() && frac.empty()) bad_spec(token, "empty rate");
  if (frac.size() > 6) bad_spec(token, "rate has more than 6 fractional "
                                       "digits");
  for (char c : whole + frac) {
    if (c < '0' || c > '9') bad_spec(token, "rate is not a decimal number");
  }
  frac.resize(6, '0');
  const std::uint64_t ppm =
      (whole.empty() ? 0 : std::strtoull(whole.c_str(), nullptr, 10)) * kPpm +
      std::strtoull(frac.c_str(), nullptr, 10);
  if (ppm == 0 || ppm > kPpm) bad_spec(token, "rate must be in (0, 1]");
  return static_cast<std::uint32_t>(ppm);
}

std::uint64_t parse_u64(const std::string& token, const std::string& text) {
  if (text.empty()) bad_spec(token, "empty number");
  for (char c : text) {
    if (c < '0' || c > '9') bad_spec(token, "not a number");
  }
  return std::strtoull(text.c_str(), nullptr, 10);
}

/// Render ppm as a minimal decimal ("1", "0.02", "0.000001").
std::string rate_to_string(std::uint32_t ppm) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%06u", ppm / kPpm, ppm % kPpm);
  std::string s(buf);
  while (s.back() == '0') s.pop_back();
  if (s.back() == '.') s.pop_back();
  return s;
}

}  // namespace

const char* to_string(FaultSite s) {
  switch (s) {
    case FaultSite::kBlockPool:
      return "pool";
    case FaultSite::kSlotTable:
      return "slots";
    case FaultSite::kTraceShortWrite:
      return "trace-short";
    case FaultSite::kTraceEnospc:
      return "trace-enospc";
    case FaultSite::kDeadlock:
      return "deadlock";
    case FaultSite::kGcDelay:
      return "gc-delay";
  }
  return "?";
}

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;  // detached
  plan.attached = true;

  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) bad_spec(spec, "empty entry");
    if (token == "none") continue;  // attached, nothing enabled
    if (token.rfind("seed=", 0) == 0) {
      plan.seed = parse_u64(token, token.substr(5));
      continue;
    }
    std::size_t sep = token.find_first_of(":@");
    if (sep == std::string::npos) {
      bad_spec(token, "expected <site>:<rate>, <site>@<n>, seed=<n>, or "
                      "none");
    }
    FaultSite site{};
    if (!parse_site(token.substr(0, sep), &site)) {
      bad_spec(token, "unknown site (pool, slots, trace-short, "
                      "trace-enospc, deadlock, gc-delay)");
    }
    SiteSpec& ss = plan.sites[static_cast<std::size_t>(site)];
    if (token[sep] == ':') {
      if (ss.rate_ppm != 0) bad_spec(token, "duplicate rate for site");
      ss.rate_ppm = parse_rate_ppm(token, token.substr(sep + 1));
    } else {
      while (sep != std::string::npos) {
        const std::size_t next = token.find('@', sep + 1);
        const std::string num =
            token.substr(sep + 1, next == std::string::npos
                                      ? std::string::npos
                                      : next - sep - 1);
        const std::uint64_t n = parse_u64(token, num);
        if (n == 0) bad_spec(token, "firing indices are 1-based");
        ss.at.push_back(n);
        sep = next;
      }
    }
  }
  for (auto& ss : plan.sites) {
    std::sort(ss.at.begin(), ss.at.end());
    ss.at.erase(std::unique(ss.at.begin(), ss.at.end()), ss.at.end());
  }
  return plan;
}

std::string FaultPlan::to_spec() const {
  if (!attached) return {};
  std::string out;
  for (int i = 0; i < kNumFaultSites; ++i) {
    const SiteSpec& ss = sites[static_cast<std::size_t>(i)];
    const char* name = to_string(static_cast<FaultSite>(i));
    if (ss.rate_ppm != 0) {
      out += std::string(name) + ":" + rate_to_string(ss.rate_ppm) + ",";
    }
    if (!ss.at.empty()) {
      out += name;
      for (std::uint64_t n : ss.at) {
        char buf[24];
        std::snprintf(buf, sizeof buf, "@%" PRIu64, n);
        out += buf;
      }
      out += ",";
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "seed=%" PRIu64, seed);
  out += buf;
  return out;
}

bool FaultInjector::should_fire(FaultSite s) {
  const auto i = static_cast<std::size_t>(s);
  const std::uint64_t n =
      consulted_[i].fetch_add(1, std::memory_order_relaxed) + 1;
  const FaultPlan::SiteSpec& ss = plan_.sites[i];
  bool fire = std::binary_search(ss.at.begin(), ss.at.end(), n);
  if (!fire && ss.rate_ppm != 0) {
    const std::uint64_t h =
        mix64(plan_.seed ^ mix64((static_cast<std::uint64_t>(i) << 56) ^ n));
    fire = h % kPpm < ss.rate_ppm;
  }
  if (fire) fired_[i].fetch_add(1, std::memory_order_relaxed);
  return fire;
}

}  // namespace osim
