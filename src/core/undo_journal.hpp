// The shared rollback journal of abort_task() — one record type, one
// replay discipline, for both semantic engines.
//
// THE ROLLBACK-ORDER INVARIANT (documented once, here). A task's journal
// is replayed NEWEST-FIRST (reverse journal order), and every entry is
// revalidated against the live structure before it is undone:
//
//   * Newest-first is load-bearing, not cosmetic. A rename journals the
//     lock acquisition *before* the version the unlock materialized; only
//     reverse order unlinks the renamed version before releasing (or
//     observing) the lock it grew out of. Likewise a task that stored
//     v then shadowed it with v' must drop v' before restoring v's
//     block to the live list, or the restore would resurrect a block the
//     later entry is about to free.
//   * Revalidation is what makes replay safe long after the fact. The
//     serial engine names blocks by pool index, and the pool recycles
//     indices: each entry therefore carries the block's GENERATION at
//     journal time, and an entry whose block no longer matches
//     (generation, slot, version) is skipped — the GC already reclaimed
//     it and the index now belongs to someone else. The concurrent engine
//     sidesteps recycled indices by naming the undone object (slot,
//     version) — unique for the block's whole linked lifetime — and
//     leaves the generation fields defaulted; its revalidation is the
//     chain walk under the shard lock.
//
// Both engines journal through the same guard (undo_active) and replay
// through the same newest-first driver (replay_undo_newest_first); only
// the per-entry undo actions — plain list surgery vs. seqlock-windowed
// unlink — stay engine-specific, passed in as callbacks.
#pragma once

#include <cstdint>
#include <vector>

#include "core/types.hpp"
#include "core/version_block.hpp"

namespace osim {

/// One rollback-journal record: a version the task created (kStore) or a
/// lock it acquired (kLock). The serial engine fills the block-identity
/// fields (index + generations, see the invariant above); the concurrent
/// engine keys by (slot, version) alone and leaves them defaulted.
struct UndoEntry {
  enum class Kind : std::uint8_t { kStore, kLock };
  Kind kind;
  std::uint64_t slot;
  Ver version;
  BlockIndex block = kNullBlock;     ///< created block (serial kStore)
  std::uint32_t generation = 0;      ///< its generation at journal time
  BlockIndex shadowed = kNullBlock;  ///< block the insert shadowed (serial)
  std::uint32_t shadowed_gen = 0;
};

/// Journaling guard shared by both engines: a record is appended only when
/// the engine tracks aborts and a task is bound to the executing context.
inline bool undo_active(bool track_aborts, TaskId cur_task) {
  return track_aborts && cur_task != kNoTask;
}

/// What a replay undid; feeds EngineStats (core/version_engine.hpp).
struct UndoReplayCounts {
  std::uint64_t blocks = 0;  ///< kStore entries undone
  std::uint64_t locks = 0;   ///< kLock entries undone
  std::uint64_t total() const { return blocks + locks; }
};

/// Replay `journal` newest-first through the engine's undo actions. Each
/// callback revalidates its entry (see the invariant above) and returns
/// whether it actually undid anything; the tally feeds abort accounting.
template <typename UndoStoreFn, typename UndoLockFn>
UndoReplayCounts replay_undo_newest_first(const std::vector<UndoEntry>& journal,
                                          UndoStoreFn&& undo_store,
                                          UndoLockFn&& undo_lock) {
  UndoReplayCounts counts;
  for (auto it = journal.rbegin(); it != journal.rend(); ++it) {
    switch (it->kind) {
      case UndoEntry::Kind::kStore:
        if (undo_store(*it)) ++counts.blocks;
        break;
      case UndoEntry::Kind::kLock:
        if (undo_lock(*it)) ++counts.locks;
        break;
    }
  }
  return counts;
}

}  // namespace osim
