// Basic system-wide types: cycle counts, addresses, core identifiers.
//
// This is the bottom-most header of the repo: core, telemetry, analysis and
// sim all build on it, and it depends on nothing but <cstdint>.
#pragma once

#include <cstdint>

namespace osim {

/// Simulated clock cycles (the machine runs at MachineConfig::ghz).
using Cycles = std::uint64_t;

/// A simulated address. For workload data this is the host address of the
/// object (execution-driven simulation); for version blocks and O-structure
/// roots it is a synthetic address in a reserved region (see address_map.hpp).
using Addr = std::uint64_t;

/// Core identifier, dense in [0, num_cores).
using CoreId = int;

/// Task identifier in the task-parallel runtime. Task IDs double as version
/// numbers (GC rule #1 in the paper: access versions with the task ID).
using TaskId = std::uint64_t;

/// Version identifier of an O-structure version.
using Ver = std::uint64_t;

inline constexpr int kLineBytes = 64;       ///< cache line size (Table II)
inline constexpr Addr kLineMask = ~static_cast<Addr>(kLineBytes - 1);

/// Round an address down to its cache-line base.
constexpr Addr line_of(Addr a) { return a & kLineMask; }

}  // namespace osim
