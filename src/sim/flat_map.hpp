// Forwarding header: FlatMap moved to core/flat_map.hpp when the semantic
// engine was split from the simulator (both layers use it for hot lookups).
#pragma once

#include "core/flat_map.hpp"
