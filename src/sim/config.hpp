// Machine configuration. Defaults reproduce Table II of the paper:
//   Processor   2-way in-order (ARM ISA), 2 GHz
//   L1 I/D      32 KB, 8-way, 64 B lines, 4-cycle hit latency
//   L2          1.5 MB x #cores, shared, 16-way, 64 B lines, 35-cycle hit
//   Memory      64 GB, 60 ns latency (120 cycles at 2 GHz)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/ostruct_config.hpp"
#include "core/types.hpp"

namespace osim {

/// Geometry and latency of one cache level.
struct CacheConfig {
  std::size_t size_bytes = 32 * 1024;
  int ways = 8;
  int line_bytes = kLineBytes;
  Cycles hit_latency = 4;

  std::size_t num_sets() const {
    return size_bytes / (static_cast<std::size_t>(ways) * line_bytes);
  }
};

/// Which execution backend an Env builds around the VersionStore engine.
///   kTimed       the cycle-accurate fiber machine with cache models; every
///                result is deterministic simulated cycles.
///   kFunctional  host-speed in-order execution of the same versioned ISA
///                with no fibers and no cache models; results are values,
///                faults, and logical op counts — not cycles.
enum class BackendKind { kTimed, kFunctional };

inline const char* to_string(BackendKind b) {
  return b == BackendKind::kFunctional ? "functional" : "timed";
}

/// How the functional backend executes tasks.
///   kInline      spawn-order in-order execution on one host thread (the
///                default; deterministic, fault-on-would-block).
///   kConcurrent  the thread-safe ConcurrentVersionStore engine driven by a
///                work-stealing pool of real host threads (blocking ops
///                spin-then-park instead of faulting). Only benches built
///                for it accept the flag; it requires --backend=functional.
enum class ExecKind { kInline, kConcurrent };

inline const char* to_string(ExecKind e) {
  return e == ExecKind::kConcurrent ? "concurrent" : "inline";
}

/// Whole-machine configuration (Table II defaults).
struct MachineConfig {
  int num_cores = 1;
  double ghz = 2.0;
  /// 2-way in-order core: non-memory instructions retire at up to 2/cycle.
  int issue_width = 2;

  CacheConfig l1{32 * 1024, 8, kLineBytes, 4};
  /// l2.size_bytes is *per core*; effective capacity = l2_per_core * cores
  /// (Table II: "1.5MB x #cores, shared").
  std::size_t l2_per_core_bytes = 3 * 512 * 1024;  // 1.5 MB
  int l2_ways = 16;
  Cycles l2_hit_latency = 35;

  /// 60 ns at 2 GHz.
  Cycles dram_latency = 120;
  /// Cache-to-cache forward from a remote L1. The paper observes LLC and
  /// remote-L1 transfers have comparable latencies (Sec. IV-D).
  Cycles remote_l1_latency = 38;
  /// Extra cost of invalidating remote sharers on an upgrade/write miss.
  Cycles invalidate_latency = 20;

  std::size_t fiber_stack_bytes = 512 * 1024;

  /// Execution backend; Env dispatches on this (see runtime/env.hpp).
  BackendKind backend = BackendKind::kTimed;

  OStructConfig ostruct{};

  CacheConfig l2_config() const {
    return CacheConfig{l2_per_core_bytes * static_cast<std::size_t>(num_cores),
                       l2_ways, kLineBytes, l2_hit_latency};
  }
};

}  // namespace osim
