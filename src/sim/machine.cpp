#include "sim/machine.hpp"

#include <algorithm>
#include <cassert>

namespace osim {

namespace {

thread_local Machine* g_machine = nullptr;

/// Internal unwind token used to cancel fibers after a fault or deadlock.
struct CancelUnwind {};

}  // namespace

Machine::Machine(const MachineConfig& cfg)
    : cfg_(cfg),
      registry_(cfg.num_cores),
      instructions_(registry_.counter_vec(telemetry::Component::kCore,
                                          "instructions")),
      stall_cycles_(registry_.counter_vec(telemetry::Component::kCore,
                                          "stall_cycles")),
      memsys_(cfg, registry_) {
  cores_.resize(static_cast<std::size_t>(cfg.num_cores));
}

Machine::~Machine() {
  // If run() threw, parked fibers were already drained by cancel_all().
  for ([[maybe_unused]] auto& c : cores_) {
    assert(!c.fiber || !c.fiber->started() || c.fiber->finished());
  }
}

Machine& Machine::current() {
  assert(g_machine != nullptr && "no machine is running on this thread");
  return *g_machine;
}

void Machine::spawn(CoreId core, std::function<void()> body) {
  auto& ctx = cores_.at(static_cast<std::size_t>(core));
  // A core may be given a new program once its previous one finished (e.g.
  // a verification pass after the measured run); its clock carries on.
  if (ctx.fiber && !ctx.fiber->finished()) {
    throw SimError("core already has a program");
  }
  ctx.fiber.reset();
  ctx.state = CoreState::kRunnable;
  invalidate_order_cache();
  ctx.fiber = std::make_unique<Fiber>(
      [this, body = std::move(body)] {
        try {
          body();
        } catch (const CancelUnwind&) {
          // Machine-initiated teardown; nothing to record.
        } catch (const std::exception& e) {
          if (!faulted_) {
            faulted_ = true;
            fault_ = e.what();
          }
        }
      },
      cfg_.fiber_stack_bytes);
}

CoreId Machine::earliest_runnable() const {
  CoreId best = -1;
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    const auto& c = cores_[i];
    if (c.state != CoreState::kRunnable) continue;
    if (best < 0 || c.clock < cores_[static_cast<std::size_t>(best)].clock) {
      best = static_cast<CoreId>(i);
    }
  }
  return best;
}

bool Machine::i_am_earliest() const {
  if (!order_cache_valid_) {
    other_min_id_ = -1;
    for (std::size_t i = 0; i < cores_.size(); ++i) {
      const auto& c = cores_[i];
      if (static_cast<CoreId>(i) == running_) continue;
      if (c.state != CoreState::kRunnable) continue;
      if (other_min_id_ < 0 || c.clock < other_min_clock_) {
        other_min_clock_ = c.clock;
        other_min_id_ = static_cast<CoreId>(i);
      }
    }
    order_cache_valid_ = true;
  }
  if (other_min_id_ < 0) return true;
  const Cycles mine = cores_[static_cast<std::size_t>(running_)].clock;
  return other_min_clock_ > mine ||
         (other_min_clock_ == mine && other_min_id_ > running_);
}

void Machine::yield_current() {
  auto& ctx = cores_[static_cast<std::size_t>(running_)];
  ctx.fiber->yield();
  if (cancelling_) throw CancelUnwind{};
}

void Machine::sync_to_global_order() {
  assert(running_ >= 0);
  while (!i_am_earliest()) yield_current();
}

Cycles Machine::now() const {
  assert(running_ >= 0);
  return cores_[static_cast<std::size_t>(running_)].clock;
}

void Machine::advance(Cycles c) {
  assert(running_ >= 0);
  cores_[static_cast<std::size_t>(running_)].clock += c;
}

void Machine::exec(std::uint64_t n) {
  assert(running_ >= 0);
  instructions_.inc(running_, n);
  const auto width = static_cast<std::uint64_t>(cfg_.issue_width);
  advance((n + width - 1) / width);
}

void Machine::mem_access(Addr addr, AccessType type, AccessOptions opts) {
  sync_to_global_order();
  advance(memsys_.access(running_, addr, type, opts));
}

void Machine::block_on(WaitList& wl) {
  assert(running_ >= 0);
  auto& ctx = cores_[static_cast<std::size_t>(running_)];
  ctx.state = CoreState::kBlocked;
  ctx.block_start = ctx.clock;
  wl.waiters_.push_back(running_);
  yield_current();
}

void Machine::wake_all(WaitList& wl, Cycles wake_latency) {
  assert(running_ >= 0);
  const Cycles arrival = now() + wake_latency;
  for (CoreId w : wl.waiters_) {
    auto& ctx = cores_[static_cast<std::size_t>(w)];
    assert(ctx.state == CoreState::kBlocked);
    ctx.clock = std::max(ctx.clock, arrival);
    stall_cycles_.inc(w, ctx.clock - ctx.block_start);
    ctx.state = CoreState::kRunnable;
  }
  if (!wl.waiters_.empty()) invalidate_order_cache();
  wl.waiters_.clear();
}

void Machine::fault(const std::string& what) { throw SimError(what); }

void Machine::cancel_all() {
  cancelling_ = true;
  for (auto& c : cores_) {
    if (!c.fiber) continue;
    if (!c.fiber->started()) {
      c.state = CoreState::kDone;
      continue;
    }
    while (!c.fiber->finished()) {
      running_ = static_cast<CoreId>(&c - cores_.data());
      invalidate_order_cache();
      c.fiber->resume();
    }
    c.state = CoreState::kDone;
    running_ = -1;
  }
  cancelling_ = false;
}

void Machine::run() {
  if (g_machine != nullptr) throw SimError("nested Machine::run");
  g_machine = this;
  struct Reset {
    ~Reset() { g_machine = nullptr; }
  } reset;

  while (true) {
    const CoreId c = earliest_runnable();
    if (c < 0) {
      bool any_blocked = false;
      std::size_t blocked = 0;
      for (const auto& ctx : cores_) {
        if (ctx.state == CoreState::kBlocked) {
          any_blocked = true;
          ++blocked;
        }
      }
      if (!any_blocked) break;  // all programs done
      cancel_all();
      throw SimError("deadlock: " + std::to_string(blocked) +
                     " core(s) blocked with no possible wakeup");
    }
    auto& ctx = cores_[static_cast<std::size_t>(c)];
    running_ = c;
    invalidate_order_cache();
    ctx.fiber->resume();
    running_ = -1;
    if (ctx.fiber->finished()) {
      ctx.state = CoreState::kDone;
      elapsed_ = std::max(elapsed_, ctx.clock);
    }
    if (faulted_) {
      cancel_all();
      throw SimError(fault_);
    }
  }
}

}  // namespace osim
