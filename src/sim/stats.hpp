// DEPRECATED compatibility view over the telemetry metrics registry.
//
// Counters used to live here as plain struct fields that components
// mutated directly. They now live in telemetry::MetricRegistry
// (src/telemetry/metrics.hpp): components register named metrics and bump
// handle slots; new code should read them through Machine::metrics().
//
// CoreStats / MachineStats remain as *snapshots*: Machine::stats() and
// Env::stats() materialize one by name-lookup from the registry (cold path)
// so existing benches and tests keep compiling. Metrics a machine never
// registered (e.g. osm/* on a Machine without an O-structure manager) read
// as zero. The structs no longer reference live storage — mutating a
// snapshot has no effect on the machine.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/types.hpp"

namespace osim {

namespace telemetry {
class MetricRegistry;
}

/// Per-core statistics snapshot. DEPRECATED: prefer the registry
/// (Machine::metrics()) for new code.
struct CoreStats {
  std::uint64_t instructions = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l1_misses = 0;
  std::uint64_t l2_hits = 0;
  std::uint64_t l2_misses = 0;
  std::uint64_t remote_l1_fills = 0;
  std::uint64_t upgrades = 0;

  // Versioned operation accounting (O-structure subsystem).
  std::uint64_t versioned_ops = 0;
  std::uint64_t direct_hits = 0;    ///< satisfied by a compressed L1 line
  std::uint64_t full_lookups = 0;   ///< required a version-list walk
  std::uint64_t walk_blocks = 0;    ///< version blocks touched during walks
  std::uint64_t stalls = 0;         ///< versioned ops that had to block
  std::uint64_t stall_cycles = 0;   ///< cycles spent blocked
  std::uint64_t root_loads = 0;     ///< versioned accesses to a structure root
  std::uint64_t root_stalls = 0;    ///< ...of which stalled (paper Sec. IV-D)

  std::uint64_t tasks_executed = 0;

  double l1_hit_rate() const {
    const auto acc = l1_hits + l1_misses;
    return acc == 0 ? 0.0 : static_cast<double>(l1_hits) / acc;
  }
  double stall_rate() const {
    return versioned_ops == 0 ? 0.0
                              : static_cast<double>(stalls) / versioned_ops;
  }
};

/// Machine-wide statistics snapshot. DEPRECATED: prefer Machine::metrics().
struct MachineStats {
  std::vector<CoreStats> core;

  // O-structure manager / GC.
  std::uint64_t blocks_allocated = 0;
  std::uint64_t blocks_freed = 0;
  std::uint64_t gc_phases = 0;
  std::uint64_t os_traps = 0;        ///< free-list exhaustion traps
  std::uint64_t shadowed_blocks = 0;
  std::uint64_t compressed_installs = 0;
  std::uint64_t compressed_discards = 0;  ///< coherence-driven discards
  std::uint64_t compress_overflows = 0;   ///< entries outside the 14-bit range

  explicit MachineStats(int cores = 0) : core(cores) {}

  CoreStats total() const {
    CoreStats t;
    for (const auto& c : core) {
      t.instructions += c.instructions;
      t.loads += c.loads;
      t.stores += c.stores;
      t.l1_hits += c.l1_hits;
      t.l1_misses += c.l1_misses;
      t.l2_hits += c.l2_hits;
      t.l2_misses += c.l2_misses;
      t.remote_l1_fills += c.remote_l1_fills;
      t.upgrades += c.upgrades;
      t.versioned_ops += c.versioned_ops;
      t.direct_hits += c.direct_hits;
      t.full_lookups += c.full_lookups;
      t.walk_blocks += c.walk_blocks;
      t.stalls += c.stalls;
      t.stall_cycles += c.stall_cycles;
      t.root_loads += c.root_loads;
      t.root_stalls += c.root_stalls;
      t.tasks_executed += c.tasks_executed;
    }
    return t;
  }
};

/// Build the compatibility snapshot by name-lookup from the registry.
/// Unregistered metrics read as zero.
MachineStats stats_snapshot(const telemetry::MetricRegistry& reg);

/// Human-readable dump of a snapshot. DEPRECATED: the registry's own
/// dump (MetricRegistry::dump) covers every registered metric, including
/// ones this fixed format does not know about.
[[deprecated("use telemetry::MetricRegistry::dump")]]
void dump(std::ostream& os, const MachineStats& stats);

}  // namespace osim
