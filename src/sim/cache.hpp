// Tag-only set-associative cache model with LRU replacement.
//
// The simulator is execution-driven: data lives in host memory (or, for
// version blocks, in the manager's pool), so the caches track only presence,
// dirtiness and recency of 64-byte lines. That is all the paper's timing
// model needs: hit/miss classification and eviction behaviour.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "sim/types.hpp"

namespace osim {

class Cache {
 public:
  struct Eviction {
    bool valid = false;  ///< a line was evicted
    Addr line = 0;
    bool dirty = false;
  };

  explicit Cache(const CacheConfig& cfg);

  /// True if the line holding `addr` is present (does not touch recency).
  bool contains(Addr addr) const;

  /// True if the line is present *and* dirty.
  bool dirty(Addr addr) const;

  /// Probe and update recency. Returns true on hit; marks dirty on writes.
  bool access(Addr addr, bool write);

  /// Insert the line (after a miss), possibly evicting the set's LRU line.
  Eviction fill(Addr addr, bool dirty);

  /// Remove the line if present. Returns true if it was present.
  bool invalidate(Addr addr);

  /// Clear the dirty bit (after a writeback/downgrade). No-op if absent.
  void clean(Addr addr);

  /// Drop every line. Used between experiment repetitions.
  void flush();

  const CacheConfig& config() const { return cfg_; }
  std::uint64_t occupied_lines() const;

 private:
  struct Way {
    Addr tag = 0;          // full line address
    bool valid = false;
    bool dirty_ = false;
    std::uint64_t lru = 0;  // larger = more recently used
  };

  std::size_t set_index(Addr line) const {
    // Power-of-two set counts (the common case: every Table II L1) index
    // with a mask; others (e.g. the 1536-set L2) fall back to modulo.
    const std::uint64_t n = line / kLineBytes;
    return static_cast<std::size_t>(set_mask_ != 0 ? (n & set_mask_)
                                                   : n % sets_);
  }
  Way* find(Addr line);
  const Way* find(Addr line) const;

  CacheConfig cfg_;
  std::size_t sets_;
  std::uint64_t set_mask_ = 0;  // sets_ - 1 when sets_ is a power of two
  std::vector<Way> ways_;  // sets_ * cfg_.ways, row-major by set
  std::uint64_t tick_ = 0;
};

}  // namespace osim
