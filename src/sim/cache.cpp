#include "sim/cache.hpp"

#include <cassert>
#include <stdexcept>

namespace osim {

Cache::Cache(const CacheConfig& cfg) : cfg_(cfg), sets_(cfg.num_sets()) {
  if (sets_ == 0) {
    throw std::invalid_argument("cache must hold at least one set");
  }
  if (cfg_.line_bytes != kLineBytes) {
    throw std::invalid_argument("only 64-byte lines are modelled");
  }
  if ((sets_ & (sets_ - 1)) == 0) set_mask_ = sets_ - 1;
  ways_.resize(sets_ * static_cast<std::size_t>(cfg_.ways));
}

Cache::Way* Cache::find(Addr line) {
  auto* base = &ways_[set_index(line) * cfg_.ways];
  for (int i = 0; i < cfg_.ways; ++i) {
    if (base[i].valid && base[i].tag == line) return &base[i];
  }
  return nullptr;
}

const Cache::Way* Cache::find(Addr line) const {
  return const_cast<Cache*>(this)->find(line);
}

bool Cache::contains(Addr addr) const { return find(line_of(addr)) != nullptr; }

bool Cache::dirty(Addr addr) const {
  const Way* w = find(line_of(addr));
  return w != nullptr && w->dirty_;
}

bool Cache::access(Addr addr, bool write) {
  Way* w = find(line_of(addr));
  if (w == nullptr) return false;
  w->lru = ++tick_;
  if (write) w->dirty_ = true;
  return true;
}

Cache::Eviction Cache::fill(Addr addr, bool dirty) {
  const Addr line = line_of(addr);
  assert(find(line) == nullptr && "fill() of a line already present");
  auto* base = &ways_[set_index(line) * cfg_.ways];
  Way* victim = &base[0];
  for (int i = 0; i < cfg_.ways; ++i) {
    if (!base[i].valid) {
      victim = &base[i];
      break;
    }
    if (base[i].lru < victim->lru) victim = &base[i];
  }
  Eviction ev;
  if (victim->valid) {
    ev.valid = true;
    ev.line = victim->tag;
    ev.dirty = victim->dirty_;
  }
  victim->valid = true;
  victim->tag = line;
  victim->dirty_ = dirty;
  victim->lru = ++tick_;
  return ev;
}

bool Cache::invalidate(Addr addr) {
  Way* w = find(line_of(addr));
  if (w == nullptr) return false;
  w->valid = false;
  w->dirty_ = false;
  return true;
}

void Cache::clean(Addr addr) {
  if (Way* w = find(line_of(addr))) w->dirty_ = false;
}

void Cache::flush() {
  for (auto& w : ways_) w = Way{};
  tick_ = 0;
}

std::uint64_t Cache::occupied_lines() const {
  std::uint64_t n = 0;
  for (const auto& w : ways_) n += w.valid ? 1 : 0;
  return n;
}

}  // namespace osim
