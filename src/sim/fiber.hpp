// Deterministic cooperative fibers (green threads) for the simulator.
//
// Each simulated core runs its program on a fiber. The machine scheduler
// resumes the runnable fiber with the lowest local clock; the fiber yields
// back whenever it is no longer the earliest core or when it blocks on a
// versioned access. This gives bit-reproducible interleavings on one host
// thread — the property the gem5-based study relies on.
//
// Host-thread safety: the "current fiber" pointer is thread-local and a
// fiber must be resumed only on the host thread that is running its
// machine's run() call. Distinct machines (each with their own fibers) may
// therefore run concurrently on distinct host threads — see
// sim/host_pool.hpp — with no shared mutable state between them.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>

namespace osim {

class Fiber {
 public:
  using Fn = std::function<void()>;

  /// Create a fiber that will run `fn` when first resumed. The stack is
  /// heap-allocated; `stack_bytes` must accommodate the deepest workload
  /// recursion (red-black tree fixups are O(log n)).
  explicit Fiber(Fn fn, std::size_t stack_bytes = 256 * 1024);

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;
  ~Fiber();

  /// Switch from the calling (scheduler) context into the fiber. Returns
  /// when the fiber calls yield() or its function finishes. Must not be
  /// called on a finished fiber or from inside any fiber.
  void resume();

  /// Switch from inside the fiber back to whoever resumed it.
  void yield();

  bool finished() const { return finished_; }
  /// True once the fiber has been resumed at least once.
  bool started() const { return started_; }

  /// The fiber currently executing on the calling host thread, or nullptr
  /// when that thread's scheduler context is running. Thread-local: fibers
  /// on other host threads are invisible here.
  static Fiber* current();

 private:
  friend void fiber_entry_impl(Fiber*);

  void* sp_ = nullptr;         // fiber's saved stack pointer
  void* caller_sp_ = nullptr;  // resumer's saved stack pointer
  std::unique_ptr<std::byte[]> stack_;
  std::size_t stack_bytes_ = 0;
  Fn fn_;
  bool finished_ = false;
  bool started_ = false;
  // AddressSanitizer fiber-switch bookkeeping: ASan must be told the stack
  // bounds around every switch or exception unwinds on the heap-allocated
  // stack trip its "noreturn" stack unpoisoning (google/sanitizers#189).
  // Unused (and never touched) in non-sanitized builds.
  void* asan_fake_stack_ = nullptr;
  const void* asan_caller_bottom_ = nullptr;
  std::size_t asan_caller_size_ = 0;
};

}  // namespace osim
