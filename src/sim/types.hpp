// Forwarding header: the basic types moved to core/types.hpp when the
// semantic engine (core/version_store.hpp) was split from the simulator.
// Kept so existing includes of "sim/types.hpp" continue to work.
#pragma once

#include "core/types.hpp"
