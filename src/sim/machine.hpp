// The simulated multicore machine.
//
// Each core's program runs on a fiber. The scheduler always advances the
// runnable core with the lowest (clock, id) pair, and a fiber voluntarily
// yields at every shared-memory interaction point if it is no longer the
// earliest core. The result is a deterministic, timestamp-ordered
// interleaving of all memory events — the property that makes every
// experiment in this repo bit-reproducible.
//
// Blocking (stalled versioned ops, lock waits) is event-driven: a core parks
// itself on a WaitList and is re-timestamped when woken. If every core is
// blocked the machine reports deadlock rather than spinning.
//
// Host-thread safety: one Machine runs on exactly one host thread at a time
// (run() is not reentrant), and the machine a running fiber resolves via
// Machine::current() is tracked per host thread. A Machine holds no global
// mutable state, so independent machines can run concurrently on separate
// host threads (sim/host_pool.hpp) and still produce bit-identical results.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "sim/fiber.hpp"
#include "sim/memory_system.hpp"
#include "sim/stats.hpp"
#include "sim/types.hpp"
#include "telemetry/metrics.hpp"

namespace osim {

/// Thrown (out of Machine::run) when all unfinished cores are blocked and no
/// wakeup can ever arrive, or when a simulated protection fault escapes.
class SimError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Machine;

/// A queue of cores parked on some condition (a versioned address, a lock).
/// Owned by whoever models the condition; the machine only manipulates it
/// through block_on / wake_all.
class WaitList {
 public:
  bool empty() const { return waiters_.empty(); }
  std::size_t size() const { return waiters_.size(); }

 private:
  friend class Machine;
  std::vector<CoreId> waiters_;
};

class Machine {
 public:
  explicit Machine(const MachineConfig& cfg);
  ~Machine();

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  /// Install the program for `core`. Must be called before run(); each core
  /// may have at most one program per run.
  void spawn(CoreId core, std::function<void()> body);

  /// Run until every spawned core finishes. Throws SimError on deadlock or
  /// on a fault recorded by a core.
  void run();

  // ---- Core-side API (call only from inside a spawned fiber) ----

  /// The machine the running fiber belongs to. Thread-local: each host
  /// thread sees only the machine whose run() it is executing.
  static Machine& current();
  /// The id of the currently executing core.
  CoreId current_core() const { return running_; }
  /// Local clock of the currently executing core.
  Cycles now() const;

  /// Charge `c` cycles of latency to the running core.
  void advance(Cycles c);
  /// Charge `n` non-memory instructions through the issue-width model.
  void exec(std::uint64_t n);

  /// One conventional memory access through the hierarchy. Yields first if
  /// another runnable core has an earlier timestamp, so that all memory
  /// events are processed in global time order.
  void mem_access(Addr addr, AccessType type, AccessOptions opts = {});

  /// Park the running core on `wl`. Returns once another core wakes it.
  void block_on(WaitList& wl);
  /// Move every core parked on `wl` back to the run queue. Each is resumed
  /// no earlier than the waker's current time plus `wake_latency`.
  void wake_all(WaitList& wl, Cycles wake_latency);

  /// Yield until this core is the earliest runnable one. Called implicitly
  /// by mem_access; the O-structure manager calls it before versioned ops.
  void sync_to_global_order();

  /// Record a simulated fault; the machine aborts the run and rethrows.
  [[noreturn]] void fault(const std::string& what);

  // ---- Host-side accessors ----
  MemorySystem& memsys() { return memsys_; }
  /// The machine's metrics registry. Components register their counters
  /// here at construction; tools read or dump it after a run.
  telemetry::MetricRegistry& metrics() { return registry_; }
  const telemetry::MetricRegistry& metrics() const { return registry_; }
  /// DEPRECATED compatibility view: a by-value snapshot of the registry in
  /// the pre-telemetry struct layout. Mutating it has no effect.
  MachineStats stats() const { return stats_snapshot(registry_); }
  const MachineConfig& config() const { return cfg_; }
  /// Completion time: max over cores of their finish clock.
  Cycles elapsed() const { return elapsed_; }
  int num_cores() const { return cfg_.num_cores; }

 private:
  enum class CoreState { kIdle, kRunnable, kBlocked, kDone };

  struct CoreCtx {
    std::unique_ptr<Fiber> fiber;
    Cycles clock = 0;
    Cycles block_start = 0;
    CoreState state = CoreState::kIdle;
  };

  /// Earliest runnable core, or -1. Linear scan: num_cores <= 64 and the
  /// scan only happens at scheduling points.
  CoreId earliest_runnable() const;
  /// Whether the running core precedes every other runnable core in
  /// (clock, id) order. Called before every memory event, so the minimum
  /// over the *other* runnable cores is cached: while one core runs, only
  /// its own clock moves, and the cache is invalidated at the points that
  /// change other cores (resume, spawn, wake_all).
  bool i_am_earliest() const;
  void invalidate_order_cache() { order_cache_valid_ = false; }
  void yield_current();
  /// Unwind every unfinished fiber (after a fault or deadlock) so stacks are
  /// cleanly destroyed before run() rethrows.
  void cancel_all();

  MachineConfig cfg_;
  /// Declared before memsys_: components register metrics as they are
  /// constructed, and the registry must outlive every handle holder.
  telemetry::MetricRegistry registry_;
  telemetry::CounterVec instructions_;
  telemetry::CounterVec stall_cycles_;
  MemorySystem memsys_;
  std::vector<CoreCtx> cores_;
  CoreId running_ = -1;
  /// Cached (clock, id) minimum over runnable cores other than running_.
  /// Valid only while running_ executes; see i_am_earliest().
  mutable bool order_cache_valid_ = false;
  mutable Cycles other_min_clock_ = 0;
  mutable CoreId other_min_id_ = -1;
  Cycles elapsed_ = 0;
  std::string fault_;
  bool faulted_ = false;
  bool cancelling_ = false;
};

/// Convenience: the machine of the running fiber.
inline Machine& mach() { return Machine::current(); }

}  // namespace osim
