#include "sim/memory_system.hpp"

#include <cassert>

namespace osim {

namespace {
std::uint64_t bit(CoreId c) { return std::uint64_t{1} << c; }
}  // namespace

MemorySystem::MemorySystem(const MachineConfig& cfg,
                           telemetry::MetricRegistry& reg)
    : cfg_(cfg),
      counters_(static_cast<std::size_t>(cfg.num_cores)),
      l2_(cfg.l2_config()) {
  assert(cfg.num_cores >= 1 && cfg.num_cores <= 64);
  static_assert(sizeof(PerCoreCounters) == 8 * sizeof(std::uint64_t),
                "stride below assumes a dense all-uint64 struct");
  constexpr std::size_t kStride =
      sizeof(PerCoreCounters) / sizeof(std::uint64_t);
  using telemetry::Component;
  const PerCoreCounters* base = counters_.data();
  reg.counter_vec_external(Component::kCache, "loads", &base->loads, kStride);
  reg.counter_vec_external(Component::kCache, "stores", &base->stores,
                           kStride);
  reg.counter_vec_external(Component::kCache, "l1_hits", &base->l1_hits,
                           kStride);
  reg.counter_vec_external(Component::kCache, "l1_misses", &base->l1_misses,
                           kStride);
  reg.counter_vec_external(Component::kCache, "l2_hits", &base->l2_hits,
                           kStride);
  reg.counter_vec_external(Component::kCache, "l2_misses", &base->l2_misses,
                           kStride);
  reg.counter_vec_external(Component::kCache, "remote_l1_fills",
                           &base->remote_l1_fills, kStride);
  reg.counter_vec_external(Component::kCache, "upgrades", &base->upgrades,
                           kStride);
  l1s_.reserve(static_cast<std::size_t>(cfg.num_cores));
  for (int i = 0; i < cfg.num_cores; ++i) l1s_.emplace_back(cfg.l1);
}

void MemorySystem::drop_from_l1(CoreId core, Addr line) {
  if (l1s_[static_cast<std::size_t>(core)].invalidate(line)) {
    if (DirEntry* de = dir_.find(line)) {
      de->sharers &= ~bit(core);
      if (de->owner == core) de->owner = -1;
      if (de->sharers == 0 && de->owner == -1) dir_.erase(line);
    }
    if (drop_observer_) drop_observer_(core, line);
  }
}

bool MemorySystem::invalidate_copies(CoreId except, Addr line) {
  const DirEntry* de = dir_.find(line);
  if (de == nullptr) return false;
  bool any = false;
  const std::uint64_t sharers = de->sharers;
  const CoreId owner = de->owner;
  for (int c = 0; c < cfg_.num_cores; ++c) {
    if (c == except) continue;
    if ((sharers & bit(c)) != 0 || owner == c) {
      drop_from_l1(c, line);
      any = true;
    }
  }
  return any;
}

void MemorySystem::fill_l2_line(Addr line) {
  if (l2_.contains(line)) return;
  Cache::Eviction ev = l2_.fill(line, /*dirty=*/false);
  if (ev.valid) {
    // Inclusive L2: back-invalidate the victim from every L1.
    for (int c = 0; c < cfg_.num_cores; ++c) drop_from_l1(c, ev.line);
  }
}

void MemorySystem::fill_l1_line(CoreId core, Addr line, bool dirty) {
  Cache& l1 = l1s_[static_cast<std::size_t>(core)];
  // access() doubles as "touch if present": it refreshes recency and the
  // dirty bit exactly as the old contains()+access() pair did, in one probe.
  if (l1.access(line, dirty)) return;
  Cache::Eviction ev = l1.fill(line, dirty);
  if (ev.valid) {
    // Writebacks land in the (inclusive) L2; bandwidth is not modelled.
    if (DirEntry* de = dir_.find(ev.line)) {
      de->sharers &= ~bit(core);
      if (de->owner == core) de->owner = -1;
      if (de->sharers == 0 && de->owner == -1) dir_.erase(ev.line);
    }
    if (drop_observer_) drop_observer_(core, ev.line);
  }
}

Cycles MemorySystem::access(CoreId core, Addr addr, AccessType type,
                            AccessOptions opts) {
  const Addr line = line_of(addr);
  const bool write = type == AccessType::kWrite;
  PerCoreCounters& pc = counters_[static_cast<std::size_t>(core)];
  (write ? pc.stores : pc.loads)++;

  Cache& l1 = l1s_[static_cast<std::size_t>(core)];
  DirEntry& de = dir_[line];  // default-constructed if absent

  if (l1.access(line, write)) {
    pc.l1_hits++;
    Cycles lat = cfg_.l1.hit_latency;
    if (write && de.owner != core) {
      // Upgrade: invalidate the other sharers before writing.
      pc.upgrades++;
      const bool had_remote = invalidate_copies(core, line);
      if (had_remote) lat += cfg_.invalidate_latency;
      // invalidate_copies may have erased the entry; re-establish ownership.
      DirEntry& de2 = dir_[line];
      de2.sharers = bit(core);
      de2.owner = core;
    }
    return lat;
  }

  pc.l1_misses++;
  Cycles lat = cfg_.l1.hit_latency;  // tag probe before going down

  // Remote L1 holds the line modified: cache-to-cache forward.
  if (de.owner != -1 && de.owner != core) {
    pc.remote_l1_fills++;
    lat += cfg_.remote_l1_latency;
    const CoreId owner = de.owner;
    if (write) {
      drop_from_l1(owner, line);
    } else {
      // Downgrade the owner to shared; its dirty data reaches the L2.
      l1s_[static_cast<std::size_t>(owner)].clean(line);
      dir_[line].owner = -1;
      fill_l2_line(line);
    }
  } else if (l2_.access(line, /*write=*/false)) {
    pc.l2_hits++;
    lat += cfg_.l2_hit_latency;
    if (write) {
      if (invalidate_copies(core, line)) lat += cfg_.invalidate_latency;
    }
  } else {
    pc.l2_misses++;
    lat += cfg_.l2_hit_latency;  // L2 lookup that missed
    lat += cfg_.dram_latency;
    if (write && invalidate_copies(core, line)) lat += cfg_.invalidate_latency;
    fill_l2_line(line);
  }

  if (opts.fill_l1) {
    fill_l1_line(core, line, write);
    DirEntry& de2 = dir_[line];
    if (write) {
      de2.sharers = bit(core);
      de2.owner = core;
    } else {
      de2.sharers |= bit(core);
    }
  } else {
    // No-fill access: data is returned (reads) or written through to the
    // L2 (writes; the O-structure hardware keeps the compressed line as the
    // L1-resident copy instead). The line stays in L2 only.
    if (write) l2_.access(line, /*write=*/true);
    DirEntry& de2 = dir_[line];
    if (de2.sharers == 0 && de2.owner == -1) dir_.erase(line);
  }
  return lat;
}

void MemorySystem::install_line(CoreId core, Addr addr, bool dirty) {
  const Addr line = line_of(addr);
  fill_l1_line(core, line, dirty);
  DirEntry& de = dir_[line];
  de.sharers |= std::uint64_t{1} << core;
  if (dirty) de.owner = core;
}

Cycles MemorySystem::invalidate_others(CoreId except, Addr addr) {
  const Addr line = line_of(addr);
  return invalidate_copies(except, line) ? cfg_.invalidate_latency : 0;
}

bool MemorySystem::line_in_l1(CoreId core, Addr addr) const {
  return l1s_[static_cast<std::size_t>(core)].contains(line_of(addr));
}

void MemorySystem::flush_all() {
  for (auto& c : l1s_) c.flush();
  l2_.flush();
  dir_.clear();
}

}  // namespace osim
