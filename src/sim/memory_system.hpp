// Multi-core memory hierarchy: private L1s, a shared inclusive L2, DRAM, and
// an invalidation-based (MSI-style) coherence directory.
//
// Timing model (Table II + Sec. IV-D of the paper):
//   L1 hit                       4 cycles
//   L2 hit                      35 cycles
//   DRAM                       120 cycles (60 ns at 2 GHz)
//   remote-L1 forward           38 cycles ("comparable to LLC", Sec. IV-D)
//   sharer invalidation        +20 cycles on upgrades / write misses
//
// Version-list walks use `fill_l1 = false` so traversed blocks do not evict
// hot lines (the paper's cache-pollution avoidance: "only the block that
// holds the requested version is inserted into the cache").
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/cache.hpp"
#include "sim/config.hpp"
#include "sim/flat_map.hpp"
#include "sim/types.hpp"
#include "telemetry/metrics.hpp"

namespace osim {

enum class AccessType { kRead, kWrite };

struct AccessOptions {
  /// Install the line into the requester's L1 on a miss. Disabled during
  /// version-block list walks except for the final (requested) block.
  bool fill_l1 = true;
};

class MemorySystem {
 public:
  /// Registers the cache/* per-core counters in `reg`, backed by this
  /// object's packed counter block (counter_vec_external); this object and
  /// the registry must share a lifetime (both live in the Machine).
  MemorySystem(const MachineConfig& cfg, telemetry::MetricRegistry& reg);

  /// Perform one access and return its latency in cycles.
  Cycles access(CoreId core, Addr addr, AccessType type,
                AccessOptions opts = {});

  /// Invalidate `addr`'s line in every L1 except `except`. Returns the added
  /// latency (0 if no remote copies existed). Used for compressed
  /// version-block coherence (the paper's "discard on coherence message").
  Cycles invalidate_others(CoreId except, Addr addr);

  /// Install a line into `core`'s L1 without fetching it from below (the
  /// O-structure hardware *builds* compressed lines locally after a walk).
  /// Charges no latency; evictions behave as usual.
  void install_line(CoreId core, Addr addr, bool dirty);

  /// True if `addr`'s line is resident in `core`'s L1.
  bool line_in_l1(CoreId core, Addr addr) const;

  /// Observer invoked whenever a line leaves an L1 for any reason (eviction,
  /// upgrade-invalidation, back-invalidation). The O-structure manager uses
  /// it to drop compressed-line side state.
  using LineDropObserver = std::function<void(CoreId, Addr line)>;
  void set_line_drop_observer(LineDropObserver obs) {
    drop_observer_ = std::move(obs);
  }

  /// Empty all caches and the directory (between experiment phases).
  void flush_all();

  Cache& l1(CoreId core) { return l1s_[static_cast<std::size_t>(core)]; }
  const Cache& l1(CoreId core) const {
    return l1s_[static_cast<std::size_t>(core)];
  }
  Cache& l2() { return l2_; }
  const MachineConfig& config() const { return cfg_; }

 private:
  struct DirEntry {
    std::uint64_t sharers = 0;  // bitmask of cores with a (shared) copy
    CoreId owner = -1;          // core holding the line modified, or -1
  };

  void drop_from_l1(CoreId core, Addr line);
  /// Invalidate all copies except `except`; returns true if any existed.
  bool invalidate_copies(CoreId except, Addr line);
  void fill_l1_line(CoreId core, Addr line, bool dirty);
  void fill_l2_line(Addr line);

  MachineConfig cfg_;
  /// Per-core access counters, packed so each access touches a single cache
  /// line of counter state (an access bumps 2-3 of these). Registered with
  /// the machine's registry as external-storage counter vectors.
  struct PerCoreCounters {
    std::uint64_t loads = 0, stores = 0;
    std::uint64_t l1_hits = 0, l1_misses = 0;
    std::uint64_t l2_hits = 0, l2_misses = 0;
    std::uint64_t remote_l1_fills = 0, upgrades = 0;
  };
  std::vector<PerCoreCounters> counters_;  ///< fixed size; registry reads it
  std::vector<Cache> l1s_;
  Cache l2_;
  /// Coherence directory, probed on every access: a flat open-addressed
  /// map keyed by line address (see sim/flat_map.hpp).
  FlatMap<Addr, DirEntry> dir_;
  LineDropObserver drop_observer_;
};

}  // namespace osim
