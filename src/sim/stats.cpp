#include "sim/stats.hpp"

#include <iomanip>
#include <ostream>

#include "telemetry/metrics.hpp"

namespace osim {

MachineStats stats_snapshot(const telemetry::MetricRegistry& reg) {
  using telemetry::Component;
  MachineStats s(reg.num_cores());
  for (int i = 0; i < reg.num_cores(); ++i) {
    CoreStats& cs = s.core[static_cast<std::size_t>(i)];
    cs.instructions = reg.value(Component::kCore, "instructions", i);
    cs.stall_cycles = reg.value(Component::kCore, "stall_cycles", i);
    cs.loads = reg.value(Component::kCache, "loads", i);
    cs.stores = reg.value(Component::kCache, "stores", i);
    cs.l1_hits = reg.value(Component::kCache, "l1_hits", i);
    cs.l1_misses = reg.value(Component::kCache, "l1_misses", i);
    cs.l2_hits = reg.value(Component::kCache, "l2_hits", i);
    cs.l2_misses = reg.value(Component::kCache, "l2_misses", i);
    cs.remote_l1_fills = reg.value(Component::kCache, "remote_l1_fills", i);
    cs.upgrades = reg.value(Component::kCache, "upgrades", i);
    cs.versioned_ops = reg.value(Component::kOsm, "versioned_ops", i);
    cs.direct_hits = reg.value(Component::kOsm, "direct_hits", i);
    cs.full_lookups = reg.value(Component::kOsm, "full_lookups", i);
    cs.walk_blocks = reg.value(Component::kOsm, "walk_blocks", i);
    cs.stalls = reg.value(Component::kOsm, "stalls", i);
    cs.root_loads = reg.value(Component::kOsm, "root_loads", i);
    cs.root_stalls = reg.value(Component::kOsm, "root_stalls", i);
    cs.tasks_executed = reg.value(Component::kOsm, "tasks_executed", i);
  }
  s.blocks_allocated = reg.total(Component::kOsm, "blocks_allocated");
  s.blocks_freed = reg.total(Component::kOsm, "blocks_freed");
  s.os_traps = reg.total(Component::kOsm, "os_traps");
  s.compressed_installs = reg.total(Component::kOsm, "compressed_installs");
  s.compressed_discards = reg.total(Component::kOsm, "compressed_discards");
  s.compress_overflows = reg.total(Component::kOsm, "compress_overflows");
  s.gc_phases = reg.total(Component::kGc, "phases");
  s.shadowed_blocks = reg.total(Component::kGc, "shadowed_blocks");
  return s;
}

void dump(std::ostream& os, const MachineStats& stats) {
  const CoreStats t = stats.total();
  os << std::fixed << std::setprecision(3);
  os << "instructions          " << t.instructions << '\n';
  os << "loads / stores        " << t.loads << " / " << t.stores << '\n';
  os << "L1 hit rate           " << t.l1_hit_rate() << "  (" << t.l1_hits
     << " / " << (t.l1_hits + t.l1_misses) << ")\n";
  os << "L2 hits / misses      " << t.l2_hits << " / " << t.l2_misses << '\n';
  os << "remote L1 fills       " << t.remote_l1_fills << '\n';
  os << "upgrades              " << t.upgrades << '\n';
  os << "versioned ops         " << t.versioned_ops << '\n';
  os << "  direct hits         " << t.direct_hits << '\n';
  os << "  full lookups        " << t.full_lookups << "  (blocks walked "
     << t.walk_blocks << ")\n";
  os << "  stalls              " << t.stalls << "  (cycles " << t.stall_cycles
     << ")\n";
  os << "  root loads/stalls   " << t.root_loads << " / " << t.root_stalls
     << '\n';
  os << "tasks executed        " << t.tasks_executed << '\n';
  os << "version blocks        alloc " << stats.blocks_allocated << ", freed "
     << stats.blocks_freed << ", shadowed " << stats.shadowed_blocks << '\n';
  os << "GC phases             " << stats.gc_phases << "  (OS traps "
     << stats.os_traps << ")\n";
  os << "compressed lines      installs " << stats.compressed_installs
     << ", coherence discards " << stats.compressed_discards
     << ", range overflows " << stats.compress_overflows << '\n';
}

}  // namespace osim
