#include "sim/stats.hpp"

#include <iomanip>
#include <ostream>

namespace osim {

void dump(std::ostream& os, const MachineStats& stats) {
  const CoreStats t = stats.total();
  os << std::fixed << std::setprecision(3);
  os << "instructions          " << t.instructions << '\n';
  os << "loads / stores        " << t.loads << " / " << t.stores << '\n';
  os << "L1 hit rate           " << t.l1_hit_rate() << "  (" << t.l1_hits
     << " / " << (t.l1_hits + t.l1_misses) << ")\n";
  os << "L2 hits / misses      " << t.l2_hits << " / " << t.l2_misses << '\n';
  os << "remote L1 fills       " << t.remote_l1_fills << '\n';
  os << "upgrades              " << t.upgrades << '\n';
  os << "versioned ops         " << t.versioned_ops << '\n';
  os << "  direct hits         " << t.direct_hits << '\n';
  os << "  full lookups        " << t.full_lookups << "  (blocks walked "
     << t.walk_blocks << ")\n";
  os << "  stalls              " << t.stalls << "  (cycles " << t.stall_cycles
     << ")\n";
  os << "  root loads/stalls   " << t.root_loads << " / " << t.root_stalls
     << '\n';
  os << "tasks executed        " << t.tasks_executed << '\n';
  os << "version blocks        alloc " << stats.blocks_allocated << ", freed "
     << stats.blocks_freed << ", shadowed " << stats.shadowed_blocks << '\n';
  os << "GC phases             " << stats.gc_phases << "  (OS traps "
     << stats.os_traps << ")\n";
  os << "compressed lines      installs " << stats.compressed_installs
     << ", coherence discards " << stats.compressed_discards
     << ", range overflows " << stats.compress_overflows << '\n';
}

}  // namespace osim
