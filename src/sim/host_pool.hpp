// Host-side thread pool for running independent simulations in parallel.
//
// Every simulated Machine is self-contained and deterministic: the current
// machine and the current fiber are thread-local (sim/machine.cpp,
// sim/fiber.cpp), a fiber only ever runs on the host thread that owns its
// machine's run() call, and no simulator state is shared between machines.
// An experiment grid — one Machine per (workload, config, mix) cell — can
// therefore fan out across host threads and still produce bit-identical
// simulated cycles, stats, and checksums in any thread count.
//
// The pool is deliberately minimal: submit a batch of closures, workers pull
// them off an atomic cursor in submission order, the caller participates as
// the last worker. Exceptions are captured and the first (by job index) is
// rethrown after the batch drains, so a faulting cell fails the run the same
// way it would serially.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

namespace osim {

class HostPool {
 public:
  /// `threads` <= 0 selects one thread per host core.
  explicit HostPool(int threads = 0);

  int thread_count() const { return threads_; }

  /// Run every job to completion, using up to thread_count() host threads
  /// (the calling thread counts as one). Jobs must not touch shared mutable
  /// state; each typically builds, runs, and tears down one Machine. If any
  /// job throws, the batch still drains and the exception thrown by the
  /// lowest-indexed failing job is rethrown.
  void run(std::vector<std::function<void()>> jobs);

  /// Host hardware concurrency (>= 1).
  static int hardware_threads();

 private:
  int threads_;
};

}  // namespace osim
