// Forwarding header: the synthetic address regions moved to
// core/address_map.hpp when the semantic engine was split from the
// simulator (the region helpers are pure arithmetic shared by both).
#pragma once

#include "core/address_map.hpp"
