#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>

// AddressSanitizer tracks one stack per thread; switching onto a fiber's
// heap-allocated stack without telling it makes any "noreturn" event there
// (throwing an exception, longjmp) unpoison the wrong region and report
// stack-use-after-scope from the sigaltstack interceptor — the documented
// false positive in google/sanitizers#189. The fix is the fiber-switch
// annotation API: announce the destination stack before each switch and
// confirm arrival after. Compiled out entirely in non-ASan builds.
#if defined(__SANITIZE_ADDRESS__)
#define OSIM_ASAN_FIBERS 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define OSIM_ASAN_FIBERS 1
#endif
#endif

#if defined(OSIM_ASAN_FIBERS)
#include <sanitizer/common_interface_defs.h>
#endif

extern "C" {
// Defined in fiber_switch.S.
void osim_fiber_switch(void** save_sp, void* load_sp);
void osim_fiber_trampoline();
}

namespace osim {

namespace {
thread_local Fiber* g_current = nullptr;
}  // namespace

Fiber* Fiber::current() { return g_current; }

Fiber::Fiber(Fn fn, std::size_t stack_bytes)
    : stack_(new std::byte[stack_bytes]),
      stack_bytes_(stack_bytes),
      fn_(std::move(fn)) {
  // Build the fake register frame that the first osim_fiber_switch will pop:
  // six callee-saved registers (r15,r14,r13,r12,rbx,rbp from low to high
  // addresses) followed by the return address (the trampoline). The saved
  // r12 slot carries `this` so the trampoline can find the fiber.
  auto top_raw = reinterpret_cast<std::uintptr_t>(stack_.get()) + stack_bytes;
  auto* sp = reinterpret_cast<std::uint64_t*>(top_raw & ~std::uintptr_t{15});
  *--sp = 0;  // terminator slot (never used; keeps unwinders from walking off)
  *--sp = reinterpret_cast<std::uint64_t>(&osim_fiber_trampoline);  // ret addr
  *--sp = 0;                                      // rbp
  *--sp = 0;                                      // rbx
  *--sp = reinterpret_cast<std::uint64_t>(this);  // r12 -> Fiber*
  *--sp = 0;                                      // r13
  *--sp = 0;                                      // r14
  *--sp = 0;                                      // r15
  sp_ = sp;
}

Fiber::~Fiber() {
  // Destroying a started-but-unfinished fiber would leak whatever its stack
  // holds; the machine only tears down after all fibers finish or faults are
  // collected, so this is a logic error worth trapping in debug builds.
  assert(!started_ || finished_);
}

void Fiber::resume() {
  assert(!finished_ && "resume() on a finished fiber");
  assert(g_current == nullptr && "resume() must be called from the scheduler");
  started_ = true;
  g_current = this;
#if defined(OSIM_ASAN_FIBERS)
  // `fake` lives in this frame, which stays alive while the fiber runs, so
  // it doubles as the scheduler context's saved fake-stack handle.
  void* fake = nullptr;
  __sanitizer_start_switch_fiber(&fake, stack_.get(), stack_bytes_);
#endif
  osim_fiber_switch(&caller_sp_, sp_);
#if defined(OSIM_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(fake, nullptr, nullptr);
#endif
  g_current = nullptr;
}

void Fiber::yield() {
  assert(g_current == this && "yield() from outside the fiber");
#if defined(OSIM_ASAN_FIBERS)
  __sanitizer_start_switch_fiber(&asan_fake_stack_, asan_caller_bottom_,
                                 asan_caller_size_);
#endif
  osim_fiber_switch(&sp_, caller_sp_);
#if defined(OSIM_ASAN_FIBERS)
  __sanitizer_finish_switch_fiber(asan_fake_stack_, &asan_caller_bottom_,
                                  &asan_caller_size_);
#endif
}

void fiber_entry_impl(Fiber* f) {
#if defined(OSIM_ASAN_FIBERS)
  // First arrival on this stack: no prior fake-stack handle to restore;
  // record the resumer's bounds for the switches back in yield().
  __sanitizer_finish_switch_fiber(nullptr, &f->asan_caller_bottom_,
                                  &f->asan_caller_size_);
#endif
  f->fn_();
  f->finished_ = true;
  // Final switch back to the resumer; this fiber is never resumed again.
#if defined(OSIM_ASAN_FIBERS)
  // Null handle: the fiber is exiting for good, so ASan frees its fake stack.
  __sanitizer_start_switch_fiber(nullptr, f->asan_caller_bottom_,
                                 f->asan_caller_size_);
#endif
  osim_fiber_switch(&f->sp_, f->caller_sp_);
}

}  // namespace osim

extern "C" void osim_fiber_entry(osim::Fiber* f) {
  // Exceptions must not unwind through the assembly frame at the stack base.
  try {
    osim::fiber_entry_impl(f);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: exception escaped fiber: %s\n", e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fatal: exception escaped fiber\n");
    std::abort();
  }
  std::abort();  // unreachable: fiber_entry_impl switches away
}
