#include "sim/fiber.hpp"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <exception>

extern "C" {
// Defined in fiber_switch.S.
void osim_fiber_switch(void** save_sp, void* load_sp);
void osim_fiber_trampoline();
}

namespace osim {

namespace {
thread_local Fiber* g_current = nullptr;
}  // namespace

Fiber* Fiber::current() { return g_current; }

Fiber::Fiber(Fn fn, std::size_t stack_bytes)
    : stack_(new std::byte[stack_bytes]), fn_(std::move(fn)) {
  // Build the fake register frame that the first osim_fiber_switch will pop:
  // six callee-saved registers (r15,r14,r13,r12,rbx,rbp from low to high
  // addresses) followed by the return address (the trampoline). The saved
  // r12 slot carries `this` so the trampoline can find the fiber.
  auto top_raw = reinterpret_cast<std::uintptr_t>(stack_.get()) + stack_bytes;
  auto* sp = reinterpret_cast<std::uint64_t*>(top_raw & ~std::uintptr_t{15});
  *--sp = 0;  // terminator slot (never used; keeps unwinders from walking off)
  *--sp = reinterpret_cast<std::uint64_t>(&osim_fiber_trampoline);  // ret addr
  *--sp = 0;                                      // rbp
  *--sp = 0;                                      // rbx
  *--sp = reinterpret_cast<std::uint64_t>(this);  // r12 -> Fiber*
  *--sp = 0;                                      // r13
  *--sp = 0;                                      // r14
  *--sp = 0;                                      // r15
  sp_ = sp;
}

Fiber::~Fiber() {
  // Destroying a started-but-unfinished fiber would leak whatever its stack
  // holds; the machine only tears down after all fibers finish or faults are
  // collected, so this is a logic error worth trapping in debug builds.
  assert(!started_ || finished_);
}

void Fiber::resume() {
  assert(!finished_ && "resume() on a finished fiber");
  assert(g_current == nullptr && "resume() must be called from the scheduler");
  started_ = true;
  g_current = this;
  osim_fiber_switch(&caller_sp_, sp_);
  g_current = nullptr;
}

void Fiber::yield() {
  assert(g_current == this && "yield() from outside the fiber");
  osim_fiber_switch(&sp_, caller_sp_);
}

void fiber_entry_impl(Fiber* f) {
  f->fn_();
  f->finished_ = true;
  // Final switch back to the resumer; this fiber is never resumed again.
  osim_fiber_switch(&f->sp_, f->caller_sp_);
}

}  // namespace osim

extern "C" void osim_fiber_entry(osim::Fiber* f) {
  // Exceptions must not unwind through the assembly frame at the stack base.
  try {
    osim::fiber_entry_impl(f);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fatal: exception escaped fiber: %s\n", e.what());
    std::abort();
  } catch (...) {
    std::fprintf(stderr, "fatal: exception escaped fiber\n");
    std::abort();
  }
  std::abort();  // unreachable: fiber_entry_impl switches away
}
