#include "sim/host_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace osim {

int HostPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

HostPool::HostPool(int threads)
    : threads_(threads > 0 ? threads : hardware_threads()) {}

void HostPool::run(std::vector<std::function<void()>> jobs) {
  if (jobs.empty()) return;

  std::atomic<std::size_t> cursor{0};
  std::mutex fail_mu;
  std::exception_ptr first_error;
  std::size_t first_error_index = jobs.size();

  auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      try {
        jobs[i]();
      } catch (...) {
        std::lock_guard<std::mutex> lock(fail_mu);
        if (i < first_error_index) {
          first_error_index = i;
          first_error = std::current_exception();
        }
      }
    }
  };

  // The caller is one of the workers, so threads_ == 1 runs every job
  // inline on this thread — the exact serial execution path.
  const std::size_t extra =
      std::min<std::size_t>(static_cast<std::size_t>(threads_) - 1,
                            jobs.size() - 1);
  std::vector<std::thread> helpers;
  helpers.reserve(extra);
  for (std::size_t t = 0; t < extra; ++t) helpers.emplace_back(worker);
  worker();
  for (auto& h : helpers) h.join();

  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace osim
