// osim-check: the O-structure protocol checker (online front end).
//
// One invariant engine with two front ends. The *online* front end is
// CheckerSink, a telemetry::TraceSink registered on the O-structure
// manager's Tracer; it validates the protocol as events stream out of a
// run. The *static* front end (static_check.hpp) replays a workload's
// generated op stream before execution. Both produce the same structured
// Finding records, which bench/driver folds into the schema-2 JSON and
// tools/osim-report --validate enforces.
//
// Checked invariants (see DESIGN.md "Checked invariants" for the mapping
// to paper mechanisms):
//   * Determinacy races: a vector-clock detector over per-address version
//     accesses. Every LOAD-LATEST records the version *window* it
//     observed (got < v <= cap); a later STORE-VERSION landing inside a
//     recorded window without a happens-before edge to the reader (program
//     order, store->read dataflow, or lock release->acquire) means the
//     read's result depended on timing — the nondeterminism O-structures
//     exist to rule out.
//   * Version lifecycle: a per-block state machine (free -> alloc ->
//     stored -> shadowed -> pending -> free) catching double-free,
//     store-after-shadow, free-list corruption, and use-after-reclaim.
//   * Lock discipline: unlock of a never-locked version, double unlock,
//     locks held across TASK-END / end of run, and lock-ordering cycles.
//   * GC safety: no version reclaimed from a pending list while an
//     unfinished task older than its shadower could still name it.
//
// The checker consumes events only — it charges no simulated cycles and
// never touches machine state, so a checked run's cycles and checksums are
// bit-identical to an unchecked one.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "core/version_engine.hpp"
#include "telemetry/trace.hpp"

namespace osim::analysis {

enum class Severity : std::uint8_t { kWarning, kError };

/// Stable invariant identifiers; id() strings appear in JSON and reports.
enum class Invariant : std::uint8_t {
  kDeterminacyRace,    // VC-RACE
  kDoubleFree,         // LC-DOUBLE-FREE
  kStoreAfterShadow,   // LC-STORE-SHADOW
  kFreeListCorruption, // LC-FREELIST
  kUseAfterReclaim,    // LC-USE-RECLAIM
  kUnlockWithoutLock,  // LK-UNHELD
  kDoubleUnlock,       // LK-DOUBLE-UNLOCK
  kDoubleAcquire,      // LK-DOUBLE-ACQUIRE
  kLockHeldAtTaskEnd,  // LK-HELD-AT-END
  kLockOrderCycle,     // LK-ORDER-CYCLE
  kPrematureReclaim,   // GC-PREMATURE
  kWawSameVersion,     // ST-WAW
  kTaskPairing,        // ST-TASK-PAIRING
  kReadNeverWritten,   // ST-READ-UNWRITTEN
};

const char* id(Invariant inv);

struct Finding {
  Severity severity = Severity::kError;
  Invariant invariant = Invariant::kDeterminacyRace;
  Cycles time = 0;
  CoreId core = 0;
  Addr addr = 0;
  Ver version = 0;
  TaskId task = 0;        ///< primary task (e.g. the racing writer)
  TaskId other_task = 0;  ///< secondary task (e.g. the racing reader)
  std::string detail;
};

/// One line: "[error] VC-RACE @cycle ...: detail".
std::string to_string(const Finding& f);

struct CheckerOptions {
  /// Strict mode (--check=strict): warnings count as errors.
  bool strict = false;
  /// LOAD-LATEST windows remembered per address for the race detector.
  std::size_t read_window = 64;
  /// Findings kept verbatim; the rest are counted but dropped.
  std::size_t max_findings = 256;
};

class Checker {
 public:
  explicit Checker(int num_cores, CheckerOptions opt = {});

  /// Feed one trace event (any EventType; unknown types are ignored).
  void on_event(const telemetry::TraceEvent& e);

  /// End-of-run checks: locks still held, tasks begun but never ended.
  /// Idempotent; call once after the machine finishes.
  void finish();

  /// Merge an externally produced finding (the static front end).
  void add(Finding f);

  const std::vector<Finding>& findings() const { return findings_; }
  /// All findings seen, including those dropped past max_findings.
  std::uint64_t total_findings() const { return total_; }
  std::uint64_t error_count() const { return errors_; }
  std::uint64_t warning_count() const { return warnings_; }
  /// No errors (strict mode: and no warnings).
  bool clean() const { return errors_ == 0; }
  const CheckerOptions& options() const { return opt_; }

 private:
  using Clock = std::uint64_t;
  using VerKey = std::pair<Addr, Ver>;

  /// Block lifecycle states mirrored from the manager's protocol.
  enum class BState : std::uint8_t {
    kFree,
    kAlloc,    // off the free list, no version installed yet
    kStored,   // carries a live version
    kShadowed, // a newer version supersedes it
    kPending,  // swept into an active GC phase
  };

  struct Window {
    Ver got;      // version actually read
    Ver cap;      // upper bound requested
    CoreId core;  // reading core
    Clock clock;  // reader core's clock at the read
    TaskId task;  // reading task (0 when unknown)
    Cycles time;
  };

  void report(Severity sev, Invariant inv, const telemetry::TraceEvent& e,
              TaskId task, TaskId other, std::string detail);
  void tick(CoreId core) { ++vc_[static_cast<std::size_t>(core)]
                               [static_cast<std::size_t>(core)]; }
  void join(CoreId core, const std::vector<Clock>& other);
  TaskId cur_task(CoreId core) const {
    return cur_task_[static_cast<std::size_t>(core)];
  }
  BState bstate(std::uint64_t block) const;
  void set_bstate(std::uint64_t block, BState s);
  /// True if adding edge a->b to the lock-order graph closes a cycle.
  bool lock_edge_closes_cycle(Addr a, Addr b) const;

  void on_isa_op(const telemetry::TraceEvent& e);
  void on_task_aborted(const telemetry::TraceEvent& e);
  void on_version_read(const telemetry::TraceEvent& e);
  void on_version_store(const telemetry::TraceEvent& e);
  void on_lock_acquire(const telemetry::TraceEvent& e);
  void on_lock_release(const telemetry::TraceEvent& e,
                       bool flag_unheld);
  void on_block_event(const telemetry::TraceEvent& e);

  CheckerOptions opt_;
  int num_cores_;

  // Findings.
  std::vector<Finding> findings_;
  std::uint64_t total_ = 0, errors_ = 0, warnings_ = 0;
  bool finished_ = false;

  // Vector clocks, one per core, indexed by core.
  std::vector<std::vector<Clock>> vc_;
  // Current task per core, from TASK-BEGIN/TASK-END ISA events.
  std::vector<TaskId> cur_task_;

  // Race detector state.
  std::map<VerKey, std::vector<Clock>> store_vc_;    // version -> writer VC
  std::map<VerKey, std::vector<Clock>> release_vc_;  // lock -> releaser VC
  std::map<Addr, std::deque<Window>> windows_;       // LOAD-LATEST windows

  // Lock discipline.
  std::map<VerKey, TaskId> lock_owner_;  // currently held locks
  std::set<VerKey> ever_released_;       // distinguishes double unlock
  std::map<Addr, std::set<Addr>> lock_edges_;  // held -> acquired order

  // Lifecycle + GC safety.
  std::vector<BState> bstate_;             // indexed by block
  std::map<std::uint64_t, Ver> shadower_;  // block -> shadowing version
  std::set<VerKey> reclaimed_;             // freed (addr, version) pairs
  std::map<TaskId, int> live_tasks_;       // created/begun, not yet ended
};

/// Online front end: a trace sink owning a Checker. Attach to the
/// manager's tracer (the runtime Env does this for check_mode != 0).
class CheckerSink : public telemetry::TraceSink {
 public:
  explicit CheckerSink(int num_cores, CheckerOptions opt = {})
      : telemetry::TraceSink(telemetry::kAllEvents),
        checker_(num_cores, opt) {}

  void on_event(const telemetry::TraceEvent& e) override {
    checker_.on_event(e);
  }

  Checker& checker() { return checker_; }

 private:
  Checker checker_;
};

/// Ride any engine with the protocol checker: attach an owned CheckerSink
/// to the facade's tracer. Works identically for both engines; on the
/// concurrent one, engine.tracer() switches it into linearized-trace mode,
/// so attach before any ISA op runs. Returns the sink (owned by the
/// tracer) for reading the verdict after the run.
inline CheckerSink* attach_checker(VersionEngine& engine, int num_cores,
                                   CheckerOptions opt = {}) {
  return static_cast<CheckerSink*>(engine.tracer().add_sink(
      std::make_unique<CheckerSink>(num_cores, opt)));
}

}  // namespace osim::analysis
