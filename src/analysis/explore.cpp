#include "analysis/explore.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "analysis/checker.hpp"
#include "core/fault.hpp"
#include "core/version_store.hpp"
#include "runtime/functional.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace osim::analysis {

namespace {

// ---------------------------------------------------------------------------
// Cooperative scheduler
//
// One program thread runs at a time. A thread granted execution at a
// decision point runs *everything* up to its next announced point (its
// "segment"); the recorded label names where the segment began. Decision
// points are: a thread's first scheduling (kThreadStart), shard-mutex
// acquisition (kShardAcquire), the start of an optimistic read
// (kSeqReadBegin), task-lifecycle ops (kTaskOp), and resumption of a
// blocked op (kBlocked). Everything else the engine announces
// (release/retry/wake/epoch/floor) is bookkeeping inside a segment: it
// never yields, so it needs no decision and is not recorded.

class CooperativeScheduler final : public ScheduleHook {
 public:
  struct Candidate {
    int tid;
    SchedPoint label;
  };
  /// Decide which candidate runs next. Candidates are sorted by tid;
  /// `prev` is the previously granted thread (-1 at the first decision).
  /// Return an index, or -1 to abort the run (replay divergence).
  using Chooser =
      std::function<int(std::size_t step, const std::vector<Candidate>& cands,
                        int prev)>;

  CooperativeScheduler(int nthreads, Chooser chooser)
      : n_(nthreads), chooser_(std::move(chooser)), ts_(nthreads) {}

  /// Called by each managed thread before its first op. Blocks until every
  /// thread has attached (so the first decision sees all of them) and this
  /// thread is granted its kThreadStart.
  void thread_begin(int tid) {
    tls_owner() = this;
    tls_tid() = tid;
    std::unique_lock<std::mutex> lk(mu_);
    ThreadState& t = ts_[static_cast<std::size_t>(tid)];
    t.state = State::kReady;
    t.pending = {SchedKind::kThreadStart, static_cast<std::uint64_t>(tid)};
    if (++attached_ == n_) pick_next();
    wait_granted(lk, tid);
  }

  /// Called by each managed thread after its last op.
  void thread_end() {
    const int tid = tls_tid();
    {
      std::unique_lock<std::mutex> lk(mu_);
      ts_[static_cast<std::size_t>(tid)].state = State::kDone;
      ++done_;
      pick_next();
    }
    tls_owner() = nullptr;
    tls_tid() = -1;
  }

  // ---- ScheduleHook ----

  void point(SchedPoint p) override {
    if (!managed()) return;
    switch (p.kind) {
      case SchedKind::kSeqReadBegin:
      case SchedKind::kTaskOp:
        yield(p);
        break;
      default:
        break;  // bookkeeping: the segment continues
    }
  }

  void mutex_acquire(SchedPoint p) override {
    if (!managed()) return;
    yield(p);
    std::unique_lock<std::mutex> lk(mu_);
    owner_[p.obj] = tls_tid();
  }

  void mutex_release(SchedPoint p) override {
    if (!managed()) return;
    std::unique_lock<std::mutex> lk(mu_);
    auto it = owner_.find(p.obj);
    if (it != owner_.end() && it->second == tls_tid()) owner_.erase(it);
  }

  bool block(SchedPoint p) override {
    if (!managed()) return false;
    const int tid = tls_tid();
    std::unique_lock<std::mutex> lk(mu_);
    if (aborted_) return false;
    ThreadState& t = ts_[static_cast<std::size_t>(tid)];
    t.state = State::kBlocked;
    t.pending = p;  // {kBlocked, shard}: the resume label
    t.victim = false;
    pick_next();
    cv_.wait(lk, [&] {
      return aborted_.load() || (running_ == tid && t.state == State::kRunning);
    });
    if (aborted_) return false;
    if (t.victim) {
      t.victim = false;
      return false;  // deadlock: the caller faults kWouldBlock
    }
    return true;
  }

  void wake(SchedPoint p) override {
    if (!managed()) return;
    std::unique_lock<std::mutex> lk(mu_);
    for (ThreadState& t : ts_) {
      if (t.state == State::kBlocked && t.pending.obj == p.obj) {
        t.state = State::kReady;  // pending keeps the kBlocked resume label
      }
    }
    // The waker keeps running; the woken compete at the next decision.
  }

  // ---- Driver-side (after join) ----

  /// Stop scheduling: every hook becomes pass-through and every block()
  /// returns false, so all threads free-run to completion and join.
  void abort(const std::string& why) {
    std::unique_lock<std::mutex> lk(mu_);
    aborted_ = true;
    if (error_.empty()) error_ = why;
    cv_.notify_all();
  }

  const std::vector<ScheduleStep>& steps() const { return steps_; }
  const std::string& error() const { return error_; }

 private:
  enum class State { kNew, kReady, kRunning, kBlocked, kDone };
  struct ThreadState {
    State state = State::kNew;
    SchedPoint pending{SchedKind::kThreadStart, 0};
    bool victim = false;
  };

  // One thread-local binding per host thread: which scheduler (if any)
  // manages it. Hook calls from unmanaged threads — the driver doing
  // setup/inspection — pass through to the real engine paths.
  static CooperativeScheduler*& tls_owner() {
    static thread_local CooperativeScheduler* owner = nullptr;
    return owner;
  }
  static int& tls_tid() {
    static thread_local int tid = -1;
    return tid;
  }

  bool managed() const { return tls_owner() == this && !aborted_.load(); }

  void yield(SchedPoint p) {
    const int tid = tls_tid();
    std::unique_lock<std::mutex> lk(mu_);
    if (aborted_) return;
    ThreadState& t = ts_[static_cast<std::size_t>(tid)];
    t.state = State::kReady;
    t.pending = p;
    pick_next();
    wait_granted(lk, tid);
  }

  void wait_granted(std::unique_lock<std::mutex>& lk, int tid) {
    cv_.wait(lk, [&] {
      return aborted_.load() ||
             (running_ == tid &&
              ts_[static_cast<std::size_t>(tid)].state == State::kRunning);
    });
  }

  // mu_ held. Chooses and grants the next thread, or declares a deadlock
  // victim (deterministic: the lowest-tid blocked thread; no decision is
  // recorded because there is nothing to choose).
  void pick_next() {
    running_ = -1;
    if (aborted_ || done_ == n_ || attached_ < n_) {
      cv_.notify_all();
      return;
    }
    std::vector<Candidate> cands;
    for (int i = 0; i < n_; ++i) {
      const ThreadState& t = ts_[static_cast<std::size_t>(i)];
      if (t.state != State::kReady) continue;
      // Defensive: with no decision points inside shard critical sections
      // the modeled mutex is never held at a decision, but filter anyway.
      if (t.pending.kind == SchedKind::kShardAcquire &&
          owner_.count(t.pending.obj) != 0) {
        continue;
      }
      cands.push_back({i, t.pending});
    }
    if (cands.empty()) {
      for (int i = 0; i < n_; ++i) {
        ThreadState& t = ts_[static_cast<std::size_t>(i)];
        if (t.state == State::kBlocked) {
          t.victim = true;
          t.state = State::kRunning;
          running_ = i;
          cv_.notify_all();
          return;
        }
      }
      aborted_ = true;
      if (error_.empty()) error_ = "scheduler: no runnable or blocked thread";
      cv_.notify_all();
      return;
    }
    const int idx = chooser_(steps_.size(), cands, prev_);
    if (idx < 0 || idx >= static_cast<int>(cands.size())) {
      aborted_ = true;  // chooser refused (divergence; reason set by caller)
      cv_.notify_all();
      return;
    }
    const Candidate& c = cands[static_cast<std::size_t>(idx)];
    steps_.push_back({c.tid, c.label.kind, c.label.obj});
    prev_ = c.tid;
    ts_[static_cast<std::size_t>(c.tid)].state = State::kRunning;
    running_ = c.tid;
    cv_.notify_all();
  }

  const int n_;
  Chooser chooser_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<ThreadState> ts_;
  std::map<std::uint64_t, int> owner_;  // modeled shard mutex -> holder
  std::vector<ScheduleStep> steps_;
  int attached_ = 0;
  int done_ = 0;
  int running_ = -1;
  int prev_ = -1;
  std::atomic<bool> aborted_{false};
  std::string error_;
};

// ---------------------------------------------------------------------------
// Checksums and op execution

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;
  void byte(std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  }
  void u64(std::uint64_t x) {
    for (int i = 0; i < 8; ++i) byte(static_cast<std::uint8_t>(x >> (8 * i)));
  }
  void str(const std::string& s) {
    for (char c : s) byte(static_cast<std::uint8_t>(c));
    byte(0);
  }
};

// Checksum over per-op results plus the surviving version set. Engine
// error text is excluded (only the 'e' tag hashes) so a violating seeded
// schedule and its replay agree without pinning message wording, and an
// oracle comparison never depends on engine-internal strings.
std::uint64_t outcome_checksum(
    const std::vector<std::vector<OpResult>>& results,
    const std::vector<std::array<std::uint64_t, 3>>& final_state) {
  Fnv f;
  for (std::size_t t = 0; t < results.size(); ++t) {
    for (std::size_t i = 0; i < results[t].size(); ++i) {
      f.u64(t);
      f.u64(i);
      f.byte(static_cast<std::uint8_t>(results[t][i].tag));
      if (results[t][i].tag == 'v') {
        f.u64(results[t][i].value);
        f.u64(results[t][i].got);
      } else if (results[t][i].tag == 'f') {
        f.str(results[t][i].text);
      }
    }
  }
  for (const auto& e : final_state) {
    f.u64(e[0]);
    f.u64(e[1]);
    f.u64(e[2]);
  }
  return f.h;
}

/// Execute one program op against either engine (both expose the same
/// versioned-ISA member signatures). Throws what the engine throws.
template <typename Store>
OpResult exec_op(Store& s, OAddr base, const McOp& op) {
  OpResult r;
  const OAddr a = base + 8 * op.slot;
  switch (op.op) {
    case OpCode::kLoadVersion:
      r.value = s.load_version(a, op.version);
      r.got = op.version;
      break;
    case OpCode::kLoadLatest: {
      Ver found = 0;
      r.value = s.load_latest(a, op.cap, &found);
      r.got = found;
      break;
    }
    case OpCode::kStoreVersion: {
      const std::uint64_t d =
          op.data != 0 ? op.data : mc_data(op.slot, op.version);
      s.store_version(a, op.version, d);
      r.value = d;
      r.got = op.version;
      break;
    }
    case OpCode::kLockLoadVersion:
      r.value = s.lock_load_version(a, op.version, op.task);
      r.got = op.version;
      break;
    case OpCode::kLockLoadLatest: {
      Ver found = 0;
      r.value = s.lock_load_latest(a, op.cap, op.task, &found);
      r.got = found;
      break;
    }
    case OpCode::kUnlockVersion:
      s.unlock_version(a, op.version, op.task, op.rename_to);
      r.got = op.rename_to.value_or(op.version);
      break;
    case OpCode::kTaskBegin:
      s.task_begin(op.task);  // implicitly creates (both engines)
      break;
    case OpCode::kTaskEnd:
      s.task_end(op.task);
      break;
  }
  return r;
}

/// All versions the program can ever create, per final-state probing.
std::vector<Ver> version_universe(const McProgram& prog) {
  std::set<Ver> vs;
  auto scan = [&](const std::vector<McOp>& ops) {
    for (const McOp& op : ops) {
      if (op.op == OpCode::kStoreVersion) vs.insert(op.version);
      if (op.op == OpCode::kUnlockVersion && op.rename_to) {
        vs.insert(*op.rename_to);
      }
    }
  };
  scan(prog.setup);
  for (const auto& t : prog.threads) scan(t);
  return {vs.begin(), vs.end()};
}

template <typename PeekFn>
std::vector<std::array<std::uint64_t, 3>> probe_final_state(
    const McProgram& prog, PeekFn peek) {
  std::vector<std::array<std::uint64_t, 3>> out;
  const std::vector<Ver> universe = version_universe(prog);
  for (std::uint64_t slot = 0; slot < prog.nslots; ++slot) {
    for (Ver v : universe) {
      if (std::optional<std::uint64_t> d = peek(slot, v)) {
        out.push_back({slot, v, *d});
      }
    }
  }
  return out;
}

/// Position-keyed outcome comparison (schedule order never matters).
/// Engine errors compare by tag alone; messages are engine-internal.
std::string compare_outcomes(const ScheduleOutcome& got,
                             const ScheduleOutcome& want,
                             bool compare_final) {
  std::ostringstream why;
  if (got.results.size() != want.results.size()) {
    return "thread count mismatch";
  }
  for (std::size_t t = 0; t < got.results.size(); ++t) {
    if (got.results[t].size() != want.results[t].size()) {
      why << "thread " << t << " completed " << got.results[t].size()
          << " ops, reference completed " << want.results[t].size();
      return why.str();
    }
    for (std::size_t i = 0; i < got.results[t].size(); ++i) {
      const OpResult& g = got.results[t][i];
      const OpResult& w = want.results[t][i];
      if (g.tag != w.tag || (g.tag == 'v' && (g.value != w.value ||
                                              g.got != w.got)) ||
          (g.tag == 'f' && g.text != w.text)) {
        why << "thread " << t << " op " << i << ": got " << g.tag << "("
            << g.value << ", v" << g.got << ", " << g.text << "), reference "
            << w.tag << "(" << w.value << ", v" << w.got << ", " << w.text
            << ")";
        return why.str();
      }
    }
  }
  if (compare_final && got.final_state != want.final_state) {
    why << "surviving version set differs (" << got.final_state.size()
        << " vs " << want.final_state.size() << " entries)";
    return why.str();
  }
  return {};
}

// ---------------------------------------------------------------------------
// One controlled execution

ScheduleOutcome run_one(const McProgram& prog, const McOptions& opt,
                        CooperativeScheduler::Chooser chooser,
                        std::string* sched_error) {
  const int n = static_cast<int>(prog.threads.size());
  ScheduleOutcome out;
  out.results.assign(static_cast<std::size_t>(n), {});

  ConcurrentVersionStore store(prog.cfg);
  telemetry::Tracer tracer;
  CheckerSink* sink = nullptr;
  if (opt.checked) {
    auto s = std::make_unique<CheckerSink>(prog.cfg.max_threads,
                                           CheckerOptions{});
    sink = s.get();
    tracer.add_sink(std::move(s));
    store.attach_tracer(&tracer);
  }
  const OAddr base = store.alloc(prog.nslots);
  for (const McOp& op : prog.setup) {
    try {
      exec_op(store, base, op);
    } catch (const std::exception& e) {
      out.violation = true;
      out.violation_kind = "setup-error";
      out.violation_detail = e.what();
      return out;
    }
  }

  CooperativeScheduler sched(n, std::move(chooser));
  store.attach_schedule_hook(&sched);
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    threads.emplace_back([&, t] {
      sched.thread_begin(t);
      for (const McOp& op : prog.threads[static_cast<std::size_t>(t)]) {
        OpResult r;
        bool fatal = false;
        try {
          r = exec_op(store, base, op);
        } catch (const OFault& f) {
          r.tag = 'f';
          r.text = to_string(f.kind());
        } catch (const std::exception& e) {
          r.tag = 'e';
          r.text = e.what();
          fatal = true;  // the engine is in an undefined state: stop here
        }
        out.results[static_cast<std::size_t>(t)].push_back(r);
        if (fatal) break;
      }
      sched.thread_end();
    });
  }
  for (std::thread& th : threads) th.join();
  store.attach_schedule_hook(nullptr);
  out.steps = sched.steps();
  if (!sched.error().empty()) {
    if (sched_error != nullptr) *sched_error = sched.error();
    out.violation = true;
    out.violation_kind = "scheduler";
    out.violation_detail = sched.error();
    return out;
  }

  // Violation checks, cheapest and most fundamental first. The thread
  // bound must precede anything that iterates ctxs_[0..nctx_), and a
  // corrupted chain (integrity) must preclude the final-state walk.
  if (store.registered_threads() > prog.cfg.max_threads) {
    out.violation = true;
    out.violation_kind = "ctx-overshoot";
    out.violation_detail =
        std::to_string(store.registered_threads()) +
        " thread registrations against max_threads = " +
        std::to_string(prog.cfg.max_threads);
  }
  if (!out.violation && !prog.expect_engine_errors) {
    for (std::size_t t = 0; t < out.results.size() && !out.violation; ++t) {
      for (const OpResult& r : out.results[t]) {
        if (r.tag == 'e') {
          out.violation = true;
          out.violation_kind = "engine-error";
          out.violation_detail =
              "thread " + std::to_string(t) + ": " + r.text;
          break;
        }
      }
    }
  }
  if (!out.violation) {
    ConcurrentVersionStore::IntegrityReport rep = store.check_integrity();
    if (!rep.ok) {
      out.violation = true;
      out.violation_kind = "integrity";
      out.violation_detail = rep.detail;
    }
  }
  if (!out.violation && sink != nullptr) {
    Checker& ck = sink->checker();
    ck.finish();
    if (ck.error_count() > 0) {
      out.violation = true;
      out.violation_kind = "checker";
      out.violation_detail = to_string(ck.findings().front());
    }
  }
  if (!out.violation && prog.compare_final_state) {
    out.final_state = probe_final_state(prog, [&](std::uint64_t slot, Ver v) {
      return store.peek_version(base + 8 * slot, v);
    });
  }
  out.checksum = outcome_checksum(out.results, out.final_state);
  return out;
}

// ---------------------------------------------------------------------------
// Independence (sleep-set reduction)
//
// Conservative: declaring two transitions dependent is always sound. A
// granted transition runs a whole segment, so "independent" must cover
// everything the segment can touch. With reclamation inert (gc_active
// false) a segment touches only its own shard (writes/locks under the
// shard mutex, optimistic reads, wakes of that shard's waiters); task ops
// touch only the task tracker. With reclamation active, epochs and the GC
// floor couple reads, writes and task ops across shards — claim nothing.

bool mc_independent(const ScheduleStep& a, const SchedPoint& b,
                    bool gc_active) {
  if (a.kind == SchedKind::kThreadStart || b.kind == SchedKind::kThreadStart) {
    return true;  // segment up to the first announce is thread-local
  }
  if (gc_active) return false;
  const bool a_task = a.kind == SchedKind::kTaskOp;
  const bool b_task = b.kind == SchedKind::kTaskOp;
  if (a_task || b_task) return !(a_task && b_task);
  if (a.obj != b.obj) return true;  // different shards commute
  return a.kind == SchedKind::kSeqReadBegin &&
         b.kind == SchedKind::kSeqReadBegin;  // readers commute
}

// ---------------------------------------------------------------------------
// DFS exploration state

struct Level {
  std::vector<CooperativeScheduler::Candidate> cands;
  std::set<int> done;   // explored at this state
  std::set<int> sleep;  // covered elsewhere (sleep set), superset of done
  int chosen = -1;
  int prev = -1;              // thread granted at the previous level
  int preemptions_before = 0; // context switches consumed above this level
};

bool is_preemption(const Level& l) {
  if (l.prev < 0 || l.chosen == l.prev) return false;
  for (const auto& c : l.cands) {
    if (c.tid == l.prev) return true;  // prev was enabled yet descheduled
  }
  return false;
}

const CooperativeScheduler::Candidate* find_cand(
    const std::vector<CooperativeScheduler::Candidate>& cands, int tid) {
  for (const auto& c : cands) {
    if (c.tid == tid) return &c;
  }
  return nullptr;
}

bool same_candidates(const std::vector<CooperativeScheduler::Candidate>& a,
                     const std::vector<CooperativeScheduler::Candidate>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].tid != b[i].tid || a[i].label.kind != b[i].label.kind ||
        a[i].label.obj != b[i].label.obj) {
      return false;
    }
  }
  return true;
}

}  // namespace

// ---------------------------------------------------------------------------
// Public entry points

std::uint64_t mc_data(std::uint64_t slot, Ver v) {
  std::uint64_t x =
      slot * 0x9E3779B97F4A7C15ull + v * 0xBF58476D1CE4E5B9ull + 0x1234567ull;
  x ^= x >> 31;
  x *= 0xD6E8FEB86659FD93ull;
  x ^= x >> 27;
  return x | 1;  // never 0: 0 means "use the default" in McOp::data
}

ScheduleOutcome run_oracle(const McProgram& prog) {
  const int n = static_cast<int>(prog.threads.size());
  ScheduleOutcome out;
  out.results.assign(static_cast<std::size_t>(n), {});

  telemetry::MetricRegistry reg(n + 1);
  FunctionalTiming timing;
  OStructConfig ocfg;
  ocfg.initial_pool_blocks = std::size_t{1} << 12;  // litmus scale
  ocfg.gc_watermark = 0;                            // never auto-collect
  VersionStore vs(ocfg, n + 1, reg, timing);
  const OAddr base = vs.alloc(prog.nslots);
  timing.set_core(n);  // driver core, mirroring the concurrent setup path
  for (const McOp& op : prog.setup) exec_op(vs, base, op);

  // Round-robin, one op per runnable thread per round; a kWouldBlock op is
  // retried until some other thread unblocks it. A full round without
  // progress means the remaining ops can never be satisfied: fault the
  // lowest-tid blocked op — exactly the scheduler's deadlock-victim rule —
  // and keep going.
  std::vector<std::size_t> pc(static_cast<std::size_t>(n), 0);
  std::vector<bool> dead(static_cast<std::size_t>(n), false);
  auto live = [&](int t) {
    return !dead[static_cast<std::size_t>(t)] &&
           pc[static_cast<std::size_t>(t)] <
               prog.threads[static_cast<std::size_t>(t)].size();
  };
  for (;;) {
    bool any_live = false;
    bool progress = false;
    for (int t = 0; t < n; ++t) {
      if (!live(t)) continue;
      any_live = true;
      const std::size_t ti = static_cast<std::size_t>(t);
      const McOp& op = prog.threads[ti][pc[ti]];
      timing.set_core(t);
      OpResult r;
      try {
        r = exec_op(vs, base, op);
      } catch (const OFault& f) {
        if (f.kind() == FaultKind::kWouldBlock) continue;  // retry later
        r.tag = 'f';
        r.text = to_string(f.kind());
      } catch (const std::exception& e) {
        r.tag = 'e';
        r.text = e.what();
        dead[ti] = true;
      }
      out.results[ti].push_back(r);
      ++pc[ti];
      progress = true;
    }
    if (!any_live) break;
    if (!progress) {
      for (int t = 0; t < n; ++t) {
        if (!live(t)) continue;
        const std::size_t ti = static_cast<std::size_t>(t);
        OpResult r;
        r.tag = 'f';
        r.text = to_string(FaultKind::kWouldBlock);
        out.results[ti].push_back(r);
        ++pc[ti];
        break;
      }
    }
  }
  if (prog.compare_final_state) {
    out.final_state = probe_final_state(prog, [&](std::uint64_t slot, Ver v) {
      return vs.peek_version(base + 8 * slot, v);
    });
  }
  out.checksum = outcome_checksum(out.results, out.final_state);
  return out;
}

ExploreResult explore(const McProgram& prog, const McOptions& opt) {
  if (prog.threads.empty()) {
    throw std::runtime_error("explore: program has no threads");
  }
  ExploreResult res;
  std::optional<ScheduleOutcome> reference;
  if (prog.use_oracle && !prog.expect_engine_errors) {
    reference = run_oracle(prog);
  }

  std::vector<Level> path;
  std::size_t forced = 0;  // levels [0, forced) replay their chosen tid
  bool exhausted = false;
  while (!exhausted && res.schedules < opt.max_schedules) {
    std::string choose_error;
    auto chooser = [&](std::size_t step,
                       const std::vector<CooperativeScheduler::Candidate>&
                           cands,
                       int prev) -> int {
      if (step < forced) {
        Level& l = path[step];
        if (!same_candidates(l.cands, cands)) {
          choose_error = "enabled set diverged while replaying the forced "
                         "prefix at step " +
                         std::to_string(step) +
                         " (nondeterministic engine behaviour)";
          return -1;
        }
        const auto* c = find_cand(cands, l.chosen);
        return static_cast<int>(c - cands.data());
      }
      Level l;
      l.cands = cands;
      l.prev = prev;
      l.preemptions_before =
          step == 0 ? 0
                    : path[step - 1].preemptions_before +
                          (is_preemption(path[step - 1]) ? 1 : 0);
      if (step > 0) {
        // Sleep-set inheritance: a sleeper survives into the child while
        // it is independent of the transition just taken.
        const Level& parent = path[step - 1];
        const auto* chosen_cand = find_cand(parent.cands, parent.chosen);
        const ScheduleStep chosen_step{parent.chosen,
                                       chosen_cand->label.kind,
                                       chosen_cand->label.obj};
        for (int u : parent.sleep) {
          const auto* uc = find_cand(parent.cands, u);
          if (uc != nullptr &&
              mc_independent(chosen_step, uc->label, prog.gc_active)) {
            l.sleep.insert(u);
          }
        }
      }
      const bool budget_hit = opt.preemption_bound >= 0 &&
                              l.preemptions_before >= opt.preemption_bound;
      auto admissible = [&](int tid) {
        if (budget_hit && prev >= 0 && tid != prev &&
            find_cand(cands, prev) != nullptr) {
          return false;  // would preempt with no budget left
        }
        return true;
      };
      int pick = -1;
      for (const auto& c : cands) {  // lowest tid not asleep
        if (!admissible(c.tid)) continue;
        if (opt.por && l.sleep.count(c.tid) != 0) continue;
        pick = c.tid;
        break;
      }
      if (pick < 0) {
        // Every admissible candidate sleeps: this state is fully covered
        // elsewhere, but the run must still terminate — take the lowest
        // admissible thread (a redundant but sound continuation).
        for (const auto& c : cands) {
          if (admissible(c.tid)) {
            pick = c.tid;
            break;
          }
        }
      }
      if (pick < 0) pick = cands[0].tid;  // bound excluded everything
      l.chosen = pick;
      path.push_back(std::move(l));
      return static_cast<int>(find_cand(cands, pick) - cands.data());
    };

    ScheduleOutcome out = run_one(prog, opt, chooser, nullptr);
    ++res.schedules;
    res.steps_total += out.steps.size();
    res.max_depth = std::max<std::uint64_t>(res.max_depth, out.steps.size());
    if (!choose_error.empty()) {
      out.violation = true;
      out.violation_kind = "nondeterministic";
      out.violation_detail = choose_error;
    }
    if (!out.violation && !prog.expect_engine_errors) {
      if (!reference) {
        reference = out;  // self-reference: first schedule is the baseline
      } else {
        const std::string why =
            compare_outcomes(out, *reference, prog.compare_final_state);
        if (!why.empty()) {
          out.violation = true;
          out.violation_kind = "outcome-divergence";
          out.violation_detail = why;
        }
      }
    }
    if (res.schedules == 1) res.first = out;
    if (out.violation && !res.violation_found) {
      res.violation_found = true;
      res.example = out;
      if (opt.stop_on_violation) break;
    }
    if (!res.violation_found) res.example = out;

    // Backtrack: deepest level with an unexplored (awake, admissible)
    // sibling becomes the new forced frontier.
    exhausted = true;
    while (!path.empty()) {
      Level& l = path.back();
      l.done.insert(l.chosen);
      l.sleep.insert(l.chosen);  // explored: sleeps for the siblings
      const bool budget_hit =
          opt.preemption_bound >= 0 &&
          l.preemptions_before >= opt.preemption_bound;
      int next = -1;
      for (const auto& c : l.cands) {
        if (l.done.count(c.tid) != 0) continue;
        if (opt.por && l.sleep.count(c.tid) != 0) continue;
        if (budget_hit && l.prev >= 0 && c.tid != l.prev &&
            find_cand(l.cands, l.prev) != nullptr) {
          continue;
        }
        next = c.tid;
        break;
      }
      if (next >= 0) {
        l.chosen = next;
        forced = path.size();
        exhausted = false;
        break;
      }
      path.pop_back();
    }
  }
  res.complete = exhausted;
  return res;
}

// ---------------------------------------------------------------------------
// Record / replay

namespace {

const char kMagic[] = "osim-mc-schedule v1";

bool parse_kind(const std::string& name, SchedKind* out) {
  static constexpr SchedKind kAll[] = {
      SchedKind::kThreadStart, SchedKind::kShardAcquire,
      SchedKind::kShardRelease, SchedKind::kSeqReadBegin,
      SchedKind::kSeqReadRetry, SchedKind::kBlocked,
      SchedKind::kWake,         SchedKind::kEpochAdvance,
      SchedKind::kGcFloorRaise, SchedKind::kTaskOp};
  for (SchedKind k : kAll) {
    if (name == to_string(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

}  // namespace

std::string serialize_schedule(const McProgram& prog, const McOptions& opt,
                               const ScheduleOutcome& out) {
  std::string s(kMagic);
  s += '\n';
  s += "program " + prog.name + "\n";
  s += std::string("checked ") + (opt.checked ? "1" : "0") + "\n";
  s += "seeded " + std::to_string(opt.seeded) + "\n";
  // Optional line: present only for injected runs, so schedules recorded
  // before fault injection existed stay byte-identical.
  if (!prog.cfg.inject_spec.empty()) {
    s += "inject " + prog.cfg.inject_spec + "\n";
  }
  s += "steps " + std::to_string(out.steps.size()) + "\n";
  for (std::size_t i = 0; i < out.steps.size(); ++i) {
    const ScheduleStep& st = out.steps[i];
    s += std::to_string(i) + " " + std::to_string(st.tid) + " " +
         to_string(st.kind) + " " + std::to_string(st.obj) + "\n";
  }
  char hex[24];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(out.checksum));
  s += std::string("checksum ") + hex + "\n";
  s += std::string("violation ") +
       (out.violation ? "1 " + out.violation_kind : "0 -") + "\n";
  s += "end\n";
  return s;
}

ReplayFile parse_schedule(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  auto next = [&]() -> std::string& {
    ++lineno;
    if (!std::getline(in, line)) {
      throw std::runtime_error("replay file truncated at line " +
                               std::to_string(lineno));
    }
    return line;
  };
  auto fail = [&](const std::string& why) -> void {
    throw std::runtime_error("replay file line " + std::to_string(lineno) +
                             ": " + why);
  };
  if (next() != kMagic) fail("bad magic (expected \"" + std::string(kMagic) +
                             "\")");
  ReplayFile f;
  {
    std::istringstream ls(next());
    std::string key;
    if (!(ls >> key >> f.program) || key != "program") fail("expected "
                                                            "\"program "
                                                            "<name>\"");
  }
  {
    std::istringstream ls(next());
    std::string key;
    int v = 0;
    if (!(ls >> key >> v) || key != "checked" || (v != 0 && v != 1)) {
      fail("expected \"checked 0|1\"");
    }
    f.checked = v != 0;
  }
  {
    std::istringstream ls(next());
    std::string key;
    if (!(ls >> key >> f.seeded) || key != "seeded" || f.seeded < 0) {
      fail("expected \"seeded <n>\"");
    }
  }
  std::size_t nsteps = 0;
  {
    std::string& l = next();
    if (l.rfind("inject ", 0) == 0) {
      f.inject = l.substr(7);
      if (f.inject.empty()) fail("expected \"inject <spec>\"");
      next();
    }
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key >> nsteps) || key != "steps") fail("expected \"steps "
                                                       "<n>\"");
  }
  f.steps.reserve(nsteps);
  for (std::size_t i = 0; i < nsteps; ++i) {
    std::istringstream ls(next());
    std::size_t idx = 0;
    ScheduleStep st;
    std::string kind;
    if (!(ls >> idx >> st.tid >> kind >> st.obj) || idx != i || st.tid < 0) {
      fail("malformed step (expected \"" + std::to_string(i) +
           " <tid> <kind> <obj>\")");
    }
    if (!parse_kind(kind, &st.kind)) fail("unknown schedule-point kind \"" +
                                          kind + "\"");
    f.steps.push_back(st);
  }
  {
    std::istringstream ls(next());
    std::string key, hex;
    if (!(ls >> key >> hex) || key != "checksum" || hex.size() != 16 ||
        hex.find_first_not_of("0123456789abcdef") != std::string::npos) {
      fail("expected \"checksum <16 hex digits>\"");
    }
    f.checksum = std::stoull(hex, nullptr, 16);
  }
  {
    std::istringstream ls(next());
    std::string key, kind;
    int v = 0;
    if (!(ls >> key >> v >> kind) || key != "violation" ||
        (v != 0 && v != 1) || (v == 0 && kind != "-") ||
        (v == 1 && kind == "-")) {
      fail("expected \"violation 0 -\" or \"violation 1 <kind>\"");
    }
    f.violation = v != 0;
    if (f.violation) f.violation_kind = kind;
  }
  if (next() != "end") fail("expected \"end\"");
  return f;
}

ScheduleOutcome replay_schedule(const McProgram& prog, const McOptions& opt,
                                const ReplayFile& file) {
  if (file.program != prog.name) {
    throw std::runtime_error("replay file records program \"" + file.program +
                             "\", not \"" + prog.name + "\"");
  }
  if (file.seeded != opt.seeded) {
    throw std::runtime_error(
        "replay file was recorded against a build with OSIM_MC_SEEDED_BUG=" +
        std::to_string(file.seeded) + "; this engine is seeded " +
        std::to_string(opt.seeded));
  }
  if (!prog.cfg.inject_spec.empty() && prog.cfg.inject_spec != file.inject) {
    throw std::runtime_error("replay file records inject spec \"" +
                             file.inject + "\", not \"" +
                             prog.cfg.inject_spec + "\"");
  }
  McOptions ropt = opt;
  ropt.checked = file.checked;  // the mode shapes the schedule space
  // An injected schedule replays under the recorded plan; its faults are
  // part of the outcome, which no longer matches the uninjected oracle.
  McProgram rprog = prog;
  if (!file.inject.empty()) {
    rprog.cfg.inject_spec = file.inject;
    rprog.use_oracle = false;
    rprog.compare_final_state = false;
    rprog.expect_engine_errors = true;
  }
  std::string diverged;
  auto chooser =
      [&](std::size_t step,
          const std::vector<CooperativeScheduler::Candidate>& cands,
          int /*prev*/) -> int {
    if (step >= file.steps.size()) {
      diverged = "execution needs a decision at step " + std::to_string(step) +
                 " but the file records only " +
                 std::to_string(file.steps.size());
      return -1;
    }
    const ScheduleStep& want = file.steps[step];
    const auto* c = find_cand(cands, want.tid);
    if (c == nullptr) {
      diverged = "step " + std::to_string(step) + ": thread " +
                 std::to_string(want.tid) + " is not schedulable here";
      return -1;
    }
    if (c->label.kind != want.kind || c->label.obj != want.obj) {
      diverged = "step " + std::to_string(step) + ": thread " +
                 std::to_string(want.tid) + " is at " +
                 to_string(c->label.kind) + "/" +
                 std::to_string(c->label.obj) + " but the file records " +
                 to_string(want.kind) + "/" + std::to_string(want.obj);
      return -1;
    }
    return static_cast<int>(c - cands.data());
  };
  std::string sched_error;
  ScheduleOutcome out = run_one(rprog, ropt, chooser, &sched_error);
  if (!diverged.empty()) {
    throw std::runtime_error("replay diverged: " + diverged);
  }
  if (!sched_error.empty()) {
    throw std::runtime_error("replay failed: " + sched_error);
  }
  if (out.steps.size() != file.steps.size()) {
    throw std::runtime_error(
        "replay diverged: execution took " + std::to_string(out.steps.size()) +
        " decisions, the file records " + std::to_string(file.steps.size()));
  }
  // Re-validate the outcome against the reference the way explore() did,
  // so an "outcome-divergence" verdict reproduces too.
  if (!out.violation && rprog.use_oracle && !rprog.expect_engine_errors) {
    const ScheduleOutcome oracle = run_oracle(rprog);
    const std::string why =
        compare_outcomes(out, oracle, rprog.compare_final_state);
    if (!why.empty()) {
      out.violation = true;
      out.violation_kind = "outcome-divergence";
      out.violation_detail = why;
    }
  }
  return out;
}

std::string summarize_outcome(const ScheduleOutcome& out) {
  std::size_t ops = 0, faults = 0, errors = 0;
  for (const auto& tr : out.results) {
    for (const OpResult& r : tr) {
      ++ops;
      if (r.tag == 'f') ++faults;
      if (r.tag == 'e') ++errors;
    }
  }
  std::ostringstream s;
  s << out.steps.size() << " decisions, " << ops << " ops (" << faults
    << " faults, " << errors << " errors), checksum " << std::hex
    << out.checksum;
  if (out.violation) {
    s << " — VIOLATION [" << out.violation_kind << "] "
      << out.violation_detail;
  }
  return s.str();
}

}  // namespace osim::analysis
