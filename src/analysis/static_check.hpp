// osim-check: static front end of the protocol checker.
//
// Validates an abstract versioned op stream *before* execution: the ops a
// workload intends to issue, in submission order (which is task-id order
// for the tasked runner). Catches protocol bugs that would otherwise
// surface as runtime faults or deadlocks mid-run:
//   * WAW to the same version without renaming (versions are immutable;
//     the second STORE-VERSION faults at runtime)
//   * missing TASK-BEGIN / TASK-END pairing (breaks the GC's progress
//     reports, so reclamation stalls or fences wrongly)
//   * reads of versions no store in the stream ever creates (the load
//     blocks forever: a structural deadlock)
// Findings use the same record type as the online checker and merge into
// the same per-run verdict.
#pragma once

#include <vector>

#include "analysis/checker.hpp"
#include "core/types.hpp"
#include "core/version_engine.hpp"

namespace osim::analysis {

/// One abstract versioned op — the batched-execution record of the
/// VersionEngine facade (core/version_engine.hpp), which owns the field
/// definitions. The alias keeps the analysis-layer spelling while letting
/// the same streams drive static_check() and VersionEngine::execute().
using VOp = ::osim::VersionEngine::Op;

/// Run the static pass over `ops`; returns findings (empty = clean).
std::vector<Finding> static_check(const std::vector<VOp>& ops,
                                  const CheckerOptions& opt = {});

}  // namespace osim::analysis
