// osim-check: static front end of the protocol checker.
//
// Validates an abstract versioned op stream *before* execution: the ops a
// workload intends to issue, in submission order (which is task-id order
// for the tasked runner). Catches protocol bugs that would otherwise
// surface as runtime faults or deadlocks mid-run:
//   * WAW to the same version without renaming (versions are immutable;
//     the second STORE-VERSION faults at runtime)
//   * missing TASK-BEGIN / TASK-END pairing (breaks the GC's progress
//     reports, so reclamation stalls or fences wrongly)
//   * reads of versions no store in the stream ever creates (the load
//     blocks forever: a structural deadlock)
// Findings use the same record type as the online checker and merge into
// the same per-run verdict.
#pragma once

#include <optional>
#include <vector>

#include "analysis/checker.hpp"
#include "core/types.hpp"

namespace osim::analysis {

/// One abstract versioned op. `version` is the exact version stored,
/// loaded, or locked (the task id for TASK-BEGIN/END); `cap` is the bound
/// of the *-LATEST forms; `rename_to` is UNLOCK-VERSION's optional new
/// version.
struct VOp {
  OpCode op{};
  Addr addr = 0;
  Ver version = 0;
  Ver cap = 0;
  TaskId task = 0;
  std::optional<Ver> rename_to;
};

/// Run the static pass over `ops`; returns findings (empty = clean).
std::vector<Finding> static_check(const std::vector<VOp>& ops,
                                  const CheckerOptions& opt = {});

}  // namespace osim::analysis
