#include "analysis/static_check.hpp"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "core/isa.hpp"

namespace osim::analysis {

namespace {

Finding make(Severity sev, Invariant inv, const VOp& op, std::size_t index,
             std::string detail) {
  Finding f;
  f.severity = sev;
  f.invariant = inv;
  f.time = index;  // stream position, not cycles — the run never happened
  f.addr = op.addr;
  f.version = op.version;
  f.task = op.task;
  f.detail = std::move(detail);
  return f;
}

}  // namespace

std::vector<Finding> static_check(const std::vector<VOp>& ops,
                                  const CheckerOptions& opt) {
  std::vector<Finding> out;
  auto report = [&](Severity sev, Invariant inv, const VOp& op,
                    std::size_t i, std::string detail) {
    if (out.size() < opt.max_findings) {
      out.push_back(make(sev, inv, op, i, std::move(detail)));
    }
  };

  using VerKey = std::pair<Addr, Ver>;
  // Prepass: every version the stream ever creates, with the index of its
  // first creation — distinguishes "never written" (deadlock) from
  // "written later in the stream" (forward dependency, advisory).
  std::map<VerKey, std::size_t> created_at;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const VOp& op = ops[i];
    if (op.op == OpCode::kStoreVersion) {
      created_at.emplace(VerKey{op.addr, op.version}, i);
    } else if (op.op == OpCode::kUnlockVersion && op.rename_to) {
      created_at.emplace(VerKey{op.addr, *op.rename_to}, i);
    }
  }

  auto check_read = [&](const VOp& op, std::size_t i, Ver v) {
    auto it = created_at.find({op.addr, v});
    if (it == created_at.end()) {
      report(Severity::kError, Invariant::kReadNeverWritten, op, i,
             "reads version " + std::to_string(v) + " of addr " +
                 std::to_string(op.addr) +
                 " which no op in the stream creates (would block forever)");
    } else if (it->second > i) {
      report(Severity::kWarning, Invariant::kReadNeverWritten, op, i,
             "reads version " + std::to_string(v) + " of addr " +
                 std::to_string(op.addr) +
                 " created only later in the stream (op " +
                 std::to_string(it->second) + ")");
    }
  };

  std::set<VerKey> written;      // versions created so far
  std::map<TaskId, std::size_t> open_tasks;  // begun, not yet ended

  auto check_create = [&](const VOp& op, std::size_t i, Ver v,
                          const char* what) {
    if (!written.insert({op.addr, v}).second) {
      report(Severity::kError, Invariant::kWawSameVersion, op, i,
             std::string(what) + " re-creates version " + std::to_string(v) +
                 " of addr " + std::to_string(op.addr) +
                 " (WAW without renaming; versions are immutable)");
    }
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const VOp& op = ops[i];
    switch (op.op) {
      case OpCode::kStoreVersion:
        check_create(op, i, op.version, "STORE-VERSION");
        break;
      case OpCode::kUnlockVersion:
        if (op.rename_to) {
          check_create(op, i, *op.rename_to, "UNLOCK-VERSION rename");
        }
        break;
      case OpCode::kLoadVersion:
      case OpCode::kLockLoadVersion:
        check_read(op, i, op.version);
        break;
      case OpCode::kLoadLatest:
      case OpCode::kLockLoadLatest: {
        // Satisfiable iff some version <= cap is ever created at the addr.
        bool any = false;
        for (auto it = created_at.lower_bound({op.addr, 0});
             it != created_at.end() && it->first.first == op.addr; ++it) {
          if (it->first.second <= op.cap) {
            any = true;
            break;
          }
        }
        if (!any) {
          report(Severity::kError, Invariant::kReadNeverWritten, op, i,
                 "LOAD-LATEST(cap=" + std::to_string(op.cap) + ") of addr " +
                     std::to_string(op.addr) +
                     " which never holds a version that old");
        }
        break;
      }
      case OpCode::kTaskBegin:
        if (!open_tasks.emplace(op.task, i).second) {
          report(Severity::kError, Invariant::kTaskPairing, op, i,
                 "TASK-BEGIN for task " + std::to_string(op.task) +
                     " which is already running");
        }
        break;
      case OpCode::kTaskEnd:
        if (open_tasks.erase(op.task) == 0) {
          report(Severity::kError, Invariant::kTaskPairing, op, i,
                 "TASK-END for task " + std::to_string(op.task) +
                     " without a matching TASK-BEGIN");
        }
        break;
    }
  }
  for (const auto& [t, i] : open_tasks) {
    VOp end;
    end.op = OpCode::kTaskEnd;
    end.task = t;
    report(Severity::kError, Invariant::kTaskPairing, end, i,
           "TASK-BEGIN for task " + std::to_string(t) +
               " is never matched by a TASK-END");
  }
  return out;
}

}  // namespace osim::analysis
