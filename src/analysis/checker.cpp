#include "analysis/checker.hpp"

#include <algorithm>

#include "core/isa.hpp"

namespace osim::analysis {

const char* id(Invariant inv) {
  switch (inv) {
    case Invariant::kDeterminacyRace:
      return "VC-RACE";
    case Invariant::kDoubleFree:
      return "LC-DOUBLE-FREE";
    case Invariant::kStoreAfterShadow:
      return "LC-STORE-SHADOW";
    case Invariant::kFreeListCorruption:
      return "LC-FREELIST";
    case Invariant::kUseAfterReclaim:
      return "LC-USE-RECLAIM";
    case Invariant::kUnlockWithoutLock:
      return "LK-UNHELD";
    case Invariant::kDoubleUnlock:
      return "LK-DOUBLE-UNLOCK";
    case Invariant::kDoubleAcquire:
      return "LK-DOUBLE-ACQUIRE";
    case Invariant::kLockHeldAtTaskEnd:
      return "LK-HELD-AT-END";
    case Invariant::kLockOrderCycle:
      return "LK-ORDER-CYCLE";
    case Invariant::kPrematureReclaim:
      return "GC-PREMATURE";
    case Invariant::kWawSameVersion:
      return "ST-WAW";
    case Invariant::kTaskPairing:
      return "ST-TASK-PAIRING";
    case Invariant::kReadNeverWritten:
      return "ST-READ-UNWRITTEN";
  }
  return "?";
}

std::string to_string(const Finding& f) {
  std::string s = f.severity == Severity::kError ? "[error] " : "[warning] ";
  s += id(f.invariant);
  s += " @" + std::to_string(f.time);
  if (f.addr != 0) s += " addr=" + std::to_string(f.addr);
  if (f.version != 0) s += " v=" + std::to_string(f.version);
  if (f.task != 0) s += " task=" + std::to_string(f.task);
  if (f.other_task != 0) s += " other=" + std::to_string(f.other_task);
  s += ": " + f.detail;
  return s;
}

Checker::Checker(int num_cores, CheckerOptions opt)
    : opt_(opt),
      num_cores_(std::max(num_cores, 1)),
      vc_(static_cast<std::size_t>(num_cores_),
          std::vector<Clock>(static_cast<std::size_t>(num_cores_), 0)),
      cur_task_(static_cast<std::size_t>(num_cores_), 0) {}

void Checker::report(Severity sev, Invariant inv,
                     const telemetry::TraceEvent& e, TaskId task,
                     TaskId other, std::string detail) {
  ++total_;
  if (sev == Severity::kError || opt_.strict) {
    ++errors_;
  } else {
    ++warnings_;
  }
  if (findings_.size() >= opt_.max_findings) return;
  Finding f;
  f.severity = sev;
  f.invariant = inv;
  f.time = e.time;
  f.core = e.core;
  f.addr = e.addr;
  f.version = e.version;
  f.task = task;
  f.other_task = other;
  f.detail = std::move(detail);
  findings_.push_back(std::move(f));
}

void Checker::add(Finding f) {
  ++total_;
  if (f.severity == Severity::kError || opt_.strict) {
    ++errors_;
  } else {
    ++warnings_;
  }
  if (findings_.size() < opt_.max_findings) findings_.push_back(std::move(f));
}

void Checker::join(CoreId core, const std::vector<Clock>& other) {
  std::vector<Clock>& mine = vc_[static_cast<std::size_t>(core)];
  const std::size_t n = std::min(mine.size(), other.size());
  for (std::size_t i = 0; i < n; ++i) mine[i] = std::max(mine[i], other[i]);
}

Checker::BState Checker::bstate(std::uint64_t block) const {
  return block < bstate_.size() ? bstate_[block] : BState::kFree;
}

void Checker::set_bstate(std::uint64_t block, BState s) {
  if (block >= bstate_.size()) bstate_.resize(block + 1, BState::kFree);
  bstate_[block] = s;
}

bool Checker::lock_edge_closes_cycle(Addr a, Addr b) const {
  // Would edge a->b close a cycle, i.e. is a reachable from b already?
  std::vector<Addr> stack{b};
  std::set<Addr> seen;
  while (!stack.empty()) {
    const Addr n = stack.back();
    stack.pop_back();
    if (n == a) return true;
    if (!seen.insert(n).second) continue;
    auto it = lock_edges_.find(n);
    if (it == lock_edges_.end()) continue;
    for (Addr next : it->second) stack.push_back(next);
  }
  return false;
}

void Checker::on_event(const telemetry::TraceEvent& e) {
  switch (e.type) {
    case telemetry::EventType::kIsaOp:
      on_isa_op(e);
      break;
    case telemetry::EventType::kVersionRead:
      on_version_read(e);
      break;
    case telemetry::EventType::kVersionStore:
      on_version_store(e);
      break;
    case telemetry::EventType::kLockAcquire:
      on_lock_acquire(e);
      break;
    case telemetry::EventType::kLockRelease:
      // In a live run an illegal unlock faults before kLockRelease is
      // emitted and the kIsaOp handler has already flagged it; flagging
      // here as well covers synthetic/offline streams without ISA events.
      on_lock_release(e, /*flag_unheld=*/true);
      break;
    case telemetry::EventType::kBlockAlloc:
    case telemetry::EventType::kBlockShadowed:
    case telemetry::EventType::kBlockRestored:
    case telemetry::EventType::kBlockPending:
    case telemetry::EventType::kBlockFreed:
      on_block_event(e);
      break;
    case telemetry::EventType::kTaskCreated:
      live_tasks_[e.version]++;
      break;
    case telemetry::EventType::kTaskAborted:
      on_task_aborted(e);
      break;
    default:
      break;  // GC phase boundaries, OS traps: nothing to validate
  }
}

void Checker::on_isa_op(const telemetry::TraceEvent& e) {
  const auto ci = static_cast<std::size_t>(e.core);
  switch (e.op) {
    case OpCode::kTaskBegin: {
      const TaskId t = e.version;
      cur_task_[ci] = t;
      if (live_tasks_.find(t) == live_tasks_.end()) live_tasks_[t] = 1;
      break;
    }
    case OpCode::kTaskEnd: {
      const TaskId t = e.version;
      for (const auto& [key, owner] : lock_owner_) {
        if (owner == t) {
          report(Severity::kError, Invariant::kLockHeldAtTaskEnd, e, t, 0,
                 "TASK-END with version " + std::to_string(key.second) +
                     " of addr " + std::to_string(key.first) +
                     " still locked");
        }
      }
      auto it = live_tasks_.find(t);
      if (it != live_tasks_.end() && --it->second == 0) live_tasks_.erase(it);
      cur_task_[ci] = 0;
      break;
    }
    case OpCode::kUnlockVersion: {
      // The ISA event fires before the manager validates, so this is where
      // illegal unlocks (which fault without a kLockRelease) get flagged.
      const VerKey key{e.addr, e.version};
      if (lock_owner_.find(key) == lock_owner_.end()) {
        const bool again = ever_released_.count(key) > 0;
        report(Severity::kError,
               again ? Invariant::kDoubleUnlock
                     : Invariant::kUnlockWithoutLock,
               e, cur_task(e.core), 0,
               again ? "UNLOCK-VERSION of a version already unlocked"
                     : "UNLOCK-VERSION of a version that was never locked");
      }
      break;
    }
    default:
      break;  // loads/stores are validated on their lifecycle events
  }
}

void Checker::on_task_aborted(const telemetry::TraceEvent& e) {
  // Post-abort invariant: the engine released every lock the task held
  // (as kLockRelease events preceding this one) and freed its created
  // versions (kBlockFreed). A lock still owned here leaked the rollback.
  const TaskId t = e.version;
  for (const auto& [key, owner] : lock_owner_) {
    if (owner == t) {
      report(Severity::kError, Invariant::kLockHeldAtTaskEnd, e, t, 0,
             "TASK-ABORTED with version " + std::to_string(key.second) +
                 " of addr " + std::to_string(key.first) +
                 " still locked (rollback leaked a lock)");
    }
  }
  // The task is no longer running anywhere, but stays live for the GC
  // invariants until the runtime retries (TASK-BEGIN) or retires
  // (TASK-END) it — mirroring the engine's unfinished-task tracking.
  for (TaskId& ct : cur_task_) {
    if (ct == t) ct = 0;
  }
}

void Checker::on_version_read(const telemetry::TraceEvent& e) {
  tick(e.core);
  const VerKey key{e.addr, e.version};
  if (reclaimed_.count(key) > 0) {
    report(Severity::kError, Invariant::kUseAfterReclaim, e,
           cur_task(e.core), 0,
           "read of version " + std::to_string(e.version) +
               " after it was reclaimed");
  }
  auto it = store_vc_.find(key);
  if (it != store_vc_.end()) join(e.core, it->second);  // dataflow edge
  // LOAD-LATEST resolved below its cap: remember the open window
  // (got, cap] so a later store into it can be flagged as a race.
  const bool latest =
      e.op == OpCode::kLoadLatest || e.op == OpCode::kLockLoadLatest;
  if (latest && e.version < e.arg) {
    auto& wins = windows_[e.addr];
    const auto ci = static_cast<std::size_t>(e.core);
    wins.push_back({e.version, e.arg, e.core, vc_[ci][ci], cur_task(e.core),
                    e.time});
    while (wins.size() > opt_.read_window) wins.pop_front();
  }
}

void Checker::on_version_store(const telemetry::TraceEvent& e) {
  tick(e.core);
  const TaskId writer = cur_task(e.core);
  const auto ci = static_cast<std::size_t>(e.core);

  // Determinacy-race detection: this store lands inside a previously
  // recorded LOAD-LATEST window iff a reader asked for "latest <= cap" and
  // got an older version than the one being created now. Unless the reader
  // happens-before this store, the read's outcome depended on timing.
  auto wit = windows_.find(e.addr);
  if (wit != windows_.end()) {
    for (const Window& w : wit->second) {
      if (!(w.got < e.version && e.version <= w.cap)) continue;
      if (writer != 0 && writer == w.task) continue;  // same task
      if (vc_[ci][static_cast<std::size_t>(w.core)] >= w.clock) continue;
      report(Severity::kError, Invariant::kDeterminacyRace, e, writer,
             w.task,
             "STORE-VERSION " + std::to_string(e.version) +
                 " races LOAD-LATEST(cap=" + std::to_string(w.cap) +
                 ") that returned " + std::to_string(w.got) + " at cycle " +
                 std::to_string(w.time) + " with no ordering edge");
    }
  }

  const VerKey key{e.addr, e.version};
  store_vc_[key] = vc_[ci];
  reclaimed_.erase(key);

  // Lifecycle: the store installs a version on block e.arg.
  const std::uint64_t block = e.arg;
  switch (bstate(block)) {
    case BState::kAlloc:
      break;  // the legal path
    case BState::kFree:
      report(Severity::kError, Invariant::kUseAfterReclaim, e, writer, 0,
             "version stored on block " + std::to_string(block) +
                 " which is on the free list");
      break;
    case BState::kStored:
      report(Severity::kError, Invariant::kFreeListCorruption, e, writer, 0,
             "block " + std::to_string(block) +
                 " stored twice without being freed");
      break;
    case BState::kShadowed:
    case BState::kPending:
      report(Severity::kError, Invariant::kStoreAfterShadow, e, writer, 0,
             "store to block " + std::to_string(block) +
                 " after it was shadowed");
      break;
  }
  set_bstate(block, BState::kStored);
}

void Checker::on_lock_acquire(const telemetry::TraceEvent& e) {
  tick(e.core);
  const TaskId locker = e.arg != 0 ? e.arg : cur_task(e.core);
  const VerKey key{e.addr, e.version};
  auto it = lock_owner_.find(key);
  if (it != lock_owner_.end()) {
    report(Severity::kError, Invariant::kDoubleAcquire, e, locker,
           it->second,
           "lock acquired while already held by task " +
               std::to_string(it->second));
  }
  // Lock-order edges: acquiring B while holding A establishes A < B; a
  // cycle in that relation means two tasks can deadlock.
  for (const auto& [held, owner] : lock_owner_) {
    if (owner != locker || held.first == e.addr) continue;
    if (lock_edges_[held.first].insert(e.addr).second) {
      if (lock_edge_closes_cycle(held.first, e.addr)) {
        report(Severity::kWarning, Invariant::kLockOrderCycle, e, locker, 0,
               "lock order cycle: addr " + std::to_string(e.addr) +
                   " acquired while holding addr " +
                   std::to_string(held.first) +
                   ", which is also acquired after it");
      }
    }
  }
  lock_owner_[key] = locker;
  auto rit = release_vc_.find(key);
  if (rit != release_vc_.end()) join(e.core, rit->second);  // lock edge
}

void Checker::on_lock_release(const telemetry::TraceEvent& e,
                              bool flag_unheld) {
  tick(e.core);
  const VerKey key{e.addr, e.version};
  auto it = lock_owner_.find(key);
  if (it == lock_owner_.end()) {
    if (flag_unheld) {
      const bool again = ever_released_.count(key) > 0;
      report(Severity::kError,
             again ? Invariant::kDoubleUnlock : Invariant::kUnlockWithoutLock,
             e, e.arg, 0,
             again ? "release of a version already unlocked"
                   : "release of a version that was never locked");
    }
  } else {
    lock_owner_.erase(it);
  }
  release_vc_[key] = vc_[static_cast<std::size_t>(e.core)];
  ever_released_.insert(key);
}

void Checker::on_block_event(const telemetry::TraceEvent& e) {
  tick(e.core);
  const std::uint64_t block = e.arg;
  switch (e.type) {
    case telemetry::EventType::kBlockAlloc:
      if (bstate(block) != BState::kFree) {
        report(Severity::kError, Invariant::kFreeListCorruption, e,
               cur_task(e.core), 0,
               "block " + std::to_string(block) +
                   " allocated while not on the free list");
      }
      set_bstate(block, BState::kAlloc);
      break;
    case telemetry::EventType::kBlockShadowed:
      if (bstate(block) != BState::kStored) {
        report(Severity::kWarning, Invariant::kFreeListCorruption, e,
               cur_task(e.core), 0,
               "block " + std::to_string(block) +
                   " shadowed while not carrying a live version");
      }
      set_bstate(block, BState::kShadowed);
      shadower_[block] = e.version;  // the shadowing version fences readers
      break;
    case telemetry::EventType::kBlockRestored:
      // Abort rollback un-shadowed the block: the version it carries is
      // the slot's effective head again, so a later store may legally
      // re-shadow it.
      if (bstate(block) != BState::kShadowed &&
          bstate(block) != BState::kPending) {
        report(Severity::kWarning, Invariant::kFreeListCorruption, e,
               cur_task(e.core), 0,
               "block " + std::to_string(block) +
                   " restored while not shadowed");
      }
      set_bstate(block, BState::kStored);
      shadower_.erase(block);
      break;
    case telemetry::EventType::kBlockPending:
      if (bstate(block) != BState::kShadowed) {
        report(Severity::kWarning, Invariant::kFreeListCorruption, e,
               cur_task(e.core), 0,
               "block " + std::to_string(block) +
                   " entered a GC phase without being shadowed");
      }
      set_bstate(block, BState::kPending);
      break;
    case telemetry::EventType::kBlockFreed: {
      const BState s = bstate(block);
      if (s == BState::kFree) {
        report(Severity::kError, Invariant::kDoubleFree, e, cur_task(e.core),
               0, "block " + std::to_string(block) + " freed twice");
      } else if (s == BState::kPending) {
        // GC safety: a pending block holding version v and shadowed by s
        // may only be reclaimed once no unfinished task id lies in the
        // half-open range [v, s). Task ids double as LOAD-LATEST caps, so
        // only a task in that range can still name the shadowed version: an
        // older task's cap resolves below v, a younger task's at or above
        // s. (This range rule admits both shipped GC policies — the paper's
        // fence reclamation satisfies it a fortiori, since it waits for
        // *every* task older than the shadower.)
        auto sh = shadower_.find(block);
        if (sh != shadower_.end()) {
          const auto it = live_tasks_.lower_bound(e.version);
          if (it != live_tasks_.end() && it->first < sh->second) {
            report(Severity::kError, Invariant::kPrematureReclaim, e,
                   it->first, sh->second,
                   "block " + std::to_string(block) + " (version " +
                       std::to_string(e.version) +
                       ") reclaimed while task " + std::to_string(it->first) +
                       " (a possible reader in [" +
                       std::to_string(e.version) + ", " +
                       std::to_string(sh->second) + ")) is unfinished");
          }
        }
      }
      set_bstate(block, BState::kFree);
      shadower_.erase(block);
      if (e.addr != 0) {
        const VerKey key{e.addr, e.version};
        reclaimed_.insert(key);
        store_vc_.erase(key);
        release_vc_.erase(key);
        lock_owner_.erase(key);
      }
      break;
    }
    default:
      break;
  }
}

void Checker::finish() {
  if (finished_) return;
  finished_ = true;
  telemetry::TraceEvent end;  // zero time/core: end-of-run context
  for (const auto& [key, owner] : lock_owner_) {
    end.addr = key.first;
    end.version = key.second;
    report(Severity::kError, Invariant::kLockHeldAtTaskEnd, end, owner, 0,
           "version still locked at end of run");
  }
  for (const auto& [t, n] : live_tasks_) {
    (void)n;
    end.addr = 0;
    end.version = t;
    report(Severity::kWarning, Invariant::kTaskPairing, end, t, 0,
           "task created/begun but never ended");
  }
}

}  // namespace osim::analysis
