// osim-mc: systematic interleaving exploration for the concurrent engine.
//
// The concurrent store's bugs are schedule-dependent: TSan and the stress
// tests only witness the interleavings the host OS happens to produce.
// This module runs small op-stream programs (McProgram) through
// ConcurrentVersionStore under a *controlled cooperative scheduler* — a
// ScheduleHook (core/schedule_point.hpp) that suspends every program
// thread at each scheduling-relevant transition and lets a chooser decide
// who runs next — and enumerates the interleavings systematically:
//
//   * exhaustive DFS over the schedule tree, stateless-model-checking
//     style: each schedule is a fresh store + fresh host threads, driven
//     down a forced decision prefix and then extended by a deterministic
//     default rule; backtracking flips the deepest unexplored choice;
//   * sleep-set partial-order reduction (Godefroid): after exploring
//     thread t from a state, t sleeps for the remaining siblings, and
//     sleepers survive into the child state while they stay independent
//     of the chosen transition — so each Mazurkiewicz trace is explored
//     once instead of once per commuting permutation;
//   * an optional preemption bound (CHESS-style) for larger programs:
//     schedules are limited to N context switches at points where the
//     previously running thread was still enabled.
//
// Every explored schedule is validated three ways: structural integrity
// of the version chains (ConcurrentVersionStore::check_integrity), the
// protocol checker over the linearized event stream (analysis/checker.*,
// checked mode), and equivalence of per-op results / faults / checksum
// against the serial VersionStore oracle executed by the functional
// timing model. Any schedule serializes to a small text replay file that
// re-executes deterministically (`osim-mc --replay`), so a failing
// interleaving is a one-command repro — the schedule-capture substrate of
// ROADMAP item 3.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/concurrent_store.hpp"
#include "core/isa.hpp"
#include "core/schedule_point.hpp"
#include "core/types.hpp"

namespace osim::analysis {

// ---------------------------------------------------------------------------
// Programs

/// One versioned-ISA operation of a model-checked program. `slot` is an
/// index into the program's O-structure allocation; task ops ignore it.
struct McOp {
  OpCode op = OpCode::kLoadVersion;
  std::uint64_t slot = 0;
  Ver version = 0;  ///< exact version (loads/locks/stores/unlocks)
  Ver cap = 0;      ///< upper bound for the -LATEST forms
  TaskId task = 0;  ///< locker for lock ops, task id for task ops
  std::optional<Ver> rename_to;  ///< UNLOCK-VERSION rename target
  std::uint64_t data = 0;  ///< stored payload; 0 = mc_data(slot, version)
};

/// A litmus program: per-thread op sequences over a small slot array.
/// Programs meant for oracle comparison must be *determinate* — every
/// read names (directly or via a cap) a version written exactly once —
/// so all schedules produce the same per-op results.
struct McProgram {
  std::string name;
  std::string summary;
  std::size_t nslots = 1;
  ConcurrencyConfig cfg;
  std::vector<McOp> setup;  ///< run on the driver thread, unscheduled
  std::vector<std::vector<McOp>> threads;
  /// Reclamation can fire (tiny reclaim_threshold): epoch/floor state
  /// couples every transition, so the reducer claims no independence.
  bool gc_active = false;
  /// Compare surviving (slot, version, value) triples across schedules.
  /// Off for gc programs, where reclamation timing legally varies.
  bool compare_final_state = true;
  /// Validate results against the serial VersionStore oracle.
  bool use_oracle = true;
  /// Engine errors (std::exception from an op) are expected and per-op
  /// results vary by schedule: skip outcome comparison (ctx_bound).
  bool expect_engine_errors = false;
};

/// Deterministic payload for version `v` of `slot` (never 0, so McOp::data
/// == 0 can mean "default"). Both the concurrent run and the oracle store
/// these values, making read results comparable across engines.
std::uint64_t mc_data(std::uint64_t slot, Ver v);

// ---------------------------------------------------------------------------
// Outcomes

/// Result of one program op: 'v' = value, 'f' = simulated fault (text is
/// the stable FaultKind name), 'e' = engine error (text is the message).
struct OpResult {
  char tag = 'v';
  std::uint64_t value = 0;  ///< data read / stored
  Ver got = 0;              ///< version read / created
  std::string text;
};

/// One recorded scheduling decision: thread `tid` was granted execution at
/// the announced point. Granting runs the thread up to its next announce.
struct ScheduleStep {
  int tid = 0;
  SchedKind kind = SchedKind::kThreadStart;
  std::uint64_t obj = 0;
};

struct ScheduleOutcome {
  std::vector<ScheduleStep> steps;
  std::vector<std::vector<OpResult>> results;  ///< [thread][op index]
  /// Surviving (slot, version, value) triples, slot-major ascending.
  std::vector<std::array<std::uint64_t, 3>> final_state;
  std::uint64_t checksum = 0;  ///< FNV-1a over results (+ final state)
  bool violation = false;
  std::string violation_kind;  ///< "integrity", "ctx-overshoot", ...
  std::string violation_detail;
};

struct McOptions {
  bool por = true;           ///< sleep-set reduction (false = naive DFS)
  int preemption_bound = -1; ///< max preemptive switches; -1 = unbounded
  std::uint64_t max_schedules = 1u << 20;
  bool checked = false;  ///< attach tracer + protocol checker (serializes
                         ///< reads, so the schedule space differs)
  /// OSIM_MC_SEEDED_BUG value compiled into the engine driving this
  /// exploration (0 = production engine). Recorded in replay files and
  /// validated on replay so a fixture never silently runs against the
  /// wrong build.
  int seeded = 0;
  bool stop_on_violation = true;
};

struct ExploreResult {
  std::uint64_t schedules = 0;    ///< complete executions run
  std::uint64_t steps_total = 0;  ///< scheduling decisions across them
  std::uint64_t max_depth = 0;    ///< longest schedule
  bool complete = false;          ///< tree exhausted (not capped)
  bool violation_found = false;
  ScheduleOutcome first;    ///< first schedule explored (fixture source)
  ScheduleOutcome example;  ///< first violating schedule, else the last
};

/// Systematically explore `prog`'s interleavings. Violations checked per
/// schedule, in order: registered-thread bound, engine errors, chain
/// integrity, protocol checker (checked mode), then result/final-state
/// equivalence against the reference (serial oracle when use_oracle, else
/// the first explored schedule).
ExploreResult explore(const McProgram& prog, const McOptions& opt);

/// Execute `prog` on the serial VersionStore under FunctionalTiming, the
/// reference semantics. Threads round-robin one op at a time, skipping ops
/// that would block; a round with no progress faults the lowest-tid
/// blocked op (the deterministic mirror of the scheduler's deadlock
/// victim). `steps` is left empty.
ScheduleOutcome run_oracle(const McProgram& prog);

// ---------------------------------------------------------------------------
// Record / replay

/// Parsed form of a replay file.
struct ReplayFile {
  std::string program;
  bool checked = false;
  int seeded = 0;
  /// Fault-injection spec the schedule was recorded under (the optional
  /// "inject <spec>" header line; empty = none, and the line is omitted so
  /// pre-injection fixtures parse unchanged).
  std::string inject;
  std::vector<ScheduleStep> steps;
  std::uint64_t checksum = 0;
  bool violation = false;
  std::string violation_kind;
};

/// Serialize one explored schedule to the replay-file text format
/// (versioned header, one line per decision, checksum, violation verdict).
std::string serialize_schedule(const McProgram& prog, const McOptions& opt,
                               const ScheduleOutcome& out);

/// Parse a replay file; throws std::runtime_error with a line-numbered
/// message on any malformation.
ReplayFile parse_schedule(const std::string& text);

/// Re-execute a recorded schedule deterministically. Every decision is
/// forced to the recorded thread after validating that the thread really
/// is schedulable at the recorded point; any divergence (wrong label,
/// wrong enabled set, too few/many steps) throws std::runtime_error.
/// Byte-identical reproduction means serialize_schedule() of the returned
/// outcome equals the original file text.
ScheduleOutcome replay_schedule(const McProgram& prog, const McOptions& opt,
                                const ReplayFile& file);

/// Human-readable one-line digest ("6 ops, 2 faults, checksum ...").
std::string summarize_outcome(const ScheduleOutcome& out);

}  // namespace osim::analysis
