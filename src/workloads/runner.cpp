#include "workloads/runner.hpp"

namespace osim {

std::vector<Ver> prev_mutator_versions(const std::vector<Op>& ops) {
  std::vector<Ver> prev(ops.size());
  Ver last = kSetupVersion;
  for (std::size_t i = 0; i < ops.size(); ++i) {
    prev[i] = last;
    if (ops[i].kind == OpKind::kInsert || ops[i].kind == OpKind::kDelete) {
      last = kFirstTaskId + i;
    }
  }
  return prev;
}

RunResult run_sequential(Env& env, std::function<void()> setup,
                         std::function<std::uint64_t()> ops) {
  RunResult result;
  env.spawn(0, [&] {
    setup();
    const Cycles t0 = env.now();
    result.checksum = ops();
    result.cycles = env.now() - t0;
  });
  env.run();
  return result;
}

RunResult run_tasked(Env& env, int cores, std::function<void()> setup,
                     std::function<void(TaskRuntime&)> make_tasks,
                     std::function<std::uint64_t()> finalize) {
  TaskRuntime rt(env, cores);
  rt.set_setup(std::move(setup));
  make_tasks(rt);
  RunResult result;
  result.cycles = rt.run();
  if (finalize) result.checksum = finalize();
  return result;
}

}  // namespace osim
