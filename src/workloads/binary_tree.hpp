// Unbalanced binary search tree workload (paper Secs. IV-C and IV-D).
//
// Three variants:
//   * sequential unversioned (the Fig. 6 baseline),
//   * parallel versioned: root ticket ordering + hand-over-hand locking on
//     the traversal path + snapshot-isolated readers (Fig. 6/7, and the
//     versioned side of Fig. 8),
//   * parallel unversioned protected by a read-write lock (the Fig. 8
//     baseline, which separates reads from writes instead of renaming).
//
// Deletion is logical (a versioned `alive` flag per node) in all variants,
// so parallel-versioned results are comparable to the sequential baseline.
#pragma once

#include "runtime/env.hpp"
#include "workloads/opgen.hpp"

namespace osim {

RunResult binary_tree_sequential(Env& env, const DsSpec& spec);
RunResult binary_tree_versioned(Env& env, const DsSpec& spec, int cores);
RunResult binary_tree_rwlock(Env& env, const DsSpec& spec, int cores);

}  // namespace osim
