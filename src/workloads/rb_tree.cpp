#include "workloads/rb_tree.hpp"

#include <memory>
#include <utility>
#include <vector>

#include "runtime/pipeline.hpp"
#include "workloads/opstream.hpp"
#include "workloads/runner.hpp"

namespace osim {

namespace {

constexpr std::uint64_t kOpSetupInstr = 30;
constexpr std::uint64_t kStepInstr = 12;
constexpr std::uint64_t kBufferHitInstr = 2;

// ---------------------------------------------------------------------------
// The red-black algorithm, templated over a field-access policy. The policy
// supplies node type, field reads/writes, and node creation; the core
// provides descent, logical delete, and insert with CLRS-style fixup driven
// by an explicit ancestor stack (no parent pointers, so the versioned
// variant only versions left/right/alive).

template <typename P>
class RbCore {
 public:
  using Node = typename P::Node;

  explicit RbCore(P& p) : p_(p) {}

  std::uint64_t lookup(std::uint64_t key) {
    Node* cur = p_.root();
    while (cur != nullptr) {
      const std::uint64_t ck = p_.key(cur);
      if (ck == key) return p_.alive(cur) ? 1 : 0;
      p_.step();
      cur = key < ck ? p_.left(cur) : p_.right(cur);
    }
    return 0;
  }

  std::uint64_t erase(std::uint64_t key) {
    Node* cur = p_.root();
    while (cur != nullptr) {
      const std::uint64_t ck = p_.key(cur);
      if (ck == key) {
        if (!p_.alive(cur)) return 0;
        p_.set_alive(cur, false);
        return 1;
      }
      p_.step();
      cur = key < ck ? p_.left(cur) : p_.right(cur);
    }
    return 0;
  }

  std::uint64_t insert(std::uint64_t key) {
    std::vector<Node*> path;
    Node* cur = p_.root();
    while (cur != nullptr) {
      const std::uint64_t ck = p_.key(cur);
      if (ck == key) {
        if (p_.alive(cur)) return 0;
        p_.set_alive(cur, true);
        return 1;
      }
      p_.step();
      path.push_back(cur);
      cur = key < ck ? p_.left(cur) : p_.right(cur);
    }
    Node* z = p_.make_node(key);  // red, alive, leaf
    if (path.empty()) {
      p_.set_red(z, false);
      p_.set_root(z);
      return 1;
    }
    Node* parent = path.back();
    if (key < p_.key(parent)) {
      p_.set_left(parent, z);
    } else {
      p_.set_right(parent, z);
    }
    fixup(std::move(path), z);
    return 1;
  }

 private:
  void replace_child(Node* parent, Node* old_child, Node* new_child) {
    if (parent == nullptr) {
      p_.set_root(new_child);
    } else if (p_.left(parent) == old_child) {
      p_.set_left(parent, new_child);
    } else {
      p_.set_right(parent, new_child);
    }
  }

  /// Left-rotate around x (whose parent is xp). Returns the new subtree
  /// root (x's former right child).
  Node* rotate_left(Node* x, Node* xp) {
    Node* y = p_.right(x);
    p_.set_right(x, p_.left(y));
    p_.set_left(y, x);
    replace_child(xp, x, y);
    return y;
  }

  Node* rotate_right(Node* x, Node* xp) {
    Node* y = p_.left(x);
    p_.set_left(x, p_.right(y));
    p_.set_right(y, x);
    replace_child(xp, x, y);
    return y;
  }

  void fixup(std::vector<Node*> path, Node* z) {
    while (!path.empty() && p_.red(path.back())) {
      if (path.size() == 1) break;  // red root: blackened below
      Node* parent = path[path.size() - 1];
      Node* grand = path[path.size() - 2];
      Node* ggp = path.size() >= 3 ? path[path.size() - 3] : nullptr;
      p_.step();
      if (parent == p_.left(grand)) {
        Node* uncle = p_.right(grand);
        if (uncle != nullptr && p_.red(uncle)) {
          p_.set_red(parent, false);
          p_.set_red(uncle, false);
          p_.set_red(grand, true);
          z = grand;
          path.pop_back();
          path.pop_back();
        } else {
          if (z == p_.right(parent)) {
            rotate_left(parent, grand);
            std::swap(z, parent);  // z is now the lower node
          }
          p_.set_red(parent, false);
          p_.set_red(grand, true);
          rotate_right(grand, ggp);
          break;
        }
      } else {
        Node* uncle = p_.left(grand);
        if (uncle != nullptr && p_.red(uncle)) {
          p_.set_red(parent, false);
          p_.set_red(uncle, false);
          p_.set_red(grand, true);
          z = grand;
          path.pop_back();
          path.pop_back();
        } else {
          if (z == p_.left(parent)) {
            rotate_right(parent, grand);
            std::swap(z, parent);
          }
          p_.set_red(parent, false);
          p_.set_red(grand, true);
          rotate_left(grand, ggp);
          break;
        }
      }
    }
    p_.set_red(p_.root(), false);
  }

  P& p_;
};

// ---------------------------------------------------------------------------
// Unversioned policy (sequential baseline)

struct URNode {
  std::uint64_t key;
  URNode* left = nullptr;
  URNode* right = nullptr;
  bool red = true;
  bool alive = true;
};

class UPolicy {
 public:
  using Node = URNode;

  explicit UPolicy(Env& env) : env_(env) {}

  Node* root() { return env_.ld(root_); }
  void set_root(Node* n) { env_.st(root_, n); }
  Node* left(Node* n) { return env_.ld(n->left); }
  Node* right(Node* n) { return env_.ld(n->right); }
  void set_left(Node* n, Node* v) { env_.st(n->left, v); }
  void set_right(Node* n, Node* v) { env_.st(n->right, v); }
  bool red(Node* n) { return env_.ld(n->red); }
  void set_red(Node* n, bool r) { env_.st(n->red, r); }
  std::uint64_t key(Node* n) { return env_.ld(n->key); }
  bool alive(Node* n) { return env_.ld(n->alive); }
  void set_alive(Node* n, bool a) { env_.st(n->alive, a); }
  Node* make_node(std::uint64_t key) {
    URNode* n = env_.make<URNode>();
    n->key = key;
    return n;
  }
  void step() { env_.exec(kStepInstr); }

  Node* host_root() const { return root_; }

 private:
  Env& env_;
  Node* root_ = nullptr;
};

std::uint64_t scan_unversioned(Env& env, UPolicy& p, URNode* n,
                               std::uint64_t key, int& remaining) {
  if (n == nullptr || remaining == 0) return 0;
  std::uint64_t sum = 0;
  const std::uint64_t ck = p.key(n);
  env.exec(kStepInstr);
  if (ck >= key) {
    sum += scan_unversioned(env, p, p.left(n), key, remaining);
    if (remaining == 0) return sum;
    if (p.alive(n)) {
      sum += ck;
      --remaining;
    }
    if (remaining == 0) return sum;
  }
  return sum + scan_unversioned(env, p, p.right(n), key, remaining);
}

// ---------------------------------------------------------------------------
// Versioned policy: single writer with a write buffer, committed once per
// touched field as version tid.

struct VRNode {
  VRNode(Env& env, std::uint64_t k)
      : key(k), left(env), right(env), alive(env) {}
  const std::uint64_t key;
  versioned<VRNode*> left;
  versioned<VRNode*> right;
  versioned<std::uint64_t> alive;
  bool red = true;  // writer-private; readers never look at colors
};

class WriterPolicy {
 public:
  using Node = VRNode;

  WriterPolicy(Env& env, TaskId tid, VRNode* root)
      : env_(env), tid_(tid), root_(root) {}

  Node* root() { return root_; }
  void set_root(Node* n) {
    root_ = n;
    root_changed_ = true;
  }
  Node* left(Node* n) { return read_ptr(n->left); }
  Node* right(Node* n) { return read_ptr(n->right); }
  void set_left(Node* n, Node* v) { write_ptr(n->left, v); }
  void set_right(Node* n, Node* v) { write_ptr(n->right, v); }
  bool red(Node* n) { return env_.ld(n->red); }
  void set_red(Node* n, bool r) { env_.st(n->red, r); }
  std::uint64_t key(Node* n) { return env_.ld(n->key); }
  bool alive(Node* n) { return read_alive(n->alive) != 0; }
  void set_alive(Node* n, bool a) { write_alive(n->alive, a ? 1 : 0); }
  Node* make_node(std::uint64_t key) {
    VRNode* n = env_.make<VRNode>(env_, key);
    // New-node fields go through the buffer too, so each versioned field is
    // stored exactly once at commit even if a rotation touches it again.
    write_ptr(n->left, nullptr);
    write_ptr(n->right, nullptr);
    write_alive(n->alive, 1);
    return n;
  }
  void step() { env_.exec(kStepInstr); }

  /// Publish every touched field as version tid (STORE-VERSION renaming).
  void commit() {
    for (auto& [field, value] : ptr_buf_) field->store_ver(value, tid_);
    for (auto& [field, value] : alive_buf_) field->store_ver(value, tid_);
  }

  bool root_changed() const { return root_changed_; }
  VRNode* new_root() const { return root_; }

 private:
  Node* read_ptr(versioned<VRNode*>& f) {
    for (auto& [field, value] : ptr_buf_) {
      if (field == &f) {
        env_.exec(kBufferHitInstr);
        return value;
      }
    }
    return f.load_latest(tid_);
  }
  void write_ptr(versioned<VRNode*>& f, VRNode* v) {
    env_.exec(kBufferHitInstr);
    for (auto& [field, value] : ptr_buf_) {
      if (field == &f) {
        value = v;
        return;
      }
    }
    ptr_buf_.emplace_back(&f, v);
  }
  std::uint64_t read_alive(versioned<std::uint64_t>& f) {
    for (auto& [field, value] : alive_buf_) {
      if (field == &f) {
        env_.exec(kBufferHitInstr);
        return value;
      }
    }
    return f.load_latest(tid_);
  }
  void write_alive(versioned<std::uint64_t>& f, std::uint64_t v) {
    env_.exec(kBufferHitInstr);
    for (auto& [field, value] : alive_buf_) {
      if (field == &f) {
        value = v;
        return;
      }
    }
    alive_buf_.emplace_back(&f, v);
  }

  Env& env_;
  TaskId tid_;
  VRNode* root_;
  // Insertion-ordered buffers (tiny: a handful of fields per operation);
  // deterministic commit order regardless of heap layout.
  std::vector<std::pair<versioned<VRNode*>*, VRNode*>> ptr_buf_;
  std::vector<std::pair<versioned<std::uint64_t>*, std::uint64_t>> alive_buf_;
  bool root_changed_ = false;
};

// Host-only policy used to shape the initial tree during setup (charges
// nothing; the shape is then published once at the setup version).
struct BuildNode {
  std::uint64_t key;
  BuildNode* left = nullptr;
  BuildNode* right = nullptr;
  bool red = true;
  bool alive = true;
};

class BuildPolicy {
 public:
  using Node = BuildNode;
  Node* root() { return root_; }
  void set_root(Node* n) { root_ = n; }
  Node* left(Node* n) { return n->left; }
  Node* right(Node* n) { return n->right; }
  void set_left(Node* n, Node* v) { n->left = v; }
  void set_right(Node* n, Node* v) { n->right = v; }
  bool red(Node* n) { return n->red; }
  void set_red(Node* n, bool r) { n->red = r; }
  std::uint64_t key(Node* n) { return n->key; }
  bool alive(Node* n) { return n->alive; }
  void set_alive(Node* n, bool a) { n->alive = a; }
  Node* make_node(std::uint64_t key) {
    nodes_.push_back(std::make_unique<BuildNode>());
    nodes_.back()->key = key;
    return nodes_.back().get();
  }
  void step() {}

 private:
  BuildNode* root_ = nullptr;
  std::vector<std::unique_ptr<BuildNode>> nodes_;
};

class VRbTree {
 public:
  explicit VRbTree(Env& env) : env_(env), ticket_(env) {}

  void populate(const std::vector<std::uint64_t>& keys) {
    BuildPolicy bp;
    RbCore<BuildPolicy> builder(bp);
    for (std::uint64_t k : keys) builder.insert(k);
    ticket_.init(mirror(bp.root()), kSetupVersion);
  }

  std::uint64_t writer_op(TaskId tid, Ver prev, std::uint64_t key,
                          bool insert) {
    env_.exec(kOpSetupInstr);
    VRNode* root = ticket_.enter_mut(tid, prev);
    WriterPolicy p(env_, tid, root);
    RbCore<WriterPolicy> core(p);
    const std::uint64_t changed = insert ? core.insert(key) : core.erase(key);
    p.commit();
    ticket_.leave_mut(tid, prev,
                      p.root_changed() ? std::optional<VRNode*>(p.new_root())
                                       : std::nullopt);
    return changed;
  }

  std::uint64_t lookup(TaskId tid, Ver prev, std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    VRNode* cur = ticket_.enter_ro(prev);
    (void)tid;
    while (cur != nullptr) {
      const std::uint64_t ck = env_.ld(cur->key);
      if (ck == key) return cur->alive.load_latest(tid);
      env_.exec(kStepInstr);
      cur = key < ck ? cur->left.load_latest(tid) : cur->right.load_latest(tid);
    }
    return 0;
  }

  std::uint64_t scan(TaskId tid, Ver prev, std::uint64_t key, int range) {
    env_.exec(kOpSetupInstr);
    VRNode* root = ticket_.enter_ro(prev);
    (void)tid;
    int remaining = range;
    return scan_rec(root, tid, key, remaining);
  }

 private:
  /// Deep-copy the host-built shape into versioned nodes, publishing every
  /// field exactly once at the setup version.
  VRNode* mirror(BuildNode* b) {
    if (b == nullptr) return nullptr;
    VRNode* n = env_.make<VRNode>(env_, b->key);
    n->red = b->red;
    n->left.store_ver(mirror(b->left), kSetupVersion);
    n->right.store_ver(mirror(b->right), kSetupVersion);
    n->alive.store_ver(b->alive ? 1 : 0, kSetupVersion);
    return n;
  }

  std::uint64_t scan_rec(VRNode* n, TaskId tid, std::uint64_t key,
                         int& remaining) {
    if (n == nullptr || remaining == 0) return 0;
    std::uint64_t sum = 0;
    const std::uint64_t ck = env_.ld(n->key);
    env_.exec(kStepInstr);
    if (ck >= key) {
      sum += scan_rec(n->left.load_latest(tid), tid, key, remaining);
      if (remaining == 0) return sum;
      if (n->alive.load_latest(tid) != 0) {
        sum += ck;
        --remaining;
      }
      if (remaining == 0) return sum;
    }
    return sum + scan_rec(n->right.load_latest(tid), tid, key, remaining);
  }

  Env& env_;
  TicketRoot<VRNode*> ticket_;
};

}  // namespace

RunResult rb_tree_sequential(Env& env, const DsSpec& spec) {
  UPolicy* p = env.make<UPolicy>(env);
  const auto ops = generate_ops(spec);
  return run_sequential(
      env,
      [p, &spec] {
        RbCore<UPolicy> core(*p);
        for (std::uint64_t k : initial_keys(spec)) core.insert(k);
      },
      [&env, p, &spec, ops] {
        RbCore<UPolicy> core(*p);
        std::uint64_t sum = 0;
        for (const Op& op : ops) {
          switch (op.kind) {
            case OpKind::kLookup:
              mix(sum, core.lookup(op.key));
              break;
            case OpKind::kScan: {
              env.exec(kOpSetupInstr);
              int remaining = spec.scan_range;
              mix(sum, scan_unversioned(env, *p, p->root(), op.key,
                                        remaining));
              break;
            }
            case OpKind::kInsert:
              mix(sum, core.insert(op.key));
              break;
            case OpKind::kDelete:
              mix(sum, core.erase(op.key));
              break;
          }
        }
        return sum;
      });
}

RunResult rb_tree_versioned(Env& env, const DsSpec& spec, int cores) {
  static_check_workload(env, spec);
  VRbTree* tree = env.make<VRbTree>(env);
  const auto ops = generate_ops(spec);
  auto results = std::make_shared<std::vector<std::uint64_t>>(ops.size());
  return run_tasked(
      env, cores, [tree, &spec] { tree->populate(initial_keys(spec)); },
      [&](TaskRuntime& rt) {
        const auto prevs = prev_mutator_versions(ops);
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const Op op = ops[i];
          const Ver prev = prevs[i];
          rt.create_task(
              kFirstTaskId + i,
              [tree, op, prev, &spec, results, i](TaskId tid) {
                switch (op.kind) {
                  case OpKind::kLookup:
                    (*results)[i] = tree->lookup(tid, prev, op.key);
                    break;
                  case OpKind::kScan:
                    (*results)[i] =
                        tree->scan(tid, prev, op.key, spec.scan_range);
                    break;
                  case OpKind::kInsert:
                    (*results)[i] = tree->writer_op(tid, prev, op.key, true);
                    break;
                  case OpKind::kDelete:
                    (*results)[i] = tree->writer_op(tid, prev, op.key, false);
                    break;
                }
              });
        }
      },
      [results] {
        std::uint64_t sum = 0;
        for (std::uint64_t r : *results) mix(sum, r);
        return sum;
      });
}

bool rb_invariants_hold(Env& env, const std::vector<std::uint64_t>& keys) {
  UPolicy& p = *env.make<UPolicy>(env);
  bool ok = true;
  env.spawn(0, [&] {
    RbCore<UPolicy> core(p);
    for (std::uint64_t k : keys) core.insert(k);
    // Validate: BST order, root black, no red-red, equal black heights.
    struct V {
      static int check(UPolicy& p, URNode* n, std::uint64_t lo,
                       std::uint64_t hi, bool parent_red, bool& ok) {
        if (n == nullptr) return 1;
        if (n->key < lo || n->key > hi) ok = false;
        if (parent_red && n->red) ok = false;
        const int lh =
            check(p, n->left, lo, n->key == 0 ? 0 : n->key - 1, n->red, ok);
        const int rh = check(p, n->right, n->key + 1, hi, n->red, ok);
        if (lh != rh) ok = false;
        return lh + (n->red ? 0 : 1);
      }
    };
    URNode* root = p.host_root();
    if (root != nullptr && root->red) ok = false;
    V::check(p, root, 0, ~std::uint64_t{0}, false, ok);
  });
  env.run();
  return ok;
}

}  // namespace osim
