#include "workloads/opstream.hpp"

#include "core/isa.hpp"
#include "workloads/runner.hpp"

namespace osim {

namespace {
/// Abstract address of the root ticket in the lowered stream. Static
/// checking runs before allocation, so the address is symbolic.
constexpr Addr kAbstractRoot = 1;
}  // namespace

std::vector<analysis::VOp> root_protocol_stream(const DsSpec& spec) {
  const std::vector<Op> ops = generate_ops(spec);
  const std::vector<Ver> prev = prev_mutator_versions(ops);
  std::vector<analysis::VOp> stream;
  stream.reserve(ops.size() * 4 + 1);

  auto push = [&](OpCode op, Ver version, Ver cap, TaskId task,
                  std::optional<Ver> rename_to = std::nullopt) {
    analysis::VOp v;
    v.op = op;
    v.addr = kAbstractRoot;
    v.version = version;
    v.cap = cap;
    v.task = task;
    v.rename_to = rename_to;
    stream.push_back(v);
  };

  // Unmeasured setup publishes the initial ticket.
  push(OpCode::kStoreVersion, kSetupVersion, 0, 0);

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const TaskId t = kFirstTaskId + i;
    const bool mutator =
        ops[i].kind == OpKind::kInsert || ops[i].kind == OpKind::kDelete;
    push(OpCode::kTaskBegin, t, 0, t);
    if (mutator) {
      push(OpCode::kLockLoadVersion, prev[i], 0, t);
      push(OpCode::kUnlockVersion, prev[i], 0, t, Ver{t});
    } else {
      push(OpCode::kLoadVersion, prev[i], 0, t);
    }
    push(OpCode::kTaskEnd, t, 0, t);
  }
  return stream;
}

namespace {

/// Concurrency config shared by the litmus programs: few shards so slot i
/// maps to shard i, a short walk limit (chains are <= 3 blocks, so any
/// longer walk is corruption and should error fast, not spin), and one
/// registration slot for the driver thread on top of the program threads.
ConcurrencyConfig mc_cfg(int shards, int program_threads) {
  ConcurrencyConfig cfg;
  cfg.shards = shards;
  cfg.max_threads = program_threads + 1;
  cfg.walk_limit = 64;
  return cfg;
}

analysis::McOp mc_store(std::uint64_t slot, Ver v) {
  analysis::McOp op;
  op.op = OpCode::kStoreVersion;
  op.slot = slot;
  op.version = v;
  return op;
}

analysis::McOp mc_load(std::uint64_t slot, Ver v) {
  analysis::McOp op;
  op.op = OpCode::kLoadVersion;
  op.slot = slot;
  op.version = v;
  return op;
}

analysis::McOp mc_lock(std::uint64_t slot, Ver v, TaskId locker) {
  analysis::McOp op;
  op.op = OpCode::kLockLoadVersion;
  op.slot = slot;
  op.version = v;
  op.task = locker;
  return op;
}

analysis::McOp mc_unlock(std::uint64_t slot, Ver v, TaskId owner,
                         std::optional<Ver> rename = std::nullopt) {
  analysis::McOp op;
  op.op = OpCode::kUnlockVersion;
  op.slot = slot;
  op.version = v;
  op.task = owner;
  op.rename_to = rename;
  return op;
}

analysis::McOp mc_task(OpCode which, TaskId t) {
  analysis::McOp op;
  op.op = which;
  op.task = t;
  return op;
}

}  // namespace

std::vector<analysis::McProgram> mc_litmus_programs() {
  std::vector<analysis::McProgram> progs;

  {
    // Message passing in both directions through exact versions. Every
    // read names a version stored exactly once, so each of the two loads
    // that cross threads blocks until its writer has run and all
    // schedules agree with the serial oracle.
    analysis::McProgram p;
    p.name = "mp2";
    p.summary = "2 threads x 3 ops, cross-thread exact-version reads";
    p.nslots = 2;
    p.cfg = mc_cfg(/*shards=*/2, /*program_threads=*/2);
    p.threads = {
        {mc_store(0, 2), mc_store(1, 2), mc_load(1, 3)},
        {mc_store(1, 3), mc_load(0, 2), mc_load(1, 2)},
    };
    progs.push_back(std::move(p));
  }

  {
    // Lock handoff: thread 0 lock-loads the setup version and renames it;
    // thread 1 waits for the renamed version, then locks and releases it.
    // Exercises kWake/kBlocked ordering and the unlock-rename store path.
    analysis::McProgram p;
    p.name = "lock_handoff";
    p.summary = "lock-load + rename handoff between two tasks";
    p.nslots = 1;
    p.cfg = mc_cfg(/*shards=*/1, /*program_threads=*/2);
    p.setup = {mc_store(0, 1)};
    p.threads = {
        {mc_lock(0, 1, /*locker=*/2), mc_unlock(0, 1, 2, Ver{5})},
        {mc_load(0, 5), mc_lock(0, 5, /*locker=*/3), mc_unlock(0, 5, 3)},
    };
    progs.push_back(std::move(p));
  }

  {
    // Three threads on three disjoint slots (distinct shards): every
    // cross-thread pair of transitions commutes, so sleep sets collapse
    // the factorially many interleavings to a handful — the reduction
    // showcase for EXPERIMENTS.md.
    analysis::McProgram p;
    p.name = "wide3";
    p.summary = "3 threads on disjoint slots (maximal independence)";
    p.nslots = 3;
    p.cfg = mc_cfg(/*shards=*/4, /*program_threads=*/3);
    p.threads = {
        {mc_store(0, 2), mc_load(0, 2)},
        {mc_store(1, 2), mc_load(1, 2)},
        {mc_store(2, 2), mc_load(2, 2)},
    };
    progs.push_back(std::move(p));
  }

  {
    // The PR-6 reclaim-vs-insert window. reclaim_threshold = 1 arms the
    // collector on every allocation; storing 2 then 5 shadows version 2
    // under shadower 5, and once task 7 has finished (the floor rises to
    // 8, past the shadower), the paper fence lets the third store's
    // allocation retire block(v2) mid-operation. The correct engine
    // allocates before walking, so the insert position is computed after
    // the retirement; the seeded build (OSIM_MC_SEEDED_BUG=1) walks
    // first and corrupts the chain in exactly the schedules where the
    // task ops land between the second and third store.
    analysis::McProgram p;
    p.name = "gc_fence";
    p.summary = "reclaim during store under the paper GC fence";
    p.nslots = 1;
    p.cfg = mc_cfg(/*shards=*/1, /*program_threads=*/2);
    p.cfg.reclaim_threshold = 1;
    p.cfg.gc_policy = GcPolicyKind::kPaper;
    p.gc_active = true;
    p.compare_final_state = false;  // reclamation timing legally varies
    p.threads = {
        {mc_store(0, 2), mc_store(0, 5), mc_store(0, 3)},
        {mc_task(OpCode::kTaskBegin, 7), mc_task(OpCode::kTaskEnd, 7)},
    };
    progs.push_back(std::move(p));
  }

  {
    // Three threads against max_threads = 2 (no driver headroom: the
    // setup-free program keeps the driver unregistered). The correct
    // engine rejects the third registration with nctx_ still at the
    // bound; the seeded build (OSIM_MC_SEEDED_BUG=2) overshoots, which
    // every schedule's registered_threads() audit flags. Which thread
    // loses depends on the schedule, so per-op outcomes are not compared.
    analysis::McProgram p;
    p.name = "ctx_bound";
    p.summary = "thread registration at the max_threads bound";
    p.nslots = 3;
    p.cfg = mc_cfg(/*shards=*/4, /*program_threads=*/3);
    p.cfg.max_threads = 2;
    p.use_oracle = false;
    p.compare_final_state = false;
    p.expect_engine_errors = true;
    p.threads = {
        {mc_store(0, 2)},
        {mc_store(1, 2)},
        {mc_store(2, 2)},
    };
    progs.push_back(std::move(p));
  }

  {
    // Both threads load versions nothing ever stores: every schedule ends
    // with the scheduler's deterministic deadlock cascade (lowest tid
    // faults first), matching the oracle's no-progress rule.
    analysis::McProgram p;
    p.name = "deadlock_pair";
    p.summary = "guaranteed deadlock: loads of never-stored versions";
    p.nslots = 2;
    p.cfg = mc_cfg(/*shards=*/2, /*program_threads=*/2);
    p.threads = {
        {mc_load(0, 9)},
        {mc_load(1, 9)},
    };
    progs.push_back(std::move(p));
  }

  return progs;
}

const analysis::McProgram* find_mc_litmus(const std::string& name) {
  static const std::vector<analysis::McProgram> progs = mc_litmus_programs();
  for (const analysis::McProgram& p : progs) {
    if (p.name == name) return &p;
  }
  return nullptr;
}

std::size_t static_check_workload(Env& env, const DsSpec& spec) {
  analysis::Checker* checker = env.checker();
  if (checker == nullptr) return 0;
  std::vector<analysis::Finding> findings =
      analysis::static_check(root_protocol_stream(spec), checker->options());
  for (analysis::Finding& f : findings) checker->add(std::move(f));
  return findings.size();
}

}  // namespace osim
