#include "workloads/opstream.hpp"

#include "core/isa.hpp"
#include "workloads/runner.hpp"

namespace osim {

namespace {
/// Abstract address of the root ticket in the lowered stream. Static
/// checking runs before allocation, so the address is symbolic.
constexpr Addr kAbstractRoot = 1;
}  // namespace

std::vector<analysis::VOp> root_protocol_stream(const DsSpec& spec) {
  const std::vector<Op> ops = generate_ops(spec);
  const std::vector<Ver> prev = prev_mutator_versions(ops);
  std::vector<analysis::VOp> stream;
  stream.reserve(ops.size() * 4 + 1);

  auto push = [&](OpCode op, Ver version, Ver cap, TaskId task,
                  std::optional<Ver> rename_to = std::nullopt) {
    analysis::VOp v;
    v.op = op;
    v.addr = kAbstractRoot;
    v.version = version;
    v.cap = cap;
    v.task = task;
    v.rename_to = rename_to;
    stream.push_back(v);
  };

  // Unmeasured setup publishes the initial ticket.
  push(OpCode::kStoreVersion, kSetupVersion, 0, 0);

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const TaskId t = kFirstTaskId + i;
    const bool mutator =
        ops[i].kind == OpKind::kInsert || ops[i].kind == OpKind::kDelete;
    push(OpCode::kTaskBegin, t, 0, t);
    if (mutator) {
      push(OpCode::kLockLoadVersion, prev[i], 0, t);
      push(OpCode::kUnlockVersion, prev[i], 0, t, Ver{t});
    } else {
      push(OpCode::kLoadVersion, prev[i], 0, t);
    }
    push(OpCode::kTaskEnd, t, 0, t);
  }
  return stream;
}

std::size_t static_check_workload(Env& env, const DsSpec& spec) {
  analysis::Checker* checker = env.checker();
  if (checker == nullptr) return 0;
  std::vector<analysis::Finding> findings =
      analysis::static_check(root_protocol_stream(spec), checker->options());
  for (analysis::Finding& f : findings) checker->add(std::move(f));
  return findings.size();
}

}  // namespace osim
