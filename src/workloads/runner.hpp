// Shared measurement harness for the workloads.
//
// Every experiment run has an *unmeasured* setup phase (pre-populating the
// structure, Sec. IV-A) followed by the measured operations. In parallel
// runs, core 0 executes the setup while the other workers park on a start
// gate; measured time is the span from setup completion to the last
// worker's finish. Sequential runs time the op loop directly.
#pragma once

#include <functional>

#include "runtime/env.hpp"
#include "runtime/task.hpp"
#include "workloads/opgen.hpp"

namespace osim {

/// Task IDs: population/setup uses version kSetupVersion; measured tasks
/// start at kFirstTaskId, one per operation.
inline constexpr Ver kSetupVersion = 1;
inline constexpr TaskId kFirstTaskId = 2;

/// For each op index, the root-ticket version published by the closest
/// preceding *mutating* op (kSetupVersion when none): task i enters the
/// structure against version prev[i]; see TicketRoot.
std::vector<Ver> prev_mutator_versions(const std::vector<Op>& ops);

/// Run `setup` then `ops` sequentially on core 0; returns the cycles spent
/// in `ops` only.
RunResult run_sequential(Env& env, std::function<void()> setup,
                         std::function<std::uint64_t()> ops);

/// Parallel task-based run: core 0 executes `setup`, then `cores` workers
/// drain the tasks created by `make_tasks`. Returns measured cycles (from
/// setup completion to last task completion). `finalize` runs on the host
/// after completion and folds per-task results (indexed by task id, so the
/// checksum is independent of scheduling) into the result checksum.
RunResult run_tasked(Env& env, int cores, std::function<void()> setup,
                     std::function<void(TaskRuntime&)> make_tasks,
                     std::function<std::uint64_t()> finalize);

}  // namespace osim
