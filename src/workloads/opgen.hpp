// Deterministic operation-sequence generation for the data-structure
// workloads (paper Sec. IV-A): pre-populated structures, equal insert and
// delete counts (stable footprint), configurable read:write ratio and scan
// range, fixed seeds for bit-reproducible experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace osim {

enum class OpKind : std::uint8_t { kLookup, kScan, kInsert, kDelete };

struct Op {
  OpKind kind;
  std::uint64_t key;
};

/// Parameters for a data-structure experiment run.
struct DsSpec {
  std::size_t initial_size = 1000;  ///< small = 1000, large = 10000
  int ops = 1000;                   ///< measured operations
  int reads_per_write = 4;          ///< 4R-1W (read-intensive) or 1R-1W
  int scan_range = 1;               ///< 1 = simple get; 8/64 for Fig. 8
  std::uint64_t seed = 42;

  /// Keys are drawn from a space 4x the initial size, keeping the effective
  /// footprint stable as inserts and deletes balance out.
  std::uint64_t key_space() const { return initial_size * 4 + 1; }
};

/// The keys the structure is pre-populated with (distinct, pseudo-random).
std::vector<std::uint64_t> initial_keys(const DsSpec& spec);

/// The measured operation sequence. Reads (lookup, or scan when
/// spec.scan_range > 1) appear `reads_per_write` times per write; writes
/// alternate insert/delete so the footprint stays stable.
std::vector<Op> generate_ops(const DsSpec& spec);

/// Outcome of one workload run.
struct RunResult {
  Cycles cycles = 0;
  std::uint64_t checksum = 0;  ///< order-sensitive digest of op results
};

/// Mix a per-op result into an order-sensitive checksum.
inline void mix(std::uint64_t& sum, std::uint64_t value) {
  sum = sum * 1099511628211ull + value + 1;
}

}  // namespace osim
