// Dense matrix-multiplication chain F = (A x B) x D (paper Sec. IV-B).
//
// The versioned variant uses O-structures as I-structures: every element of
// the intermediate E = A x B is written once (STORE-VERSION 1) and consumed
// with LOAD-VERSION 1, which blocks until the producer task has run. Row
// tasks of the second multiplication therefore pipeline behind the row
// tasks of the first, with no barrier — ordering comes purely from the
// memory system.
#pragma once

#include <cstdint>

#include "runtime/env.hpp"
#include "workloads/opgen.hpp"

namespace osim {

struct MatmulSpec {
  int n = 100;  ///< paper: 3 dense 100x100 matrices
  std::uint64_t seed = 7;
};

RunResult matmul_sequential(Env& env, const MatmulSpec& spec);
RunResult matmul_versioned(Env& env, const MatmulSpec& spec, int cores);

}  // namespace osim
