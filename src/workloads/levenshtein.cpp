#include "workloads/levenshtein.hpp"

#include <algorithm>
#include <memory>
#include <random>
#include <vector>

#include "runtime/versioned.hpp"
#include "workloads/runner.hpp"

namespace osim {

namespace {

constexpr std::uint64_t kCellInstr = 16;  // three-way min, compares, branches

std::uint8_t* random_string(Env& env, int n, std::mt19937_64& rng) {
  std::uint8_t* s = env.make_array<std::uint8_t>(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) s[i] = static_cast<std::uint8_t>(rng() % 4);
  return s;
}

}  // namespace

RunResult levenshtein_sequential(Env& env, const LevSpec& spec) {
  const int n = spec.n;
  std::mt19937_64 rng(spec.seed);
  std::uint8_t* s = random_string(env, n, rng);
  std::uint8_t* t = random_string(env, n, rng);
  const std::size_t w = static_cast<std::size_t>(n) + 1;
  std::uint32_t* d = env.make_array<std::uint32_t>(w * w);

  return run_sequential(
      env, [] {},
      [&env, s, t, d, n, w] {
        std::uint32_t* dd = d;
        for (int j = 0; j <= n; ++j) dd[j] = static_cast<std::uint32_t>(j);
        for (int i = 1; i <= n; ++i) {
          env.st(dd[i * w], static_cast<std::uint32_t>(i));
          // left and diag stay in registers, as in the versioned variant.
          std::uint32_t diag = dd[(i - 1) * w];
          std::uint32_t left = static_cast<std::uint32_t>(i);
          for (int j = 1; j <= n; ++j) {
            const std::uint32_t up = env.ld(dd[(i - 1) * w + j]);
            const bool eq = env.ld(s[i - 1]) == env.ld(t[j - 1]);
            const std::uint32_t best =
                std::min({up + 1, left + 1, diag + (eq ? 0u : 1u)});
            env.exec(kCellInstr);
            env.st(dd[i * w + j], best);
            diag = up;
            left = best;
          }
        }
        std::uint64_t sum = 0;
        mix(sum, dd[static_cast<std::size_t>(n) * w + n]);
        return sum;
      });
}

RunResult levenshtein_versioned(Env& env, const LevSpec& spec, int cores) {
  const int n = spec.n;
  std::mt19937_64 rng(spec.seed);
  std::uint8_t* s = random_string(env, n, rng);
  std::uint8_t* t = random_string(env, n, rng);
  const std::size_t w = static_cast<std::size_t>(n) + 1;
  auto d = std::make_shared<std::vector<versioned<std::uint64_t>>>();
  d->reserve(w * w);
  for (std::size_t i = 0; i < w * w; ++i) d->emplace_back(env);

  return run_tasked(
      env, cores,
      [d, n, w] {
        // Row 0 boundary is produced during setup.
        for (int j = 0; j <= n; ++j) {
          (*d)[static_cast<std::size_t>(j)].store_ver(
              static_cast<std::uint64_t>(j), 1);
        }
      },
      [&](TaskRuntime& rt) {
        // Task i computes row i left-to-right; the load of the upper cell
        // blocks until row i-1's task has produced it (I-structure flow).
        for (int i = 1; i <= n; ++i) {
          rt.create_task(
              kFirstTaskId + i - 1, [&env, s, t, d, n, w, i](TaskId) {
                auto& dd = *d;
                dd[i * w].store_ver(static_cast<std::uint64_t>(i), 1);
                std::uint64_t diag = dd[(i - 1) * w].load_ver(1);
                std::uint64_t left = static_cast<std::uint64_t>(i);
                for (int j = 1; j <= n; ++j) {
                  const std::uint64_t up = dd[(i - 1) * w + j].load_ver(1);
                  const bool eq = env.ld(s[i - 1]) == env.ld(t[j - 1]);
                  const std::uint64_t best = std::min(
                      {up + 1, left + 1, diag + (eq ? 0u : 1u)});
                  env.exec(kCellInstr);
                  dd[i * w + j].store_ver(best, 1);
                  diag = up;
                  left = best;
                }
              });
        }
      },
      [d, n, w] {
        std::uint64_t sum = 0;
        mix(sum, *(*d)[static_cast<std::size_t>(n) * w + n].peek(1));
        return sum;
      });
}

}  // namespace osim
