#include "workloads/matmul.hpp"

#include <memory>
#include <random>
#include <vector>

#include "runtime/versioned.hpp"
#include "workloads/runner.hpp"

namespace osim {

namespace {

constexpr std::uint64_t kMacInstr = 5;  // multiply-accumulate + loop control

std::uint64_t* random_matrix(Env& env, int n, std::mt19937_64& rng) {
  const std::size_t cells = static_cast<std::size_t>(n) * n;
  std::uint64_t* m = env.make_array<std::uint64_t>(cells);
  for (std::size_t i = 0; i < cells; ++i) m[i] = rng() % 1000;
  return m;
}

std::uint64_t fold(const std::uint64_t* m, std::size_t cells) {
  std::uint64_t sum = 0;
  for (std::size_t i = 0; i < cells; ++i) mix(sum, m[i]);
  return sum;
}

}  // namespace

RunResult matmul_sequential(Env& env, const MatmulSpec& spec) {
  const int n = spec.n;
  const std::size_t cells = static_cast<std::size_t>(n) * n;
  std::mt19937_64 rng(spec.seed);
  std::uint64_t* a = random_matrix(env, n, rng);
  std::uint64_t* b = random_matrix(env, n, rng);
  std::uint64_t* d = random_matrix(env, n, rng);
  std::uint64_t* e = env.make_array<std::uint64_t>(cells);
  std::uint64_t* f = env.make_array<std::uint64_t>(cells);

  return run_sequential(
      env, [] {},
      [&env, a, b, d, e, f, n, cells] {
        auto mul = [&](const std::uint64_t* x, const std::uint64_t* y,
                       std::uint64_t* out) {
          for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
              std::uint64_t acc = 0;
              for (int k = 0; k < n; ++k) {
                acc += env.ld(x[i * n + k]) * env.ld(y[k * n + j]);
                env.exec(kMacInstr);
              }
              env.st(out[i * n + j], acc);
            }
          }
        };
        mul(a, b, e);
        mul(e, d, f);
        return fold(f, cells);
      });
}

RunResult matmul_versioned(Env& env, const MatmulSpec& spec, int cores) {
  const int n = spec.n;
  std::mt19937_64 rng(spec.seed);
  std::uint64_t* a = random_matrix(env, n, rng);
  std::uint64_t* b = random_matrix(env, n, rng);
  std::uint64_t* d = random_matrix(env, n, rng);
  // E is the versioned rendezvous between the two multiplications; F is
  // versioned as well (produced once, folded on the host afterwards).
  auto e = std::make_shared<std::vector<versioned<std::uint64_t>>>();
  auto f = std::make_shared<std::vector<versioned<std::uint64_t>>>();
  e->reserve(static_cast<std::size_t>(n) * n);
  f->reserve(static_cast<std::size_t>(n) * n);
  for (int i = 0; i < n * n; ++i) {
    e->emplace_back(env);
    f->emplace_back(env);
  }

  return run_tasked(
      env, cores, [] {},
      [&](TaskRuntime& rt) {
        // Stage 1: task i produces row i of E.
        for (int i = 0; i < n; ++i) {
          rt.create_task(kFirstTaskId + i, [&env, a, b, e, n, i](TaskId) {
            for (int j = 0; j < n; ++j) {
              std::uint64_t acc = 0;
              for (int k = 0; k < n; ++k) {
                acc += env.ld(a[i * n + k]) * env.ld(b[k * n + j]);
                env.exec(kMacInstr);
              }
              (*e)[i * n + j].store_ver(acc, 1);
            }
          });
        }
        // Stage 2: task n+i produces row i of F, consuming row i of E.
        // LOAD-VERSION(1) blocks until the producer stored the element.
        for (int i = 0; i < n; ++i) {
          rt.create_task(kFirstTaskId + n + i, [&env, d, e, f, n, i](TaskId) {
            for (int j = 0; j < n; ++j) {
              std::uint64_t acc = 0;
              for (int k = 0; k < n; ++k) {
                acc += (*e)[i * n + k].load_ver(1) * env.ld(d[k * n + j]);
                env.exec(kMacInstr);
              }
              (*f)[i * n + j].store_ver(acc, 1);
            }
          });
        }
      },
      [f, n] {
        std::uint64_t sum = 0;
        for (int i = 0; i < n * n; ++i) mix(sum, *(*f)[i].peek(1));
        return sum;
      });
}

}  // namespace osim
