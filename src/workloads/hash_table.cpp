#include "workloads/hash_table.hpp"

#include <algorithm>

#include <memory>
#include <vector>

#include "runtime/pipeline.hpp"
#include "workloads/opstream.hpp"
#include "workloads/runner.hpp"

namespace osim {

namespace {

constexpr std::uint64_t kOpSetupInstr = 40;  // includes the hash computation
constexpr std::uint64_t kStepInstr = 10;

std::size_t bucket_count(const DsSpec& spec) {
  // Load factor ~8 with the stable footprint of the generated op mix.
  std::size_t b = 16;
  while (b * 8 < spec.initial_size) b *= 2;
  return b;
}

std::size_t hash_of(std::uint64_t key, std::size_t buckets) {
  std::uint64_t h = key * 0x9e3779b97f4a7c15ull;
  h ^= h >> 29;
  return static_cast<std::size_t>(h) & (buckets - 1);
}

// ---------------------------------------------------------------------------
// Unversioned

struct UNode {
  std::uint64_t key;
  UNode* next;
};

class UHash {
 public:
  UHash(Env& env, std::size_t buckets)
      : env_(env), heads_(env.make_array<UNode*>(buckets)), buckets_(buckets) {}

  void populate(const std::vector<std::uint64_t>& keys) {
    for (std::uint64_t k : keys) {
      UNode** where = &heads_[hash_of(k, buckets_)];
      while (*where != nullptr && (*where)->key < k) where = &(*where)->next;
      if (*where != nullptr && (*where)->key == k) continue;
      *where = env_.make<UNode>(UNode{k, *where});
    }
  }

  bool lookup(std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    UNode* cur = env_.ld(heads_[hash_of(key, buckets_)]);
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      cur = env_.ld(cur->next);
    }
    return cur != nullptr && env_.ld(cur->key) == key;
  }

  bool insert(std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    UNode*& head = heads_[hash_of(key, buckets_)];
    UNode* cur = env_.ld(head);
    UNode* prev = nullptr;
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      prev = cur;
      cur = env_.ld(cur->next);
    }
    if (cur != nullptr && env_.ld(cur->key) == key) return false;
    UNode* n = env_.make<UNode>(UNode{key, cur});
    env_.st(n->next, cur);
    if (prev == nullptr) {
      env_.st(head, n);
    } else {
      env_.st(prev->next, n);
    }
    return true;
  }

  bool erase(std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    UNode*& head = heads_[hash_of(key, buckets_)];
    UNode* cur = env_.ld(head);
    UNode* prev = nullptr;
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      prev = cur;
      cur = env_.ld(cur->next);
    }
    if (cur == nullptr || env_.ld(cur->key) != key) return false;
    UNode* after = env_.ld(cur->next);
    if (prev == nullptr) {
      env_.st(head, after);
    } else {
      env_.st(prev->next, after);
    }
    return true;
  }

 private:
  Env& env_;
  UNode** heads_;  // arena array: timed accesses index into it
  std::size_t buckets_;
};

// ---------------------------------------------------------------------------
// Versioned

struct VNode {
  VNode(Env& env, std::uint64_t k) : key(k), next(env) {}
  const std::uint64_t key;
  versioned<VNode*> next;
};

class VHash {
 public:
  VHash(Env& env, std::size_t buckets) : env_(env), ticket_(env) {
    heads_.reserve(buckets);
    for (std::size_t i = 0; i < buckets; ++i) heads_.emplace_back(env);
  }

  void populate(const std::vector<std::uint64_t>& keys) {
    std::vector<std::vector<std::uint64_t>> per_bucket(heads_.size());
    for (std::uint64_t k : keys) per_bucket[hash_of(k, heads_.size())].push_back(k);
    for (std::size_t b = 0; b < heads_.size(); ++b) {
      auto& ks = per_bucket[b];
      std::sort(ks.begin(), ks.end());
      VNode* next = nullptr;
      for (auto it = ks.rbegin(); it != ks.rend(); ++it) {
        VNode* n = new_node(*it);
        n->next.store_ver(next, kSetupVersion);
        next = n;
      }
      heads_[b].store_ver(next, kSetupVersion);
    }
    ticket_.init(0, kSetupVersion);
  }

  std::uint64_t lookup(TaskId tid, Ver prev, std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    ticket_.enter_ro(prev);
    (void)tid;
    VNode* cur = heads_[hash_of(key, heads_.size())].load_latest(tid);
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      cur = cur->next.load_latest(tid);
    }
    return (cur != nullptr && env_.ld(cur->key) == key) ? 1 : 0;
  }

  std::uint64_t insert(TaskId tid, Ver prev, std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    ticket_.enter_mut(tid, prev);
    HandOverHand<VNode*> hoh(tid);
    VNode* cur = hoh.advance(heads_[hash_of(key, heads_.size())]);
    ticket_.leave_mut(tid, prev);  // bucket head locked: admit the next task
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      cur = hoh.advance(cur->next);
    }
    if (cur != nullptr && env_.ld(cur->key) == key) {
      hoh.release_unchanged();
      return 0;
    }
    VNode* n = new_node(key);
    n->next.store_ver(cur, tid);
    hoh.modify_and_release(n);
    return 1;
  }

  std::uint64_t erase(TaskId tid, Ver prev, std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    ticket_.enter_mut(tid, prev);
    HandOverHand<VNode*> hoh(tid);
    VNode* cur = hoh.advance(heads_[hash_of(key, heads_.size())]);
    ticket_.leave_mut(tid, prev);
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      cur = hoh.advance(cur->next);
    }
    if (cur == nullptr || env_.ld(cur->key) != key) {
      hoh.release_unchanged();
      return 0;
    }
    // hoh holds the edge pointing at the victim; lock the victim's next
    // field too, rename the edge past it, then release both.
    Ver second = 0;
    VNode* after = cur->next.lock_load_last(tid, tid, &second);
    hoh.modify_and_release(after);
    cur->next.unlock_ver(second, tid);
    return 1;
  }

 private:
  VNode* new_node(std::uint64_t key) { return env_.make<VNode>(env_, key); }

  Env& env_;
  TicketRoot<std::uint64_t> ticket_;
  std::vector<versioned<VNode*>> heads_;
};

}  // namespace

RunResult hash_table_sequential(Env& env, const DsSpec& spec) {
  UHash* table = env.make<UHash>(env, bucket_count(spec));
  const auto ops = generate_ops(spec);
  return run_sequential(
      env, [table, &spec] { table->populate(initial_keys(spec)); },
      [&env, table, ops] {
        std::uint64_t sum = 0;
        for (const Op& op : ops) {
          switch (op.kind) {
            case OpKind::kLookup:
            case OpKind::kScan:
              mix(sum, table->lookup(op.key) ? 1 : 0);
              break;
            case OpKind::kInsert:
              mix(sum, table->insert(op.key) ? 1 : 0);
              break;
            case OpKind::kDelete:
              mix(sum, table->erase(op.key) ? 1 : 0);
              break;
          }
        }
        return sum;
      });
}

RunResult hash_table_versioned(Env& env, const DsSpec& spec, int cores) {
  static_check_workload(env, spec);
  VHash* table = env.make<VHash>(env, bucket_count(spec));
  const auto ops = generate_ops(spec);
  auto results = std::make_shared<std::vector<std::uint64_t>>(ops.size());
  return run_tasked(
      env, cores, [table, &spec] { table->populate(initial_keys(spec)); },
      [&](TaskRuntime& rt) {
        const auto prevs = prev_mutator_versions(ops);
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const Op op = ops[i];
          const Ver prev = prevs[i];
          rt.create_task(kFirstTaskId + i,
                         [table, op, prev, results, i](TaskId tid) {
                           switch (op.kind) {
                             case OpKind::kLookup:
                             case OpKind::kScan:
                               (*results)[i] = table->lookup(tid, prev, op.key);
                               break;
                             case OpKind::kInsert:
                               (*results)[i] = table->insert(tid, prev, op.key);
                               break;
                             case OpKind::kDelete:
                               (*results)[i] = table->erase(tid, prev, op.key);
                               break;
                           }
                         });
        }
      },
      [results] {
        std::uint64_t sum = 0;
        for (std::uint64_t r : *results) mix(sum, r);
        return sum;
      });
}

}  // namespace osim
