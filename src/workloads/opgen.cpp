#include "workloads/opgen.hpp"

#include <random>
#include <unordered_set>

namespace osim {

std::vector<std::uint64_t> initial_keys(const DsSpec& spec) {
  std::mt19937_64 rng(spec.seed);
  std::uniform_int_distribution<std::uint64_t> dist(1, spec.key_space());
  std::unordered_set<std::uint64_t> used;
  std::vector<std::uint64_t> keys;
  keys.reserve(spec.initial_size);
  while (keys.size() < spec.initial_size) {
    const std::uint64_t k = dist(rng);
    if (used.insert(k).second) keys.push_back(k);
  }
  return keys;
}

std::vector<Op> generate_ops(const DsSpec& spec) {
  std::mt19937_64 rng(spec.seed ^ 0x9e3779b97f4a7c15ull);
  std::uniform_int_distribution<std::uint64_t> dist(1, spec.key_space());
  std::vector<Op> ops;
  ops.reserve(static_cast<std::size_t>(spec.ops));
  const OpKind read_kind = spec.scan_range > 1 ? OpKind::kScan : OpKind::kLookup;
  int until_write = spec.reads_per_write;
  bool next_insert = true;
  for (int i = 0; i < spec.ops; ++i) {
    if (until_write > 0) {
      ops.push_back({read_kind, dist(rng)});
      --until_write;
    } else {
      ops.push_back({next_insert ? OpKind::kInsert : OpKind::kDelete,
                     dist(rng)});
      next_insert = !next_insert;
      until_write = spec.reads_per_write;
    }
  }
  return ops;
}

}  // namespace osim
