#include "workloads/linked_list.hpp"

#include <algorithm>
#include <memory>
#include <vector>

#include "runtime/pipeline.hpp"
#include "workloads/opstream.hpp"
#include "workloads/runner.hpp"

namespace osim {

namespace {

// Instruction charges shared by both variants (loop control, compares).
constexpr std::uint64_t kOpSetupInstr = 30;
constexpr std::uint64_t kStepInstr = 10;

// ---------------------------------------------------------------------------
// Unversioned (sequential baseline)

struct UNode {
  std::uint64_t key;
  UNode* next;
};

class UList {
 public:
  explicit UList(Env& env) : env_(env) {}

  void populate(const std::vector<std::uint64_t>& keys) {
    std::vector<std::uint64_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    UNode* prev = nullptr;
    for (std::uint64_t k : sorted) {
      auto* n = new_node(k, nullptr);
      (prev == nullptr ? head_ : prev->next) = n;
      prev = n;
    }
  }

  bool lookup(std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    UNode* cur = env_.ld(head_);
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      cur = env_.ld(cur->next);
    }
    return cur != nullptr && env_.ld(cur->key) == key;
  }

  std::uint64_t scan(std::uint64_t key, int range) {
    env_.exec(kOpSetupInstr);
    UNode* cur = env_.ld(head_);
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      cur = env_.ld(cur->next);
    }
    std::uint64_t sum = 0;
    for (int i = 0; i < range && cur != nullptr; ++i) {
      sum += env_.ld(cur->key);
      env_.exec(kStepInstr);
      cur = env_.ld(cur->next);
    }
    return sum;
  }

  bool insert(std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    UNode* cur = env_.ld(head_);
    UNode* prev = nullptr;
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      prev = cur;
      cur = env_.ld(cur->next);
    }
    if (cur != nullptr && env_.ld(cur->key) == key) return false;
    auto* n = new_node(key, cur);
    env_.st(n->next, cur);
    if (prev == nullptr) {
      env_.st(head_, n);
    } else {
      env_.st(prev->next, n);
    }
    return true;
  }

  bool erase(std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    UNode* cur = env_.ld(head_);
    UNode* prev = nullptr;
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      prev = cur;
      cur = env_.ld(cur->next);
    }
    if (cur == nullptr || env_.ld(cur->key) != key) return false;
    UNode* after = env_.ld(cur->next);
    if (prev == nullptr) {
      env_.st(head_, after);
    } else {
      env_.st(prev->next, after);
    }
    return true;
  }

 private:
  UNode* new_node(std::uint64_t key, UNode* next) {
    return env_.make<UNode>(UNode{key, next});
  }

  Env& env_;
  UNode* head_ = nullptr;
};

// ---------------------------------------------------------------------------
// Versioned (task-parallel)

struct VNode {
  VNode(Env& env, std::uint64_t k) : key(k), next(env) {}
  const std::uint64_t key;
  versioned<VNode*> next;
};

class VList {
 public:
  explicit VList(Env& env) : env_(env), ticket_(env) {}

  /// Setup-phase population (runs on core 0, unmeasured).
  void populate(const std::vector<std::uint64_t>& keys) {
    std::vector<std::uint64_t> sorted = keys;
    std::sort(sorted.begin(), sorted.end());
    VNode* first = nullptr;
    VNode* prev = nullptr;
    for (std::uint64_t k : sorted) {
      VNode* n = new_node(k);
      if (prev == nullptr) {
        first = n;
      } else {
        prev->next.store_ver(n, kSetupVersion);
      }
      prev = n;
    }
    if (prev != nullptr) prev->next.store_ver(nullptr, kSetupVersion);
    ticket_.init(first, kSetupVersion);
  }

  std::uint64_t lookup(TaskId tid, Ver prev, std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    VNode* cur = ticket_.enter_ro(prev);
    (void)tid;
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      cur = cur->next.load_latest(tid);
    }
    return (cur != nullptr && env_.ld(cur->key) == key) ? 1 : 0;
  }

  std::uint64_t scan(TaskId tid, Ver prev, std::uint64_t key, int range) {
    env_.exec(kOpSetupInstr);
    VNode* cur = ticket_.enter_ro(prev);
    (void)tid;
    while (cur != nullptr && env_.ld(cur->key) < key) {
      env_.exec(kStepInstr);
      cur = cur->next.load_latest(tid);
    }
    std::uint64_t sum = 0;
    for (int i = 0; i < range && cur != nullptr; ++i) {
      sum += env_.ld(cur->key);
      env_.exec(kStepInstr);
      cur = cur->next.load_latest(tid);
    }
    return sum;
  }

  std::uint64_t insert(TaskId tid, Ver prev, std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    VNode* cur = ticket_.enter_mut(tid, prev);
    if (cur == nullptr || env_.ld(cur->key) >= key) {
      if (cur != nullptr && env_.ld(cur->key) == key) {
        ticket_.leave_mut(tid, prev);
        return 0;  // duplicate
      }
      VNode* n = new_node(key);
      n->next.store_ver(cur, tid);
      ticket_.leave_mut(tid, prev, n);
      return 1;
    }
    HandOverHand<VNode*> hoh(tid);
    VNode* nxt = hoh.advance(cur->next);
    ticket_.leave_mut(tid, prev);  // root released only after the first deep lock
    while (nxt != nullptr && env_.ld(nxt->key) < key) {
      env_.exec(kStepInstr);
      VNode* after = hoh.advance(nxt->next);
      cur = nxt;
      nxt = after;
    }
    if (nxt != nullptr && env_.ld(nxt->key) == key) {
      hoh.release_unchanged();
      return 0;
    }
    VNode* n = new_node(key);
    n->next.store_ver(nxt, tid);
    hoh.modify_and_release(n);
    return 1;
  }

  std::uint64_t erase(TaskId tid, Ver prev, std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    VNode* cur = ticket_.enter_mut(tid, prev);
    if (cur == nullptr || env_.ld(cur->key) > key) {
      ticket_.leave_mut(tid, prev);
      return 0;
    }
    if (env_.ld(cur->key) == key) {
      // Unlink the first node: the root value is renamed to its successor.
      HandOverHand<VNode*> hoh(tid);
      VNode* nxt = hoh.advance(cur->next);
      ticket_.leave_mut(tid, prev, nxt);
      hoh.release_unchanged();
      return 1;
    }
    HandOverHand<VNode*> hoh(tid);
    VNode* nxt = hoh.advance(cur->next);
    ticket_.leave_mut(tid, prev);
    while (nxt != nullptr && env_.ld(nxt->key) < key) {
      env_.exec(kStepInstr);
      VNode* after = hoh.advance(nxt->next);
      cur = nxt;
      nxt = after;
    }
    if (nxt == nullptr || env_.ld(nxt->key) != key) {
      hoh.release_unchanged();
      return 0;
    }
    // Two locks held across the unlink: cur->next (held by hoh) and
    // nxt->next. Renaming cur->next past the victim keeps the old version
    // visible to older readers (snapshot isolation through a delete).
    Ver second = 0;
    VNode* after = nxt->next.lock_load_last(tid, tid, &second);
    hoh.modify_and_release(after);
    nxt->next.unlock_ver(second, tid);
    return 1;
  }

 private:
  VNode* new_node(std::uint64_t key) { return env_.make<VNode>(env_, key); }

  Env& env_;
  TicketRoot<VNode*> ticket_;
};

std::uint64_t apply_op(const Op& op, int scan_range, auto&& lookup,
                       auto&& scan, auto&& insert, auto&& erase) {
  switch (op.kind) {
    case OpKind::kLookup:
      return lookup(op.key);
    case OpKind::kScan:
      return scan(op.key, scan_range);
    case OpKind::kInsert:
      return insert(op.key);
    case OpKind::kDelete:
      return erase(op.key);
  }
  return 0;
}

}  // namespace

RunResult linked_list_sequential(Env& env, const DsSpec& spec) {
  UList* list = env.make<UList>(env);
  const auto ops = generate_ops(spec);
  return run_sequential(
      env, [&env, list, &spec] { list->populate(initial_keys(spec)); },
      [&env, list, &spec, ops] {
        std::uint64_t sum = 0;
        for (const Op& op : ops) {
          mix(sum, apply_op(
                       op, spec.scan_range,
                       [&](std::uint64_t k) -> std::uint64_t {
                         return list->lookup(k) ? 1 : 0;
                       },
                       [&](std::uint64_t k, int r) { return list->scan(k, r); },
                       [&](std::uint64_t k) -> std::uint64_t {
                         return list->insert(k) ? 1 : 0;
                       },
                       [&](std::uint64_t k) -> std::uint64_t {
                         return list->erase(k) ? 1 : 0;
                       }));
        }
        return sum;
      });
}

RunResult linked_list_versioned(Env& env, const DsSpec& spec, int cores) {
  static_check_workload(env, spec);
  VList* list = env.make<VList>(env);
  const auto ops = generate_ops(spec);
  auto results = std::make_shared<std::vector<std::uint64_t>>(ops.size());
  return run_tasked(
      env, cores,
      [list, &spec] { list->populate(initial_keys(spec)); },
      [&](TaskRuntime& rt) {
        const auto prevs = prev_mutator_versions(ops);
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const Op op = ops[i];
          const Ver prev = prevs[i];
          rt.create_task(
              kFirstTaskId + i,
              [list, op, prev, &spec, results, i](TaskId tid) {
                (*results)[i] = apply_op(
                    op, spec.scan_range,
                    [&](std::uint64_t k) { return list->lookup(tid, prev, k); },
                    [&](std::uint64_t k, int r) {
                      return list->scan(tid, prev, k, r);
                    },
                    [&](std::uint64_t k) {
                      return list->insert(tid, prev, k);
                    },
                    [&](std::uint64_t k) {
                      return list->erase(tid, prev, k);
                    });
              });
        }
      },
      [results] {
        std::uint64_t sum = 0;
        for (std::uint64_t r : *results) mix(sum, r);
        return sum;
      });
}

}  // namespace osim
