// Chained hash table workload (paper Sec. IV-D).
//
// Buckets are sorted linked lists. In the versioned variant a single root
// ticket orders entry into the table (the paper's root-ordering bottleneck:
// "on write-intensive hash tables, up to 85% of versioned root loads are
// stalled"); after hashing, mutators lock the bucket head edge before
// releasing the ticket and proceed hand-over-hand, so tasks that hash to
// different buckets never synchronize again.
#pragma once

#include "runtime/env.hpp"
#include "workloads/opgen.hpp"

namespace osim {

RunResult hash_table_sequential(Env& env, const DsSpec& spec);
RunResult hash_table_versioned(Env& env, const DsSpec& spec, int cores);

}  // namespace osim
