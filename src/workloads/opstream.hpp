// Abstract versioned op streams for the static checker (osim-check's
// offline front end).
//
// The data-structure workloads all funnel through the same root-ticket
// protocol (runtime/pipeline.hpp): mutator task t lock-loads the root at
// the previous mutator's version and renames it to t; readers load the
// previous mutator's version directly. root_protocol_stream() lowers a
// DsSpec's generated op sequence to that abstract stream so
// analysis::static_check can prove the pipeline is well-formed — every
// ticket version is created exactly once, every read has a writer, every
// task begins and ends — before any simulated cycle is spent.
#pragma once

#include <string>
#include <vector>

#include "analysis/explore.hpp"
#include "analysis/static_check.hpp"
#include "runtime/env.hpp"
#include "workloads/opgen.hpp"

namespace osim {

/// Lower `spec`'s op sequence to the root-ticket protocol stream, in
/// submission (task-id) order. The root is an abstract address.
std::vector<analysis::VOp> root_protocol_stream(const DsSpec& spec);

/// Static front end hook for the DsSpec workloads: when `env` has checking
/// enabled, run the static pass over the spec's stream and merge findings
/// into the run's checker. Returns the number of findings (0 when checking
/// is off or the stream is clean).
std::size_t static_check_workload(Env& env, const DsSpec& spec);

/// The model-checking litmus suite (tools/osim-mc, tests/test_explore):
/// small, *determinate* multi-threaded programs over the concurrent engine,
/// each probing one protocol mechanism — message passing through exact
/// versions (mp2), lock handoff via rename (lock_handoff), commuting
/// per-slot traffic that showcases sleep-set reduction (wide3), the
/// reclaim-vs-insert window under the paper GC fence (gc_fence),
/// registration at the thread bound (ctx_bound), and a guaranteed
/// cross-thread deadlock (deadlock_pair).
std::vector<analysis::McProgram> mc_litmus_programs();

/// Look up one litmus by name; nullptr when unknown. The returned pointer
/// aims into a function-local static of the full suite.
const analysis::McProgram* find_mc_litmus(const std::string& name);

}  // namespace osim
