// Sorted singly-linked list workload (paper Sec. IV-D).
//
// Unversioned variant: plain pointers, sequential execution.
// Versioned variant: every next pointer is an O-structure; tasks enter the
// list in order through a root ticket, mutators traverse hand-over-hand
// with LOCK-LOAD-LATEST and rename pointers on update, readers traverse
// lock-free with LOAD-LATEST and get snapshot isolation. Deletions unlink
// physically; old readers keep seeing the unlinked node through their
// version snapshot.
#pragma once

#include "runtime/env.hpp"
#include "workloads/opgen.hpp"

namespace osim {

/// Sequential unversioned run on core 0. Returns measured cycles/checksum.
RunResult linked_list_sequential(Env& env, const DsSpec& spec);

/// Parallel versioned run with one task per operation on `cores` workers.
RunResult linked_list_versioned(Env& env, const DsSpec& spec, int cores);

}  // namespace osim
