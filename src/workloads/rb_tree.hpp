// Red-black tree workload (paper Sec. IV-D).
//
// Balanced structures are the hard case for task pipelining: rebalancing
// touches many pointers, so the versioned variant allows a *single writer*
// at a time (the mutator holds the root ticket for its whole operation)
// while readers traverse concurrent snapshots and "might see a slightly
// unbalanced tree". The writer accumulates its pointer updates in a write
// buffer and commits each touched field once as version tid (STORE-VERSION
// renaming), so older readers are never disturbed — even mid-rotation.
//
// Deletion is logical (alive flag); insertions perform full red-black
// fixups with rotations. Node colors are writer-private metadata and are
// not versioned (readers never look at them).
#pragma once

#include "runtime/env.hpp"
#include "workloads/opgen.hpp"

namespace osim {

RunResult rb_tree_sequential(Env& env, const DsSpec& spec);
RunResult rb_tree_versioned(Env& env, const DsSpec& spec, int cores);

/// Host-side red-black invariant check of the sequential implementation
/// (test hook): root black, no red-red edges, equal black heights, BST
/// order. Builds a tree from `keys` and validates it.
bool rb_invariants_hold(Env& env, const std::vector<std::uint64_t>& keys);

}  // namespace osim
