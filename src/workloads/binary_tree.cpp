#include "workloads/binary_tree.hpp"

#include <memory>
#include <unordered_map>
#include <vector>

#include "runtime/pipeline.hpp"
#include "runtime/rwlock.hpp"
#include "workloads/opstream.hpp"
#include "workloads/runner.hpp"

namespace osim {

namespace {

constexpr std::uint64_t kOpSetupInstr = 30;
constexpr std::uint64_t kStepInstr = 12;

// ---------------------------------------------------------------------------
// Unversioned tree (shared by the sequential baseline and the rwlock run)

struct UNode {
  std::uint64_t key;
  UNode* left = nullptr;
  UNode* right = nullptr;
  bool alive = true;
};

class UTree {
 public:
  explicit UTree(Env& env) : env_(env) {}

  void populate(const std::vector<std::uint64_t>& keys) {
    for (std::uint64_t k : keys) insert_host(k);
  }

  bool lookup(std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    UNode* cur = env_.ld(root_);
    while (cur != nullptr) {
      const std::uint64_t ck = env_.ld(cur->key);
      if (ck == key) return env_.ld(cur->alive);
      env_.exec(kStepInstr);
      cur = key < ck ? env_.ld(cur->left) : env_.ld(cur->right);
    }
    return false;
  }

  std::uint64_t scan(std::uint64_t key, int range) {
    env_.exec(kOpSetupInstr);
    std::uint64_t sum = 0;
    int remaining = range;
    scan_rec(env_.ld(root_), key, remaining, sum);
    return sum;
  }

  bool set_alive(std::uint64_t key, bool alive) {
    env_.exec(kOpSetupInstr);
    UNode* cur = env_.ld(root_);
    UNode* parent = nullptr;
    bool went_left = false;
    while (cur != nullptr) {
      const std::uint64_t ck = env_.ld(cur->key);
      if (ck == key) {
        if (env_.ld(cur->alive) == alive) return false;
        env_.st(cur->alive, alive);
        return true;
      }
      env_.exec(kStepInstr);
      parent = cur;
      went_left = key < ck;
      cur = went_left ? env_.ld(cur->left) : env_.ld(cur->right);
    }
    if (!alive) return false;  // delete of an absent key
    auto* n = new_node(key);
    if (parent == nullptr) {
      env_.st(root_, n);
    } else if (went_left) {
      env_.st(parent->left, n);
    } else {
      env_.st(parent->right, n);
    }
    return true;
  }

 private:
  void scan_rec(UNode* n, std::uint64_t key, int& remaining,
                std::uint64_t& sum) {
    if (n == nullptr || remaining == 0) return;
    const std::uint64_t ck = env_.ld(n->key);
    env_.exec(kStepInstr);
    if (ck >= key) {
      scan_rec(env_.ld(n->left), key, remaining, sum);
      if (remaining == 0) return;
      if (env_.ld(n->alive)) {
        sum += ck;
        --remaining;
      }
      if (remaining == 0) return;
    }
    scan_rec(env_.ld(n->right), key, remaining, sum);
  }

  void insert_host(std::uint64_t key) {
    UNode** where = &root_;
    while (*where != nullptr) {
      if ((*where)->key == key) {
        (*where)->alive = true;
        return;
      }
      where = key < (*where)->key ? &(*where)->left : &(*where)->right;
    }
    *where = new_node(key);
  }

  UNode* new_node(std::uint64_t key) {
    UNode* n = env_.make<UNode>();
    n->key = key;
    return n;
  }

  Env& env_;
  UNode* root_ = nullptr;
};

// ---------------------------------------------------------------------------
// Versioned tree

struct VNode {
  VNode(Env& env, std::uint64_t k) : key(k), left(env), right(env), alive(env) {}
  const std::uint64_t key;
  versioned<VNode*> left;
  versioned<VNode*> right;
  versioned<std::uint64_t> alive;
};

class VTree {
 public:
  explicit VTree(Env& env) : env_(env), ticket_(env) {}

  void populate(const std::vector<std::uint64_t>& keys) {
    VNode* root = nullptr;
    for (std::uint64_t k : keys) {
      VNode** where = &root;
      while (*where != nullptr) {
        where = k < (*where)->key ? &host_left_[*where] : &host_right_[*where];
      }
      *where = new_node(k, kSetupVersion);
    }
    // Publish the host-built shape as version kSetupVersion.
    publish(root);
    ticket_.init(root, kSetupVersion);
  }

  std::uint64_t lookup(TaskId tid, Ver prev, std::uint64_t key) {
    env_.exec(kOpSetupInstr);
    VNode* cur = ticket_.enter_ro(prev);
    (void)tid;
    while (cur != nullptr) {
      const std::uint64_t ck = env_.ld(cur->key);
      if (ck == key) return cur->alive.load_latest(tid);
      env_.exec(kStepInstr);
      cur = key < ck ? cur->left.load_latest(tid) : cur->right.load_latest(tid);
    }
    return 0;
  }

  std::uint64_t scan(TaskId tid, Ver prev, std::uint64_t key, int range) {
    env_.exec(kOpSetupInstr);
    VNode* root = ticket_.enter_ro(prev);
    (void)tid;
    std::uint64_t sum = 0;
    int remaining = range;
    scan_rec(root, tid, key, remaining, sum);
    return sum;
  }

  /// Insert (alive=1) or logical-delete (alive=0) under the mutator
  /// protocol: the path is locked hand-over-hand, the final edge or alive
  /// flag is renamed to version tid.
  std::uint64_t set_alive(TaskId tid, Ver prev, std::uint64_t key,
                          bool alive) {
    env_.exec(kOpSetupInstr);
    VNode* cur = ticket_.enter_mut(tid, prev);
    if (cur == nullptr) {
      if (!alive) {
        ticket_.leave_mut(tid, prev);
        return 0;
      }
      VNode* n = new_node(key, tid);
      ticket_.leave_mut(tid, prev, n);
      return 1;
    }
    HandOverHand<VNode*> hoh(tid);
    bool root_held = true;
    auto release_prev = [&] {
      if (root_held) {
        ticket_.leave_mut(tid, prev);
        root_held = false;
      } else {
        hoh.release_unchanged();
      }
    };
    while (true) {
      const std::uint64_t ck = env_.ld(cur->key);
      if (ck == key) {
        // Lock the alive flag before releasing the edge that led here.
        Ver lv = 0;
        const std::uint64_t was = cur->alive.lock_load_last(tid, tid, &lv);
        release_prev();
        std::uint64_t changed = 0;
        if (was != static_cast<std::uint64_t>(alive)) {
          cur->alive.store_ver(alive ? 1 : 0, tid);
          changed = 1;
        }
        cur->alive.unlock_ver(lv, tid);
        return changed;
      }
      env_.exec(kStepInstr);
      versioned<VNode*>& edge = key < ck ? cur->left : cur->right;
      // Acquire the next edge, then release the previous hold. advance()
      // releases hoh's own hold; the root ticket is released by hand after
      // the first acquisition.
      Ver lv = 0;
      VNode* child = edge.lock_load_last(tid, tid, &lv);
      release_prev();
      hoh.adopt(edge, lv);
      if (child == nullptr) {
        if (!alive) {
          hoh.release_unchanged();
          return 0;  // delete of an absent key
        }
        VNode* n = new_node(key, tid);
        hoh.modify_and_release(n);
        return 1;
      }
      cur = child;
    }
  }

 private:
  void scan_rec(VNode* n, TaskId tid, std::uint64_t key, int& remaining,
                std::uint64_t& sum) {
    if (n == nullptr || remaining == 0) return;
    const std::uint64_t ck = env_.ld(n->key);
    env_.exec(kStepInstr);
    if (ck >= key) {
      scan_rec(n->left.load_latest(tid), tid, key, remaining, sum);
      if (remaining == 0) return;
      if (n->alive.load_latest(tid) != 0) {
        sum += ck;
        --remaining;
      }
      if (remaining == 0) return;
    }
    scan_rec(n->right.load_latest(tid), tid, key, remaining, sum);
  }

  void publish(VNode* n) {
    if (n == nullptr) return;
    VNode* l = host_left_.count(n) ? host_left_[n] : nullptr;
    VNode* r = host_right_.count(n) ? host_right_[n] : nullptr;
    n->left.store_ver(l, kSetupVersion);
    n->right.store_ver(r, kSetupVersion);
    publish(l);
    publish(r);
  }

  VNode* new_node(std::uint64_t key, Ver ver) {
    VNode* n = env_.make<VNode>(env_, key);
    if (ver != kSetupVersion) {
      // Setup-version nodes get their fields published later in one pass.
      n->left.store_ver(nullptr, ver);
      n->right.store_ver(nullptr, ver);
      n->alive.store_ver(1, ver);
    } else {
      n->alive.store_ver(1, kSetupVersion);
    }
    return n;
  }

  Env& env_;
  TicketRoot<VNode*> ticket_;
  // Host-side shape used only during populate().
  std::unordered_map<VNode*, VNode*> host_left_;
  std::unordered_map<VNode*, VNode*> host_right_;
};

}  // namespace

RunResult binary_tree_sequential(Env& env, const DsSpec& spec) {
  UTree* tree = env.make<UTree>(env);
  const auto ops = generate_ops(spec);
  return run_sequential(
      env, [tree, &spec] { tree->populate(initial_keys(spec)); },
      [&env, tree, &spec, ops] {
        std::uint64_t sum = 0;
        for (const Op& op : ops) {
          switch (op.kind) {
            case OpKind::kLookup:
              mix(sum, tree->lookup(op.key) ? 1 : 0);
              break;
            case OpKind::kScan:
              mix(sum, tree->scan(op.key, spec.scan_range));
              break;
            case OpKind::kInsert:
              mix(sum, tree->set_alive(op.key, true) ? 1 : 0);
              break;
            case OpKind::kDelete:
              mix(sum, tree->set_alive(op.key, false) ? 1 : 0);
              break;
          }
        }
        return sum;
      });
}

RunResult binary_tree_versioned(Env& env, const DsSpec& spec, int cores) {
  static_check_workload(env, spec);
  VTree* tree = env.make<VTree>(env);
  const auto ops = generate_ops(spec);
  auto results = std::make_shared<std::vector<std::uint64_t>>(ops.size());
  return run_tasked(
      env, cores, [tree, &spec] { tree->populate(initial_keys(spec)); },
      [&](TaskRuntime& rt) {
        const auto prevs = prev_mutator_versions(ops);
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const Op op = ops[i];
          const Ver prev = prevs[i];
          rt.create_task(
              kFirstTaskId + i,
              [tree, op, prev, &spec, results, i](TaskId tid) {
                switch (op.kind) {
                  case OpKind::kLookup:
                    (*results)[i] = tree->lookup(tid, prev, op.key);
                    break;
                  case OpKind::kScan:
                    (*results)[i] =
                        tree->scan(tid, prev, op.key, spec.scan_range);
                    break;
                  case OpKind::kInsert:
                    (*results)[i] = tree->set_alive(tid, prev, op.key, true);
                    break;
                  case OpKind::kDelete:
                    (*results)[i] = tree->set_alive(tid, prev, op.key, false);
                    break;
                }
              });
        }
      },
      [results] {
        std::uint64_t sum = 0;
        for (std::uint64_t r : *results) mix(sum, r);
        return sum;
      });
}

RunResult binary_tree_rwlock(Env& env, const DsSpec& spec, int cores) {
  UTree* tree = env.make<UTree>(env);
  SimRWLock* lock = env.make<SimRWLock>(env);
  const auto ops = generate_ops(spec);
  auto results = std::make_shared<std::vector<std::uint64_t>>(ops.size());
  return run_tasked(
      env, cores, [tree, &spec] { tree->populate(initial_keys(spec)); },
      [&](TaskRuntime& rt) {
        for (std::size_t i = 0; i < ops.size(); ++i) {
          const Op op = ops[i];
          rt.create_task(
              kFirstTaskId + i,
              [tree, lock, op, &spec, results, i](TaskId) {
                switch (op.kind) {
                  case OpKind::kLookup:
                    lock->lock_shared();
                    (*results)[i] = tree->lookup(op.key) ? 1 : 0;
                    lock->unlock_shared();
                    break;
                  case OpKind::kScan:
                    lock->lock_shared();
                    (*results)[i] = tree->scan(op.key, spec.scan_range);
                    lock->unlock_shared();
                    break;
                  case OpKind::kInsert:
                    lock->lock();
                    (*results)[i] = tree->set_alive(op.key, true) ? 1 : 0;
                    lock->unlock();
                    break;
                  case OpKind::kDelete:
                    lock->lock();
                    (*results)[i] = tree->set_alive(op.key, false) ? 1 : 0;
                    lock->unlock();
                    break;
                }
              });
        }
      },
      [results] {
        std::uint64_t sum = 0;
        for (std::uint64_t r : *results) mix(sum, r);
        return sum;
      });
}

}  // namespace osim
