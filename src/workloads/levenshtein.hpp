// Levenshtein edit distance (paper Sec. IV-B).
//
// Dynamic-programming table D[i][j]; cell (i,j) depends on (i-1,j),
// (i,j-1) and (i-1,j-1). The versioned variant assigns one task per row:
// each cell is an I-structure (single version), and the load of the
// upper-row cell blocks until the previous row's task has produced it, so
// rows pipeline diagonally across cores with no barriers.
#pragma once

#include <cstdint>

#include "runtime/env.hpp"
#include "workloads/opgen.hpp"

namespace osim {

struct LevSpec {
  int n = 1000;  ///< string length (paper: 1000)
  std::uint64_t seed = 11;
};

RunResult levenshtein_sequential(Env& env, const LevSpec& spec);
RunResult levenshtein_versioned(Env& env, const LevSpec& spec, int cores);

}  // namespace osim
