// Software O-structures: the paper's abandoned starting point.
//
// "O-structures interface and capabilities can be implemented purely as a
// software runtime abstraction; we've indeed started with a software
// prototype. However, the logic added to versioned memory operations
// incurred too much overhead, indicating hardware support is required."
// (paper Sec. II-C). This module provides that software runtime on top of
// *conventional* simulated memory only, so the hardware/software gap can be
// quantified (see bench_sw_vs_hw):
//
//   * each location holds a lock word plus a sorted singly-linked list of
//     (version, locked_by, data) records in ordinary memory,
//   * every operation takes the location lock (an atomic RMW), walks the
//     records with plain loads, and releases the lock,
//   * blocked operations park on a futex-like wait list and re-acquire.
//
// Semantics match the hardware O-structures exactly (the tests assert it);
// only the cost differs.
#pragma once

#include <cstdint>
#include <optional>

#include "runtime/env.hpp"

namespace osim {

class SwOStructure {
 public:
  explicit SwOStructure(Env& env) : env_(env) {}

  SwOStructure(const SwOStructure&) = delete;
  SwOStructure& operator=(const SwOStructure&) = delete;

  /// STORE-VERSION equivalent. Faults (throws OFault) on duplicates.
  void store_version(Ver v, std::uint64_t data);
  /// LOAD-VERSION equivalent: blocks until version `v` exists, unlocked.
  std::uint64_t load_version(Ver v);
  /// LOAD-LATEST equivalent.
  std::uint64_t load_latest(Ver cap, Ver* found = nullptr);
  /// LOCK-LOAD-VERSION / LOCK-LOAD-LATEST equivalents.
  std::uint64_t lock_load_version(Ver v, TaskId locker);
  std::uint64_t lock_load_latest(Ver cap, TaskId locker, Ver* found = nullptr);
  /// UNLOCK-VERSION equivalent, with optional renaming.
  void unlock_version(Ver locked_v, TaskId owner,
                      std::optional<Ver> rename_to = std::nullopt);

  int version_count() const { return count_; }

 private:
  struct Record {
    Ver version = 0;
    TaskId locked_by = 0;
    std::uint64_t data = 0;
    Record* next = nullptr;
  };

  /// Take the location lock: a CAS loop in software. Contended acquisitions
  /// park on the wait list (a futex would); the RMW itself is a charged
  /// exclusive access to the lock word.
  void acquire();
  void release_and_wake();

  /// Find the record for exactly `v` (charged walk). Must hold the lock.
  Record* find_exact(Ver v);
  /// Find the newest record at or below `cap` (charged walk).
  Record* find_latest(Ver cap);
  /// Insert a fresh record in sorted order (charged walk + link writes).
  Record* insert(Ver v, std::uint64_t data);

  Env& env_;
  std::uint64_t lock_word_ = 0;
  bool locked_ = false;
  WaitList lock_q_;
  WaitList version_q_;  ///< waiters for versions/unlocks (futex-style)
  Record* head_ = nullptr;
  int count_ = 0;
};

}  // namespace osim
