// Simulated reader-writer lock: the baseline of the snapshot-isolation
// comparison (paper Sec. IV-C, Fig. 8). Writer-preferring; acquisition is
// charged as an atomic RMW on the lock word plus a few instructions, and
// contended acquisitions block on wait lists (no spinning cycles burned).
#pragma once

#include <cstdint>

#include "runtime/env.hpp"

namespace osim {

class SimRWLock {
 public:
  explicit SimRWLock(Env& env) : env_(env) {}

  SimRWLock(const SimRWLock&) = delete;
  SimRWLock& operator=(const SimRWLock&) = delete;

  /// Shared (reader) acquisition. Blocks while a writer holds the lock or
  /// writers are queued (writer preference).
  void lock_shared();
  void unlock_shared();

  /// Exclusive (writer) acquisition.
  void lock();
  void unlock();

  int readers() const { return readers_; }
  bool writer_active() const { return writer_; }

 private:
  /// Charge one atomic RMW on the lock word.
  void rmw();

  Env& env_;
  int readers_ = 0;
  bool writer_ = false;
  int writers_waiting_ = 0;
  WaitList reader_q_;
  WaitList writer_q_;
  std::uint64_t word_ = 0;  ///< the simulated lock word (host storage)
};

}  // namespace osim
