// versioned<T>: the library-level O-structure API of the paper's Figure 1
// (right column). Each versioned<T> owns one O-structure slot; T must fit
// the 8-byte data word (pointers, integers, floats).
//
//   versioned<node_t*> next{env};
//   next.store_ver(n, tid);
//   node_t* cur = next.lock_load_last(tid, tid);
//   next.unlock_ver(tid, tid + 1);   // rename: unblock the next task
#pragma once

#include <bit>
#include <cstdint>
#include <optional>
#include <type_traits>

#include "runtime/env.hpp"

namespace osim {

template <typename T>
class versioned {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "versioned<T> requires a word-sized trivially-copyable T");

 public:
  /// An unbound versioned value; bind() before use.
  versioned() = default;

  /// Allocate a fresh O-structure slot in `env`.
  explicit versioned(Env& env) { bind(env); }

  void bind(Env& env) {
    env_ = &env;
    addr_ = env.store().alloc(1);
  }

  /// Convert the slot back to conventional memory (all versions dropped).
  void free() {
    if (env_ != nullptr) {
      env_->store().release(addr_, 1);
      env_ = nullptr;
    }
  }

  bool bound() const { return env_ != nullptr; }
  OAddr addr() const { return addr_; }

  /// Mark accesses through this object as data-structure-root accesses
  /// (feeds the paper's root-stall statistics).
  void mark_root(bool is_root = true) { flags_.root = is_root; }

  T load_ver(Ver v) const {
    return from_word(env_->store().load_version(addr_, v, flags_));
  }

  T load_latest(Ver cap, Ver* got = nullptr) const {
    return from_word(env_->store().load_latest(addr_, cap, got, flags_));
  }

  T lock_load_ver(Ver v, TaskId locker) const {
    return from_word(env_->store().lock_load_version(addr_, v, locker, flags_));
  }

  T lock_load_last(Ver cap, TaskId locker, Ver* got = nullptr) const {
    return from_word(
        env_->store().lock_load_latest(addr_, cap, locker, got, flags_));
  }

  void store_ver(T val, Ver v) {
    env_->store().store_version(addr_, v, to_word(val), flags_);
  }

  void unlock_ver(Ver locked, TaskId owner,
                  std::optional<Ver> rename_to = std::nullopt) {
    env_->store().unlock_version(addr_, locked, owner, rename_to, flags_);
  }

  /// Host-side (untimed) peek, for verification code in tests/benches.
  std::optional<T> peek(Ver v) const {
    auto w = env_->store().peek_version(addr_, v);
    if (!w) return std::nullopt;
    return from_word(*w);
  }

 private:
  static std::uint64_t to_word(T val) {
    std::uint64_t w = 0;
    __builtin_memcpy(&w, &val, sizeof(T));
    return w;
  }
  static T from_word(std::uint64_t w) {
    T val;
    __builtin_memcpy(&val, &w, sizeof(T));
    return val;
  }

  Env* env_ = nullptr;
  OAddr addr_ = 0;
  OpFlags flags_{};
};

}  // namespace osim
