#include "runtime/rwlock.hpp"

namespace osim {

namespace {
constexpr std::uint64_t kAcquireInstructions = 6;
constexpr Cycles kWakeLatency = 8;
}  // namespace

void SimRWLock::rmw() {
  env_.exec(kAcquireInstructions);
  env_.st(word_, word_ + 1);  // the atomic RMW on the lock word
}

void SimRWLock::lock_shared() {
  env_.machine().sync_to_global_order();
  while (writer_ || writers_waiting_ > 0) {
    env_.machine().block_on(reader_q_);
  }
  ++readers_;
  rmw();
}

void SimRWLock::unlock_shared() {
  env_.machine().sync_to_global_order();
  --readers_;
  rmw();
  if (readers_ == 0 && !writer_q_.empty()) {
    env_.machine().wake_all(writer_q_, kWakeLatency);
  }
}

void SimRWLock::lock() {
  env_.machine().sync_to_global_order();
  ++writers_waiting_;
  while (writer_ || readers_ > 0) {
    env_.machine().block_on(writer_q_);
  }
  --writers_waiting_;
  writer_ = true;
  rmw();
}

void SimRWLock::unlock() {
  env_.machine().sync_to_global_order();
  writer_ = false;
  rmw();
  // Writer preference: queued writers go first, then the reader herd.
  if (!writer_q_.empty()) {
    env_.machine().wake_all(writer_q_, kWakeLatency);
  } else if (!reader_q_.empty()) {
    env_.machine().wake_all(reader_q_, kWakeLatency);
  }
}

}  // namespace osim
