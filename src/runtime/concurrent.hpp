// Work-stealing task pool over real host threads (--exec=concurrent).
//
// TaskRuntime (runtime/task.hpp) executes tasks either on simulated fibers
// (timed backend) or inline in creation order (functional backend); both
// drive the single-threaded VersionStore from one host thread. This pool is
// the third execution mode: N host threads drive the thread-safe
// ConcurrentVersionStore (core/concurrent_store.hpp) concurrently.
//
// Scheduling keeps the paper's static tid-mod-cores assignment as the
// *home* mapping but adds stealing for load balance: worker w's home queue
// holds its tasks in ascending tid order and is consumed from the head
// through an atomic cursor; a worker whose own queue has drained claims
// from the youngest-progress victim's head instead of idling.
//
// Progress argument (why a forward-only-dependency workload cannot
// deadlock): queues are filled in ascending tid order and always consumed
// from the head, so the set of *claimed-or-finished* tasks at any instant
// is a union of queue prefixes. If a running task blocks, it waits on a
// version owed by a strictly older task (forward-only dependencies). That
// older task is either running (and will finish or block on a still-older
// task — the chain strictly decreases in age and terminates at the oldest
// blocked task, whose dependency is already satisfied or claimable) or
// sits at the head of some queue, where an idle worker — in particular the
// eventual stealer — will claim it: a worker only idles when every queue
// is empty. So no cycle of waiting can form, and every park is bounded by
// real progress elsewhere. A workload that violates forward-only
// dependencies deadlocks for real; the store's timeout converts that into
// a kWouldBlock fault naming the parked task and op.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/concurrent_store.hpp"
#include "core/fault.hpp"
#include "sim/machine.hpp"

namespace osim {

class ConcurrentTaskPool {
 public:
  using TaskFn = std::function<void(TaskId)>;

  /// Graceful-degradation knobs. With max_retries == 0 (the default) a
  /// recoverable fault — kWouldBlock (deadlock timeout) or
  /// kResourceExhausted (pool/slot-table pressure) — fails the run fast,
  /// the original behaviour. With retries enabled the worker aborts the
  /// task (rolling back its stores and locks via the store's undo
  /// journal, which requires ConcurrencyConfig::track_aborts), sleeps a
  /// bounded exponential backoff, and re-runs it.
  struct RetryPolicy {
    int max_retries = 0;                  ///< re-runs per task; 0 = fail fast
    std::uint64_t backoff_base_us = 100;  ///< first retry's sleep
    std::uint64_t backoff_cap_us = 20000; ///< backoff ceiling per sleep
  };

  /// Degradation telemetry, aggregated across workers. The vocabulary is
  /// the facade's (core/version_engine.hpp) so chaos JSON and osim-report
  /// spell these fields identically for every engine.
  using RecoveryStats = ::osim::RecoveryStats;

  ConcurrentTaskPool(ConcurrentVersionStore& store, int workers)
      : store_(store), workers_(workers < 1 ? 1 : workers) {}

  int workers() const { return workers_; }

  void set_retry_policy(RetryPolicy p) { retry_ = p; }
  const RetryPolicy& retry_policy() const { return retry_; }

  RecoveryStats recovery_stats() const {
    RecoveryStats s;
    s.aborts = aborts_.load(std::memory_order_relaxed);
    s.retries = retries_.load(std::memory_order_relaxed);
    s.giveups = giveups_.load(std::memory_order_relaxed);
    s.backoff_us = backoff_us_.load(std::memory_order_relaxed);
    return s;
  }

  /// Enqueue a task. Must be called before run(); tasks must be created in
  /// ascending tid order for the progress argument above to hold.
  /// Announces the task to the GC (rule #3 is checked at creation).
  void create_task(TaskId tid, TaskFn fn) {
    store_.task_created(tid);
    tasks_.emplace_back(tid, std::move(fn));
  }

  /// Setup run on the calling thread before the workers start. Optional.
  void set_setup(std::function<void()> fn) { setup_ = std::move(fn); }

  /// Run every task to completion on `workers` host threads. Returns the
  /// measured wall-clock seconds from after setup to the last join. A fault
  /// on any worker stops the run (parked ops unwind) and rethrows as
  /// SimError, matching the other backends' reporting.
  double run() {
    struct Queue {
      std::vector<std::pair<TaskId, TaskFn>*> items;
      // Claim cursor; pad so two workers hammering adjacent cursors do not
      // false-share.
      alignas(64) std::atomic<std::size_t> next{0};
    };
    std::vector<Queue> queues(static_cast<std::size_t>(workers_));
    for (auto& t : tasks_) {
      queues[t.first % queues.size()].items.push_back(&t);
    }

    if (setup_) setup_();

    std::mutex err_mu;
    std::exception_ptr first_error;
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(workers_));
    for (int w = 0; w < workers_; ++w) {
      threads.emplace_back([this, w, &queues, &err_mu, &first_error] {
        auto claim = [](Queue& q) -> std::pair<TaskId, TaskFn>* {
          const std::size_t i =
              q.next.fetch_add(1, std::memory_order_acq_rel);
          return i < q.items.size() ? q.items[i] : nullptr;
        };
        try {
          for (;;) {
            std::pair<TaskId, TaskFn>* t =
                claim(queues[static_cast<std::size_t>(w)]);
            // Own queue drained: steal round-robin from the others' heads.
            for (int v = 1; t == nullptr && v < workers_; ++v) {
              t = claim(queues[static_cast<std::size_t>((w + v) % workers_)]);
            }
            if (t == nullptr) return;
            run_task(t->first, t->second);
          }
        } catch (...) {
          {
            std::lock_guard<std::mutex> g(err_mu);
            if (!first_error) first_error = std::current_exception();
          }
          // Unwind the rest of the run: parked ops fault instead of
          // sleeping out their deadlock timeout.
          store_.request_stop();
        }
      });
    }
    for (auto& th : threads) th.join();
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (first_error) {
      store_.reset_stop();
      try {
        std::rethrow_exception(first_error);
      } catch (const SimError&) {
        throw;
      } catch (const std::exception& e) {
        throw SimError(e.what());
      }
    }
    tasks_.clear();
    return seconds;
  }

 private:
  /// One task, with abort-and-retry degradation. The task stays registered
  /// in the store's unfinished set across an abort, so the retry's
  /// task_begin just rebinds it to this thread; only a successful run
  /// retires it with task_end.
  void run_task(TaskId tid, const TaskFn& fn) {
    int attempt = 0;
    for (;;) {
      store_.task_begin(tid);
      try {
        fn(tid);
        store_.task_end(tid);
        return;
      } catch (const OFault& f) {
        const bool recoverable =
            f.kind() == FaultKind::kWouldBlock ||
            f.kind() == FaultKind::kResourceExhausted;
        if (!recoverable) throw;
        const bool can_abort = store_.config().track_aborts;
        if (store_.stopped() || attempt >= retry_.max_retries) {
          giveups_.fetch_add(1, std::memory_order_relaxed);
          // Even a failed task must not leak locks or half-built version
          // chains into the post-mortem state.
          if (can_abort) {
            store_.abort_task(tid);
            aborts_.fetch_add(1, std::memory_order_relaxed);
          }
          throw;
        }
        if (!can_abort) throw;  // retrying without rollback would corrupt
        store_.abort_task(tid);
        aborts_.fetch_add(1, std::memory_order_relaxed);
        const std::uint64_t delay =
            std::min(retry_.backoff_base_us
                         << std::min(attempt, 20),
                     retry_.backoff_cap_us);
        if (delay != 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(delay));
          backoff_us_.fetch_add(delay, std::memory_order_relaxed);
        }
        retries_.fetch_add(1, std::memory_order_relaxed);
        ++attempt;
      }
    }
  }

  ConcurrentVersionStore& store_;
  int workers_;
  std::vector<std::pair<TaskId, TaskFn>> tasks_;
  std::function<void()> setup_;
  RetryPolicy retry_;
  std::atomic<std::uint64_t> aborts_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> giveups_{0};
  std::atomic<std::uint64_t> backoff_us_{0};
};

}  // namespace osim
