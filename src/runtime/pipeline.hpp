// The task-pipelining protocol of paper Sec. IV-D, as reusable pieces:
//
//   * The root of the data structure is entered in task order, via
//     LOCK-LOAD-VERSION(tid) for mutating tasks and LOAD-VERSION(tid) for
//     read-only tasks (a "ticket": version t of the root exists exactly when
//     task t may enter).
//   * Mutators traverse hand-over-hand: LOCK-LOAD-LATEST(tid) the next
//     pointer before releasing the previous one, so a younger task can never
//     overtake an older one on the same path.
//   * Pointer modifications rename: STORE-VERSION(new, tid) creates a new
//     version instead of overwriting, eliminating anti-dependencies; old
//     readers keep seeing their snapshot.
//   * Read-only tasks traverse with LOAD-LATEST(tid) and hold no locks; they
//     stall only when they catch up with an older mutator's lock.
//
// The result is deterministic: the parallel execution's outcome equals the
// sequential program's (every workload test asserts this).
#pragma once

#include <cassert>
#include <optional>

#include "runtime/versioned.hpp"

namespace osim {

/// The in-order entry ticket at a data structure's root. The versioned slot
/// carries the root *value* (e.g. the pointer to the first node), so that
/// entering the structure and reading its root is a single versioned access.
///
/// Root versions are created per *mutator*: mutating task m publishes
/// version m when it leaves the root. A task entering the structure names
/// the version of the closest preceding mutator in task order (`prev` —
/// statically known to the runtime, which created the tasks in program
/// order). Read-only tasks therefore neither lock nor store at the root —
/// any number of readers between two mutators proceed concurrently — while
/// mutators enter strictly in order (paper Sec. IV-D: "the root ... is
/// entered in-order, relying on LOCK-LOAD-VERSION (mutating tasks) or
/// LOAD-VERSION (read-only tasks)").
template <typename T>
class TicketRoot {
 public:
  TicketRoot() = default;
  explicit TicketRoot(Env& env) { bind(env); }

  void bind(Env& env) {
    root_.bind(env);
    root_.mark_root();
  }

  /// Host-side initialisation: the setup phase acts as mutator
  /// `setup_version`, unblocking the first tasks.
  void init(T value, Ver setup_version) { root_.store_ver(value, setup_version); }

  /// Mutator entry: waits for the preceding mutator's version and locks it
  /// (excluding the next mutator until leave_mut). Returns the root value.
  T enter_mut(TaskId tid, Ver prev) { return root_.lock_load_ver(prev, tid); }

  /// Mutator exit: publish this task's root version (same value renamed,
  /// or the new root value if the mutation changed it) and release the
  /// lock, admitting the next mutator and any waiting readers.
  void leave_mut(TaskId tid, Ver prev,
                 std::optional<T> new_value = std::nullopt) {
    if (new_value.has_value()) {
      root_.store_ver(*new_value, tid);
      root_.unlock_ver(prev, tid);
    } else {
      root_.unlock_ver(prev, tid, /*rename_to=*/Ver{tid});
    }
  }

  /// Read-only entry: load the preceding mutator's root version. Blocks
  /// until that mutator has published (and while the next mutator briefly
  /// holds the lock on it); no store, no lock — readers stay concurrent.
  T enter_ro(Ver prev) { return root_.load_ver(prev); }

  versioned<T>& slot() { return root_; }

 private:
  versioned<T> root_;
};

/// Hand-over-hand lock cursor for mutating tasks. Holds at most one lock at
/// a time; advance() acquires the next hop before releasing the current one.
template <typename T>
class HandOverHand {
 public:
  explicit HandOverHand(TaskId tid) : tid_(tid) {}

  ~HandOverHand() { assert(held_ == nullptr && "lock leaked"); }

  /// Acquire `next` (LOCK-LOAD-LATEST at this task's cap) and then release
  /// the currently held lock unchanged. Returns `next`'s value.
  T advance(versioned<T>& next) {
    Ver locked = 0;
    const T value = next.lock_load_last(tid_, tid_, &locked);
    release_unchanged();
    held_ = &next;
    held_ver_ = locked;
    return value;
  }

  /// Take ownership of a lock the caller acquired directly (used when the
  /// previous hold is the root ticket, whose release protocol differs).
  void adopt(versioned<T>& f, Ver locked) {
    assert(held_ == nullptr);
    held_ = &f;
    held_ver_ = locked;
  }

  /// True while a lock is held.
  bool holding() const { return held_ != nullptr; }
  /// The field currently locked (must be holding()).
  versioned<T>& held() const { return *held_; }

  /// Publish a new value for the held field (STORE-VERSION rename at this
  /// task's id) and release the lock. The old version stays readable by
  /// older tasks: write-after-read dependencies are gone.
  void modify_and_release(T new_value) {
    assert(held_ != nullptr);
    held_->store_ver(new_value, tid_);
    release_unchanged();
  }

  /// Release the held lock without changing the value.
  void release_unchanged() {
    if (held_ != nullptr) {
      held_->unlock_ver(held_ver_, tid_);
      held_ = nullptr;
    }
  }

  TaskId tid() const { return tid_; }

 private:
  TaskId tid_;
  versioned<T>* held_ = nullptr;
  Ver held_ver_ = 0;
};

}  // namespace osim
