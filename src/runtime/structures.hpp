// Dataflow synchronization structures built on O-structures (paper Table I
// and Sec. V-A): I-structures (write-once rendezvous, full/empty semantics)
// and M-structures (take/put mutable cells). Both are thin mappings onto
// the versioned ISA — the point the paper makes is that one mechanism
// subsumes these classic dataflow memories while adding unbounded
// versioning on top.
#pragma once

#include <cstdint>

#include <unordered_map>

#include "runtime/versioned.hpp"

namespace osim {

/// I-structure: a single-assignment cell [Arvind et al.]. get() blocks
/// until the producer has put(); a second put() is a fault (the "already
/// written" error of classic I-structures falls out of STORE-VERSION's
/// immutability).
template <typename T>
class istructure {
 public:
  istructure() = default;
  explicit istructure(Env& env) : cell_(env) {}

  void bind(Env& env) { cell_.bind(env); }

  /// Fill the cell. Exactly once; a second put faults.
  void put(T value) { cell_.store_ver(value, 1); }

  /// Read the cell, blocking until it has been filled.
  T get() const { return cell_.load_ver(1); }

  /// Non-blocking host-side probe (tests/tools).
  bool full() const { return cell_.peek(1).has_value(); }

 private:
  versioned<T> cell_;
};

/// M-structure: a mutable cell with atomic take/put [Barth et al.]. take()
/// blocks until the cell is full, then empties it (excluding other takers);
/// put() refills it. Built on locking + renaming: take locks the newest
/// version, put renames the taker's lock into a fresh version holding the
/// new value — so the cell also keeps its full version history, which
/// classic M-structures lose.
template <typename T>
class mstructure {
 public:
  mstructure() = default;
  explicit mstructure(Env& env) : cell_(env) {}

  void bind(Env& env) { cell_.bind(env); }

  /// Initialize (version 1). Call once before any take.
  void init(T value) { cell_.store_ver(value, 1); }

  /// Atomically read-and-empty. Blocks while another task holds the cell.
  /// Returns the value; the matching put() must pass the same taker id.
  T take(TaskId taker) {
    Ver got = 0;
    const T v = cell_.lock_load_last(kCap, taker, &got);
    held_[taker] = got;  // per-taker: a new holder may lock the next version
    return v;            // the moment put() stores it, before the unlock
  }

  /// Refill after take(): creates the next version and releases the taker's
  /// exclusion in one STORE-VERSION + UNLOCK-VERSION pair.
  void put(TaskId taker, T value) {
    const Ver held = held_.at(taker);
    held_.erase(taker);
    cell_.store_ver(value, held + 1);
    cell_.unlock_ver(held, taker);
  }

  /// History access: the value as of version `v` (blocks until created).
  T history(Ver v) const { return cell_.load_ver(v); }

 private:
  static constexpr Ver kCap = ~Ver{0} >> 1;

  versioned<T> cell_;
  std::unordered_map<TaskId, Ver> held_;
};

}  // namespace osim
