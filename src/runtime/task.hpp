// Parallel task runtime (paper Sec. IV-A): sequential code is divided into
// tasks, identified by monotonically growing task IDs that double as version
// numbers (GC rule #1). Tasks are statically assigned to cores (tid mod
// cores, as in the paper: "a static assignment of tasks to cores... imposes
// a minimal runtime overhead, but neglects load imbalance") and each worker
// executes its tasks in creation order, bracketing them with
// TASK-BEGIN/TASK-END (GC rule #2).
//
// On the functional backend there are no worker fibers: tasks execute to
// completion in creation order on the host thread. The root-ticket protocol
// gives tasks forward-only dependencies, so this schedule never blocks; an
// op that would is a protocol violation and faults (kWouldBlock).
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/env.hpp"

namespace osim {

class TaskRuntime {
 public:
  using TaskFn = std::function<void(TaskId)>;

  /// Instructions charged per task for dispatch (queue pop, argument setup).
  static constexpr std::uint64_t kDispatchInstructions = 24;

  TaskRuntime(Env& env, int workers) : env_(env), workers_(workers) {}

  int workers() const { return workers_; }

  /// Enqueue a task. Must be called before run(); assignment is static.
  /// Announces the task to the GC (rule #3 is checked at creation).
  void create_task(TaskId tid, TaskFn fn) {
    env_.store().task_created(tid);
    tasks_.emplace_back(tid, std::move(fn));
  }

  /// Unmeasured setup run on core 0 before any task starts; the other
  /// workers wait on a start gate. Optional.
  void set_setup(std::function<void()> fn) { setup_ = std::move(fn); }

  /// Run every task to completion. Returns the *measured* cycles: setup
  /// completion to last task finish (the logical op count on functional).
  Cycles run() {
    return env_.timed() ? run_timed() : run_functional();
  }

  /// Clock value at which the measured phase began.
  Cycles setup_end() const { return setup_end_; }

 private:
  /// One worker fiber per core; worker c drains the tasks with tid % c.
  Cycles run_timed() {
    std::vector<std::vector<std::pair<TaskId, TaskFn>*>> queues(
        static_cast<std::size_t>(workers_));
    for (auto& t : tasks_) {
      queues[t.first % queues.size()].push_back(&t);
    }
    for (std::size_t c = 0; c < queues.size(); ++c) {
      env_.spawn(static_cast<CoreId>(c), [this, c, &queues] {
        Machine& m = env_.machine();
        if (c == 0) {
          if (setup_) setup_();
          setup_end_ = m.now();
          started_ = true;
          m.wake_all(gate_, /*wake_latency=*/0);
        } else if (!started_) {
          m.block_on(gate_);
        }
        for (auto* t : queues[c]) {
          env_.exec(kDispatchInstructions);
          env_.store().task_begin(t->first);
          t->second(t->first);
          env_.store().task_end(t->first);
        }
      });
    }
    const Cycles total = env_.run();
    return total - setup_end_;
  }

  /// Creation-order in-order execution. Faults abort the run as SimErrors,
  /// matching what the timed machine reports when a fault escapes a fiber.
  Cycles run_functional() {
    try {
      if (setup_) setup_();
      setup_end_ = env_.now();
      for (auto& [tid, fn] : tasks_) {
        env_.store().task_begin(tid);
        fn(tid);
        env_.store().task_end(tid);
      }
    } catch (const SimError&) {
      throw;
    } catch (const std::exception& e) {
      throw SimError(e.what());
    }
    return env_.now() - setup_end_;
  }

  Env& env_;
  int workers_;
  /// All tasks in creation order; run_timed() partitions by tid % workers.
  std::vector<std::pair<TaskId, TaskFn>> tasks_;
  std::function<void()> setup_;
  WaitList gate_;
  Cycles setup_end_ = 0;
  bool started_ = false;
};

}  // namespace osim
