// Parallel task runtime (paper Sec. IV-A): sequential code is divided into
// tasks, identified by monotonically growing task IDs that double as version
// numbers (GC rule #1). Tasks are statically assigned to cores (tid mod
// cores, as in the paper: "a static assignment of tasks to cores... imposes
// a minimal runtime overhead, but neglects load imbalance") and each worker
// executes its tasks in creation order, bracketing them with
// TASK-BEGIN/TASK-END (GC rule #2).
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/env.hpp"

namespace osim {

class TaskRuntime {
 public:
  using TaskFn = std::function<void(TaskId)>;

  /// Instructions charged per task for dispatch (queue pop, argument setup).
  static constexpr std::uint64_t kDispatchInstructions = 24;

  TaskRuntime(Env& env, int workers)
      : env_(env), queues_(static_cast<std::size_t>(workers)) {}

  int workers() const { return static_cast<int>(queues_.size()); }

  /// Enqueue a task. Must be called before run(); assignment is static.
  /// Announces the task to the GC (rule #3 is checked at creation).
  void create_task(TaskId tid, TaskFn fn) {
    env_.osm().task_created(tid);
    queues_[tid % queues_.size()].emplace_back(tid, std::move(fn));
  }

  /// Unmeasured setup run on core 0 before any task starts; the other
  /// workers wait on a start gate. Optional.
  void set_setup(std::function<void()> fn) { setup_ = std::move(fn); }

  /// Spawn one worker fiber per core and run the machine to completion.
  /// Returns the *measured* cycles: setup completion to last task finish.
  Cycles run() {
    for (std::size_t c = 0; c < queues_.size(); ++c) {
      env_.spawn(static_cast<CoreId>(c), [this, c] {
        Machine& m = env_.machine();
        if (c == 0) {
          if (setup_) setup_();
          setup_end_ = m.now();
          started_ = true;
          m.wake_all(gate_, /*wake_latency=*/0);
        } else if (!started_) {
          m.block_on(gate_);
        }
        for (auto& [tid, fn] : queues_[c]) {
          env_.exec(kDispatchInstructions);
          env_.osm().task_begin(tid);
          fn(tid);
          env_.osm().task_end(tid);
        }
      });
    }
    const Cycles total = env_.run();
    return total - setup_end_;
  }

  /// Clock value at which the measured phase began.
  Cycles setup_end() const { return setup_end_; }

 private:
  Env& env_;
  std::vector<std::vector<std::pair<TaskId, TaskFn>>> queues_;
  std::function<void()> setup_;
  WaitList gate_;
  Cycles setup_end_ = 0;
  bool started_ = false;
};

}  // namespace osim
