// Deterministic bump allocator for simulator-visible host objects.
//
// Every address a workload passes to Env::ld/st is translated line-by-line
// in first-touch order, which makes cache *indexing* independent of the
// host allocator — but the byte offset inside a line, and whether two
// separately-allocated objects share a line, still follow the host heap
// layout. Under the host-parallel bench driver the heap interleaves
// allocations from many experiment cells, so malloc-placed nodes pack
// differently than in a serial run and the simulated cycle counts drift.
//
// The arena closes that hole: chunks are cache-line-aligned, objects are
// bump-allocated at offsets that depend only on the (deterministic)
// allocation sequence, and nothing outside the owning Env ever lands in the
// same line. Simulated timing becomes a pure function of the workload.
//
// Ownership: objects live until the Arena dies (it is the last member of
// Env, so arena-owned objects may still touch the machine/O-structure
// manager from their destructors). There is no per-object free — the
// workloads only ever grow, matching the previous keep-every-node vectors.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/types.hpp"

namespace osim {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  ~Arena() {
    for (auto it = dtors_.rbegin(); it != dtors_.rend(); ++it) {
      it->second(it->first);
    }
    for (void* c : chunks_) {
      ::operator delete(c, std::align_val_t{kLineBytes});
    }
  }

  /// Raw storage; `align` must be a power of two no larger than kLineBytes.
  void* allocate(std::size_t bytes, std::size_t align) {
    std::size_t off = (offset_ + (align - 1)) & ~(align - 1);
    if (chunks_.empty() || off + bytes > chunk_bytes_) {
      chunk_bytes_ = bytes > kChunkBytes ? round_up_line(bytes) : kChunkBytes;
      chunks_.push_back(
          ::operator new(chunk_bytes_, std::align_val_t{kLineBytes}));
      off = 0;
    }
    void* p = static_cast<char*>(chunks_.back()) + off;
    offset_ = off + bytes;
    return p;
  }

  /// Construct a T in the arena. Non-trivial destructors run (in reverse
  /// creation order) when the arena is destroyed.
  template <typename T, typename... Args>
  T* create(Args&&... args) {
    static_assert(alignof(T) <= kLineBytes);
    T* p = static_cast<T*>(allocate(sizeof(T), alignof(T)));
    new (p) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      dtors_.emplace_back(p, [](void* q) { static_cast<T*>(q)->~T(); });
    }
    return p;
  }

  /// Value-initialized array of n trivially-destructible Ts.
  template <typename T>
  T* array_of(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>);
    static_assert(alignof(T) <= kLineBytes);
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) new (p + i) T();
    return p;
  }

 private:
  static constexpr std::size_t kChunkBytes = 64 * 1024;

  static std::size_t round_up_line(std::size_t bytes) {
    return (bytes + kLineBytes - 1) / kLineBytes * kLineBytes;
  }

  std::vector<void*> chunks_;
  std::size_t chunk_bytes_ = 0;
  std::size_t offset_ = 0;
  std::vector<std::pair<void*, void (*)(void*)>> dtors_;
};

}  // namespace osim
