#include "runtime/sw_ostructures.hpp"

#include "core/fault.hpp"

namespace osim {

namespace {
// Software costs per operation: call/dispatch overhead, compare/branch per
// record, allocator work for a new record. These are deliberately modest —
// even so, the software path loses badly to the hardware one (the paper's
// observation).
constexpr std::uint64_t kCallInstr = 18;
constexpr std::uint64_t kWalkInstr = 4;
constexpr std::uint64_t kAllocInstr = 24;
constexpr Cycles kWakeLatency = 20;  // futex wake via the OS is not free
}  // namespace

void SwOStructure::acquire() {
  env_.machine().sync_to_global_order();
  env_.exec(kCallInstr);
  while (locked_) {
    env_.machine().block_on(lock_q_);
  }
  locked_ = true;
  env_.st(lock_word_, lock_word_ + 1);  // the CAS
}

void SwOStructure::release_and_wake() {
  locked_ = false;
  env_.st(lock_word_, lock_word_ + 1);
  if (!lock_q_.empty()) env_.machine().wake_all(lock_q_, kWakeLatency);
}

SwOStructure::Record* SwOStructure::find_exact(Ver v) {
  for (Record* r = env_.ld(head_); r != nullptr; r = env_.ld(r->next)) {
    env_.exec(kWalkInstr);
    const Ver rv = env_.ld(r->version);
    if (rv == v) return r;
    if (rv < v) return nullptr;  // sorted newest-first
  }
  return nullptr;
}

SwOStructure::Record* SwOStructure::find_latest(Ver cap) {
  for (Record* r = env_.ld(head_); r != nullptr; r = env_.ld(r->next)) {
    env_.exec(kWalkInstr);
    if (env_.ld(r->version) <= cap) return r;
  }
  return nullptr;
}

SwOStructure::Record* SwOStructure::insert(Ver v, std::uint64_t data) {
  env_.exec(kAllocInstr);
  Record* n = env_.arena().create<Record>();
  env_.st(n->version, v);
  env_.st(n->data, data);
  Record* prev = nullptr;
  Record* cur = env_.ld(head_);
  while (cur != nullptr && env_.ld(cur->version) > v) {
    env_.exec(kWalkInstr);
    prev = cur;
    cur = env_.ld(cur->next);
  }
  if (cur != nullptr && cur->version == v) {
    throw OFault(FaultKind::kVersionAlreadyExists,
                 "software O-structure version " + std::to_string(v));
  }
  env_.st(n->next, cur);
  if (prev == nullptr) {
    env_.st(head_, n);
  } else {
    env_.st(prev->next, n);
  }
  ++count_;
  return n;
}

void SwOStructure::store_version(Ver v, std::uint64_t data) {
  acquire();
  try {
    insert(v, data);
  } catch (...) {
    release_and_wake();
    throw;
  }
  release_and_wake();
  if (!version_q_.empty()) env_.machine().wake_all(version_q_, kWakeLatency);
}

std::uint64_t SwOStructure::load_version(Ver v) {
  for (;;) {
    acquire();
    Record* r = find_exact(v);
    if (r != nullptr && env_.ld(r->locked_by) == 0) {
      const std::uint64_t data = env_.ld(r->data);
      release_and_wake();
      return data;
    }
    release_and_wake();
    env_.machine().block_on(version_q_);
  }
}

std::uint64_t SwOStructure::load_latest(Ver cap, Ver* found) {
  for (;;) {
    acquire();
    Record* r = find_latest(cap);
    if (r != nullptr && env_.ld(r->locked_by) == 0) {
      const std::uint64_t data = env_.ld(r->data);
      if (found != nullptr) *found = r->version;
      release_and_wake();
      return data;
    }
    release_and_wake();
    env_.machine().block_on(version_q_);
  }
}

std::uint64_t SwOStructure::lock_load_version(Ver v, TaskId locker) {
  for (;;) {
    acquire();
    Record* r = find_exact(v);
    if (r != nullptr && env_.ld(r->locked_by) == 0) {
      env_.st(r->locked_by, locker);
      const std::uint64_t data = env_.ld(r->data);
      release_and_wake();
      return data;
    }
    release_and_wake();
    env_.machine().block_on(version_q_);
  }
}

std::uint64_t SwOStructure::lock_load_latest(Ver cap, TaskId locker,
                                             Ver* found) {
  for (;;) {
    acquire();
    Record* r = find_latest(cap);
    if (r != nullptr && env_.ld(r->locked_by) == 0) {
      env_.st(r->locked_by, locker);
      const std::uint64_t data = env_.ld(r->data);
      if (found != nullptr) *found = r->version;
      release_and_wake();
      return data;
    }
    release_and_wake();
    env_.machine().block_on(version_q_);
  }
}

void SwOStructure::unlock_version(Ver locked_v, TaskId owner,
                                  std::optional<Ver> rename_to) {
  acquire();
  Record* r = find_exact(locked_v);
  if (r == nullptr || env_.ld(r->locked_by) != owner) {
    release_and_wake();
    throw OFault(FaultKind::kNotLockOwner,
                 "software O-structure version " + std::to_string(locked_v));
  }
  env_.st(r->locked_by, TaskId{0});
  std::uint64_t data = 0;
  if (rename_to.has_value()) data = env_.ld(r->data);
  try {
    if (rename_to.has_value()) insert(*rename_to, data);
  } catch (...) {
    release_and_wake();
    throw;
  }
  release_and_wake();
  if (!version_q_.empty()) env_.machine().wake_all(version_q_, kWakeLatency);
}

}  // namespace osim
