// Env: the software runtime's view of one simulated machine — the Machine,
// its O-structure manager, and timed conventional-access helpers.
//
// Workload code is execution-driven: data structures live in host memory and
// every modelled access goes through ld()/st(), which charge the memory
// hierarchy and enforce the versioned-bit protection (conventional accesses
// to O-structure pages fault, paper Sec. III).
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <unordered_map>

#include "core/ostructure_manager.hpp"
#include "sim/machine.hpp"

namespace osim {

class Env {
 public:
  explicit Env(const MachineConfig& cfg) : m_(cfg), osm_(m_) {}

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  Machine& machine() { return m_; }
  OStructureManager& osm() { return osm_; }
  MachineStats& stats() { return m_.stats(); }
  const MachineConfig& config() const { return m_.config(); }
  Cycles elapsed() const { return m_.elapsed(); }

  /// Timed conventional load of a host object (call from a core fiber).
  template <typename T>
  T ld(const T& ref) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Addr a = reinterpret_cast<Addr>(&ref);
    osm_.check_conventional(a);
    m_.mem_access(translate(a), AccessType::kRead);
    return ref;
  }

  /// Timed conventional store to a host object.
  template <typename T>
  void st(T& ref, T val) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Addr a = reinterpret_cast<Addr>(&ref);
    osm_.check_conventional(a);
    m_.mem_access(translate(a), AccessType::kWrite);
    ref = val;
  }

  /// Deterministic image of a host address: each distinct host cache line
  /// is assigned a synthetic line in first-touch order, so cache indexing
  /// (and therefore timing) is independent of the host allocator's layout.
  Addr translate(Addr host) {
    const Addr line = line_of(host);
    auto [it, fresh] = line_map_.try_emplace(line, next_line_);
    if (fresh) ++next_line_;
    return kConventionalBase + it->second * kLineBytes + (host - line);
  }

  /// Charge `n` non-memory instructions.
  void exec(std::uint64_t n) { m_.exec(n); }

  /// Install a program on a core (forwarding to the machine).
  void spawn(CoreId core, std::function<void()> body) {
    m_.spawn(core, std::move(body));
  }

  /// Run the machine to completion and return elapsed cycles.
  Cycles run() {
    m_.run();
    return m_.elapsed();
  }

  /// Convenience: run `body` on core 0 only.
  Cycles run_sequential(std::function<void()> body) {
    spawn(0, std::move(body));
    return run();
  }

 private:
  Machine m_;
  OStructureManager osm_;
  std::unordered_map<Addr, Addr> line_map_;
  Addr next_line_ = 0;
};

}  // namespace osim
