// Env: the software runtime's view of one execution backend — the semantic
// VersionStore engine plus whichever machine model MachineConfig::backend
// selects:
//
//   * BackendKind::kTimed      — the cycle-accurate fiber Machine with cache
//                                models (OStructureManager); results are
//                                deterministic simulated cycles.
//   * BackendKind::kFunctional — host-speed in-order execution with no
//                                fibers or cache models; results are values,
//                                faults and logical op counts.
//
// Workload code is execution-driven: data structures live in host memory and
// every modelled access goes through ld()/st(), which enforce the
// versioned-bit protection (conventional accesses to O-structure pages
// fault, paper Sec. III) and, on the timed backend, charge the memory
// hierarchy. Code written against Env, versioned<T> and TaskRuntime runs on
// either backend unchanged; only backend-specific callers (sw_ostructures,
// rwlock, raw fiber tests) reach through machine().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "analysis/checker.hpp"
#include "core/ostructure_manager.hpp"
#include "runtime/arena.hpp"
#include "runtime/functional.hpp"
#include "sim/flat_map.hpp"
#include "sim/machine.hpp"

namespace osim {

class Env {
 public:
  explicit Env(const MachineConfig& cfg) : cfg_(cfg) {
    if (cfg.backend == BackendKind::kFunctional) {
      fb_ = std::make_unique<FunctionalBackend>(cfg);
    } else {
      m_ = std::make_unique<Machine>(cfg);
      osm_ = std::make_unique<OStructureManager>(*m_);
    }
    // Online protocol checking (osim-check): attach the checker as a trace
    // sink so it validates the event stream as the run produces it. It
    // charges no simulated cycles — checked runs stay bit-identical.
    if (cfg.ostruct.check_mode != 0) {
      analysis::CheckerOptions opt;
      opt.strict = cfg.ostruct.check_mode >= 2;
      auto sink =
          std::make_unique<analysis::CheckerSink>(cfg.num_cores, opt);
      checker_ = &sink->checker();
      store().tracer().add_sink(std::move(sink));
    }
  }

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  /// Whether this Env runs the cycle-accurate machine (vs. functional).
  bool timed() const { return m_ != nullptr; }

  /// The simulated machine; timed backend only.
  Machine& machine() {
    if (m_ == nullptr) {
      throw SimError("machine(): the functional backend has no machine");
    }
    return *m_;
  }
  /// The timed O-structure backend; timed backend only.
  OStructureManager& osm() {
    if (osm_ == nullptr) {
      throw SimError("osm(): the functional backend has no manager");
    }
    return *osm_;
  }
  /// The backend-independent semantic engine: the versioned ISA, allocation,
  /// protection, inspection and the event tracer — on either backend.
  VersionStore& store() { return m_ != nullptr ? osm_->store() : fb_->store(); }
  /// The same engine through the backend-agnostic facade, for consumers
  /// that should not care which implementation they drive.
  VersionEngine& engine() { return store(); }

  /// The online protocol checker, when OStructConfig::check_mode enabled
  /// one for this backend; nullptr otherwise.
  analysis::Checker* checker() { return checker_; }
  /// Snapshot of the legacy aggregate view (built from the registry).
  MachineStats stats() const { return stats_snapshot(metrics()); }
  telemetry::MetricRegistry& metrics() {
    return m_ != nullptr ? m_->metrics() : fb_->metrics();
  }
  const telemetry::MetricRegistry& metrics() const {
    return m_ != nullptr ? m_->metrics() : fb_->metrics();
  }
  const MachineConfig& config() const { return cfg_; }
  Cycles elapsed() const {
    return m_ != nullptr ? m_->elapsed() : fb_->elapsed();
  }
  /// Current time from inside a running body: the core's clock on the timed
  /// backend (call only from a fiber), the logical op clock on functional.
  Cycles now() const { return m_ != nullptr ? m_->now() : fb_->elapsed(); }

  /// Conventional load of a host object (timed when the backend is; call
  /// from a core fiber on the timed backend).
  template <typename T>
  T ld(const T& ref) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Addr a = reinterpret_cast<Addr>(&ref);
    store().check_conventional(a);
    if (m_ != nullptr) m_->mem_access(translate(a), AccessType::kRead);
    return ref;
  }

  /// Conventional store to a host object.
  template <typename T>
  void st(T& ref, T val) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Addr a = reinterpret_cast<Addr>(&ref);
    store().check_conventional(a);
    if (m_ != nullptr) m_->mem_access(translate(a), AccessType::kWrite);
    ref = val;
  }

  /// Deterministic image of a host address: each distinct host cache line
  /// is assigned a synthetic line in first-touch order, so cache indexing
  /// (and therefore timing) is independent of the host allocator's layout.
  /// Runs on every conventional access, hence the flat map.
  Addr translate(Addr host) {
    const Addr line = line_of(host);
    auto [mapped, fresh] = line_map_.try_emplace(line);
    if (fresh) mapped = next_line_++;
    return kConventionalBase + mapped * kLineBytes + (host - line);
  }

  /// Charge `n` non-memory instructions (free on the functional backend).
  void exec(std::uint64_t n) {
    if (m_ != nullptr) m_->exec(n);
  }

  /// Arena for simulator-visible host objects (nodes, matrices, lock
  /// words). Anything whose address reaches ld()/st() must come from here:
  /// arena offsets depend only on the deterministic allocation sequence, so
  /// simulated timing is reproducible no matter how the host heap is laid
  /// out (or which host thread runs the cell). See runtime/arena.hpp.
  Arena& arena() { return arena_; }

  /// Construct a T in the arena; lives until this Env is destroyed.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    return arena_.create<T>(std::forward<Args>(args)...);
  }

  /// Value-initialized array of n Ts in the arena.
  template <typename T>
  T* make_array(std::size_t n) {
    return arena_.array_of<T>(n);
  }

  /// Install a program on a core. The timed backend runs one fiber per
  /// core; the functional backend runs the bodies to completion in spawn
  /// order on the host thread.
  void spawn(CoreId core, std::function<void()> body) {
    if (m_ != nullptr) {
      m_->spawn(core, std::move(body));
    } else {
      fb_->spawn(core, std::move(body));
    }
  }

  /// Run the backend to completion and return elapsed cycles (simulated
  /// cycles on timed; the logical op clock on functional).
  Cycles run() {
    if (m_ != nullptr) {
      m_->run();
      return m_->elapsed();
    }
    fb_->run();
    return fb_->elapsed();
  }

  /// Convenience: run `body` on core 0 only.
  Cycles run_sequential(std::function<void()> body) {
    spawn(0, std::move(body));
    return run();
  }

 private:
  MachineConfig cfg_;
  std::unique_ptr<Machine> m_;                // timed backend…
  std::unique_ptr<OStructureManager> osm_;    // …and its engine binding
  std::unique_ptr<FunctionalBackend> fb_;     // functional backend
  analysis::Checker* checker_ = nullptr;  // owned by the tracer's sink list
  FlatMap<Addr, Addr> line_map_;
  Addr next_line_ = 0;
  Arena arena_;  // last member: destroyed first, so arena-owned objects may
                 // still reach the machine from their destructors
};

}  // namespace osim
