// Env: the software runtime's view of one simulated machine — the Machine,
// its O-structure manager, and timed conventional-access helpers.
//
// Workload code is execution-driven: data structures live in host memory and
// every modelled access goes through ld()/st(), which charge the memory
// hierarchy and enforce the versioned-bit protection (conventional accesses
// to O-structure pages fault, paper Sec. III).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <type_traits>
#include <utility>

#include "analysis/checker.hpp"
#include "core/ostructure_manager.hpp"
#include "runtime/arena.hpp"
#include "sim/flat_map.hpp"
#include "sim/machine.hpp"

namespace osim {

class Env {
 public:
  explicit Env(const MachineConfig& cfg) : m_(cfg), osm_(m_) {
    // Online protocol checking (osim-check): attach the checker as a trace
    // sink so it validates the event stream as the run produces it. It
    // charges no simulated cycles — checked runs stay bit-identical.
    if (cfg.ostruct.check_mode != 0) {
      analysis::CheckerOptions opt;
      opt.strict = cfg.ostruct.check_mode >= 2;
      auto sink =
          std::make_unique<analysis::CheckerSink>(cfg.num_cores, opt);
      checker_ = &sink->checker();
      osm_.tracer().add_sink(std::move(sink));
    }
  }

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  Machine& machine() { return m_; }
  OStructureManager& osm() { return osm_; }
  /// The online protocol checker, when OStructConfig::check_mode enabled
  /// one for this machine; nullptr otherwise.
  analysis::Checker* checker() { return checker_; }
  /// Snapshot of the legacy aggregate view (built from the registry).
  MachineStats stats() const { return m_.stats(); }
  telemetry::MetricRegistry& metrics() { return m_.metrics(); }
  const MachineConfig& config() const { return m_.config(); }
  Cycles elapsed() const { return m_.elapsed(); }

  /// Timed conventional load of a host object (call from a core fiber).
  template <typename T>
  T ld(const T& ref) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Addr a = reinterpret_cast<Addr>(&ref);
    osm_.check_conventional(a);
    m_.mem_access(translate(a), AccessType::kRead);
    return ref;
  }

  /// Timed conventional store to a host object.
  template <typename T>
  void st(T& ref, T val) {
    static_assert(std::is_trivially_copyable_v<T>);
    const Addr a = reinterpret_cast<Addr>(&ref);
    osm_.check_conventional(a);
    m_.mem_access(translate(a), AccessType::kWrite);
    ref = val;
  }

  /// Deterministic image of a host address: each distinct host cache line
  /// is assigned a synthetic line in first-touch order, so cache indexing
  /// (and therefore timing) is independent of the host allocator's layout.
  /// Runs on every conventional access, hence the flat map.
  Addr translate(Addr host) {
    const Addr line = line_of(host);
    auto [mapped, fresh] = line_map_.try_emplace(line);
    if (fresh) mapped = next_line_++;
    return kConventionalBase + mapped * kLineBytes + (host - line);
  }

  /// Charge `n` non-memory instructions.
  void exec(std::uint64_t n) { m_.exec(n); }

  /// Arena for simulator-visible host objects (nodes, matrices, lock
  /// words). Anything whose address reaches ld()/st() must come from here:
  /// arena offsets depend only on the deterministic allocation sequence, so
  /// simulated timing is reproducible no matter how the host heap is laid
  /// out (or which host thread runs the cell). See runtime/arena.hpp.
  Arena& arena() { return arena_; }

  /// Construct a T in the arena; lives until this Env is destroyed.
  template <typename T, typename... Args>
  T* make(Args&&... args) {
    return arena_.create<T>(std::forward<Args>(args)...);
  }

  /// Value-initialized array of n Ts in the arena.
  template <typename T>
  T* make_array(std::size_t n) {
    return arena_.array_of<T>(n);
  }

  /// Install a program on a core (forwarding to the machine).
  void spawn(CoreId core, std::function<void()> body) {
    m_.spawn(core, std::move(body));
  }

  /// Run the machine to completion and return elapsed cycles.
  Cycles run() {
    m_.run();
    return m_.elapsed();
  }

  /// Convenience: run `body` on core 0 only.
  Cycles run_sequential(std::function<void()> body) {
    spawn(0, std::move(body));
    return run();
  }

 private:
  Machine m_;
  OStructureManager osm_;
  analysis::Checker* checker_ = nullptr;  // owned by the tracer's sink list
  FlatMap<Addr, Addr> line_map_;
  Addr next_line_ = 0;
  Arena arena_;  // last member: destroyed first, so arena-owned objects may
                 // still reach the machine from their destructors
};

}  // namespace osim
