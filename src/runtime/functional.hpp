// The functional backend: host-speed execution of the versioned ISA.
//
// The same VersionStore engine that drives the cycle-accurate machine runs
// here against a TimingModel that charges nothing: no fibers, no cache
// models, no wait lists — just the authoritative version lists and a logical
// clock that counts versioned operations (so trace events still carry a
// monotonic timestamp and `elapsed()` means "ops executed"). Telemetry and
// the protocol checker attach exactly as on the timed backend, so osim-check
// validates functional runs too.
//
// Scheduling. Spawned bodies execute to completion in spawn order on the
// host thread. The root-ticket protocol the workloads use gives every task
// forward-only dependencies (task t reads versions <= t and publishes t), so
// executing tasks in creation order never needs to block. An operation that
// *would* block under this schedule (a load of a version no earlier task
// ever stores, a lock held by a later task) can never be satisfied: the
// engine's wait_on_slot turns it into an OFault(kWouldBlock), the functional
// analogue of the timed backend's deadlock report.
#pragma once

#include <cstdint>
#include <exception>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "core/fault.hpp"
#include "core/version_store.hpp"
#include "sim/config.hpp"
#include "sim/machine.hpp"  // SimError; no Machine is ever constructed here
#include "telemetry/metrics.hpp"

namespace osim {

/// TimingModel that charges nothing: the logical clock ticks once per
/// serialized operation, every cost hook is a no-op, and blocking faults.
class FunctionalTiming final : public TimingModel {
 public:
  /// Pure no-cost model: hand the engine the devirtualized hot path.
  TimingFastPath* fast_path() override { return &fp_; }

  bool in_op_context() const override { return true; }
  Cycles now() const override { return fp_.clock; }
  CoreId core() const override { return fp_.core; }

  void op_serialize() override { ++fp_.clock; }
  void op_overhead() override {}
  void task_instr() override {}

  void wait_on_slot(const WaitContext& w) override {
    throw OFault(FaultKind::kWouldBlock,
                 std::string(to_string(w.op)) + " of version " +
                     std::to_string(w.version) + " on slot " +
                     std::to_string(w.slot) + " by task " +
                     std::to_string(w.task) +
                     " cannot be satisfied by any earlier operation");
  }
  void wake_slot(std::uint64_t) override {}

  void lookup_done(std::uint64_t, const FindResult&, bool, Ver, bool,
                   std::optional<TaskId>) override {}
  void lock_applied(std::uint64_t, Ver, TaskId) override {}
  void unlock_applied(std::uint64_t, BlockIndex, Ver) override {}

  void free_list_access() override {}
  void gc_triggered() override {}
  void os_trapped() override {}
  void block_allocated(BlockIndex) override {}

  void store_charged(std::uint64_t, const InsertResult&, BlockIndex) override {
  }
  void block_shadowed(BlockIndex) override {}
  void store_installed(std::uint64_t, const CompressedLine::Entry&) override {}

  void block_reclaimed(BlockIndex, std::uint64_t, Ver) override {}
  void slot_released(std::uint64_t) override {}

  /// Logical core id stamped into trace events (the id the body was spawned
  /// on, so functional event streams are attributed like timed ones).
  void set_core(CoreId c) { fp_.core = c; }
  Cycles clock() const { return fp_.clock; }

 private:
  TimingFastPath fp_;
};

/// A VersionStore bound to FunctionalTiming, with a spawn/run surface shaped
/// like Machine's so Env can drive either interchangeably.
class FunctionalBackend {
 public:
  explicit FunctionalBackend(const MachineConfig& cfg)
      : cfg_(cfg),
        registry_(cfg.num_cores),
        store_(cfg.ostruct, cfg.num_cores, registry_, timing_) {}

  FunctionalBackend(const FunctionalBackend&) = delete;
  FunctionalBackend& operator=(const FunctionalBackend&) = delete;

  VersionStore& store() { return store_; }
  FunctionalTiming& timing() { return timing_; }
  telemetry::MetricRegistry& metrics() { return registry_; }
  const telemetry::MetricRegistry& metrics() const { return registry_; }
  const MachineConfig& config() const { return cfg_; }

  /// Queue a body for `core`. Bodies run in spawn order, each to completion.
  void spawn(CoreId core, std::function<void()> body) {
    bodies_.emplace_back(core, std::move(body));
  }

  /// Execute every queued body. Like the timed machine, a simulated fault
  /// escaping a body aborts the run as a SimError with the same message.
  void run() {
    for (auto& [core, body] : bodies_) {
      timing_.set_core(core);
      try {
        body();
      } catch (const SimError&) {
        throw;
      } catch (const std::exception& e) {
        throw SimError(e.what());
      }
    }
    bodies_.clear();
  }

  /// Logical clock: versioned operations executed so far.
  Cycles elapsed() const { return timing_.clock(); }

 private:
  MachineConfig cfg_;
  telemetry::MetricRegistry registry_;
  FunctionalTiming timing_;
  VersionStore store_;
  std::vector<std::pair<CoreId, std::function<void()>>> bodies_;
};

}  // namespace osim
