// Metrics registry: the one place every simulator component reports
// counters, gauges, and histograms through.
//
// Design (ISSUE 2): components register named metrics once, at construction
// time, and get back *handles* — raw pointers into registry-owned slot
// arrays. The hot path is a single `(*slot)++` (counters) or an indexed
// increment (per-core counter vectors); no string lookups, no hashing, no
// virtual calls ever happen after registration. Registration order is
// deterministic (components are constructed in a fixed order per machine),
// so dump() output is bit-identical across runs and host-thread counts —
// the property test_host_pool.cpp asserts.
//
// Slot storage is allocated per metric (one unique_ptr<uint64_t[]> each), so
// handles stay valid no matter how many metrics are registered afterwards.
#pragma once

#include <cassert>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace osim::telemetry {

/// The simulator components that own metrics. Used as a namespace prefix in
/// dumps ("osm/full_lookups") and for grouped queries.
enum class Component : std::uint8_t { kCore, kCache, kOsm, kGc };

inline const char* to_string(Component c) {
  switch (c) {
    case Component::kCore:
      return "core";
    case Component::kCache:
      return "cache";
    case Component::kOsm:
      return "osm";
    case Component::kGc:
      return "gc";
  }
  assert(!"unknown Component");
  return "?";
}

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Handle to a machine-wide counter. Trivially copyable; valid for the
/// lifetime of the registry that issued it.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t by = 1) { *slot_ += by; }
  /// Counters are monotone except for explicit rollback paths (e.g. a
  /// duplicate-version store returns its freshly-counted block).
  void dec(std::uint64_t by = 1) { *slot_ -= by; }
  std::uint64_t value() const { return *slot_; }

 private:
  friend class MetricRegistry;
  explicit Counter(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Handle to a per-core counter vector (one slot per core).
class CounterVec {
 public:
  CounterVec() = default;
  void inc(CoreId core, std::uint64_t by = 1) {
    base_[static_cast<std::size_t>(core)] += by;
  }
  std::uint64_t value(CoreId core) const {
    return base_[static_cast<std::size_t>(core)];
  }

 private:
  friend class MetricRegistry;
  explicit CounterVec(std::uint64_t* base) : base_(base) {}
  std::uint64_t* base_ = nullptr;
};

/// Handle to a machine-wide gauge (a value that goes up and down).
class Gauge {
 public:
  Gauge() = default;
  void set(std::uint64_t v) { *slot_ = v; }
  std::uint64_t value() const { return *slot_; }

 private:
  friend class MetricRegistry;
  explicit Gauge(std::uint64_t* slot) : slot_(slot) {}
  std::uint64_t* slot_ = nullptr;
};

/// Handle to a fixed-bucket histogram. Bucket i counts observations
/// <= bounds[i] (first matching bound, linear probe — bucket counts are
/// small and fixed at registration); one extra bucket counts overflows.
/// The slot layout is [bucket 0 .. bucket n-1, overflow, sum, count].
class Histogram {
 public:
  Histogram() = default;
  void observe(std::uint64_t v) {
    std::size_t i = 0;
    while (i < nbounds_ && v > bounds_[i]) ++i;
    base_[i]++;
    base_[nbounds_ + 1] += v;  // sum
    base_[nbounds_ + 2]++;     // count
  }
  std::uint64_t count() const { return base_[nbounds_ + 2]; }
  std::uint64_t sum() const { return base_[nbounds_ + 1]; }

 private:
  friend class MetricRegistry;
  Histogram(std::uint64_t* base, const std::uint64_t* bounds,
            std::size_t nbounds)
      : base_(base), bounds_(bounds), nbounds_(nbounds) {}
  std::uint64_t* base_ = nullptr;
  const std::uint64_t* bounds_ = nullptr;
  std::size_t nbounds_ = 0;
};

class MetricRegistry {
 public:
  /// One registered metric with its slots. `width` slots for counters and
  /// gauges (num_cores for counter vectors, 1 otherwise); histograms hold
  /// bounds.size() + 3 slots (buckets, overflow, sum, count).
  struct Metric {
    Component component;
    std::string name;
    MetricKind kind;
    bool per_core = false;
    std::vector<std::uint64_t> bounds;  ///< histogram bucket upper bounds
    std::size_t width = 1;
    std::unique_ptr<std::uint64_t[]> slots;  ///< owned storage (null if ext)
    /// External storage: slot i lives at ext[i * stride]. Set for metrics
    /// registered via counter_vec_external(), whose hot-path storage is a
    /// packed array-of-structs owned by the component; the registry only
    /// ever reads through this pointer.
    const std::uint64_t* ext = nullptr;
    std::size_t stride = 1;

    std::uint64_t slot(std::size_t i) const {
      return ext != nullptr ? ext[i * stride] : slots[i];
    }
    std::uint64_t total() const {
      std::uint64_t t = 0;
      for (std::size_t i = 0; i < width; ++i) t += slot(i);
      return t;
    }
  };

  explicit MetricRegistry(int num_cores) : num_cores_(num_cores) {
    assert(num_cores >= 1);
  }

  MetricRegistry(const MetricRegistry&) = delete;
  MetricRegistry& operator=(const MetricRegistry&) = delete;

  // ---- Registration (cold path; construction time only) ----
  Counter counter(Component c, std::string name);
  CounterVec counter_vec(Component c, std::string name);
  /// Register a per-core counter whose storage the *component* owns: slot i
  /// is read from base[i * stride]. For hot paths that touch several of a
  /// core's counters per event, a packed per-core struct keeps them on one
  /// cache line where registry-owned one-array-per-metric storage cannot.
  /// `base` must remain valid and immovable for the registry's lifetime.
  void counter_vec_external(Component c, std::string name,
                            const std::uint64_t* base, std::size_t stride);
  Gauge gauge(Component c, std::string name);
  Histogram histogram(Component c, std::string name,
                      std::vector<std::uint64_t> bounds);

  // ---- Cold-path inspection ----
  int num_cores() const { return num_cores_; }
  const std::vector<Metric>& metrics() const { return metrics_; }
  /// The metric named `name` in component `c`, or nullptr. Linear scan:
  /// only snapshot/dump/test code calls this.
  const Metric* find(Component c, const std::string& name) const;
  /// Sum over slots of `c`/`name`, or 0 if never registered (a Machine
  /// without an O-structure manager simply has no osm/gc metrics).
  std::uint64_t total(Component c, const std::string& name) const {
    const Metric* m = find(c, name);
    return m == nullptr ? 0 : m->total();
  }
  /// Per-core slot value, or 0 if absent.
  std::uint64_t value(Component c, const std::string& name,
                      CoreId core) const {
    const Metric* m = find(c, name);
    if (m == nullptr || static_cast<std::size_t>(core) >= m->width) return 0;
    return m->slot(static_cast<std::size_t>(core));
  }

  /// Deterministic text dump: one line per metric in registration order.
  /// Equal simulations produce byte-identical dumps regardless of host
  /// threading.
  void dump(std::ostream& os) const;
  std::string dump_str() const;

 private:
  Metric& add(Component c, std::string name, MetricKind kind,
              std::size_t width);

  int num_cores_;
  std::vector<Metric> metrics_;
};

}  // namespace osim::telemetry
