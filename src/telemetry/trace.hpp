// Typed event tracing with pluggable sinks.
//
// Generalizes the original per-ISA-op trace ring (core/isa.hpp) to the full
// version lifecycle of the paper's Sec. III: block allocation, version
// store, shadowing, reclamation, lock acquire/release, GC phase
// boundaries, and OS traps. Producers emit through a Tracer, which fans the
// event out to whatever sinks are attached:
//
//   RingSink   fixed-capacity in-memory ring (the classic debugging trace;
//              an EventMask restricts which event types it keeps)
//   FileSink   binary file of fixed-size records, for offline analysis by
//              tools/osim-report
//   NullSink   swallows everything (measures emission overhead)
//
// With no sinks attached, Tracer::enabled() is false and every emission
// site is one branch — tracing costs nothing when off.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace osim {
// The ISA opcode of kIsaOp events. Opaque here: telemetry sits below the
// core layer, which defines the enumerators in core/isa.hpp.
enum class OpCode : std::uint8_t;
}  // namespace osim

namespace osim::telemetry {

/// Event types. Values are part of the binary trace format — append only.
enum class EventType : std::uint8_t {
  kIsaOp = 0,          ///< versioned instruction issued (op = which)
  kBlockAlloc = 1,     ///< version block left the free list (arg = block)
  kVersionStore = 2,   ///< version created on a slot (arg = block)
  kBlockShadowed = 3,  ///< block shadowed by a newer version (arg = block)
  kBlockFreed = 4,     ///< block reclaimed / released (arg = block)
  kLockAcquire = 5,    ///< version locked (arg = locking task)
  kLockRelease = 6,    ///< version unlocked (arg = former owner)
  kGcPhaseBegin = 7,   ///< collection phase started (arg = fence version)
  kGcPhaseEnd = 8,     ///< collection phase finalized (arg = blocks freed)
  kOsTrap = 9,         ///< free-list exhaustion trap (arg = blocks added)
  kTaskCreated = 10,   ///< task registered with the GC (version = task id)
  kBlockPending = 11,  ///< shadowed block entered a GC phase (arg = block)
  kVersionRead = 12,   ///< version resolved by a load (op = which, arg = cap)
  kTaskAborted = 13,   ///< task rolled back (version = task id,
                       ///< arg = versions undone)
  kBlockRestored = 14, ///< rollback un-shadowed a block: the version it
                       ///< carries is the slot's head again (arg = block)
};
inline constexpr int kNumEventTypes = 15;

const char* to_string(EventType t);

/// Bitmask over EventType; sinks keep only the types they accept.
using EventMask = std::uint32_t;
inline constexpr EventMask event_bit(EventType t) {
  return EventMask{1} << static_cast<int>(t);
}
inline constexpr EventMask kAllEvents =
    (EventMask{1} << kNumEventTypes) - 1;

/// One trace event. For kIsaOp events `op` identifies the instruction and
/// `version` its version/cap/task argument (the original TraceRecord
/// layout); lifecycle events use `version` and `arg` as documented on
/// EventType.
struct TraceEvent {
  Cycles time = 0;
  CoreId core = 0;
  EventType type = EventType::kIsaOp;
  OpCode op{};           ///< meaningful for kIsaOp only
  Addr addr = 0;         ///< O-structure address (0 when not applicable)
  Ver version = 0;
  std::uint64_t arg = 0;
};

/// Injected I/O failure modes a FileSink can be asked to simulate. Lives
/// here (not in core/) because telemetry sits below the core layer; the
/// core-side FaultInjector implements IoFaultHook to drive it.
enum class IoFault : std::uint8_t {
  kNone = 0,
  kShortWrite,  ///< the record write persists fewer bytes than requested
  kEnospc,      ///< the write fails outright with ENOSPC
};

/// Consulted by FileSink before each record write when attached. The hook
/// decides per record; decisions must be deterministic for replayable runs.
class IoFaultHook {
 public:
  virtual ~IoFaultHook() = default;
  virtual IoFault next_io_fault() = 0;
};

class TraceSink {
 public:
  explicit TraceSink(EventMask mask) : mask_(mask) {}
  virtual ~TraceSink() = default;

  bool accepts(EventType t) const { return (mask_ & event_bit(t)) != 0; }
  EventMask mask() const { return mask_; }

  virtual void on_event(const TraceEvent& e) = 0;
  /// Push buffered state out (FileSink); default is a no-op.
  virtual void flush() {}

 private:
  EventMask mask_;
};

/// Fixed-capacity ring of the most recent accepted events. Capacity 0 means
/// disabled: record() is a no-op and snapshot() is empty.
class RingSink : public TraceSink {
 public:
  explicit RingSink(std::size_t capacity, EventMask mask = kAllEvents)
      : TraceSink(mask), capacity_(capacity) {
    ring_.reserve(capacity);
  }

  bool enabled() const { return capacity_ > 0; }

  void record(const TraceEvent& e) {
    if (capacity_ == 0) return;
    if (ring_.size() < capacity_) {
      ring_.push_back(e);
    } else {
      ring_[next_] = e;
    }
    next_ = (next_ + 1) % capacity_;
    ++total_;
  }

  void on_event(const TraceEvent& e) override { record(e); }

  /// Events in emission order, oldest first.
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_ || capacity_ == 0) {
      out = ring_;
    } else {
      out.insert(out.end(), ring_.begin() + static_cast<long>(next_),
                 ring_.end());
      out.insert(out.end(), ring_.begin(),
                 ring_.begin() + static_cast<long>(next_));
    }
    return out;
  }

  std::uint64_t total_recorded() const { return total_; }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;
  std::uint64_t total_ = 0;
  std::vector<TraceEvent> ring_;
};

/// Binary trace file: a 16-byte header (magic, format version, record size)
/// followed by fixed 40-byte little-endian records. Buffered; flushed on
/// destruction.
///
/// I/O errors (unwritable path, full disk) do not vanish: the first failed
/// write latches failed()/error(), further events are dropped, and flush()
/// throws std::runtime_error so a traced run cannot silently produce a
/// truncated file. The destructor never throws; it prints the latched error
/// to stderr if flush() was never called.
class FileSink : public TraceSink {
 public:
  explicit FileSink(const std::string& path, EventMask mask = kAllEvents);
  ~FileSink() override;

  void on_event(const TraceEvent& e) override;
  void flush() override;

  /// True once any write or flush on the underlying file has failed.
  bool failed() const;
  /// Human-readable description of the first failure ("" while healthy).
  const std::string& error() const;

  /// Attach (or detach, with nullptr) a deterministic I/O fault source.
  /// Consulted once per record write; an injected failure latches exactly
  /// like a real one. The hook is borrowed and must outlive the sink.
  void set_fault_hook(IoFaultHook* hook);

  static constexpr std::uint32_t kMagic = 0x4f54524bu;  // "KRTO"
  static constexpr std::uint32_t kFormatVersion = 1;
  static constexpr std::size_t kRecordBytes = 40;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Swallows everything (overhead measurements, sink plumbing tests).
class NullSink : public TraceSink {
 public:
  explicit NullSink(EventMask mask = kAllEvents) : TraceSink(mask) {}
  void on_event(const TraceEvent&) override {}
};

/// Fan-out dispatcher the producing component owns. Sinks are either
/// borrowed (attach) or owned (add_sink); emission is skipped entirely
/// while no sink is attached.
class Tracer {
 public:
  bool enabled() const { return !sinks_.empty(); }

  void attach(TraceSink* sink) { sinks_.push_back(sink); }
  TraceSink* add_sink(std::unique_ptr<TraceSink> sink) {
    owned_.push_back(std::move(sink));
    sinks_.push_back(owned_.back().get());
    return sinks_.back();
  }

  void emit(const TraceEvent& e) {
    for (TraceSink* s : sinks_) {
      if (s->accepts(e.type)) s->on_event(e);
    }
  }

  void flush() {
    for (TraceSink* s : sinks_) s->flush();
  }

 private:
  std::vector<TraceSink*> sinks_;
  std::vector<std::unique_ptr<TraceSink>> owned_;
};

/// Read a FileSink-format trace back (osim-report, tests). Throws
/// std::runtime_error on a missing file or malformed header.
std::vector<TraceEvent> read_trace_file(const std::string& path);

}  // namespace osim::telemetry
