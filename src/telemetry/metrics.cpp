#include "telemetry/metrics.hpp"

#include <ostream>
#include <sstream>

namespace osim::telemetry {

MetricRegistry::Metric& MetricRegistry::add(Component c, std::string name,
                                            MetricKind kind,
                                            std::size_t width) {
  assert(find(c, name) == nullptr && "metric registered twice");
  Metric m;
  m.component = c;
  m.name = std::move(name);
  m.kind = kind;
  m.width = width;
  m.slots = std::make_unique<std::uint64_t[]>(width);
  for (std::size_t i = 0; i < width; ++i) m.slots[i] = 0;
  metrics_.push_back(std::move(m));
  return metrics_.back();
}

Counter MetricRegistry::counter(Component c, std::string name) {
  return Counter(add(c, std::move(name), MetricKind::kCounter, 1).slots.get());
}

CounterVec MetricRegistry::counter_vec(Component c, std::string name) {
  Metric& m = add(c, std::move(name), MetricKind::kCounter,
                  static_cast<std::size_t>(num_cores_));
  m.per_core = true;
  return CounterVec(m.slots.get());
}

void MetricRegistry::counter_vec_external(Component c, std::string name,
                                          const std::uint64_t* base,
                                          std::size_t stride) {
  assert(base != nullptr && stride >= 1);
  Metric& m = add(c, std::move(name), MetricKind::kCounter,
                  static_cast<std::size_t>(num_cores_));
  m.per_core = true;
  m.slots.reset();  // the component owns the storage
  m.ext = base;
  m.stride = stride;
}

Gauge MetricRegistry::gauge(Component c, std::string name) {
  return Gauge(add(c, std::move(name), MetricKind::kGauge, 1).slots.get());
}

Histogram MetricRegistry::histogram(Component c, std::string name,
                                    std::vector<std::uint64_t> bounds) {
  assert(!bounds.empty());
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    assert(bounds[i - 1] < bounds[i] && "histogram bounds must ascend");
  }
  Metric& m =
      add(c, std::move(name), MetricKind::kHistogram, bounds.size() + 3);
  m.bounds = std::move(bounds);
  return Histogram(m.slots.get(), m.bounds.data(), m.bounds.size());
}

const MetricRegistry::Metric* MetricRegistry::find(
    Component c, const std::string& name) const {
  for (const Metric& m : metrics_) {
    if (m.component == c && m.name == name) return &m;
  }
  return nullptr;
}

void MetricRegistry::dump(std::ostream& os) const {
  for (const Metric& m : metrics_) {
    os << to_string(m.component) << '/' << m.name;
    switch (m.kind) {
      case MetricKind::kCounter:
        if (m.per_core) {
          os << " total=" << m.total() << " per_core=[";
          for (std::size_t i = 0; i < m.width; ++i) {
            if (i != 0) os << ' ';
            os << m.slot(i);
          }
          os << ']';
        } else {
          os << ' ' << m.slot(0);
        }
        break;
      case MetricKind::kGauge:
        os << ' ' << m.slot(0);
        break;
      case MetricKind::kHistogram: {
        const std::size_t n = m.bounds.size();
        os << " count=" << m.slot(n + 2) << " sum=" << m.slot(n + 1)
           << " buckets=[";
        for (std::size_t i = 0; i < n; ++i) {
          if (i != 0) os << ' ';
          os << "le" << m.bounds[i] << ':' << m.slot(i);
        }
        os << " inf:" << m.slot(n) << ']';
        break;
      }
    }
    os << '\n';
  }
}

std::string MetricRegistry::dump_str() const {
  std::ostringstream os;
  dump(os);
  return os.str();
}

}  // namespace osim::telemetry
