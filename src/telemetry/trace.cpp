#include "telemetry/trace.hpp"

#include <cassert>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <stdexcept>

namespace osim::telemetry {

const char* to_string(EventType t) {
  switch (t) {
    case EventType::kIsaOp:
      return "ISA-OP";
    case EventType::kBlockAlloc:
      return "BLOCK-ALLOC";
    case EventType::kVersionStore:
      return "VERSION-STORE";
    case EventType::kBlockShadowed:
      return "BLOCK-SHADOWED";
    case EventType::kBlockFreed:
      return "BLOCK-FREED";
    case EventType::kLockAcquire:
      return "LOCK-ACQUIRE";
    case EventType::kLockRelease:
      return "LOCK-RELEASE";
    case EventType::kGcPhaseBegin:
      return "GC-PHASE-BEGIN";
    case EventType::kGcPhaseEnd:
      return "GC-PHASE-END";
    case EventType::kOsTrap:
      return "OS-TRAP";
    case EventType::kTaskCreated:
      return "TASK-CREATED";
    case EventType::kBlockPending:
      return "BLOCK-PENDING";
    case EventType::kVersionRead:
      return "VERSION-READ";
    case EventType::kTaskAborted:
      return "TASK-ABORTED";
    case EventType::kBlockRestored:
      return "BLOCK-RESTORED";
  }
  assert(!"unknown EventType");
  return "?";
}

namespace {

// Record layout (little-endian, FileSink::kRecordBytes):
//   u64 time | u64 addr | u64 version | u64 arg | u32 core | u8 type |
//   u8 op | u16 zero
void put_u64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
void put_u32(unsigned char* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}
std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{p[i]} << (8 * i);
  return v;
}
std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{p[i]} << (8 * i);
  return v;
}

void encode(const TraceEvent& e, unsigned char* rec) {
  put_u64(rec + 0, e.time);
  put_u64(rec + 8, e.addr);
  put_u64(rec + 16, e.version);
  put_u64(rec + 24, e.arg);
  put_u32(rec + 32, static_cast<std::uint32_t>(e.core));
  rec[36] = static_cast<unsigned char>(e.type);
  rec[37] = static_cast<unsigned char>(e.op);
  rec[38] = 0;
  rec[39] = 0;
}

TraceEvent decode(const unsigned char* rec) {
  TraceEvent e;
  e.time = get_u64(rec + 0);
  e.addr = get_u64(rec + 8);
  e.version = get_u64(rec + 16);
  e.arg = get_u64(rec + 24);
  e.core = static_cast<CoreId>(get_u32(rec + 32));
  e.type = static_cast<EventType>(rec[36]);
  e.op = static_cast<OpCode>(rec[37]);
  return e;
}

}  // namespace

struct FileSink::Impl {
  std::FILE* f = nullptr;
  std::string path;
  std::string error;
  bool error_observed = false;  // flush() threw or returned clean
  IoFaultHook* fault_hook = nullptr;

  void fail(const char* what) {
    if (!error.empty()) return;  // keep the first failure
    error = std::string(what) + " failed for trace file " + path;
    if (errno != 0) error += ": " + std::string(std::strerror(errno));
  }
};

FileSink::FileSink(const std::string& path, EventMask mask)
    : TraceSink(mask), impl_(std::make_unique<Impl>()) {
  impl_->path = path;
  impl_->f = std::fopen(path.c_str(), "wb");
  if (impl_->f == nullptr) {
    throw std::runtime_error("cannot open trace file " + path);
  }
  unsigned char header[16] = {};
  put_u32(header + 0, kMagic);
  put_u32(header + 4, kFormatVersion);
  put_u32(header + 8, static_cast<std::uint32_t>(kRecordBytes));
  errno = 0;
  if (std::fwrite(header, 1, sizeof header, impl_->f) != sizeof header) {
    impl_->fail("header write");
  }
}

FileSink::~FileSink() {
  if (impl_->f != nullptr) {
    errno = 0;
    if (std::fflush(impl_->f) != 0) impl_->fail("flush");
    std::fclose(impl_->f);
  }
  // A destructor must not throw; if nobody called flush() to observe the
  // failure, at least leave a trail instead of dropping it on the floor.
  if (!impl_->error.empty() && !impl_->error_observed) {
    std::fprintf(stderr, "osim: trace sink error: %s\n", impl_->error.c_str());
  }
}

void FileSink::on_event(const TraceEvent& e) {
  if (!impl_->error.empty()) return;  // drop after first failure, keep cause
  unsigned char rec[kRecordBytes];
  encode(e, rec);
  // Injected failures take the exact paths a real device would: a short
  // write persists a record prefix (a truncated tail readers must skip)
  // before latching; ENOSPC latches without touching the file.
  if (impl_->fault_hook != nullptr) {
    switch (impl_->fault_hook->next_io_fault()) {
      case IoFault::kNone:
        break;
      case IoFault::kShortWrite:
        (void)std::fwrite(rec, 1, kRecordBytes / 2, impl_->f);
        errno = 0;
        impl_->fail("record write (injected short write)");
        return;
      case IoFault::kEnospc:
        errno = ENOSPC;
        impl_->fail("record write");
        return;
    }
  }
  errno = 0;
  if (std::fwrite(rec, 1, sizeof rec, impl_->f) != sizeof rec) {
    impl_->fail("record write");
  }
}

void FileSink::set_fault_hook(IoFaultHook* hook) {
  impl_->fault_hook = hook;
}

void FileSink::flush() {
  if (impl_->error.empty()) {
    errno = 0;
    if (std::fflush(impl_->f) != 0) impl_->fail("flush");
  }
  impl_->error_observed = true;
  if (!impl_->error.empty()) {
    throw std::runtime_error(impl_->error);
  }
}

bool FileSink::failed() const { return !impl_->error.empty(); }

const std::string& FileSink::error() const { return impl_->error; }

std::vector<TraceEvent> read_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open trace file " + path);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  unsigned char header[16];
  if (std::fread(header, 1, sizeof header, f) != sizeof header ||
      get_u32(header + 0) != FileSink::kMagic) {
    throw std::runtime_error(path + " is not an osim trace file");
  }
  if (get_u32(header + 4) != FileSink::kFormatVersion ||
      get_u32(header + 8) != FileSink::kRecordBytes) {
    throw std::runtime_error(path + ": unsupported trace format version");
  }
  std::vector<TraceEvent> out;
  unsigned char rec[FileSink::kRecordBytes];
  while (std::fread(rec, 1, sizeof rec, f) == sizeof rec) {
    out.push_back(decode(rec));
  }
  return out;
}

}  // namespace osim::telemetry
