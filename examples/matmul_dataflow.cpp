// Dataflow matrix-multiply chain (paper Sec. IV-B): F = (A x B) x D.
//
// O-structures act as I-structures here: each element of the intermediate
// E is stored once (STORE-VERSION 1) and consumers LOAD-VERSION(1), which
// blocks until the producer has run. No barrier separates the two
// multiplications — rows of the second stage start as soon as their input
// row exists, purely through memory ordering.
//
// Runs the same problem on 1, 4 and 16 cores and prints the speedups.
#include <cstdio>

#include "runtime/env.hpp"
#include "workloads/matmul.hpp"

using namespace osim;

int main() {
  MatmulSpec spec;
  spec.n = 48;

  std::printf("chained matmul F = (A x B) x D, n = %d\n\n", spec.n);

  MachineConfig c1;
  c1.num_cores = 1;
  Env seq_env(c1);
  const RunResult seq = matmul_sequential(seq_env, spec);
  std::printf("sequential unversioned: %llu cycles\n",
              static_cast<unsigned long long>(seq.cycles));

  Cycles base = 0;
  for (int cores : {1, 4, 16}) {
    MachineConfig c;
    c.num_cores = cores;
    Env env(c);
    const RunResult r = matmul_versioned(env, spec, cores);
    if (cores == 1) base = r.cycles;
    std::printf(
        "versioned, %2d cores:   %9llu cycles  (self-speedup %.2fx, vs "
        "unversioned %.2fx)  output %s\n",
        cores, static_cast<unsigned long long>(r.cycles),
        static_cast<double>(base) / r.cycles,
        static_cast<double>(seq.cycles) / r.cycles,
        r.checksum == seq.checksum ? "matches" : "MISMATCH");
  }

  std::printf(
      "\nThe single-core versioned run pays the versioning overhead the\n"
      "paper reports (~2.5x on matmul); parallel runs amortize it away.\n");
  return 0;
}
