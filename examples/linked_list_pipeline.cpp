// The paper's Figure 1 scenario: parallelizing *sequential* insertions into
// a sorted linked list with the library API (versioned<node_t*>), using the
// Sec. IV-D pipelining protocol:
//
//   * each insertion is a task; tasks enter the list in program order
//     through the root ticket (LOCK-LOAD-VERSION),
//   * traversal locks hand-over-hand with LOCK-LOAD-LATEST, so task t+1
//     follows task t down the list one node behind,
//   * pointer updates rename (STORE-VERSION), never overwrite.
//
// The output is provably identical to the sequential program — verified at
// the end — while the insertions overlap across cores.
#include <cstdio>
#include <memory>
#include <vector>

#include "runtime/pipeline.hpp"
#include "runtime/task.hpp"

using namespace osim;

namespace {

struct node_t {
  node_t(Env& env, long v) : value(v), next(env) {}
  const long value;
  versioned<node_t*> next;
};

std::vector<std::unique_ptr<node_t>> g_nodes;

node_t* make_node(Env& env, long v) {
  g_nodes.push_back(std::make_unique<node_t>(env, v));
  return g_nodes.back().get();
}

/// Insert `n` in sorted position. `prev_ver` is the root version published
/// by the previous insertion (every task mutates here, so prev = tid - 1).
void insert_sorted(Env& env, TicketRoot<node_t*>& root, TaskId tid,
                   node_t* n) {
  node_t* cur = root.enter_mut(tid, tid - 1);
  if (cur == nullptr || cur->value >= n->value) {
    n->next.store_ver(cur, tid);
    root.leave_mut(tid, tid - 1, n);  // new first node
    return;
  }
  HandOverHand<node_t*> hoh(tid);
  node_t* nxt = hoh.advance(cur->next);
  root.leave_mut(tid, tid - 1);  // admit the next task
  while (nxt != nullptr && nxt->value < n->value) {
    nxt = hoh.advance(nxt->next);
  }
  n->next.store_ver(nxt, tid);
  hoh.modify_and_release(n);
}

}  // namespace

int main() {
  constexpr int kInsertions = 64;
  constexpr int kCores = 8;

  MachineConfig config;
  config.num_cores = kCores;
  Env env(config);

  TicketRoot<node_t*> root(env);
  TaskRuntime rt(env, kCores);
  rt.set_setup([&] { root.init(nullptr, /*setup_version=*/1); });

  // The "outer loop" of Figure 1: create one task per insertion, ids in
  // program order. Values interleave so inserts hit the whole list.
  for (TaskId tid = 2; tid < 2 + kInsertions; ++tid) {
    const long value = static_cast<long>((tid * 37) % kInsertions);
    rt.create_task(tid, [&env, &root, value](TaskId t) {
      insert_sorted(env, root, t, make_node(env, value));
    });
  }

  const Cycles cycles = rt.run();

  // Verify: walk the final snapshot (LOAD-LATEST at a cap beyond all tasks)
  // and check sortedness and length — identical to sequential execution.
  int count = 0;
  bool sorted = true;
  env.spawn(0, [&] {
    long last = -1;
    const Ver now = 2 + kInsertions;
    for (node_t* p = root.slot().load_latest(now); p != nullptr;
         p = p->next.load_latest(now)) {
      if (p->value < last) sorted = false;
      last = p->value;
      ++count;
    }
  });
  env.run();

  std::printf("inserted %d nodes on %d cores in %llu cycles\n", count, kCores,
              static_cast<unsigned long long>(cycles));
  std::printf("list is %s\n", sorted && count == kInsertions
                                  ? "sorted and complete: identical to the "
                                    "sequential program"
                                  : "WRONG");
  return sorted && count == kInsertions ? 0 : 1;
}
