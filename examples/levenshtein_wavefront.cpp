// Wavefront-parallel Levenshtein distance (paper Sec. IV-B).
//
// One task per DP row; each cell is an I-structure. The load of the
// upper-row cell blocks until the previous row's task produced it, so rows
// pipeline diagonally across the cores — the classic wavefront, expressed
// with no explicit synchronization at all.
#include <cstdio>

#include "runtime/env.hpp"
#include "workloads/levenshtein.hpp"

using namespace osim;

int main() {
  LevSpec spec;
  spec.n = 200;

  std::printf("Levenshtein distance, strings of length %d\n\n", spec.n);

  MachineConfig c1;
  c1.num_cores = 1;
  Env seq_env(c1);
  const RunResult seq = levenshtein_sequential(seq_env, spec);
  std::printf("sequential unversioned: %llu cycles\n",
              static_cast<unsigned long long>(seq.cycles));

  for (int cores : {1, 2, 8, 32}) {
    MachineConfig c;
    c.num_cores = cores;
    Env env(c);
    const RunResult r = levenshtein_versioned(env, spec, cores);
    const auto& t = env.stats().total();
    std::printf(
        "versioned, %2d cores:   %9llu cycles  (vs unversioned %.2fx)  "
        "stalls %llu  output %s\n",
        cores, static_cast<unsigned long long>(r.cycles),
        static_cast<double>(seq.cycles) / r.cycles,
        static_cast<unsigned long long>(t.stalls),
        r.checksum == seq.checksum ? "matches" : "MISMATCH");
  }

  std::printf(
      "\nStalls are the wavefront itself: a row task catching up with its\n"
      "predecessor parks on the missing cell and is woken by its store.\n");
  return 0;
}
