// Snapshot isolation through versioning and renaming (paper Sec. IV-C).
//
// A writer task repeatedly replaces elements of a versioned array while
// reader tasks scan it. Each reader sees a *consistent snapshot*: the array
// exactly as it was when the reader's turn came, regardless of how far the
// writer has advanced meanwhile. With a mutex or rwlock this would require
// excluding the writer for the whole scan; with O-structure renaming the
// writer never waits for readers and readers never wait for the writer.
#include <cstdio>
#include <vector>

#include "runtime/pipeline.hpp"
#include "runtime/task.hpp"

using namespace osim;

int main() {
  constexpr int kSlots = 32;
  constexpr int kWriters = 8;  // writer generations
  constexpr int kCores = 8;

  MachineConfig config;
  config.num_cores = kCores;
  Env env(config);

  // A versioned array: generation g writes value g into every slot.
  std::vector<versioned<std::uint64_t>> arr;
  arr.reserve(kSlots);
  for (int i = 0; i < kSlots; ++i) arr.emplace_back(env);

  TicketRoot<std::uint64_t> ticket(env);
  TaskRuntime rt(env, kCores);
  rt.set_setup([&] {
    for (auto& a : arr) a.store_ver(0, 1);
    ticket.init(0, 1);
  });

  // Interleave: writer, then 3 readers, writer, 3 readers, ...
  std::vector<std::uint64_t> scan_sums((kWriters + 1) * 3, ~0ull);
  TaskId tid = 2;
  Ver last_writer = 1;
  int reader_idx = 0;
  for (int g = 1; g <= kWriters; ++g) {
    const Ver prev = last_writer;
    rt.create_task(tid, [&env, &arr, &ticket, prev, g](TaskId t) {
      ticket.enter_mut(t, prev);
      // Renaming: every slot gets a NEW version g; old versions stay
      // readable for older snapshots (no write-after-read hazards).
      for (auto& a : arr) {
        a.store_ver(static_cast<std::uint64_t>(g), t);
        env.exec(4);
      }
      ticket.leave_mut(t, prev);
    });
    last_writer = tid;
    ++tid;
    for (int r = 0; r < 3; ++r) {
      const Ver my_prev = last_writer;
      const int idx = reader_idx++;
      rt.create_task(tid, [&env, &arr, &ticket, &scan_sums, my_prev,
                           idx](TaskId t) {
        ticket.enter_ro(my_prev);
        std::uint64_t sum = 0;
        for (auto& a : arr) {
          sum += a.load_latest(t);
          env.exec(4);
        }
        scan_sums[idx] = sum;
      });
      ++tid;
    }
  }

  const Cycles cycles = rt.run();

  // Every scan must be internally consistent: all slots from the same
  // generation, i.e. the sum is a multiple of kSlots.
  bool ok = true;
  for (int i = 0; i < reader_idx; ++i) {
    if (scan_sums[i] % kSlots != 0) ok = false;
  }
  std::printf("%d snapshot scans over %d writer generations in %llu cycles\n",
              reader_idx, kWriters,
              static_cast<unsigned long long>(cycles));
  std::printf("every scan saw a consistent snapshot: %s\n",
              ok ? "yes" : "NO — torn read!");
  const auto& t = env.stats().total();
  std::printf("versioned ops: %llu (direct hits %llu, stalls %llu)\n",
              static_cast<unsigned long long>(t.versioned_ops),
              static_cast<unsigned long long>(t.direct_hits),
              static_cast<unsigned long long>(t.stalls));
  return ok ? 0 : 1;
}
