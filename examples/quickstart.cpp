// Quickstart: the O-structure memory interface in five minutes.
//
// Build & run:   ./build/examples/quickstart
//
// Demonstrates the complete versioned ISA on a simulated single-core
// machine: STORE-VERSION / LOAD-VERSION / LOAD-LATEST, out-of-order version
// creation, fine-grained locking with renaming (UNLOCK-VERSION), and the
// blocking semantics that order a producer and a consumer across two cores.
#include <cstdio>

#include "runtime/env.hpp"
#include "runtime/versioned.hpp"

using namespace osim;

int main() {
  MachineConfig config;  // Table II defaults: 32KB L1, 1.5MB L2/core, 2 GHz
  config.num_cores = 2;
  Env env(config);

  // --- Versioning basics (core 0) -----------------------------------------
  env.spawn(0, [&] {
    versioned<int> x(env);

    // A version, once created, is immutable — but any number of versions of
    // the same location coexist, and all stay loadable.
    x.store_ver(10, /*version=*/1);
    x.store_ver(30, /*version=*/3);
    std::printf("x@1 = %d, x@3 = %d\n", x.load_ver(1), x.load_ver(3));

    // LOAD-LATEST rounds down to the newest version at or below the cap —
    // the operation an ordered task uses to read "the state as of my turn".
    std::printf("latest<=2 = %d, latest<=99 = %d\n", x.load_latest(2),
                x.load_latest(99));

    // Versions can be created out of order: version 2 arrives last.
    x.store_ver(20, /*version=*/2);
    std::printf("after out-of-order store: latest<=2 = %d\n", x.load_latest(2));

    // Fine-grained locking with renaming: lock version 3, then release it
    // while *creating* version 4 with the same value — the hand-over-hand
    // primitive that pipelines tasks through linked structures.
    const int held = x.lock_load_ver(3, /*locker=*/7);
    x.unlock_ver(3, /*owner=*/7, /*rename_to=*/Ver{4});
    std::printf("locked x@3 = %d, renamed copy x@4 = %d\n", held,
                x.load_ver(4));
  });

  env.run();

  // --- Dataflow blocking across cores --------------------------------------
  // Core 1 consumes a value core 0 has not produced yet: the LOAD-VERSION
  // blocks (no spinning — the core parks and is woken by the store).
  Env env2(config);
  versioned<long> ch(env2);
  env2.spawn(0, [&] {
    mach().advance(1000);  // pretend to compute for 1000 cycles
    ch.store_ver(42, 1);
    std::printf("[core 0] produced at cycle %llu\n",
                static_cast<unsigned long long>(mach().now()));
  });
  env2.spawn(1, [&] {
    const long v = ch.load_ver(1);  // blocks until the producer stores
    std::printf("[core 1] consumed %ld at cycle %llu\n", v,
                static_cast<unsigned long long>(mach().now()));
  });
  env2.run();

  std::printf("simulated %llu cycles total\n",
              static_cast<unsigned long long>(env2.elapsed()));
  return 0;
}
