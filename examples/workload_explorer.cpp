// Workload explorer: a command-line driver over the whole library. Runs
// any of the paper's workloads under any machine configuration and prints
// cycles plus the full statistics block — the quickest way to poke at the
// system without writing code.
//
//   workload_explorer --workload=tree --mode=par --cores=16 --size=10000 \
//                     --ops=2000 --rpw=4 --stats
//   workload_explorer --workload=list --mode=seq --size=1000 --ops=500
//   workload_explorer --workload=matmul --mode=par --cores=32 --dim=100
//   workload_explorer --workload=tree --mode=rwlock --cores=8 --scan=8
//
// Flags: --workload=list|tree|hash|rb|matmul|lev   --mode=seq|par|rwlock
//        --cores=N --size=N --ops=N --rpw=N --scan=N --dim=N --seed=N
//        --l1kb=N --inject=N --no-compression --unsorted --stats --trace=N
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/levenshtein.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"
#include "workloads/rb_tree.hpp"

using namespace osim;

namespace {

struct Options {
  std::string workload = "tree";
  std::string mode = "par";
  int cores = 8;
  DsSpec ds;
  int dim = 64;
  std::size_t l1kb = 32;
  Cycles inject = 0;
  bool no_compression = false;
  bool unsorted = false;
  bool stats = false;
  std::size_t trace = 0;
};

bool parse_flag(const char* arg, const char* name, long* out) {
  const std::size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *out = std::strtol(arg + n + 1, nullptr, 10);
  return true;
}

Options parse(int argc, char** argv) {
  Options o;
  o.ds.initial_size = 1000;
  o.ds.ops = 500;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    long v = 0;
    if (std::strncmp(a, "--workload=", 11) == 0) {
      o.workload = a + 11;
    } else if (std::strncmp(a, "--mode=", 7) == 0) {
      o.mode = a + 7;
    } else if (parse_flag(a, "--cores", &v)) {
      o.cores = static_cast<int>(v);
    } else if (parse_flag(a, "--size", &v)) {
      o.ds.initial_size = static_cast<std::size_t>(v);
    } else if (parse_flag(a, "--ops", &v)) {
      o.ds.ops = static_cast<int>(v);
    } else if (parse_flag(a, "--rpw", &v)) {
      o.ds.reads_per_write = static_cast<int>(v);
    } else if (parse_flag(a, "--scan", &v)) {
      o.ds.scan_range = static_cast<int>(v);
    } else if (parse_flag(a, "--seed", &v)) {
      o.ds.seed = static_cast<std::uint64_t>(v);
    } else if (parse_flag(a, "--dim", &v)) {
      o.dim = static_cast<int>(v);
    } else if (parse_flag(a, "--l1kb", &v)) {
      o.l1kb = static_cast<std::size_t>(v);
    } else if (parse_flag(a, "--inject", &v)) {
      o.inject = static_cast<Cycles>(v);
    } else if (parse_flag(a, "--trace", &v)) {
      o.trace = static_cast<std::size_t>(v);
    } else if (std::strcmp(a, "--no-compression") == 0) {
      o.no_compression = true;
    } else if (std::strcmp(a, "--unsorted") == 0) {
      o.unsorted = true;
    } else if (std::strcmp(a, "--stats") == 0) {
      o.stats = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s (see header comment)\n", a);
      std::exit(2);
    }
  }
  return o;
}

MachineConfig config_of(const Options& o) {
  MachineConfig c;
  c.num_cores = o.mode == "seq" ? 1 : o.cores;
  c.l1.size_bytes = o.l1kb * 1024;
  c.ostruct.injected_latency = o.inject;
  c.ostruct.enable_compression = !o.no_compression;
  c.ostruct.sorted_lists = !o.unsorted;
  c.ostruct.trace_capacity = o.trace;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  const Options o = parse(argc, argv);
  Env env(config_of(o));

  RunResult r;
  if (o.workload == "list") {
    r = o.mode == "seq" ? linked_list_sequential(env, o.ds)
                        : linked_list_versioned(env, o.ds, o.cores);
  } else if (o.workload == "tree") {
    r = o.mode == "seq"      ? binary_tree_sequential(env, o.ds)
        : o.mode == "rwlock" ? binary_tree_rwlock(env, o.ds, o.cores)
                             : binary_tree_versioned(env, o.ds, o.cores);
  } else if (o.workload == "hash") {
    r = o.mode == "seq" ? hash_table_sequential(env, o.ds)
                        : hash_table_versioned(env, o.ds, o.cores);
  } else if (o.workload == "rb") {
    r = o.mode == "seq" ? rb_tree_sequential(env, o.ds)
                        : rb_tree_versioned(env, o.ds, o.cores);
  } else if (o.workload == "matmul") {
    MatmulSpec spec;
    spec.n = o.dim;
    spec.seed = o.ds.seed;
    r = o.mode == "seq" ? matmul_sequential(env, spec)
                        : matmul_versioned(env, spec, o.cores);
  } else if (o.workload == "lev") {
    LevSpec spec;
    spec.n = o.dim;
    spec.seed = o.ds.seed;
    r = o.mode == "seq" ? levenshtein_sequential(env, spec)
                        : levenshtein_versioned(env, spec, o.cores);
  } else {
    std::fprintf(stderr, "unknown workload: %s\n", o.workload.c_str());
    return 2;
  }

  std::printf("%s/%s: %llu cycles (%.3f ms at %.0f GHz), checksum %016llx\n",
              o.workload.c_str(), o.mode.c_str(),
              static_cast<unsigned long long>(r.cycles),
              static_cast<double>(r.cycles) / (env.config().ghz * 1e6),
              env.config().ghz,
              static_cast<unsigned long long>(r.checksum));

  if (o.stats) {
    std::printf("\n");
    env.metrics().dump(std::cout);
  }
  if (o.trace > 0) {
    std::printf("\nlast %zu versioned ops:\n", o.trace);
    for (const telemetry::TraceEvent& t : env.osm().trace().snapshot()) {
      std::printf("  cycle %-10llu core %-2d %-18s addr %llx ver %llu\n",
                  static_cast<unsigned long long>(t.time), t.core,
                  to_string(t.op), static_cast<unsigned long long>(t.addr),
                  static_cast<unsigned long long>(t.version));
    }
  }
  return 0;
}
