// The model-checking harness itself under test: exhaustive exploration
// against the serial oracle on the litmus suite, sleep-set reduction vs
// the naive DFS, the preemption bound, determinism of repeated
// explorations, and the record/replay round trip (byte-identical
// reproduction, divergence detection, malformed-file rejection). The
// seeded-bug detection legs live in test_explore_seeded.cpp, which links
// an engine compiled with OSIM_MC_SEEDED_BUG.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "analysis/explore.hpp"
#include "workloads/opstream.hpp"

namespace osim::analysis {
namespace {

const McProgram& litmus(const std::string& name) {
  const McProgram* p = osim::find_mc_litmus(name);
  if (p == nullptr) throw std::runtime_error("unknown litmus " + name);
  return *p;
}

// Every schedule of the message-passing litmus must agree with the
// serial oracle; the tree is small enough to exhaust.
TEST(Explore, Mp2MatchesOracleExhaustively) {
  ExploreResult res = explore(litmus("mp2"), McOptions{});
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.violation_found) << res.example.violation_kind << ": "
                                    << res.example.violation_detail;
  EXPECT_GE(res.schedules, 2u);
  // The oracle itself is schedule-independent for a determinate program.
  ScheduleOutcome oracle = run_oracle(litmus("mp2"));
  EXPECT_EQ(oracle.checksum, res.first.checksum);
}

TEST(Explore, LockHandoffMatchesOracleExhaustively) {
  ExploreResult res = explore(litmus("lock_handoff"), McOptions{});
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.violation_found) << res.example.violation_kind << ": "
                                    << res.example.violation_detail;
  // The handoff exercises blocking: some schedule parks thread 1 on the
  // renamed version before thread 0 publishes it.
  EXPECT_GE(res.schedules, 2u);
}

// Three threads on disjoint slots: every cross-thread pair commutes, so
// sleep sets must prune strictly more than the naive enumeration runs.
TEST(Explore, SleepSetsReduceWide3) {
  McOptions por;
  McOptions naive;
  naive.por = false;
  ExploreResult rp = explore(litmus("wide3"), por);
  ExploreResult rn = explore(litmus("wide3"), naive);
  EXPECT_TRUE(rp.complete);
  EXPECT_TRUE(rn.complete);
  EXPECT_FALSE(rp.violation_found);
  EXPECT_FALSE(rn.violation_found);
  EXPECT_LT(rp.schedules, rn.schedules)
      << "POR explored " << rp.schedules << " vs naive " << rn.schedules;
}

// A preemption bound of zero only allows switches where the previous
// thread stopped being enabled — a strict subset of the full tree.
TEST(Explore, PreemptionBoundShrinksTheTree) {
  McOptions naive;
  naive.por = false;
  McOptions bounded = naive;
  bounded.preemption_bound = 0;
  ExploreResult full = explore(litmus("mp2"), naive);
  ExploreResult few = explore(litmus("mp2"), bounded);
  EXPECT_TRUE(few.complete);
  EXPECT_FALSE(few.violation_found);
  EXPECT_LT(few.schedules, full.schedules);
  EXPECT_GE(few.schedules, 1u);
}

// Exploration is a pure function of (program, options): repeated runs
// visit the same tree in the same order.
TEST(Explore, DeterministicAcrossRuns) {
  ExploreResult a = explore(litmus("mp2"), McOptions{});
  ExploreResult b = explore(litmus("mp2"), McOptions{});
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(a.steps_total, b.steps_total);
  EXPECT_EQ(a.first.checksum, b.first.checksum);
  ASSERT_EQ(a.first.steps.size(), b.first.steps.size());
  for (std::size_t i = 0; i < a.first.steps.size(); ++i) {
    EXPECT_EQ(a.first.steps[i].tid, b.first.steps[i].tid);
    EXPECT_EQ(static_cast<int>(a.first.steps[i].kind),
              static_cast<int>(b.first.steps[i].kind));
    EXPECT_EQ(a.first.steps[i].obj, b.first.steps[i].obj);
  }
}

// Attaching the online protocol checker serializes reads (a different
// schedule space) but the protocol itself is clean in every schedule.
TEST(Explore, CheckedModeCleanOnMp2) {
  McOptions opt;
  opt.checked = true;
  ExploreResult res = explore(litmus("mp2"), opt);
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.violation_found) << res.example.violation_kind << ": "
                                    << res.example.violation_detail;
}

// The reclaim-vs-insert window litmus is clean on the correct engine:
// allocation happens before the walk, so mid-store retirement can never
// corrupt the chain. (The seeded build flips this; see
// test_explore_seeded.cpp.)
TEST(Explore, GcFenceCleanOnCorrectEngine) {
  ExploreResult res = explore(litmus("gc_fence"), McOptions{});
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.violation_found) << res.example.violation_kind << ": "
                                    << res.example.violation_detail;
}

// Registration overflow on the clean engine is an orderly engine error,
// not a bound violation.
TEST(Explore, CtxBoundCleanOnCorrectEngine) {
  ExploreResult res = explore(litmus("ctx_bound"), McOptions{});
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.violation_found) << res.example.violation_kind << ": "
                                    << res.example.violation_detail;
}

// Guaranteed deadlock: the scheduler's lowest-tid victim cascade must
// mirror the oracle's no-progress rule in every schedule, so both ops
// fault identically everywhere.
TEST(Explore, DeadlockCascadeMatchesOracle) {
  ExploreResult res = explore(litmus("deadlock_pair"), McOptions{});
  EXPECT_TRUE(res.complete);
  EXPECT_FALSE(res.violation_found) << res.example.violation_kind << ": "
                                    << res.example.violation_detail;
  ASSERT_EQ(res.first.results.size(), 2u);
  EXPECT_EQ(res.first.results[0][0].tag, 'f');
  EXPECT_EQ(res.first.results[1][0].tag, 'f');
}

// Serialize -> parse -> replay -> serialize must be byte-identical, and
// the replayed outcome must carry the recorded checksum.
TEST(Replay, RoundTripIsByteIdentical) {
  const McProgram& prog = litmus("mp2");
  McOptions opt;
  ExploreResult res = explore(prog, opt);
  const std::string text = serialize_schedule(prog, opt, res.first);
  ReplayFile file = parse_schedule(text);
  EXPECT_EQ(file.program, "mp2");
  EXPECT_EQ(file.steps.size(), res.first.steps.size());
  ScheduleOutcome out = replay_schedule(prog, opt, file);
  EXPECT_EQ(out.checksum, res.first.checksum);
  EXPECT_EQ(serialize_schedule(prog, opt, out), text);
}

// A tampered schedule — a step handed to a thread that is not at the
// recorded point — must fail loudly, not execute something else.
TEST(Replay, DivergenceIsDetected) {
  const McProgram& prog = litmus("mp2");
  McOptions opt;
  ExploreResult res = explore(prog, opt);
  ReplayFile file = parse_schedule(serialize_schedule(prog, opt, res.first));
  ASSERT_GE(file.steps.size(), 2u);
  // First decision is a thread-start pick; rewriting its label to a
  // shard acquire cannot match any live candidate.
  file.steps[0].kind = SchedKind::kShardAcquire;
  file.steps[0].obj = 7;
  EXPECT_THROW(replay_schedule(prog, opt, file), std::runtime_error);
}

TEST(Replay, TruncatedScheduleIsDetected) {
  const McProgram& prog = litmus("mp2");
  McOptions opt;
  ExploreResult res = explore(prog, opt);
  ReplayFile file = parse_schedule(serialize_schedule(prog, opt, res.first));
  file.steps.resize(file.steps.size() / 2);
  EXPECT_THROW(replay_schedule(prog, opt, file), std::runtime_error);
}

// A replay recorded against a seeded engine must refuse to run against
// a clean one (and vice versa) instead of silently "passing".
TEST(Replay, SeededBuildMismatchIsRejected) {
  const McProgram& prog = litmus("mp2");
  McOptions opt;
  ExploreResult res = explore(prog, opt);
  McOptions recorded = opt;
  recorded.seeded = 1;
  ReplayFile file =
      parse_schedule(serialize_schedule(prog, recorded, res.first));
  EXPECT_EQ(file.seeded, 1);
  EXPECT_THROW(replay_schedule(prog, opt, file), std::runtime_error);
}

TEST(Replay, MalformedFilesAreRejected) {
  const char* bad[] = {
      "",
      "not-a-schedule\n",
      "osim-mc-schedule v2\nprogram mp2\n",
      "osim-mc-schedule v1\nprogram mp2\nchecked 0\nseeded 0\nsteps 1\n",
      "osim-mc-schedule v1\nprogram mp2\nchecked 0\nseeded 0\nsteps 1\n"
      "0 0 bogus-kind 0\nchecksum 0\nviolation 0 -\nend\n",
      "osim-mc-schedule v1\nprogram mp2\nchecked 0\nseeded 0\nsteps 1\n"
      "0 0 thread-start 0\nchecksum nothex\nviolation 0 -\nend\n",
      "osim-mc-schedule v1\nprogram mp2\nchecked 2\nseeded 0\nsteps 0\n"
      "checksum 0\nviolation 0 -\nend\n",
  };
  for (const char* text : bad) {
    EXPECT_THROW(parse_schedule(text), std::runtime_error)
        << "accepted: " << text;
  }
}

}  // namespace
}  // namespace osim::analysis
