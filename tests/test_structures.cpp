// Tests for the dataflow wrappers (istructure / mstructure) and the
// software O-structure runtime.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/structures.hpp"
#include "runtime/sw_ostructures.hpp"

namespace osim {
namespace {

MachineConfig cfg(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  return c;
}

// ---------------------------------------------------------------------------
// I-structures

TEST(IStructure, PutThenGet) {
  Env env(cfg(1));
  env.run_sequential([&] {
    istructure<int> cell(env);
    EXPECT_FALSE(cell.full());
    cell.put(42);
    EXPECT_TRUE(cell.full());
    EXPECT_EQ(cell.get(), 42);
    EXPECT_EQ(cell.get(), 42);  // reads never consume
  });
}

TEST(IStructure, GetBlocksUntilPut) {
  Env env(cfg(2));
  istructure<int> cell(env);
  Cycles got_at = 0;
  int got = 0;
  env.spawn(0, [&] {
    got = cell.get();
    got_at = mach().now();
  });
  env.spawn(1, [&] {
    mach().advance(4000);
    cell.put(9);
  });
  env.run();
  EXPECT_EQ(got, 9);
  EXPECT_GT(got_at, 4000u);
}

TEST(IStructure, DoublePutFaults) {
  Env env(cfg(1));
  env.spawn(0, [&] {
    istructure<int> cell(env);
    cell.put(1);
    cell.put(2);
  });
  EXPECT_THROW(env.run(), SimError);
}

TEST(IStructure, ManyConsumersOneProducer) {
  Env env(cfg(8));
  istructure<long> cell(env);
  int sum = 0;
  for (CoreId c = 0; c < 7; ++c) {
    env.spawn(c, [&] { sum += static_cast<int>(cell.get()); });
  }
  env.spawn(7, [&] {
    mach().advance(1000);
    cell.put(3);
  });
  env.run();
  EXPECT_EQ(sum, 21);
}

// ---------------------------------------------------------------------------
// M-structures

TEST(MStructure, TakePutRoundTrip) {
  Env env(cfg(1));
  env.run_sequential([&] {
    mstructure<int> cell(env);
    cell.init(5);
    EXPECT_EQ(cell.take(/*taker=*/1), 5);
    cell.put(1, 6);
    EXPECT_EQ(cell.take(2), 6);
    cell.put(2, 7);
    // Full version history is retained (beyond classic M-structures).
    EXPECT_EQ(cell.history(1), 5);
    EXPECT_EQ(cell.history(2), 6);
    EXPECT_EQ(cell.history(3), 7);
  });
}

TEST(MStructure, TakersExcludeEachOther) {
  // Two cores increment through an M-structure: atomicity means no lost
  // updates, regardless of interleaving.
  Env env(cfg(2));
  mstructure<long> counter(env);
  env.spawn(0, [&] {
    counter.init(0);
    for (int i = 0; i < 50; ++i) {
      const long v = counter.take(100);
      mach().exec(10);
      counter.put(100, v + 1);
    }
  });
  env.spawn(1, [&] {
    for (int i = 0; i < 50; ++i) {
      const long v = counter.take(200);
      mach().exec(10);
      counter.put(200, v + 1);
    }
  });
  env.run();
  long final_value = -1;
  env.spawn(0, [&] { final_value = counter.take(300); });
  env.run();
  EXPECT_EQ(final_value, 100);
}

TEST(MStructure, TakeBlocksUntilInit) {
  Env env(cfg(2));
  mstructure<int> cell(env);
  Cycles taken_at = 0;
  env.spawn(0, [&] {
    cell.take(1);
    taken_at = mach().now();
  });
  env.spawn(1, [&] {
    mach().advance(2500);
    cell.init(1);
  });
  env.run();
  EXPECT_GT(taken_at, 2500u);
}

// ---------------------------------------------------------------------------
// Software O-structures: identical semantics, higher cost.

TEST(SwOStructure, SemanticsMatchHardware) {
  Env env(cfg(1));
  env.run_sequential([&] {
    SwOStructure sw(env);
    sw.store_version(2, 22);
    sw.store_version(5, 55);
    sw.store_version(3, 33);  // out of order
    EXPECT_EQ(sw.load_version(2), 22u);
    EXPECT_EQ(sw.load_version(3), 33u);
    Ver got = 0;
    EXPECT_EQ(sw.load_latest(4, &got), 33u);
    EXPECT_EQ(got, 3u);
    EXPECT_EQ(sw.load_latest(100), 55u);
    EXPECT_EQ(sw.version_count(), 3);
  });
}

TEST(SwOStructure, LockExcludesAndRenames) {
  Env env(cfg(1));
  env.run_sequential([&] {
    SwOStructure sw(env);
    sw.store_version(1, 10);
    EXPECT_EQ(sw.lock_load_version(1, 7), 10u);
    sw.unlock_version(1, 7, Ver{2});
    EXPECT_EQ(sw.load_version(2), 10u);
  });
}

TEST(SwOStructure, DoubleStoreFaults) {
  Env env(cfg(1));
  env.spawn(0, [&] {
    SwOStructure sw(env);
    sw.store_version(1, 1);
    sw.store_version(1, 2);
  });
  EXPECT_THROW(env.run(), SimError);
}

TEST(SwOStructure, UnlockByNonOwnerFaults) {
  Env env(cfg(1));
  env.spawn(0, [&] {
    SwOStructure sw(env);
    sw.store_version(1, 1);
    sw.lock_load_version(1, 5);
    sw.unlock_version(1, 6);
  });
  EXPECT_THROW(env.run(), SimError);
}

TEST(SwOStructure, BlockingProducerConsumer) {
  Env env(cfg(2));
  SwOStructure sw(env);
  std::uint64_t got = 0;
  Cycles got_at = 0;
  env.spawn(0, [&] {
    got = sw.load_version(1);
    got_at = mach().now();
  });
  env.spawn(1, [&] {
    mach().advance(3000);
    sw.store_version(1, 77);
  });
  env.run();
  EXPECT_EQ(got, 77u);
  EXPECT_GT(got_at, 3000u);
}

TEST(SwOStructure, LockContentionBlocksSecondLocker) {
  Env env(cfg(2));
  SwOStructure sw(env);
  Cycles second = 0;
  env.spawn(0, [&] {
    sw.store_version(1, 5);
    sw.lock_load_version(1, 100);
    mach().advance(5000);
    sw.unlock_version(1, 100);
  });
  env.spawn(1, [&] {
    mach().advance(500);
    sw.lock_load_version(1, 200);
    second = mach().now();
    sw.unlock_version(1, 200);
  });
  env.run();
  EXPECT_GT(second, 5000u);
}

TEST(SwOStructure, CostsMoreThanHardware) {
  // The paper's motivation for architectural support: the same op sequence
  // costs far more in software. Compare single-core store+load streams.
  const int kOps = 200;
  Cycles hw = 0, sw_cycles = 0;
  {
    Env env(cfg(1));
    env.spawn(0, [&] {
      versioned<std::uint64_t> v(env);
      const Cycles t0 = mach().now();
      for (Ver i = 1; i <= kOps; ++i) {
        v.store_ver(i, i);
        v.load_ver(i);
      }
      hw = mach().now() - t0;
    });
    env.run();
  }
  {
    Env env(cfg(1));
    env.spawn(0, [&] {
      SwOStructure s(env);
      const Cycles t0 = mach().now();
      for (Ver i = 1; i <= kOps; ++i) {
        s.store_version(i, i);
        s.load_version(i);
      }
      sw_cycles = mach().now() - t0;
    });
    env.run();
  }
  EXPECT_GT(sw_cycles, 2 * hw) << "software should cost several times more";
}

}  // namespace
}  // namespace osim
