// Unit tests for the multicore machine: deterministic scheduling, timing,
// blocking/wakeup, deadlock detection, fault propagation.
#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace osim {
namespace {

MachineConfig cfg(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  return c;
}

TEST(Machine, SingleCoreRunsToCompletion) {
  Machine m(cfg(1));
  int x = 0;
  m.spawn(0, [&] {
    mach().exec(10);
    x = 7;
  });
  m.run();
  EXPECT_EQ(x, 7);
  // 10 instructions on a 2-wide core = 5 cycles.
  EXPECT_EQ(m.elapsed(), 5u);
  EXPECT_EQ(m.stats().core[0].instructions, 10u);
}

TEST(Machine, ExecRoundsUpToIssueWidth) {
  Machine m(cfg(1));
  m.spawn(0, [&] { mach().exec(7); });
  m.run();
  EXPECT_EQ(m.elapsed(), 4u);  // ceil(7/2)
}

TEST(Machine, MemAccessChargesHierarchyLatency) {
  Machine m(cfg(1));
  m.spawn(0, [&] {
    mach().mem_access(0x1000, AccessType::kRead);
    mach().mem_access(0x1000, AccessType::kRead);
  });
  m.run();
  const auto& c = m.config();
  EXPECT_EQ(m.elapsed(), (c.l1.hit_latency + c.l2_hit_latency +
                          c.dram_latency) +
                             c.l1.hit_latency);
}

TEST(Machine, MemoryEventsProcessedInGlobalTimeOrder) {
  // Core 1 starts 1000 cycles "later"; its write to X must be observed by
  // the memory system after core 0's earlier accesses even though core 1's
  // fiber could physically run first.
  Machine m(cfg(2));
  std::vector<int> order;
  m.spawn(1, [&] {
    mach().advance(1000);
    mach().mem_access(0x9000, AccessType::kWrite);
    order.push_back(1);
  });
  m.spawn(0, [&] {
    mach().mem_access(0x9000, AccessType::kWrite);
    order.push_back(0);
  });
  m.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  // Core 1's miss found the line modified in core 0's L1.
  EXPECT_EQ(m.stats().core[1].remote_l1_fills, 1u);
}

TEST(Machine, TieBreaksByCoreId) {
  Machine m(cfg(2));
  std::vector<int> order;
  for (CoreId c : {1, 0}) {
    m.spawn(c, [&order, c] {
      mach().mem_access(0x100 + 0x1000 * c, AccessType::kRead);
      order.push_back(c);
    });
  }
  m.run();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);  // equal clocks: lower id goes first
}

TEST(Machine, BlockAndWake) {
  Machine m(cfg(2));
  WaitList wl;
  std::vector<int> order;
  m.spawn(0, [&] {
    order.push_back(0);
    mach().block_on(wl);
    order.push_back(2);
  });
  m.spawn(1, [&] {
    mach().advance(500);  // make sure core 0 blocks first
    mach().sync_to_global_order();
    order.push_back(1);
    mach().wake_all(wl, /*wake_latency=*/8);
  });
  m.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  // Woken core resumes at waker time + latency.
  EXPECT_GE(m.elapsed(), 508u);
  EXPECT_GE(m.stats().core[0].stall_cycles, 500u);
}

TEST(Machine, WakeAllWakesEveryWaiter) {
  Machine m(cfg(4));
  WaitList wl;
  int woken = 0;
  for (CoreId c : {0, 1, 2}) {
    m.spawn(c, [&] {
      mach().block_on(wl);
      ++woken;
    });
  }
  m.spawn(3, [&] {
    mach().advance(100);
    mach().sync_to_global_order();
    mach().wake_all(wl, 1);
  });
  m.run();
  EXPECT_EQ(woken, 3);
}

TEST(Machine, DeadlockDetected) {
  Machine m(cfg(2));
  WaitList wl;
  m.spawn(0, [&] { mach().block_on(wl); });
  m.spawn(1, [&] { mach().block_on(wl); });
  try {
    m.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(Machine, FaultPropagatesOutOfRun) {
  Machine m(cfg(2));
  WaitList wl;
  m.spawn(0, [&] { mach().block_on(wl); });  // must be unwound cleanly
  m.spawn(1, [&] {
    mach().advance(10);
    mach().sync_to_global_order();
    throw std::runtime_error("simulated protection fault");
  });
  try {
    m.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("protection fault"),
              std::string::npos);
  }
}

TEST(Machine, DeterministicAcrossRuns) {
  auto run_once = [] {
    Machine m(cfg(4));
    std::vector<int> order;
    for (CoreId c = 0; c < 4; ++c) {
      m.spawn(c, [&order, c] {
        for (int i = 0; i < 10; ++i) {
          mach().mem_access(0x1000 * (c + 1) + 64 * i, AccessType::kRead);
          mach().exec(3 + c);
          order.push_back(c);
        }
      });
    }
    m.run();
    return order;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Machine, ElapsedIsMaxOverCores) {
  Machine m(cfg(2));
  m.spawn(0, [&] { mach().advance(10); });
  m.spawn(1, [&] { mach().advance(999); });
  m.run();
  EXPECT_EQ(m.elapsed(), 999u);
}

TEST(Machine, IdleCoresDoNotBlockCompletion) {
  Machine m(cfg(8));
  m.spawn(3, [&] { mach().exec(2); });
  m.run();  // cores 0-2, 4-7 have no program
  EXPECT_EQ(m.elapsed(), 1u);
}

TEST(Machine, CoreCanBeRespawnedAfterCompletion) {
  // A verification pass may reuse cores after the measured run; the clock
  // carries on monotonically.
  Machine m(cfg(1));
  m.spawn(0, [&] { mach().advance(100); });
  m.run();
  Cycles second_start = 0;
  m.spawn(0, [&] {
    second_start = mach().now();
    mach().advance(50);
  });
  m.run();
  EXPECT_EQ(second_start, 100u);
  EXPECT_EQ(m.elapsed(), 150u);
}

TEST(Machine, SharedCounterInterleavingIsTimestampOrdered) {
  // Two cores increment a shared counter at interleaved timestamps; the
  // final value must equal the sum (no lost updates are possible because
  // each fiber's op runs atomically at its timestamp).
  Machine m(cfg(2));
  int counter = 0;
  for (CoreId c = 0; c < 2; ++c) {
    m.spawn(c, [&counter, c] {
      for (int i = 0; i < 100; ++i) {
        mach().mem_access(0xA000, AccessType::kWrite);
        counter++;
        mach().exec(1 + c);
      }
    });
  }
  m.run();
  EXPECT_EQ(counter, 200);
  // Writes ping-pong the line: both cores must see remote fills/upgrades.
  EXPECT_GT(m.stats().core[0].remote_l1_fills + m.stats().core[0].upgrades,
            0u);
}

}  // namespace
}  // namespace osim
