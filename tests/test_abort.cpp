// abort_task rollback invariants on both engines: created versions are
// unlinked and freed, shadowed neighbours become the head again, held locks
// are released, and a retry (plain task_begin) finds exactly the
// pre-attempt state. Plus the degradation loop around it: injected
// kResourceExhausted absorbed by abort-and-retry, and deadlock-timeout
// diagnostics naming op/version/address/task.
#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include <gtest/gtest.h>

#include "analysis/checker.hpp"
#include "core/concurrent_store.hpp"
#include "core/fault.hpp"
#include "core/fault_injection.hpp"
#include "core/version_engine.hpp"
#include "core/version_store.hpp"
#include "runtime/concurrent.hpp"
#include "runtime/functional.hpp"
#include "telemetry/metrics.hpp"

namespace osim {
namespace {

// Serial engine at litmus scale (the run_oracle setup): functional timing,
// no auto-GC, abort journal on.
struct SerialEngine {
  telemetry::MetricRegistry reg;
  FunctionalTiming timing;
  std::unique_ptr<VersionStore> vs;
  OAddr base = 0;

  explicit SerialEngine(bool track_aborts = true,
                        GcPolicyKind policy = GcPolicyKind::kPaper,
                        int cores = 2, std::size_t slots = 8)
      : reg(cores) {
    OStructConfig cfg;
    cfg.initial_pool_blocks = std::size_t{1} << 12;
    cfg.gc_watermark = 0;
    cfg.track_aborts = track_aborts;
    cfg.gc_policy = policy;
    vs = std::make_unique<VersionStore>(cfg, cores, reg, timing);
    base = vs->alloc(slots);
    timing.set_core(0);
  }
};

TEST(SerialAbort, RollsBackStoresAndRestoresShadowedHead) {
  SerialEngine e;
  VersionStore& vs = *e.vs;
  vs.task_created(1);
  vs.task_begin(1);
  vs.store_version(e.base, 1, 111);
  vs.task_end(1);

  const std::size_t free_before = vs.free_blocks();
  vs.task_created(2);
  vs.task_begin(2);
  vs.store_version(e.base, 2, 222);      // shadows version 1
  vs.store_version(e.base + 8, 5, 555);
  ASSERT_EQ(vs.newest_version(e.base).value_or(0), 2u);

  vs.abort_task(2);
  EXPECT_FALSE(vs.peek_version(e.base, 2).has_value());
  EXPECT_FALSE(vs.peek_version(e.base + 8, 5).has_value());
  EXPECT_EQ(vs.newest_version(e.base).value_or(0), 1u);
  EXPECT_EQ(vs.peek_version(e.base, 1).value_or(0), 111u);
  EXPECT_EQ(vs.free_blocks(), free_before);
  EXPECT_EQ(vs.aborts(), 1u);
  // Same accounting through the backend-agnostic facade: these are the
  // fields bench JSON and osim-report read for BOTH engines.
  const EngineStats es = static_cast<VersionEngine&>(vs).engine_stats();
  EXPECT_EQ(es.tasks_aborted, 1u);
  EXPECT_EQ(es.aborted_blocks, 2u);
  EXPECT_EQ(es.aborted_locks, 0u);

  // The task is still unfinished: a plain task_begin retries it, and the
  // restored head accepts the same stores again.
  vs.task_begin(2);
  vs.store_version(e.base, 2, 223);
  vs.store_version(e.base + 8, 5, 556);
  vs.task_end(2);
  EXPECT_EQ(vs.peek_version(e.base, 2).value_or(0), 223u);
  EXPECT_EQ(vs.peek_version(e.base + 8, 5).value_or(0), 556u);
}

TEST(SerialAbort, ReleasesLocksAndUndoesRename) {
  SerialEngine e;
  VersionStore& vs = *e.vs;
  vs.task_created(1);
  vs.task_begin(1);
  vs.store_version(e.base, 1, 111);
  vs.task_end(1);

  vs.task_created(2);
  vs.task_begin(2);
  EXPECT_EQ(vs.lock_load_version(e.base, 1, 2), 111u);
  vs.unlock_version(e.base, 1, 2, Ver{5});  // rename: creates version 5
  EXPECT_EQ(vs.peek_version(e.base, 5).value_or(0), 111u);
  EXPECT_EQ(vs.lock_load_version(e.base, 5, 2), 111u);

  vs.abort_task(2);
  EXPECT_FALSE(vs.peek_version(e.base, 5).has_value());
  EXPECT_EQ(vs.peek_version(e.base, 1).value_or(0), 111u);
  EXPECT_FALSE(vs.lock_holder(e.base, 1).has_value());
  // Journal replay is newest-first: release the lock on 5, unlink the
  // renamed version 5 (one block), then skip the version-1 lock entry —
  // the rename-unlock already released it.
  const EngineStats es = static_cast<VersionEngine&>(vs).engine_stats();
  EXPECT_EQ(es.tasks_aborted, 1u);
  EXPECT_EQ(es.aborted_blocks, 1u);
  EXPECT_EQ(es.aborted_locks, 1u);
  vs.task_end(2);

  // Nothing left locked: a third task can lock version 1 immediately.
  vs.task_created(3);
  vs.task_begin(3);
  EXPECT_EQ(vs.lock_load_version(e.base, 1, 3), 111u);
  vs.unlock_version(e.base, 1, 3);
  vs.task_end(3);
}

TEST(SerialAbort, VictimUnlockFaultsDeterministically) {
  // Task 2 locked a version task 1 created; when task 1 aborts, the
  // version is gone and task 2's unlock must fault kNotLockOwner rather
  // than silently succeed or corrupt another block.
  SerialEngine e;
  VersionStore& vs = *e.vs;
  vs.task_created(1);
  vs.task_created(2);
  vs.task_begin(1);
  vs.store_version(e.base, 10, 123);

  e.timing.set_core(1);
  vs.task_begin(2);
  EXPECT_EQ(vs.lock_load_version(e.base, 10, 2), 123u);

  e.timing.set_core(0);
  vs.abort_task(1);
  vs.task_end(1);

  e.timing.set_core(1);
  try {
    vs.unlock_version(e.base, 10, 2);
    FAIL() << "unlock of an aborted version must fault";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kNotLockOwner);
  }
  vs.task_end(2);
}

TEST(SerialAbort, RequiresTrackAborts) {
  SerialEngine e(/*track_aborts=*/false);
  e.vs->task_created(1);
  e.vs->task_begin(1);
  try {
    e.vs->abort_task(1);
    FAIL() << "abort without a journal must fault";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kTaskOrderViolation);
  }
}

TEST(SerialAbort, InjectedExhaustionAbortRetryConvergesClean) {
  // The full degradation loop under the protocol checker: the 3rd
  // block-pool request fails (injected), the task aborts and retries, and
  // the event stream — kBlockFreed/kBlockRestored rollback events included
  // — must satisfy every checker invariant.
  SerialEngine e;
  VersionStore& vs = *e.vs;
  analysis::CheckerSink sink(2);
  vs.tracer().attach(&sink);
  FaultInjector inj(FaultPlan::parse("pool@3"));
  vs.attach_fault_injector(&inj);

  vs.task_created(1);
  int attempts = 0;
  for (;;) {
    vs.task_begin(1);
    ++attempts;
    try {
      for (Ver v = 1; v <= 4; ++v) {
        vs.store_version(e.base + 8 * (v - 1), v, 100 + v);
      }
      vs.task_end(1);
      break;
    } catch (const OFault& f) {
      ASSERT_EQ(f.kind(), FaultKind::kResourceExhausted);
      vs.abort_task(1);
    }
  }
  EXPECT_EQ(attempts, 2);
  EXPECT_EQ(vs.aborts(), 1u);
  EXPECT_EQ(inj.fired(FaultSite::kBlockPool), 1u);
  for (Ver v = 1; v <= 4; ++v) {
    EXPECT_EQ(vs.peek_version(e.base + 8 * (v - 1), v).value_or(0), 100 + v);
  }
  sink.checker().finish();
  EXPECT_EQ(sink.checker().error_count(), 0u);
  EXPECT_EQ(sink.checker().warning_count(), 0u);
}

TEST(SerialAbort, BothGcPoliciesRestoreShadowedState) {
  for (const GcPolicyKind policy :
       {GcPolicyKind::kPaper, GcPolicyKind::kBounded}) {
    SerialEngine e(/*track_aborts=*/true, policy);
    VersionStore& vs = *e.vs;
    vs.task_created(1);
    vs.task_begin(1);
    vs.store_version(e.base, 1, 10);
    vs.task_end(1);

    vs.task_created(2);
    vs.task_begin(2);
    vs.store_version(e.base, 2, 20);  // shadows 1
    vs.store_version(e.base, 3, 30);  // shadows 2
    vs.abort_task(2);
    vs.task_end(2);

    EXPECT_EQ(vs.newest_version(e.base).value_or(0), 1u);
    EXPECT_EQ(vs.peek_version(e.base, 1).value_or(0), 10u);
    EXPECT_EQ(vs.version_count(e.base), 1);

    // The restored head must be fully live again: shadowing it anew and
    // finishing normally must not confuse the (un-registered) GC state.
    vs.task_created(3);
    vs.task_begin(3);
    vs.store_version(e.base, 2, 21);
    vs.task_end(3);
    EXPECT_EQ(vs.newest_version(e.base).value_or(0), 2u);
  }
}

// One scripted abort driven purely through the facade: task 1 seeds
// version 1, task 2 shadows it, stores a second slot, locks version 1,
// then aborts. Returns the facade-level accounting.
EngineStats scripted_abort(VersionEngine& eng) {
  const OAddr base = eng.alloc(2);
  eng.task_created(1);
  eng.task_begin(1);
  eng.store_version(base, 1, 111);
  eng.task_end(1);

  eng.task_created(2);
  eng.task_begin(2);
  eng.store_version(base, 2, 222);      // shadows version 1
  eng.store_version(base + 8, 4, 444);
  EXPECT_EQ(eng.lock_load_version(base, 1, 2), 111u);
  eng.abort_task(2);
  eng.task_end(2);

  EXPECT_FALSE(eng.peek_version(base, 2).has_value());
  EXPECT_EQ(eng.peek_version(base, 1).value_or(0), 111u);
  EXPECT_FALSE(eng.lock_holder(base, 1).has_value());
  return eng.engine_stats();
}

TEST(AbortStats, FacadeAccountingAgreesAcrossEngines) {
  // The drift this guards against: the engines once counted undone work in
  // backend-private structs with different field meanings. Identical op
  // streams must now yield field-for-field identical EngineStats.
  SerialEngine serial;
  const EngineStats from_serial = scripted_abort(*serial.vs);

  ConcurrencyConfig cfg;
  cfg.track_aborts = true;
  ConcurrentVersionStore conc(cfg);
  const EngineStats from_conc = scripted_abort(conc);

  EXPECT_EQ(from_serial.tasks_aborted, 1u);
  EXPECT_EQ(from_conc.tasks_aborted, from_serial.tasks_aborted);
  EXPECT_EQ(from_conc.aborted_blocks, from_serial.aborted_blocks);
  EXPECT_EQ(from_conc.aborted_locks, from_serial.aborted_locks);
}

TEST(ConcurrentAbort, RollsBackStoresLocksAndShadow) {
  ConcurrencyConfig cfg;
  cfg.track_aborts = true;
  ConcurrentVersionStore store(cfg);
  const OAddr a = store.alloc(2);
  store.store_version(a, 1, 111);  // host-side setup: no task, not journaled

  store.task_created(7);
  store.task_begin(7);
  store.store_version(a, 2, 222);      // shadows version 1
  store.store_version(a + 8, 4, 444);
  EXPECT_EQ(store.lock_load_version(a, 1, 7), 111u);

  store.abort_task(7);
  EXPECT_FALSE(store.peek_version(a, 2).has_value());
  EXPECT_FALSE(store.peek_version(a + 8, 4).has_value());
  EXPECT_EQ(store.newest_version(a).value_or(0), 1u);
  EXPECT_EQ(store.peek_version(a, 1).value_or(0), 111u);
  EXPECT_FALSE(store.lock_holder(a, 1).has_value());
  const auto s = store.stats();
  EXPECT_EQ(s.aborts, 1u);
  EXPECT_EQ(s.aborted_blocks, 2u);
  EXPECT_EQ(s.aborted_locks, 1u);
  // The facade view must spell the identical numbers under the identical
  // field names the serial engine uses (see SerialAbort tests above).
  const EngineStats es =
      static_cast<VersionEngine&>(store).engine_stats();
  EXPECT_EQ(es.tasks_aborted, s.aborts);
  EXPECT_EQ(es.aborted_blocks, s.aborted_blocks);
  EXPECT_EQ(es.aborted_locks, s.aborted_locks);
  EXPECT_TRUE(store.check_integrity().ok) << store.check_integrity().detail;

  store.task_begin(7);  // retry
  store.store_version(a, 2, 223);
  store.task_end(7);
  EXPECT_EQ(store.peek_version(a, 2).value_or(0), 223u);
  EXPECT_TRUE(store.check_integrity().ok) << store.check_integrity().detail;
}

TEST(ConcurrentAbort, PoolRetriesUnderInjectedExhaustion) {
  // ConcurrentTaskPool's abort-and-retry degradation under a block-pool
  // fault rate: every task must eventually commit (giveups == 0) and the
  // committed state must be exactly what a fault-free run produces.
  ConcurrencyConfig cfg;
  cfg.track_aborts = true;
  cfg.deadlock_timeout_ms = 2000;
  cfg.max_threads = 8;
  ConcurrentVersionStore store(cfg);
  constexpr int kTasks = 16;
  constexpr int kOps = 24;
  const OAddr base = store.alloc(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    store.store_version(base + 8 * static_cast<OAddr>(t), 1,
                        1000u + static_cast<std::uint64_t>(t));
  }
  // Armed only after setup: host-side setup has no task to absorb a fault.
  FaultInjector inj(FaultPlan::parse("pool:0.03,seed=9"));
  store.attach_fault_injector(&inj);

  ConcurrentTaskPool pool(store, 4);
  ConcurrentTaskPool::RetryPolicy rp;
  rp.max_retries = 200;
  rp.backoff_base_us = 1;
  rp.backoff_cap_us = 50;
  pool.set_retry_policy(rp);

  std::atomic<int> bad{0};
  for (int t = 0; t < kTasks; ++t) {
    pool.create_task(static_cast<TaskId>(t + 1), [&, t](TaskId tid) {
      const OAddr a = base + 8 * static_cast<OAddr>(t);
      const Ver v0 = static_cast<Ver>(tid) * 1000;
      for (int k = 0; k < kOps; ++k) {
        store.store_version(a, v0 + static_cast<Ver>(k) + 1,
                            v0 + 100 + static_cast<std::uint64_t>(k));
      }
      if (store.load_version(a, 1) !=
          1000u + static_cast<std::uint64_t>(t)) {
        bad.fetch_add(1);
      }
    });
  }
  pool.run();

  EXPECT_EQ(bad.load(), 0);
  const auto rec = pool.recovery_stats();
  EXPECT_EQ(rec.giveups, 0u);
  EXPECT_GE(inj.fired(FaultSite::kBlockPool), 1u);
  EXPECT_GE(rec.retries, 1u);
  EXPECT_EQ(store.stats().aborts, rec.aborts);
  EXPECT_EQ(store.engine_stats().tasks_aborted, rec.aborts);
  for (int t = 0; t < kTasks; ++t) {
    const OAddr a = base + 8 * static_cast<OAddr>(t);
    const Ver v0 = static_cast<Ver>(t + 1) * 1000;
    for (int k = 0; k < kOps; ++k) {
      EXPECT_EQ(store.peek_version(a, v0 + static_cast<Ver>(k) + 1)
                    .value_or(0),
                v0 + 100 + static_cast<std::uint64_t>(k));
    }
  }
  EXPECT_TRUE(store.check_integrity().ok) << store.check_integrity().detail;
}

TEST(ConcurrentAbort, InjectedDeadlockNamesOpVersionAddressTask) {
  ConcurrencyConfig cfg;
  cfg.track_aborts = true;
  ConcurrentVersionStore store(cfg);
  const OAddr a = store.alloc(1);
  FaultInjector inj(FaultPlan::parse("deadlock@1"));
  store.attach_fault_injector(&inj);

  store.task_created(3);
  store.task_begin(3);
  try {
    (void)store.load_version(a, 42);  // never stored: would block
    FAIL() << "injected deadlock must fire on the first blocked op";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kWouldBlock);
    const std::string msg = f.what();
    EXPECT_NE(msg.find("injected deadlock timeout"), std::string::npos) << msg;
    EXPECT_NE(msg.find("LOAD-VERSION"), std::string::npos) << msg;
    EXPECT_NE(msg.find("version 42"), std::string::npos) << msg;
    EXPECT_NE(msg.find("address " + std::to_string(a)), std::string::npos)
        << msg;
    EXPECT_NE(msg.find("task 3"), std::string::npos) << msg;
  }
  store.abort_task(3);
  store.task_end(3);
  EXPECT_TRUE(store.check_integrity().ok);
}

TEST(ConcurrentAbort, RealDeadlockTimeoutIsConfigurable) {
  // The timeout in the fault message is ConcurrencyConfig's, proving the
  // config value actually drives the monitor (and keeping this test fast).
  ConcurrencyConfig cfg;
  cfg.deadlock_timeout_ms = 50;
  cfg.park_slice_us = 100;
  ConcurrentVersionStore store(cfg);
  const OAddr a = store.alloc(1);
  store.task_created(1);
  store.task_begin(1);
  try {
    (void)store.load_version(a, 9);  // nobody will ever store it
    FAIL() << "blocked load must time out";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kWouldBlock);
    const std::string msg = f.what();
    EXPECT_NE(msg.find("still blocked after 50ms"), std::string::npos) << msg;
  }
  store.task_end(1);
}

}  // namespace
}  // namespace osim
