// Fault taxonomy and edge-case coverage: every protection rule of paper
// Sec. III must trip deterministically, and boundary inputs (huge versions,
// empty structures, released slots, rule-violating runtimes) must behave.
#include <gtest/gtest.h>

#include <string>

#include "core/fault.hpp"
#include "core/ostructure_manager.hpp"
#include "runtime/env.hpp"
#include "runtime/task.hpp"
#include "runtime/versioned.hpp"

namespace osim {
namespace {

MachineConfig cfg(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  return c;
}

void expect_fault(Machine& m, const char* needle) {
  try {
    m.run();
    FAIL() << "expected SimError containing '" << needle << "'";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << e.what();
  }
}

TEST(Faults, VersionedOpOnMisalignedAddress) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] { o.load_version(a + 3, 1); });
  expect_fault(m, "versioned access to unversioned page");
}

TEST(Faults, VersionedOpBelowRegion) {
  Machine m(cfg(1));
  OStructureManager o(m);
  m.spawn(0, [&] { o.store_version(0x1000, 1, 1); });
  expect_fault(m, "versioned access to unversioned page");
}

TEST(Faults, VersionedOpOnReleasedSlot) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  o.release(a);
  m.spawn(0, [&] { o.store_version(a, 1, 1); });
  expect_fault(m, "not allocated");
}

TEST(Faults, ReleasedSlotWakesParkedWaitersIntoFault) {
  // A core parked on a versioned load when the slot is released must not
  // deadlock silently: it is woken and faults with a clear message.
  Machine m(cfg(2));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] { o.load_version(a, 1); });  // parks: version never stored
  m.spawn(1, [&] {
    mach().advance(1000);
    o.release(a, 1);
  });
  expect_fault(m, "not allocated");
}

TEST(Faults, TaskRuntimeRejectsOutOfOrderCreationBelowWindow) {
  Env env(cfg(2));
  TaskRuntime rt(env, 2);
  rt.create_task(10, [](TaskId) {});
  EXPECT_THROW(rt.create_task(5, [](TaskId) {}), OFault);
}

TEST(Faults, TaskEndWithoutBeginFaultsThroughManager) {
  Machine m(cfg(1));
  OStructureManager o(m);
  m.spawn(0, [&] { o.task_end(7); });
  expect_fault(m, "task ordering rule violation");
}

TEST(Faults, LockingSameVersionTwiceBySameTaskStalls) {
  // Even the lock holder cannot re-lock: the attempt deadlocks (reported),
  // matching "an attempt to lock an already locked version will stall".
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    o.store_version(a, 1, 1);
    o.lock_load_version(a, 1, 5);
    o.lock_load_version(a, 1, 5);  // stalls forever
  });
  expect_fault(m, "deadlock");
}

TEST(Faults, ZeroSlotAllocRejected) {
  Machine m(cfg(1));
  OStructureManager o(m);
  EXPECT_THROW(o.alloc(0), OFault);
}

TEST(EdgeCases, HugeVersionNumbersWork) {
  // Versions beyond the 32-bit compressible range still function; they just
  // never compress (range overflow accounting, full lookups).
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  const Ver big1 = (Ver{1} << 40) + 5;
  const Ver big2 = (Ver{1} << 40) + 9;
  m.spawn(0, [&] {
    o.store_version(a, big1, 11);
    o.store_version(a, big2, 22);
    EXPECT_EQ(o.load_version(a, big1), 11u);
    EXPECT_EQ(o.load_latest(a, big2 + 100), 22u);
    for (int i = 0; i < 4; ++i) o.load_version(a, big1);
  });
  m.run();
  EXPECT_EQ(m.stats().core[0].direct_hits, 0u);  // uncompressible
  EXPECT_GT(m.stats().compress_overflows, 0u);
}

TEST(EdgeCases, VersionZeroIsValid) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    o.store_version(a, 0, 7);
    EXPECT_EQ(o.load_version(a, 0), 7u);
    EXPECT_EQ(o.load_latest(a, 100), 7u);
  });
  m.run();
}

TEST(EdgeCases, ManyVersionsOnOneSlot) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    for (Ver v = 1; v <= 2000; ++v) o.store_version(a, v, v * 3);
    // Spot-check old, middle, new.
    EXPECT_EQ(o.load_version(a, 1), 3u);
    EXPECT_EQ(o.load_version(a, 1000), 3000u);
    EXPECT_EQ(o.load_latest(a, 5000), 6000u);
    EXPECT_EQ(o.version_count(a), 2000);
  });
  m.run();
}

TEST(EdgeCases, InterleavedSlotsShareCacheLinesSafely) {
  // Adjacent slots belong to different versioned objects; operations on one
  // must never disturb the other's versions.
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr base = o.alloc(16);
  m.spawn(0, [&] {
    for (int s = 0; s < 16; ++s) {
      o.store_version(base + 8 * s, 1, 100 + s);
    }
    for (int s = 0; s < 16; ++s) {
      o.store_version(base + 8 * s, 2, 200 + s);
    }
    for (int s = 0; s < 16; ++s) {
      EXPECT_EQ(o.load_version(base + 8 * s, 1), 100u + s);
      EXPECT_EQ(o.load_version(base + 8 * s, 2), 200u + s);
    }
  });
  m.run();
}

TEST(EdgeCases, ReleaseWholeGroupFreesEveryVersion) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr base = o.alloc(4);
  m.spawn(0, [&] {
    for (int s = 0; s < 4; ++s) {
      for (Ver v = 1; v <= 5; ++v) o.store_version(base + 8 * s, v, v);
    }
  });
  m.run();
  const std::size_t free_before = o.free_blocks();
  o.release(base, 4);
  EXPECT_EQ(o.free_blocks(), free_before + 20);
}

TEST(EdgeCases, EnvProtectionCatchesVersionedPointerMisuse) {
  // Passing a versioned<T>'s slot address into conventional ld/st is the
  // classic programming error; the versioned bit traps it.
  Env env(cfg(1));
  versioned<int> v(env);
  env.spawn(0, [&] {
    auto* bogus = reinterpret_cast<int*>(v.addr());
    env.ld(*bogus);
  });
  EXPECT_THROW(env.run(), SimError);
}

TEST(EdgeCases, UnversionedMachineRunsWithZeroPoolPressure) {
  // Conventional-only programs must be unaffected by the O-structure
  // subsystem ("does not affect conventional memory use").
  MachineConfig c = cfg(2);
  c.ostruct.initial_pool_blocks = 8;  // nearly no versioning capacity
  Env env(c);
  int x = 0;
  env.spawn(0, [&] {
    for (int i = 0; i < 100; ++i) env.st(x, i);
  });
  env.spawn(1, [&] {
    for (int i = 0; i < 100; ++i) env.ld(x);
  });
  env.run();
  EXPECT_EQ(env.stats().blocks_allocated, 0u);
  EXPECT_EQ(x, 99);
}

}  // namespace
}  // namespace osim
