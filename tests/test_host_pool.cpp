// HostPool: host-parallel execution of independent simulations must be
// invisible in simulated results. Each cell builds its own Env/Machine, so
// cycles, stats, and checksums have to be bit-identical whether the cells
// run serially or fanned out across host threads (the property the bench
// driver's --threads flag relies on).
#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/host_pool.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"

namespace osim {
namespace {

struct CellOut {
  Cycles cycles = 0;
  std::uint64_t checksum = 0;
  std::uint64_t l1_hits = 0;
  std::uint64_t l2_misses = 0;
  std::string metrics_dump;  ///< full registry dump (every metric)
};

/// A small grid of dissimilar cells: sequential and task-parallel variants,
/// different structures, different core counts.
std::vector<std::function<RunResult(Env&)>> cell_bodies() {
  DsSpec spec;
  spec.initial_size = 200;
  spec.ops = 60;
  spec.reads_per_write = 4;
  MatmulSpec mm;
  mm.n = 12;
  return {
      [spec](Env& env) { return linked_list_sequential(env, spec); },
      [spec](Env& env) { return linked_list_versioned(env, spec, 4); },
      [spec](Env& env) { return binary_tree_versioned(env, spec, 8); },
      [spec](Env& env) { return binary_tree_rwlock(env, spec, 8); },
      [mm](Env& env) { return matmul_versioned(env, mm, 4); },
  };
}

std::vector<CellOut> run_grid(int threads) {
  const auto bodies = cell_bodies();
  std::vector<CellOut> out(bodies.size());
  std::vector<std::function<void()>> jobs;
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    jobs.push_back([&, i] {
      MachineConfig cfg;
      cfg.num_cores = 8;
      Env env(cfg);
      const RunResult r = bodies[i](env);
      const CoreStats total = env.stats().total();
      out[i] = {r.cycles, r.checksum, total.l1_hits, total.l2_misses,
                env.metrics().dump_str()};
    });
  }
  HostPool(threads).run(std::move(jobs));
  return out;
}

TEST(HostPool, ParallelResultsBitIdenticalToSerial) {
  const auto serial = run_grid(1);
  for (int threads : {2, 4, 8}) {
    const auto par = run_grid(threads);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      EXPECT_EQ(serial[i].cycles, par[i].cycles) << "cell " << i;
      EXPECT_EQ(serial[i].checksum, par[i].checksum) << "cell " << i;
      EXPECT_EQ(serial[i].l1_hits, par[i].l1_hits) << "cell " << i;
      EXPECT_EQ(serial[i].l2_misses, par[i].l2_misses) << "cell " << i;
      // Every metric — not just the legacy stats fields — must be
      // byte-identical regardless of host threading.
      EXPECT_EQ(serial[i].metrics_dump, par[i].metrics_dump) << "cell " << i;
    }
  }
}

TEST(HostPool, RunsEveryJobExactlyOnce) {
  constexpr int kJobs = 100;
  std::vector<std::atomic<int>> hits(kJobs);
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back([&hits, i] { hits[i].fetch_add(1); });
  }
  HostPool(4).run(std::move(jobs));
  for (int i = 0; i < kJobs; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(HostPool, FirstExceptionByJobIndexPropagates) {
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < 10; ++i) {
    jobs.push_back([i] {
      if (i == 3) throw std::runtime_error("cell 3");
      if (i == 7) throw std::runtime_error("cell 7");
    });
  }
  try {
    HostPool(4).run(std::move(jobs));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "cell 3");
  }
}

TEST(HostPool, BatchDrainsEvenWhenJobsThrow) {
  constexpr int kJobs = 32;
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> jobs;
  for (int i = 0; i < kJobs; ++i) {
    jobs.push_back([&ran, i] {
      ran.fetch_add(1);
      if (i % 5 == 0) throw std::runtime_error("boom");
    });
  }
  EXPECT_THROW(HostPool(4).run(std::move(jobs)), std::runtime_error);
  EXPECT_EQ(ran.load(), kJobs);
}

TEST(HostPool, DefaultThreadCountMatchesHardware) {
  EXPECT_EQ(HostPool(0).thread_count(), HostPool::hardware_threads());
  EXPECT_EQ(HostPool(-3).thread_count(), HostPool::hardware_threads());
  EXPECT_EQ(HostPool(5).thread_count(), 5);
  EXPECT_GE(HostPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace osim
