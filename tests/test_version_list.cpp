// Unit tests for version block lists and the block pool.
#include "core/version_list.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "core/fault.hpp"

namespace osim {
namespace {

class VersionListTest : public ::testing::Test {
 protected:
  BlockIndex make(Ver v, std::uint64_t data = 0) {
    const BlockIndex b = pool.alloc();
    EXPECT_NE(b, kNullBlock);
    pool[b].version = v;
    pool[b].data = data;
    return b;
  }

  std::vector<Ver> versions_in_order() {
    std::vector<Ver> out;
    for (BlockIndex b = root; b != kNullBlock; b = pool[b].next) {
      out.push_back(pool[b].version);
    }
    return out;
  }

  BlockPool pool{64};
  BlockIndex root = kNullBlock;
};

TEST_F(VersionListTest, PoolAllocFreeRoundTrip) {
  EXPECT_EQ(pool.free_count(), 64u);
  const BlockIndex b = pool.alloc();
  EXPECT_EQ(pool.free_count(), 63u);
  EXPECT_EQ(pool[b].state, BlockState::kLive);
  const auto gen = pool[b].generation;
  pool.free(b);
  EXPECT_EQ(pool.free_count(), 64u);
  EXPECT_EQ(pool[b].state, BlockState::kFree);
  EXPECT_EQ(pool[b].generation, gen + 1);
}

TEST_F(VersionListTest, PoolExhaustionReturnsNull) {
  for (int i = 0; i < 64; ++i) EXPECT_NE(pool.alloc(), kNullBlock);
  EXPECT_EQ(pool.alloc(), kNullBlock);
  pool.grow(8);
  EXPECT_NE(pool.alloc(), kNullBlock);
}

TEST_F(VersionListTest, InsertIntoEmptyListBecomesHead) {
  const auto r = list_insert(pool, &root, make(5), /*sorted=*/true);
  EXPECT_TRUE(r.at_head);
  EXPECT_EQ(r.shadowed, kNullBlock);
  EXPECT_TRUE(pool[root].head);
  EXPECT_EQ(versions_in_order(), (std::vector<Ver>{5}));
}

TEST_F(VersionListTest, SortedInsertKeepsNewestFirst) {
  for (Ver v : {3, 1, 5, 2, 4}) list_insert(pool, &root, make(v), true);
  EXPECT_EQ(versions_in_order(), (std::vector<Ver>{5, 4, 3, 2, 1}));
  // Head bit is set exactly on the head.
  EXPECT_TRUE(pool[root].head);
  int heads = 0;
  for (BlockIndex b = root; b != kNullBlock; b = pool[b].next) {
    heads += pool[b].head ? 1 : 0;
  }
  EXPECT_EQ(heads, 1);
}

TEST_F(VersionListTest, InsertAtHeadShadowsOldHead) {
  list_insert(pool, &root, make(1), true);
  const BlockIndex old_head = root;
  const auto r = list_insert(pool, &root, make(2), true);
  EXPECT_TRUE(r.at_head);
  EXPECT_EQ(r.shadowed, old_head);
}

TEST_F(VersionListTest, MidInsertIsBornShadowed) {
  list_insert(pool, &root, make(1), true);
  list_insert(pool, &root, make(5), true);
  const auto r = list_insert(pool, &root, make(3), true);
  EXPECT_FALSE(r.at_head);
  EXPECT_EQ(r.shadowed, r.block);
  EXPECT_EQ(r.pred, root);  // inserted right after the head (5)
}

TEST_F(VersionListTest, DuplicateVersionFaults) {
  list_insert(pool, &root, make(7), true);
  const BlockIndex dup = make(7);
  try {
    list_insert(pool, &root, dup, true);
    FAIL() << "expected OFault";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kVersionAlreadyExists);
  }
}

TEST_F(VersionListTest, FindExactHitsAndMisses) {
  for (Ver v : {2, 4, 6}) list_insert(pool, &root, make(v, v * 10), true);
  auto r = find_exact(pool, root, 4, true);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(pool[r.block].data, 40u);
  EXPECT_EQ(r.blocks_walked, 2);  // 6 then 4
  EXPECT_FALSE(r.is_head);
  EXPECT_TRUE(r.has_newer);
  EXPECT_EQ(r.newer, 6u);

  EXPECT_FALSE(find_exact(pool, root, 3, true).found());
  EXPECT_FALSE(find_exact(pool, root, 99, true).found());
  // Sorted early termination: searching 3 stops after seeing 2.
  EXPECT_LE(find_exact(pool, root, 3, true).blocks_walked, 3);
}

TEST_F(VersionListTest, FindExactOnHeadReportsHead) {
  for (Ver v : {2, 4, 6}) list_insert(pool, &root, make(v), true);
  auto r = find_exact(pool, root, 6, true);
  ASSERT_TRUE(r.found());
  EXPECT_TRUE(r.is_head);
  EXPECT_FALSE(r.has_newer);
}

TEST_F(VersionListTest, FindLatestSemantics) {
  for (Ver v : {2, 4, 6}) list_insert(pool, &root, make(v, v * 10), true);
  // Below the lowest version: nothing.
  EXPECT_FALSE(find_latest(pool, root, 1, true).found());
  // Exactly a version.
  auto r = find_latest(pool, root, 4, true);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(pool[r.block].version, 4u);
  EXPECT_TRUE(r.has_newer);
  EXPECT_EQ(r.newer, 6u);
  // Between versions: round down.
  r = find_latest(pool, root, 5, true);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(pool[r.block].version, 4u);
  // Above everything: the head.
  r = find_latest(pool, root, 100, true);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(pool[r.block].version, 6u);
  EXPECT_TRUE(r.is_head);
}

TEST_F(VersionListTest, HeadBitViolationFaults) {
  for (Ver v : {1, 2, 3}) list_insert(pool, &root, make(v), true);
  const BlockIndex second = pool[root].next;
  try {
    find_exact(pool, second, 1, true);
    FAIL() << "expected OFault";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kNotListHead);
  }
}

TEST_F(VersionListTest, UnlinkMiddleAndHead) {
  std::vector<BlockIndex> blocks;
  for (Ver v : {1, 2, 3}) {
    list_insert(pool, &root, make(v), true);
  }
  // List: 3 -> 2 -> 1. Unlink 2 (middle).
  const BlockIndex mid = pool[root].next;
  list_unlink(pool, &root, mid);
  EXPECT_EQ(versions_in_order(), (std::vector<Ver>{3, 1}));
  // Unlink the head; the next block inherits the head bit.
  const BlockIndex old_head = root;
  list_unlink(pool, &root, old_head);
  EXPECT_EQ(versions_in_order(), (std::vector<Ver>{1}));
  EXPECT_TRUE(pool[root].head);
  EXPECT_FALSE(pool[old_head].head);
}

TEST_F(VersionListTest, UnsortedInsertAlwaysAtHead) {
  for (Ver v : {3, 1, 5}) list_insert(pool, &root, make(v), /*sorted=*/false);
  EXPECT_EQ(versions_in_order(), (std::vector<Ver>{5, 1, 3}));
}

TEST_F(VersionListTest, UnsortedFindScansWholeList) {
  for (Ver v : {3, 1, 5, 2}) list_insert(pool, &root, make(v, v), false);
  auto r = find_latest(pool, root, 4, false);
  ASSERT_TRUE(r.found());
  EXPECT_EQ(pool[r.block].version, 3u);
  EXPECT_EQ(r.blocks_walked, 4);  // no early termination
  auto e = find_exact(pool, root, 3, false);
  ASSERT_TRUE(e.found());
  EXPECT_EQ(pool[e.block].data, 3u);
}

// Property test: random insert orders always yield a sorted list, and
// find_latest always agrees with a reference computation.
class VersionListProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(VersionListProperty, RandomOrderMatchesReferenceModel) {
  std::mt19937 rng(GetParam());
  BlockPool pool(512);
  BlockIndex root = kNullBlock;
  std::vector<Ver> inserted;
  std::vector<Ver> candidates(200);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    candidates[i] = static_cast<Ver>(i + 1);
  }
  std::shuffle(candidates.begin(), candidates.end(), rng);
  candidates.resize(100);

  for (Ver v : candidates) {
    const BlockIndex b = pool.alloc();
    pool[b].version = v;
    pool[b].data = v * 3;
    list_insert(pool, &root, b, true);
    inserted.push_back(v);

    // Invariant: list is sorted descending, head bit correct.
    Ver prev = ~Ver{0};
    for (BlockIndex x = root; x != kNullBlock; x = pool[x].next) {
      EXPECT_LT(pool[x].version, prev);
      prev = pool[x].version;
    }
    EXPECT_TRUE(pool[root].head);
  }

  std::uniform_int_distribution<Ver> cap_dist(0, 220);
  for (int trial = 0; trial < 50; ++trial) {
    const Ver cap = cap_dist(rng);
    Ver best = 0;
    bool exists = false;
    for (Ver v : inserted) {
      if (v <= cap && (!exists || v > best)) {
        best = v;
        exists = true;
      }
    }
    const auto r = find_latest(pool, root, cap, true);
    EXPECT_EQ(r.found(), exists) << "cap " << cap;
    if (exists && r.found()) {
      EXPECT_EQ(pool[r.block].version, best);
      EXPECT_EQ(pool[r.block].data, best * 3);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VersionListProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 17u, 99u));

}  // namespace
}  // namespace osim
