// Seeded-bug regression: this binary links a concurrent engine compiled
// with OSIM_MC_SEEDED_BUG (1 = the PR-6 alloc-after-walk reclaim race,
// 2 = the PR-6 context-registration overshoot), and asserts that
// exhaustive exploration of the matching litmus *finds* a violating
// schedule — i.e. the harness would have caught both shipped bugs — and
// that the recorded schedule replays to a byte-identical reproduction.
//
// The build recompiles src/core/concurrent_store.cpp into this
// executable with the macro set; the linker prefers those definitions
// over the clean archive members in libosim_core.a.
#include <gtest/gtest.h>

#include <string>

#include "analysis/explore.hpp"
#include "workloads/opstream.hpp"

#if !defined(OSIM_MC_SEEDED_BUG)
#error "test_explore_seeded.cpp requires -DOSIM_MC_SEEDED_BUG=1|2"
#endif

namespace osim::analysis {
namespace {

struct SeedCase {
  const char* program;
  const char* kind;  ///< expected violation_kind
};

constexpr SeedCase kCase =
#if OSIM_MC_SEEDED_BUG == 1
    // Walk-then-allocate: reclamation during the third store's allocation
    // hands back the block the walk chose as the insert position, forging
    // a self-loop that chain-integrity auditing flags.
    {"gc_fence", "integrity"};
#else
    // fetch_add past max_threads: the bound audit sees more registered
    // contexts than the configuration admits.
    {"ctx_bound", "ctx-overshoot"};
#endif

McOptions seeded_options() {
  McOptions opt;
  opt.seeded = OSIM_MC_SEEDED_BUG;
  return opt;
}

TEST(SeededBug, ExplorationFindsAViolatingSchedule) {
  const McProgram* prog = osim::find_mc_litmus(kCase.program);
  ASSERT_NE(prog, nullptr);
  ExploreResult res = explore(*prog, seeded_options());
  ASSERT_TRUE(res.violation_found)
      << "seeded bug " << OSIM_MC_SEEDED_BUG << " not detected in "
      << res.schedules << " schedules";
  EXPECT_EQ(res.example.violation_kind, kCase.kind)
      << res.example.violation_detail;
}

// The detection must be stable: same tree, same first violating schedule.
TEST(SeededBug, DetectionIsDeterministic) {
  const McProgram* prog = osim::find_mc_litmus(kCase.program);
  ASSERT_NE(prog, nullptr);
  ExploreResult a = explore(*prog, seeded_options());
  ExploreResult b = explore(*prog, seeded_options());
  ASSERT_TRUE(a.violation_found);
  ASSERT_TRUE(b.violation_found);
  EXPECT_EQ(a.schedules, b.schedules);
  EXPECT_EQ(serialize_schedule(*prog, seeded_options(), a.example),
            serialize_schedule(*prog, seeded_options(), b.example));
}

// The violating schedule round-trips: record it, replay it, and the
// reproduction — including the violation verdict — is byte-identical.
TEST(SeededBug, ViolatingScheduleReplaysByteIdentically) {
  const McProgram* prog = osim::find_mc_litmus(kCase.program);
  ASSERT_NE(prog, nullptr);
  McOptions opt = seeded_options();
  ExploreResult res = explore(*prog, opt);
  ASSERT_TRUE(res.violation_found);
  const std::string text = serialize_schedule(*prog, opt, res.example);
  ReplayFile file = parse_schedule(text);
  EXPECT_EQ(file.seeded, OSIM_MC_SEEDED_BUG);
  EXPECT_TRUE(file.violation);
  ScheduleOutcome out = replay_schedule(*prog, opt, file);
  EXPECT_TRUE(out.violation);
  EXPECT_EQ(out.violation_kind, kCase.kind);
  EXPECT_EQ(serialize_schedule(*prog, opt, out), text);
}

}  // namespace
}  // namespace osim::analysis
