// Stress and correctness tests for the thread-safe engine
// (core/concurrent_store.hpp): final-state equivalence against a
// single-threaded replay, mutual exclusion through version locks, seqlock
// torn-read detection, reclamation under concurrent optimistic readers,
// and the deadlock fault diagnostics. tools/run-sanitizers.sh runs this
// binary under TSan — the seqlock and epoch machinery is designed to be
// data-race-free at the C++ memory-model level, not merely "works on
// x86".
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/concurrent_store.hpp"
#include "core/fault.hpp"
#include "runtime/concurrent.hpp"
#include "sim/machine.hpp"

namespace osim {
namespace {

std::uint64_t mix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t data_for(Ver v, std::uint64_t slot) {
  return (v * 0x9E3779B97F4A7C15ull) ^ (slot << 17) ^ 0x5DEECE66Dull;
}

/// A randomized but deterministic op stream: thread t's ops depend only on
/// (t, nthreads, seed), never on scheduling. Stores get globally unique
/// versions (2 + t + i*nthreads); reads name a version thread t itself
/// stored earlier, so they never block.
struct PlannedStream {
  struct Op {
    std::uint64_t slot;
    Ver store_version;  ///< nonzero: store; zero: read `read_version`
    Ver read_version;
  };
  std::vector<Op> ops;
};

PlannedStream plan_stream(int t, int nthreads, int nops,
                          std::uint64_t nslots) {
  PlannedStream st;
  std::uint64_t seed = 0xC0FFEEull + static_cast<std::uint64_t>(t) * 7919;
  std::vector<std::pair<std::uint64_t, Ver>> mine;  // (slot, version) stored
  for (int i = 0; i < nops; ++i) {
    PlannedStream::Op op;
    const bool is_store = mine.empty() || mix64(seed) % 100 < 60;
    if (is_store) {
      op.store_version = 2 + static_cast<Ver>(t) +
                         static_cast<Ver>(mine.size()) *
                             static_cast<Ver>(nthreads);
      op.slot = mix64(seed) % nslots;
      op.read_version = 0;
      mine.emplace_back(op.slot, op.store_version);
    } else {
      const auto& prev = mine[mix64(seed) % mine.size()];
      op.slot = prev.first;
      op.store_version = 0;
      op.read_version = prev.second;
    }
    st.ops.push_back(op);
  }
  return st;
}

/// Runs the streams on `workers` host threads. Read results are validated
/// against data_for() via an atomic mismatch counter rather than gtest
/// assertions: ASSERT/EXPECT are only safe on the main thread, so worker
/// threads record failures and the caller asserts the count is zero.
std::uint64_t run_streams(ConcurrentVersionStore& store, OAddr base,
                          const std::vector<PlannedStream>& streams,
                          int workers) {
  std::atomic<std::uint64_t> mismatches{0};
  ConcurrentTaskPool pool(store, workers);
  for (std::size_t t = 0; t < streams.size(); ++t) {
    const PlannedStream& st = streams[t];
    pool.create_task(static_cast<TaskId>(t + 1),
                     [&st, &store, base, &mismatches](TaskId) {
      for (const auto& op : st.ops) {
        const OAddr a = base + 8 * op.slot;
        if (op.store_version != 0) {
          store.store_version(a, op.store_version,
                              data_for(op.store_version, op.slot));
        } else if (store.load_version(a, op.read_version) !=
                   data_for(op.read_version, op.slot)) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.run();
  return mismatches.load(std::memory_order_relaxed);
}

// The parallel engine must produce exactly the final O-structure state of a
// single-threaded replay of the same streams: the store *set* determines
// the state, not the interleaving.
TEST(ConcurrentStore, FinalStateMatchesSerialReplay) {
  constexpr int kThreads = 8;
  constexpr int kOps = 2000;
  constexpr std::uint64_t kSlots = 64;
  std::vector<PlannedStream> streams;
  for (int t = 0; t < kThreads; ++t) {
    streams.push_back(plan_stream(t, kThreads, kOps, kSlots));
  }

  ConcurrentVersionStore parallel;
  const OAddr pb = parallel.alloc(kSlots);
  EXPECT_EQ(run_streams(parallel, pb, streams, kThreads), 0u);

  ConcurrentVersionStore serial;
  const OAddr sb = serial.alloc(kSlots);
  EXPECT_EQ(run_streams(serial, sb, streams, /*workers=*/1), 0u);

  for (std::uint64_t s = 0; s < kSlots; ++s) {
    EXPECT_EQ(parallel.slot_versions(pb + 8 * s),
              serial.slot_versions(sb + 8 * s))
        << "slot " << s;
  }
  const auto stats = parallel.stats();
  EXPECT_EQ(stats.stores, serial.stats().stores);
}

// Version locks must give real mutual exclusion across host threads: N
// threads increment a plain (non-atomic) counter under LOCK-LOAD /
// UNLOCK(rename) chains; any lost update means two threads were inside the
// critical section at once.
TEST(ConcurrentStore, ContendedCounterLockMutualExclusion) {
  constexpr int kThreads = 8;
  constexpr int kIncrements = 500;
  ConcurrentVersionStore store;
  const OAddr counter = store.alloc(1);
  store.store_version(counter, 1, 0);

  std::uint64_t plain_counter = 0;  // deliberately unprotected
  std::atomic<Ver> next_rename{2};

  ConcurrentTaskPool pool(store, kThreads);
  for (int t = 0; t < kThreads; ++t) {
    pool.create_task(
        static_cast<TaskId>(t + 1),
        [&store, counter, &plain_counter, &next_rename](TaskId me) {
          for (int i = 0; i < kIncrements; ++i) {
            Ver got = 0;
            store.lock_load_latest(counter, ~Ver{0}, me, &got);
            plain_counter += 1;  // the protected region
            const Ver fresh =
                next_rename.fetch_add(1, std::memory_order_relaxed);
            // Rename forward so the latest version is always the one the
            // next locker grabs; the old version stays (immutable history).
            store.unlock_version(counter, got, me, fresh);
          }
        });
  }
  pool.run();
  EXPECT_EQ(plain_counter,
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(store.version_count(counter), 1 + kThreads * kIncrements);
}

// Seqlock validation: concurrent writers keep prepending versions while
// readers hammer optimistic LOAD-VERSION walks. Every read must return the
// data stored for exactly that version — a torn walk (pointer from one
// write window, data from another) would break the pairing.
TEST(ConcurrentStore, SeqlockTornReadDetection) {
  constexpr std::uint64_t kSlots = 4;  // few slots = maximal seq churn
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  constexpr int kVersionsPerWriter = 3000;
  ConcurrentVersionStore store;
  const OAddr base = store.alloc(kSlots);
  for (std::uint64_t s = 0; s < kSlots; ++s) {
    store.store_version(base + 8 * s, 1, data_for(1, s));
  }

  // Each reader keeps going until the writers are done AND it has made at
  // least kMinReadsPerReader validated reads — a starved reader (plausible
  // on a loaded single-core host) must not end the test with zero reads.
  // Validation failures are counted atomically and asserted on the main
  // thread; gtest ASSERT/EXPECT are not safe from spawned threads.
  constexpr std::uint64_t kMinReadsPerReader = 1000;
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads_done{0};
  std::atomic<std::uint64_t> torn_reads{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&store, base, w] {
      for (int i = 0; i < kVersionsPerWriter; ++i) {
        const Ver v = 2 + static_cast<Ver>(w) +
                      static_cast<Ver>(i) * kWriters;
        const std::uint64_t slot = v % kSlots;
        store.store_version(base + 8 * slot, v, data_for(v, slot));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&store, base, &stop, &reads_done, &torn_reads, r] {
      std::uint64_t seed = 0xFACEull + static_cast<std::uint64_t>(r);
      std::uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire) ||
             local < kMinReadsPerReader) {
        const std::uint64_t slot = mix64(seed) % kSlots;
        Ver got = 0;
        const std::uint64_t d =
            store.load_latest(base + 8 * slot, ~Ver{0}, &got);
        // The pair (got, d) must be internally consistent no matter how
        // many write windows the walk raced with.
        if (d != data_for(got, slot)) {
          torn_reads.fetch_add(1, std::memory_order_relaxed);
        }
        ++local;
      }
      reads_done.fetch_add(local, std::memory_order_relaxed);
    });
  }
  for (int w = 0; w < kWriters; ++w) threads[static_cast<std::size_t>(w)].join();
  stop.store(true, std::memory_order_release);
  for (std::size_t i = kWriters; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(torn_reads.load(), 0u);
  EXPECT_GE(reads_done.load(), kMinReadsPerReader * kReaders);
}

// Epoch-based reclamation must recycle shadowed blocks while optimistic
// readers are in flight, without ever handing a reader freed memory. Tasks
// finish in waves so the GC fence keeps advancing.
TEST(ConcurrentStore, ReclamationUnderReaders) {
  ConcurrencyConfig cfg;
  cfg.reclaim_threshold = 16;  // reclaim aggressively
  ConcurrentVersionStore store(cfg);
  const OAddr a = store.alloc(1);
  store.store_version(a, 1, data_for(1, 0));

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn_reads{0};  // asserted on the main thread
  std::thread reader([&store, a, &stop, &torn_reads] {
    while (!stop.load(std::memory_order_acquire)) {
      Ver got = 0;
      const std::uint64_t d = store.load_latest(a, ~Ver{0}, &got);
      if (d != data_for(got, 0)) {
        torn_reads.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Each short task stores one newer version (shadowing the previous
  // head) and immediately ends, advancing the fence so the shadowed block
  // becomes reclaimable.
  constexpr int kTasks = 4000;
  for (int t = 1; t <= kTasks; ++t) {
    const TaskId tid = static_cast<TaskId>(t);
    store.task_created(tid);
    store.task_begin(tid);
    const Ver v = 1 + static_cast<Ver>(t);
    store.store_version(a, v, data_for(v, 0));
    store.task_end(tid);
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(torn_reads.load(), 0u);

  const auto stats = store.stats();
  EXPECT_GT(stats.blocks_reclaimed, 0u);
  // The newest version is always intact and the chain is far shorter than
  // the kTasks+1 versions ever stored.
  EXPECT_EQ(store.newest_version(a), Ver{1 + kTasks});
  EXPECT_LT(store.version_count(a), kTasks / 2);
  EXPECT_EQ(store.peek_version(a, 1 + kTasks),
            std::optional<std::uint64_t>(data_for(1 + kTasks, 0)));
}

// A genuinely unsatisfiable wait must fault kWouldBlock after the timeout,
// and the diagnostic must name the op and the parked task (satellite of the
// functional backend's instant-fault message).
TEST(ConcurrentStore, DeadlockFaultReportsTaskAndOp) {
  ConcurrencyConfig cfg;
  cfg.deadlock_timeout_ms = 100;
  cfg.spin_iters = 4;
  ConcurrentVersionStore store(cfg);
  const OAddr a = store.alloc(1);
  store.store_version(a, 1, 7);

  ConcurrentTaskPool pool(store, 1);
  pool.create_task(42, [&store, a](TaskId) {
    store.load_version(a, 999);  // never stored by anyone
  });
  try {
    pool.run();
    FAIL() << "expected SimError from the deadlocked load";
  } catch (const SimError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("LOAD-VERSION"), std::string::npos) << msg;
    EXPECT_NE(msg.find("task 42"), std::string::npos) << msg;
    EXPECT_NE(msg.find("999"), std::string::npos) << msg;
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("address " + std::to_string(a)), std::string::npos)
        << msg;
    // The reported timeout is ConcurrencyConfig's, not a hard-wired value.
    EXPECT_NE(msg.find("after 100ms"), std::string::npos) << msg;
  }
}

// request_stop() unwinds every parked waiter promptly (the pool uses it to
// abort a run after a worker error) and reset_stop() re-arms the store.
TEST(ConcurrentStore, WorkerErrorAbortsParkedWaiters) {
  ConcurrencyConfig cfg;
  cfg.deadlock_timeout_ms = 30000;  // parked op must NOT wait this out
  cfg.spin_iters = 4;
  ConcurrentVersionStore store(cfg);
  const OAddr a = store.alloc(1);
  store.store_version(a, 1, 7);

  ConcurrentTaskPool pool(store, 2);
  pool.create_task(1, [&store, a](TaskId) {
    store.load_version(a, 999);  // parks forever
  });
  pool.create_task(2, [](TaskId) {
    throw std::runtime_error("worker exploded");
  });
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_THROW(pool.run(), SimError);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_LT(secs, 10.0) << "stop request did not unwind the parked waiter";

  // The store re-arms: the same op now faults only via its own timeout
  // path, and satisfiable ops succeed.
  store.store_version(a, 2, 9);
  EXPECT_EQ(store.load_version(a, 2), 9u);
}

// Task bookkeeping mirrors the serial GC rules: creating a task older than
// the oldest unfinished one faults, TASK-END of an unknown task faults.
TEST(ConcurrentStore, TaskOrderRulesMatchSerialEngine) {
  ConcurrentVersionStore store;
  store.task_created(5);
  try {
    store.task_created(3);
    FAIL() << "expected kTaskOrderViolation";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kTaskOrderViolation);
    EXPECT_NE(std::string(f.what()).find("older than the oldest unfinished"),
              std::string::npos);
  }
  try {
    store.task_end(99);
    FAIL() << "expected kTaskOrderViolation";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kTaskOrderViolation);
    EXPECT_NE(std::string(f.what()).find("which is not running"),
              std::string::npos);
  }
}

// Serial-engine fault parity for the cases the diff test cannot reach
// concurrently: duplicate stores, unversioned accesses, unlock by
// non-owner, rename onto an existing version.
TEST(ConcurrentStore, FaultParityWithSerialEngine) {
  ConcurrentVersionStore store;
  const OAddr a = store.alloc(1);
  store.store_version(a, 7, 1);
  EXPECT_THROW(store.store_version(a, 7, 2), OFault);  // duplicate
  EXPECT_THROW(store.load_version(a + 8, 1), OFault);  // unallocated slot
  EXPECT_THROW(store.unlock_version(a, 7, 3), OFault);  // never locked
  store.lock_load_version(a, 7, /*locker=*/3);
  EXPECT_THROW(store.unlock_version(a, 7, /*owner=*/4), OFault);
  store.store_version(a, 9, 3);
  EXPECT_THROW(store.unlock_version(a, 7, 3, /*rename_to=*/9), OFault);
  store.unlock_version(a, 7, 3);
  EXPECT_FALSE(store.lock_holder(a, 7).has_value());

  store.release(a, 1);
  EXPECT_THROW(store.load_version(a, 7), OFault);
  EXPECT_FALSE(store.is_versioned_addr(a));
}

}  // namespace
}  // namespace osim
