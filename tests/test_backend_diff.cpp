// Differential test: the functional backend must agree with the
// cycle-accurate machine on everything semantic. Random versioned-op
// streams (and the opgen-driven structure workloads) run on both backends —
// including the truly concurrent engine on real host threads — and every
// read value, the final latest-version map of every slot, the multiset of
// protocol faults, and the osim-check strict verdict must be identical —
// only the clocks may differ.
#include <algorithm>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/checker.hpp"
#include "core/concurrent_store.hpp"
#include "core/version_engine.hpp"
#include "runtime/concurrent.hpp"
#include "runtime/env.hpp"
#include "runtime/task.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/rb_tree.hpp"
#include "workloads/runner.hpp"

namespace osim {
namespace {

std::uint64_t splitmix(std::uint64_t& s) {
  s += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = s;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

// One planned versioned-ISA operation. Streams are generated host-side so
// that every operation is determinate under ANY legal schedule: exact
// loads/locks only target versions some earlier task publishes (they block
// until it exists), and the deliberate fault ops are constructed so their
// outcome cannot depend on cross-task timing (see each kind).
struct PlannedOp {
  enum Kind {
    kStore,             // publish version tid on a slot
    kLoad,              // exact load of an earlier task's version
    kLockRename,        // lock an earlier version, unlock-rename to tid
    kLoadLatestSetup,   // LOAD-LATEST capped at the setup version
    kDupStore,          // second store of tid by the same task -> fault
    kWrongOwnerUnlock,  // unlock of a never-locked version -> fault
    kUnlockNonexistent, // unlock of a version nobody stores -> fault
    kBadVersionedAddr,  // versioned op outside the allocation -> fault
    kBadConventional,   // conventional access to a slot -> fault
  };
  Kind kind;
  std::uint32_t slot = 0;
  Ver ver = 0;
};

struct Stream {
  int slots;
  int tasks;
  std::vector<std::vector<PlannedOp>> ops;  // per task, executed in order
};

/// Never-stored version used by kUnlockNonexistent.
constexpr Ver kGhostVersion = 999999999;

// `unlock_violations` adds unlock ops that break the locking protocol.
// osim-check (correctly) reports those as LK-UNHELD errors, so streams
// containing them cannot expect a clean strict verdict — instead the test
// asserts both backends produce the SAME verdict. Streams without them
// must be strict-clean everywhere.
Stream make_stream(int slots, int tasks, std::uint64_t seed,
                   bool unlock_violations) {
  Stream st;
  st.slots = slots;
  st.tasks = tasks;
  st.ops.resize(static_cast<std::size_t>(tasks));
  // Published (version) list per slot, in creation order. Slot s is
  // "lockable" iff s < slots/2: lock ops stay on the lockable half, so the
  // setup versions of the other half are never locked and a wrong-owner
  // unlock there has exactly one possible outcome.
  std::vector<std::vector<Ver>> published(static_cast<std::size_t>(slots));
  for (int s = 0; s < slots; ++s) published[s].push_back(kSetupVersion);
  const int lockable = slots / 2;

  for (int i = 0; i < tasks; ++i) {
    const TaskId tid = kFirstTaskId + static_cast<TaskId>(i);
    auto& ops = st.ops[static_cast<std::size_t>(i)];
    bool stored = false;
    // At most one publishing op per task (versions are task ids).
    if (splitmix(seed) % 10 < 6) {
      const auto s =
          static_cast<std::uint32_t>(splitmix(seed) %
                                     static_cast<std::uint64_t>(slots));
      if (s < static_cast<std::uint32_t>(lockable) &&
          splitmix(seed) % 2 == 0) {
        const auto& pub = published[s];
        const Ver from = pub[splitmix(seed) % pub.size()];
        ops.push_back({PlannedOp::kLockRename, s, from});
      } else {
        ops.push_back({PlannedOp::kStore, s, tid});
        stored = true;
      }
      published[s].push_back(tid);
    }
    const std::uint64_t reads = splitmix(seed) % 3;
    for (std::uint64_t r = 0; r < reads; ++r) {
      const auto s =
          static_cast<std::uint32_t>(splitmix(seed) %
                                     static_cast<std::uint64_t>(slots));
      if (splitmix(seed) % 5 == 0) {
        ops.push_back({PlannedOp::kLoadLatestSetup, s, kSetupVersion});
      } else {
        // Exact read of a version published by this or an earlier task; the
        // op blocks until the version exists, so the value is determined.
        const auto& pub = published[s];
        ops.push_back({PlannedOp::kLoad, s,
                       pub[splitmix(seed) % pub.size()]});
      }
    }
    if (splitmix(seed) % 7 == 0) {
      switch (splitmix(seed) % 5) {
        case 0:
          if (stored) {
            ops.push_back({PlannedOp::kDupStore,
                           ops.front().slot, tid});
            break;
          }
          [[fallthrough]];
        case 1:
          if (unlock_violations) {
            ops.push_back(
                {PlannedOp::kWrongOwnerUnlock,
                 static_cast<std::uint32_t>(
                     lockable +
                     static_cast<int>(splitmix(seed) %
                                      static_cast<std::uint64_t>(
                                          slots - lockable))),
                 kSetupVersion});
            break;
          }
          [[fallthrough]];
        case 2:
          if (unlock_violations) {
            ops.push_back({PlannedOp::kUnlockNonexistent,
                           static_cast<std::uint32_t>(
                               splitmix(seed) %
                               static_cast<std::uint64_t>(slots)),
                           kGhostVersion});
            break;
          }
          [[fallthrough]];
        case 3:
          ops.push_back({PlannedOp::kBadVersionedAddr, 0, kSetupVersion});
          break;
        default:
          ops.push_back({PlannedOp::kBadConventional,
                         static_cast<std::uint32_t>(
                             splitmix(seed) %
                             static_cast<std::uint64_t>(slots)),
                         0});
      }
    }
  }
  return st;
}

/// One lowered step of a task body: either a facade op record destined
/// for VersionEngine::execute(), or a conventional-access probe (the one
/// PlannedOp with no versioned-ISA encoding, issued between batches).
struct LoweredItem {
  bool conventional = false;
  Addr conv_addr = 0;
  VersionEngine::Op op;
};

/// Lower one planned op into facade records — the single source of truth
/// for how a PlannedOp maps onto the versioned ISA, shared by every
/// backend (the timed machine, the functional backend, and the concurrent
/// engine used to carry three copies of this switch).
void lower_into(std::vector<LoweredItem>& out, const PlannedOp& op,
                TaskId tid, OAddr base, int slots) {
  const OAddr a = base + 8 * static_cast<OAddr>(op.slot);
  LoweredItem it;
  switch (op.kind) {
    case PlannedOp::kStore:
      it.op.op = OpCode::kStoreVersion;
      it.op.addr = a;
      it.op.version = tid;
      it.op.data = tid * 7 + op.slot;
      break;
    case PlannedOp::kLoad:
      it.op.op = OpCode::kLoadVersion;
      it.op.addr = a;
      it.op.version = op.ver;
      break;
    case PlannedOp::kLockRename: {
      it.op.op = OpCode::kLockLoadVersion;
      it.op.addr = a;
      it.op.version = op.ver;
      it.op.task = tid;
      out.push_back(it);
      it = LoweredItem{};
      it.op.op = OpCode::kUnlockVersion;
      it.op.addr = a;
      it.op.version = op.ver;
      it.op.task = tid;
      it.op.rename_to = tid;
      break;
    }
    case PlannedOp::kLoadLatestSetup:
      it.op.op = OpCode::kLoadLatest;
      it.op.addr = a;
      it.op.cap = kSetupVersion;
      break;
    case PlannedOp::kDupStore:
      it.op.op = OpCode::kStoreVersion;
      it.op.addr = a;
      it.op.version = tid;
      it.op.data = 1;
      break;
    case PlannedOp::kWrongOwnerUnlock:
    case PlannedOp::kUnlockNonexistent:
      it.op.op = OpCode::kUnlockVersion;
      it.op.addr = a;
      it.op.version = op.ver;
      it.op.task = tid;
      break;
    case PlannedOp::kBadVersionedAddr:
      it.op.op = OpCode::kLoadVersion;
      it.op.addr = base + 8 * static_cast<OAddr>(slots + 100);
      it.op.version = op.ver;
      break;
    case PlannedOp::kBadConventional:
      it.conventional = true;
      it.conv_addr = a;
      break;
  }
  out.push_back(it);
}

std::vector<LoweredItem> lower_task(const Stream& st, int i, TaskId tid,
                                    OAddr base) {
  std::vector<LoweredItem> prog;
  for (const PlannedOp& op : st.ops[static_cast<std::size_t>(i)]) {
    lower_into(prog, op, tid, base, st.slots);
  }
  return prog;
}

/// Run one task's lowered program on any engine: facade records go through
/// execute() in maximal batches; conventional probes flush the batch and
/// run between them so per-task fault order is preserved. Faults land as
/// kinds, exactly as the old per-op catch blocks recorded them.
void exec_program(VersionEngine& st, const std::vector<LoweredItem>& prog,
                  std::vector<std::uint64_t>& reads, std::vector<Ver>& found,
                  std::vector<int>& faults) {
  std::vector<VersionEngine::Op> batch;
  VersionEngine::Results res;
  auto flush = [&] {
    if (batch.empty()) return;
    res.clear();
    st.execute(batch, res);
    reads.insert(reads.end(), res.reads.begin(), res.reads.end());
    found.insert(found.end(), res.found.begin(), res.found.end());
    for (const VersionEngine::Results::Fault& f : res.faults) {
      faults.push_back(static_cast<int>(f.kind));
    }
    batch.clear();
  };
  for (const LoweredItem& it : prog) {
    if (it.conventional) {
      flush();
      try {
        st.check_conventional(it.conv_addr);
      } catch (const OFault& f) {
        faults.push_back(static_cast<int>(f.kind()));
      }
    } else {
      batch.push_back(it.op);
    }
  }
  flush();
}

/// Everything a backend run observes, flattened in task-creation order so
/// the comparison is schedule-independent.
struct Observed {
  std::vector<std::uint64_t> reads;
  std::vector<Ver> found;   // LOAD-LATEST observed versions, in op order
  std::vector<int> faults;  // FaultKind per caught fault
  std::vector<std::pair<std::optional<Ver>, std::optional<std::uint64_t>>>
      latest;  // per slot: newest version and its value
  bool check_clean = false;
  std::uint64_t check_errors = 0, check_warnings = 0;
  /// Blocks the run's collector gave back. NOT part of ==: the GcPolicy
  /// seam guarantees identical semantics, not identical reclaim timing.
  std::uint64_t blocks_freed = 0;

  bool operator==(const Observed& o) const {
    return reads == o.reads && found == o.found && faults == o.faults &&
           latest == o.latest &&
           check_clean == o.check_clean && check_errors == o.check_errors &&
           check_warnings == o.check_warnings;
  }
};

Observed run_stream(const Stream& st, BackendKind backend, int cores,
                    GcPolicyKind gc = GcPolicyKind::kPaper,
                    bool tight_pool = false) {
  MachineConfig cfg;
  cfg.num_cores = cores;
  cfg.backend = backend;
  cfg.ostruct.check_mode = 2;  // strict osim-check, online
  cfg.ostruct.gc_policy = gc;
  if (tight_pool) {
    // Starve the pool so whichever policy is installed must actually run
    // (watermark phases for paper, amortized sweeps for bounded).
    cfg.ostruct.initial_pool_blocks = 96;
    cfg.ostruct.trap_grow_blocks = 64;
    cfg.ostruct.gc_watermark = 48;
    cfg.ostruct.gc_bounded_batch = 16;
  }
  Env env(cfg);

  std::vector<std::vector<std::uint64_t>> reads(
      static_cast<std::size_t>(st.tasks));
  std::vector<std::vector<Ver>> found(static_cast<std::size_t>(st.tasks));
  std::vector<std::vector<int>> faults(static_cast<std::size_t>(st.tasks));

  OAddr base = 0;
  {
    TaskRuntime rt(env, cores);
    base = env.store().alloc(static_cast<std::size_t>(st.slots));
    rt.set_setup([&] {
      for (int s = 0; s < st.slots; ++s) {
        env.store().store_version(base + 8 * static_cast<OAddr>(s),
                                  kSetupVersion,
                                  5000 + static_cast<std::uint64_t>(s));
      }
    });
    for (int i = 0; i < st.tasks; ++i) {
      const TaskId tid = kFirstTaskId + static_cast<TaskId>(i);
      rt.create_task(tid, [&, i, tid](TaskId) {
        exec_program(env.engine(), lower_task(st, i, tid, base), reads[i],
                     found[i], faults[i]);
      });
    }
    rt.run();
  }

  Observed o;
  for (int i = 0; i < st.tasks; ++i) {
    o.reads.insert(o.reads.end(), reads[i].begin(), reads[i].end());
    o.found.insert(o.found.end(), found[i].begin(), found[i].end());
    o.faults.insert(o.faults.end(), faults[i].begin(), faults[i].end());
  }
  for (int s = 0; s < st.slots; ++s) {
    const OAddr a = base + 8 * static_cast<OAddr>(s);
    const std::optional<Ver> newest = env.store().newest_version(a);
    std::optional<std::uint64_t> val;
    if (newest.has_value()) val = env.store().peek_version(a, *newest);
    o.latest.emplace_back(newest, val);
  }
  env.checker()->finish();
  o.check_clean = env.checker()->clean();
  o.check_errors = env.checker()->error_count();
  o.check_warnings = env.checker()->warning_count();
  o.blocks_freed =
      env.metrics().total(telemetry::Component::kOsm, "blocks_freed");
  return o;
}

/// The same planned stream on the concurrent engine (--exec=concurrent's
/// machinery): ConcurrentVersionStore driven by a work-stealing pool of
/// real host threads, with the strict checker riding the store's tracer.
/// Streams are determinate under any legal schedule (see PlannedOp), so the
/// observation must match the timed backend's exactly.
Observed run_stream_concurrent(const Stream& st, int threads,
                               GcPolicyKind gc = GcPolicyKind::kPaper,
                               std::size_t reclaim_threshold = 0) {
  ConcurrencyConfig ccfg;
  // A blocked op may legally wait for a store by a much-later task on an
  // oversubscribed host; give real room before declaring deadlock.
  ccfg.deadlock_timeout_ms = 20000;
  ccfg.gc_policy = gc;
  if (reclaim_threshold != 0) ccfg.reclaim_threshold = reclaim_threshold;
  ConcurrentVersionStore store(ccfg);
  analysis::CheckerOptions copt;
  copt.strict = true;
  analysis::CheckerSink* checker =
      analysis::attach_checker(store, threads + 1, copt);

  const OAddr base = store.alloc(static_cast<std::size_t>(st.slots));
  for (int s = 0; s < st.slots; ++s) {
    store.store_version(base + 8 * static_cast<OAddr>(s), kSetupVersion,
                        5000 + static_cast<std::uint64_t>(s));
  }

  std::vector<std::vector<std::uint64_t>> reads(
      static_cast<std::size_t>(st.tasks));
  std::vector<std::vector<Ver>> found(static_cast<std::size_t>(st.tasks));
  std::vector<std::vector<int>> faults(static_cast<std::size_t>(st.tasks));

  ConcurrentTaskPool pool(store, threads);
  for (int i = 0; i < st.tasks; ++i) {
    const TaskId tid = kFirstTaskId + static_cast<TaskId>(i);
    pool.create_task(tid, [&, i, tid](TaskId) {
      exec_program(store, lower_task(st, i, tid, base), reads[i], found[i],
                   faults[i]);
    });
  }
  pool.run();

  Observed o;
  for (int i = 0; i < st.tasks; ++i) {
    o.reads.insert(o.reads.end(), reads[i].begin(), reads[i].end());
    o.found.insert(o.found.end(), found[i].begin(), found[i].end());
    o.faults.insert(o.faults.end(), faults[i].begin(), faults[i].end());
  }
  for (int s = 0; s < st.slots; ++s) {
    const OAddr a = base + 8 * static_cast<OAddr>(s);
    const std::optional<Ver> newest = store.newest_version(a);
    std::optional<std::uint64_t> val;
    if (newest.has_value()) val = store.peek_version(a, *newest);
    o.latest.emplace_back(newest, val);
  }
  checker->checker().finish();
  o.check_clean = checker->checker().clean();
  o.check_errors = checker->checker().error_count();
  o.check_warnings = checker->checker().warning_count();
  o.blocks_freed = store.stats().blocks_reclaimed;
  return o;
}

// A planned stream whose reads stay legal under ANY reclamation policy.
// Exact loads and lock ops may name versions the bounded policy has every
// right to reclaim mid-run (they read below their task's own cap), so the
// cross-policy streams split the slots into three classes:
//   * read-only  — never stored past setup; version kSetupVersion is never
//                  shadowed, so exact and capped reads of it are stable,
//   * archive    — exactly one store, by a designated early task; its
//                  version is the slot's head forever, hence unreclaimable,
//   * churn      — store-only traffic whose shadowed predecessors are the
//                  reclamation fodder that makes the differential real.
// Everything observable (reads, faults, final latest map, strict verdict)
// is schedule- and policy-independent; only reclaim timing may differ.
Stream make_policy_safe_stream(int readonly, int archive, int churn,
                               int tasks, std::uint64_t seed) {
  Stream st;
  st.slots = readonly + archive + churn;
  st.tasks = tasks;
  st.ops.resize(static_cast<std::size_t>(tasks));
  for (int i = 0; i < tasks; ++i) {
    const TaskId tid = kFirstTaskId + static_cast<TaskId>(i);
    auto& ops = st.ops[static_cast<std::size_t>(i)];
    bool stored = false;
    std::uint32_t stored_slot = 0;
    if (i < archive) {
      // The first `archive` tasks each publish their archive slot.
      stored_slot = static_cast<std::uint32_t>(readonly + i);
      ops.push_back({PlannedOp::kStore, stored_slot, tid});
      stored = true;
    } else if (splitmix(seed) % 10 < 7) {
      stored_slot = static_cast<std::uint32_t>(
          readonly + archive +
          static_cast<int>(splitmix(seed) %
                           static_cast<std::uint64_t>(churn)));
      ops.push_back({PlannedOp::kStore, stored_slot, tid});
      stored = true;
    }
    const std::uint64_t reads = splitmix(seed) % 3;
    for (std::uint64_t r = 0; r < reads; ++r) {
      if (splitmix(seed) % 2 == 0) {
        const auto s = static_cast<std::uint32_t>(
            splitmix(seed) % static_cast<std::uint64_t>(readonly));
        ops.push_back(splitmix(seed) % 2 == 0
                          ? PlannedOp{PlannedOp::kLoad, s, kSetupVersion}
                          : PlannedOp{PlannedOp::kLoadLatestSetup, s,
                                      kSetupVersion});
      } else if (i > 0) {
        // Exact read of an archive version whose one publisher is an
        // earlier task; the op blocks until it exists, so the value is
        // determined.
        const int visible = std::min(archive, i);
        const auto j = static_cast<std::uint32_t>(
            splitmix(seed) % static_cast<std::uint64_t>(visible));
        ops.push_back({PlannedOp::kLoad,
                       static_cast<std::uint32_t>(readonly) + j,
                       kFirstTaskId + j});
      }
    }
    if (splitmix(seed) % 7 == 0) {
      switch (splitmix(seed) % 3) {
        case 0:
          if (stored) {
            ops.push_back({PlannedOp::kDupStore, stored_slot, tid});
            break;
          }
          [[fallthrough]];
        case 1:
          ops.push_back({PlannedOp::kBadVersionedAddr, 0, kSetupVersion});
          break;
        default:
          ops.push_back(
              {PlannedOp::kBadConventional,
               static_cast<std::uint32_t>(
                   splitmix(seed) %
                   static_cast<std::uint64_t>(st.slots)),
               0});
      }
    }
  }
  return st;
}

TEST(BackendDiff, RandomStreamsAgreeAndCheckClean) {
  for (std::uint64_t seed : {11ull, 23ull, 47ull}) {
    const Stream st = make_stream(/*slots=*/24, /*tasks=*/400, seed,
                                  /*unlock_violations=*/false);
    const Observed timed = run_stream(st, BackendKind::kTimed, /*cores=*/4);
    const Observed func =
        run_stream(st, BackendKind::kFunctional, /*cores=*/4);
    EXPECT_FALSE(timed.reads.empty());
    EXPECT_FALSE(timed.faults.empty());
    EXPECT_TRUE(timed.check_clean) << "seed " << seed;
    EXPECT_TRUE(func.check_clean) << "seed " << seed;
    EXPECT_EQ(timed.reads, func.reads) << "seed " << seed;
    EXPECT_EQ(timed.found, func.found) << "seed " << seed;
    EXPECT_EQ(timed.faults, func.faults) << "seed " << seed;
    EXPECT_EQ(timed.latest, func.latest) << "seed " << seed;
  }
}

// Unlock protocol violations fault at the ISA level AND get reported by the
// strict checker; both backends must fault identically and the checker must
// reach the same (non-clean) verdict on each.
TEST(BackendDiff, UnlockViolationsFlaggedIdentically) {
  const Stream st = make_stream(/*slots=*/24, /*tasks=*/400, /*seed=*/31,
                                /*unlock_violations=*/true);
  const Observed timed = run_stream(st, BackendKind::kTimed, /*cores=*/4);
  const Observed func = run_stream(st, BackendKind::kFunctional, /*cores=*/4);
  EXPECT_FALSE(timed.check_clean);
  EXPECT_GT(timed.check_errors, 0u);
  EXPECT_EQ(timed.reads, func.reads);
  EXPECT_EQ(timed.faults, func.faults);
  EXPECT_EQ(timed.latest, func.latest);
  EXPECT_EQ(timed.check_errors, func.check_errors);
  EXPECT_EQ(timed.check_warnings, func.check_warnings);
}

TEST(BackendDiff, StreamsAgreeAcrossCoreCounts) {
  const Stream st = make_stream(/*slots=*/16, /*tasks=*/250, /*seed=*/5,
                                /*unlock_violations=*/false);
  const Observed func = run_stream(st, BackendKind::kFunctional, 1);
  for (int cores : {1, 3, 8}) {
    EXPECT_TRUE(run_stream(st, BackendKind::kTimed, cores) == func)
        << cores << " cores";
  }
}

// The concurrent engine on real host threads must observe exactly what the
// timed machine observes: every read value, every fault, the final
// latest-version map — and a clean strict checker verdict — regardless of
// thread count (streams are determinate under any legal schedule).
TEST(BackendDiff, ConcurrentEngineAgreesWithTimed) {
  for (std::uint64_t seed : {11ull, 47ull}) {
    const Stream st = make_stream(/*slots=*/24, /*tasks=*/400, seed,
                                  /*unlock_violations=*/false);
    const Observed timed = run_stream(st, BackendKind::kTimed, /*cores=*/4);
    for (int threads : {1, 4}) {
      const Observed conc = run_stream_concurrent(st, threads);
      EXPECT_TRUE(conc.check_clean)
          << "seed " << seed << ", " << threads << " threads";
      EXPECT_EQ(timed.reads, conc.reads)
          << "seed " << seed << ", " << threads << " threads";
      EXPECT_EQ(timed.found, conc.found)
          << "seed " << seed << ", " << threads << " threads";
      EXPECT_EQ(timed.faults, conc.faults)
          << "seed " << seed << ", " << threads << " threads";
      EXPECT_EQ(timed.latest, conc.latest)
          << "seed " << seed << ", " << threads << " threads";
    }
  }
}

// Protocol violations fault identically on the concurrent engine and are
// flagged by the checker with the same error count (each illegal unlock is
// caught at its ISA event, which is schedule-independent).
TEST(BackendDiff, ConcurrentEngineFlagsUnlockViolations) {
  const Stream st = make_stream(/*slots=*/24, /*tasks=*/400, /*seed=*/31,
                                /*unlock_violations=*/true);
  const Observed timed = run_stream(st, BackendKind::kTimed, /*cores=*/4);
  const Observed conc = run_stream_concurrent(st, /*threads=*/4);
  EXPECT_FALSE(conc.check_clean);
  EXPECT_EQ(timed.check_errors, conc.check_errors);
  EXPECT_EQ(timed.reads, conc.reads);
  EXPECT_EQ(timed.faults, conc.faults);
  EXPECT_EQ(timed.latest, conc.latest);
}

// Cross-policy differential (the GcPolicy seam): on policy-safe streams,
// paper and bounded reclamation must observe identical reads, faults,
// final latest maps, and strict checker verdicts on both serial backends —
// while the bounded runs demonstrably reclaim mid-run (the pool is starved
// so both collectors actually work).
TEST(BackendDiff, GcPoliciesObserveIdenticalStreams) {
  for (std::uint64_t seed : {13ull, 29ull}) {
    const Stream st = make_policy_safe_stream(/*readonly=*/6, /*archive=*/6,
                                              /*churn=*/12, /*tasks=*/400,
                                              seed);
    const Observed ref = run_stream(st, BackendKind::kTimed, /*cores=*/4,
                                    GcPolicyKind::kPaper, /*tight_pool=*/true);
    EXPECT_TRUE(ref.check_clean) << "seed " << seed;
    EXPECT_FALSE(ref.reads.empty());
    const Observed timed_bounded =
        run_stream(st, BackendKind::kTimed, /*cores=*/4,
                   GcPolicyKind::kBounded, /*tight_pool=*/true);
    const Observed func_paper =
        run_stream(st, BackendKind::kFunctional, /*cores=*/4,
                   GcPolicyKind::kPaper, /*tight_pool=*/true);
    const Observed func_bounded =
        run_stream(st, BackendKind::kFunctional, /*cores=*/4,
                   GcPolicyKind::kBounded, /*tight_pool=*/true);
    EXPECT_TRUE(timed_bounded == ref) << "timed bounded, seed " << seed;
    EXPECT_TRUE(func_paper == ref) << "functional paper, seed " << seed;
    EXPECT_TRUE(func_bounded == ref) << "functional bounded, seed " << seed;
    // The differential is only meaningful if the bounded collector really
    // ran; only reclaim *timing* may differ, never the observation above.
    EXPECT_GT(timed_bounded.blocks_freed, 0u) << "seed " << seed;
    EXPECT_GT(func_bounded.blocks_freed, 0u) << "seed " << seed;
  }
}

// Same differential on the truly concurrent engine: real threads, the
// bounded range rule deciding reclaims under the shard lock, and a strict
// checker riding the trace — all observations must match the timed
// machine's under either policy.
TEST(BackendDiff, ConcurrentEngineAgreesAcrossGcPolicies) {
  const Stream st = make_policy_safe_stream(/*readonly=*/6, /*archive=*/6,
                                            /*churn=*/12, /*tasks=*/400,
                                            /*seed=*/13);
  const Observed ref = run_stream(st, BackendKind::kTimed, /*cores=*/4,
                                  GcPolicyKind::kPaper, /*tight_pool=*/true);
  for (GcPolicyKind gc : {GcPolicyKind::kPaper, GcPolicyKind::kBounded}) {
    const Observed conc = run_stream_concurrent(st, /*threads=*/4, gc,
                                                /*reclaim_threshold=*/64);
    EXPECT_TRUE(conc.check_clean) << to_string(gc);
    EXPECT_TRUE(conc == ref) << to_string(gc);
  }
}

// An op no earlier task can ever satisfy is a deadlock on the timed
// backend; the functional backend reports it synchronously as kWouldBlock,
// and the report names the op and the blocked task.
TEST(BackendDiff, FunctionalWouldBlockFault) {
  MachineConfig cfg;
  cfg.num_cores = 2;
  cfg.backend = BackendKind::kFunctional;
  Env env(cfg);
  TaskRuntime rt(env, 2);
  const OAddr a = env.store().alloc(1);
  bool faulted = false;
  std::string message;
  rt.create_task(kFirstTaskId, [&](TaskId) {
    // Through the batched facade: the per-op fault is captured into
    // Results with the engine's full report text, so batch drivers see
    // the same diagnostics per-op callers get from OFault::what().
    VersionEngine::Op op;
    op.op = OpCode::kLoadVersion;
    op.addr = a;
    op.version = kGhostVersion;
    VersionEngine::Results res;
    env.engine().execute({&op, 1}, res);
    if (res.faults.size() == 1) {
      faulted = res.faults.front().kind == FaultKind::kWouldBlock;
      message = res.faults.front().message;
    }
  });
  rt.run();
  EXPECT_TRUE(faulted);
  EXPECT_NE(message.find("LOAD-VERSION"), std::string::npos) << message;
  EXPECT_NE(message.find("task " + std::to_string(kFirstTaskId)),
            std::string::npos)
      << message;
  EXPECT_NE(message.find(std::to_string(kGhostVersion)), std::string::npos)
      << message;
}

// The opgen-driven structure workloads must produce bit-identical
// checksums on both backends, with a clean strict check verdict.
TEST(BackendDiff, WorkloadChecksumsAgree) {
  DsSpec spec;
  spec.initial_size = 60;
  spec.ops = 600;
  spec.reads_per_write = 2;
  using Fn = RunResult (*)(Env&, const DsSpec&, int);
  const std::pair<const char*, Fn> workloads[] = {
      {"linked_list", linked_list_versioned},
      {"hash_table", hash_table_versioned},
      {"binary_tree", binary_tree_versioned},
      {"rb_tree", rb_tree_versioned},
  };
  for (const auto& [name, fn] : workloads) {
    std::uint64_t sums[2];
    for (BackendKind b : {BackendKind::kTimed, BackendKind::kFunctional}) {
      MachineConfig cfg;
      cfg.num_cores = 4;
      cfg.backend = b;
      cfg.ostruct.check_mode = 2;
      Env env(cfg);
      sums[b == BackendKind::kFunctional] = fn(env, spec, 4).checksum;
      env.checker()->finish();
      EXPECT_TRUE(env.checker()->clean())
          << name << " on " << to_string(b);
    }
    EXPECT_EQ(sums[0], sums[1]) << name;
  }
}

// An attached-but-inert injector (--inject none) must be invisible: every
// injection site is consulted but never fires, and the timed machine's
// cycles and checksums stay bit-identical to a run with no injector at
// all. This is the guard that lets production configs keep --inject wired
// without perturbing any published figure.
TEST(BackendDiff, InertInjectorIsBitIdentical) {
  DsSpec spec;
  spec.initial_size = 40;
  spec.ops = 400;
  spec.reads_per_write = 2;
  for (BackendKind b : {BackendKind::kTimed, BackendKind::kFunctional}) {
    RunResult r[2];
    int i = 0;
    for (const char* inject : {"", "none"}) {
      MachineConfig cfg;
      cfg.num_cores = 4;
      cfg.backend = b;
      cfg.ostruct.check_mode = 2;
      cfg.ostruct.inject_spec = inject;
      Env env(cfg);
      // "" leaves the seam detached; "none" attaches a real injector whose
      // plan never fires — the two runs must be indistinguishable.
      EXPECT_EQ(env.store().fault_injector() != nullptr, *inject != '\0');
      r[i] = linked_list_versioned(env, spec, 4);
      env.checker()->finish();
      EXPECT_TRUE(env.checker()->clean()) << to_string(b);
      ++i;
    }
    EXPECT_EQ(r[0].cycles, r[1].cycles) << to_string(b);
    EXPECT_EQ(r[0].checksum, r[1].checksum) << to_string(b);
  }
}

}  // namespace
}  // namespace osim
