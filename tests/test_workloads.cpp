// Workload tests. The central property comes straight from the paper
// (Sec. IV-D): "The output of such parallel execution is identical to a
// sequential execution." Every versioned workload must produce exactly the
// sequential baseline's checksum, at every core count.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <string>
#include <tuple>

#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/levenshtein.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"
#include "workloads/opgen.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

MachineConfig cfg(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  return c;
}

DsSpec small_spec(int reads_per_write = 4, int scan_range = 1) {
  DsSpec s;
  s.initial_size = 200;
  s.ops = 160;
  s.reads_per_write = reads_per_write;
  s.scan_range = scan_range;
  s.seed = 1234;
  return s;
}

// ---------------------------------------------------------------------------
// Op generator

TEST(OpGen, InitialKeysAreDistinctAndSized) {
  const DsSpec s = small_spec();
  const auto keys = initial_keys(s);
  EXPECT_EQ(keys.size(), s.initial_size);
  std::set<std::uint64_t> uniq(keys.begin(), keys.end());
  EXPECT_EQ(uniq.size(), keys.size());
  for (auto k : keys) {
    EXPECT_GE(k, 1u);
    EXPECT_LE(k, s.key_space());
  }
}

TEST(OpGen, RatioAndBalanceRespected) {
  DsSpec s = small_spec(4);
  s.ops = 1000;
  const auto ops = generate_ops(s);
  int reads = 0, inserts = 0, deletes = 0;
  for (const Op& op : ops) {
    switch (op.kind) {
      case OpKind::kLookup:
      case OpKind::kScan:
        ++reads;
        break;
      case OpKind::kInsert:
        ++inserts;
        break;
      case OpKind::kDelete:
        ++deletes;
        break;
    }
  }
  EXPECT_NEAR(static_cast<double>(reads) / (inserts + deletes), 4.0, 0.2);
  EXPECT_LE(std::abs(inserts - deletes), 1);
}

TEST(OpGen, ScanRangeSelectsScanKind) {
  const auto ops1 = generate_ops(small_spec(4, 1));
  const auto ops8 = generate_ops(small_spec(4, 8));
  EXPECT_TRUE(std::any_of(ops1.begin(), ops1.end(), [](const Op& o) {
    return o.kind == OpKind::kLookup;
  }));
  EXPECT_TRUE(std::any_of(ops8.begin(), ops8.end(), [](const Op& o) {
    return o.kind == OpKind::kScan;
  }));
}

TEST(OpGen, Deterministic) {
  const auto a = generate_ops(small_spec());
  const auto b = generate_ops(small_spec());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].key, b[i].key);
  }
}

// ---------------------------------------------------------------------------
// Parallel-versioned == sequential-unversioned, across core counts and op
// mixes, for every irregular data structure.

using SeqFn = RunResult (*)(Env&, const DsSpec&);
using ParFn = RunResult (*)(Env&, const DsSpec&, int);

struct WorkloadCase {
  const char* name;
  SeqFn seq;
  ParFn par;
};

class DsEquivalence
    : public ::testing::TestWithParam<std::tuple<WorkloadCase, int, int>> {};

TEST_P(DsEquivalence, ParallelVersionedMatchesSequential) {
  const auto& [wc, cores, rpw] = GetParam();
  const DsSpec spec = small_spec(rpw);
  Env seq_env(cfg(1));
  const RunResult seq = wc.seq(seq_env, spec);
  Env par_env(cfg(cores));
  const RunResult par = wc.par(par_env, spec, cores);
  EXPECT_EQ(par.checksum, seq.checksum) << wc.name << " cores=" << cores;
  EXPECT_GT(seq.cycles, 0u);
  EXPECT_GT(par.cycles, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Structures, DsEquivalence,
    ::testing::Combine(
        ::testing::Values(
            WorkloadCase{"linked_list", linked_list_sequential,
                         linked_list_versioned},
            WorkloadCase{"binary_tree", binary_tree_sequential,
                         binary_tree_versioned},
            WorkloadCase{"hash_table", hash_table_sequential,
                         hash_table_versioned},
            WorkloadCase{"rb_tree", rb_tree_sequential, rb_tree_versioned}),
        ::testing::Values(1, 2, 4, 8),   // cores
        ::testing::Values(4, 1)),        // reads per write
    [](const auto& info) {
      return std::string(std::get<0>(info.param).name) + "_c" +
             std::to_string(std::get<1>(info.param)) + "_r" +
             std::to_string(std::get<2>(info.param));
    });

TEST(Workloads, ScansMatchSequentialAcrossRanges) {
  for (int range : {8, 64}) {
    const DsSpec spec = small_spec(3, range);
    Env seq_env(cfg(1));
    const RunResult seq = binary_tree_sequential(seq_env, spec);
    Env par_env(cfg(4));
    const RunResult par = binary_tree_versioned(par_env, spec, 4);
    EXPECT_EQ(par.checksum, seq.checksum) << "range " << range;
  }
}

TEST(Workloads, RwlockTreeSameOpsComplete) {
  // The rwlock baseline is not sequentially ordered, but read-only ops on a
  // read-only op stream must still match (no writers => same snapshots).
  DsSpec spec = small_spec(4);
  spec.ops = 100;
  spec.reads_per_write = 1 << 20;  // effectively read-only
  Env seq_env(cfg(1));
  const RunResult seq = binary_tree_sequential(seq_env, spec);
  Env par_env(cfg(4));
  const RunResult par = binary_tree_rwlock(par_env, spec, 4);
  EXPECT_EQ(par.checksum, seq.checksum);
}

TEST(Workloads, RwlockTreeMixedRunsToCompletion) {
  const DsSpec spec = small_spec(3, 8);
  Env env(cfg(8));
  const RunResult r = binary_tree_rwlock(env, spec, 8);
  EXPECT_GT(r.cycles, 0u);
}

// ---------------------------------------------------------------------------
// Regular workloads

TEST(Workloads, MatmulVersionedMatchesSequential) {
  MatmulSpec spec;
  spec.n = 20;
  Env seq_env(cfg(1));
  const RunResult seq = matmul_sequential(seq_env, spec);
  for (int cores : {1, 4, 8}) {
    Env par_env(cfg(cores));
    const RunResult par = matmul_versioned(par_env, spec, cores);
    EXPECT_EQ(par.checksum, seq.checksum) << cores;
  }
}

TEST(Workloads, MatmulParallelFasterThanSingleCoreVersioned) {
  MatmulSpec spec;
  spec.n = 24;
  Env e1(cfg(1));
  const Cycles c1 = matmul_versioned(e1, spec, 1).cycles;
  Env e8(cfg(8));
  const Cycles c8 = matmul_versioned(e8, spec, 8).cycles;
  EXPECT_LT(c8, c1);
  EXPECT_GT(static_cast<double>(c1) / c8, 3.0);  // near-linear workload
}

TEST(Workloads, LevenshteinVersionedMatchesSequential) {
  LevSpec spec;
  spec.n = 48;
  Env seq_env(cfg(1));
  const RunResult seq = levenshtein_sequential(seq_env, spec);
  for (int cores : {1, 4}) {
    Env par_env(cfg(cores));
    const RunResult par = levenshtein_versioned(par_env, spec, cores);
    EXPECT_EQ(par.checksum, seq.checksum) << cores;
  }
}

TEST(Workloads, LevenshteinKnownAnswer) {
  // Identical strings => distance 0 at every size; checks the DP itself.
  LevSpec spec;
  spec.n = 16;
  spec.seed = 5;
  Env env(cfg(2));
  const RunResult a = levenshtein_versioned(env, spec, 2);
  Env env2(cfg(1));
  const RunResult b = levenshtein_sequential(env2, spec);
  EXPECT_EQ(a.checksum, b.checksum);
}

// ---------------------------------------------------------------------------
// Red-black tree structural invariants

class RbInvariants : public ::testing::TestWithParam<unsigned> {};

TEST_P(RbInvariants, HoldAfterRandomInsertions) {
  std::mt19937_64 rng(GetParam());
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 500; ++i) keys.push_back(rng() % 10000 + 1);
  Env env(cfg(1));
  EXPECT_TRUE(rb_invariants_hold(env, keys));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RbInvariants,
                         ::testing::Values(1u, 7u, 42u, 1000u));

TEST(RbInvariants, SequentialAscendingInsertions) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 1; i <= 300; ++i) keys.push_back(i);
  Env env(cfg(1));
  EXPECT_TRUE(rb_invariants_hold(env, keys));
}

// ---------------------------------------------------------------------------
// Determinism of timing (not just results)

TEST(Workloads, CyclesAreReproducible) {
  const DsSpec spec = small_spec();
  Env a(cfg(4));
  Env b(cfg(4));
  const RunResult ra = binary_tree_versioned(a, spec, 4);
  const RunResult rb = binary_tree_versioned(b, spec, 4);
  EXPECT_EQ(ra.cycles, rb.cycles);
  EXPECT_EQ(ra.checksum, rb.checksum);
}

}  // namespace
}  // namespace osim
