// Unit tests for the memory hierarchy and coherence directory.
#include "sim/memory_system.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "sim/address_map.hpp"
#include "sim/stats.hpp"

namespace osim {
namespace {

MachineConfig cfg(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  return c;
}

struct Fixture {
  explicit Fixture(int cores) : c(cfg(cores)), reg(cores), ms(c, reg) {}
  /// Legacy aggregate view, rebuilt from the registry on each call.
  MachineStats stats() const { return stats_snapshot(reg); }
  MachineConfig c;
  telemetry::MetricRegistry reg;
  MemorySystem ms;
};

TEST(MemorySystem, ColdMissGoesToDram) {
  Fixture f(1);
  const Cycles lat = f.ms.access(0, 0x1000, AccessType::kRead);
  // probe + L2 miss + DRAM
  EXPECT_EQ(lat, f.c.l1.hit_latency + f.c.l2_hit_latency + f.c.dram_latency);
  EXPECT_EQ(f.stats().core[0].l1_misses, 1u);
  EXPECT_EQ(f.stats().core[0].l2_misses, 1u);
}

TEST(MemorySystem, SecondAccessHitsL1) {
  Fixture f(1);
  f.ms.access(0, 0x1000, AccessType::kRead);
  const Cycles lat = f.ms.access(0, 0x1008, AccessType::kRead);  // same line
  EXPECT_EQ(lat, f.c.l1.hit_latency);
  EXPECT_EQ(f.stats().core[0].l1_hits, 1u);
}

TEST(MemorySystem, L1EvictionStillHitsL2) {
  Fixture f(1);
  // L1 is 32 KB / 8-way / 64 sets. Walk 2x L1 capacity, then re-touch the
  // first line: it must be gone from L1 but present in the (much larger) L2.
  const std::size_t lines = 2 * f.c.l1.size_bytes / kLineBytes;
  for (std::size_t i = 0; i < lines; ++i) {
    f.ms.access(0, static_cast<Addr>(i) * kLineBytes, AccessType::kRead);
  }
  EXPECT_FALSE(f.ms.line_in_l1(0, 0x0));
  const Cycles lat = f.ms.access(0, 0x0, AccessType::kRead);
  EXPECT_EQ(lat, f.c.l1.hit_latency + f.c.l2_hit_latency);
  EXPECT_GE(f.stats().core[0].l2_hits, 1u);
}

TEST(MemorySystem, ReadSharingAcrossCores) {
  Fixture f(2);
  f.ms.access(0, 0x2000, AccessType::kRead);
  f.ms.access(1, 0x2000, AccessType::kRead);  // L2 hit, both now share
  EXPECT_TRUE(f.ms.line_in_l1(0, 0x2000));
  EXPECT_TRUE(f.ms.line_in_l1(1, 0x2000));
}

TEST(MemorySystem, WriteInvalidatesOtherSharers) {
  Fixture f(2);
  f.ms.access(0, 0x2000, AccessType::kRead);
  f.ms.access(1, 0x2000, AccessType::kRead);
  const Cycles lat = f.ms.access(0, 0x2000, AccessType::kWrite);  // upgrade
  EXPECT_EQ(lat, f.c.l1.hit_latency + f.c.invalidate_latency);
  EXPECT_TRUE(f.ms.line_in_l1(0, 0x2000));
  EXPECT_FALSE(f.ms.line_in_l1(1, 0x2000));
  EXPECT_EQ(f.stats().core[0].upgrades, 1u);
}

TEST(MemorySystem, RemoteDirtyLineForwarded) {
  Fixture f(2);
  f.ms.access(0, 0x3000, AccessType::kWrite);  // core 0 owns modified
  const Cycles lat = f.ms.access(1, 0x3000, AccessType::kRead);
  EXPECT_EQ(lat, f.c.l1.hit_latency + f.c.remote_l1_latency);
  EXPECT_EQ(f.stats().core[1].remote_l1_fills, 1u);
  // Both have it shared now; a write by core 1 upgrades and invalidates 0.
  f.ms.access(1, 0x3000, AccessType::kWrite);
  EXPECT_FALSE(f.ms.line_in_l1(0, 0x3000));
}

TEST(MemorySystem, WriteMissInvalidatesRemoteOwner) {
  Fixture f(2);
  f.ms.access(0, 0x3000, AccessType::kWrite);
  f.ms.access(1, 0x3000, AccessType::kWrite);
  EXPECT_FALSE(f.ms.line_in_l1(0, 0x3000));
  EXPECT_TRUE(f.ms.line_in_l1(1, 0x3000));
}

TEST(MemorySystem, NoFillLeavesL1Untouched) {
  Fixture f(1);
  AccessOptions nofill;
  nofill.fill_l1 = false;
  f.ms.access(0, 0x4000, AccessType::kRead, nofill);
  EXPECT_FALSE(f.ms.line_in_l1(0, 0x4000));
  // But it did land in L2: next (filling) access is an L2 hit.
  const Cycles lat = f.ms.access(0, 0x4000, AccessType::kRead);
  EXPECT_EQ(lat, f.c.l1.hit_latency + f.c.l2_hit_latency);
}

TEST(MemorySystem, NoFillWriteGoesToL2) {
  // A versioned-block write under compression keeps the uncompressed line
  // out of L1 but must land in L2.
  Fixture f(1);
  AccessOptions nofill;
  nofill.fill_l1 = false;
  f.ms.access(0, 0x4100, AccessType::kWrite, nofill);
  EXPECT_FALSE(f.ms.line_in_l1(0, 0x4100));
  const Cycles lat = f.ms.access(0, 0x4100, AccessType::kRead);
  EXPECT_EQ(lat, f.c.l1.hit_latency + f.c.l2_hit_latency);  // L2 hit
}

TEST(MemorySystem, InstallLineMaterializesWithoutFetch) {
  Fixture f(2);
  f.ms.install_line(0, 0x5100, /*dirty=*/true);
  EXPECT_TRUE(f.ms.line_in_l1(0, 0x5100));
  // Core 1 reading it sees a remote dirty line (forwarded).
  const Cycles lat = f.ms.access(1, 0x5100, AccessType::kRead);
  EXPECT_EQ(lat, f.c.l1.hit_latency + f.c.remote_l1_latency);
}

TEST(MemorySystem, InvalidateOthersDropsRemoteCopies) {
  Fixture f(3);
  f.ms.access(0, 0x5000, AccessType::kRead);
  f.ms.access(1, 0x5000, AccessType::kRead);
  f.ms.access(2, 0x5000, AccessType::kRead);
  const Cycles lat = f.ms.invalidate_others(0, 0x5000);
  EXPECT_EQ(lat, f.c.invalidate_latency);
  EXPECT_TRUE(f.ms.line_in_l1(0, 0x5000));
  EXPECT_FALSE(f.ms.line_in_l1(1, 0x5000));
  EXPECT_FALSE(f.ms.line_in_l1(2, 0x5000));
  // No copies elsewhere: second call is free.
  EXPECT_EQ(f.ms.invalidate_others(0, 0x5000), 0u);
}

TEST(MemorySystem, DropObserverFiresOnInvalidation) {
  Fixture f(2);
  std::vector<std::pair<CoreId, Addr>> drops;
  f.ms.set_line_drop_observer(
      [&](CoreId c, Addr l) { drops.emplace_back(c, l); });
  f.ms.access(0, 0x6000, AccessType::kRead);
  f.ms.access(1, 0x6000, AccessType::kWrite);  // invalidates core 0
  ASSERT_EQ(drops.size(), 1u);
  EXPECT_EQ(drops[0].first, 0);
  EXPECT_EQ(drops[0].second, line_of(Addr{0x6000}));
}

TEST(MemorySystem, DropObserverFiresOnEviction) {
  Fixture f(1);
  int drops = 0;
  f.ms.set_line_drop_observer([&](CoreId, Addr) { ++drops; });
  const std::size_t lines = 2 * f.c.l1.size_bytes / kLineBytes;
  for (std::size_t i = 0; i < lines; ++i) {
    f.ms.access(0, static_cast<Addr>(i) * kLineBytes, AccessType::kRead);
  }
  EXPECT_GT(drops, 0);
}

TEST(MemorySystem, FlushAllEmptiesHierarchy) {
  Fixture f(2);
  f.ms.access(0, 0x7000, AccessType::kWrite);
  f.ms.flush_all();
  EXPECT_FALSE(f.ms.line_in_l1(0, 0x7000));
  const Cycles lat = f.ms.access(0, 0x7000, AccessType::kRead);
  EXPECT_EQ(lat, f.c.l1.hit_latency + f.c.l2_hit_latency + f.c.dram_latency);
}

TEST(MemorySystem, SyntheticRegionsDoNotAliasHostHeap) {
  // Version-block and root-table addresses sit above the 47-bit user VA
  // ceiling, so they can never collide with host pointers used as addresses.
  int on_heap = 0;
  const auto host = reinterpret_cast<Addr>(&on_heap);
  EXPECT_LT(host, kVersionBlockBase);
  EXPECT_LT(host, kRootTableBase);
  EXPECT_NE(line_of(version_block_addr(0)), line_of(root_addr(0)));
}

}  // namespace
}  // namespace osim
