// Integration tests for the O-structure manager: the versioned ISA semantics
// of Sec. II-A, protection, caching behaviour, and GC, all running on the
// simulated machine.
#include "core/ostructure_manager.hpp"

#include <gtest/gtest.h>

#include <map>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "core/fault.hpp"

namespace osim {
namespace {

MachineConfig cfg(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  return c;
}

/// Run `body(manager)` on core 0 of a fresh machine and return elapsed time.
template <typename Fn>
Cycles run1(Fn&& body, MachineConfig c = cfg(1)) {
  Machine m(c);
  OStructureManager osm(m);
  m.spawn(0, [&] { body(osm); });
  m.run();
  return m.elapsed();
}

TEST(OStructure, StoreThenLoadVersion) {
  run1([](OStructureManager& o) {
    const OAddr a = o.alloc();
    o.store_version(a, 1, 42);
    EXPECT_EQ(o.load_version(a, 1), 42u);
  });
}

TEST(OStructure, MultipleVersionsAllLoadable) {
  run1([](OStructureManager& o) {
    const OAddr a = o.alloc();
    for (Ver v = 1; v <= 5; ++v) o.store_version(a, v, v * 100);
    // "All created versions are available simultaneously for loading."
    for (Ver v = 1; v <= 5; ++v) EXPECT_EQ(o.load_version(a, v), v * 100);
    EXPECT_EQ(o.version_count(a), 5);
  });
}

TEST(OStructure, LoadLatestRoundsDown) {
  run1([](OStructureManager& o) {
    const OAddr a = o.alloc();
    o.store_version(a, 2, 20);
    o.store_version(a, 5, 50);
    Ver got = 0;
    EXPECT_EQ(o.load_latest(a, 2, &got), 20u);
    EXPECT_EQ(got, 2u);
    EXPECT_EQ(o.load_latest(a, 4, &got), 20u);
    EXPECT_EQ(got, 2u);
    EXPECT_EQ(o.load_latest(a, 5, &got), 50u);
    EXPECT_EQ(got, 5u);
    EXPECT_EQ(o.load_latest(a, 999, &got), 50u);
  });
}

TEST(OStructure, OutOfOrderVersionCreation) {
  // "Version 2 may be stored to and loaded from before version 1."
  run1([](OStructureManager& o) {
    const OAddr a = o.alloc();
    o.store_version(a, 2, 22);
    EXPECT_EQ(o.load_version(a, 2), 22u);
    o.store_version(a, 1, 11);
    EXPECT_EQ(o.load_version(a, 1), 11u);
    EXPECT_EQ(o.load_version(a, 2), 22u);
    EXPECT_EQ(o.version_count(a), 2);
  });
}

TEST(OStructure, LoadOfUncreatedVersionBlocksUntilStore) {
  Machine m(cfg(2));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  std::uint64_t got = 0;
  Cycles load_done = 0;
  m.spawn(0, [&] {
    got = o.load_version(a, 1);  // blocks: version 1 does not exist yet
    load_done = mach().now();
  });
  m.spawn(1, [&] {
    mach().advance(5000);
    o.store_version(a, 1, 77);
  });
  m.run();
  EXPECT_EQ(got, 77u);
  EXPECT_GT(load_done, 5000u);
  EXPECT_EQ(m.stats().core[0].stalls, 1u);
}

TEST(OStructure, LoadLatestBlocksWhenNothingBelowCap) {
  Machine m(cfg(2));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  std::uint64_t got = 0;
  m.spawn(0, [&] {
    o.store_version(a, 10, 1000);  // version above the cap: does not help
    got = o.load_latest(a, 5);
  });
  m.spawn(1, [&] {
    mach().advance(3000);
    o.store_version(a, 3, 333);
  });
  m.run();
  EXPECT_EQ(got, 333u);
}

TEST(OStructure, DoubleStoreFaults) {
  Machine m(cfg(1));
  OStructureManager o(m);
  m.spawn(0, [&] {
    const OAddr a = o.alloc();
    o.store_version(a, 1, 10);
    o.store_version(a, 1, 20);
  });
  try {
    m.run();
    FAIL() << "expected SimError";
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("version already exists"),
              std::string::npos);
  }
}

TEST(OStructure, LockLoadVersionExcludesSecondLocker) {
  Machine m(cfg(2));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  Cycles locker2_done = 0;
  m.spawn(0, [&] {
    o.store_version(a, 1, 5);
    EXPECT_EQ(o.lock_load_version(a, 1, /*locker=*/100), 5u);
    mach().advance(10000);
    o.unlock_version(a, 1, 100);
  });
  m.spawn(1, [&] {
    mach().advance(2000);  // let core 0 win the lock
    EXPECT_EQ(o.lock_load_version(a, 1, /*locker=*/200), 5u);
    locker2_done = mach().now();
    o.unlock_version(a, 1, 200);
  });
  m.run();
  EXPECT_GT(locker2_done, 10000u);  // waited for core 0's unlock
  EXPECT_EQ(m.stats().core[1].stalls, 1u);
}

TEST(OStructure, LoadVersionIgnoresLocksOnOtherVersions) {
  run1([](OStructureManager& o) {
    const OAddr a = o.alloc();
    o.store_version(a, 1, 10);
    o.store_version(a, 2, 20);
    o.lock_load_version(a, 2, 99);
    // Version 2 is locked, but version 1 must be readable immediately.
    EXPECT_EQ(o.load_version(a, 1), 10u);
    o.unlock_version(a, 2, 99);
  });
}

TEST(OStructure, LoadVersionOfLockedVersionBlocks) {
  Machine m(cfg(2));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  Cycles read_done = 0;
  m.spawn(0, [&] {
    o.store_version(a, 1, 10);
    o.lock_load_version(a, 1, 7);
    mach().advance(8000);
    o.unlock_version(a, 1, 7);
  });
  m.spawn(1, [&] {
    mach().advance(1000);
    EXPECT_EQ(o.load_version(a, 1), 10u);
    read_done = mach().now();
  });
  m.run();
  EXPECT_GT(read_done, 8000u);
}

TEST(OStructure, LoadLatestBlocksOnLockedCandidate) {
  Machine m(cfg(2));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  Ver got_ver = 0;
  m.spawn(0, [&] {
    o.store_version(a, 3, 30);
    o.lock_load_version(a, 3, 50);
    mach().advance(5000);
    // Renaming unlock: version 4 appears with the same value.
    o.unlock_version(a, 3, 50, /*rename_to=*/Ver{4});
  });
  m.spawn(1, [&] {
    mach().advance(1000);
    EXPECT_EQ(o.load_latest(a, 10, &got_ver), 30u);
  });
  m.run();
  // The reader unblocked on the rename and saw version 4 (highest <= 10).
  EXPECT_EQ(got_ver, 4u);
}

TEST(OStructure, UnlockRenameCopiesValueAndUnlocksBoth) {
  run1([](OStructureManager& o) {
    const OAddr a = o.alloc();
    o.store_version(a, 1, 123);
    EXPECT_EQ(o.lock_load_version(a, 1, 9), 123u);
    o.unlock_version(a, 1, 9, Ver{2});
    EXPECT_EQ(o.load_version(a, 1), 123u);  // unlocked again
    EXPECT_EQ(o.load_version(a, 2), 123u);  // renamed copy, unlocked
    EXPECT_FALSE(o.lock_holder(a, 1).has_value());
    EXPECT_FALSE(o.lock_holder(a, 2).has_value());
  });
}

TEST(OStructure, LockLoadLatestLocksWhatItRead) {
  run1([](OStructureManager& o) {
    const OAddr a = o.alloc();
    o.store_version(a, 2, 20);
    o.store_version(a, 7, 70);
    Ver got = 0;
    EXPECT_EQ(o.lock_load_latest(a, 5, /*locker=*/33, &got), 20u);
    EXPECT_EQ(got, 2u);
    EXPECT_EQ(o.lock_holder(a, 2), std::optional<TaskId>(33));
    EXPECT_FALSE(o.lock_holder(a, 7).has_value());
    o.unlock_version(a, 2, 33);
  });
}

TEST(OStructure, UnlockByNonOwnerFaults) {
  Machine m(cfg(1));
  OStructureManager o(m);
  m.spawn(0, [&] {
    const OAddr a = o.alloc();
    o.store_version(a, 1, 1);
    o.lock_load_version(a, 1, 5);
    o.unlock_version(a, 1, 6);  // wrong owner
  });
  EXPECT_THROW(m.run(), SimError);
}

TEST(OStructure, UnlockOfUnlockedVersionFaults) {
  Machine m(cfg(1));
  OStructureManager o(m);
  m.spawn(0, [&] {
    const OAddr a = o.alloc();
    o.store_version(a, 1, 1);
    o.unlock_version(a, 1, 5);
  });
  EXPECT_THROW(m.run(), SimError);
}

TEST(OStructure, RenameOntoExistingVersionFaults) {
  Machine m(cfg(1));
  OStructureManager o(m);
  m.spawn(0, [&] {
    const OAddr a = o.alloc();
    o.store_version(a, 1, 1);
    o.store_version(a, 2, 2);
    o.lock_load_version(a, 1, 5);
    o.unlock_version(a, 1, 5, Ver{2});
  });
  try {
    m.run();
    FAIL();
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("rename target"), std::string::npos);
  }
}

TEST(OStructure, VersionedAccessToUnversionedAddressFaults) {
  Machine m(cfg(1));
  OStructureManager o(m);
  m.spawn(0, [&] { o.load_version(0x1234, 1); });
  EXPECT_THROW(m.run(), SimError);
}

TEST(OStructure, ConventionalAccessToVersionedPageFaults) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  EXPECT_THROW(o.check_conventional(a), OFault);
  o.check_conventional(0x1234);  // conventional address: fine
}

TEST(OStructure, ReleaseConvertsBackToConventional) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc(4);
  m.spawn(0, [&] {
    o.store_version(a, 1, 10);
    o.store_version(a + 8, 1, 20);
  });
  m.run();
  EXPECT_EQ(m.stats().blocks_allocated, 2u);
  o.release(a, 4);
  EXPECT_EQ(m.stats().blocks_freed, 2u);
  EXPECT_FALSE(o.is_versioned_addr(a));
  o.check_conventional(a);  // no fault once released
  // Slots are recycled for the next same-size allocation.
  EXPECT_EQ(o.alloc(4), a);
}

TEST(OStructure, RepeatedLoadsHitCompressedLine) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    // Compression engages once a slot holds more than one version (a
    // single-version slot is denser as a plain block line).
    o.store_version(a, 1, 10);
    o.store_version(a, 2, 20);
    for (int i = 0; i < 10; ++i) EXPECT_EQ(o.load_version(a, 1), 10u);
  });
  m.run();
  const CoreStats cs = m.stats().core[0];
  // The first load walks and installs the entry; the rest hit directly.
  EXPECT_GE(cs.direct_hits, 9u);
  EXPECT_LE(cs.full_lookups, 1u);
  EXPECT_GT(m.stats().compressed_installs, 0u);
}

TEST(OStructure, SingleVersionSlotStaysUncompressed) {
  // A slot with one version relies on the plain block line in L1 — the
  // repeat loads are L1 hits on it, not compressed-line direct accesses.
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    o.store_version(a, 1, 10);
    const Cycles before = mach().now();
    o.load_version(a, 1);  // may miss (walk)
    const Cycles first = mach().now() - before;
    const Cycles again = mach().now();
    o.load_version(a, 1);  // block line now resident: single L1 hit
    EXPECT_EQ(mach().now() - again, m.config().l1.hit_latency);
    EXPECT_GE(first, m.config().l1.hit_latency);
  });
  m.run();
  EXPECT_EQ(m.stats().compressed_installs, 0u);
}

TEST(OStructure, LoadLatestDirectHitsViaAdjacency) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    for (Ver v = 1; v <= 3; ++v) o.store_version(a, v, v);
    // First LOAD-LATEST(2) does a full lookup and caches version 2 with
    // adjacency (newer = 3); the repeats are direct hits.
    for (int i = 0; i < 5; ++i) EXPECT_EQ(o.load_latest(a, 2), 2u);
  });
  m.run();
  const CoreStats cs = m.stats().core[0];
  EXPECT_GE(cs.direct_hits, 4u);
}

TEST(OStructure, RemoteStoreDiscardsCompressedLine) {
  Machine m(cfg(2));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    o.store_version(a, 1, 10);
    o.store_version(a, 2, 20);  // slot is multi-version: compression engages
    o.load_version(a, 1);
    mach().advance(10000);  // meanwhile core 1 stores version 3
    o.load_version(a, 1);   // compressed line was discarded by coherence
  });
  m.spawn(1, [&] {
    mach().advance(5000);
    o.store_version(a, 3, 30);
  });
  m.run();
  EXPECT_GT(m.stats().compressed_discards, 0u);
}

TEST(OStructure, WalkChargesScaleWithListLength) {
  // Loading an old version from a long list walks many blocks; stats and
  // elapsed time must reflect it.
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    for (Ver v = 1; v <= 64; ++v) o.store_version(a, v, v);
    EXPECT_EQ(o.load_version(a, 1), 1u);  // full walk of 64 blocks
  });
  m.run();
  EXPECT_GE(m.stats().core[0].walk_blocks, 64u);
}

TEST(OStructure, GcReclaimsShadowedVersionsEndToEnd) {
  MachineConfig c = cfg(1);
  c.ostruct.initial_pool_blocks = 64;
  c.ostruct.gc_watermark = 32;
  Machine m(c);
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    // Tasks 1..100 each store a new version; shadowed versions pile up and
    // the watermark forces collection phases. The pool never needs to grow.
    for (TaskId t = 1; t <= 100; ++t) {
      o.task_begin(t);
      o.store_version(a, t, t);
      o.task_end(t);
    }
  });
  m.run();
  EXPECT_GT(m.stats().gc_phases, 0u);
  EXPECT_GT(m.stats().blocks_freed, 0u);
  EXPECT_EQ(m.stats().os_traps, 0u);
  EXPECT_EQ(o.pool().size(), 64u);  // watermarked GC avoided any growth
}

TEST(OStructure, ExhaustionWithoutGcTrapsToOs) {
  MachineConfig c = cfg(1);
  c.ostruct.initial_pool_blocks = 16;
  c.ostruct.gc_watermark = 0;       // never trigger early
  c.ostruct.trap_grow_blocks = 16;
  Machine m(c);
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    // No task ever ends, so nothing is reclaimable: the pool must grow.
    o.task_begin(1);
    for (Ver v = 1; v <= 40; ++v) o.store_version(a, v, v);
    o.task_end(1);
  });
  m.run();
  EXPECT_GT(m.stats().os_traps, 0u);
  EXPECT_GT(o.pool().size(), 16u);
}

TEST(OStructure, GcDoesNotReclaimReachableVersions) {
  MachineConfig c = cfg(1);
  c.ostruct.initial_pool_blocks = 64;
  c.ostruct.gc_watermark = 60;  // collect aggressively
  Machine m(c);
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    o.task_begin(1);
    o.store_version(a, 1, 111);
    // Task 2 shadows version 1, but task 1 is still active: version 1 must
    // survive any number of collection phases.
    o.task_begin(2);
    o.store_version(a, 2, 222);
    for (int i = 0; i < 20; ++i) o.gc().maybe_collect();
    EXPECT_EQ(o.load_version(a, 1), 111u);
    o.task_end(1);
    o.task_end(2);
  });
  m.run();
}

TEST(OStructure, InjectedLatencySlowsVersionedOps) {
  auto timed = [](Cycles inject) {
    MachineConfig c = cfg(1);
    c.ostruct.injected_latency = inject;
    return run1(
        [](OStructureManager& o) {
          const OAddr a = o.alloc();
          o.store_version(a, 1, 1);
          for (int i = 0; i < 100; ++i) o.load_version(a, 1);
        },
        c);
  };
  const Cycles base = timed(0);
  const Cycles slow = timed(10);
  // 101 versioned ops, 10 extra cycles each.
  EXPECT_EQ(slow - base, 101u * 10);
}

TEST(OStructure, RootFlagFeedsRootStallStats) {
  Machine m(cfg(2));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  OpFlags root;
  root.root = true;
  m.spawn(0, [&] {
    o.load_version(a, 1, root);  // stalls until core 1 stores
  });
  m.spawn(1, [&] {
    mach().advance(1000);
    o.store_version(a, 1, 42);
  });
  m.run();
  EXPECT_EQ(m.stats().core[0].root_loads, 1u);
  EXPECT_EQ(m.stats().core[0].root_stalls, 1u);
}

TEST(OStructure, DeadlockOnNeverStoredVersionReported) {
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] { o.load_version(a, 1); });
  try {
    m.run();
    FAIL();
  } catch (const SimError& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(OStructure, RepeatedLockUnlockHitsCompressedLine) {
  // Lock operations apply their semantic effect before timing; the
  // compressed-line probe must still recognize the pre-lock entry, so
  // steady lock/unlock cycles on a hot multi-version slot go direct.
  Machine m(cfg(1));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    o.store_version(a, 1, 10);
    o.store_version(a, 2, 20);
    o.lock_load_version(a, 1, 9);  // installs the entry on the way
    o.unlock_version(a, 1, 9);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(o.lock_load_version(a, 1, 9), 10u);
      o.unlock_version(a, 1, 9);
    }
  });
  m.run();
  EXPECT_GE(m.stats().core[0].direct_hits, 8u);
}

TEST(OStructure, ConcurrentAllocationAndStoresAreSafe) {
  // Regression: store_version charges memory accesses (yielding to other
  // cores) while holding internal references; a concurrent alloc() used to
  // reallocate the slot table under it. Hammer allocation from one core
  // while another core stores.
  Machine m(cfg(2));
  OStructureManager o(m);
  const OAddr hot = o.alloc();
  m.spawn(0, [&] {
    for (Ver v = 1; v <= 300; ++v) o.store_version(hot, v, v);
  });
  m.spawn(1, [&] {
    for (int i = 0; i < 300; ++i) {
      const OAddr a = o.alloc(3);  // grows the slot table repeatedly
      o.store_version(a, 1, i);
      EXPECT_EQ(o.load_version(a, 1), static_cast<std::uint64_t>(i));
      mach().exec(1);
    }
  });
  m.run();
  // The hot slot has all 300 versions intact.
  EXPECT_EQ(o.version_count(hot), 300);
}

// ---------------------------------------------------------------------------
// Property test: the manager agrees with a reference multi-version map under
// randomized single-core op sequences.

class OStructureGolden : public ::testing::TestWithParam<unsigned> {};

TEST_P(OStructureGolden, MatchesReferenceModel) {
  std::mt19937 rng(GetParam());
  Machine m(cfg(1));
  OStructureManager o(m);
  constexpr int kSlots = 8;
  const OAddr base = o.alloc(kSlots);

  // Reference: per slot, a map version -> value.
  std::vector<std::map<Ver, std::uint64_t>> ref(kSlots);

  m.spawn(0, [&] {
    std::uniform_int_distribution<int> slot_dist(0, kSlots - 1);
    std::uniform_int_distribution<Ver> ver_dist(1, 40);
    for (int step = 0; step < 2000; ++step) {
      const int s = slot_dist(rng);
      const OAddr a = base + 8 * static_cast<OAddr>(s);
      const Ver v = ver_dist(rng);
      switch (rng() % 4) {
        case 0: {  // store a fresh version
          if (ref[s].count(v) == 0) {
            const std::uint64_t val = rng();
            o.store_version(a, v, val);
            ref[s][v] = val;
          }
          break;
        }
        case 1: {  // load an existing exact version
          if (!ref[s].empty()) {
            auto it = ref[s].lower_bound(v);
            if (it == ref[s].end()) --it;
            EXPECT_EQ(o.load_version(a, it->first), it->second);
          }
          break;
        }
        case 2: {  // load-latest below a cap that has a candidate
          auto it = ref[s].upper_bound(v);
          if (it != ref[s].begin()) {
            --it;
            Ver got = 0;
            EXPECT_EQ(o.load_latest(a, v, &got), it->second);
            EXPECT_EQ(got, it->first);
          }
          break;
        }
        case 3: {  // lock + rename-unlock onto a fresh version
          if (!ref[s].empty()) {
            auto it = ref[s].lower_bound(v);
            if (it == ref[s].end()) --it;
            const Ver locked = it->first;
            const std::uint64_t val = o.lock_load_version(a, locked, 999);
            EXPECT_EQ(val, ref[s][locked]);
            Ver target = locked;
            while (ref[s].count(target) != 0) ++target;
            o.unlock_version(a, locked, 999, target);
            ref[s][target] = val;
          }
          break;
        }
      }
    }
    // Final: every reference version is loadable with the right value.
    for (int s = 0; s < kSlots; ++s) {
      const OAddr a = base + 8 * static_cast<OAddr>(s);
      EXPECT_EQ(o.version_count(a), static_cast<int>(ref[s].size()));
      for (const auto& [v, val] : ref[s]) {
        EXPECT_EQ(o.load_version(a, v), val);
      }
    }
  });
  m.run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OStructureGolden,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace osim
