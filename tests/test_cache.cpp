// Unit tests for the set-associative LRU cache model.
#include "sim/cache.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace osim {
namespace {

CacheConfig small_cfg() {
  // 4 sets x 2 ways x 64 B = 512 B.
  return CacheConfig{512, 2, kLineBytes, 4};
}

TEST(Cache, MissThenHit) {
  Cache c(small_cfg());
  EXPECT_FALSE(c.access(0x1000, false));
  c.fill(0x1000, false);
  EXPECT_TRUE(c.access(0x1000, false));
  EXPECT_TRUE(c.contains(0x1000));
  EXPECT_TRUE(c.contains(0x103f));   // same line
  EXPECT_FALSE(c.contains(0x1040));  // next line
}

TEST(Cache, WriteSetsDirty) {
  Cache c(small_cfg());
  c.fill(0x2000, false);
  EXPECT_FALSE(c.dirty(0x2000));
  c.access(0x2000, true);
  EXPECT_TRUE(c.dirty(0x2000));
  c.clean(0x2000);
  EXPECT_FALSE(c.dirty(0x2000));
}

TEST(Cache, FillDirty) {
  Cache c(small_cfg());
  c.fill(0x2000, true);
  EXPECT_TRUE(c.dirty(0x2000));
}

TEST(Cache, LruEviction) {
  Cache c(small_cfg());
  // Three lines mapping to the same set (stride = sets * line = 256).
  const Addr a = 0x0, b = 0x100, d = 0x200;
  c.fill(a, false);
  c.fill(b, false);
  c.access(a, false);            // a most recent; b is LRU
  Cache::Eviction ev = c.fill(d, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line, b);
  EXPECT_TRUE(c.contains(a));
  EXPECT_FALSE(c.contains(b));
  EXPECT_TRUE(c.contains(d));
}

TEST(Cache, EvictionReportsDirtyVictim) {
  Cache c(small_cfg());
  const Addr a = 0x0, b = 0x100, d = 0x200;
  c.fill(a, false);
  c.fill(b, true);  // dirty
  c.access(a, false);
  Cache::Eviction ev = c.fill(d, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line, b);
  EXPECT_TRUE(ev.dirty);
}

TEST(Cache, InvalidateRemovesLine) {
  Cache c(small_cfg());
  c.fill(0x40, true);
  EXPECT_TRUE(c.invalidate(0x40));
  EXPECT_FALSE(c.contains(0x40));
  EXPECT_FALSE(c.invalidate(0x40));  // already gone
}

TEST(Cache, FlushEmptiesEverything) {
  Cache c(small_cfg());
  for (Addr a = 0; a < 512; a += 64) c.fill(a, false);
  EXPECT_GT(c.occupied_lines(), 0u);
  c.flush();
  EXPECT_EQ(c.occupied_lines(), 0u);
  for (Addr a = 0; a < 512; a += 64) EXPECT_FALSE(c.contains(a));
}

TEST(Cache, DistinctSetsDoNotInterfere) {
  Cache c(small_cfg());
  // Fill every set to capacity; nothing should evict.
  for (Addr a = 0; a < 512; a += 64) {
    EXPECT_FALSE(c.fill(a, false).valid) << a;
  }
  EXPECT_EQ(c.occupied_lines(), 8u);
}

TEST(Cache, RejectsEmptyGeometry) {
  EXPECT_THROW(Cache(CacheConfig{0, 1, kLineBytes, 1}), std::invalid_argument);
}

TEST(Cache, NonPowerOfTwoSetCountWorks) {
  // 3 sets x 1 way (the per-core L2 slice of Table II also has a non-power-
  // of-two set count).
  Cache c(CacheConfig{3 * 64, 1, kLineBytes, 1});
  c.fill(0 * 64, false);
  c.fill(1 * 64, false);
  c.fill(2 * 64, false);
  EXPECT_EQ(c.occupied_lines(), 3u);
  EXPECT_TRUE(c.contains(0));
  // Line 3*64 maps onto set 0 and evicts line 0.
  Cache::Eviction ev = c.fill(3 * 64, false);
  ASSERT_TRUE(ev.valid);
  EXPECT_EQ(ev.line, 0u);
}

TEST(Cache, RejectsNonStandardLineSize) {
  EXPECT_THROW(Cache(CacheConfig{1024, 2, 32, 1}), std::invalid_argument);
}

TEST(Cache, Table2Geometries) {
  // L1: 32 KB, 8-way => 64 sets. L2 (32 cores): 48 MB, 16-way => 49152 sets.
  Cache l1(CacheConfig{32 * 1024, 8, kLineBytes, 4});
  EXPECT_EQ(l1.config().num_sets(), 64u);
  MachineConfig mc;
  mc.num_cores = 32;
  EXPECT_EQ(mc.l2_config().size_bytes, std::size_t{32} * 3 * 512 * 1024);
}

class CacheCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheCapacitySweep, WorkingSetLargerThanCacheMisses) {
  const std::size_t kb = GetParam();
  Cache c(CacheConfig{kb * 1024, 8, kLineBytes, 4});
  const std::size_t lines = (kb * 1024) / kLineBytes;
  // Touch 2x capacity twice with a sequential sweep: second pass still
  // misses everywhere under LRU (classic streaming anti-pattern).
  for (int pass = 0; pass < 2; ++pass) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < 2 * lines; ++i) {
      const Addr a = static_cast<Addr>(i) * kLineBytes;
      if (c.access(a, false)) {
        ++hits;
      } else {
        c.fill(a, false);
      }
    }
    EXPECT_EQ(hits, 0u) << "pass " << pass;
  }
  // Working set half of capacity: second pass hits everywhere.
  c.flush();
  std::size_t hits = 0;
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t i = 0; i < lines / 2; ++i) {
      const Addr a = static_cast<Addr>(i) * kLineBytes;
      if (c.access(a, false)) {
        ++hits;
      } else {
        c.fill(a, false);
      }
    }
  }
  EXPECT_EQ(hits, lines / 2);
}

INSTANTIATE_TEST_SUITE_P(L1Sizes, CacheCapacitySweep,
                         ::testing::Values(8, 16, 32, 64, 128));

}  // namespace
}  // namespace osim
