// BoundedSpacePolicy behind the GcPolicy seam: unit tests for the
// range-tracking reclamation rule, plus the stress tests backing the
// policy's headline claim — under a reader that never finishes, the
// unreclaimed set stays at O(live versions + batch) where the paper's
// watermark collector grows without bound on the same stream.
#include "core/gc_policy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/concurrent_store.hpp"
#include "core/fault.hpp"
#include "runtime/env.hpp"

namespace osim {
namespace {

// ---------------------------------------------------------------------------
// Unit tests: the policy object against a bare pool, like test_gc.cpp's
// fixture for the paper policy.

class BoundedGcTest : public ::testing::Test, protected GcOwner {
 protected:
  BoundedGcTest() : gc(/*min_batch=*/4, pool, reg, *this) {}

  void gc_reclaim(BlockIndex b) override {
    reclaimed.push_back(b);
    pool.free(b);
  }
  void gc_event(telemetry::EventType, std::uint64_t, Ver,
                std::uint64_t) override {}

  /// A live block holding version `v`, registered as shadowed by `s`.
  BlockIndex shadowed_block(Ver v, Ver s) {
    const BlockIndex b = pool.alloc();
    EXPECT_NE(b, kNullBlock);
    pool[b].version = v;
    gc.on_shadowed(b, s);
    return b;
  }

  BlockPool pool{64};
  telemetry::MetricRegistry reg{1};
  std::vector<BlockIndex> reclaimed;
  BoundedSpacePolicy gc;
};

TEST_F(BoundedGcTest, ReclaimsRangeFreeBlockDespiteOlderTask) {
  // Task 1 is ancient and unfinished — the paper policy would pin every
  // pending block behind it. The range rule does not care: no unfinished
  // task lies in [5, 8), so the block is unreachable.
  gc.task_begin(1);
  gc.task_begin(10);
  const BlockIndex b = shadowed_block(/*v=*/5, /*s=*/8);
  EXPECT_TRUE(gc.maybe_collect());
  EXPECT_EQ(reclaimed, (std::vector<BlockIndex>{b}));
  EXPECT_EQ(gc.shadowed_size(), 0u);
  gc.task_end(1);
  gc.task_end(10);
}

TEST_F(BoundedGcTest, LiveTaskInsideRangePinsThenTaskEndSweeps) {
  gc.task_begin(6);  // 6 is in [5, 8): it may still read version 5
  const BlockIndex b = shadowed_block(/*v=*/5, /*s=*/8);
  EXPECT_FALSE(gc.maybe_collect());
  EXPECT_TRUE(reclaimed.empty());
  EXPECT_EQ(gc.shadowed_size(), 1u);
  // task_end sweeps on its own: the range just became unpinned.
  gc.task_end(6);
  EXPECT_EQ(reclaimed, (std::vector<BlockIndex>{b}));
}

TEST_F(BoundedGcTest, RangeIsHalfOpen) {
  // Tasks at version - 1 and at the shadower itself do not pin: only ids
  // in [version, shadower) can still read the shadowed version.
  gc.task_begin(4);
  gc.task_begin(8);
  shadowed_block(/*v=*/5, /*s=*/8);
  EXPECT_TRUE(gc.maybe_collect());
  EXPECT_EQ(reclaimed.size(), 1u);
  gc.task_end(4);
  gc.task_end(8);
}

TEST_F(BoundedGcTest, LockedBlockWaitsForUnlock) {
  const BlockIndex b = shadowed_block(/*v=*/3, /*s=*/5);
  pool[b].locked_by = 7;  // the ISA frees locked versions, never the GC
  EXPECT_FALSE(gc.maybe_collect());
  EXPECT_TRUE(reclaimed.empty());
  pool[b].locked_by = kNoTask;
  EXPECT_TRUE(gc.maybe_collect());
  EXPECT_EQ(reclaimed, (std::vector<BlockIndex>{b}));
}

TEST_F(BoundedGcTest, StaleGenerationSkipped) {
  const BlockIndex b = shadowed_block(/*v=*/3, /*s=*/5);
  // The O-structure was released wholesale: the block went back to the
  // pool (and bumped its generation) outside the GC. No double-free.
  pool.free(b);
  const std::size_t free_before = pool.free_count();
  EXPECT_FALSE(gc.maybe_collect());
  EXPECT_TRUE(reclaimed.empty());
  EXPECT_EQ(pool.free_count(), free_before);
  EXPECT_EQ(gc.shadowed_size(), 0u);  // dropped from tracking regardless
}

TEST_F(BoundedGcTest, AmortizedSweepTriggersAtBatch) {
  // on_shadowed only records; the amortized trigger fires from
  // on_store_complete once the tracked set outgrows the last sweep's
  // survivors by min_batch.
  for (Ver v = 1; v <= 3; ++v) {
    shadowed_block(v, v + 1);
    gc.on_store_complete();
    EXPECT_EQ(gc.sweeps(), 0u);
  }
  shadowed_block(4, 5);
  gc.on_store_complete();
  EXPECT_EQ(gc.sweeps(), 1u);
  EXPECT_EQ(reclaimed.size(), 4u);  // no tasks: every range is clear
  EXPECT_EQ(reg.total(telemetry::Component::kGc, "sweeps"), 1u);
  EXPECT_EQ(reg.total(telemetry::Component::kGc, "shadowed_blocks"), 4u);
}

TEST_F(BoundedGcTest, SurvivorsRaiseTheNextTriggerPoint) {
  // Pinned survivors must not cause a sweep per registration: the trigger
  // is survivors + batch, so every sweep is paid for by batch new blocks.
  gc.task_begin(3);
  for (int i = 0; i < 4; ++i) {
    shadowed_block(/*v=*/2, /*s=*/9);  // 3 is in [2, 9): pinned
    gc.on_store_complete();
  }
  EXPECT_EQ(gc.sweeps(), 1u);  // 4 tracked >= 0 survivors + 4 batch
  EXPECT_TRUE(reclaimed.empty());
  for (int i = 0; i < 3; ++i) {
    shadowed_block(/*v=*/2, /*s=*/9);
    gc.on_store_complete();
    EXPECT_EQ(gc.sweeps(), 1u);  // 5..7 tracked < 4 survivors + 4 batch
  }
  shadowed_block(/*v=*/2, /*s=*/9);
  gc.on_store_complete();
  EXPECT_EQ(gc.sweeps(), 2u);
  EXPECT_TRUE(reclaimed.empty());
  gc.task_end(3);  // unpins all eight at once
  EXPECT_EQ(reclaimed.size(), 8u);
}

TEST_F(BoundedGcTest, FloorRisesToMaxReclaimedShadower) {
  shadowed_block(/*v=*/5, /*s=*/9);
  EXPECT_TRUE(gc.maybe_collect());
  EXPECT_EQ(gc.floor(), 8u);
  // Same fault surface as the paper policy: a task at or below the floor
  // could land inside a reclaimed range.
  try {
    gc.task_created(8);
    FAIL() << "expected OFault";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kTaskOrderViolation);
  }
  gc.task_begin(9);  // the shadower id itself is above the floor
  gc.task_end(9);
}

TEST_F(BoundedGcTest, MaybeCollectReportsWhetherWorkRan) {
  EXPECT_FALSE(gc.maybe_collect());  // nothing tracked: no sweep at all
  EXPECT_EQ(gc.sweeps(), 0u);
  gc.task_begin(2);
  shadowed_block(/*v=*/1, /*s=*/4);  // pinned by task 2
  EXPECT_FALSE(gc.maybe_collect());  // swept, freed nothing
  EXPECT_EQ(gc.sweeps(), 1u);
  gc.task_end(2);
}

TEST_F(BoundedGcTest, NoPhaseMachinery) {
  gc.task_begin(2);
  shadowed_block(/*v=*/1, /*s=*/4);
  gc.maybe_collect();
  EXPECT_FALSE(gc.phase_active());
  EXPECT_EQ(gc.pending_size(), 0u);
  EXPECT_EQ(gc.fence(), 0u);
  gc.task_end(2);
}

// ---------------------------------------------------------------------------
// Stress: the space bound on the serial engine (functional backend).

std::uint64_t mix64(std::uint64_t& s) {
  std::uint64_t z = (s += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Zipfian slot pick: slot j with probability proportional to 1/(j+1).
std::uint64_t zipf_slot(std::uint64_t& seed, int nslots) {
  static thread_local std::vector<double> cdf;
  if (cdf.size() != static_cast<std::size_t>(nslots)) {
    cdf.assign(static_cast<std::size_t>(nslots), 0.0);
    double sum = 0.0;
    for (int j = 0; j < nslots; ++j) {
      sum += 1.0 / (1.0 + j);
      cdf[static_cast<std::size_t>(j)] = sum;
    }
    for (double& c : cdf) c /= sum;
  }
  const double u =
      static_cast<double>(mix64(seed) >> 11) / static_cast<double>(1ull << 53);
  return static_cast<std::uint64_t>(
      std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
}

struct StressOutcome {
  std::uint64_t peak_unreclaimed = 0;  ///< max shadowed+pending ever tracked
  std::uint64_t peak_gauge = 0;        ///< max of the gc/pending_blocks gauge
  std::uint64_t blocks_freed = 0;      ///< while the reader was still live
  std::uint64_t os_traps = 0;
  std::size_t pool_blocks = 0;  ///< final pool size (growth = space leaked)
  bool reader_ok = true;        ///< version 1 stayed readable throughout
  bool check_clean = true;
};

/// One immortal reader (task 1) holds its read cap at 1 forever while
/// `writers` short tasks churn versions through a Zipfian-hot set of slots.
/// Every write shadows the slot's previous newest version; whether those
/// shadowed blocks ever come back is entirely the policy's call.
StressOutcome run_immortal_reader(GcPolicyKind gc, int writers) {
  constexpr int kSlots = 8;
  constexpr std::size_t kBatch = 16;
  MachineConfig c;
  c.num_cores = 1;
  c.backend = BackendKind::kFunctional;
  c.ostruct.gc_policy = gc;
  c.ostruct.gc_bounded_batch = kBatch;
  c.ostruct.initial_pool_blocks = 64;
  c.ostruct.trap_grow_blocks = 64;
  c.ostruct.gc_watermark = 16;
  c.ostruct.check_mode = 2;
  Env env(c);
  VersionStore& vs = env.store();
  const OAddr base = vs.alloc(kSlots);

  vs.task_begin(1);  // the immortal reader; also seeds version 1 everywhere
  for (int s = 0; s < kSlots; ++s) {
    vs.store_version(base + 8 * static_cast<OAddr>(s), 1,
                     1000 + static_cast<std::uint64_t>(s));
  }

  StressOutcome out;
  std::uint64_t seed = 0xD1CEull;
  for (TaskId t = 2; t < 2 + static_cast<TaskId>(writers); ++t) {
    vs.task_begin(t);
    const std::uint64_t slot = zipf_slot(seed, kSlots);
    vs.store_version(base + 8 * slot, t, t * 31 + slot);
    out.peak_unreclaimed =
        std::max<std::uint64_t>(out.peak_unreclaimed,
                                vs.gc().shadowed_size() + vs.gc().pending_size());
    out.peak_gauge = std::max(
        out.peak_gauge,
        env.metrics().total(telemetry::Component::kGc, "pending_blocks"));
    vs.task_end(t);
    // The reader's world must be intact no matter what got reclaimed.
    if ((t & 0xFF) == 0) {
      Ver got = 0;
      const std::uint64_t d = vs.load_latest(base + 8 * slot, 1, &got);
      out.reader_ok &= got == 1 && d == 1000 + slot;
    }
  }

  out.blocks_freed = env.metrics().total(telemetry::Component::kOsm,
                                         "blocks_freed");
  out.os_traps = env.metrics().total(telemetry::Component::kOsm, "os_traps");
  out.pool_blocks = vs.pool().size();
  for (int s = 0; s < kSlots; ++s) {
    Ver got = 0;
    const std::uint64_t d =
        vs.load_latest(base + 8 * static_cast<OAddr>(s), 1, &got);
    out.reader_ok &= got == 1 && d == 1000 + static_cast<std::uint64_t>(s);
  }
  vs.task_end(1);
  env.checker()->finish();
  out.check_clean = env.checker()->clean();
  return out;
}

TEST(GcPolicyStress, BoundedSpaceHoldsWherePaperGrowsUnboundedly) {
  constexpr int kWriters = 3000;
  constexpr std::uint64_t kSlots = 8, kBatch = 16;

  const StressOutcome bounded =
      run_immortal_reader(GcPolicyKind::kBounded, kWriters);
  // The headline bound: live versions (the reader pins at most one old
  // version per slot) + the amortization batch — never the write count.
  EXPECT_LE(bounded.peak_gauge, kSlots + kBatch);
  EXPECT_LE(bounded.peak_unreclaimed, kSlots + kBatch);
  EXPECT_GE(bounded.blocks_freed,
            static_cast<std::uint64_t>(kWriters) - kSlots - kBatch);
  // Space really is bounded: the initial 64-block pool never grew.
  EXPECT_EQ(bounded.os_traps, 0u);
  EXPECT_EQ(bounded.pool_blocks, 64u);
  EXPECT_TRUE(bounded.reader_ok);
  EXPECT_TRUE(bounded.check_clean);

  const StressOutcome paper =
      run_immortal_reader(GcPolicyKind::kPaper, kWriters);
  // Same stream, paper rules: the immortal reader sits below every fence,
  // so nothing is ever reclaimed and the pool grows with the write count.
  EXPECT_EQ(paper.blocks_freed, 0u);
  EXPECT_GT(paper.peak_unreclaimed, static_cast<std::uint64_t>(kWriters) / 2);
  EXPECT_GT(paper.pool_blocks, 1000u);
  EXPECT_TRUE(paper.reader_ok);
  EXPECT_TRUE(paper.check_clean);
}

// ---------------------------------------------------------------------------
// Stress: the same contrast on the truly concurrent engine, with the
// reclaim decision racing real writer and reader threads (TSan target;
// tools/run-sanitizers.sh runs this binary under TSan).

std::uint64_t data_for(Ver v, std::uint64_t slot) {
  return (v * 0x9E3779B97F4A7C15ull) ^ (slot << 17) ^ 0x5DEECE66Dull;
}

struct ConcOutcome {
  std::uint64_t reclaimed = 0;
  std::uint64_t torn_reads = 0;
  int max_chain = 0;  ///< longest per-slot version chain at the end
  bool reader_ok = true;
};

ConcOutcome run_concurrent_immortal_reader(GcPolicyKind gc, int writes) {
  constexpr std::uint64_t kSlots = 4;
  ConcurrencyConfig cfg;
  cfg.shards = 1;
  cfg.reclaim_threshold = 32;
  cfg.gc_policy = gc;
  ConcurrentVersionStore store(cfg);
  const OAddr base = store.alloc(kSlots);

  store.task_created(1);
  store.task_begin(1);  // the immortal reader, live for the whole run
  for (std::uint64_t s = 0; s < kSlots; ++s) {
    store.store_version(base + 8 * s, 1, data_for(1, s));
  }

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> torn{0};
  std::thread reader([&store, base, &stop, &torn] {
    std::uint64_t seed = 0xBEEFull;
    while (!stop.load(std::memory_order_acquire)) {
      const std::uint64_t slot = mix64(seed) % kSlots;
      Ver got = 0;
      // The reader's capped view: version 1 must stay readable (its range
      // holds task 1), and the pair must never tear.
      const std::uint64_t d1 = store.load_latest(base + 8 * slot, 1, &got);
      if (got != 1 || d1 != data_for(1, slot)) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
      // An uncapped racing walk for good measure.
      const std::uint64_t d = store.load_latest(base + 8 * slot, ~Ver{0}, &got);
      if (d != data_for(got, slot)) {
        torn.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Writers on real threads. Task creation is serialized (creation order
  // is program order in any real runtime — and the GC floor may rise past
  // an id that was handed out but never announced); the stores, task ends,
  // and reclaim passes all race freely.
  constexpr int kWriterThreads = 3;
  std::mutex create_mu;
  TaskId next_tid = 2;
  std::atomic<int> remaining{writes};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriterThreads; ++w) {
    writers.emplace_back([&store, base, &create_mu, &next_tid, &remaining] {
      while (remaining.fetch_sub(1, std::memory_order_relaxed) > 0) {
        TaskId tid;
        {
          std::lock_guard<std::mutex> lk(create_mu);
          tid = next_tid++;
          store.task_created(tid);
        }
        store.task_begin(tid);
        const std::uint64_t slot = tid % kSlots;
        store.store_version(base + 8 * slot, tid, data_for(tid, slot));
        store.task_end(tid);
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  ConcOutcome out;
  out.reclaimed = store.stats().blocks_reclaimed;
  out.torn_reads = torn.load();
  for (std::uint64_t s = 0; s < kSlots; ++s) {
    out.max_chain = std::max(out.max_chain,
                             store.version_count(base + 8 * s));
    Ver got = 0;
    const std::uint64_t d = store.load_latest(base + 8 * s, 1, &got);
    out.reader_ok &= got == 1 && d == data_for(1, s);
  }
  store.task_end(1);
  return out;
}

TEST(GcPolicyConcurrent, BoundedReclaimsUnderImmortalReaderPaperCannot) {
  constexpr int kWrites = 4000;
  const ConcOutcome bounded =
      run_concurrent_immortal_reader(GcPolicyKind::kBounded, kWrites);
  EXPECT_EQ(bounded.torn_reads, 0u);
  EXPECT_TRUE(bounded.reader_ok);
  EXPECT_GT(bounded.reclaimed, 0u);
  // Chains stay short: everything between the reader's version 1 and the
  // slot head keeps getting recycled.
  EXPECT_LT(bounded.max_chain, kWrites / 8);

  const ConcOutcome paper =
      run_concurrent_immortal_reader(GcPolicyKind::kPaper, kWrites / 4);
  EXPECT_EQ(paper.torn_reads, 0u);
  EXPECT_TRUE(paper.reader_ok);
  // The fence rule pins every shadowed block behind the immortal reader.
  EXPECT_EQ(paper.reclaimed, 0u);
}

}  // namespace
}  // namespace osim
