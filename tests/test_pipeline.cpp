// Tests for the Sec. IV-D pipelining protocol helpers: the root ticket and
// the hand-over-hand lock cursor.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/pipeline.hpp"
#include "runtime/task.hpp"

namespace osim {
namespace {

MachineConfig cfg(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  return c;
}

TEST(TicketRoot, MutatorsEnterInTaskOrder) {
  Env env(cfg(4));
  TicketRoot<std::uint64_t> root(env);
  std::vector<TaskId> order;
  TaskRuntime rt(env, 4);
  rt.set_setup([&] { root.init(0, 1); });
  // Create mutator tasks in a scrambled per-core layout; the ticket must
  // still admit them strictly by id.
  for (TaskId t = 2; t <= 9; ++t) {
    rt.create_task(t, [&env, &root, &order](TaskId tid) {
      mach().exec(5 * (10 - tid));  // younger tasks "arrive" earlier
      root.enter_mut(tid, tid - 1);
      order.push_back(tid);
      mach().advance(50);
      root.leave_mut(tid, tid - 1);
    });
  }
  rt.run();
  EXPECT_EQ(order, (std::vector<TaskId>{2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(TicketRoot, MutatorExitPublishesNewValue) {
  Env env(cfg(1));
  env.run_sequential([&] {
    TicketRoot<std::uint64_t> root(env);
    root.init(100, 1);
    EXPECT_EQ(root.enter_mut(2, 1), 100u);
    root.leave_mut(2, 1, std::uint64_t{200});  // mutation changed the root
    EXPECT_EQ(root.enter_mut(3, 2), 200u);
    root.leave_mut(3, 2);  // unchanged: renamed forward
    EXPECT_EQ(root.enter_ro(3), 200u);
  });
}

TEST(TicketRoot, ReadersBetweenMutatorsRunConcurrently) {
  // Readers 3,4,5 all name mutator 2's version; none blocks on another.
  Env env(cfg(4));
  TicketRoot<std::uint64_t> root(env);
  TaskRuntime rt(env, 4);
  rt.set_setup([&] { root.init(7, 1); });
  rt.create_task(2, [&root](TaskId t) {
    root.enter_mut(t, 1);
    mach().advance(100);
    root.leave_mut(t, 1);
  });
  int concurrent = 0, peak = 0;
  for (TaskId t = 3; t <= 5; ++t) {
    rt.create_task(t, [&](TaskId) {
      EXPECT_EQ(root.enter_ro(2), 7u);
      ++concurrent;
      peak = std::max(peak, concurrent);
      mach().advance(1000);
      mach().sync_to_global_order();
      --concurrent;
    });
  }
  rt.run();
  EXPECT_GE(peak, 2);  // overlap actually happened
}

TEST(TicketRoot, ReaderWaitsForPrecedingMutator) {
  Env env(cfg(2));
  TicketRoot<std::uint64_t> root(env);
  Cycles read_at = 0;
  TaskRuntime rt(env, 2);
  rt.set_setup([&] { root.init(1, 1); });
  rt.create_task(2, [&root](TaskId t) {
    mach().advance(8000);  // slow mutator
    root.enter_mut(t, 1);
    root.leave_mut(t, 1, std::uint64_t{2});
  });
  rt.create_task(3, [&](TaskId) {
    EXPECT_EQ(root.enter_ro(2), 2u);  // must see mutator 2's value
    read_at = mach().now();
  });
  rt.run();
  EXPECT_GT(read_at, 8000u);
}

TEST(HandOverHand, AdvanceHoldsNextBeforeReleasingPrevious) {
  Env env(cfg(1));
  env.run_sequential([&] {
    versioned<std::uint64_t> a(env), b(env);
    a.store_ver(10, 1);
    b.store_ver(20, 1);
    HandOverHand<std::uint64_t> hoh(5);
    EXPECT_EQ(hoh.advance(a), 10u);
    EXPECT_TRUE(hoh.holding());
    EXPECT_EQ(&hoh.held(), &a);
    EXPECT_EQ(hoh.advance(b), 20u);
    EXPECT_EQ(&hoh.held(), &b);
    // a must be unlocked again, b locked by us.
    EXPECT_FALSE(env.osm().lock_holder(a.addr(), 1).has_value());
    EXPECT_EQ(env.osm().lock_holder(b.addr(), 1), std::optional<TaskId>(5));
    hoh.release_unchanged();
    EXPECT_FALSE(env.osm().lock_holder(b.addr(), 1).has_value());
  });
}

TEST(HandOverHand, ModifyAndReleaseRenames) {
  Env env(cfg(1));
  env.run_sequential([&] {
    versioned<std::uint64_t> f(env);
    f.store_ver(1, 1);
    HandOverHand<std::uint64_t> hoh(6);
    hoh.advance(f);
    hoh.modify_and_release(99);
    // Old version intact, new version at the task id, nothing locked.
    EXPECT_EQ(f.load_ver(1), 1u);
    EXPECT_EQ(f.load_ver(6), 99u);
    EXPECT_EQ(f.load_latest(100), 99u);
  });
}

TEST(HandOverHand, YoungerMutatorCannotOvertake) {
  Env env(cfg(2));
  versioned<std::uint64_t> hop1(env), hop2(env);
  std::vector<int> at_hop2;
  TaskRuntime rt(env, 2);
  rt.set_setup([&] {
    hop1.store_ver(1, 1);
    hop2.store_ver(1, 1);
  });
  rt.create_task(2, [&](TaskId t) {
    HandOverHand<std::uint64_t> hoh(t);
    hoh.advance(hop1);
    mach().advance(5000);  // dawdle while holding hop1
    hoh.advance(hop2);
    at_hop2.push_back(2);
    hoh.release_unchanged();
  });
  rt.create_task(3, [&](TaskId t) {
    HandOverHand<std::uint64_t> hoh(t);
    hoh.advance(hop1);  // stalls behind task 2's lock
    hoh.advance(hop2);
    at_hop2.push_back(3);
    hoh.release_unchanged();
  });
  rt.run();
  EXPECT_EQ(at_hop2, (std::vector<int>{2, 3}));
}

TEST(HandOverHand, AdoptTakesExternalLock) {
  Env env(cfg(1));
  env.run_sequential([&] {
    versioned<std::uint64_t> f(env);
    f.store_ver(5, 1);
    Ver locked = 0;
    f.lock_load_last(10, /*locker=*/4, &locked);
    HandOverHand<std::uint64_t> hoh(4);
    hoh.adopt(f, locked);
    hoh.release_unchanged();
    EXPECT_FALSE(env.osm().lock_holder(f.addr(), 1).has_value());
  });
}

}  // namespace
}  // namespace osim
