// Tests for the telemetry subsystem (src/telemetry/): metric registry
// handles and dump determinism, trace sinks (ring wraparound, file
// round-trip, masks), and the machine-level lifecycle events the
// O-structure manager emits.
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/ostructure_manager.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace osim::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Metric registry

TEST(Metrics, CounterHandleUpdatesRegistrySlot) {
  MetricRegistry reg(1);
  Counter c = reg.counter(Component::kOsm, "widgets");
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  EXPECT_EQ(reg.total(Component::kOsm, "widgets"), 42u);
  c.dec(2);
  EXPECT_EQ(reg.total(Component::kOsm, "widgets"), 40u);
}

TEST(Metrics, CounterVecIsPerCoreAndTotalsAcrossCores) {
  MetricRegistry reg(4);
  CounterVec v = reg.counter_vec(Component::kCache, "hits");
  v.inc(0);
  v.inc(2, 10);
  v.inc(3, 100);
  EXPECT_EQ(v.value(0), 1u);
  EXPECT_EQ(v.value(1), 0u);
  EXPECT_EQ(reg.value(Component::kCache, "hits", 2), 10u);
  EXPECT_EQ(reg.total(Component::kCache, "hits"), 111u);
}

TEST(Metrics, GaugeGoesUpAndDown) {
  MetricRegistry reg(1);
  Gauge g = reg.gauge(Component::kGc, "pending");
  g.set(7);
  EXPECT_EQ(g.value(), 7u);
  g.set(3);
  EXPECT_EQ(reg.total(Component::kGc, "pending"), 3u);
}

TEST(Metrics, AbsentMetricReadsAsZero) {
  MetricRegistry reg(2);
  EXPECT_EQ(reg.total(Component::kCore, "never_registered"), 0u);
  EXPECT_EQ(reg.value(Component::kCore, "never_registered", 1), 0u);
  EXPECT_EQ(reg.find(Component::kCore, "never_registered"), nullptr);
}

TEST(Metrics, HistogramBucketsOverflowSumCount) {
  MetricRegistry reg(1);
  Histogram h = reg.histogram(Component::kOsm, "lat", {10, 100});
  h.observe(5);    // <= 10
  h.observe(10);   // <= 10 (bound is inclusive)
  h.observe(11);   // <= 100
  h.observe(999);  // overflow
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 5u + 10u + 11u + 999u);
  const MetricRegistry::Metric* m = reg.find(Component::kOsm, "lat");
  ASSERT_NE(m, nullptr);
  // Slot layout: [bucket 0, bucket 1, overflow, sum, count].
  ASSERT_EQ(m->width, 5u);
  EXPECT_EQ(m->slots[0], 2u);
  EXPECT_EQ(m->slots[1], 1u);
  EXPECT_EQ(m->slots[2], 1u);
  EXPECT_EQ(m->slots[3], h.sum());
  EXPECT_EQ(m->slots[4], 4u);
}

TEST(Metrics, ExternalCounterVecReadsComponentOwnedStorage) {
  // Hot components keep an array-of-structs and register each field as an
  // external counter vector (the memory system does this for cache/*).
  struct Pack {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  MetricRegistry reg(2);
  std::vector<Pack> packs(2);
  constexpr std::size_t kStride = sizeof(Pack) / sizeof(std::uint64_t);
  reg.counter_vec_external(Component::kCache, "hits", &packs[0].hits, kStride);
  reg.counter_vec_external(Component::kCache, "misses", &packs[0].misses,
                           kStride);
  packs[0].hits = 3;
  packs[1].hits = 4;
  packs[1].misses = 7;
  EXPECT_EQ(reg.total(Component::kCache, "hits"), 7u);
  EXPECT_EQ(reg.value(Component::kCache, "hits", 1), 4u);
  EXPECT_EQ(reg.total(Component::kCache, "misses"), 7u);
  EXPECT_EQ(reg.value(Component::kCache, "misses", 0), 0u);
  EXPECT_NE(reg.dump_str().find("cache/hits total=7 per_core=[3 4]"),
            std::string::npos);
}

TEST(Metrics, DumpIsDeterministicAcrossIdenticalRegistries) {
  auto build = [] {
    auto reg = std::make_unique<MetricRegistry>(2);
    Counter a = reg->counter(Component::kCore, "instructions");
    CounterVec b = reg->counter_vec(Component::kCache, "hits");
    Histogram h = reg->histogram(Component::kGc, "batch", {1, 8});
    a.inc(5);
    b.inc(1, 3);
    h.observe(2);
    return reg;
  };
  const std::string d1 = build()->dump_str();
  const std::string d2 = build()->dump_str();
  EXPECT_EQ(d1, d2);
  // Lines carry the component prefix in registration order.
  EXPECT_NE(d1.find("core/instructions"), std::string::npos);
  EXPECT_NE(d1.find("cache/hits"), std::string::npos);
  EXPECT_LT(d1.find("core/instructions"), d1.find("cache/hits"));
}

// ---------------------------------------------------------------------------
// Sinks

TraceEvent ev(Cycles t, EventType type, std::uint64_t arg) {
  TraceEvent e;
  e.time = t;
  e.type = type;
  e.arg = arg;
  return e;
}

TEST(RingSinkTest, KeepsNewestInOrderAfterWraparound) {
  RingSink ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ring.record(ev(i, EventType::kBlockAlloc, i));
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  const auto snap = ring.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(snap[i].arg, 6 + i);
}

TEST(RingSinkTest, CapacityZeroIsDisabled) {
  RingSink ring(0);
  EXPECT_FALSE(ring.enabled());
  ring.record(ev(1, EventType::kIsaOp, 0));
  EXPECT_EQ(ring.total_recorded(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(RingSinkTest, MaskFiltersAtTheTracer) {
  Tracer tracer;
  RingSink only_frees(8, event_bit(EventType::kBlockFreed));
  tracer.attach(&only_frees);
  tracer.emit(ev(1, EventType::kBlockAlloc, 1));
  tracer.emit(ev(2, EventType::kBlockFreed, 1));
  tracer.emit(ev(3, EventType::kIsaOp, 0));
  const auto snap = only_frees.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].type, EventType::kBlockFreed);
}

TEST(TracerTest, EnabledOnlyWhileSinksAttached) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  NullSink null;
  tracer.attach(&null);
  EXPECT_TRUE(tracer.enabled());
  tracer.emit(ev(1, EventType::kOsTrap, 64));  // swallowed, must not crash
}

TEST(TracerTest, FansOutToEverySink) {
  Tracer tracer;
  RingSink a(4), b(4);
  tracer.attach(&a);
  tracer.attach(&b);
  tracer.emit(ev(1, EventType::kGcPhaseBegin, 9));
  EXPECT_EQ(a.total_recorded(), 1u);
  EXPECT_EQ(b.total_recorded(), 1u);
}

TEST(FileSinkTest, RoundTripsEveryFieldThroughTheBinaryFormat) {
  const std::string path = testing::TempDir() + "osim_trace_roundtrip.bin";
  {
    Tracer tracer;
    tracer.add_sink(std::make_unique<FileSink>(path));
    TraceEvent e;
    e.time = 123456789;
    e.core = 7;
    e.type = EventType::kLockAcquire;
    e.addr = 0xdeadbeefu;
    e.version = 42;
    e.arg = 0x1122334455667788ull;
    tracer.emit(e);
    tracer.emit(ev(99, EventType::kGcPhaseEnd, 3));
    tracer.flush();
  }  // FileSink destroyed -> file closed
  const auto events = read_trace_file(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].time, 123456789u);
  EXPECT_EQ(events[0].core, 7);
  EXPECT_EQ(events[0].type, EventType::kLockAcquire);
  EXPECT_EQ(events[0].addr, 0xdeadbeefu);
  EXPECT_EQ(events[0].version, 42u);
  EXPECT_EQ(events[0].arg, 0x1122334455667788ull);
  EXPECT_EQ(events[1].type, EventType::kGcPhaseEnd);
  EXPECT_EQ(events[1].arg, 3u);
  std::remove(path.c_str());
}

TEST(FileSinkTest, ReaderRejectsMissingAndMalformedFiles) {
  EXPECT_THROW(read_trace_file(testing::TempDir() + "osim_no_such_trace.bin"),
               std::runtime_error);
  const std::string path = testing::TempDir() + "osim_bad_trace.bin";
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("not a trace", f);
    std::fclose(f);
  }
  EXPECT_THROW(read_trace_file(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(EventTypeTest, NamesAreStable) {
  EXPECT_STREQ(to_string(EventType::kIsaOp), "ISA-OP");
  EXPECT_STREQ(to_string(EventType::kBlockFreed), "BLOCK-FREED");
  EXPECT_STREQ(to_string(EventType::kOsTrap), "OS-TRAP");
}

// ---------------------------------------------------------------------------
// Machine-level lifecycle events: the OSM's tracer must report the same
// story the registry counters tell.

TEST(LifecycleEvents, MatchRegistryCounters) {
  MachineConfig c;
  c.num_cores = 1;
  Machine m(c);
  OStructureManager o(m);
  RingSink all(1 << 14, kAllEvents);
  o.tracer().attach(&all);

  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    for (Ver v = 1; v <= 5; ++v) o.store_version(a, v, v * 10);
    o.lock_load_latest(a, /*cap=*/99, /*locker=*/1);
    o.unlock_version(a, /*v=*/5, /*task=*/1, Ver{6});
  });
  m.run();

  std::uint64_t allocs = 0, stores = 0, shadows = 0, acquires = 0,
                releases = 0;
  for (const TraceEvent& e : all.snapshot()) {
    switch (e.type) {
      case EventType::kBlockAlloc:
        ++allocs;
        break;
      case EventType::kVersionStore:
        ++stores;
        break;
      case EventType::kBlockShadowed:
        ++shadows;
        break;
      case EventType::kLockAcquire:
        ++acquires;
        break;
      case EventType::kLockRelease:
        ++releases;
        break;
      default:
        break;
    }
  }
  const MetricRegistry& reg = m.metrics();
  EXPECT_EQ(allocs, reg.total(Component::kOsm, "blocks_allocated"));
  EXPECT_EQ(shadows, reg.total(Component::kGc, "shadowed_blocks"));
  EXPECT_EQ(stores, 6u);  // 5 stores + the unlock's new version
  EXPECT_EQ(acquires, 1u);
  EXPECT_EQ(releases, 1u);
  EXPECT_GT(allocs, 0u);
}

}  // namespace
}  // namespace osim::telemetry
