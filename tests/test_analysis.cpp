// osim-check tests: every checked invariant must trip on a seeded
// violation and stay silent on correct executions. Three layers:
//   * synthetic event streams fed straight into the Checker (unit tests
//     for each invariant, both the firing and the suppressing edge),
//   * whole simulations through Env with check_mode on (clean runs are
//     silent and bit-identical; OSM-level lock-discipline violations are
//     flagged even though the machine faults),
//   * the static front end over abstract op streams.
#include <gtest/gtest.h>

#include <string>

#include "analysis/checker.hpp"
#include "analysis/static_check.hpp"
#include "core/fault.hpp"
#include "core/fault_injection.hpp"
#include "core/isa.hpp"
#include "core/ostructure_manager.hpp"
#include "runtime/env.hpp"
#include "telemetry/trace.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/opstream.hpp"

namespace osim::analysis {
namespace {

using telemetry::EventType;
using telemetry::TraceEvent;

TraceEvent ev(EventType type, CoreId core, Addr addr, Ver version,
              std::uint64_t arg, OpCode op = {}) {
  TraceEvent e;
  e.time = 0;
  e.core = core;
  e.type = type;
  e.op = op;
  e.addr = addr;
  e.version = version;
  e.arg = arg;
  return e;
}

TraceEvent isa(OpCode op, CoreId core, Ver version, Addr addr = 0) {
  return ev(EventType::kIsaOp, core, addr, version, 0, op);
}

bool has(const Checker& c, Invariant inv) {
  for (const Finding& f : c.findings()) {
    if (f.invariant == inv) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Determinacy races (vector clocks over LOAD-LATEST windows)

TEST(CheckerRace, UnorderedStoreIntoReadWindowIsARace) {
  Checker c(2);
  // Core 0, task 10: LOAD-LATEST(cap=20) observed version 5 — the window
  // (5, 20] is open.
  c.on_event(isa(OpCode::kTaskBegin, 0, 10));
  c.on_event(ev(EventType::kVersionRead, 0, 100, 5, 20, OpCode::kLoadLatest));
  // Core 1, task 12: creates version 12 inside the window with no
  // happens-before edge to the reader.
  c.on_event(isa(OpCode::kTaskBegin, 1, 12));
  c.on_event(ev(EventType::kBlockAlloc, 1, 0, 0, 3));
  c.on_event(ev(EventType::kVersionStore, 1, 100, 12, 3));
  EXPECT_TRUE(has(c, Invariant::kDeterminacyRace));
  EXPECT_FALSE(c.clean());
  const Finding& f = c.findings().back();
  EXPECT_EQ(f.invariant, Invariant::kDeterminacyRace);
  EXPECT_EQ(f.task, 12u);        // racing writer
  EXPECT_EQ(f.other_task, 10u);  // racing reader
}

TEST(CheckerRace, StoreOrderedByLockHandoffIsSilent) {
  Checker c(2);
  // Reader (core 0) locks the version it observed and releases it; the
  // writer (core 1) acquires the same lock before storing, so the release
  // -> acquire edge orders the store after the read.
  c.on_event(isa(OpCode::kTaskBegin, 0, 10));
  c.on_event(
      ev(EventType::kVersionRead, 0, 100, 5, 20, OpCode::kLockLoadLatest));
  c.on_event(ev(EventType::kLockAcquire, 0, 100, 5, 10));
  c.on_event(ev(EventType::kLockRelease, 0, 100, 5, 10));
  c.on_event(isa(OpCode::kTaskBegin, 1, 12));
  c.on_event(ev(EventType::kLockAcquire, 1, 100, 5, 12));
  c.on_event(ev(EventType::kBlockAlloc, 1, 0, 0, 3));
  c.on_event(ev(EventType::kVersionStore, 1, 100, 12, 3));
  c.on_event(ev(EventType::kLockRelease, 1, 100, 5, 12));
  EXPECT_FALSE(has(c, Invariant::kDeterminacyRace));
  EXPECT_TRUE(c.clean());
}

TEST(CheckerRace, StoreOutsideTheWindowIsSilent) {
  Checker c(2);
  c.on_event(isa(OpCode::kTaskBegin, 0, 10));
  c.on_event(ev(EventType::kVersionRead, 0, 100, 5, 20, OpCode::kLoadLatest));
  c.on_event(isa(OpCode::kTaskBegin, 1, 30));
  c.on_event(ev(EventType::kBlockAlloc, 1, 0, 0, 3));
  // Version 30 > cap 20: the reader could never have returned it.
  c.on_event(ev(EventType::kVersionStore, 1, 100, 30, 3));
  EXPECT_TRUE(c.clean());
}

TEST(CheckerRace, ExactLoadsOpenNoWindow) {
  Checker c(2);
  // LOAD-VERSION resolves exactly (version == requested): nothing racy.
  c.on_event(
      ev(EventType::kVersionRead, 0, 100, 5, 5, OpCode::kLoadVersion));
  c.on_event(ev(EventType::kBlockAlloc, 1, 0, 0, 3));
  c.on_event(ev(EventType::kVersionStore, 1, 100, 12, 3));
  EXPECT_TRUE(c.clean());
}

// ---------------------------------------------------------------------------
// Version lifecycle state machine

TEST(CheckerLifecycle, DoubleFreeFlagged) {
  Checker c(1);
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  c.on_event(ev(EventType::kVersionStore, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockShadowed, 0, 100, 4, 7));
  c.on_event(ev(EventType::kBlockPending, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockFreed, 0, 100, 3, 7));
  EXPECT_TRUE(c.clean());  // the full legal lifecycle
  c.on_event(ev(EventType::kBlockFreed, 0, 100, 3, 7));
  EXPECT_TRUE(has(c, Invariant::kDoubleFree));
}

TEST(CheckerLifecycle, StoreAfterShadowFlagged) {
  Checker c(1);
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  c.on_event(ev(EventType::kVersionStore, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockShadowed, 0, 100, 4, 7));
  c.on_event(ev(EventType::kVersionStore, 0, 100, 5, 7));
  EXPECT_TRUE(has(c, Invariant::kStoreAfterShadow));
}

TEST(CheckerLifecycle, AllocOffTheFreeListTwiceIsCorruption) {
  Checker c(1);
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  EXPECT_TRUE(has(c, Invariant::kFreeListCorruption));
}

TEST(CheckerLifecycle, ReadAfterReclaimFlagged) {
  Checker c(1);
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  c.on_event(ev(EventType::kVersionStore, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockShadowed, 0, 100, 4, 7));
  c.on_event(ev(EventType::kBlockPending, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockFreed, 0, 100, 3, 7));
  c.on_event(
      ev(EventType::kVersionRead, 0, 100, 3, 3, OpCode::kLoadVersion));
  EXPECT_TRUE(has(c, Invariant::kUseAfterReclaim));
}

TEST(CheckerLifecycle, BareRecycleDoesNotPoisonTheVersion) {
  // kBlockFreed with addr == 0 recycles a block without reclaiming any
  // (addr, version) pair — the duplicate-store fault path. Reading the
  // version that legitimately exists must stay silent.
  Checker c(1);
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  c.on_event(ev(EventType::kVersionStore, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 8));
  c.on_event(ev(EventType::kBlockFreed, 0, 0, 3, 8));  // bare recycle
  c.on_event(
      ev(EventType::kVersionRead, 0, 100, 3, 3, OpCode::kLoadVersion));
  EXPECT_FALSE(has(c, Invariant::kUseAfterReclaim));
}

// ---------------------------------------------------------------------------
// GC reclamation safety

TEST(CheckerGc, ReclaimUnderLiveReaderInRangeIsPremature) {
  Checker c(1);
  // Task 4 lies in [version 3, shadower 5): its LOAD-LATEST cap could still
  // name version 3 of the reclaimed block.
  c.on_event(ev(EventType::kTaskCreated, 0, 0, 4, 0));  // task 4 unfinished
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  c.on_event(ev(EventType::kVersionStore, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockShadowed, 0, 100, 5, 7));
  c.on_event(ev(EventType::kBlockPending, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockFreed, 0, 100, 3, 7));
  EXPECT_TRUE(has(c, Invariant::kPrematureReclaim));
}

TEST(CheckerGc, ReclaimWithLiveTaskBelowRangeIsSilent) {
  // A bounded-policy reclaim: task 2's cap resolves below version 3, so it
  // can never name the reclaimed version even though it is older than the
  // shadower — the range rule [3, 5) excludes it.
  Checker c(1);
  c.on_event(ev(EventType::kTaskCreated, 0, 0, 2, 0));
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  c.on_event(ev(EventType::kVersionStore, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockShadowed, 0, 100, 5, 7));
  c.on_event(ev(EventType::kBlockPending, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockFreed, 0, 100, 3, 7));
  EXPECT_FALSE(has(c, Invariant::kPrematureReclaim));
}

TEST(CheckerGc, ReclaimWithLiveTaskAboveRangeIsSilent) {
  // Task 9's cap resolves at or above shadower 5 — it reads the shadowing
  // version, never the shadowed one.
  Checker c(1);
  c.on_event(ev(EventType::kTaskCreated, 0, 0, 9, 0));
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  c.on_event(ev(EventType::kVersionStore, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockShadowed, 0, 100, 5, 7));
  c.on_event(ev(EventType::kBlockPending, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockFreed, 0, 100, 3, 7));
  EXPECT_FALSE(has(c, Invariant::kPrematureReclaim));
}

TEST(CheckerGc, ReclaimAfterOlderTasksFinishIsSilent) {
  Checker c(1);
  c.on_event(ev(EventType::kTaskCreated, 0, 0, 2, 0));
  c.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 7));
  c.on_event(ev(EventType::kVersionStore, 0, 100, 3, 7));
  c.on_event(ev(EventType::kBlockShadowed, 0, 100, 5, 7));
  c.on_event(ev(EventType::kBlockPending, 0, 100, 3, 7));
  c.on_event(isa(OpCode::kTaskBegin, 0, 2));
  c.on_event(isa(OpCode::kTaskEnd, 0, 2));  // task 2 retires first
  c.on_event(ev(EventType::kBlockFreed, 0, 100, 3, 7));
  EXPECT_FALSE(has(c, Invariant::kPrematureReclaim));
  EXPECT_TRUE(c.clean());
}

// ---------------------------------------------------------------------------
// Lock discipline

TEST(CheckerLocks, ReleaseOfNeverLockedVersionFlagged) {
  Checker c(1);
  c.on_event(ev(EventType::kLockRelease, 0, 100, 5, 10));
  EXPECT_TRUE(has(c, Invariant::kUnlockWithoutLock));
}

TEST(CheckerLocks, SecondReleaseIsADoubleUnlock) {
  Checker c(1);
  c.on_event(ev(EventType::kLockAcquire, 0, 100, 5, 10));
  c.on_event(ev(EventType::kLockRelease, 0, 100, 5, 10));
  c.on_event(ev(EventType::kLockRelease, 0, 100, 5, 10));
  EXPECT_TRUE(has(c, Invariant::kDoubleUnlock));
  EXPECT_FALSE(has(c, Invariant::kUnlockWithoutLock));
}

TEST(CheckerLocks, AcquireOfHeldLockFlagged) {
  Checker c(2);
  c.on_event(ev(EventType::kLockAcquire, 0, 100, 5, 10));
  c.on_event(ev(EventType::kLockAcquire, 1, 100, 5, 12));
  EXPECT_TRUE(has(c, Invariant::kDoubleAcquire));
}

TEST(CheckerLocks, LockHeldAcrossTaskEndFlagged) {
  Checker c(1);
  c.on_event(isa(OpCode::kTaskBegin, 0, 10));
  c.on_event(ev(EventType::kLockAcquire, 0, 100, 5, 10));
  c.on_event(isa(OpCode::kTaskEnd, 0, 10));
  EXPECT_TRUE(has(c, Invariant::kLockHeldAtTaskEnd));
}

TEST(CheckerLocks, OppositeNestingOrdersAreACycleWarning) {
  Checker c(1);
  c.on_event(isa(OpCode::kTaskBegin, 0, 10));
  c.on_event(ev(EventType::kLockAcquire, 0, 1, 1, 10));
  c.on_event(ev(EventType::kLockAcquire, 0, 2, 1, 10));  // order 1 -> 2
  c.on_event(ev(EventType::kLockRelease, 0, 2, 1, 10));
  c.on_event(ev(EventType::kLockRelease, 0, 1, 1, 10));
  c.on_event(ev(EventType::kLockAcquire, 0, 2, 2, 10));
  c.on_event(ev(EventType::kLockAcquire, 0, 1, 2, 10));  // order 2 -> 1
  EXPECT_TRUE(has(c, Invariant::kLockOrderCycle));
  EXPECT_TRUE(c.clean());  // advisory: a cycle is a hazard, not a failure
  EXPECT_GT(c.warning_count(), 0u);
}

TEST(CheckerLocks, FinishFlagsLocksHeldAtEndOfRun) {
  Checker c(1);
  c.on_event(ev(EventType::kLockAcquire, 0, 100, 5, 10));
  c.finish();
  EXPECT_TRUE(has(c, Invariant::kLockHeldAtTaskEnd));
  const std::uint64_t errors = c.error_count();
  c.finish();  // idempotent
  EXPECT_EQ(c.error_count(), errors);
}

TEST(CheckerTasks, FinishWarnsAboutNeverEndedTasks) {
  Checker c(1);
  c.on_event(ev(EventType::kTaskCreated, 0, 0, 9, 0));
  c.finish();
  EXPECT_TRUE(has(c, Invariant::kTaskPairing));
  EXPECT_TRUE(c.clean());  // warning severity
}

// ---------------------------------------------------------------------------
// Options: strict mode and the findings cap

TEST(CheckerOptionsTest, StrictPromotesWarningsToErrors) {
  CheckerOptions opt;
  opt.strict = true;
  Checker c(1, opt);
  c.on_event(ev(EventType::kTaskCreated, 0, 0, 9, 0));
  c.finish();  // never-ended task: a warning, but strict counts it
  EXPECT_GT(c.error_count(), 0u);
  EXPECT_FALSE(c.clean());
}

TEST(CheckerOptionsTest, FindingsPastTheCapAreCountedNotKept) {
  CheckerOptions opt;
  opt.max_findings = 2;
  Checker c(1, opt);
  for (int i = 0; i < 5; ++i) {
    c.on_event(ev(EventType::kLockRelease, 0, 100, Ver(50 + i), 10));
  }
  EXPECT_EQ(c.findings().size(), 2u);
  EXPECT_EQ(c.total_findings(), 5u);
  EXPECT_EQ(c.error_count(), 5u);
}

// ---------------------------------------------------------------------------
// Whole-machine integration (Env with check_mode on)

MachineConfig cfg(int cores, int check_mode) {
  MachineConfig c;
  c.num_cores = cores;
  c.ostruct.check_mode = check_mode;
  return c;
}

DsSpec small_spec() {
  DsSpec s;
  s.initial_size = 100;
  s.ops = 80;
  s.reads_per_write = 4;
  s.seed = 99;
  return s;
}

TEST(CheckerIntegration, CleanRunIsSilentAndBitIdentical) {
  const DsSpec spec = small_spec();
  Env plain(cfg(4, 0));
  const RunResult base = linked_list_versioned(plain, spec, 4);
  EXPECT_EQ(plain.checker(), nullptr);

  Env checked(cfg(4, 1));
  const RunResult r = linked_list_versioned(checked, spec, 4);
  ASSERT_NE(checked.checker(), nullptr);
  checked.checker()->finish();
  for (const Finding& f : checked.checker()->findings()) {
    ADD_FAILURE() << to_string(f);
  }
  EXPECT_EQ(checked.checker()->total_findings(), 0u);
  // Checking charges no simulated cycles: results are bit-identical.
  EXPECT_EQ(r.cycles, base.cycles);
  EXPECT_EQ(r.checksum, base.checksum);
}

TEST(CheckerIntegration, StrictCleanRunStillSilent) {
  Env env(cfg(2, 2));
  const DsSpec spec = small_spec();
  linked_list_versioned(env, spec, 2);
  ASSERT_NE(env.checker(), nullptr);
  env.checker()->finish();
  EXPECT_EQ(env.checker()->total_findings(), 0u);
  EXPECT_TRUE(env.checker()->clean());
}

TEST(CheckerIntegration, OsmDoubleUnlockFaultsAndIsFlagged) {
  Env env(cfg(1, 1));
  OStructureManager& o = env.osm();
  const OAddr a = o.alloc();
  env.spawn(0, [&] {
    o.store_version(a, 1, 42);
    o.lock_load_version(a, 1, 5);
    o.unlock_version(a, 1, 5);
    o.unlock_version(a, 1, 5);  // faults: not the lock owner any more
  });
  EXPECT_THROW(env.run(), SimError);
  ASSERT_NE(env.checker(), nullptr);
  EXPECT_TRUE(has(*env.checker(), Invariant::kDoubleUnlock));
}

TEST(CheckerIntegration, OsmUnlockOfNeverLockedVersionFlagged) {
  Env env(cfg(1, 1));
  OStructureManager& o = env.osm();
  const OAddr a = o.alloc();
  env.spawn(0, [&] {
    o.store_version(a, 1, 42);
    o.unlock_version(a, 1, 5);  // faults: version was never locked
  });
  EXPECT_THROW(env.run(), SimError);
  ASSERT_NE(env.checker(), nullptr);
  EXPECT_TRUE(has(*env.checker(), Invariant::kUnlockWithoutLock));
}

TEST(CheckerIntegration, OsmLockHeldAcrossTaskEndFlaggedWithoutFault) {
  // The hardware does not fault on this (no such rule in the ISA), which
  // is exactly why the checker exists: the lock leaks past the task.
  Env env(cfg(1, 1));
  OStructureManager& o = env.osm();
  const OAddr a = o.alloc();
  env.spawn(0, [&] {
    o.store_version(a, 1, 42);
    o.task_begin(5);
    o.lock_load_version(a, 1, 5);
    o.task_end(5);  // lock on (a, 1) still held
  });
  env.run();  // completes without fault
  ASSERT_NE(env.checker(), nullptr);
  EXPECT_TRUE(has(*env.checker(), Invariant::kLockHeldAtTaskEnd));
}

TEST(CheckerIntegration, OsmCleanLockedRunIsSilent) {
  Env env(cfg(1, 1));
  OStructureManager& o = env.osm();
  const OAddr a = o.alloc();
  env.spawn(0, [&] {
    o.store_version(a, 1, 42);
    o.task_begin(5);
    o.lock_load_version(a, 1, 5);
    o.unlock_version(a, 1, 5);
    o.task_end(5);
  });
  env.run();
  ASSERT_NE(env.checker(), nullptr);
  env.checker()->finish();
  EXPECT_EQ(env.checker()->total_findings(), 0u);
}

// ---------------------------------------------------------------------------
// Static front end

VOp vop(OpCode op, Addr addr, Ver version, TaskId task = 0, Ver cap = 0) {
  VOp v;
  v.op = op;
  v.addr = addr;
  v.version = version;
  v.cap = cap;
  v.task = task;
  return v;
}

bool shas(const std::vector<Finding>& fs, Invariant inv, Severity sev) {
  for (const Finding& f : fs) {
    if (f.invariant == inv && f.severity == sev) return true;
  }
  return false;
}

TEST(StaticCheck, WawToTheSameVersionFlagged) {
  const auto fs = static_check({
      vop(OpCode::kStoreVersion, 1, 5),
      vop(OpCode::kStoreVersion, 1, 5),
  });
  EXPECT_TRUE(shas(fs, Invariant::kWawSameVersion, Severity::kError));
}

TEST(StaticCheck, RenameToAnExistingVersionFlagged) {
  std::vector<VOp> ops{
      vop(OpCode::kStoreVersion, 1, 5),
      vop(OpCode::kLockLoadVersion, 1, 5, 7),
      vop(OpCode::kUnlockVersion, 1, 5, 7),
  };
  ops.back().rename_to = 5;  // renames onto itself
  const auto fs = static_check(ops);
  EXPECT_TRUE(shas(fs, Invariant::kWawSameVersion, Severity::kError));
}

TEST(StaticCheck, ReadOfNeverWrittenVersionIsAnError) {
  const auto fs = static_check({vop(OpCode::kLoadVersion, 1, 9)});
  EXPECT_TRUE(shas(fs, Invariant::kReadNeverWritten, Severity::kError));
}

TEST(StaticCheck, ForwardReadIsOnlyAWarning) {
  const auto fs = static_check({
      vop(OpCode::kLoadVersion, 1, 5),
      vop(OpCode::kStoreVersion, 1, 5),
  });
  EXPECT_TRUE(shas(fs, Invariant::kReadNeverWritten, Severity::kWarning));
  EXPECT_FALSE(shas(fs, Invariant::kReadNeverWritten, Severity::kError));
}

TEST(StaticCheck, UnsatisfiableLoadLatestIsAnError) {
  const auto fs = static_check({
      vop(OpCode::kStoreVersion, 1, 10),
      vop(OpCode::kLoadLatest, 1, 0, 0, /*cap=*/5),  // only v10 ever exists
  });
  EXPECT_TRUE(shas(fs, Invariant::kReadNeverWritten, Severity::kError));
}

TEST(StaticCheck, TaskPairingViolationsFlagged) {
  EXPECT_TRUE(shas(static_check({
                       vop(OpCode::kTaskBegin, 0, 2, 2),
                       vop(OpCode::kTaskBegin, 0, 2, 2),
                   }),
                   Invariant::kTaskPairing, Severity::kError));
  EXPECT_TRUE(shas(static_check({vop(OpCode::kTaskEnd, 0, 2, 2)}),
                   Invariant::kTaskPairing, Severity::kError));
  EXPECT_TRUE(shas(static_check({vop(OpCode::kTaskBegin, 0, 2, 2)}),
                   Invariant::kTaskPairing, Severity::kError));
}

TEST(StaticCheck, GeneratedRootProtocolStreamIsClean) {
  DsSpec s;
  s.initial_size = 50;
  s.ops = 120;
  s.reads_per_write = 2;
  s.seed = 7;
  const auto fs = static_check(root_protocol_stream(s));
  for (const Finding& f : fs) ADD_FAILURE() << to_string(f);
  EXPECT_TRUE(fs.empty());
}

// ---------------------------------------------------------------------------
// FileSink error reporting (the trace files the offline checker consumes)

TEST(FileSinkErrors, UnopenablePathThrows) {
  EXPECT_THROW(telemetry::FileSink("/nonexistent-dir/trace.bin"),
               std::runtime_error);
}

TEST(FileSinkErrors, FullDeviceLatchesErrorAndFlushThrows) {
  telemetry::FileSink sink("/dev/full");
  for (int i = 0; i < 4096; ++i) {  // overflow stdio buffering
    sink.on_event(ev(EventType::kBlockAlloc, 0, 0, 0, 1));
  }
  EXPECT_THROW(sink.flush(), std::runtime_error);
  EXPECT_TRUE(sink.failed());
  EXPECT_NE(sink.error().find("trace"), std::string::npos);
}

TEST(FileSinkErrors, InjectedShortWritePersistsPrefixAndLatchesOnce) {
  // An injected short write behaves like a real torn device write: half a
  // record lands on disk, the sink latches its first failure, and a reader
  // of the reopened file sees only the complete records before the tear.
  const std::string path = ::testing::TempDir() + "osim_short_write.trace";
  FaultInjector inj(FaultPlan::parse("trace-short@3"));
  {
    telemetry::FileSink sink(path);
    sink.set_fault_hook(&inj);
    for (Ver v = 1; v <= 5; ++v) {
      sink.on_event(ev(EventType::kVersionStore, 0, 8, v, 0));
    }
    EXPECT_TRUE(sink.failed());
    EXPECT_NE(sink.error().find("injected short write"), std::string::npos)
        << sink.error();
    // Only the first failure is kept, and flush keeps reporting it.
    const std::string first = sink.error();
    sink.on_event(ev(EventType::kVersionStore, 0, 8, 6, 0));
    EXPECT_EQ(sink.error(), first);
    EXPECT_THROW(sink.flush(), std::runtime_error);
  }
  // Records 1 and 2 are whole; record 3 is a truncated tail the reader
  // must stop at; 4..6 were dropped after the latch.
  const auto events = telemetry::read_trace_file(path);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].version, 1u);
  EXPECT_EQ(events[1].version, 2u);
  std::remove(path.c_str());
}

TEST(FileSinkErrors, InjectedEnospcLatchesWithoutTouchingTheFile) {
  const std::string path = ::testing::TempDir() + "osim_enospc.trace";
  FaultInjector inj(FaultPlan::parse("trace-enospc@2"));
  {
    telemetry::FileSink sink(path);
    sink.set_fault_hook(&inj);
    for (Ver v = 1; v <= 3; ++v) {
      sink.on_event(ev(EventType::kVersionStore, 0, 8, v, 0));
    }
    EXPECT_TRUE(sink.failed());
    EXPECT_NE(sink.error().find("record write"), std::string::npos)
        << sink.error();
    EXPECT_NE(sink.error().find("No space left on device"), std::string::npos)
        << sink.error();
    EXPECT_THROW(sink.flush(), std::runtime_error);
  }
  // Unlike the short write, ENOSPC left no partial record: the reopened
  // file holds exactly the one record written before the fault.
  const auto events = telemetry::read_trace_file(path);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].version, 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace osim::analysis
