// Tests for the architectural trace (core/isa.hpp).
#include <gtest/gtest.h>

#include "core/ostructure_manager.hpp"

namespace osim {
namespace {

MachineConfig traced_cfg(std::size_t capacity) {
  MachineConfig c;
  c.num_cores = 1;
  c.ostruct.trace_capacity = capacity;
  return c;
}

TEST(OpTrace, DisabledByDefault) {
  MachineConfig c;
  c.num_cores = 1;
  Machine m(c);
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    o.store_version(a, 1, 1);
    o.load_version(a, 1);
  });
  m.run();
  EXPECT_FALSE(o.trace().enabled());
  EXPECT_EQ(o.trace().total_recorded(), 0u);
}

TEST(OpTrace, RecordsOpsInIssueOrder) {
  Machine m(traced_cfg(64));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    o.task_begin(3);
    o.store_version(a, 3, 30);
    o.load_version(a, 3);
    o.load_latest(a, 99);
    o.lock_load_version(a, 3, 3);
    o.unlock_version(a, 3, 3, Ver{4});
    o.task_end(3);
  });
  m.run();
  const auto t = o.trace().snapshot();
  ASSERT_EQ(t.size(), 7u);
  EXPECT_EQ(t[0].op, OpCode::kTaskBegin);
  EXPECT_EQ(t[1].op, OpCode::kStoreVersion);
  EXPECT_EQ(t[2].op, OpCode::kLoadVersion);
  EXPECT_EQ(t[3].op, OpCode::kLoadLatest);
  EXPECT_EQ(t[4].op, OpCode::kLockLoadVersion);
  EXPECT_EQ(t[5].op, OpCode::kUnlockVersion);
  EXPECT_EQ(t[6].op, OpCode::kTaskEnd);
  EXPECT_EQ(t[1].addr, a);
  EXPECT_EQ(t[1].version, 3u);
  EXPECT_EQ(t[3].version, 99u);  // the cap argument
  // Timestamps are monotone on one core.
  for (std::size_t i = 1; i < t.size(); ++i) {
    EXPECT_GE(t[i].time, t[i - 1].time);
  }
}

TEST(OpTrace, RingKeepsOnlyNewest) {
  Machine m(traced_cfg(4));
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] {
    for (Ver v = 1; v <= 10; ++v) o.store_version(a, v, v);
  });
  m.run();
  EXPECT_EQ(o.trace().total_recorded(), 10u);
  const auto t = o.trace().snapshot();
  ASSERT_EQ(t.size(), 4u);
  // The four newest stores: versions 7..10, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(t[i].version, 7 + i);
  }
}

TEST(OpTrace, StalledOpRecordedOnceAtIssue) {
  MachineConfig c = traced_cfg(16);
  c.num_cores = 2;
  Machine m(c);
  OStructureManager o(m);
  const OAddr a = o.alloc();
  m.spawn(0, [&] { o.load_version(a, 1); });  // stalls, then retries
  m.spawn(1, [&] {
    mach().advance(2000);
    o.store_version(a, 1, 5);
  });
  m.run();
  const auto t = o.trace().snapshot();
  int loads = 0;
  for (const auto& r : t) {
    if (r.op == OpCode::kLoadVersion) ++loads;
  }
  EXPECT_EQ(loads, 1);  // retries do not duplicate the record
}

TEST(OpTrace, OpCodeNamesAreStable) {
  // All 8 opcodes: to_string has no silent fall-through (unknown values
  // assert in debug builds), so every enumerator must map to its name.
  static_assert(kNumOpCodes == 8);
  EXPECT_STREQ(to_string(OpCode::kLoadVersion), "LOAD-VERSION");
  EXPECT_STREQ(to_string(OpCode::kLoadLatest), "LOAD-LATEST");
  EXPECT_STREQ(to_string(OpCode::kStoreVersion), "STORE-VERSION");
  EXPECT_STREQ(to_string(OpCode::kLockLoadVersion), "LOCK-LOAD-VERSION");
  EXPECT_STREQ(to_string(OpCode::kLockLoadLatest), "LOCK-LOAD-LATEST");
  EXPECT_STREQ(to_string(OpCode::kUnlockVersion), "UNLOCK-VERSION");
  EXPECT_STREQ(to_string(OpCode::kTaskBegin), "TASK-BEGIN");
  EXPECT_STREQ(to_string(OpCode::kTaskEnd), "TASK-END");
}

TEST(OpTrace, ConfigRingSeesOnlyIsaOpsExtraSinkSeesLifecycle) {
  // The config-enabled ring keeps the classic ISA-op trace; a full-mask
  // sink attached to the same tracer additionally sees lifecycle events.
  Machine m(traced_cfg(64));
  OStructureManager o(m);
  telemetry::RingSink all(64, telemetry::kAllEvents);
  o.tracer().attach(&all);
  const OAddr a = o.alloc();
  m.spawn(0, [&] { o.store_version(a, 1, 10); });
  m.run();
  for (const auto& e : o.trace().snapshot()) {
    EXPECT_EQ(e.type, telemetry::EventType::kIsaOp);
  }
  bool saw_alloc = false, saw_store = false;
  for (const auto& e : all.snapshot()) {
    saw_alloc |= e.type == telemetry::EventType::kBlockAlloc;
    saw_store |= e.type == telemetry::EventType::kVersionStore;
  }
  EXPECT_TRUE(saw_alloc);
  EXPECT_TRUE(saw_store);
  EXPECT_GT(all.total_recorded(), o.trace().total_recorded());
}

}  // namespace
}  // namespace osim
