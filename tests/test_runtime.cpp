// Tests for the runtime layer: Env timed accesses, versioned<T>, the task
// runtime, and the simulated read-write lock.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "runtime/env.hpp"
#include "runtime/rwlock.hpp"
#include "runtime/task.hpp"
#include "runtime/versioned.hpp"

namespace osim {
namespace {

MachineConfig cfg(int cores) {
  MachineConfig c;
  c.num_cores = cores;
  return c;
}

TEST(Env, TimedLoadStoreRoundTrip) {
  Env env(cfg(1));
  int value = 0;
  env.run_sequential([&] {
    env.st(value, 41);
    EXPECT_EQ(env.ld(value), 41);
    value = 7;  // host mutation outside the model is visible too
    EXPECT_EQ(env.ld(value), 7);
  });
  EXPECT_GT(env.stats().core[0].stores, 0u);
  EXPECT_GT(env.stats().core[0].loads, 0u);
}

TEST(Env, ConventionalAccessToVersionedSlotFaults) {
  Env env(cfg(1));
  const OAddr a = env.osm().alloc();
  env.spawn(0, [&] {
    // Simulates a plain LOAD aimed at a versioned page.
    env.osm().check_conventional(a);
  });
  EXPECT_THROW(env.run(), SimError);
}

TEST(Versioned, IntRoundTrip) {
  Env env(cfg(1));
  env.run_sequential([&] {
    versioned<int> v(env);
    v.store_ver(-5, 1);
    EXPECT_EQ(v.load_ver(1), -5);
    v.store_ver(17, 3);
    EXPECT_EQ(v.load_latest(99), 17);
  });
}

TEST(Versioned, PointerRoundTrip) {
  Env env(cfg(1));
  int x = 0, y = 0;
  env.run_sequential([&] {
    versioned<int*> p(env);
    p.store_ver(&x, 1);
    p.store_ver(&y, 2);
    EXPECT_EQ(p.load_ver(1), &x);
    EXPECT_EQ(p.load_ver(2), &y);
    EXPECT_EQ(p.load_latest(100), &y);
    p.store_ver(nullptr, 3);
    EXPECT_EQ(p.load_latest(100), nullptr);
  });
}

TEST(Versioned, DoubleRoundTrip) {
  Env env(cfg(1));
  env.run_sequential([&] {
    versioned<double> d(env);
    d.store_ver(3.25, 1);
    EXPECT_DOUBLE_EQ(d.load_ver(1), 3.25);
  });
}

TEST(Versioned, LockUnlockRename) {
  Env env(cfg(1));
  env.run_sequential([&] {
    versioned<int> v(env);
    v.store_ver(10, 1);
    EXPECT_EQ(v.lock_load_ver(1, /*locker=*/1), 10);
    v.unlock_ver(1, 1, /*rename_to=*/Ver{2});
    EXPECT_EQ(v.load_ver(2), 10);
  });
}

TEST(Versioned, FreeReturnsSlot) {
  Env env(cfg(1));
  versioned<int> v(env);
  const OAddr a = v.addr();
  v.free();
  EXPECT_FALSE(env.osm().is_versioned_addr(a));
}

TEST(TaskRuntime, TasksRunInIdOrderPerWorker) {
  Env env(cfg(4));
  TaskRuntime rt(env, 4);
  std::vector<TaskId> done;
  for (TaskId t = 1; t <= 16; ++t) {
    rt.create_task(t, [&done](TaskId tid) {
      mach().exec(10);
      done.push_back(tid);
    });
  }
  rt.run();
  ASSERT_EQ(done.size(), 16u);
  // Per worker (tid mod 4), tasks must appear in increasing order.
  for (int w = 0; w < 4; ++w) {
    TaskId last = 0;
    for (TaskId t : done) {
      if (t % 4 == static_cast<TaskId>(w)) {
        EXPECT_GT(t, last);
        last = t;
      }
    }
  }
  EXPECT_EQ(env.stats().total().tasks_executed, 16u);
}

TEST(TaskRuntime, TaskIdsDriveVersionPipelining) {
  // The canonical O-structure pattern: each task stores version tid and
  // loads version tid-1, so tasks form a pipeline across cores regardless
  // of which core runs which task.
  Env env(cfg(4));
  versioned<std::uint64_t> chain(env);
  TaskRuntime rt(env, 4);
  std::vector<std::uint64_t> seen(17, 0);
  rt.create_task(1, [&](TaskId tid) { chain.store_ver(1, tid); });
  for (TaskId t = 2; t <= 16; ++t) {
    rt.create_task(t, [&](TaskId tid) {
      const std::uint64_t prev = chain.load_ver(tid - 1);
      seen[tid] = prev;
      chain.store_ver(prev + 1, tid);
    });
  }
  rt.run();
  for (TaskId t = 2; t <= 16; ++t) EXPECT_EQ(seen[t], t - 1);
}

TEST(TaskRuntime, GcSeesTaskWindow) {
  Env env(cfg(2));
  TaskRuntime rt(env, 2);
  versioned<std::uint64_t> v(env);
  for (TaskId t = 1; t <= 8; ++t) {
    rt.create_task(t, [&](TaskId tid) { v.store_ver(tid, tid); });
  }
  rt.run();
  EXPECT_EQ(env.stats().shadowed_blocks, 7u);  // each store shadows the last
  EXPECT_EQ(env.osm().gc().unfinished_tasks(), 0u);
}

TEST(SimRWLock, WriterExcludesReaders) {
  Env env(cfg(2));
  SimRWLock lock(env);
  Cycles reader_entered = 0;
  env.spawn(0, [&] {
    lock.lock();
    mach().advance(10000);
    lock.unlock();
  });
  env.spawn(1, [&] {
    mach().advance(100);
    lock.lock_shared();
    reader_entered = mach().now();
    lock.unlock_shared();
  });
  env.run();
  EXPECT_GT(reader_entered, 10000u);
}

TEST(SimRWLock, ReadersShareConcurrently) {
  Env env(cfg(4));
  SimRWLock lock(env);
  int peak = 0;
  for (CoreId c = 0; c < 4; ++c) {
    env.spawn(c, [&] {
      lock.lock_shared();
      peak = std::max(peak, lock.readers());
      mach().advance(1000);
      lock.unlock_shared();
    });
  }
  env.run();
  EXPECT_EQ(peak, 4);
}

TEST(SimRWLock, WriterPreferenceBlocksNewReaders) {
  Env env(cfg(3));
  SimRWLock lock(env);
  Cycles late_reader = 0, writer_done = 0;
  env.spawn(0, [&] {  // long-running reader
    lock.lock_shared();
    mach().advance(5000);
    lock.unlock_shared();
  });
  env.spawn(1, [&] {  // writer arrives while the reader holds the lock
    mach().advance(100);
    lock.lock();
    writer_done = mach().now();
    lock.unlock();
  });
  env.spawn(2, [&] {  // reader arriving after the writer queued must wait
    mach().advance(200);
    lock.lock_shared();
    late_reader = mach().now();
    lock.unlock_shared();
  });
  env.run();
  EXPECT_GT(writer_done, 5000u);
  EXPECT_GT(late_reader, writer_done);
}

TEST(SimRWLock, ManyWritersSerialize) {
  Env env(cfg(8));
  SimRWLock lock(env);
  int counter = 0;
  for (CoreId c = 0; c < 8; ++c) {
    env.spawn(c, [&] {
      for (int i = 0; i < 10; ++i) {
        lock.lock();
        counter++;
        mach().advance(50);
        lock.unlock();
      }
    });
  }
  env.run();
  EXPECT_EQ(counter, 80);
}

}  // namespace
}  // namespace osim
