// Correctness under every configuration variant: whatever the timing knobs
// (compression off, pollution-avoidance off, in-place compressed updates,
// unsorted lists, tiny GC-pressured pools, injected latencies), the
// parallel versioned execution must still produce exactly the sequential
// baseline's results. Timing models must never leak into semantics.
#include <gtest/gtest.h>

#include <string>

#include "workloads/binary_tree.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/opgen.hpp"

namespace osim {
namespace {

DsSpec spec_small() {
  DsSpec s;
  s.initial_size = 150;
  s.ops = 120;
  s.reads_per_write = 2;
  s.seed = 77;
  return s;
}

struct Variant {
  const char* name;
  void (*apply)(MachineConfig&);
};

const Variant kVariants[] = {
    {"baseline", [](MachineConfig&) {}},
    {"no_compression",
     [](MachineConfig& c) { c.ostruct.enable_compression = false; }},
    {"no_pollution_avoidance",
     [](MachineConfig& c) { c.ostruct.pollution_avoidance = false; }},
    {"inplace_comp_update",
     [](MachineConfig& c) { c.ostruct.inplace_comp_update = true; }},
    {"unsorted_lists",
     [](MachineConfig& c) { c.ostruct.sorted_lists = false; }},
    {"tiny_pool_gc_pressure",
     [](MachineConfig& c) {
       c.ostruct.initial_pool_blocks = 128;
       c.ostruct.trap_grow_blocks = 64;
       c.ostruct.gc_watermark = 64;
     }},
    {"injected_latency_10",
     [](MachineConfig& c) { c.ostruct.injected_latency = 10; }},
    {"tiny_l1",
     [](MachineConfig& c) { c.l1.size_bytes = 8 * 1024; }},
};

class ConfigVariant : public ::testing::TestWithParam<Variant> {};

TEST_P(ConfigVariant, TreeResultsUnchanged) {
  const Variant& v = GetParam();
  const DsSpec spec = spec_small();
  MachineConfig seq_cfg;
  seq_cfg.num_cores = 1;
  Env seq_env(seq_cfg);
  const RunResult seq = binary_tree_sequential(seq_env, spec);

  MachineConfig par_cfg;
  par_cfg.num_cores = 8;
  v.apply(par_cfg);
  Env par_env(par_cfg);
  const RunResult par = binary_tree_versioned(par_env, spec, 8);
  EXPECT_EQ(par.checksum, seq.checksum) << v.name;
}

TEST_P(ConfigVariant, ListResultsUnchanged) {
  const Variant& v = GetParam();
  const DsSpec spec = spec_small();
  MachineConfig seq_cfg;
  seq_cfg.num_cores = 1;
  Env seq_env(seq_cfg);
  const RunResult seq = linked_list_sequential(seq_env, spec);

  MachineConfig par_cfg;
  par_cfg.num_cores = 4;
  v.apply(par_cfg);
  Env par_env(par_cfg);
  const RunResult par = linked_list_versioned(par_env, spec, 4);
  EXPECT_EQ(par.checksum, seq.checksum) << v.name;
}

INSTANTIATE_TEST_SUITE_P(AllKnobs, ConfigVariant,
                         ::testing::ValuesIn(kVariants),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

TEST(ConfigVariant, InjectedLatencyOnlySlowsDown) {
  const DsSpec spec = spec_small();
  auto run = [&](Cycles inject) {
    MachineConfig c;
    c.num_cores = 4;
    c.ostruct.injected_latency = inject;
    Env env(c);
    return binary_tree_versioned(env, spec, 4);
  };
  const RunResult base = run(0);
  const RunResult slow = run(10);
  EXPECT_EQ(base.checksum, slow.checksum);
  EXPECT_GT(slow.cycles, base.cycles);
}

TEST(ConfigVariant, GcPressureChangesTimingNotResults) {
  const DsSpec spec = spec_small();
  auto run = [&](std::size_t pool, std::size_t watermark) {
    MachineConfig c;
    c.num_cores = 4;
    c.ostruct.initial_pool_blocks = pool;
    c.ostruct.trap_grow_blocks = 64;
    c.ostruct.gc_watermark = watermark;
    Env env(c);
    const RunResult r = linked_list_versioned(env, spec, 4);
    EXPECT_EQ(env.stats().blocks_allocated - env.stats().blocks_freed,
              static_cast<std::uint64_t>(env.stats().blocks_allocated) -
                  env.stats().blocks_freed);
    return r;
  };
  const RunResult ample = run(1 << 20, 0);
  const RunResult tight = run(160, 96);
  EXPECT_EQ(ample.checksum, tight.checksum);
}

}  // namespace
}  // namespace osim
