// VersionEngine conformance suite: ONE scripted op stream, executed purely
// through the facade's batched execute(), across the full engine matrix
//   {serial timed, serial functional, concurrent}
//     x {--gc=paper, --gc=bounded}
//     x {--inject "" (detached), --inject none (attached-but-inert)}
// Every cell must produce byte-equal observables: the Results record
// (reads, found, fault multiset), its checksum, and the final
// latest-version map read back through the same facade. Only clocks may
// differ. Concurrent cells carry "Concurrent" in the suite name so the
// sanitizer harness can select them (tools/run-sanitizers.sh).
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/concurrent_store.hpp"
#include "core/version_engine.hpp"
#include "runtime/concurrent.hpp"
#include "runtime/env.hpp"

namespace osim {
namespace {

using Op = VersionEngine::Op;

constexpr std::size_t kSlots = 4;
constexpr Ver kCap = 1000;  // above every version the program publishes

Op store(Addr a, Ver v, std::uint64_t d) {
  Op o;
  o.op = OpCode::kStoreVersion;
  o.addr = a;
  o.version = v;
  o.data = d;
  return o;
}
Op load(Addr a, Ver v) {
  Op o;
  o.op = OpCode::kLoadVersion;
  o.addr = a;
  o.version = v;
  return o;
}
Op latest(Addr a, Ver cap) {
  Op o;
  o.op = OpCode::kLoadLatest;
  o.addr = a;
  o.cap = cap;
  return o;
}
Op lock(Addr a, Ver v, TaskId t) {
  Op o;
  o.op = OpCode::kLockLoadVersion;
  o.addr = a;
  o.version = v;
  o.task = t;
  return o;
}
Op lock_latest(Addr a, Ver cap, TaskId t) {
  Op o;
  o.op = OpCode::kLockLoadLatest;
  o.addr = a;
  o.cap = cap;
  o.task = t;
  return o;
}
Op unlock(Addr a, Ver v, TaskId t, std::optional<Ver> rename = {}) {
  Op o;
  o.op = OpCode::kUnlockVersion;
  o.addr = a;
  o.version = v;
  o.task = t;
  o.rename_to = rename;
  return o;
}
Op begin(TaskId t) {
  Op o;
  o.op = OpCode::kTaskBegin;
  o.task = t;
  return o;
}
Op end(TaskId t) {
  Op o;
  o.op = OpCode::kTaskEnd;
  o.task = t;
  return o;
}

// The scripted stream. Strictly sequential (single driver thread), every
// exact load targets an already-published version, so no op ever blocks
// and the observable outcome is engine-independent by construction. Task 3
// commits three deliberate faults — duplicate store, versioned op outside
// the allocation, unlock by a non-owner — which batched execute() records
// and skips (catch-per-op-and-continue).
std::vector<Op> conformance_program(OAddr base) {
  auto slot = [base](std::size_t s) {
    return base + 8 * static_cast<OAddr>(s);
  };
  return {
      begin(1),
      store(slot(0), 1, 101),
      store(slot(1), 1, 102),
      store(slot(2), 1, 103),
      end(1),

      begin(2),
      load(slot(0), 1),              // 101
      latest(slot(1), kCap),         // 102, found 1
      store(slot(0), 2, 201),        // shadows version 1
      lock(slot(1), 1, 2),           // 102
      unlock(slot(1), 1, 2, Ver{7}), // rename: version 7 aliases the block
      load(slot(1), 7),              // 102
      lock_latest(slot(0), kCap, 2), // 201, found 2
      unlock(slot(0), 2, 2),
      end(2),

      begin(3),
      store(slot(2), 3, 301),
      store(slot(2), 3, 999),                      // fault: duplicate
      load(base + 8 * (kSlots + 100), 1),          // fault: not versioned
      unlock(slot(0), 2, 3),                       // fault: not lock owner
      latest(slot(2), kCap),                       // 301, found 3
      end(3),
  };
}

struct RunOut {
  VersionEngine::Results res;
  /// newest version + its value per slot, read back through the facade.
  std::vector<std::pair<std::optional<Ver>, std::optional<std::uint64_t>>>
      latest;

  bool operator==(const RunOut& o) const {
    return res == o.res && res.checksum() == o.res.checksum() &&
           latest == o.latest;
  }
};

RunOut run_conformance(VersionEngine& eng) {
  const OAddr base = eng.alloc(kSlots);
  for (TaskId t = 1; t <= 3; ++t) eng.task_created(t);
  const std::vector<Op> prog = conformance_program(base);
  RunOut out;
  // Two batches, split mid-stream: Results must accumulate across calls
  // exactly as one big batch would (fault indices are per-batch, which is
  // identical on every engine since the split point is).
  const std::size_t half = prog.size() / 2;
  eng.execute(std::span<const Op>(prog.data(), half), out.res);
  eng.execute(std::span<const Op>(prog.data() + half, prog.size() - half),
              out.res);
  for (std::size_t s = 0; s < kSlots; ++s) {
    const OAddr a = base + 8 * static_cast<OAddr>(s);
    const std::optional<Ver> newest = eng.newest_version(a);
    std::optional<std::uint64_t> val;
    if (newest.has_value()) val = eng.peek_version(a, *newest);
    out.latest.emplace_back(newest, val);
  }
  return out;
}

RunOut run_serial(BackendKind backend, GcPolicyKind gc,
                  const std::string& inject) {
  MachineConfig cfg;
  cfg.num_cores = 2;
  cfg.backend = backend;
  cfg.ostruct.gc_policy = gc;
  cfg.ostruct.inject_spec = inject;
  Env env(cfg);
  RunOut out;
  if (env.timed()) {
    // The cycle-accurate machine charges ops to the running core's fiber,
    // so the program executes inside one spawned core-0 fiber (nothing in
    // the stream blocks, so a single fiber always runs to completion).
    env.spawn(0, [&] { out = run_conformance(env.engine()); });
    env.run();
  } else {
    out = run_conformance(env.engine());
  }
  return out;
}

RunOut run_concurrent(GcPolicyKind gc, const std::string& inject) {
  ConcurrencyConfig cfg;
  cfg.gc_policy = gc;
  cfg.inject_spec = inject;
  ConcurrentVersionStore store(cfg);
  return run_conformance(store);
}

/// The reference cell every other cell is diffed against.
RunOut reference() {
  return run_serial(BackendKind::kTimed, GcPolicyKind::kPaper, "");
}

std::string cell_name(const char* engine, GcPolicyKind gc,
                      const std::string& inject) {
  return std::string(engine) + " gc=" + to_string(gc) + " inject=" +
         (inject.empty() ? "<detached>" : inject);
}

TEST(VersionEngineConformance, ReferenceObservablesAreTheScriptedOnes) {
  // Pin the reference itself so a matrix-wide regression cannot pass as
  // twelve cells agreeing on the same wrong answer.
  const RunOut ref = reference();
  // In stream order: load s0@1, latest s1, lock s1@1, load s1@7,
  // lock-latest s0, latest s2.
  const std::vector<std::uint64_t> reads = {101, 102, 102, 102, 201, 301};
  EXPECT_EQ(ref.res.reads, reads);
  const std::vector<Ver> found = {1, 2, 3};
  EXPECT_EQ(ref.res.found, found);
  ASSERT_EQ(ref.res.faults.size(), 3u);
  EXPECT_EQ(ref.res.executed,
            conformance_program(0).size() - ref.res.faults.size());
  ASSERT_EQ(ref.latest.size(), kSlots);
  EXPECT_EQ(ref.latest[0].first.value_or(0), 2u);   // shadowed 1 -> 2
  EXPECT_EQ(ref.latest[0].second.value_or(0), 201u);
  EXPECT_EQ(ref.latest[1].first.value_or(0), 7u);   // renamed 1 -> 7
  EXPECT_EQ(ref.latest[1].second.value_or(0), 102u);
  EXPECT_EQ(ref.latest[2].first.value_or(0), 3u);
  EXPECT_EQ(ref.latest[2].second.value_or(0), 301u);
  EXPECT_FALSE(ref.latest[3].first.has_value());    // never stored
}

TEST(VersionEngineConformance, SerialMatrixIsByteIdentical) {
  const RunOut ref = reference();
  for (const BackendKind b : {BackendKind::kTimed, BackendKind::kFunctional}) {
    for (const GcPolicyKind gc :
         {GcPolicyKind::kPaper, GcPolicyKind::kBounded}) {
      for (const std::string inject : {"", "none"}) {
        const RunOut got = run_serial(b, gc, inject);
        EXPECT_TRUE(got == ref)
            << cell_name(to_string(b), gc, inject)
            << " diverged from the serial-timed/paper/detached reference";
        EXPECT_EQ(got.res.checksum(), ref.res.checksum());
      }
    }
  }
}

TEST(VersionEngineConformanceConcurrent, MatrixMatchesSerialTimed) {
  const RunOut ref = reference();
  for (const GcPolicyKind gc :
       {GcPolicyKind::kPaper, GcPolicyKind::kBounded}) {
    for (const std::string inject : {"", "none"}) {
      const RunOut got = run_concurrent(gc, inject);
      EXPECT_TRUE(got == ref)
          << cell_name("concurrent", gc, inject)
          << " diverged from the serial-timed/paper/detached reference";
      EXPECT_EQ(got.res.checksum(), ref.res.checksum());
    }
  }
}

TEST(VersionEngineConformanceConcurrent, ThreadedBatchesStayDeterminate) {
  // Real host threads (the TSan target): each pool task runs its whole
  // body as ONE execute() batch against a private slot plus a shared
  // read-only setup version. Determinate by construction, so every
  // Results record has a script-determined value.
  ConcurrencyConfig cfg;
  ConcurrentVersionStore cstore(cfg);
  constexpr int kTasks = 12;
  const OAddr base = cstore.alloc(kTasks + 1);
  const OAddr shared = base;
  cstore.store_version(shared, 1, 777);  // host-side setup

  ConcurrentTaskPool pool(cstore, 4);
  std::vector<VersionEngine::Results> res(kTasks);
  for (int t = 0; t < kTasks; ++t) {
    const TaskId tid = static_cast<TaskId>(t + 1);
    const OAddr own = base + 8 * static_cast<OAddr>(t + 1);
    pool.create_task(tid, [&cstore, &res, t, tid, own, shared](TaskId) {
      const std::vector<Op> ops = {
          store(own, static_cast<Ver>(tid),
                2000 + static_cast<std::uint64_t>(t)),
          load(own, static_cast<Ver>(tid)),
          load(shared, 1),
      };
      cstore.execute(ops, res[static_cast<std::size_t>(t)]);
    });
  }
  pool.run();

  for (int t = 0; t < kTasks; ++t) {
    const auto& r = res[static_cast<std::size_t>(t)];
    EXPECT_TRUE(r.faults.empty()) << "task " << t + 1;
    EXPECT_EQ(r.executed, 3u);
    const std::vector<std::uint64_t> want = {
        2000 + static_cast<std::uint64_t>(t), 777};
    EXPECT_EQ(r.reads, want);
  }
  EXPECT_TRUE(cstore.check_integrity().ok) << cstore.check_integrity().detail;
}

}  // namespace
}  // namespace osim
