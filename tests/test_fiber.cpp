// Unit tests for the fiber engine (custom x86-64 context switch).
#include "sim/fiber.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace osim {
namespace {

TEST(Fiber, RunsToCompletionWithoutYield) {
  int x = 0;
  Fiber f([&] { x = 42; });
  EXPECT_FALSE(f.started());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(x, 42);
}

TEST(Fiber, YieldReturnsControlToResumer) {
  std::vector<int> trace;
  Fiber f([&] {
    trace.push_back(1);
    Fiber::current()->yield();
    trace.push_back(3);
  });
  f.resume();
  trace.push_back(2);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(trace, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, MultipleYields) {
  int count = 0;
  Fiber f([&] {
    for (int i = 0; i < 100; ++i) {
      ++count;
      Fiber::current()->yield();
    }
  });
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(f.finished());
    f.resume();
    EXPECT_EQ(count, i + 1);
  }
  EXPECT_FALSE(f.finished());
  f.resume();  // runs past the loop to completion
  EXPECT_TRUE(f.finished());
}

TEST(Fiber, CurrentTracksExecutingFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f([&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, InterleavesTwoFibers) {
  std::string log;
  Fiber a([&] {
    for (int i = 0; i < 3; ++i) {
      log += 'a';
      Fiber::current()->yield();
    }
  });
  Fiber b([&] {
    for (int i = 0; i < 3; ++i) {
      log += 'b';
      Fiber::current()->yield();
    }
  });
  for (int i = 0; i < 4; ++i) {
    if (!a.finished()) a.resume();
    if (!b.finished()) b.resume();
  }
  EXPECT_TRUE(a.finished());
  EXPECT_TRUE(b.finished());
  EXPECT_EQ(log, "ababab");
}

TEST(Fiber, CalleeSavedRegistersSurviveSwitches) {
  // Force values into callee-saved registers across yields via a loop whose
  // live state the compiler keeps in registers.
  long acc = 0;
  Fiber f([&] {
    long a = 1, b = 2, c = 3, d = 4, e = 5, g = 6;
    for (int i = 0; i < 50; ++i) {
      a += b;
      b += c;
      c += d;
      d += e;
      e += g;
      g += a;
      Fiber::current()->yield();
    }
    acc = a + b + c + d + e + g;
  });
  while (!f.finished()) f.resume();
  // Reference computation on the host stack.
  long a = 1, b = 2, c = 3, d = 4, e = 5, g = 6;
  for (int i = 0; i < 50; ++i) {
    a += b;
    b += c;
    c += d;
    d += e;
    e += g;
    g += a;
  }
  EXPECT_EQ(acc, a + b + c + d + e + g);
}

TEST(Fiber, DeepStackUsage) {
  // Recurse ~1000 frames inside the fiber to exercise the private stack.
  struct Rec {
    static long go(long n) { return n == 0 ? 0 : n + go(n - 1); }
  };
  long result = 0;
  Fiber f([&] { result = Rec::go(1000); }, 512 * 1024);
  f.resume();
  EXPECT_EQ(result, 1000L * 1001 / 2);
}

TEST(Fiber, ManyFibers) {
  std::vector<std::unique_ptr<Fiber>> fibers;
  int sum = 0;
  for (int i = 0; i < 64; ++i) {
    fibers.push_back(std::make_unique<Fiber>([&sum, i] {
      Fiber::current()->yield();
      sum += i;
    }));
  }
  for (auto& f : fibers) f->resume();
  for (auto& f : fibers) f->resume();
  for (auto& f : fibers) EXPECT_TRUE(f->finished());
  EXPECT_EQ(sum, 64 * 63 / 2);
}

}  // namespace
}  // namespace osim
