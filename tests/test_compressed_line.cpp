// Unit tests for compressed version-block lines (paper bit widths).
#include "core/compressed_line.hpp"

#include <gtest/gtest.h>

namespace osim {
namespace {

CompressedLine::Entry entry(Ver v, TaskId lock = 0, std::uint64_t data = 0,
                            bool is_head = false, bool has_newer = false,
                            Ver newer = 0) {
  CompressedLine::Entry e;
  e.version = v;
  e.locked_by = lock;
  e.data = data;
  e.is_head = is_head;
  e.has_newer = has_newer;
  e.newer_version = newer;
  return e;
}

TEST(CompressedLine, InstallAndFindExact) {
  CompressedLine cl;
  EXPECT_TRUE(cl.install(entry(100, 0, 0xdead)));
  auto e = cl.find_exact(100);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->data, 0xdeadu);
  EXPECT_FALSE(cl.find_exact(101).has_value());
  EXPECT_EQ(cl.occupancy(), 1);
}

TEST(CompressedLine, RefreshInPlace) {
  CompressedLine cl;
  cl.install(entry(100, 0, 1));
  cl.install(entry(100, 0, 2));
  EXPECT_EQ(cl.occupancy(), 1);
  EXPECT_EQ(cl.find_exact(100)->data, 2u);
}

TEST(CompressedLine, EightEntriesThenLruReplacement) {
  CompressedLine cl;
  for (Ver v = 100; v < 108; ++v) EXPECT_TRUE(cl.install(entry(v)));
  EXPECT_EQ(cl.occupancy(), 8);
  // Ninth install replaces the LRU entry (version 100).
  EXPECT_TRUE(cl.install(entry(108)));
  EXPECT_EQ(cl.occupancy(), 8);
  EXPECT_FALSE(cl.find_exact(100).has_value());
  EXPECT_TRUE(cl.find_exact(108).has_value());
}

TEST(CompressedLine, VersionOutside14BitOffsetRangeRejected) {
  CompressedLine cl;
  EXPECT_TRUE(cl.install(entry(0)));  // base = 0
  EXPECT_TRUE(cl.install(entry(CompressedLine::kOffsetRange - 1)));
  EXPECT_EQ(cl.range_rejections(), 0u);
  EXPECT_FALSE(cl.install(entry(CompressedLine::kOffsetRange)));
  EXPECT_EQ(cl.range_rejections(), 1u);
}

TEST(CompressedLine, BaseIsUpper18Bits) {
  CompressedLine cl;
  const Ver v = (Ver{5} << CompressedLine::kOffsetBits) + 123;
  EXPECT_TRUE(cl.install(entry(v)));
  // Anything in [5<<14, 6<<14) fits; below does not.
  EXPECT_TRUE(cl.install(entry(Ver{5} << CompressedLine::kOffsetBits)));
  EXPECT_FALSE(
      cl.install(entry((Ver{5} << CompressedLine::kOffsetBits) - 1)));
}

TEST(CompressedLine, VersionBeyond32BitsNeverCompressible) {
  CompressedLine cl;
  EXPECT_FALSE(cl.install(entry(CompressedLine::kMaxVersion + 1)));
  EXPECT_EQ(cl.range_rejections(), 1u);
}

TEST(CompressedLine, LockerOutsideRangeRejected) {
  CompressedLine cl;
  cl.install(entry(100));
  // A locker whose id cannot be expressed relative to the base.
  EXPECT_FALSE(cl.install(entry(101, CompressedLine::kOffsetRange + 50)));
  // An in-range locker is fine.
  EXPECT_TRUE(cl.install(entry(101, 200)));
  EXPECT_EQ(cl.find_exact(101)->locked_by, 200u);
}

TEST(CompressedLine, RebaseAfterClear) {
  CompressedLine cl;
  cl.install(entry(100));
  cl.clear();
  // A far-away version becomes installable after re-basing.
  EXPECT_TRUE(cl.install(entry(1 << 20)));
}

TEST(CompressedLine, FindLatestRequiresSoundness) {
  CompressedLine cl;
  // Version 5 cached without adjacency info: cannot answer LOAD-LATEST.
  cl.install(entry(5));
  EXPECT_FALSE(cl.find_latest(10).has_value());
  // With head status it can.
  cl.install(entry(5, 0, 0, /*is_head=*/true));
  auto e = cl.find_latest(10);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->version, 5u);
  // But not if the cap is below it.
  EXPECT_FALSE(cl.find_latest(4).has_value());
}

TEST(CompressedLine, FindLatestViaAdjacency) {
  CompressedLine cl;
  // Version 5 whose next-newer neighbour is 9.
  cl.install(entry(5, 0, 0, false, /*has_newer=*/true, /*newer=*/9));
  // cap in [5, 9): sound hit.
  EXPECT_TRUE(cl.find_latest(5).has_value());
  EXPECT_TRUE(cl.find_latest(8).has_value());
  // cap >= 9: version 9 (not cached) would be the answer; must miss.
  EXPECT_FALSE(cl.find_latest(9).has_value());
  EXPECT_FALSE(cl.find_latest(100).has_value());
}

TEST(CompressedLine, OnInsertPatchesHeadAndAdjacency) {
  CompressedLine cl;
  cl.install(entry(5, 0, 0, /*is_head=*/true));
  // A new head version 9 appears.
  cl.on_insert(9, /*at_head=*/true);
  auto e = cl.find_exact(5);
  ASSERT_TRUE(e.has_value());
  EXPECT_FALSE(e->is_head);
  EXPECT_TRUE(e->has_newer);
  EXPECT_EQ(e->newer_version, 9u);
  // LOAD-LATEST(7) still sound via adjacency; (9) must now miss.
  EXPECT_TRUE(cl.find_latest(7).has_value());
  EXPECT_FALSE(cl.find_latest(9).has_value());
}

TEST(CompressedLine, OnInsertPatchesSpannedAdjacency) {
  CompressedLine cl;
  cl.install(entry(5, 0, 0, false, true, 9));
  // Version 7 inserted between 5 and 9.
  cl.on_insert(7, /*at_head=*/false);
  auto e = cl.find_exact(5);
  EXPECT_EQ(e->newer_version, 7u);
  EXPECT_TRUE(cl.find_latest(6).has_value());
  EXPECT_FALSE(cl.find_latest(7).has_value());  // 7 itself is not cached
}

TEST(CompressedLine, SetLockUpdatesAndEvictsOnOverflow) {
  CompressedLine cl;
  cl.install(entry(100));
  EXPECT_TRUE(cl.set_lock(100, 105));
  EXPECT_EQ(cl.find_exact(100)->locked_by, 105u);
  EXPECT_TRUE(cl.set_lock(100, 0));  // unlock always representable
  EXPECT_EQ(cl.find_exact(100)->locked_by, 0u);
  // Locker out of range: entry must be evicted, not mis-encoded.
  EXPECT_FALSE(cl.set_lock(100, CompressedLine::kOffsetRange * 3));
  EXPECT_FALSE(cl.find_exact(100).has_value());
  // set_lock of an uncached version is a no-op success.
  EXPECT_TRUE(cl.set_lock(42, 7));
}

TEST(CompressedLine, EraseRemovesEntry) {
  CompressedLine cl;
  cl.install(entry(100));
  cl.install(entry(101));
  cl.erase(100);
  EXPECT_FALSE(cl.find_exact(100).has_value());
  EXPECT_TRUE(cl.find_exact(101).has_value());
  EXPECT_EQ(cl.occupancy(), 1);
}

TEST(CompressedLine, StorageArithmeticMatchesPaper) {
  // 8 entries x (32b data + 14b version + 14b lock) + 18b base + 4b offset
  // = 502 bits <= 512 bits (one 64-byte line): the paper's 2x overhead for
  // 8 four-byte versions.
  constexpr int bits = CompressedLine::kEntries * (32 + 14 + 14) + 18 + 4;
  static_assert(bits <= 512);
  EXPECT_LE(bits, 512);
}

}  // namespace
}  // namespace osim
