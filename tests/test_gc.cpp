// Unit tests for the shadowed/pending/free garbage collection protocol
// (PaperWatermarkPolicy behind the GcPolicy seam).
#include "core/gc_policy.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/fault.hpp"

namespace osim {
namespace {

class GcTest : public ::testing::Test, protected GcOwner {
 protected:
  GcTest() : gc(pool, reg, *this) {}

  // GcOwner: record the reclaim and return the block to the pool, like the
  // engine's reclaim() (minus list unlinking — there are no lists here).
  void gc_reclaim(BlockIndex b) override {
    reclaimed.push_back(b);
    pool.free(b);
  }
  void gc_event(telemetry::EventType, std::uint64_t, Ver,
                std::uint64_t) override {}

  BlockIndex live_block() {
    const BlockIndex b = pool.alloc();
    EXPECT_NE(b, kNullBlock);
    return b;
  }

  std::uint64_t phases() const {
    return reg.total(telemetry::Component::kGc, "phases");
  }

  BlockPool pool{64};
  telemetry::MetricRegistry reg{1};
  std::vector<BlockIndex> reclaimed;
  PaperWatermarkPolicy gc;
};

TEST_F(GcTest, ShadowedBlockWaitsForPhase) {
  gc.task_begin(2);
  const BlockIndex b = live_block();
  gc.on_shadowed(b, /*shadower=*/2);
  EXPECT_EQ(pool[b].state, BlockState::kShadowed);
  EXPECT_EQ(gc.shadowed_size(), 1u);
  EXPECT_TRUE(reclaimed.empty());
  gc.task_end(2);
}

TEST_F(GcTest, PhaseReclaimsOnceOldReadersFinish) {
  // Task 2 stores a version that shadows task 1's; task 1 (a potential
  // reader of the shadowed version) is still unfinished.
  gc.task_begin(1);
  gc.task_begin(2);
  const BlockIndex b = live_block();
  gc.on_shadowed(b, /*shadower=*/2);
  EXPECT_TRUE(gc.maybe_collect());
  EXPECT_TRUE(gc.phase_active());
  EXPECT_EQ(gc.fence(), 2u);
  EXPECT_EQ(pool[b].state, BlockState::kPending);
  // Task 2 ending does not help: task 1 can still read the old version.
  gc.task_end(2);
  EXPECT_TRUE(gc.phase_active());
  EXPECT_TRUE(reclaimed.empty());
  // Task 1 ends: no unfinished task older than the fence remains.
  gc.task_end(1);
  EXPECT_FALSE(gc.phase_active());
  EXPECT_EQ(reclaimed, (std::vector<BlockIndex>{b}));
  EXPECT_EQ(phases(), 1u);
}

TEST_F(GcTest, FenceIsYoungestShadowerInBatch) {
  gc.task_begin(1);
  gc.task_begin(5);
  gc.task_begin(9);
  const BlockIndex a = live_block();
  const BlockIndex b = live_block();
  gc.on_shadowed(a, 5);
  gc.on_shadowed(b, 9);
  gc.maybe_collect();  // fence = 9
  EXPECT_EQ(gc.fence(), 9u);
  gc.task_end(1);
  gc.task_end(5);
  // Task 9 is not *older* than the fence (9): reclamation may proceed.
  EXPECT_FALSE(gc.phase_active());
  EXPECT_EQ(reclaimed.size(), 2u);
  gc.task_end(9);
}

TEST_F(GcTest, CreatedButUnbegunTaskHoldsBackReclamation) {
  // The static scheduler creates tasks long before they begin; a created
  // task older than the fence must keep pending blocks alive.
  gc.task_created(3);
  gc.task_begin(7);
  const BlockIndex b = live_block();
  gc.on_shadowed(b, 7);
  gc.maybe_collect();  // fence = 7
  gc.task_end(7);
  EXPECT_TRUE(gc.phase_active());  // task 3 could still read the old version
  EXPECT_TRUE(reclaimed.empty());
  gc.task_begin(3);
  gc.task_end(3);
  EXPECT_FALSE(gc.phase_active());
  EXPECT_EQ(reclaimed.size(), 1u);
}

TEST_F(GcTest, QuiescentPhaseReclaimsImmediately) {
  gc.task_begin(1);
  const BlockIndex b = live_block();
  gc.on_shadowed(b, 1);
  gc.task_end(1);
  EXPECT_TRUE(gc.maybe_collect());
  EXPECT_FALSE(gc.phase_active());
  EXPECT_EQ(reclaimed.size(), 1u);
}

TEST_F(GcTest, NewlyShadowedDuringPhaseGoesToNextPhase) {
  gc.task_begin(1);
  gc.task_begin(2);
  const BlockIndex a = live_block();
  gc.on_shadowed(a, 2);
  gc.maybe_collect();
  // Shadow another block mid-phase: lands on the shadowed list, untouched
  // by this phase's finalization.
  const BlockIndex b = live_block();
  gc.on_shadowed(b, 2);
  gc.task_end(1);
  EXPECT_EQ(reclaimed, (std::vector<BlockIndex>{a}));
  EXPECT_EQ(gc.shadowed_size(), 1u);
  gc.task_end(2);
}

TEST_F(GcTest, StartPhaseNoopWithoutShadowedWork) {
  EXPECT_FALSE(gc.maybe_collect());
  EXPECT_EQ(phases(), 0u);
}

TEST_F(GcTest, StartPhaseNoopWhilePhaseActive) {
  gc.task_begin(1);
  gc.task_begin(2);
  gc.on_shadowed(live_block(), 2);
  EXPECT_TRUE(gc.maybe_collect());
  gc.on_shadowed(live_block(), 2);
  EXPECT_FALSE(gc.maybe_collect());  // one phase at a time
  gc.task_end(1);
  gc.task_end(2);
}

TEST_F(GcTest, Rule3CreationOlderThanUnfinishedFaults) {
  gc.task_begin(10);
  try {
    gc.task_created(5);
    FAIL() << "expected OFault";
  } catch (const OFault& f) {
    EXPECT_EQ(f.kind(), FaultKind::kTaskOrderViolation);
  }
  gc.task_end(10);
}

TEST_F(GcTest, Rule3CreationBelowFloorFaults) {
  gc.task_begin(10);
  gc.on_shadowed(live_block(), 10);
  gc.maybe_collect();  // fence = 10
  gc.task_end(10);     // finalize: floor = 9
  EXPECT_EQ(gc.floor(), 9u);
  EXPECT_EQ(reclaimed.size(), 1u);
  EXPECT_THROW(gc.task_begin(9), OFault);
  gc.task_begin(10);  // re-running the fence id itself is fine
  gc.task_end(10);
}

TEST_F(GcTest, TaskEndWithoutBeginFaults) {
  EXPECT_THROW(gc.task_end(1), OFault);
}

TEST_F(GcTest, OutOfOrderSpawningPermitted) {
  // Rule 3 only bounds below: spawning younger tasks out of order is fine.
  gc.task_begin(5);
  gc.task_begin(9);
  gc.task_begin(7);
  gc.task_end(7);
  gc.task_end(5);
  gc.task_end(9);
  EXPECT_EQ(gc.unfinished_tasks(), 0u);
}

TEST_F(GcTest, MinReachableTracksOldestUnfinished) {
  EXPECT_EQ(gc.min_reachable(), 1u);  // floor 0, nothing unfinished
  gc.task_begin(4);
  gc.task_begin(9);
  EXPECT_EQ(gc.min_reachable(), 4u);
  gc.task_end(4);
  EXPECT_EQ(gc.min_reachable(), 9u);
  gc.task_end(9);
}

TEST_F(GcTest, StaleGenerationSkipped) {
  gc.task_begin(1);
  gc.task_begin(2);
  const BlockIndex b = live_block();
  gc.on_shadowed(b, 2);
  // The O-structure was released wholesale: the block was freed (and maybe
  // reallocated) outside the GC. Finalization must not double-free it.
  pool.free(b);
  const std::size_t free_before = pool.free_count();
  gc.maybe_collect();
  gc.task_end(1);
  gc.task_end(2);
  EXPECT_TRUE(reclaimed.empty());
  EXPECT_EQ(pool.free_count(), free_before);
}

TEST_F(GcTest, ManyBlocksReclaimedInOnePhase) {
  gc.task_begin(1);
  gc.task_begin(2);
  for (int i = 0; i < 20; ++i) gc.on_shadowed(live_block(), 2);
  gc.maybe_collect();
  gc.task_end(2);
  gc.task_end(1);
  EXPECT_EQ(reclaimed.size(), 20u);
  EXPECT_EQ(reg.total(telemetry::Component::kGc, "shadowed_blocks"), 20u);
}

TEST_F(GcTest, RepeatedPhasesRaiseFloorMonotonically) {
  TaskId prev_floor = 0;
  for (TaskId t = 1; t <= 10; ++t) {
    gc.task_begin(t);
    gc.on_shadowed(live_block(), t);
    gc.maybe_collect();
    gc.task_end(t);
    EXPECT_GE(gc.floor(), prev_floor);
    prev_floor = gc.floor();
  }
  EXPECT_EQ(reclaimed.size(), 10u);
}

}  // namespace
}  // namespace osim
