// FaultPlan grammar and FaultInjector decision determinism
// (core/fault_injection.hpp): the properties the replayability story rests
// on — parse/serialize round-trips, schedule-independent per-site decision
// sequences, exact-index firing, and the IoFaultHook bridge the trace
// FileSink consults.
#include "core/fault_injection.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace osim {
namespace {

TEST(FaultPlan, EmptySpecIsDetached) {
  const FaultPlan p = FaultPlan::parse("");
  EXPECT_FALSE(p.attached);
  EXPECT_EQ(p.to_spec(), "");
}

TEST(FaultPlan, NoneAttachesInert) {
  const FaultPlan p = FaultPlan::parse("none");
  EXPECT_TRUE(p.attached);
  for (const auto& s : p.sites) EXPECT_FALSE(s.active());
}

TEST(FaultPlan, ParsesRatesIndicesAndSeed) {
  const FaultPlan p =
      FaultPlan::parse("pool:0.01,deadlock@3@7,slots:0.000001,seed=42");
  EXPECT_TRUE(p.attached);
  EXPECT_EQ(p.seed, 42u);
  EXPECT_EQ(p.sites[static_cast<int>(FaultSite::kBlockPool)].rate_ppm,
            10000u);
  EXPECT_EQ(p.sites[static_cast<int>(FaultSite::kSlotTable)].rate_ppm, 1u);
  const auto& at = p.sites[static_cast<int>(FaultSite::kDeadlock)].at;
  EXPECT_EQ(at, (std::vector<std::uint64_t>{3, 7}));
}

TEST(FaultPlan, SpecRoundTripIsExact) {
  const char* specs[] = {
      "none",
      "pool:0.5",
      "pool@1,deadlock@2,seed=5",
      "pool:0.01,slots:0.000001,trace-short@9,trace-enospc:1,"
      "deadlock@3@7,gc-delay:0.25,seed=99",
  };
  for (const char* s : specs) {
    const FaultPlan p = FaultPlan::parse(s);
    const std::string canon = p.to_spec();
    const FaultPlan q = FaultPlan::parse(canon);
    EXPECT_EQ(q.to_spec(), canon) << "spec: " << s;
    EXPECT_EQ(q.seed, p.seed);
    for (int i = 0; i < kNumFaultSites; ++i) {
      EXPECT_EQ(q.sites[i].rate_ppm, p.sites[i].rate_ppm) << "spec: " << s;
      EXPECT_EQ(q.sites[i].at, p.sites[i].at) << "spec: " << s;
    }
  }
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  const char* bad[] = {
      "bogus:0.1",     // unknown site
      "pool",          // no rate or index
      "pool:0",        // rate must be > 0
      "pool:1.5",      // rate must be <= 1
      "pool:0.0000001",  // more than 6 fractional digits
      "pool@0",        // indices are 1-based
      "pool@x",        // not a number
      "seed=",         // empty seed
      "pool:0.1,,",    // empty token
  };
  for (const char* s : bad) {
    EXPECT_THROW((void)FaultPlan::parse(s), std::runtime_error)
        << "accepted: " << s;
  }
}

TEST(FaultInjector, ExactIndicesFireExactly) {
  FaultInjector inj(FaultPlan::parse("pool@2@5"));
  std::vector<int> fired;
  for (int n = 1; n <= 6; ++n) {
    if (inj.should_fire(FaultSite::kBlockPool)) fired.push_back(n);
  }
  EXPECT_EQ(fired, (std::vector<int>{2, 5}));
  EXPECT_EQ(inj.consulted(FaultSite::kBlockPool), 6u);
  EXPECT_EQ(inj.fired(FaultSite::kBlockPool), 2u);
}

TEST(FaultInjector, RateDecisionsAreDeterministic) {
  // Two injectors over the same plan produce the same decision sequence,
  // whatever else happened in between — the per-site counter is the only
  // state.
  FaultInjector a(FaultPlan::parse("pool:0.2,seed=7"));
  FaultInjector b(FaultPlan::parse("pool:0.2,seed=7"));
  // Interleave consultations of an unrelated site on b only: the pool
  // sequence must not shift.
  std::uint64_t fired_a = 0, fired_b = 0;
  for (int n = 0; n < 2000; ++n) {
    const bool fa = a.should_fire(FaultSite::kBlockPool);
    (void)b.should_fire(FaultSite::kGcDelay);
    const bool fb = b.should_fire(FaultSite::kBlockPool);
    EXPECT_EQ(fa, fb) << "diverged at consultation " << n;
    fired_a += fa ? 1 : 0;
    fired_b += fb ? 1 : 0;
  }
  EXPECT_EQ(fired_a, fired_b);
  // The rate is honoured statistically (20% +- a wide margin).
  EXPECT_GT(fired_a, 200u);
  EXPECT_LT(fired_a, 800u);
}

TEST(FaultInjector, SeedChangesTheSequence) {
  FaultInjector a(FaultPlan::parse("pool:0.2,seed=1"));
  FaultInjector b(FaultPlan::parse("pool:0.2,seed=2"));
  bool diverged = false;
  for (int n = 0; n < 200 && !diverged; ++n) {
    diverged = a.should_fire(FaultSite::kBlockPool) !=
               b.should_fire(FaultSite::kBlockPool);
  }
  EXPECT_TRUE(diverged);
}

TEST(FaultInjector, InertPlanNeverFires) {
  FaultInjector inj(FaultPlan::parse("none"));
  for (int n = 0; n < 1000; ++n) {
    for (int s = 0; s < kNumFaultSites; ++s) {
      EXPECT_FALSE(inj.should_fire(static_cast<FaultSite>(s)));
    }
  }
}

TEST(FaultInjector, IoFaultHookMapsTraceSites) {
  FaultInjector inj(FaultPlan::parse("trace-short@1,trace-enospc@1"));
  // Call 1: short-write fires and short-circuits — the ENOSPC site is not
  // even consulted (precedence, and its counter must not advance).
  EXPECT_EQ(inj.next_io_fault(), telemetry::IoFault::kShortWrite);
  EXPECT_EQ(inj.consulted(FaultSite::kTraceEnospc), 0u);
  // Call 2: short-write passes, ENOSPC's first consultation fires.
  EXPECT_EQ(inj.next_io_fault(), telemetry::IoFault::kEnospc);
  EXPECT_EQ(inj.next_io_fault(), telemetry::IoFault::kNone);
}

}  // namespace
}  // namespace osim
