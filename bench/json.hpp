// Minimal JSON reader/writer for the bench result files.
//
// Scope: exactly what BENCH_results.json needs — objects with stable key
// order, arrays, strings, numbers, and booleans. Numbers are kept as their
// source text, so 64-bit checksums round-trip through a read-modify-write
// merge without floating-point loss. Not a general-purpose JSON library.
#pragma once

#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace osim::bench {

/// Version of the bench result file layout: {"schema": 2, "benches": {...}}.
/// Bump when the cell/bench record shape changes incompatibly; the writer
/// (bench/driver.cpp) and readers (tools/osim-report) both check it.
inline constexpr std::uint64_t kJsonSchemaVersion = 2;

class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() = default;
  static Json boolean(bool b) {
    Json j;
    j.kind_ = Kind::kBool;
    j.bool_ = b;
    return j;
  }
  static Json number(std::uint64_t v) { return raw_number(std::to_string(v)); }
  static Json number(double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.6f", v);
    return raw_number(buf);
  }
  static Json string(std::string s) {
    Json j;
    j.kind_ = Kind::kString;
    j.str_ = std::move(s);
    return j;
  }
  static Json array() {
    Json j;
    j.kind_ = Kind::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.kind_ = Kind::kObject;
    return j;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }

  void push_back(Json v) { items_.emplace_back("", std::move(v)); }

  /// Object field access; inserts (preserving insertion order) if absent.
  /// A null value promotes to an object, so `root["a"]["b"] = x` works.
  Json& operator[](const std::string& key) {
    if (kind_ == Kind::kNull) kind_ = Kind::kObject;
    for (auto& [k, v] : items_) {
      if (k == key) return v;
    }
    items_.emplace_back(key, Json{});
    return items_.back().second;
  }

  // ---- Const accessors (readers: osim-report, schema validation) ----

  /// Object lookup without insertion; nullptr when absent or not an object.
  const Json* find(const std::string& key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& [k, v] : items_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Key/value pairs of an object, or elements of an array (keys empty).
  const std::vector<std::pair<std::string, Json>>& items() const {
    return items_;
  }
  std::size_t size() const { return items_.size(); }

  std::uint64_t as_u64() const {
    if (kind_ != Kind::kNumber) fail("expected number");
    return std::strtoull(str_.c_str(), nullptr, 10);
  }
  double as_double() const {
    if (kind_ != Kind::kNumber) fail("expected number");
    return std::strtod(str_.c_str(), nullptr);
  }
  const std::string& as_string() const {
    if (kind_ != Kind::kString) fail("expected string");
    return str_;
  }
  bool as_bool() const {
    if (kind_ != Kind::kBool) fail("expected boolean");
    return bool_;
  }

  void write(std::string& out, int indent = 0) const {
    switch (kind_) {
      case Kind::kNull:
        out += "null";
        break;
      case Kind::kBool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::kNumber:
        out += str_;
        break;
      case Kind::kString:
        write_string(out, str_);
        break;
      case Kind::kArray:
      case Kind::kObject: {
        const char open = kind_ == Kind::kArray ? '[' : '{';
        const char close = kind_ == Kind::kArray ? ']' : '}';
        if (items_.empty()) {
          out += open;
          out += close;
          break;
        }
        out += open;
        for (std::size_t i = 0; i < items_.size(); ++i) {
          out += i == 0 ? "\n" : ",\n";
          out.append(static_cast<std::size_t>(indent) + 2, ' ');
          if (kind_ == Kind::kObject) {
            write_string(out, items_[i].first);
            out += ": ";
          }
          items_[i].second.write(out, indent + 2);
        }
        out += '\n';
        out.append(static_cast<std::size_t>(indent), ' ');
        out += close;
        break;
      }
    }
  }

  std::string dump() const {
    std::string out;
    write(out);
    out += '\n';
    return out;
  }

  /// Parse `text`. Throws std::runtime_error on malformed input.
  static Json parse(const std::string& text) {
    std::size_t pos = 0;
    Json j = parse_value(text, pos);
    skip_ws(text, pos);
    if (pos != text.size()) throw std::runtime_error("trailing JSON content");
    return j;
  }

 private:
  static Json raw_number(std::string digits) {
    Json j;
    j.kind_ = Kind::kNumber;
    j.str_ = std::move(digits);
    return j;
  }

  static void write_string(std::string& out, const std::string& s) {
    out += '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out += "\\\"";
          break;
        case '\\':
          out += "\\\\";
          break;
        case '\n':
          out += "\\n";
          break;
        case '\t':
          out += "\\t";
          break;
        default:
          out += c;
      }
    }
    out += '"';
  }

  static void skip_ws(const std::string& t, std::size_t& p) {
    while (p < t.size() && std::isspace(static_cast<unsigned char>(t[p]))) ++p;
  }

  [[noreturn]] static void fail(const char* what) {
    throw std::runtime_error(std::string("bad JSON: ") + what);
  }

  static char expect(const std::string& t, std::size_t& p, char c) {
    skip_ws(t, p);
    if (p >= t.size() || t[p] != c) fail("unexpected character");
    return t[p++];
  }

  static std::string parse_string(const std::string& t, std::size_t& p) {
    expect(t, p, '"');
    std::string s;
    while (p < t.size() && t[p] != '"') {
      char c = t[p++];
      if (c == '\\') {
        if (p >= t.size()) fail("unterminated escape");
        const char e = t[p++];
        switch (e) {
          case 'n':
            c = '\n';
            break;
          case 't':
            c = '\t';
            break;
          case '"':
          case '\\':
          case '/':
            c = e;
            break;
          default:
            fail("unsupported escape");
        }
      }
      s += c;
    }
    if (p >= t.size()) fail("unterminated string");
    ++p;  // closing quote
    return s;
  }

  static Json parse_value(const std::string& t, std::size_t& p) {
    skip_ws(t, p);
    if (p >= t.size()) fail("empty input");
    const char c = t[p];
    if (c == '{') {
      ++p;
      Json j = object();
      skip_ws(t, p);
      if (p < t.size() && t[p] == '}') {
        ++p;
        return j;
      }
      for (;;) {
        std::string key = parse_string(t, p);
        expect(t, p, ':');
        j.items_.emplace_back(std::move(key), parse_value(t, p));
        skip_ws(t, p);
        if (p < t.size() && t[p] == ',') {
          ++p;
          skip_ws(t, p);
          continue;
        }
        expect(t, p, '}');
        return j;
      }
    }
    if (c == '[') {
      ++p;
      Json j = array();
      skip_ws(t, p);
      if (p < t.size() && t[p] == ']') {
        ++p;
        return j;
      }
      for (;;) {
        j.push_back(parse_value(t, p));
        skip_ws(t, p);
        if (p < t.size() && t[p] == ',') {
          ++p;
          continue;
        }
        expect(t, p, ']');
        return j;
      }
    }
    if (c == '"') return string(parse_string(t, p));
    if (t.compare(p, 4, "true") == 0) {
      p += 4;
      return boolean(true);
    }
    if (t.compare(p, 5, "false") == 0) {
      p += 5;
      return boolean(false);
    }
    if (t.compare(p, 4, "null") == 0) {
      p += 4;
      return Json{};
    }
    // Number: take the maximal run of number characters verbatim.
    const std::size_t start = p;
    while (p < t.size() &&
           (std::isdigit(static_cast<unsigned char>(t[p])) || t[p] == '-' ||
            t[p] == '+' || t[p] == '.' || t[p] == 'e' || t[p] == 'E')) {
      ++p;
    }
    if (p == start) fail("unexpected token");
    return raw_number(t.substr(start, p - start));
  }

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string str_;  // string payload or number text
  std::vector<std::pair<std::string, Json>> items_;
};

}  // namespace osim::bench
