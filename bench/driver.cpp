#include "driver.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "json.hpp"
#include "sim/host_pool.hpp"

namespace osim::bench {

namespace {

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Json metrics_json(const telemetry::MetricRegistry& reg) {
  Json out = Json::object();
  for (const auto& m : reg.metrics()) {
    const std::string key =
        std::string(telemetry::to_string(m.component)) + "/" + m.name;
    if (m.kind == telemetry::MetricKind::kHistogram) {
      const std::size_t nb = m.bounds.size();
      Json h = Json::object();
      h["count"] = Json::number(m.slot(nb + 2));
      h["sum"] = Json::number(m.slot(nb + 1));
      Json bounds = Json::array();
      for (std::uint64_t b : m.bounds) bounds.push_back(Json::number(b));
      h["bounds"] = std::move(bounds);
      Json buckets = Json::array();  // last element counts overflows
      for (std::size_t i = 0; i <= nb; ++i) {
        buckets.push_back(Json::number(m.slot(i)));
      }
      h["buckets"] = std::move(buckets);
      out[key] = std::move(h);
    } else if (m.per_core) {
      Json v = Json::object();
      v["total"] = Json::number(m.total());
      Json per = Json::array();
      for (std::size_t i = 0; i < m.width; ++i) {
        per.push_back(Json::number(m.slot(i)));
      }
      v["per_core"] = std::move(per);
      out[key] = std::move(v);
    } else {
      out[key] = Json::number(m.total());
    }
  }
  return out;
}

void fill_check(analysis::Checker& checker, CellResult& r) {
  checker.finish();
  r.checked = true;
  r.check_errors = checker.error_count();
  r.check = Json::object();
  r.check["errors"] = Json::number(checker.error_count());
  r.check["warnings"] = Json::number(checker.warning_count());
  r.check["total"] = Json::number(checker.total_findings());
  Json findings = Json::array();
  for (const analysis::Finding& f : checker.findings()) {
    Json jf = Json::object();
    jf["severity"] = Json::string(
        f.severity == analysis::Severity::kError ? "error" : "warning");
    jf["invariant"] = Json::string(analysis::id(f.invariant));
    jf["time"] = Json::number(static_cast<std::uint64_t>(f.time));
    jf["core"] = Json::number(static_cast<std::uint64_t>(f.core));
    jf["addr"] = Json::number(static_cast<std::uint64_t>(f.addr));
    jf["version"] = Json::number(static_cast<std::uint64_t>(f.version));
    jf["task"] = Json::number(static_cast<std::uint64_t>(f.task));
    jf["other_task"] = Json::number(static_cast<std::uint64_t>(f.other_task));
    jf["detail"] = Json::string(f.detail);
    findings.push_back(std::move(jf));
  }
  r.check["findings"] = std::move(findings);
}

void harvest_check(Env& env, CellResult& r) {
  analysis::Checker* checker = env.checker();
  if (checker == nullptr) return;
  fill_check(*checker, r);
}

Driver::Driver(std::string bench_name, Options options)
    : name_(std::move(bench_name)), opt_(std::move(options)) {}

std::size_t Driver::add(std::string name, CellFn fn) {
  cells_.push_back(Cell{std::move(name), std::move(fn), {}, false});
  return cells_.size() - 1;
}

void Driver::run_all() {
  std::vector<std::function<void()>> jobs;
  std::vector<std::size_t> fresh;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    Cell& cell = cells_[i];
    if (cell.done) continue;
    fresh.push_back(i);
    // Per-cell trace file: concurrent cells must not share one stream.
    std::string trace = opt_.trace_path.empty()
                            ? std::string()
                            : opt_.trace_path + "." + std::to_string(i);
    jobs.push_back([&cell, trace = std::move(trace), check = opt_.check_mode,
                    backend = opt_.backend, gc = opt_.gc,
                    inject = opt_.inject_spec] {
      detail::g_cell_trace_path = trace;
      detail::g_cell_check_mode = check;
      detail::g_cell_backend = backend;
      detail::g_cell_gc = gc;
      detail::g_cell_inject = inject;
      const auto t0 = std::chrono::steady_clock::now();
      cell.result = cell.fn();
      cell.result.wall_seconds = seconds_since(t0);
      cell.done = true;
      detail::g_cell_trace_path.clear();
      detail::g_cell_check_mode = 0;
      detail::g_cell_backend = BackendKind::kTimed;
      detail::g_cell_gc = GcPolicyKind::kPaper;
      detail::g_cell_inject.clear();
    });
  }
  if (jobs.empty()) return;
  const auto t0 = std::chrono::steady_clock::now();
  HostPool pool(opt_.threads);
  pool.run(std::move(jobs));
  total_wall_ += seconds_since(t0);
  // Checked cells must come back clean; record one named invariant per
  // cell so finish() fails (and prints) on any protocol violation.
  if (opt_.check_mode != 0) {
    for (std::size_t i : fresh) {
      const Cell& cell = cells_[i];
      if (!cell.result.checked) continue;  // cell has no Env/checker
      check("osim-check clean: " + cell.name, cell.result.check_errors == 0);
      if (cell.result.check_errors != 0) {
        if (const Json* fs = cell.result.check.find("findings")) {
          for (const auto& [unused, f] : fs->items()) {
            (void)unused;
            const Json* inv = f.find("invariant");
            const Json* detail = f.find("detail");
            std::fprintf(stderr, "%s: [%s] %s: %s\n", name_.c_str(),
                         cell.name.c_str(),
                         inv != nullptr ? inv->as_string().c_str() : "?",
                         detail != nullptr ? detail->as_string().c_str()
                                           : "");
          }
        }
      }
    }
  }
}

const CellResult& Driver::result(std::size_t handle) const {
  const Cell& cell = cells_.at(handle);
  if (!cell.done) {
    throw std::logic_error("cell '" + cell.name + "' read before run_all()");
  }
  return cell.result;
}

void Driver::check(const std::string& what, bool ok) {
  checks_.push_back(Check{what, ok});
}

int Driver::finish() {
  std::size_t passed = 0;
  for (const Check& c : checks_) {
    if (c.ok) {
      ++passed;
    } else {
      std::fprintf(stderr, "%s: CHECK FAILED: %s\n", name_.c_str(),
                   c.what.c_str());
    }
  }
  const bool all_ok = passed == checks_.size();
  std::printf(
      "\n[%s] %zu cells, %.2fs wall on %d host thread(s); checks: %zu/%zu "
      "passed\n",
      name_.c_str(), cells_.size(), total_wall_,
      HostPool(opt_.threads).thread_count(), passed, checks_.size());

  if (!opt_.json_path.empty()) {
    // Versioned result schema (v2): {"schema": 2, "benches": {name: {...}}}.
    // Merge: keep other benches' entries, replace our own. Files in an
    // older/foreign layout are discarded with a warning rather than mixed.
    Json root = Json::object();
    {
      std::ifstream in(opt_.json_path);
      if (in) {
        std::stringstream buf;
        buf << in.rdbuf();
        try {
          Json existing = Json::parse(buf.str());
          const Json* schema = existing.find("schema");
          const Json* benches = existing.find("benches");
          if (schema != nullptr && schema->is_number() &&
              schema->as_u64() == kJsonSchemaVersion && benches != nullptr &&
              benches->is_object()) {
            root = std::move(existing);
          } else {
            std::fprintf(stderr,
                         "%s: %s is not a schema-%llu result file; "
                         "starting fresh\n",
                         name_.c_str(), opt_.json_path.c_str(),
                         static_cast<unsigned long long>(kJsonSchemaVersion));
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "%s: ignoring unreadable %s (%s)\n",
                       name_.c_str(), opt_.json_path.c_str(), e.what());
        }
      }
    }
    root["schema"] = Json::number(kJsonSchemaVersion);
    Json& mine = root["benches"][name_];
    mine = Json::object();
    mine["scale"] = Json::number(opt_.scale.factor);
    mine["threads"] = Json::number(
        static_cast<std::uint64_t>(HostPool(opt_.threads).thread_count()));
    mine["wall_seconds"] = Json::number(total_wall_);
    mine["checks_passed"] = Json::boolean(all_ok);
    Json cells = Json::array();
    for (const Cell& c : cells_) {
      Json jc = Json::object();
      jc["name"] = Json::string(c.name);
      jc["backend"] = Json::string(c.result.backend.empty()
                                       ? to_string(opt_.backend)
                                       : c.result.backend);
      jc["gc"] = Json::string(c.result.gc.empty() ? to_string(opt_.gc)
                                                  : c.result.gc);
      jc["cycles"] = Json::number(static_cast<std::uint64_t>(c.result.cycles));
      jc["checksum"] = Json::number(c.result.checksum);
      jc["wall_seconds"] = Json::number(c.result.wall_seconds);
      if (!c.result.exec.empty()) {
        jc["exec"] = Json::string(c.result.exec);
        jc["ops"] = Json::number(c.result.ops);
        jc["work_seconds"] = Json::number(c.result.work_seconds);
        jc["conc_threads"] =
            Json::number(static_cast<std::uint64_t>(c.result.conc_threads));
      }
      if (!c.result.metrics.is_null()) jc["metrics"] = c.result.metrics;
      if (c.result.checked) jc["check"] = c.result.check;
      cells.push_back(std::move(jc));
    }
    mine["cells"] = std::move(cells);

    std::ofstream out(opt_.json_path, std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "%s: cannot write %s\n", name_.c_str(),
                   opt_.json_path.c_str());
      return 1;
    }
    out << root.dump();
    std::printf("[%s] results written to %s\n", name_.c_str(),
                opt_.json_path.c_str());
  }
  return all_ok ? 0 : 1;
}

}  // namespace osim::bench
