// Host-side micro-benchmarks (google-benchmark) of the simulator substrate
// and O-structure primitives: fiber switches, cache probes, hierarchy
// accesses, version-list operations, compressed-line codec, and complete
// versioned operations. These measure *simulator* throughput (host ns/op),
// which bounds how much simulated work the figure benches can afford.
#include <benchmark/benchmark.h>

#include "core/compressed_line.hpp"
#include "core/ostructure_manager.hpp"
#include "core/version_list.hpp"
#include "sim/cache.hpp"
#include "sim/fiber.hpp"
#include "sim/memory_system.hpp"

namespace osim {
namespace {

void BM_FiberSwitch(benchmark::State& state) {
  bool stop = false;
  Fiber f([&stop] {
    while (!stop) Fiber::current()->yield();
  });
  for (auto _ : state) f.resume();
  stop = true;
  f.resume();  // let the fiber run to completion
  state.SetItemsProcessed(state.iterations() * 2);  // two switches per resume
}

void BM_CacheHit(benchmark::State& state) {
  Cache c(CacheConfig{32 * 1024, 8, kLineBytes, 4});
  c.fill(0x1000, false);
  for (auto _ : state) benchmark::DoNotOptimize(c.access(0x1000, false));
}

void BM_CacheMissFill(benchmark::State& state) {
  Cache c(CacheConfig{32 * 1024, 8, kLineBytes, 4});
  Addr a = 0;
  for (auto _ : state) {
    c.access(a, false);
    c.fill(a, false);
    a += kLineBytes;
  }
}

void BM_MemorySystemAccess(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_cores = 4;
  telemetry::MetricRegistry reg(4);
  MemorySystem ms(cfg, reg);
  Addr a = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ms.access(0, a, AccessType::kRead));
    a = (a + kLineBytes) & 0xFFFFFF;
  }
}

void BM_VersionListInsert(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    BlockPool pool(static_cast<std::size_t>(len) + 8);
    BlockIndex root = kNullBlock;
    state.ResumeTiming();
    for (int v = 1; v <= len; ++v) {
      const BlockIndex b = pool.alloc();
      pool[b].version = static_cast<Ver>(v);
      list_insert(pool, &root, b, /*sorted=*/true);
    }
  }
  state.SetItemsProcessed(state.iterations() * len);
}

void BM_VersionListFindLatest(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  BlockPool pool(static_cast<std::size_t>(len) + 8);
  BlockIndex root = kNullBlock;
  for (int v = 1; v <= len; ++v) {
    const BlockIndex b = pool.alloc();
    pool[b].version = static_cast<Ver>(v);
    list_insert(pool, &root, b, true);
  }
  Ver cap = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(find_latest(pool, root, cap, true));
    cap = cap % len + 1;
  }
}

void BM_CompressedInstallFind(benchmark::State& state) {
  CompressedLine cl;
  Ver v = 100;
  for (auto _ : state) {
    CompressedLine::Entry e;
    e.version = 100 + (v % CompressedLine::kEntries);
    cl.install(e);
    benchmark::DoNotOptimize(cl.find_exact(e.version));
    ++v;
  }
}

void BM_VersionedStoreLoad(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_cores = 1;
  Machine m(cfg);
  OStructureManager osm(m);
  OAddr a = osm.alloc();
  std::uint64_t iters = 0;
  m.spawn(0, [&] {
    Ver v = 1;
    for (auto _ : state) {
      osm.store_version(a, v, v);
      benchmark::DoNotOptimize(osm.load_version(a, v));
      ++v;
      ++iters;
      if (v == 1024) {
        // Recycle the slot so per-iteration cost stays O(1) however many
        // iterations the harness schedules.
        osm.release(a);
        a = osm.alloc();
        v = 1;
      }
    }
  });
  m.run();
  state.SetItemsProcessed(static_cast<std::int64_t>(iters) * 2);
}

void BM_VersionedDirectHit(benchmark::State& state) {
  MachineConfig cfg;
  cfg.num_cores = 1;
  Machine m(cfg);
  OStructureManager osm(m);
  const OAddr a = osm.alloc();
  m.spawn(0, [&] {
    osm.store_version(a, 1, 7);
    osm.load_version(a, 1);  // warm the compressed line
    for (auto _ : state) benchmark::DoNotOptimize(osm.load_version(a, 1));
  });
  m.run();
}

BENCHMARK(BM_CacheHit);
BENCHMARK(BM_CacheMissFill);
BENCHMARK(BM_MemorySystemAccess);
BENCHMARK(BM_VersionListInsert)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_VersionListFindLatest)->Arg(8)->Arg(64)->Arg(512);
BENCHMARK(BM_CompressedInstallFind);
BENCHMARK(BM_VersionedStoreLoad);
BENCHMARK(BM_VersionedDirectHit);
BENCHMARK(BM_FiberSwitch);

}  // namespace
}  // namespace osim

BENCHMARK_MAIN();
