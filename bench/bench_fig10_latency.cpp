// Figure 10: slowdown from injecting a fixed extra latency (2..10 cycles)
// into every versioned operation, for versioned 1-core (1T) and 32-core
// (32T) runs, relative to the no-injection baseline.
//
// Expected shape (paper): up to ~16% slowdown at +10 cycles, much milder at
// +2..4; parallel runs and miss-dominated workloads are less sensitive
// ("frequently accessing the LLC reduces the effect of L1 latency").
#include <cstdio>
#include <functional>
#include <iterator>

#include "bench_util.hpp"
#include "workloads/binary_tree.hpp"
#include "workloads/hash_table.hpp"
#include "workloads/levenshtein.hpp"
#include "workloads/linked_list.hpp"
#include "workloads/matmul.hpp"
#include "workloads/rb_tree.hpp"

namespace osim {
namespace {

using bench::fmt;
using bench::Scale;

const Cycles kInject[] = {0, 2, 4, 6, 8, 10};

MachineConfig config_with_inject(int cores, Cycles extra) {
  MachineConfig c;
  c.num_cores = cores;
  c.ostruct.injected_latency = extra;
  return c;
}

void sweep(const std::string& label,
           const std::function<Cycles(Cycles)>& fn) {
  std::vector<Cycles> cycles;
  for (Cycles extra : kInject) cycles.push_back(fn(extra));
  const double base = static_cast<double>(cycles[0]);
  std::vector<std::string> cells{label};
  for (std::size_t i = 1; i < std::size(kInject); ++i) {
    // Negative speedup (slowdown) vs the no-injection run, as in Fig. 10.
    cells.push_back(fmt(base / static_cast<double>(cycles[i]) - 1.0, 3));
  }
  bench::row(cells, 13);
}

template <typename ParFn>
void sweep_par(const char* name, ParFn par) {
  sweep(std::string(name) + " 1T", [&](Cycles extra) {
    Env env(config_with_inject(1, extra));
    return par(env, 1);
  });
  sweep(std::string(name) + " 32T", [&](Cycles extra) {
    Env env(config_with_inject(32, extra));
    return par(env, 32);
  });
}

}  // namespace
}  // namespace osim

int main(int argc, char** argv) {
  using namespace osim;
  using namespace osim::bench;
  const Scale scale = Scale::parse(argc, argv);

  std::printf(
      "Figure 10: relative speedup (negative = slowdown) when injecting\n"
      "2..10 extra cycles into every versioned operation\n\n");
  rule(6, 13);
  row({"run", "+2cyc", "+4cyc", "+6cyc", "+8cyc", "+10cyc"}, 13);
  rule(6, 13);

  struct DsCase {
    const char* name;
    RunResult (*par)(Env&, const DsSpec&, int);
    int base_ops;
  };
  const DsCase cases[] = {
      {"linked_list", linked_list_versioned, 160},
      {"binary_tree", binary_tree_versioned, 1200},
      {"hash_table", hash_table_versioned, 1200},
      {"rb_tree", rb_tree_versioned, 800},
  };
  for (const DsCase& c : cases) {
    DsSpec spec;
    spec.initial_size = 10000;
    spec.reads_per_write = 4;
    spec.ops = scale.ops(c.base_ops);
    sweep_par(c.name, [&](Env& env, int cores) {
      return c.par(env, spec, cores).cycles;
    });
  }
  {
    LevSpec spec;
    spec.n = scale.dim(600);
    sweep_par("levenshtein", [&](Env& env, int cores) {
      return levenshtein_versioned(env, spec, cores).cycles;
    });
  }
  {
    MatmulSpec spec;
    spec.n = scale.dim(72);
    sweep_par("matrix_mul", [&](Env& env, int cores) {
      return matmul_versioned(env, spec, cores).cycles;
    });
  }
  rule(6, 13);
  std::printf(
      "\nPaper reference (Fig. 10): at most ~16%% slowdown at +10 cycles,\n"
      "milder at small injections; sensitivity shrinks with parallelism.\n");
  return 0;
}
